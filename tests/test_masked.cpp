#include "spgemm/masked.hpp"

#include <gtest/gtest.h>

#include "matrix/ops.hpp"
#include "spgemm/plan.hpp"
#include "spgemm/registry.hpp"
#include "spgemm/semiring.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

using testutil::from_triplets;

// Oracle: full product then Hadamard with the mask pattern.
mtx::CsrMatrix oracle(const mtx::CsrMatrix& a, const mtx::CsrMatrix& b,
                      const mtx::CsrMatrix& mask) {
  const mtx::CsrMatrix full =
      reference_spgemm(SpGemmProblem::multiply(a, b));
  return mtx::hadamard(full, mtx::to_pattern(mask));
}

TEST(Masked, MatchesUnmaskedProductOnFullMask) {
  const mtx::CsrMatrix a = testutil::exact_er(100, 100, 4.0, 71);
  const mtx::CsrMatrix full = reference_spgemm(SpGemmProblem::square(a));
  EXPECT_TRUE(equal_exact(spgemm_masked(a, a, mtx::to_pattern(full)), full));
}

TEST(Masked, KnownSmallCase) {
  // Product is dense 2x2; mask keeps only (0,1) and (1,0).
  const auto a = from_triplets(2, 2, {{0, 0, 1.}, {0, 1, 2.}, {1, 0, 3.}, {1, 1, 4.}});
  const auto mask = from_triplets(2, 2, {{0, 1, 1.0}, {1, 0, 1.0}});
  const mtx::CsrMatrix c = spgemm_masked(a, a, mask);
  EXPECT_EQ(c.nnz(), 2);
  EXPECT_EQ(c.vals[0], 10.0);  // (0,1): 1*2 + 2*4
  EXPECT_EQ(c.vals[1], 15.0);  // (1,0): 3*1 + 4*3
}

TEST(Masked, EmptyMaskGivesEmptyResult) {
  const mtx::CsrMatrix a = testutil::exact_er(64, 64, 4.0, 72);
  mtx::CooMatrix empty(64, 64);
  const mtx::CsrMatrix c = spgemm_masked(a, a, mtx::coo_to_csr(empty));
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_TRUE(c.valid());
}

TEST(Masked, MaskPositionsWithZeroProductAreDropped) {
  // Mask allows (0, 3) but no product lands there: the entry must not
  // appear (masked SpGEMM keeps the product's pattern ∩ mask).
  const auto a = from_triplets(4, 4, {{0, 0, 1.0}});
  const auto b = from_triplets(4, 4, {{0, 1, 1.0}});
  const auto mask = from_triplets(4, 4, {{0, 1, 1.0}, {0, 3, 1.0}});
  const mtx::CsrMatrix c = spgemm_masked(a, b, mask);
  EXPECT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.colids[0], 1);
}

TEST(Masked, MaskValuesAreIgnored) {
  const mtx::CsrMatrix a = testutil::exact_er(80, 80, 4.0, 73);
  mtx::CsrMatrix mask = testutil::exact_er(80, 80, 6.0, 74);
  const mtx::CsrMatrix c1 = spgemm_masked(a, a, mask);
  for (auto& v : mask.vals) v *= -17.5;  // scale mask values arbitrarily
  const mtx::CsrMatrix c2 = spgemm_masked(a, a, mask);
  EXPECT_TRUE(equal_exact(c1, c2));
}

class MaskedRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaskedRandom, MatchesHadamardOracle) {
  const std::uint64_t seed = GetParam();
  const mtx::CsrMatrix a = testutil::exact_er(150, 150, 5.0, seed);
  const mtx::CsrMatrix b = testutil::exact_er(150, 150, 5.0, seed + 10);
  const mtx::CsrMatrix mask = testutil::exact_er(150, 150, 8.0, seed + 20);
  EXPECT_TRUE(equal_exact(spgemm_masked(a, b, mask), oracle(a, b, mask)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskedRandom, ::testing::Values(1, 2, 3, 4));

TEST(Masked, TriangleCountingEquivalence) {
  // The masked formulation counts the same triangles as product+Hadamard.
  const mtx::CsrMatrix adj =
      mtx::symmetrize(testutil::exact_er(200, 200, 6.0, 75));
  const mtx::CsrMatrix lower = mtx::to_pattern(mtx::tril(adj));
  const value_t via_masked = mtx::value_sum(spgemm_masked(lower, lower, lower));
  const mtx::CsrMatrix full = algorithm("pb").fn(SpGemmProblem::square(lower));
  const value_t via_hadamard = mtx::value_sum(mtx::hadamard(full, lower));
  EXPECT_DOUBLE_EQ(via_masked, via_hadamard);
}

TEST(Masked, ShapeMismatchThrows) {
  const mtx::CsrMatrix a = testutil::exact_er(10, 10, 2.0, 76);
  const mtx::CsrMatrix bad_mask = testutil::exact_er(10, 11, 2.0, 77);
  EXPECT_THROW(spgemm_masked(a, a, bad_mask), std::invalid_argument);
}

TEST(MaskedComplement, SplitsProductExactly) {
  // masked + complement-masked partition the full product's pattern.
  const mtx::CsrMatrix a = testutil::exact_er(120, 120, 5.0, 78);
  const mtx::CsrMatrix mask = testutil::exact_er(120, 120, 10.0, 79);
  const mtx::CsrMatrix inside = spgemm_masked(a, a, mask);
  const mtx::CsrMatrix outside = spgemm_masked(a, a, mask, /*complement=*/true);
  const mtx::CsrMatrix full = reference_spgemm(SpGemmProblem::square(a));
  EXPECT_EQ(inside.nnz() + outside.nnz(), full.nnz());
  EXPECT_TRUE(equal_exact(mtx::add(inside, outside), full));
}

TEST(MaskedComplement, EmptyMaskKeepsEverything) {
  const mtx::CsrMatrix a = testutil::exact_er(64, 64, 4.0, 80);
  mtx::CooMatrix empty(64, 64);
  const mtx::CsrMatrix c =
      spgemm_masked(a, a, mtx::coo_to_csr(empty), /*complement=*/true);
  EXPECT_TRUE(equal_exact(c, reference_spgemm(SpGemmProblem::square(a))));
}

TEST(MaskedComplement, FullMaskKeepsNothing) {
  const mtx::CsrMatrix a = testutil::exact_er(48, 48, 4.0, 81);
  const mtx::CsrMatrix full = reference_spgemm(SpGemmProblem::square(a));
  const mtx::CsrMatrix c =
      spgemm_masked(a, a, mtx::to_pattern(full), /*complement=*/true);
  EXPECT_EQ(c.nnz(), 0);
}

TEST(Masked, CancellationInsideMaskStaysStructural) {
  const auto a = from_triplets(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  const auto b = from_triplets(2, 1, {{0, 0, 1.0}, {1, 0, -1.0}});
  const auto mask = from_triplets(1, 1, {{0, 0, 1.0}});
  const mtx::CsrMatrix c = spgemm_masked(a, b, mask);
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.vals[0], 0.0);
}

// ---- the full masked matrix: {4 semirings} × {complement} × {kernels} ----

// Oracle for any semiring: gold-standard product, then value-safe pattern
// filtering (mask-then-Hadamard, without the Hadamard's multiply).
mtx::CsrMatrix semiring_oracle(const std::string& s, const SpGemmProblem& p,
                               const mtx::CsrMatrix& mask, bool complement) {
  return dispatch_semiring(s, [&]<typename S>() {
    return mtx::pattern_filter(reference_spgemm_semiring<S>(p), mask,
                               complement);
  });
}

class MaskedSemiring : public ::testing::TestWithParam<std::string> {};

TEST_P(MaskedSemiring, EveryFusedKernelMatchesOracle) {
  const std::string semiring = GetParam();
  const mtx::CsrMatrix a = testutil::exact_er(140, 140, 5.0, 82);
  const mtx::CsrMatrix b = testutil::exact_er(140, 140, 5.0, 83);
  const mtx::CsrMatrix mask = testutil::exact_er(140, 140, 7.0, 84);
  const SpGemmProblem p = SpGemmProblem::multiply(a, b);

  for (const bool complement : {false, true}) {
    const mtx::CsrMatrix expected = semiring_oracle(semiring, p, mask, complement);
    // Direct fused kernels...
    dispatch_semiring(semiring, [&]<typename S>() {
      EXPECT_TRUE(equal_exact(
          spgemm_masked_semiring<S>(a, b, mask, complement), expected))
          << "spa " << semiring << " c=" << complement;
      EXPECT_TRUE(equal_exact(heap_masked_semiring<S>(p, mask, complement),
                              expected))
          << "heap " << semiring << " c=" << complement;
      EXPECT_TRUE(equal_exact(hash_masked_semiring<S>(p, mask, complement),
                              expected))
          << "hash " << semiring << " c=" << complement;
    });
    // ...and the same four through the descriptor plan path (pb included).
    for (const char* algo : {"pb", "heap", "hash", "spa"}) {
      SpGemmOp op;
      op.algo = algo;
      op.semiring = semiring;
      op.mask = &mask;
      op.complement = complement;
      SpGemmPlan plan = make_plan(p, op);
      EXPECT_TRUE(equal_exact(plan.execute(p), expected))
          << algo << " " << semiring << " c=" << complement;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Semirings, MaskedSemiring,
                         ::testing::Values("plus_times", "min_plus",
                                           "max_min", "bool_or_and"));

TEST(MaskedSemiring2, EmptyFullAndDiagonalMasksAcrossKernels) {
  const mtx::CsrMatrix a = testutil::exact_er(96, 96, 4.0, 85);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const mtx::CsrMatrix full_product = reference_spgemm(p);

  mtx::CooMatrix empty_coo(96, 96);
  const mtx::CsrMatrix empty = mtx::coo_to_csr(empty_coo);
  const mtx::CsrMatrix full = mtx::to_pattern(full_product);
  const mtx::CsrMatrix diagonal = mtx::CsrMatrix::identity(96);

  for (const char* algo : {"pb", "heap", "hash", "spa"}) {
    for (const mtx::CsrMatrix* mask : {&empty, &full, &diagonal}) {
      for (const bool complement : {false, true}) {
        SpGemmOp op;
        op.algo = algo;
        op.mask = mask;
        op.complement = complement;
        SpGemmPlan plan = make_plan(p, op);
        EXPECT_TRUE(equal_exact(
            plan.execute(p),
            mtx::pattern_filter(full_product, *mask, complement)))
            << algo << " c=" << complement;
      }
    }
  }
}

}  // namespace
}  // namespace pbs
