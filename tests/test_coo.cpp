#include "matrix/coo.hpp"

#include <gtest/gtest.h>

namespace pbs::mtx {
namespace {

TEST(Coo, EmptyMatrixIsCanonical) {
  CooMatrix m(4, 4);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.is_canonical());
  m.canonicalize();
  EXPECT_EQ(m.nnz(), 0);
}

TEST(Coo, CanonicalizeSortsRowMajor) {
  CooMatrix m(3, 3);
  m.add(2, 1, 1.0);
  m.add(0, 2, 2.0);
  m.add(1, 0, 3.0);
  m.add(0, 0, 4.0);
  EXPECT_FALSE(m.is_canonical());
  m.canonicalize();
  ASSERT_TRUE(m.is_canonical());
  EXPECT_EQ(m.row, (std::vector<index_t>{0, 0, 1, 2}));
  EXPECT_EQ(m.col, (std::vector<index_t>{0, 2, 0, 1}));
  EXPECT_EQ(m.val, (std::vector<value_t>{4.0, 2.0, 3.0, 1.0}));
}

TEST(Coo, CanonicalizeSumsDuplicates) {
  CooMatrix m(2, 2);
  m.add(1, 1, 1.0);
  m.add(0, 0, 2.0);
  m.add(1, 1, 3.0);
  m.add(1, 1, 4.0);
  m.canonicalize();
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.row, (std::vector<index_t>{0, 1}));
  EXPECT_EQ(m.col, (std::vector<index_t>{0, 1}));
  EXPECT_EQ(m.val, (std::vector<value_t>{2.0, 8.0}));
}

TEST(Coo, CanonicalizeIsIdempotent) {
  CooMatrix m(5, 5);
  m.add(4, 4, 1.0);
  m.add(1, 3, 2.0);
  m.add(1, 3, 2.5);
  m.canonicalize();
  const auto rows = m.row;
  const auto cols = m.col;
  const auto vals = m.val;
  m.canonicalize();
  EXPECT_EQ(m.row, rows);
  EXPECT_EQ(m.col, cols);
  EXPECT_EQ(m.val, vals);
}

TEST(Coo, InBoundsDetection) {
  CooMatrix m(2, 3);
  m.add(1, 2, 1.0);
  EXPECT_TRUE(m.in_bounds());
  m.add(2, 0, 1.0);  // row out of range
  EXPECT_FALSE(m.in_bounds());
}

TEST(Coo, IsCanonicalRejectsDuplicates) {
  CooMatrix m(2, 2);
  m.add(0, 0, 1.0);
  m.add(0, 0, 2.0);
  EXPECT_FALSE(m.is_canonical());
}

TEST(Coo, LargeRandomCanonicalization) {
  CooMatrix m(1000, 1000);
  // Deterministic pseudo-random entries with many duplicates.
  std::uint64_t x = 88172645463325252ull;
  value_t expected_sum = 0;
  for (int i = 0; i < 50000; ++i) {
    x ^= x << 13; x ^= x >> 7; x ^= x << 17;
    const auto r = static_cast<index_t>(x % 997);
    const auto c = static_cast<index_t>((x >> 20) % 997);
    m.add(r, c, 1.0);
    expected_sum += 1.0;
  }
  m.canonicalize();
  EXPECT_TRUE(m.is_canonical());
  EXPECT_LT(m.nnz(), 50000);  // duplicates existed and were merged
  value_t total = 0;
  for (const value_t v : m.val) total += v;
  EXPECT_DOUBLE_EQ(total, expected_sum);  // mass conserved
}

}  // namespace
}  // namespace pbs::mtx
