#include "pb/pb_config.hpp"

#include <gtest/gtest.h>

namespace pbs::pb {
namespace {

TEST(PhaseStats, BandwidthComputation) {
  PhaseStats s;
  s.seconds = 2.0;
  s.bytes = 4e9;
  EXPECT_DOUBLE_EQ(s.gbs(), 2.0);
}

TEST(PhaseStats, ZeroTimeGivesZeroBandwidth) {
  PhaseStats s;
  s.bytes = 1e9;
  EXPECT_DOUBLE_EQ(s.gbs(), 0.0);
}

TEST(Telemetry, MflopsUsesTotalTime) {
  PbTelemetry t;
  t.flop = 10'000'000;
  t.expand.seconds = 0.5;
  t.sort.seconds = 0.5;
  EXPECT_DOUBLE_EQ(t.total_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(t.mflops(), 10.0);
}

TEST(Telemetry, CfZeroWhenEmpty) {
  PbTelemetry t;
  EXPECT_DOUBLE_EQ(t.cf(), 0.0);
  t.flop = 30;
  t.nnz_c = 10;
  EXPECT_DOUBLE_EQ(t.cf(), 3.0);
}

TEST(Config, DefaultsMatchPaper) {
  const PbConfig cfg;
  EXPECT_EQ(cfg.local_bin_bytes, 512);  // Algorithm 2 line 3
  EXPECT_EQ(cfg.nbins, 0);              // auto = Algorithm 3 line 6
  EXPECT_EQ(cfg.policy, BinPolicy::kRange);
}

}  // namespace
}  // namespace pbs::pb
