#include "pb/pb_config.hpp"

#include <gtest/gtest.h>

namespace pbs::pb {
namespace {

TEST(PhaseStats, BandwidthComputation) {
  PhaseStats s;
  s.seconds = 2.0;
  s.bytes = 4e9;
  EXPECT_DOUBLE_EQ(s.gbs(), 2.0);
}

TEST(PhaseStats, ZeroTimeGivesZeroBandwidth) {
  PhaseStats s;
  s.bytes = 1e9;
  EXPECT_DOUBLE_EQ(s.gbs(), 0.0);
}

TEST(Telemetry, MflopsUsesTotalTime) {
  PbTelemetry t;
  t.flop = 10'000'000;
  t.expand.seconds = 0.5;
  t.sort.seconds = 0.5;
  EXPECT_DOUBLE_EQ(t.total_seconds(), 1.0);
  EXPECT_DOUBLE_EQ(t.mflops(), 10.0);
}

TEST(Telemetry, CfZeroWhenEmpty) {
  PbTelemetry t;
  EXPECT_DOUBLE_EQ(t.cf(), 0.0);
  t.flop = 30;
  t.nnz_c = 10;
  EXPECT_DOUBLE_EQ(t.cf(), 3.0);
}

TEST(Config, DefaultsMatchPaper) {
  const PbConfig cfg;
  EXPECT_EQ(cfg.local_bin_bytes, 512);  // Algorithm 2 line 3
  EXPECT_EQ(cfg.nbins, 0);              // auto = Algorithm 3 line 6
  EXPECT_EQ(cfg.policy, BinPolicy::kRange);
  EXPECT_EQ(cfg.schedule, PbSchedule::kAuto);
}

TEST(Config, ScheduleResolution) {
  // Pipelining exists to overlap phases across workers; a single thread
  // has nothing to overlap and keeps the barrier code path.
  EXPECT_EQ(resolve_schedule(PbSchedule::kAuto, 1), PbSchedule::kBarrier);
  EXPECT_EQ(resolve_schedule(PbSchedule::kAuto, 2), PbSchedule::kPipeline);
  EXPECT_EQ(resolve_schedule(PbSchedule::kAuto, 16), PbSchedule::kPipeline);
  // Explicit requests are honored at any thread count.
  EXPECT_EQ(resolve_schedule(PbSchedule::kPipeline, 1), PbSchedule::kPipeline);
  EXPECT_EQ(resolve_schedule(PbSchedule::kBarrier, 16), PbSchedule::kBarrier);
}

TEST(Telemetry, OverlapIsBusyTimeMinusWall) {
  PbTelemetry t;
  t.expand.seconds = 0.4;
  t.sort.seconds = 0.3;
  t.compress.seconds = 0.2;
  t.convert.seconds = 0.1;
  // Barrier runs leave wall_seconds 0: phases are serial, no overlap.
  EXPECT_DOUBLE_EQ(t.overlap_seconds(), 0.0);
  EXPECT_DOUBLE_EQ(t.total_seconds(), 1.0);
  // Pipelined run: the numeric phases' busy time exceeded the wall.
  t.schedule = PbSchedule::kPipeline;
  t.wall_seconds = 0.7;
  EXPECT_DOUBLE_EQ(t.overlap_seconds(), 0.3);
  EXPECT_DOUBLE_EQ(t.total_seconds(), t.symbolic.seconds + 0.7);
}

TEST(Schedule, NamesRoundTrip) {
  EXPECT_STREQ(to_string(PbSchedule::kAuto), "auto");
  EXPECT_STREQ(to_string(PbSchedule::kBarrier), "barrier");
  EXPECT_STREQ(to_string(PbSchedule::kPipeline), "pipeline");
}

}  // namespace
}  // namespace pbs::pb
