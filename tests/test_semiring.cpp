#include "spgemm/semiring.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "matrix/ops.hpp"
#include "spgemm/registry.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

using testutil::from_triplets;

TEST(Semiring, PlusTimesMatchesNumericSpGemm) {
  const mtx::CsrMatrix a = testutil::exact_er(200, 200, 5.0, 61);
  const SpGemmProblem p = SpGemmProblem::square(a);
  EXPECT_TRUE(equal_exact(spgemm_semiring<PlusTimes>(a, a),
                          reference_spgemm(p)));
}

TEST(Semiring, MinPlusComputesTwoHopDistances) {
  // Weighted digraph: 0 -(3)-> 1 -(4)-> 2 and 0 -(10)-> 2 directly.
  // Two-hop relaxation: (A ⊗ A)(0,2) = min(3+4) = 7.
  const mtx::CsrMatrix a = from_triplets(
      3, 3, {{0, 1, 3.0}, {1, 2, 4.0}, {0, 2, 10.0}});
  const mtx::CsrMatrix d2 = spgemm_semiring<MinPlus>(a, a);
  bool found = false;
  for (nnz_t i = d2.rowptr[0]; i < d2.rowptr[1]; ++i) {
    if (d2.colids[i] == 2) {
      EXPECT_DOUBLE_EQ(d2.vals[i], 7.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Semiring, MinPlusClosureEqualsFloydWarshall) {
  // Random weighted digraph with self-loops of weight 0; repeated min-plus
  // squaring must converge to the Floyd–Warshall distances on the
  // reachable pairs.
  const index_t n = 24;
  mtx::CooMatrix coo(n, n);
  mtx::SplitMix64 rng(7);
  for (index_t i = 0; i < n; ++i) coo.add(i, i, 0.0);  // d(i,i) = 0
  for (int e = 0; e < 4 * n; ++e) {
    const auto u = static_cast<index_t>(rng.next_below(n));
    const auto v = static_cast<index_t>(rng.next_below(n));
    coo.add(u, v, static_cast<value_t>(1 + rng.next_below(9)));
  }
  // Duplicate edges must combine by min, not +: canonicalize would sum, so
  // build distances dense first and rebuild the matrix.
  std::vector<std::vector<value_t>> w(
      n, std::vector<value_t>(n, std::numeric_limits<value_t>::infinity()));
  for (nnz_t i = 0; i < coo.nnz(); ++i) {
    w[coo.row[i]][coo.col[i]] = std::min(w[coo.row[i]][coo.col[i]], coo.val[i]);
  }
  mtx::CooMatrix clean(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (std::isfinite(w[i][j])) clean.add(i, j, w[i][j]);
    }
  }
  clean.canonicalize();
  mtx::CsrMatrix dist = mtx::coo_to_csr(clean);

  // Floyd–Warshall on the dense copy.
  auto fw = w;
  for (index_t k = 0; k < n; ++k) {
    for (index_t i = 0; i < n; ++i) {
      for (index_t j = 0; j < n; ++j) {
        fw[i][j] = std::min(fw[i][j], fw[i][k] + fw[k][j]);
      }
    }
  }

  // Min-plus squaring log2(n) times reaches the closure.
  for (int step = 0; step < 6; ++step) {
    dist = spgemm_semiring<MinPlus>(dist, dist);
  }

  for (index_t i = 0; i < n; ++i) {
    std::vector<value_t> row(n, std::numeric_limits<value_t>::infinity());
    for (nnz_t p = dist.rowptr[i]; p < dist.rowptr[static_cast<std::size_t>(i) + 1]; ++p) {
      row[dist.colids[p]] = dist.vals[p];
    }
    for (index_t j = 0; j < n; ++j) {
      if (std::isfinite(fw[i][j])) {
        EXPECT_DOUBLE_EQ(row[j], fw[i][j]) << i << "," << j;
      } else {
        EXPECT_FALSE(std::isfinite(row[j])) << i << "," << j;
      }
    }
  }
}

TEST(Semiring, BoolOrAndIsReachability) {
  // Chain 0 -> 1 -> 2: A² over bool semiring has exactly 0 -> 2.
  const mtx::CsrMatrix a = from_triplets(3, 3, {{0, 1, 1.0}, {1, 2, 1.0}});
  const mtx::CsrMatrix a2 = spgemm_semiring<BoolOrAnd>(a, a);
  EXPECT_EQ(a2.nnz(), 1);
  EXPECT_EQ(a2.colids[0], 2);
  EXPECT_EQ(a2.vals[0], 1.0);
}

TEST(Semiring, BoolValuesStayBoolean) {
  const mtx::CsrMatrix a =
      mtx::to_pattern(testutil::exact_rmat(7, 6.0, 62));
  const mtx::CsrMatrix a2 = spgemm_semiring<BoolOrAnd>(a, a);
  for (const value_t v : a2.vals) EXPECT_EQ(v, 1.0);
}

TEST(Semiring, MaxMinWidestPath) {
  // Two 2-hop routes 0->1->3 (capacities 5, 2) and 0->2->3 (3, 3):
  // widest 2-hop capacity is max(min(5,2), min(3,3)) = 3.
  const mtx::CsrMatrix a = from_triplets(
      4, 4, {{0, 1, 5.0}, {1, 3, 2.0}, {0, 2, 3.0}, {2, 3, 3.0}});
  const mtx::CsrMatrix c = spgemm_semiring<MaxMin>(a, a);
  bool found = false;
  for (nnz_t i = c.rowptr[0]; i < c.rowptr[1]; ++i) {
    if (c.colids[i] == 3) {
      EXPECT_DOUBLE_EQ(c.vals[i], 3.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Semiring, NamedDispatch) {
  const mtx::CsrMatrix a = testutil::exact_er(50, 50, 3.0, 63);
  EXPECT_TRUE(equal_exact(spgemm_semiring_named("plus_times", a, a),
                          spgemm_semiring<PlusTimes>(a, a)));
  EXPECT_TRUE(equal_exact(spgemm_semiring_named("min_plus", a, a),
                          spgemm_semiring<MinPlus>(a, a)));
  EXPECT_THROW(spgemm_semiring_named("nope", a, a), std::invalid_argument);
}

TEST(Semiring, DimensionMismatchThrows) {
  const mtx::CsrMatrix a = testutil::exact_er(10, 20, 2.0, 64);
  const mtx::CsrMatrix b = testutil::exact_er(30, 10, 2.0, 65);
  EXPECT_THROW(spgemm_semiring<PlusTimes>(a, b), std::invalid_argument);
}

TEST(Semiring, PatternIsSemiringIndependent) {
  // The structural pattern of A ⊗ B is the same for every semiring (no
  // semiring here produces structural zeros).
  const mtx::CsrMatrix a = testutil::exact_er(120, 120, 4.0, 66);
  const mtx::CsrMatrix p1 = spgemm_semiring<PlusTimes>(a, a);
  const mtx::CsrMatrix p2 = spgemm_semiring<MinPlus>(a, a);
  const mtx::CsrMatrix p3 = spgemm_semiring<BoolOrAnd>(a, a);
  EXPECT_EQ(p1.rowptr, p2.rowptr);
  EXPECT_EQ(p1.colids, p2.colids);
  EXPECT_EQ(p1.rowptr, p3.rowptr);
  EXPECT_EQ(p1.colids, p3.colids);
}

}  // namespace
}  // namespace pbs
