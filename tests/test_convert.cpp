#include "matrix/convert.hpp"

#include <gtest/gtest.h>

#include "matrix/generate.hpp"
#include "test_util.hpp"

namespace pbs::mtx {
namespace {

CooMatrix sample_coo() {
  CooMatrix coo(3, 4);
  coo.add(0, 1, 1.0);
  coo.add(0, 3, 2.0);
  coo.add(1, 0, 3.0);
  coo.add(2, 1, 4.0);
  coo.add(2, 2, 5.0);
  coo.canonicalize();
  return coo;
}

TEST(Convert, CooToCsr) {
  const CsrMatrix csr = coo_to_csr(sample_coo());
  ASSERT_TRUE(csr.valid());
  EXPECT_EQ(csr.nrows, 3);
  EXPECT_EQ(csr.ncols, 4);
  EXPECT_EQ(csr.rowptr, (std::vector<nnz_t>{0, 2, 3, 5}));
  EXPECT_EQ(csr.colids, (std::vector<index_t>{1, 3, 0, 1, 2}));
  EXPECT_EQ(csr.vals, (std::vector<value_t>{1, 2, 3, 4, 5}));
}

TEST(Convert, CooToCsc) {
  const CscMatrix csc = coo_to_csc(sample_coo());
  ASSERT_TRUE(csc.valid());
  EXPECT_EQ(csc.colptr, (std::vector<nnz_t>{0, 1, 3, 4, 5}));
  EXPECT_EQ(csc.rowids, (std::vector<index_t>{1, 0, 2, 2, 0}));
  EXPECT_EQ(csc.vals, (std::vector<value_t>{3, 1, 4, 5, 2}));
}

TEST(Convert, RoundTripCsrCoo) {
  const CooMatrix coo = sample_coo();
  const CooMatrix back = csr_to_coo(coo_to_csr(coo));
  EXPECT_EQ(back.row, coo.row);
  EXPECT_EQ(back.col, coo.col);
  EXPECT_EQ(back.val, coo.val);
}

TEST(Convert, CsrCscRoundTrip) {
  const CsrMatrix csr = coo_to_csr(sample_coo());
  const CsrMatrix back = csc_to_csr(csr_to_csc(csr));
  EXPECT_TRUE(equal_exact(csr, back));
}

TEST(Convert, EmptyMatrix) {
  CooMatrix coo(5, 7);
  const CsrMatrix csr = coo_to_csr(coo);
  EXPECT_TRUE(csr.valid());
  EXPECT_EQ(csr.nnz(), 0);
  EXPECT_EQ(csr.nrows, 5);
  const CscMatrix csc = csr_to_csc(csr);
  EXPECT_TRUE(csc.valid());
  EXPECT_EQ(csc.ncols, 7);
}

TEST(Convert, TransposeKnown) {
  // A = [1 2; 0 3], Aᵀ = [1 0; 2 3]
  const CsrMatrix a = testutil::from_triplets(
      2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  const CsrMatrix at = transpose(a);
  ASSERT_TRUE(at.valid());
  EXPECT_EQ(at.rowptr, (std::vector<nnz_t>{0, 1, 3}));
  EXPECT_EQ(at.colids, (std::vector<index_t>{0, 0, 1}));
  EXPECT_EQ(at.vals, (std::vector<value_t>{1, 2, 3}));
}

TEST(Convert, TransposeRectangular) {
  const CsrMatrix a = testutil::from_triplets(2, 5, {{0, 4, 1.0}, {1, 0, 2.0}});
  const CsrMatrix at = transpose(a);
  EXPECT_EQ(at.nrows, 5);
  EXPECT_EQ(at.ncols, 2);
  EXPECT_TRUE(at.valid());
  EXPECT_TRUE(equal_exact(transpose(at), a));
}

class ConvertRandom : public ::testing::TestWithParam<int> {};

TEST_P(ConvertRandom, AllPathsAgree) {
  const CooMatrix coo =
      generate_er(500, 300, 4.0, static_cast<std::uint64_t>(GetParam()));
  const CsrMatrix csr = coo_to_csr(coo);
  const CscMatrix csc_direct = coo_to_csc(coo);
  const CscMatrix csc_via_csr = csr_to_csc(csr);
  ASSERT_TRUE(csr.valid());
  ASSERT_TRUE(csc_direct.valid());
  EXPECT_EQ(csc_direct.colptr, csc_via_csr.colptr);
  EXPECT_EQ(csc_direct.rowids, csc_via_csr.rowids);
  EXPECT_EQ(csc_direct.vals, csc_via_csr.vals);
  EXPECT_TRUE(equal_exact(csr, csc_to_csr(csc_direct)));
  // Double transpose is identity.
  EXPECT_TRUE(equal_exact(csr, transpose(transpose(csr))));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvertRandom, ::testing::Range(1, 6));

}  // namespace
}  // namespace pbs::mtx
