#include "matrix/surrogates.hpp"

#include <gtest/gtest.h>

#include "matrix/mstats.hpp"

namespace pbs::mtx {
namespace {

TEST(Surrogates, SuiteHasTwelveEntries) {
  EXPECT_EQ(table6_suite().size(), 12u);
}

TEST(Surrogates, SortedByCfIsAscending) {
  const auto sorted = table6_sorted_by_cf();
  for (std::size_t i = 1; i < sorted.size(); ++i)
    EXPECT_LE(sorted[i - 1].cf, sorted[i].cf);
  // Fig. 11 extremes: m133-b3 is leftmost, hood rightmost.
  EXPECT_EQ(sorted.front().name, "m133_b3");
  EXPECT_EQ(sorted.back().name, "hood");
}

TEST(Surrogates, LookupByName) {
  const SuiteEntry& e = suite_entry("cant");
  EXPECT_EQ(e.n, 62451);
  EXPECT_NEAR(e.cf, 15.45, 1e-9);
  EXPECT_THROW(suite_entry("nope"), std::invalid_argument);
}

TEST(Surrogates, PublishedStatsAreSelfConsistent) {
  // 10% slack: the paper prints flops/nnz(C) rounded to 3 significant
  // digits and its cage12 cf disagrees with its own ratio by ~6%.
  for (const SuiteEntry& e : table6_suite()) {
    EXPECT_NEAR(static_cast<double>(e.nnz) / e.n, e.d, 0.01 * e.d) << e.name;
    EXPECT_NEAR(static_cast<double>(e.flops) / static_cast<double>(e.nnz_c),
                e.cf, 0.10 * e.cf)
        << e.name;
  }
}

class SurrogateBuild : public ::testing::TestWithParam<const char*> {};

TEST_P(SurrogateBuild, ShrunkSurrogateTracksPublishedShape) {
  const SuiteEntry& e = suite_entry(GetParam());
  // Shrink hard so the whole suite builds in seconds under ctest.
  const SuiteMatrix sm = load_suite_matrix(e, /*shrink=*/16.0);
  ASSERT_TRUE(sm.matrix.valid());
  EXPECT_FALSE(sm.from_file);

  // Dimension scaled by ~1/16 (R-MAT rounds to a power of two).
  EXPECT_GT(sm.matrix.nrows, e.n / 40);
  EXPECT_LT(sm.matrix.nrows, e.n / 6);

  // Mean degree within 30% of published (R-MAT duplicate-merge loses some).
  EXPECT_GT(sm.matrix.avg_degree(), 0.6 * e.d) << e.name;
  EXPECT_LT(sm.matrix.avg_degree(), 1.3 * e.d) << e.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllMatrices, SurrogateBuild,
    ::testing::Values("2cubes_sphere", "amazon0505", "cage12", "cant", "hood",
                      "m133_b3", "majorbasis", "mc2depi", "offshore",
                      "patents_main", "scircuit", "web_Google"));

TEST(Surrogates, CompressionFactorRegimePreserved) {
  // The property Fig. 11 depends on: the high-cf FEM matrices stay clearly
  // above the cf≈4 crossover, the low-cf ones stay below.
  const SuiteMatrix cant = load_suite_matrix(suite_entry("cant"), 8.0);
  const SuiteMatrix m133 = load_suite_matrix(suite_entry("m133_b3"), 8.0);
  const SquareStats cant_s = square_stats(cant.matrix);
  const SquareStats m133_s = square_stats(m133.matrix);
  EXPECT_GT(cant_s.cf, 4.0);
  EXPECT_LT(m133_s.cf, 2.0);
  EXPECT_GT(cant_s.cf, m133_s.cf * 2);
}

TEST(Surrogates, DeterministicAcrossCalls) {
  const SuiteMatrix a = load_suite_matrix(suite_entry("scircuit"), 16.0);
  const SuiteMatrix b = load_suite_matrix(suite_entry("scircuit"), 16.0);
  EXPECT_TRUE(equal_exact(a.matrix, b.matrix));
}

}  // namespace
}  // namespace pbs::mtx
