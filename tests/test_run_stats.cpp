#include "common/run_stats.hpp"

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(RunStats, Empty) {
  const RunStats s = RunStats::of({});
  EXPECT_EQ(s.n, 0);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.mean, 0);
}

TEST(RunStats, SingleSample) {
  const RunStats s = RunStats::of({3.5});
  EXPECT_EQ(s.n, 1);
  EXPECT_DOUBLE_EQ(s.min, 3.5);
  EXPECT_DOUBLE_EQ(s.max, 3.5);
  EXPECT_DOUBLE_EQ(s.median, 3.5);
  EXPECT_DOUBLE_EQ(s.mean, 3.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(RunStats, KnownValues) {
  const RunStats s = RunStats::of({4.0, 2.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  // Sample stddev of {1,2,3,4} = sqrt(5/3).
  EXPECT_NEAR(s.stddev, 1.2909944, 1e-6);
}

TEST(RunStats, OddCountMedian) {
  const RunStats s = RunStats::of({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(s.median, 3.0);
}

}  // namespace
}  // namespace pbs
