#include "pb/expand.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/aligned_buffer.hpp"
#include "matrix/convert.hpp"
#include "matrix/generate.hpp"

namespace pbs::pb {
namespace {

struct Operands {
  mtx::CscMatrix a;
  mtx::CsrMatrix b;
};

Operands er_operands(index_t n, double d, std::uint64_t seed) {
  const mtx::CsrMatrix a = mtx::coo_to_csr(mtx::generate_er(n, n, d, seed));
  const mtx::CsrMatrix b =
      mtx::coo_to_csr(mtx::generate_er(n, n, d, seed + 1000));
  return {mtx::csr_to_csc(a), b};
}

// Brute-force expansion: every (r,c,val) product tuple, as a multimap.
std::multimap<std::uint64_t, value_t> brute_tuples(const Operands& ops) {
  std::multimap<std::uint64_t, value_t> out;
  for (index_t i = 0; i < ops.a.ncols; ++i) {
    const auto rows = ops.a.col_rows(i);
    const auto avals = ops.a.col_vals(i);
    for (std::size_t ai = 0; ai < rows.size(); ++ai) {
      for (nnz_t bi = ops.b.rowptr[i];
           bi < ops.b.rowptr[static_cast<std::size_t>(i) + 1]; ++bi) {
        out.emplace(make_key(rows[ai], ops.b.colids[bi]),
                    avals[ai] * ops.b.vals[bi]);
      }
    }
  }
  return out;
}

class ExpandPolicy : public ::testing::TestWithParam<BinPolicy> {};

TEST_P(ExpandPolicy, ProducesExactTupleMultiset) {
  const Operands ops = er_operands(400, 4.0, 1);
  PbConfig cfg;
  cfg.policy = GetParam();
  cfg.nbins = 8;
  cfg.validate = true;
  const SymbolicResult sym = pb_symbolic(ops.a, ops.b, cfg);

  AlignedBuffer<Tuple> out(static_cast<std::size_t>(sym.bin_offsets.back()));
  pb_expand(ops.a, ops.b, sym, cfg, out.data());

  // Same multiset of (key, value) pairs as brute force.  Only the filled
  // prefix of each (padded) bin region holds tuples.
  std::multimap<std::uint64_t, value_t> expected = brute_tuples(ops);
  ASSERT_EQ(static_cast<nnz_t>(expected.size()), sym.flop);
  std::vector<std::pair<std::uint64_t, value_t>> actual;
  actual.reserve(static_cast<std::size_t>(sym.flop));
  for (int bin = 0; bin < sym.layout.nbins; ++bin) {
    for (nnz_t i = 0; i < sym.bin_fill[static_cast<std::size_t>(bin)]; ++i) {
      const Tuple& t =
          out[static_cast<std::size_t>(sym.bin_offsets[static_cast<std::size_t>(bin)] + i)];
      actual.emplace_back(t.key, t.val);
    }
  }
  std::sort(actual.begin(), actual.end());
  std::vector<std::pair<std::uint64_t, value_t>> exp(expected.begin(),
                                                     expected.end());
  std::sort(exp.begin(), exp.end());
  EXPECT_EQ(actual, exp);
}

TEST_P(ExpandPolicy, TuplesLandInTheirBins) {
  const Operands ops = er_operands(500, 5.0, 2);
  PbConfig cfg;
  cfg.policy = GetParam();
  cfg.nbins = 16;
  const SymbolicResult sym = pb_symbolic(ops.a, ops.b, cfg);

  AlignedBuffer<Tuple> out(static_cast<std::size_t>(sym.bin_offsets.back()));
  pb_expand(ops.a, ops.b, sym, cfg, out.data());

  for (int bin = 0; bin < sym.layout.nbins; ++bin) {
    for (nnz_t i = sym.bin_offsets[static_cast<std::size_t>(bin)];
         i < sym.bin_offsets[static_cast<std::size_t>(bin)] +
                 sym.bin_fill[static_cast<std::size_t>(bin)];
         ++i) {
      ASSERT_EQ(sym.layout.binid(key_row(out[static_cast<std::size_t>(i)].key)),
                bin)
          << "tuple in wrong bin";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, ExpandPolicy,
                         ::testing::Values(BinPolicy::kRange,
                                           BinPolicy::kModulo,
                                           BinPolicy::kAdaptive));

TEST(Expand, TinyLocalBinsStillCorrect) {
  // One-tuple local bins force a flush per tuple: the degenerate path.
  const Operands ops = er_operands(200, 4.0, 3);
  PbConfig cfg;
  cfg.nbins = 4;
  cfg.local_bin_bytes = static_cast<int>(sizeof(Tuple));
  cfg.validate = true;
  const SymbolicResult sym = pb_symbolic(ops.a, ops.b, cfg);
  AlignedBuffer<Tuple> out(static_cast<std::size_t>(sym.bin_offsets.back()));
  const nnz_t flushes = pb_expand(ops.a, ops.b, sym, cfg, out.data());
  EXPECT_EQ(flushes, sym.flop);  // every tuple flushed individually
}

TEST(Expand, WideLocalBinsFlushRarely) {
  const Operands ops = er_operands(200, 4.0, 3);
  PbConfig cfg;
  cfg.nbins = 4;
  cfg.local_bin_bytes = 4096;
  const SymbolicResult sym = pb_symbolic(ops.a, ops.b, cfg);
  AlignedBuffer<Tuple> out(static_cast<std::size_t>(sym.bin_offsets.back()));
  const nnz_t flushes = pb_expand(ops.a, ops.b, sym, cfg, out.data());
  EXPECT_LT(flushes, sym.flop / 16);
}

TEST(Expand, ValueProductsAreExact) {
  // Integer-valued inputs: each expanded tuple must be the exact product.
  mtx::CooMatrix acoo(4, 4), bcoo(4, 4);
  acoo.add(1, 0, 3.0);
  acoo.add(2, 0, 5.0);
  bcoo.add(0, 1, 7.0);
  bcoo.add(0, 3, 11.0);
  acoo.canonicalize();
  bcoo.canonicalize();
  const Operands ops{mtx::csr_to_csc(mtx::coo_to_csr(acoo)),
                     mtx::coo_to_csr(bcoo)};
  PbConfig cfg;
  cfg.nbins = 2;
  const SymbolicResult sym = pb_symbolic(ops.a, ops.b, cfg);
  ASSERT_EQ(sym.flop, 4);
  AlignedBuffer<Tuple> out(static_cast<std::size_t>(sym.bin_offsets.back()));
  pb_expand(ops.a, ops.b, sym, cfg, out.data());
  std::vector<std::pair<std::uint64_t, value_t>> got;
  for (int bin = 0; bin < sym.layout.nbins; ++bin) {
    for (nnz_t i = 0; i < sym.bin_fill[static_cast<std::size_t>(bin)]; ++i) {
      const Tuple& t = out[static_cast<std::size_t>(
          sym.bin_offsets[static_cast<std::size_t>(bin)] + i)];
      got.emplace_back(t.key, t.val);
    }
  }
  std::sort(got.begin(), got.end());
  const std::vector<std::pair<std::uint64_t, value_t>> expected{
      {make_key(1, 1), 21.0},
      {make_key(1, 3), 33.0},
      {make_key(2, 1), 35.0},
      {make_key(2, 3), 55.0}};
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace pbs::pb
