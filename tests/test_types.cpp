#include "common/types.hpp"

#include <gtest/gtest.h>

namespace pbs {
namespace {

TEST(NextPow2, HandlesSmallValues) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(4), 4u);
  EXPECT_EQ(next_pow2(5), 8u);
}

TEST(NextPow2, ExactPowersAreFixedPoints) {
  for (int s = 0; s < 62; ++s) {
    const std::uint64_t p = std::uint64_t{1} << s;
    EXPECT_EQ(next_pow2(p), p) << "s=" << s;
  }
}

TEST(NextPow2, RoundsUpJustAbovePowers) {
  for (int s = 1; s < 62; ++s) {
    const std::uint64_t p = std::uint64_t{1} << s;
    EXPECT_EQ(next_pow2(p + 1), p << 1) << "s=" << s;
  }
}

TEST(CeilLog2, HandlesSmallValues) {
  EXPECT_EQ(ceil_log2(0), 0);
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
  EXPECT_EQ(ceil_log2(1025), 11);
}

TEST(CeilLog2, InverseOfNextPow2) {
  for (std::uint64_t n : {2ull, 3ull, 100ull, 4096ull, 1000000ull}) {
    EXPECT_EQ(std::uint64_t{1} << ceil_log2(n), next_pow2(n)) << "n=" << n;
  }
}

TEST(TupleModel, PaperAssumesSixteenBytesPerNonzero) {
  EXPECT_EQ(kBytesPerTuple, 16u);
}

}  // namespace
}  // namespace pbs
