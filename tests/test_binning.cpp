#include "pb/binning.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pbs::pb {
namespace {

TEST(RangeLayout, CoversAllRowsInOrder) {
  const BinLayout l = make_range_layout(1000, 8);
  EXPECT_EQ(l.policy, BinPolicy::kRange);
  EXPECT_GE(l.nbins, 4);
  EXPECT_LE(l.nbins, 8);
  int prev = 0;
  for (index_t r = 0; r < 1000; ++r) {
    const int b = l.binid(r);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, l.nbins);
    ASSERT_GE(b, prev) << "range bins must be monotone in row";
    prev = b;
  }
  EXPECT_EQ(l.binid(999), l.nbins - 1);
}

TEST(RangeLayout, RowsPerBinIsPowerOfTwo) {
  for (index_t n : {10, 100, 1024, 1000000}) {
    for (int target : {1, 4, 64, 1024}) {
      const BinLayout l = make_range_layout(n, target);
      const index_t per = l.rows_per_bin();
      EXPECT_EQ(per & (per - 1), 0) << "n=" << n << " target=" << target;
      EXPECT_GE(static_cast<nnz_t>(per) * l.nbins, n);
    }
  }
}

TEST(RangeLayout, SingleBin) {
  const BinLayout l = make_range_layout(100, 1);
  EXPECT_EQ(l.nbins, 1);
  EXPECT_EQ(l.binid(0), 0);
  EXPECT_EQ(l.binid(99), 0);
}

TEST(RangeLayout, MoreBinsThanRowsDegradesGracefully) {
  const BinLayout l = make_range_layout(5, 64);
  EXPECT_LE(l.nbins, 5);
  for (index_t r = 0; r < 5; ++r) EXPECT_LT(l.binid(r), l.nbins);
}

TEST(ModuloLayout, RoundRobinAssignment) {
  const BinLayout l = make_modulo_layout(1000, 8);
  EXPECT_EQ(l.nbins, 8);
  for (index_t r = 0; r < 100; ++r) EXPECT_EQ(l.binid(r), r % 8);
}

TEST(ModuloLayout, PowerOfTwoBins) {
  const BinLayout l = make_modulo_layout(1000, 6);
  // 6 rounds to a power of two so the mask trick works.
  EXPECT_TRUE(l.nbins == 4 || l.nbins == 8);
  EXPECT_EQ(l.mask, static_cast<std::uint32_t>(l.nbins - 1));
}

TEST(AdaptiveLayout, BalancesFlops) {
  // One hub row with 10x the flop of everything else combined.
  std::vector<nnz_t> row_flops(100, 10);
  row_flops[50] = 10000;
  const BinLayout l = make_adaptive_layout(row_flops, 8);
  EXPECT_EQ(l.policy, BinPolicy::kAdaptive);
  EXPECT_EQ(l.bounds.front(), 0);
  EXPECT_EQ(l.bounds.back(), 100);
  // The hub row must sit alone (or nearly) in its bin.
  const int hub_bin = l.binid(50);
  const index_t lo = l.bounds[static_cast<std::size_t>(hub_bin)];
  const index_t hi = l.bounds[static_cast<std::size_t>(hub_bin) + 1];
  EXPECT_LE(hi - lo, 2);
}

TEST(AdaptiveLayout, UniformFlopsGiveUniformBins) {
  std::vector<nnz_t> row_flops(128, 5);
  const BinLayout l = make_adaptive_layout(row_flops, 8);
  EXPECT_GE(l.nbins, 6);
  EXPECT_LE(l.nbins, 16);
  for (index_t r = 0; r < 128; ++r) {
    const int b = l.binid(r);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, l.nbins);
    ASSERT_GE(r, l.bounds[static_cast<std::size_t>(b)]);
    ASSERT_LT(r, l.bounds[static_cast<std::size_t>(b) + 1]);
  }
}

TEST(AdaptiveLayout, EmptyRowsCollapse) {
  std::vector<nnz_t> row_flops(64, 0);
  const BinLayout l = make_adaptive_layout(row_flops, 4);
  EXPECT_GE(l.nbins, 1);
  EXPECT_EQ(l.bounds.back(), 64);
}

TEST(AutoNbins, FollowsPaperRule) {
  const std::size_t l2 = 1024 * 1024;  // 1MB, Skylake
  // flop so small everything fits in half of L2: one bin.
  EXPECT_EQ(auto_nbins(1000, l2), 1);
  // 16M tuples * 16B = 256MB; /(0.5MB) = 512 bins.
  EXPECT_EQ(auto_nbins(16 << 20, l2), 512);
  // Rounds up to a power of two.
  EXPECT_EQ(auto_nbins((16 << 20) + 1, l2), 1024);
}

TEST(AutoNbins, ClampsAtBounds) {
  EXPECT_EQ(auto_nbins(0, 1 << 20), 1);
  EXPECT_EQ(auto_nbins(nnz_t{1} << 40, 1 << 20), 1 << 16);  // upper clamp
}

TEST(BinPolicyNames, RoundTrip) {
  EXPECT_STREQ(to_string(BinPolicy::kRange), "range");
  EXPECT_STREQ(to_string(BinPolicy::kModulo), "modulo");
  EXPECT_STREQ(to_string(BinPolicy::kAdaptive), "adaptive");
}

}  // namespace
}  // namespace pbs::pb
