#include "pb/sort_compress.hpp"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <vector>

namespace pbs::pb {
namespace {

TEST(SortCompress, SingleBinKnownCase) {
  std::vector<Tuple> t{{make_key(1, 2), 1.0},
                       {make_key(0, 5), 2.0},
                       {make_key(1, 2), 3.0},
                       {make_key(0, 1), 4.0}};
  const std::vector<nnz_t> offsets{0, 4};
  const std::vector<nnz_t> fill{4};
  const SortCompressResult r = pb_sort_compress(t.data(), offsets, fill, 1);
  ASSERT_EQ(r.merged[0], 3);
  EXPECT_EQ(t[0].key, make_key(0, 1));
  EXPECT_EQ(t[0].val, 4.0);
  EXPECT_EQ(t[1].key, make_key(0, 5));
  EXPECT_EQ(t[1].val, 2.0);
  EXPECT_EQ(t[2].key, make_key(1, 2));
  EXPECT_EQ(t[2].val, 4.0);  // 1 + 3 merged
}

TEST(SortCompress, EmptyBinsHandled) {
  std::vector<Tuple> t{{make_key(0, 0), 1.0}};
  const std::vector<nnz_t> offsets{0, 0, 1, 1};
  const std::vector<nnz_t> fill{0, 1, 0};
  const SortCompressResult r = pb_sort_compress(t.data(), offsets, fill, 3);
  EXPECT_EQ(r.merged[0], 0);
  EXPECT_EQ(r.merged[1], 1);
  EXPECT_EQ(r.merged[2], 0);
}

TEST(SortCompress, AllDuplicatesCollapseToOne) {
  std::vector<Tuple> t(1000, Tuple{make_key(3, 7), 1.0});
  const std::vector<nnz_t> offsets{0, 1000};
  const std::vector<nnz_t> fill{1000};
  const SortCompressResult r = pb_sort_compress(t.data(), offsets, fill, 1);
  ASSERT_EQ(r.merged[0], 1);
  EXPECT_EQ(t[0].val, 1000.0);
}

TEST(SortCompress, NoDuplicatesKeepsAll) {
  std::vector<Tuple> t;
  for (index_t i = 99; i >= 0; --i) t.push_back({make_key(0, i), 1.0});
  const std::vector<nnz_t> offsets{0, 100};
  const std::vector<nnz_t> fill{100};
  const SortCompressResult r = pb_sort_compress(t.data(), offsets, fill, 1);
  EXPECT_EQ(r.merged[0], 100);
  for (index_t i = 0; i < 100; ++i) EXPECT_EQ(key_col(t[i].key), i);
}

TEST(SortCompress, RandomizedMatchesMapSemantics) {
  std::mt19937_64 rng(12);
  const int nbins = 4;
  const int per_bin = 5000;
  std::vector<Tuple> t;
  std::vector<nnz_t> offsets{0};
  std::map<std::uint64_t, value_t> expected[nbins];
  for (int bin = 0; bin < nbins; ++bin) {
    for (int i = 0; i < per_bin; ++i) {
      // Rows partitioned by bin to respect the bin invariant.
      const auto row = static_cast<index_t>(bin * 100 + rng() % 100);
      const auto col = static_cast<index_t>(rng() % 50);
      const auto val = static_cast<value_t>(1 + rng() % 5);
      t.push_back({make_key(row, col), val});
      expected[bin][make_key(row, col)] += val;
    }
    offsets.push_back(offsets.back() + per_bin);
  }
  const std::vector<nnz_t> fill(nbins, per_bin);

  const SortCompressResult r = pb_sort_compress(t.data(), offsets, fill, nbins);
  for (int bin = 0; bin < nbins; ++bin) {
    ASSERT_EQ(r.merged[static_cast<std::size_t>(bin)],
              static_cast<nnz_t>(expected[bin].size()));
    auto it = expected[bin].begin();
    for (nnz_t i = 0; i < r.merged[static_cast<std::size_t>(bin)]; ++i, ++it) {
      const Tuple& tp = t[static_cast<std::size_t>(offsets[bin] + i)];
      ASSERT_EQ(tp.key, it->first);
      ASSERT_EQ(tp.val, it->second);  // exact: small-integer values
    }
  }
}

TEST(SortCompress, TimersAreNonNegative) {
  std::vector<Tuple> t(1000);
  for (std::size_t i = 0; i < t.size(); ++i)
    t[i] = {make_key(0, static_cast<index_t>(i % 97)), 1.0};
  const std::vector<nnz_t> offsets{0, 1000};
  const std::vector<nnz_t> fill{1000};
  const SortCompressResult r = pb_sort_compress(t.data(), offsets, fill, 1);
  EXPECT_GE(r.sort_seconds, 0.0);
  EXPECT_GE(r.compress_seconds, 0.0);
}

TEST(KeyCodec, RoundTrips) {
  for (const index_t r : {0, 1, 1000, (1 << 20) - 1}) {
    for (const index_t c : {0, 7, 65535, (1 << 20) - 1}) {
      const std::uint64_t k = make_key(r, c);
      EXPECT_EQ(key_row(k), r);
      EXPECT_EQ(key_col(k), c);
    }
  }
}

TEST(KeyCodec, OrderIsRowMajor) {
  EXPECT_LT(make_key(0, 1000000), make_key(1, 0));
  EXPECT_LT(make_key(5, 2), make_key(5, 3));
}

}  // namespace
}  // namespace pbs::pb
