#include <gtest/gtest.h>

#include "common/cache_info.hpp"
#include "common/stream.hpp"

namespace pbs {
namespace {

TEST(CacheInfo, ReportsPlausibleSizes) {
  const CacheInfo& c = cache_info();
  EXPECT_GE(c.l1d_bytes, 8u * 1024);      // nothing modern is smaller
  EXPECT_GE(c.l2_bytes, 64u * 1024);
  EXPECT_GE(c.l2_bytes, c.l1d_bytes);     // hierarchy sanity
  EXPECT_GE(c.line_bytes, 32u);
  EXPECT_LE(c.line_bytes, 256u);
}

TEST(CacheInfo, StableAcrossCalls) {
  const CacheInfo& a = cache_info();
  const CacheInfo& b = cache_info();
  EXPECT_EQ(&a, &b);
}

TEST(Stream, ReportsPositiveBandwidth) {
  // Tiny arrays: this checks plumbing, not peak bandwidth.
  const StreamResult r = run_stream(/*elements=*/1 << 18, /*ntimes=*/2);
  EXPECT_GT(r.copy_gbs, 0.0);
  EXPECT_GT(r.scale_gbs, 0.0);
  EXPECT_GT(r.add_gbs, 0.0);
  EXPECT_GT(r.triad_gbs, 0.0);
  EXPECT_GE(r.best_gbs(), r.copy_gbs);
  EXPECT_GE(r.best_gbs(), r.triad_gbs);
}

TEST(Stream, SingleThreadWorks) {
  const StreamResult r = run_stream(1 << 16, 2, /*threads=*/1);
  EXPECT_GT(r.best_gbs(), 0.0);
}

}  // namespace
}  // namespace pbs
