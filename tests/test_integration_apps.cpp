// Integration tests mirroring the example applications: each drives several
// library subsystems (generators, SpGEMM, element-wise ops) through a real
// workload with an independently checkable answer.
#include <gtest/gtest.h>

#include <cmath>

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "pb/pb_spgemm.hpp"
#include "spgemm/registry.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

// Triangle counting via L·L masked by L (L = strictly lower adjacency):
// Σ (L·L .* L) counts each triangle exactly once.
value_t count_triangles(const mtx::CsrMatrix& adj) {
  const mtx::CsrMatrix lower = mtx::to_pattern(mtx::tril(adj));
  const SpGemmProblem p = SpGemmProblem::square(lower);
  const mtx::CsrMatrix ll = pb::pb_spgemm(p.a_csc, p.b_csr).c;
  return mtx::value_sum(mtx::hadamard(ll, lower));
}

mtx::CsrMatrix complete_graph(index_t n) {
  mtx::CooMatrix coo(n, n);
  for (index_t i = 0; i < n; ++i) {
    for (index_t j = 0; j < n; ++j) {
      if (i != j) coo.add(i, j, 1.0);
    }
  }
  coo.canonicalize();
  return mtx::coo_to_csr(coo);
}

TEST(TriangleCounting, CompleteGraphHasNChoose3) {
  for (const index_t n : {4, 5, 8, 12}) {
    const value_t expected = static_cast<value_t>(n * (n - 1) * (n - 2) / 6);
    EXPECT_DOUBLE_EQ(count_triangles(complete_graph(n)), expected) << "K" << n;
  }
}

TEST(TriangleCounting, TreeHasNoTriangles) {
  // A path graph: 0-1-2-...-63.
  mtx::CooMatrix coo(64, 64);
  for (index_t i = 0; i + 1 < 64; ++i) {
    coo.add(i, i + 1, 1.0);
    coo.add(i + 1, i, 1.0);
  }
  coo.canonicalize();
  EXPECT_DOUBLE_EQ(count_triangles(mtx::coo_to_csr(coo)), 0.0);
}

TEST(TriangleCounting, SingleTriangleWithPendantEdge) {
  mtx::CooMatrix coo(5, 5);
  auto edge = [&coo](index_t u, index_t v) {
    coo.add(u, v, 1.0);
    coo.add(v, u, 1.0);
  };
  edge(0, 1);
  edge(1, 2);
  edge(0, 2);
  edge(2, 3);  // pendant
  coo.canonicalize();
  EXPECT_DOUBLE_EQ(count_triangles(mtx::coo_to_csr(coo)), 1.0);
}

TEST(TriangleCounting, AgreesAcrossAlgorithms) {
  const mtx::CsrMatrix adj =
      mtx::symmetrize(testutil::exact_er(300, 300, 6.0, 41));
  const mtx::CsrMatrix lower = mtx::to_pattern(mtx::tril(adj));
  const SpGemmProblem p = SpGemmProblem::square(lower);
  const value_t via_pb =
      mtx::value_sum(mtx::hadamard(algorithm("pb").fn(p), lower));
  const value_t via_hash =
      mtx::value_sum(mtx::hadamard(algorithm("hash").fn(p), lower));
  EXPECT_DOUBLE_EQ(via_pb, via_hash);
}

// One Markov-clustering (MCL) iteration: expand (A²), inflate (Hadamard
// power), prune, re-normalize.  The invariant: columns stay stochastic.
TEST(MarkovClustering, IterationPreservesColumnStochasticity) {
  const mtx::CsrMatrix raw = mtx::coo_to_csr(mtx::generate_er(200, 200, 5.0, 42));
  mtx::CsrMatrix m = mtx::normalize_columns(
      mtx::add(raw, mtx::CsrMatrix::identity(200)));  // self-loops, as MCL does

  for (int iter = 0; iter < 3; ++iter) {
    const SpGemmProblem p = SpGemmProblem::square(m);
    m = pb::pb_spgemm(p.a_csc, p.b_csr).c;            // expansion
    m = mtx::element_power(m, 2.0);                   // inflation r=2
    m = mtx::prune(m, 1e-6);
    m = mtx::normalize_columns(m);
    const std::vector<value_t> sums = mtx::col_sums(m);
    for (index_t c = 0; c < m.ncols; ++c) {
      ASSERT_NEAR(sums[c], 1.0, 1e-9) << "iter " << iter << " col " << c;
    }
  }
}

TEST(MarkovClustering, DisconnectedCliquesConvergeToAttractors) {
  // Two disjoint 4-cliques: MCL must never mix their columns.
  mtx::CooMatrix coo(8, 8);
  for (index_t base : {0, 4}) {
    for (index_t i = 0; i < 4; ++i) {
      for (index_t j = 0; j < 4; ++j) coo.add(base + i, base + j, 1.0);
    }
  }
  coo.canonicalize();
  mtx::CsrMatrix m = mtx::normalize_columns(mtx::coo_to_csr(coo));
  for (int iter = 0; iter < 8; ++iter) {
    const SpGemmProblem p = SpGemmProblem::square(m);
    m = mtx::normalize_columns(
        mtx::prune(mtx::element_power(pb::pb_spgemm(p.a_csc, p.b_csr).c, 2.0),
                   1e-9));
  }
  // No entry may cross the block boundary.
  for (index_t r = 0; r < 8; ++r) {
    for (const index_t c : m.row_cols(r)) {
      EXPECT_EQ(r / 4, c / 4) << "clusters mixed";
    }
  }
}

// Multi-source BFS: frontier expansion F' = Aᵀ·F on indicator matrices.
TEST(MultiSourceBfs, ReachesExactlyTheReachableSet) {
  // Directed chain 0->1->2->3 plus isolated vertex 4.
  mtx::CooMatrix coo(5, 5);
  coo.add(0, 1, 1.0);
  coo.add(1, 2, 1.0);
  coo.add(2, 3, 1.0);
  coo.canonicalize();
  const mtx::CsrMatrix at = mtx::transpose(mtx::coo_to_csr(coo));

  // Frontier: one source column starting at vertex 0.
  mtx::CooMatrix fcoo(5, 1);
  fcoo.add(0, 0, 1.0);
  fcoo.canonicalize();
  mtx::CsrMatrix frontier = mtx::coo_to_csr(fcoo);

  std::vector<bool> visited(5, false);
  visited[0] = true;
  for (int level = 0; level < 5 && frontier.nnz() > 0; ++level) {
    const SpGemmProblem p = SpGemmProblem::multiply(at, frontier);
    frontier = mtx::to_pattern(pb::pb_spgemm(p.a_csc, p.b_csr).c);
    // Mask out already-visited vertices.
    mtx::CooMatrix next(5, 1);
    for (index_t r = 0; r < 5; ++r) {
      if (frontier.row_nnz(r) > 0 && !visited[r]) {
        visited[r] = true;
        next.add(r, 0, 1.0);
      }
    }
    next.canonicalize();
    frontier = mtx::coo_to_csr(next);
  }
  EXPECT_TRUE(visited[0] && visited[1] && visited[2] && visited[3]);
  EXPECT_FALSE(visited[4]);
}

// Galerkin triple product R·A·P for a 1-D two-level multigrid hierarchy.
TEST(AmgGalerkin, CoarseOperatorOfLaplacianIsLaplacianLike) {
  // 1-D Poisson matrix: tridiag(-1, 2, -1), n = 64.
  const index_t n = 64;
  mtx::CooMatrix acoo(n, n);
  for (index_t i = 0; i < n; ++i) {
    acoo.add(i, i, 2.0);
    if (i > 0) acoo.add(i, i - 1, -1.0);
    if (i + 1 < n) acoo.add(i, i + 1, -1.0);
  }
  acoo.canonicalize();
  const mtx::CsrMatrix a = mtx::coo_to_csr(acoo);

  // Linear interpolation P (n x n/2), R = Pᵀ.
  const index_t nc = n / 2;
  mtx::CooMatrix pcoo(n, nc);
  for (index_t j = 0; j < nc; ++j) {
    const index_t fine = 2 * j + 1;
    pcoo.add(fine, j, 1.0);
    if (fine > 0) pcoo.add(fine - 1, j, 0.5);
    if (fine + 1 < n) pcoo.add(fine + 1, j, 0.5);
  }
  pcoo.canonicalize();
  const mtx::CsrMatrix prolong = mtx::coo_to_csr(pcoo);
  const mtx::CsrMatrix restrict_op = mtx::transpose(prolong);

  const auto& pb = algorithm("pb").fn;
  const mtx::CsrMatrix ap = pb(SpGemmProblem::multiply(a, prolong));
  const mtx::CsrMatrix coarse = pb(SpGemmProblem::multiply(restrict_op, ap));

  ASSERT_EQ(coarse.nrows, nc);
  ASSERT_EQ(coarse.ncols, nc);
  // Galerkin coarse Laplacian: tridiagonal, rows sum to ~0 in the interior,
  // symmetric positive diagonal.
  EXPECT_TRUE(equal_approx(coarse, mtx::transpose(coarse), 1e-12, 1e-12));
  for (index_t i = 1; i + 1 < nc; ++i) {
    value_t row_sum = 0;
    for (const value_t v : coarse.row_vals(i)) row_sum += v;
    EXPECT_NEAR(row_sum, 0.0, 1e-12) << "row " << i;
    EXPECT_LE(coarse.row_nnz(i), 3);
  }
}

}  // namespace
}  // namespace pbs
