// Plan/execute architecture: the PB plan-build/execute split, the public
// SpGemmPlan with roofline-guided "auto" selection, structural
// invalidation, and workspace pooling across plan executions.
#include <gtest/gtest.h>

#include <stdexcept>

#include "model/selection.hpp"
#include "pb/partitioned.hpp"
#include "pb/plan.hpp"
#include "spgemm/plan.hpp"
#include "spgemm/registry.hpp"
#include "spgemm/semiring.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

// ---- PB layer: pb_plan_build / pb_execute --------------------------------

TEST(PbPlan, ExecuteMatchesFreshPipelineAcrossSemirings) {
  const mtx::CsrMatrix a = testutil::exact_er(300, 300, 6.0, 11);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const pb::PbConfig cfg;
  const pb::PbPlan plan = pb::pb_plan_build(p.a_csc, p.b_csr, cfg);

  for (const std::string& s : semiring_names()) {
    pb::PbWorkspace fresh_ws, plan_ws;
    const pb::PbResult fresh =
        pb::pb_spgemm_named(s, p.a_csc, p.b_csr, cfg, fresh_ws);
    const pb::PbResult planned =
        pb::pb_execute_named(s, p.a_csc, p.b_csr, plan, plan_ws);
    EXPECT_TRUE(mtx::equal_exact(fresh.c, planned.c)) << s;
    // Analysis was paid at build time, not at execute time.
    EXPECT_EQ(planned.stats.symbolic.seconds, 0.0) << s;
    EXPECT_EQ(planned.stats.flop, fresh.stats.flop) << s;
  }
  EXPECT_GT(plan.symbolic.seconds, 0.0);
}

TEST(PbPlan, ReexecutionSkipsAllocation) {
  const mtx::CsrMatrix a = testutil::exact_er(400, 400, 8.0, 12);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const pb::PbPlan plan = pb::pb_plan_build(p.a_csc, p.b_csr, {});

  pb::PbWorkspace ws;
  const pb::PbResult first = pb::pb_execute<PlusTimes>(p.a_csc, p.b_csr, plan, ws);
  const pb::PbWorkspace::Stats after_first = ws.stats();
  EXPECT_EQ(after_first.allocations, 1u);
  EXPECT_GE(after_first.scratch_allocations, 1u);

  for (int i = 0; i < 4; ++i) {
    const pb::PbResult again =
        pb::pb_execute<PlusTimes>(p.a_csc, p.b_csr, plan, ws);
    EXPECT_TRUE(mtx::equal_exact(first.c, again.c));
  }
  const pb::PbWorkspace::Stats steady = ws.stats();
  // Steady state: every pool request is served from retained capacity.
  EXPECT_EQ(steady.allocations, after_first.allocations);
  EXPECT_EQ(steady.scratch_allocations, after_first.scratch_allocations);
  EXPECT_EQ(steady.reuses, after_first.reuses + 4);
  EXPECT_GT(steady.scratch_reuses, after_first.scratch_reuses);
}

TEST(PbPlan, MismatchedInnerDimensionsThrowBeforeAnyFlopPass) {
  // a.ncols != b.nrows must throw from every fingerprint/flop entry point
  // (regression: the flop pass walks b's rows by a's column index and
  // previously read past b.rowptr before pb_symbolic's check ran).
  const mtx::CsrMatrix a = testutil::exact_er(30, 50, 3.0, 27);
  const mtx::CsrMatrix b = testutil::exact_er(20, 30, 3.0, 28);
  const SpGemmProblem p = SpGemmProblem::multiply(a, b);  // 50 vs 20 inner
  EXPECT_THROW((void)pb::pb_count_flop(p.a_csc, p.b_csr),
               std::invalid_argument);
  EXPECT_THROW((void)pb::pb_estimate_nnz_c(p.a_csc, p.b_csr),
               std::invalid_argument);
  EXPECT_THROW((void)pb::StructureFingerprint::of(p.a_csc, p.b_csr),
               std::invalid_argument);
  EXPECT_THROW((void)make_plan(p), std::invalid_argument);
}

TEST(PbPlan, RejectsStructurallyDifferentOperands) {
  const mtx::CsrMatrix a = testutil::exact_er(200, 200, 5.0, 13);
  const mtx::CsrMatrix other = testutil::exact_er(150, 150, 5.0, 14);
  const SpGemmProblem pa = SpGemmProblem::square(a);
  const SpGemmProblem po = SpGemmProblem::square(other);
  const pb::PbPlan plan = pb::pb_plan_build(pa.a_csc, pa.b_csr, {});

  pb::PbWorkspace ws;
  EXPECT_THROW(
      (void)pb::pb_execute<PlusTimes>(po.a_csc, po.b_csr, plan, ws),
      std::invalid_argument);
  EXPECT_TRUE(plan.matches(pa.a_csc, pa.b_csr));
  EXPECT_FALSE(plan.matches(po.a_csc, po.b_csr));
}

TEST(PbPlan, FingerprintDistinguishesSameAggregateStructures) {
  // Two permutation matrices agree on every aggregate the fingerprint
  // held before the structural hash: same dims, nnz = n, and flop(P²) = n
  // for ANY permutation.  Only the sampled structure hash tells them
  // apart — without it the plan cache would serve the identity's plan for
  // the reversal's multiplication.
  constexpr index_t n = 512;
  const auto permutation = [](index_t size, bool reversed) {
    mtx::CsrMatrix m(size, size);
    for (index_t r = 0; r < size; ++r) {
      m.rowptr[static_cast<std::size_t>(r) + 1] = r + 1;
      m.colids.push_back(reversed ? size - 1 - r : r);
      m.vals.push_back(1.0);
    }
    return m;
  };
  const mtx::CsrMatrix ident = permutation(n, false);
  const mtx::CsrMatrix rev = permutation(n, true);
  const SpGemmProblem pi = SpGemmProblem::square(ident);
  const SpGemmProblem pr = SpGemmProblem::square(rev);
  const pb::StructureFingerprint fi =
      pb::StructureFingerprint::of(pi.a_csc, pi.b_csr);
  const pb::StructureFingerprint fr =
      pb::StructureFingerprint::of(pr.a_csc, pr.b_csr);
  EXPECT_EQ(fi.a_nnz, fr.a_nnz);
  EXPECT_EQ(fi.flop, fr.flop);
  EXPECT_NE(fi.structure_hash, fr.structure_hash);
  EXPECT_FALSE(fi == fr);

  // Value updates keep the hash (it samples pointers and indices, never
  // values): fingerprint-verified re-execution still matches.
  mtx::CsrMatrix scaled = ident;
  for (value_t& v : scaled.vals) v *= 3.0;
  const SpGemmProblem ps = SpGemmProblem::square(scaled);
  EXPECT_TRUE(fi == pb::StructureFingerprint::of(ps.a_csc, ps.b_csr));
}

TEST(PbPlan, HintsReproduceTheUnhintedPlan) {
  // Threading the fingerprint's flop and the selection pass's row-flop
  // histogram into symbolic must be a pure optimization: identical layout,
  // regions and format for every policy.
  const mtx::CsrMatrix a = testutil::exact_er(300, 300, 5.0, 31);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const nnz_t flop = pb::pb_count_flop(p.a_csc, p.b_csr);
  const std::vector<nnz_t> rf = pb::pb_row_flops(p.a_csc, p.b_csr);

  for (const pb::BinPolicy policy :
       {pb::BinPolicy::kRange, pb::BinPolicy::kModulo,
        pb::BinPolicy::kAdaptive}) {
    pb::PbConfig cfg;
    cfg.policy = policy;
    pb::SymbolicHints hints;
    hints.flop = flop;
    hints.row_flops = rf;
    const pb::PbPlan plain = pb::pb_plan_build(p.a_csc, p.b_csr, cfg);
    const pb::PbPlan hinted = pb::pb_plan_build(p.a_csc, p.b_csr, cfg, hints);
    EXPECT_EQ(plain.sym.flop, hinted.sym.flop);
    EXPECT_EQ(plain.sym.format, hinted.sym.format);
    EXPECT_EQ(plain.sym.col_bits, hinted.sym.col_bits);
    EXPECT_EQ(plain.sym.bin_offsets, hinted.sym.bin_offsets);
    EXPECT_EQ(plain.sym.bin_fill, hinted.sym.bin_fill);
    EXPECT_EQ(plain.fingerprint, hinted.fingerprint);
  }
}

// ---- compression-factor estimator ----------------------------------------

TEST(Estimator, TracksActualCompressionOnRandomMatrices) {
  const mtx::CsrMatrix a = testutil::exact_er(500, 500, 8.0, 15);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const nnz_t est = pb::pb_estimate_nnz_c(p.a_csc, p.b_csr);
  const nnz_t actual = reference_spgemm(p).nnz();
  ASSERT_GT(actual, 0);
  // The balls-into-bins model is exact in the sparse and dense limits and
  // within tens of percent between them for unstructured matrices.
  EXPECT_GT(est, actual / 2);
  EXPECT_LT(est, actual * 2);
}

// ---- selection heuristic --------------------------------------------------

TEST(Selection, LowCompressionPicksPb) {
  const model::AlgoChoice c = model::select_algorithm(1.0, 1 << 20, true);
  EXPECT_EQ(c.algo, "pb");
  EXPECT_FALSE(c.rationale.empty());
  EXPECT_GT(c.pb_mflops, c.column_mflops);
}

TEST(Selection, HighCompressionPicksHash) {
  const model::AlgoChoice c = model::select_algorithm(32.0, 1 << 20, true);
  EXPECT_EQ(c.algo, "hash");
  EXPECT_GT(c.column_mflops, c.pb_mflops);
}

TEST(Selection, HighCompressionWithoutHashFallsToHeap) {
  // Non-numeric semirings rule hash out; the column family is heap.
  const model::AlgoChoice c = model::select_algorithm(32.0, 1 << 20, false);
  EXPECT_EQ(c.algo, "heap");
}

TEST(Selection, TinyProblemsPickHeap) {
  const model::AlgoChoice c = model::select_algorithm(1.0, 100, true);
  EXPECT_EQ(c.algo, "heap");
}

TEST(Selection, CrossoverIsMonotoneInCf) {
  // Scanning cf upward flips the decision exactly once (pb -> column).
  bool seen_column = false;
  for (double cf = 1.0; cf <= 64.0; cf *= 1.5) {
    const model::AlgoChoice c = model::select_algorithm(cf, 1 << 20, true);
    if (c.algo != "pb") seen_column = true;
    if (seen_column) EXPECT_NE(c.algo, "pb") << "cf " << cf;
  }
  EXPECT_TRUE(seen_column);
}

TEST(Selection, KeyOnlyStreamShiftsCrossoverTowardPb) {
  // The byte model charges Eq. 4's Cˆ term the bytes the plan's tuple
  // stream actually moves (executor wiring: m.pb_tuple_bytes =
  // bytes_per_tuple(predict_tuple_format(...))).  A boolean workload
  // predicts the 8 B key-only stream, a numeric one the 12 B narrow
  // stream — same geometry, same flop.  With defaults the pb/hash
  // crossover sits at cf ≈ 3.0 for 12 B and cf ≈ 7.7 for 8 B, so at
  // cf = 4 the valued plan rules pb out while the boolean plan keeps it.
  const index_t n = 1 << 16;  // narrow fits: local_row_bits + col_bits ≤ 32
  const nnz_t flop = 1 << 20;

  pb::PbConfig boolean_cfg;
  boolean_cfg.value_free = true;  // what pb_spgemm<BoolOrAnd> injects
  const pb::PbConfig valued_cfg;
  const pb::TupleFormat boolean_fmt =
      pb::predict_tuple_format(n, n, flop, boolean_cfg);
  const pb::TupleFormat valued_fmt =
      pb::predict_tuple_format(n, n, flop, valued_cfg);
  ASSERT_EQ(boolean_fmt, pb::TupleFormat::kKeyOnly);
  ASSERT_EQ(valued_fmt, pb::TupleFormat::kNarrow);

  model::SelectionModel m;
  m.pb_tuple_bytes = static_cast<double>(pb::bytes_per_tuple(valued_fmt));
  const model::AlgoChoice valued = model::select_algorithm(4.0, flop, true, m);
  EXPECT_EQ(valued.algo, "hash");

  m.pb_tuple_bytes = static_cast<double>(pb::bytes_per_tuple(boolean_fmt));
  const model::AlgoChoice boolean = model::select_algorithm(4.0, flop, true, m);
  EXPECT_EQ(boolean.algo, "pb");
  EXPECT_GT(boolean.ai_outer, valued.ai_outer);
}

// ---- SpGemmPlan -----------------------------------------------------------

TEST(SpGemmPlanTest, MatchesRegistryKernelsAcrossSemirings) {
  const mtx::CsrMatrix a = testutil::exact_er(250, 250, 6.0, 16);
  const SpGemmProblem p = SpGemmProblem::square(a);
  for (const std::string& algo : {"pb", "heap"}) {
    for (const std::string& s : semiring_names()) {
      PlanOptions opts;
      opts.algo = algo;
      opts.semiring = s;
      SpGemmPlan plan = make_plan(p, opts);
      EXPECT_EQ(plan.algo(), algo);
      const mtx::CsrMatrix c = plan.execute(p);
      const mtx::CsrMatrix expected = semiring_algorithm(algo, s)(p);
      EXPECT_TRUE(mtx::equal_exact(c, expected)) << algo << " x " << s;
    }
  }
}

TEST(SpGemmPlanTest, AutoResolvesToConcreteAlgorithmWithRationale) {
  const mtx::CsrMatrix a = testutil::exact_er(600, 600, 8.0, 17);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmPlan plan = make_plan(p);  // defaults: auto, plus_times
  const PlanTelemetry& tm = plan.telemetry();
  EXPECT_EQ(tm.requested_algo, "auto");
  EXPECT_TRUE(plan.algo() == "pb" || plan.algo() == "hash" ||
              plan.algo() == "heap")
      << plan.algo();
  EXPECT_EQ(plan.algo(), tm.choice.algo);
  EXPECT_FALSE(tm.choice.rationale.empty());
  EXPECT_GT(tm.choice.cf, 0.0);

  const mtx::CsrMatrix c = plan.execute(p);
  EXPECT_TRUE(mtx::equal_exact(c, reference_spgemm(p)));
}

TEST(SpGemmPlanTest, AutoFollowsCompressionFactor) {
  // An ER squaring barely compresses -> the outer-product pipeline; a
  // near-dense squaring compresses heavily -> the Gustavson hash.
  const mtx::CsrMatrix sparse = testutil::exact_er(2000, 2000, 8.0, 18);
  const mtx::CsrMatrix dense = testutil::exact_er(150, 150, 40.0, 19);
  SpGemmPlan sp = make_plan(SpGemmProblem::square(sparse));
  SpGemmPlan dp = make_plan(SpGemmProblem::square(dense));
  EXPECT_EQ(sp.algo(), "pb");
  EXPECT_EQ(dp.algo(), "hash");
}

TEST(SpGemmPlanTest, RecordsPredictedAndAchievedMflops) {
  const mtx::CsrMatrix a = testutil::exact_er(500, 500, 8.0, 30);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmPlan plan = make_plan(p);  // auto
  // The prediction is fixed at plan time from the roofline choice...
  EXPECT_GT(plan.telemetry().predicted_mflops, 0.0);
  EXPECT_EQ(plan.telemetry().achieved_mflops, 0.0);
  // ...and every execute records what it actually achieved against it.
  (void)plan.execute(p);
  EXPECT_GT(plan.telemetry().achieved_mflops, 0.0);
  (void)plan.execute(p);
  EXPECT_GT(plan.telemetry().achieved_mflops, 0.0);
}

TEST(SpGemmPlanTest, RepeatedExecutionSkipsAnalysisAndAllocation) {
  const mtx::CsrMatrix a = testutil::exact_er(350, 350, 7.0, 20);
  const SpGemmProblem p = SpGemmProblem::square(a);
  PlanOptions opts;
  opts.algo = "pb";
  SpGemmPlan plan = make_plan(p, opts);

  const mtx::CsrMatrix first = plan.execute(p);
  const pb::PbWorkspace::Stats after_first = plan.workspace_stats();
  for (int i = 0; i < 5; ++i) {
    const mtx::CsrMatrix again = plan.execute(p);
    EXPECT_TRUE(mtx::equal_exact(first, again));
  }
  const PlanTelemetry& tm = plan.telemetry();
  EXPECT_EQ(tm.executes, 6u);
  EXPECT_EQ(tm.replans, 0u);
  EXPECT_EQ(tm.analysis_reuses, 6u);
  // The symbolic phase of a reused execution is skipped entirely...
  EXPECT_EQ(plan.last_pb_stats().symbolic.seconds, 0.0);
  // ...and the tuple buffer is never reallocated.
  const pb::PbWorkspace::Stats steady = plan.workspace_stats();
  EXPECT_EQ(steady.allocations, after_first.allocations);
  EXPECT_EQ(steady.reuses, after_first.reuses + 5);
}

TEST(SpGemmPlanTest, InvalidatesOnShapeChangeAndRecovers) {
  const mtx::CsrMatrix big = testutil::exact_er(400, 400, 6.0, 21);
  const mtx::CsrMatrix small = testutil::exact_er(120, 120, 4.0, 22);
  const SpGemmProblem pb_ = SpGemmProblem::square(big);
  const SpGemmProblem ps = SpGemmProblem::square(small);

  PlanOptions opts;
  opts.algo = "pb";
  SpGemmPlan plan = make_plan(pb_, opts);
  EXPECT_TRUE(mtx::equal_exact(plan.execute(pb_), reference_spgemm(pb_)));

  // Different structure: the plan transparently replans and stays correct.
  EXPECT_TRUE(mtx::equal_exact(plan.execute(ps), reference_spgemm(ps)));
  EXPECT_EQ(plan.telemetry().replans, 1u);

  // Back on the second structure: analysis is reused again.
  const std::uint64_t reuses_before = plan.telemetry().analysis_reuses;
  (void)plan.execute(ps);
  EXPECT_EQ(plan.telemetry().replans, 1u);
  EXPECT_EQ(plan.telemetry().analysis_reuses, reuses_before + 1);
}

TEST(SpGemmPlanTest, GrowShrinkGrowReusesPeakCapacity) {
  // A grow-then-shrink-then-grow problem sequence through one plan: the
  // pooled buffer sized by the big problem serves the small one and the
  // big one again without any new allocation.
  const mtx::CsrMatrix big = testutil::exact_er(500, 500, 8.0, 23);
  const mtx::CsrMatrix small = testutil::exact_er(100, 100, 3.0, 24);
  const SpGemmProblem pb_ = SpGemmProblem::square(big);
  const SpGemmProblem ps = SpGemmProblem::square(small);

  PlanOptions opts;
  opts.algo = "pb";
  SpGemmPlan plan = make_plan(pb_, opts);
  (void)plan.execute(pb_);
  const pb::PbWorkspace::Stats after_big = plan.workspace_stats();

  EXPECT_TRUE(mtx::equal_exact(plan.execute(ps), reference_spgemm(ps)));
  EXPECT_TRUE(mtx::equal_exact(plan.execute(pb_), reference_spgemm(pb_)));
  const pb::PbWorkspace::Stats end = plan.workspace_stats();
  EXPECT_EQ(end.allocations, after_big.allocations);
  EXPECT_EQ(end.reuses, after_big.reuses + 2);
  EXPECT_EQ(end.peak_request, after_big.peak_request);
}

TEST(SpGemmPlanTest, RejectsUnsupportedPairsAtPlanTime) {
  const mtx::CsrMatrix a = testutil::exact_er(50, 50, 3.0, 25);
  const SpGemmProblem p = SpGemmProblem::square(a);
  PlanOptions opts;
  opts.algo = "hashvec";  // the hash family's remaining plus_times-only member
  opts.semiring = "min_plus";
  EXPECT_THROW((void)make_plan(p, opts), std::invalid_argument);
  opts.algo = "no_such_algo";
  EXPECT_THROW((void)make_plan(p, opts), std::invalid_argument);
}

// ---- partitioned plan -----------------------------------------------------

TEST(PartitionedPlanTest, RepeatedExecutionMatchesFusedPath) {
  const mtx::CsrMatrix a = testutil::exact_er(300, 300, 6.0, 26);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const mtx::CsrMatrix expected = reference_spgemm(p);

  pb::PartitionedPlan plan = pb::make_partitioned_plan(p.a_csc, p.b_csr, 4);
  EXPECT_EQ(plan.nparts(), 4);
  EXPECT_GT(plan.build_seconds(), 0.0);

  const pb::PartitionedResult r1 = plan.execute(p.b_csr);
  const pb::PartitionedResult r2 = plan.execute(p.b_csr);
  EXPECT_TRUE(mtx::equal_exact(r1.c, expected));
  EXPECT_TRUE(mtx::equal_exact(r2.c, expected));
  // Row slices are short, so every part's plan packs the narrow format,
  // and the per-part telemetry reports it.
  for (const pb::PbTelemetry& part : r1.parts) {
    EXPECT_EQ(part.format, pb::TupleFormat::kNarrow);
    EXPECT_EQ(part.tuple_bytes(), 12.0);
  }

  const pb::PartitionedResult fused =
      pb::pb_spgemm_partitioned(p.a_csc, p.b_csr, 4);
  EXPECT_TRUE(mtx::equal_exact(fused.c, expected));

  // Second execution draws everything from the pooled workspace.
  const pb::PbWorkspace::Stats ws = plan.workspace_stats();
  EXPECT_GT(ws.reuses, 0u);
}

}  // namespace
}  // namespace pbs
