#include <gtest/gtest.h>

#include <vector>

#include "spgemm/spgemm.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

using testutil::from_triplets;

// Dense brute-force product for cross-checking the reference itself.
mtx::CsrMatrix dense_multiply(const mtx::CsrMatrix& a, const mtx::CsrMatrix& b) {
  std::vector<std::vector<value_t>> dense(
      static_cast<std::size_t>(a.nrows),
      std::vector<value_t>(static_cast<std::size_t>(b.ncols), 0.0));
  for (index_t r = 0; r < a.nrows; ++r) {
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
      const index_t k = a.colids[i];
      for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j)
        dense[r][b.colids[j]] += a.vals[i] * b.vals[j];
    }
  }
  mtx::CooMatrix coo(a.nrows, b.ncols);
  for (index_t r = 0; r < a.nrows; ++r) {
    for (index_t c = 0; c < b.ncols; ++c) {
      if (dense[r][c] != 0.0) coo.add(r, c, dense[r][c]);
    }
  }
  coo.canonicalize();
  return mtx::coo_to_csr(coo);
}

TEST(Reference, IdentityTimesIdentity) {
  const auto i = mtx::CsrMatrix::identity(8);
  const auto c = reference_spgemm(SpGemmProblem::square(i));
  EXPECT_TRUE(equal_exact(c, i));
}

TEST(Reference, IdentityIsNeutral) {
  const mtx::CsrMatrix a = testutil::exact_er(64, 64, 4.0, 1);
  const auto i = mtx::CsrMatrix::identity(64);
  EXPECT_TRUE(equal_exact(reference_spgemm(SpGemmProblem::multiply(a, i)), a));
  EXPECT_TRUE(equal_exact(reference_spgemm(SpGemmProblem::multiply(i, a)), a));
}

TEST(Reference, KnownTwoByTwo) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const auto a = from_triplets(2, 2, {{0, 0, 1.}, {0, 1, 2.}, {1, 0, 3.}, {1, 1, 4.}});
  const auto b = from_triplets(2, 2, {{0, 0, 5.}, {0, 1, 6.}, {1, 0, 7.}, {1, 1, 8.}});
  const auto expected =
      from_triplets(2, 2, {{0, 0, 19.}, {0, 1, 22.}, {1, 0, 43.}, {1, 1, 50.}});
  EXPECT_TRUE(equal_exact(reference_spgemm(SpGemmProblem::multiply(a, b)), expected));
}

TEST(Reference, RectangularShapes) {
  const mtx::CsrMatrix a = testutil::exact_er(40, 60, 3.0, 2);
  const mtx::CsrMatrix b = testutil::exact_er(60, 25, 3.0, 3);
  const auto c = reference_spgemm(SpGemmProblem::multiply(a, b));
  EXPECT_EQ(c.nrows, 40);
  EXPECT_EQ(c.ncols, 25);
  EXPECT_TRUE(c.valid());
  EXPECT_TRUE(equal_exact(c, dense_multiply(a, b)));
}

TEST(Reference, MatchesDenseBruteForce) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const mtx::CsrMatrix a = testutil::exact_er(48, 48, 4.0, seed);
    const mtx::CsrMatrix b = testutil::exact_er(48, 48, 4.0, seed + 50);
    EXPECT_TRUE(equal_exact(reference_spgemm(SpGemmProblem::multiply(a, b)),
                            dense_multiply(a, b)))
        << "seed " << seed;
  }
}

TEST(Reference, EmptyOperands) {
  mtx::CooMatrix empty(10, 10);
  const auto e = mtx::coo_to_csr(empty);
  const auto c = reference_spgemm(SpGemmProblem::square(e));
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_TRUE(c.valid());
}

TEST(Reference, CancellationKeepsExplicitZero) {
  // (1)(1) + (1)(-1) = 0: the entry is numerically zero but structurally
  // present — SpGEMM conventions keep it (all our algorithms must agree).
  const auto a = from_triplets(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  const auto b = from_triplets(2, 1, {{0, 0, 1.0}, {1, 0, -1.0}});
  const auto c = reference_spgemm(SpGemmProblem::multiply(a, b));
  EXPECT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.vals[0], 0.0);
}

}  // namespace
}  // namespace pbs
