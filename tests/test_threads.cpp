// Thread-count invariance: results must be identical (bitwise, on exact
// integer values) no matter how many OpenMP threads run the algorithms.
#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "pb/pb_spgemm.hpp"
#include "spgemm/registry.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

class ThreadSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(ThreadSweep, ResultIndependentOfThreadCount) {
  const mtx::CsrMatrix a = testutil::exact_rmat(9, 6.0, 51);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const SpGemmFn fn = algorithm(GetParam()).fn;

  mtx::CsrMatrix serial;
  {
    ThreadCountGuard guard(1);
    serial = fn(p);
  }
  for (const int threads : {2, 3, max_threads() + 2}) {
    ThreadCountGuard guard(threads);
    const mtx::CsrMatrix parallel = fn(p);
    EXPECT_TRUE(equal_exact(serial, parallel))
        << GetParam() << " diverges at " << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(Algos, ThreadSweep,
                         ::testing::Values("pb", "heap", "hash", "hashvec",
                                           "spa", "esc"));

TEST(ThreadSweep, PbTelemetryConsistentAcrossThreadCounts) {
  const mtx::CsrMatrix a = testutil::exact_er(600, 600, 6.0, 52);
  const SpGemmProblem p = SpGemmProblem::square(a);
  pb::PbResult r1, r4;
  {
    ThreadCountGuard guard(1);
    r1 = pb::pb_spgemm(p.a_csc, p.b_csr);
  }
  {
    ThreadCountGuard guard(4);
    r4 = pb::pb_spgemm(p.a_csc, p.b_csr);
  }
  // Work metrics are structural, not timing-dependent.
  EXPECT_EQ(r1.stats.flop, r4.stats.flop);
  EXPECT_EQ(r1.stats.nnz_c, r4.stats.nnz_c);
  EXPECT_EQ(r1.stats.nbins, r4.stats.nbins);
  EXPECT_TRUE(equal_exact(r1.c, r4.c));
}

TEST(ThreadSweep, OversubscriptionIsSafe) {
  // More threads than rows/bins: degenerate schedules must still be correct.
  const mtx::CsrMatrix a = testutil::exact_er(40, 40, 3.0, 53);
  const SpGemmProblem p = SpGemmProblem::square(a);
  ThreadCountGuard guard(16);
  const mtx::CsrMatrix c = algorithm("pb").fn(p);
  EXPECT_TRUE(equal_exact(c, reference_spgemm(p)));
}

}  // namespace
}  // namespace pbs
