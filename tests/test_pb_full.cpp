// End-to-end PB-SpGEMM: correctness across configurations and telemetry
// invariants (Table III byte accounting).
#include "pb/pb_spgemm.hpp"

#include <gtest/gtest.h>

#include "matrix/convert.hpp"
#include "matrix/mstats.hpp"
#include "spgemm/spgemm.hpp"
#include "test_util.hpp"

namespace pbs::pb {
namespace {

struct FullCase {
  BinPolicy policy;
  int nbins;            // 0 = auto
  int local_bin_bytes;
};

void PrintTo(const FullCase& c, std::ostream* os) {
  *os << to_string(c.policy) << "_nb" << c.nbins << "_lb" << c.local_bin_bytes;
}

class PbFull : public ::testing::TestWithParam<FullCase> {};

TEST_P(PbFull, MatchesReferenceOnEr) {
  const FullCase& fc = GetParam();
  const mtx::CsrMatrix a = testutil::exact_er(600, 600, 5.0, 21);
  const SpGemmProblem p = SpGemmProblem::square(a);

  PbConfig cfg;
  cfg.policy = fc.policy;
  cfg.nbins = fc.nbins;
  cfg.local_bin_bytes = fc.local_bin_bytes;
  cfg.validate = true;

  const PbResult r = pb_spgemm(p.a_csc, p.b_csr, cfg);
  ASSERT_TRUE(r.c.valid());
  EXPECT_TRUE(equal_exact(r.c, reference_spgemm(p)));
}

TEST_P(PbFull, MatchesReferenceOnSkewedRmat) {
  const FullCase& fc = GetParam();
  const mtx::CsrMatrix a = testutil::exact_rmat(9, 8.0, 22);
  const SpGemmProblem p = SpGemmProblem::square(a);

  PbConfig cfg;
  cfg.policy = fc.policy;
  cfg.nbins = fc.nbins;
  cfg.local_bin_bytes = fc.local_bin_bytes;

  const PbResult r = pb_spgemm(p.a_csc, p.b_csr, cfg);
  EXPECT_TRUE(equal_exact(r.c, reference_spgemm(p)));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PbFull,
    ::testing::Values(FullCase{BinPolicy::kRange, 0, 512},
                      FullCase{BinPolicy::kRange, 1, 512},
                      FullCase{BinPolicy::kRange, 64, 512},
                      FullCase{BinPolicy::kRange, 16, 16},
                      FullCase{BinPolicy::kRange, 16, 4096},
                      FullCase{BinPolicy::kModulo, 0, 512},
                      FullCase{BinPolicy::kModulo, 32, 512},
                      FullCase{BinPolicy::kAdaptive, 0, 512},
                      FullCase{BinPolicy::kAdaptive, 32, 128}));

TEST(PbTelemetry, FlopAndNnzMatchIndependentCounts) {
  const mtx::CsrMatrix a = testutil::exact_er(800, 800, 6.0, 23);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const PbResult r = pb_spgemm(p.a_csc, p.b_csr);
  EXPECT_EQ(r.stats.flop, mtx::count_flops(a, a));
  EXPECT_EQ(r.stats.nnz_c, mtx::symbolic_nnz(a, a));
  EXPECT_EQ(r.stats.nnz_c, r.c.nnz());
  EXPECT_NEAR(r.stats.cf(),
              static_cast<double>(r.stats.flop) / static_cast<double>(r.c.nnz()),
              1e-12);
}

TEST(PbTelemetry, PhaseTimesPositiveAndSumToTotal) {
  const mtx::CsrMatrix a = testutil::exact_er(1000, 1000, 8.0, 24);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const PbResult r = pb_spgemm(p.a_csc, p.b_csr);
  const PbTelemetry& t = r.stats;
  EXPECT_GT(t.symbolic.seconds, 0.0);
  EXPECT_GT(t.expand.seconds, 0.0);
  EXPECT_GE(t.sort.seconds, 0.0);
  EXPECT_GE(t.compress.seconds, 0.0);
  EXPECT_GT(t.convert.seconds, 0.0);
  EXPECT_NEAR(t.total_seconds(),
              t.symbolic.seconds + t.expand.seconds + t.sort.seconds +
                  t.compress.seconds + t.convert.seconds,
              1e-12);
  EXPECT_GT(t.mflops(), 0.0);
}

TEST(PbTelemetry, ByteModelFollowsTableIIIPerFormat) {
  const mtx::CsrMatrix a = testutil::exact_er(500, 500, 4.0, 25);
  const SpGemmProblem p = SpGemmProblem::square(a);
  for (const FormatPolicy format : {FormatPolicy::kWide, FormatPolicy::kNarrow}) {
    PbConfig cfg;
    cfg.format = format;
    const PbResult r = pb_spgemm(p.a_csc, p.b_csr, cfg);
    const PbTelemetry& t = r.stats;
    // Inputs are charged at the paper's COO cost; the tuple stream at the
    // format's actual bytes per tuple (16 wide, 12 narrow).
    const double b = kBytesPerTuple;
    const double bpt = t.tuple_bytes();
    EXPECT_EQ(bpt, format == FormatPolicy::kNarrow ? 12.0 : 16.0);
    EXPECT_DOUBLE_EQ(t.expand.bytes,
                     b * 2.0 * static_cast<double>(a.nnz()) +
                         bpt * static_cast<double>(t.flop));
    EXPECT_DOUBLE_EQ(t.sort.bytes, bpt * static_cast<double>(t.flop));
    EXPECT_DOUBLE_EQ(t.compress.bytes, bpt * static_cast<double>(t.nnz_c));
  }
}

TEST(PbTelemetry, ScheduleReportedAndPipelineFillsOverlapFields) {
  const mtx::CsrMatrix a = testutil::exact_er(600, 600, 6.0, 29);
  const SpGemmProblem p = SpGemmProblem::square(a);

  PbConfig cfg;
  cfg.schedule = PbSchedule::kBarrier;
  const PbResult barrier = pb_spgemm(p.a_csc, p.b_csr, cfg);
  EXPECT_EQ(barrier.stats.schedule, PbSchedule::kBarrier);
  EXPECT_DOUBLE_EQ(barrier.stats.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(barrier.stats.overlap_seconds(), 0.0);
  EXPECT_EQ(barrier.stats.bins_stolen, 0);

  cfg.schedule = PbSchedule::kPipeline;
  cfg.validate = true;
  const PbResult pipe = pb_spgemm(p.a_csc, p.b_csr, cfg);
  EXPECT_TRUE(mtx::equal_exact(barrier.c, pipe.c));
  EXPECT_EQ(pipe.stats.schedule, PbSchedule::kPipeline);
  EXPECT_GT(pipe.stats.wall_seconds, 0.0);
  EXPECT_GE(pipe.stats.bin_run_seconds, 0.0);
  EXPECT_GE(pipe.stats.bin_wait_seconds, 0.0);
  EXPECT_GE(pipe.stats.bins_stolen, 0);
  // The pipelined total uses the overlapped wall, never the sum of the
  // (mutually overlapping) per-phase busy times.
  EXPECT_NEAR(pipe.stats.total_seconds(),
              pipe.stats.symbolic.seconds + pipe.stats.wall_seconds, 1e-12);
  // Byte models are schedule-independent (Table III counts traffic, not
  // scheduling).
  EXPECT_DOUBLE_EQ(barrier.stats.expand.bytes, pipe.stats.expand.bytes);
  EXPECT_DOUBLE_EQ(barrier.stats.sort.bytes, pipe.stats.sort.bytes);
  EXPECT_DOUBLE_EQ(barrier.stats.compress.bytes, pipe.stats.compress.bytes);
}

TEST(PbTelemetry, NbinsReported) {
  const mtx::CsrMatrix a = testutil::exact_er(256, 256, 4.0, 26);
  const SpGemmProblem p = SpGemmProblem::square(a);
  PbConfig cfg;
  cfg.nbins = 8;
  const PbResult r = pb_spgemm(p.a_csc, p.b_csr, cfg);
  EXPECT_GE(r.stats.nbins, 1);
  EXPECT_LE(r.stats.nbins, 8);
  EXPECT_GT(r.stats.rows_per_bin, 0);  // range policy default
}

TEST(PbEdgeCases, EmptyTimesEmpty) {
  mtx::CooMatrix empty(50, 50);
  const mtx::CsrMatrix e = mtx::coo_to_csr(empty);
  const PbResult r = pb_spgemm(mtx::csr_to_csc(e), e);
  EXPECT_EQ(r.c.nnz(), 0);
  EXPECT_TRUE(r.c.valid());
  EXPECT_EQ(r.stats.flop, 0);
}

TEST(PbEdgeCases, OneByOne) {
  mtx::CooMatrix coo(1, 1);
  coo.add(0, 0, 3.0);
  coo.canonicalize();
  const mtx::CsrMatrix a = mtx::coo_to_csr(coo);
  const PbResult r = pb_spgemm(mtx::csr_to_csc(a), a);
  ASSERT_EQ(r.c.nnz(), 1);
  EXPECT_EQ(r.c.vals[0], 9.0);
}

TEST(PbEdgeCases, RectangularProduct) {
  const mtx::CsrMatrix a = testutil::exact_er(64, 128, 4.0, 27);
  const mtx::CsrMatrix b = testutil::exact_er(128, 32, 4.0, 28);
  const SpGemmProblem p = SpGemmProblem::multiply(a, b);
  const PbResult r = pb_spgemm(p.a_csc, p.b_csr);
  EXPECT_EQ(r.c.nrows, 64);
  EXPECT_EQ(r.c.ncols, 32);
  EXPECT_TRUE(equal_exact(r.c, reference_spgemm(p)));
}

TEST(PbEdgeCases, MismatchedDimensionsThrow) {
  const mtx::CsrMatrix a = testutil::exact_er(10, 20, 2.0, 29);
  const mtx::CsrMatrix b = testutil::exact_er(30, 10, 2.0, 30);
  EXPECT_THROW(pb_spgemm(mtx::csr_to_csc(a), b), std::invalid_argument);
}

TEST(PbEdgeCases, HubRowAndColumn) {
  // Row 0 and column 0 fully dense: the single-bin-overload stress case.
  mtx::CooMatrix coo(256, 256);
  for (index_t i = 0; i < 256; ++i) {
    coo.add(0, i, 1.0);
    coo.add(i, 0, 1.0);
  }
  coo.canonicalize();
  const mtx::CsrMatrix a = mtx::coo_to_csr(coo);
  const SpGemmProblem p = SpGemmProblem::square(a);
  for (const BinPolicy policy :
       {BinPolicy::kRange, BinPolicy::kModulo, BinPolicy::kAdaptive}) {
    PbConfig cfg;
    cfg.policy = policy;
    cfg.nbins = 8;
    const PbResult r = pb_spgemm(p.a_csc, p.b_csr, cfg);
    EXPECT_TRUE(equal_exact(r.c, reference_spgemm(p)))
        << "policy " << to_string(policy);
  }
}

}  // namespace
}  // namespace pbs::pb
