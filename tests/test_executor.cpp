// Executor layer: fingerprint-keyed plan cache (LRU hits/evictions),
// value-only re-execution, batched descriptors over one analysis pass,
// workspace-pooled concurrent serving, the calibration telemetry loop,
// the structural-only masked nnz estimate, and PartitionedPlan's
// value-only slice refresh.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

#include "common/parallel.hpp"
#include "matrix/ops.hpp"
#include "model/selection.hpp"
#include "pb/partitioned.hpp"
#include "pb/symbolic.hpp"
#include "pb/workspace_pool.hpp"
#include "spgemm/executor.hpp"
#include "spgemm/plan.hpp"
#include "spgemm/semiring.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

/// Same structure, different numeric values (exact under small-int
/// scaling): the value-only contract's legitimate mutation.
mtx::CsrMatrix scale_values(const mtx::CsrMatrix& a, value_t factor) {
  mtx::CsrMatrix out = a;
  for (value_t& v : out.vals) v *= factor;
  return out;
}

// ---- WorkspacePool --------------------------------------------------------

TEST(WorkspacePool, LeasesAreExclusiveAndReturnedWorkspacesAreReused) {
  pb::WorkspacePool pool;
  {
    const pb::WorkspacePool::Lease l1 = pool.acquire();
    const pb::WorkspacePool::Lease l2 = pool.acquire();
    EXPECT_NE(&l1.workspace(), &l2.workspace());  // concurrent = distinct
    (void)l1.workspace().acquire(64);             // warm one member
  }
  const pb::WorkspacePool::Lease l3 = pool.acquire();  // idle again: reuse
  const pb::WorkspacePool::Stats s = pool.stats();
  EXPECT_EQ(s.leases, 3u);
  EXPECT_EQ(s.created, 2u);
  EXPECT_EQ(s.reused, 1u);
  EXPECT_EQ(s.workspaces, 2u);
  EXPECT_EQ(s.peak_in_flight, 2u);
  // The aggregate allocator view covers every member.
  EXPECT_EQ(pool.workspace_stats().allocations, 1u);
}

// ---- SpGemmExecutor: correctness ------------------------------------------

TEST(Executor, MatchesReferenceAcrossAlgorithmsAndSemirings) {
  const mtx::CsrMatrix a = testutil::exact_er(200, 200, 5.0, 41);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmExecutor exec;
  for (const std::string& algo : {"auto", "pb", "heap", "hash"}) {
    for (const std::string& s : semiring_names()) {
      SpGemmOp op;
      op.algo = algo;
      op.semiring = s;
      const mtx::CsrMatrix c = exec.run(p, op);
      EXPECT_TRUE(mtx::equal_exact(c, semiring_algorithm("reference", s)(p)))
          << algo << " x " << s;
    }
  }
}

TEST(Executor, MaskedRunsMatchThePatternFilterOracle) {
  const mtx::CsrMatrix a = testutil::exact_er(150, 150, 5.0, 42);
  const mtx::CsrMatrix mask = testutil::exact_er(150, 150, 2.0, 43);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const mtx::CsrMatrix product = reference_spgemm(p);
  SpGemmExecutor exec;
  for (const bool complement : {false, true}) {
    SpGemmOp op;
    op.algo = "pb";
    op.mask = &mask;
    op.complement = complement;
    RunInfo info;
    const mtx::CsrMatrix c = exec.run(p, op, &info);
    EXPECT_TRUE(mtx::equal_exact(
        c, mtx::pattern_filter(product, mask, complement)))
        << "complement " << complement;
    EXPECT_TRUE(info.used_pb);
  }
  SpGemmOp bad;
  bad.mask = &a;  // right shape...
  const mtx::CsrMatrix wrong = testutil::exact_er(150, 100, 2.0, 44);
  bad.mask = &wrong;  // ...wrong shape: rejected at analysis
  EXPECT_THROW((void)exec.run(p, bad), std::invalid_argument);
}

TEST(Executor, AccumulatingRunCombinesWithTheSemiringAdd) {
  const mtx::CsrMatrix a = testutil::exact_er(120, 120, 4.0, 45);
  const mtx::CsrMatrix c0 = testutil::exact_er(120, 120, 5.0, 46);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmExecutor exec;
  SpGemmOp op;
  op.algo = "pb";
  op.accumulate = true;
  EXPECT_THROW((void)exec.run(p, op), std::logic_error);
  const mtx::CsrMatrix c = exec.run(p, op, c0);
  EXPECT_TRUE(mtx::equal_exact(c, mtx::add(c0, reference_spgemm(p))));
}

// ---- plan cache: hits, eviction, alternation ------------------------------

TEST(Executor, AlternatingStructuresHitTheCache) {
  const mtx::CsrMatrix big = testutil::exact_er(300, 300, 6.0, 47);
  const mtx::CsrMatrix small = testutil::exact_er(120, 120, 4.0, 48);
  const SpGemmProblem pb_ = SpGemmProblem::square(big);
  const SpGemmProblem ps = SpGemmProblem::square(small);
  const mtx::CsrMatrix eb = reference_spgemm(pb_);
  const mtx::CsrMatrix es = reference_spgemm(ps);

  SpGemmExecutor exec;
  SpGemmOp op;
  op.algo = "pb";
  for (int round = 0; round < 3; ++round) {
    EXPECT_TRUE(mtx::equal_exact(exec.run(pb_, op), eb));
    EXPECT_TRUE(mtx::equal_exact(exec.run(ps, op), es));
  }
  const ExecutorStats s = exec.stats();
  EXPECT_EQ(s.executes, 6u);
  EXPECT_EQ(s.cache_misses, 2u);  // one analysis per structure, ever
  EXPECT_EQ(s.cache_hits, 4u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_NEAR(s.hit_ratio(), 4.0 / 6.0, 1e-12);
}

TEST(Executor, CapacityOneReplansOnEveryFlip) {
  // The pre-executor behavior as a configuration: a single cached plan
  // alternating between two structures re-analyzes every time.
  ExecutorOptions eo;
  eo.cache_capacity = 1;
  SpGemmExecutor exec(eo);
  const SpGemmProblem pa =
      SpGemmProblem::square(testutil::exact_er(200, 200, 5.0, 49));
  const SpGemmProblem pb_ =
      SpGemmProblem::square(testutil::exact_er(150, 150, 5.0, 50));
  SpGemmOp op;
  op.algo = "pb";
  for (int round = 0; round < 3; ++round) {
    (void)exec.run(pa, op);
    (void)exec.run(pb_, op);
  }
  const ExecutorStats s = exec.stats();
  EXPECT_EQ(s.cache_misses, 6u);
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.evictions, 5u);
}

TEST(Executor, LruEvictsTheLeastRecentlyUsedEntry) {
  ExecutorOptions eo;
  eo.cache_capacity = 2;
  SpGemmExecutor exec(eo);
  const SpGemmProblem pa =
      SpGemmProblem::square(testutil::exact_er(100, 100, 4.0, 51));
  const SpGemmProblem pb_ =
      SpGemmProblem::square(testutil::exact_er(110, 110, 4.0, 52));
  const SpGemmProblem pc =
      SpGemmProblem::square(testutil::exact_er(120, 120, 4.0, 53));
  SpGemmOp op;
  op.algo = "pb";
  (void)exec.run(pa, op);  // miss {A}
  (void)exec.run(pb_, op); // miss {B A}
  (void)exec.run(pa, op);  // hit  {A B}
  (void)exec.run(pc, op);  // miss {C A}, evicts B (least recently used)
  (void)exec.run(pa, op);  // hit  {A C}
  (void)exec.run(pb_, op); // miss again: B was evicted
  const ExecutorStats s = exec.stats();
  EXPECT_EQ(s.cache_misses, 4u);
  EXPECT_EQ(s.cache_hits, 2u);
  EXPECT_EQ(s.evictions, 2u);
}

TEST(Executor, ByteBudgetLiftsTheEntryCountBound) {
  // Byte mode: cache_capacity (1 entry here) is ignored; a generous byte
  // budget holds every structure, so the second round is all hits.
  ExecutorOptions eo;
  eo.cache_capacity = 1;
  eo.cache_capacity_bytes = 64u << 20;
  SpGemmExecutor exec(eo);
  SpGemmOp op;
  op.algo = "pb";
  std::vector<SpGemmProblem> problems;
  for (int i = 0; i < 4; ++i) {
    problems.push_back(SpGemmProblem::square(
        testutil::exact_er(100 + 20 * i, 100 + 20 * i, 4.0, 60 + i)));
  }
  for (int round = 0; round < 2; ++round) {
    for (const SpGemmProblem& p : problems) (void)exec.run(p, op);
  }
  const ExecutorStats s = exec.stats();
  EXPECT_EQ(s.cache_misses, 4u);
  EXPECT_EQ(s.cache_hits, 4u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.cache_entries, 4u);
  EXPECT_GT(s.cache_bytes, 0u);
  EXPECT_EQ(s.bytes_evicted, 0u);
}

TEST(Executor, ByteBudgetEvictsDownToTheTargetButKeepsTheNewestEntry) {
  // A budget no entry can fit under still caches the most recent plan
  // (the budget is a target, not a hard cap), evicting the previous one
  // on every flip and accounting for the reclaimed bytes.
  ExecutorOptions eo;
  eo.cache_capacity_bytes = 1;
  SpGemmExecutor exec(eo);
  const SpGemmProblem pa =
      SpGemmProblem::square(testutil::exact_er(120, 120, 4.0, 64));
  const SpGemmProblem pb_ =
      SpGemmProblem::square(testutil::exact_er(140, 140, 4.0, 65));
  SpGemmOp op;
  op.algo = "pb";
  for (int round = 0; round < 2; ++round) {
    (void)exec.run(pa, op);
    (void)exec.run(pb_, op);
  }
  const ExecutorStats s = exec.stats();
  EXPECT_EQ(s.cache_misses, 4u);  // the survivor is always the other one
  EXPECT_EQ(s.cache_hits, 0u);
  EXPECT_EQ(s.evictions, 3u);
  EXPECT_EQ(s.cache_entries, 1u);
  EXPECT_GT(s.cache_bytes, 0u);
  EXPECT_GT(s.bytes_evicted, 0u);
  // Back-to-back repeats of one structure still hit: the newest entry
  // survives its own insert.
  (void)exec.run(pa, op);  // evicts B
  (void)exec.run(pa, op);
  EXPECT_EQ(exec.stats().cache_hits, 1u);
}

TEST(Executor, OpIdentityKeysTheCacheAlongsideStructure) {
  // Two descriptors on one structure are two entries; flipping between
  // them never replans once both are cached.
  const SpGemmProblem p =
      SpGemmProblem::square(testutil::exact_er(200, 200, 5.0, 54));
  SpGemmExecutor exec;
  SpGemmOp times;
  times.algo = "pb";
  SpGemmOp minplus;
  minplus.algo = "pb";
  minplus.semiring = MinPlus::name;
  for (int round = 0; round < 3; ++round) {
    (void)exec.run(p, times);
    (void)exec.run(p, minplus);
  }
  const ExecutorStats s = exec.stats();
  EXPECT_EQ(s.cache_misses, 2u);
  EXPECT_EQ(s.cache_hits, 4u);
}

TEST(Executor, FixedBaselineOpsArePassthrough) {
  const SpGemmProblem p =
      SpGemmProblem::square(testutil::exact_er(100, 100, 4.0, 55));
  SpGemmExecutor exec;
  SpGemmOp op;
  op.algo = "hash";
  RunInfo info;
  const mtx::CsrMatrix c = exec.run(p, op, &info);
  EXPECT_TRUE(mtx::equal_exact(c, reference_spgemm(p)));
  EXPECT_TRUE(info.passthrough);
  const ExecutorStats s = exec.stats();
  EXPECT_EQ(s.passthrough, 1u);
  EXPECT_EQ(s.cache_hits + s.cache_misses, 0u);
}

// ---- value-only fast path -------------------------------------------------

TEST(Executor, ValueOnlyRunSkipsAnalysisAndStaysCorrect) {
  const mtx::CsrMatrix a = testutil::exact_er(250, 250, 5.0, 56);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmExecutor exec;
  SpGemmOp op;
  op.algo = "pb";
  (void)exec.run(p, op);  // populate the cache

  const mtx::CsrMatrix a2 = scale_values(a, 3.0);
  const SpGemmProblem p2 = SpGemmProblem::square(a2);
  RunInfo info;
  const mtx::CsrMatrix c = exec.run_values_updated(p2, op, &info);
  EXPECT_TRUE(info.cache_hit);
  EXPECT_TRUE(info.value_only);
  EXPECT_TRUE(mtx::equal_exact(c, reference_spgemm(p2)));
  EXPECT_EQ(exec.stats().value_only_hits, 1u);

  // No dims+nnz match on file: transparently falls back to the full
  // fingerprinted path (and caches the new structure).
  const SpGemmProblem other =
      SpGemmProblem::square(testutil::exact_er(180, 180, 4.0, 57));
  RunInfo fallback;
  const mtx::CsrMatrix co = exec.run_values_updated(other, op, &fallback);
  EXPECT_FALSE(fallback.value_only);
  EXPECT_FALSE(fallback.cache_hit);
  EXPECT_TRUE(mtx::equal_exact(co, reference_spgemm(other)));
}

// ---- batched descriptors --------------------------------------------------

TEST(Executor, BatchRunsEveryDescriptorOffOneAnalysisPass) {
  const mtx::CsrMatrix a = testutil::exact_er(250, 250, 5.0, 58);
  const mtx::CsrMatrix mask = testutil::exact_er(250, 250, 2.0, 59);
  const SpGemmProblem p = SpGemmProblem::square(a);

  std::vector<SpGemmOp> ops(3);
  ops[0].algo = "auto";
  ops[1].algo = "auto";
  ops[1].semiring = MinPlus::name;
  ops[2].algo = "pb";
  ops[2].mask = &mask;

  SpGemmExecutor exec;
  const std::vector<mtx::CsrMatrix> rs = exec.run(p, ops);
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_TRUE(mtx::equal_exact(rs[0], reference_spgemm(p)));
  EXPECT_TRUE(
      mtx::equal_exact(rs[1], reference_spgemm_semiring<MinPlus>(p)));
  EXPECT_TRUE(mtx::equal_exact(
      rs[2], mtx::pattern_filter(reference_spgemm(p), mask, false)));

  const ExecutorStats s = exec.stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.cache_misses, 3u);
  // Every batch plan landed in the cache: single runs now hit.
  RunInfo info;
  (void)exec.run(p, ops[0], &info);
  EXPECT_TRUE(info.cache_hit);

  SpGemmOp acc;
  acc.accumulate = true;
  const std::vector<SpGemmOp> bad{acc};
  EXPECT_THROW((void)exec.run(p, std::span<const SpGemmOp>(bad)),
               std::logic_error);
}

TEST(Executor, SameAggregateStructuresGetDistinctCacheEntries) {
  // Regression for the fingerprint's structural hash: two permutation
  // matrices share dims, nnz and flop(P²) — every aggregate the
  // fingerprint held before the hash — so without it the second structure
  // would false-hit the first one's cached plan and run through a stale
  // bin layout.
  constexpr index_t n = 512;
  const auto permutation = [](bool reversed) {
    mtx::CsrMatrix m(n, n);
    for (index_t r = 0; r < n; ++r) {
      m.rowptr[static_cast<std::size_t>(r) + 1] = r + 1;
      m.colids.push_back(reversed ? n - 1 - r : r);
      m.vals.push_back(1.0);
    }
    return m;
  };
  const mtx::CsrMatrix ident = permutation(false);
  const mtx::CsrMatrix rev = permutation(true);
  const SpGemmProblem pi = SpGemmProblem::square(ident);
  const SpGemmProblem pr = SpGemmProblem::square(rev);

  SpGemmExecutor exec;
  SpGemmOp op;
  op.algo = "pb";
  EXPECT_TRUE(mtx::equal_exact(exec.run(pi, op), reference_spgemm(pi)));
  EXPECT_TRUE(mtx::equal_exact(exec.run(pr, op), reference_spgemm(pr)));
  const ExecutorStats s = exec.stats();
  EXPECT_EQ(s.cache_misses, 2u);  // distinct entries, no false hit
  EXPECT_EQ(s.cache_hits, 0u);
}

TEST(ExecutorConcurrency, BatchFanOutMatchesSerialAtEveryConcurrency) {
  // The batched run's phase-2 fan-out (worker threads over the workspace
  // pool) must be a pure scheduling change: op-order results identical to
  // the serial batch, for a mix of semirings, masks and schedules.
  const mtx::CsrMatrix a = testutil::exact_er(220, 220, 5.0, 91);
  const mtx::CsrMatrix mask = testutil::exact_er(220, 220, 2.0, 92);
  const SpGemmProblem p = SpGemmProblem::square(a);

  std::vector<SpGemmOp> ops(6);
  ops[0].algo = "pb";
  ops[1].algo = "pb";
  ops[1].semiring = MinPlus::name;
  ops[2].algo = "pb";
  ops[2].mask = &mask;
  ops[3].algo = "pb";
  ops[3].mask = &mask;
  ops[3].complement = true;
  ops[4].algo = "auto";
  ops[5].algo = "pb";
  ops[5].pb.schedule = pb::PbSchedule::kPipeline;

  ExecutorOptions serial_opts;
  serial_opts.batch_concurrency = 1;
  SpGemmExecutor serial(serial_opts);
  const std::vector<mtx::CsrMatrix> want = serial.run(p, ops);

  for (const std::size_t conc : {std::size_t{0}, std::size_t{2},
                                 std::size_t{4}}) {
    ExecutorOptions o;
    o.batch_concurrency = conc;
    SpGemmExecutor exec(o);
    for (int round = 0; round < 3; ++round) {
      const std::vector<mtx::CsrMatrix> got = exec.run(p, ops);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_TRUE(mtx::equal_exact(got[i], want[i]))
            << "concurrency " << conc << ", round " << round << ", op " << i;
      }
    }
    const ExecutorStats s = exec.stats();
    EXPECT_EQ(s.batches, 3u);
    // Rounds 2 and 3 served every op from the cache.
    EXPECT_EQ(s.cache_misses, static_cast<std::uint64_t>(ops.size()));
    EXPECT_GE(s.cache_hits, 2u * ops.size());
  }
}

// ---- concurrent serving ---------------------------------------------------

TEST(ExecutorConcurrency, FourThreadsThroughOneCachedPlan) {
  const mtx::CsrMatrix base = testutil::exact_er(250, 250, 5.0, 60);
  SpGemmExecutor exec;
  SpGemmOp op;
  op.algo = "pb";
  {
    const SpGemmProblem warm = SpGemmProblem::square(base);
    (void)exec.run(warm, op);  // one analysis, then serve from the cache
  }

  constexpr int kThreads = 4;
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    // Values mutate between rounds (the serving pattern: same structure,
    // fresh numbers); every thread multiplies the same problem.
    const mtx::CsrMatrix m =
        scale_values(base, static_cast<value_t>(round + 1));
    const SpGemmProblem p = SpGemmProblem::square(m);
    const mtx::CsrMatrix expected = reference_spgemm(p);

    std::vector<mtx::CsrMatrix> results(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        set_threads(1);  // serving config: one OpenMP lane per request
        results[static_cast<std::size_t>(t)] =
            exec.run_values_updated(p, op);
      });
    }
    for (std::thread& th : threads) th.join();
    for (const mtx::CsrMatrix& r : results) {
      EXPECT_TRUE(mtx::equal_exact(r, expected)) << "round " << round;
    }
  }

  const ExecutorStats s = exec.stats();
  EXPECT_EQ(s.executes, 1u + kThreads * kRounds);
  EXPECT_EQ(s.cache_misses, 1u);  // the warmup analysis; everything else hit
  EXPECT_EQ(s.value_only_hits,
            static_cast<std::uint64_t>(kThreads * kRounds));
  const pb::WorkspacePool::Stats ps = exec.pool_stats();
  // Concurrency bounds the pool: at most one workspace per thread, and
  // most leases are served by returned (warm) workspaces.  Whether leases
  // actually overlapped depends on scheduling, so overlap itself is not
  // asserted.
  EXPECT_LE(ps.created, static_cast<std::uint64_t>(kThreads));
  EXPECT_GT(ps.reused, 0u);
}

TEST(ExecutorConcurrency, ConcurrentRunsAcrossTwoCachedStructures) {
  const SpGemmProblem pa =
      SpGemmProblem::square(testutil::exact_er(220, 220, 5.0, 61));
  const SpGemmProblem pb_ =
      SpGemmProblem::square(testutil::exact_er(160, 160, 5.0, 62));
  const mtx::CsrMatrix ea = reference_spgemm(pa);
  const mtx::CsrMatrix eb = reference_spgemm(pb_);
  SpGemmExecutor exec;
  SpGemmOp op;
  op.algo = "pb";
  (void)exec.run(pa, op);
  (void)exec.run(pb_, op);

  constexpr int kThreads = 4;
  std::vector<mtx::CsrMatrix> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      set_threads(1);
      const SpGemmProblem& mine = t % 2 == 0 ? pa : pb_;
      for (int i = 0; i < 3; ++i) {
        results[static_cast<std::size_t>(t)] = exec.run(mine, op);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(mtx::equal_exact(results[static_cast<std::size_t>(t)],
                                 t % 2 == 0 ? ea : eb))
        << "thread " << t;
  }
  EXPECT_EQ(exec.stats().cache_misses, 2u);  // races never re-analyzed
}

// ---- calibration ----------------------------------------------------------

TEST(SelectionCalibrate, RecoversSyntheticDeratingConstants) {
  const model::SelectionModel defaults;
  const double true_pb_eff = 0.6;
  const double true_penalty = 5.0;
  std::vector<model::PerfSample> samples;
  for (const double cf : {1.0, 1.5, 2.0, 3.0, 6.0, 12.0, 24.0}) {
    const model::AlgoChoice c =
        model::select_algorithm(cf, 1 << 20, true, defaults);
    // Invert the default derating to the underated bound, then apply the
    // ground-truth derating: that is what a machine with these constants
    // would have measured.
    const double pb_underated = c.pb_mflops / defaults.pb_efficiency;
    samples.push_back({"pb", c.cf, c.pb_mflops, pb_underated * true_pb_eff});
    const double col_eff_pred =
        c.cf / (c.cf + defaults.column_latency_penalty);
    const double col_underated = c.column_mflops / col_eff_pred;
    const double col_eff_true = c.cf / (c.cf + true_penalty);
    samples.push_back(
        {"hash", c.cf, c.column_mflops, col_underated * col_eff_true});
  }

  model::SelectionModel fit;
  const model::CalibrationResult r = fit.calibrate(samples);
  EXPECT_TRUE(r.changed);
  EXPECT_EQ(r.pb_samples, 7);
  EXPECT_EQ(r.column_samples, 7);
  EXPECT_NEAR(fit.pb_efficiency, true_pb_eff, 0.02);
  EXPECT_NEAR(fit.column_latency_penalty, true_penalty, 0.25);

  // Degenerate/empty samples leave the model untouched.
  model::SelectionModel untouched;
  const model::CalibrationResult none = untouched.calibrate({});
  EXPECT_FALSE(none.changed);
  EXPECT_EQ(untouched.pb_efficiency, defaults.pb_efficiency);
}

TEST(Executor, CalibratesItsSelectionModelAfterTheWarmup) {
  ExecutorOptions eo;
  eo.calibrate_after = 3;
  SpGemmExecutor exec(eo);
  const SpGemmProblem p =
      SpGemmProblem::square(testutil::exact_er(300, 300, 6.0, 63));
  SpGemmOp op;  // auto: unmasked executes record samples
  for (int i = 0; i < 5; ++i) (void)exec.run(p, op);
  const ExecutorStats s = exec.stats();
  EXPECT_EQ(s.calibrations, 1u);
  // The refitted constants drive future analyses and stay in range.
  const model::SelectionModel m = exec.selection_model();
  EXPECT_GT(m.pb_efficiency, 0.0);
  EXPECT_LE(m.pb_efficiency, 1.0);
  EXPECT_GE(m.column_latency_penalty, 0.0);
  // The sample window restarted after the refit.
  EXPECT_LT(exec.samples().size(), 3u);
}

// ---- structural-only masked estimate --------------------------------------

TEST(MaskedEstimate, PerRowCapSharpensTheGlobalBound) {
  const mtx::CsrMatrix a = testutil::exact_er(300, 300, 6.0, 64);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const std::vector<nnz_t> rf = pb::pb_row_flops(p.a_csc, p.b_csr);
  const nnz_t unmasked = pb::pb_estimate_nnz_c(rf, p.b_csr.ncols);

  const mtx::CsrMatrix sparse_mask = testutil::exact_er(300, 300, 1.5, 65);
  const nnz_t masked = pb::pb_estimate_nnz_c_masked(rf, sparse_mask);
  EXPECT_LE(masked, unmasked);
  EXPECT_LE(masked, sparse_mask.nnz());
  EXPECT_GT(masked, 0);

  // An identity mask caps every row at one surviving entry.
  const mtx::CsrMatrix eye = mtx::CsrMatrix::identity(300);
  EXPECT_LE(pb::pb_estimate_nnz_c_masked(rf, eye), 300);

  // Shape mismatch is rejected.
  const mtx::CsrMatrix wrong = testutil::exact_er(200, 300, 2.0, 66);
  EXPECT_THROW((void)pb::pb_estimate_nnz_c_masked(rf, wrong),
               std::invalid_argument);
}

// ---- PartitionedPlan value-only refresh -----------------------------------

TEST(PartitionedPlanTest, UpdateAValuesRefreshesFrozenSlices) {
  const mtx::CsrMatrix a = testutil::exact_er(300, 300, 6.0, 67);
  const SpGemmProblem p = SpGemmProblem::square(a);
  pb::PartitionedPlan plan = pb::make_partitioned_plan(p.a_csc, p.b_csr, 3);
  EXPECT_TRUE(
      mtx::equal_exact(plan.execute(p.b_csr).c, reference_spgemm(p)));

  // Same structure, new values: refresh the frozen slices and multiply
  // against the updated B — no re-slice, no re-analysis.
  const mtx::CsrMatrix a2 = scale_values(a, 3.0);
  const SpGemmProblem p2 = SpGemmProblem::square(a2);
  plan.update_a_values(p2.a_csc);
  EXPECT_TRUE(
      mtx::equal_exact(plan.execute(p2.b_csr).c, reference_spgemm(p2)));

  // Structure drift is detected during the copy pass.
  const mtx::CsrMatrix other = testutil::exact_er(300, 300, 5.0, 68);
  const SpGemmProblem po = SpGemmProblem::square(other);
  EXPECT_THROW(plan.update_a_values(po.a_csc), std::invalid_argument);
  const mtx::CsrMatrix small = testutil::exact_er(100, 100, 4.0, 69);
  const SpGemmProblem psm = SpGemmProblem::square(small);
  EXPECT_THROW(plan.update_a_values(psm.a_csc), std::invalid_argument);
}

// ---- SpGemmPlan as the single-entry executor view -------------------------

TEST(SpGemmPlanTest, AlternatingStructuresReuseCachedAnalyses) {
  const mtx::CsrMatrix big = testutil::exact_er(300, 300, 6.0, 70);
  const mtx::CsrMatrix small = testutil::exact_er(120, 120, 4.0, 71);
  const SpGemmProblem pb_ = SpGemmProblem::square(big);
  const SpGemmProblem ps = SpGemmProblem::square(small);
  PlanOptions opts;
  opts.algo = "pb";
  SpGemmPlan plan = make_plan(pb_, opts);
  EXPECT_TRUE(mtx::equal_exact(plan.execute(pb_), reference_spgemm(pb_)));
  EXPECT_TRUE(mtx::equal_exact(plan.execute(ps), reference_spgemm(ps)));
  // Flipping BACK is an analysis reuse now, not a replan — the executor
  // cache still holds the first structure's plan.
  EXPECT_TRUE(mtx::equal_exact(plan.execute(pb_), reference_spgemm(pb_)));
  EXPECT_TRUE(mtx::equal_exact(plan.execute(ps), reference_spgemm(ps)));
  const PlanTelemetry& tm = plan.telemetry();
  EXPECT_EQ(tm.executes, 4u);
  EXPECT_EQ(tm.replans, 1u);  // only the small structure was ever new
  EXPECT_EQ(tm.analysis_reuses, 3u);
}

TEST(SpGemmPlanTest, ExecuteValuesUpdatedReplaysNumericStagesOnly) {
  const mtx::CsrMatrix a = testutil::exact_er(250, 250, 5.0, 72);
  const SpGemmProblem p = SpGemmProblem::square(a);
  PlanOptions opts;
  opts.algo = "pb";
  SpGemmPlan plan = make_plan(p, opts);
  (void)plan.execute(p);

  const mtx::CsrMatrix a2 = scale_values(a, 2.0);
  const SpGemmProblem p2 = SpGemmProblem::square(a2);
  const mtx::CsrMatrix c = plan.execute_values_updated(p2);
  EXPECT_TRUE(mtx::equal_exact(c, reference_spgemm(p2)));
  const PlanTelemetry& tm = plan.telemetry();
  EXPECT_EQ(tm.executes, 2u);
  EXPECT_EQ(tm.replans, 0u);
  EXPECT_EQ(tm.analysis_reuses, 2u);  // the value-only run counts as reuse
}

}  // namespace
}  // namespace pbs
