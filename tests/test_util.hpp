// Shared helpers for the test suite.
//
// Property tests compare floating-point matrix products across algorithms
// whose accumulation *order* differs (PB's radix sort is not stable for
// equal keys).  To make equality exact rather than tolerance-based, random
// test matrices use small-integer values: all intermediate sums then stay
// well inside the 2^53 exactly-representable range, so any order of
// additions yields bit-identical results.
#pragma once

#include <cstdint>

#include "matrix/convert.hpp"
#include "matrix/coo.hpp"
#include "matrix/csr.hpp"
#include "matrix/generate.hpp"

namespace pbs::testutil {

/// Replaces all values with integers in [1, 8] derived from the entry's
/// position (deterministic, order-independent).
inline void make_values_exact(mtx::CooMatrix& coo) {
  for (nnz_t i = 0; i < coo.nnz(); ++i) {
    const auto h = static_cast<std::uint64_t>(coo.row[i]) * 0x9E3779B97F4A7C15ull +
                   static_cast<std::uint64_t>(coo.col[i]) * 0xC2B2AE3D27D4EB4Full;
    coo.val[i] = static_cast<value_t>(1 + (h >> 32) % 8);
  }
}

/// ER matrix with exact-integer values.
inline mtx::CsrMatrix exact_er(index_t nrows, index_t ncols, double d,
                               std::uint64_t seed) {
  mtx::CooMatrix coo = mtx::generate_er(nrows, ncols, d, seed);
  make_values_exact(coo);
  return mtx::coo_to_csr(coo);
}

/// R-MAT matrix with exact-integer values.
inline mtx::CsrMatrix exact_rmat(int scale, double edge_factor,
                                 std::uint64_t seed) {
  mtx::RmatParams p;
  p.scale = scale;
  p.edge_factor = edge_factor;
  p.seed = seed;
  mtx::CooMatrix coo = mtx::generate_rmat(p);
  make_values_exact(coo);
  return mtx::coo_to_csr(coo);
}

/// Small dense-ish matrix from an explicit triplet list.
inline mtx::CsrMatrix from_triplets(
    index_t nrows, index_t ncols,
    std::initializer_list<std::tuple<index_t, index_t, value_t>> entries) {
  mtx::CooMatrix coo(nrows, ncols);
  for (const auto& [r, c, v] : entries) coo.add(r, c, v);
  coo.canonicalize();
  return mtx::coo_to_csr(coo);
}

}  // namespace pbs::testutil
