// Fused epilogues (PR 10): bit-identity of the in-kernel paths against
// their unfused two-pass formulations, across the full variant matrix —
// fused accumulate vs semiring_ewise_add post-pass, expand-stage masking
// vs compress-stage filtering, and the fused elementwise post-op
// (scale/prune/top-k) vs the separate mtx:: passes — over
// {plus_times, min_plus, max_min, bool_or_and} x
// {wide, narrow, key-only, narrow-f32} x {barrier, pipeline} x
// {mask, complemented mask}; plus the PostOp spec parser and the
// descriptor-layer validation rules (post-op x accumulate, post-op on a
// value-free semiring).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "matrix/ops.hpp"
#include "spgemm/epilogue.hpp"
#include "spgemm/executor.hpp"
#include "spgemm/op.hpp"
#include "spgemm/spgemm.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

/// One (semiring, tuple format) point of the variant matrix.  Key-only
/// needs a value-free semiring, so bool_or_and covers it; the valued
/// semirings each run wide, narrow and narrow-f32.
struct Variant {
  const char* semiring;
  pb::FormatPolicy format;
  const char* format_name;
};

std::vector<Variant> variant_matrix() {
  std::vector<Variant> v;
  for (const char* s : {"plus_times", "min_plus", "max_min"}) {
    v.push_back({s, pb::FormatPolicy::kWide, "wide"});
    v.push_back({s, pb::FormatPolicy::kNarrow, "narrow"});
    v.push_back({s, pb::FormatPolicy::kF32, "f32"});
  }
  v.push_back({"bool_or_and", pb::FormatPolicy::kWide, "wide"});
  v.push_back({"bool_or_and", pb::FormatPolicy::kKeyOnly, "keyonly"});
  return v;
}

/// mtx::keep_top_k_per_row selects the same entries as the fused top-k
/// but appends ties after the strictly-above-cutoff entries, so a tied
/// row can come out of ascending column order; the fused epilogue always
/// emits column-ordered rows.  Canonicalize before bitwise comparison.
mtx::CsrMatrix sorted_rows(mtx::CsrMatrix m) {
  std::vector<std::pair<index_t, value_t>> row;
  for (index_t r = 0; r < m.nrows; ++r) {
    const nnz_t lo = m.rowptr[r];
    const nnz_t hi = m.rowptr[static_cast<std::size_t>(r) + 1];
    row.clear();
    for (nnz_t i = lo; i < hi; ++i) row.emplace_back(m.colids[i], m.vals[i]);
    std::sort(row.begin(), row.end());
    for (nnz_t i = lo; i < hi; ++i) {
      m.colids[i] = row[static_cast<std::size_t>(i - lo)].first;
      m.vals[i] = row[static_cast<std::size_t>(i - lo)].second;
    }
  }
  return m;
}

std::string trace(const Variant& v, pb::PbSchedule sched) {
  return std::string(v.semiring) + "/" + v.format_name +
         (sched == pb::PbSchedule::kBarrier ? "/barrier" : "/pipeline");
}

SpGemmOp pb_op(const Variant& v, pb::PbSchedule sched) {
  SpGemmOp op;
  op.algo = "pb";
  op.semiring = v.semiring;
  op.pb.format = v.format;
  op.pb.schedule = sched;
  return op;
}

// ---- fused accumulate -----------------------------------------------------

// The tentpole claim: run(p, op, c_old) merges C during CSR conversion,
// and the result is bit-identical to the explicit two-pass
// semiring_ewise_add(c_old, product) it replaced — for every semiring,
// tuple format and schedule.
TEST(FusedEpilogue, AccumulateMatchesThePostPassAcrossTheVariantMatrix) {
  const mtx::CsrMatrix a = testutil::exact_er(220, 200, 5.0, 501);
  const mtx::CsrMatrix b = testutil::exact_er(200, 180, 5.0, 502);
  const mtx::CsrMatrix c_old = testutil::exact_er(220, 180, 3.0, 503);
  const SpGemmProblem p = SpGemmProblem::multiply(a, b);
  SpGemmExecutor exec;

  for (const Variant& v : variant_matrix()) {
    for (const pb::PbSchedule sched :
         {pb::PbSchedule::kBarrier, pb::PbSchedule::kPipeline}) {
      SCOPED_TRACE(trace(v, sched));
      const SpGemmOp op = pb_op(v, sched);
      const mtx::CsrMatrix product = exec.run(p, op);
      const mtx::CsrMatrix expected =
          semiring_ewise_add(op.semiring, c_old, product);
      RunInfo info;
      const mtx::CsrMatrix fused = exec.run(p, op, c_old, &info);
      EXPECT_TRUE(info.used_pb);
      EXPECT_TRUE(mtx::equal_exact(fused, expected));
    }
  }
}

// An accumulating run shares its cached plan with the plain product of
// the same op: accumulate is a per-call argument, not part of the key.
TEST(FusedEpilogue, AccumulatingRunSharesThePlanWithThePlainProduct) {
  const mtx::CsrMatrix a = testutil::exact_er(160, 160, 4.0, 504);
  const mtx::CsrMatrix c_old = testutil::exact_er(160, 160, 3.0, 505);
  const SpGemmProblem p = SpGemmProblem::multiply(a, a);
  SpGemmExecutor exec;
  SpGemmOp op;
  op.algo = "pb";

  RunInfo first, second;
  (void)exec.run(p, op, &first);
  (void)exec.run(p, op, c_old, &second);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(second.cache_hit);
}

// Accumulating into an empty (all-zero-rows) C must degenerate to the
// plain product, and a product accumulated into itself doubles under
// plus_times — two easy algebraic gold checks on the fused path.
TEST(FusedEpilogue, AccumulateAlgebraicIdentities) {
  const mtx::CsrMatrix a = testutil::exact_er(150, 150, 4.0, 506);
  const SpGemmProblem p = SpGemmProblem::multiply(a, a);
  SpGemmExecutor exec;
  SpGemmOp op;
  op.algo = "pb";

  const mtx::CsrMatrix product = exec.run(p, op);
  mtx::CsrMatrix empty;
  empty.nrows = product.nrows;
  empty.ncols = product.ncols;
  empty.rowptr.assign(static_cast<std::size_t>(product.nrows) + 1, 0);
  EXPECT_TRUE(mtx::equal_exact(exec.run(p, op, empty), product));

  const mtx::CsrMatrix doubled = exec.run(p, op, product);
  EXPECT_TRUE(mtx::equal_exact(doubled, mtx::add(product, product)));
}

// ---- expand-stage masking -------------------------------------------------

// Masking in the expand scatter loop (kOn) must produce the same C as
// filtering at compress (kOff), for both mask polarities, every format
// and both schedules — and when the expand mask runs, the compress
// filter has nothing left to drop.
TEST(FusedEpilogue, ExpandMaskingMatchesCompressFilteringAcrossTheMatrix) {
  const mtx::CsrMatrix a = testutil::exact_er(200, 200, 5.0, 507);
  const mtx::CsrMatrix mask = testutil::exact_er(200, 200, 2.0, 508);
  const SpGemmProblem p = SpGemmProblem::multiply(a, a);
  SpGemmExecutor exec;

  for (const Variant& v : variant_matrix()) {
    for (const pb::PbSchedule sched :
         {pb::PbSchedule::kBarrier, pb::PbSchedule::kPipeline}) {
      for (const bool complement : {false, true}) {
        SCOPED_TRACE(trace(v, sched) +
                     (complement ? "/complement" : "/mask"));
        SpGemmOp op = pb_op(v, sched);
        op.mask = &mask;
        op.complement = complement;

        op.pb.expand_mask = pb::ExpandMaskMode::kOff;
        const mtx::CsrMatrix filtered = exec.run(p, op);

        op.pb.expand_mask = pb::ExpandMaskMode::kOn;
        RunInfo info;
        const mtx::CsrMatrix skipped = exec.run(p, op, &info);

        EXPECT_TRUE(mtx::equal_exact(skipped, filtered));
        EXPECT_TRUE(info.pb_stats.expand_masked);
        EXPECT_EQ(info.pb_stats.mask_dropped, 0);
        if (!complement) EXPECT_GT(info.pb_stats.mask_skipped_expand, 0);
      }
    }
  }
}

// The expand-masked product against the serial oracle: masked SpGEMM is
// pattern_filter(reference product, mask).
TEST(FusedEpilogue, ExpandMaskedProductMatchesTheSerialOracle) {
  const mtx::CsrMatrix a = testutil::exact_er(180, 180, 5.0, 509);
  const mtx::CsrMatrix mask = testutil::exact_er(180, 180, 2.0, 510);
  const SpGemmProblem p = SpGemmProblem::multiply(a, a);
  const mtx::CsrMatrix ref = reference_spgemm(p);
  SpGemmExecutor exec;

  for (const bool complement : {false, true}) {
    SpGemmOp op;
    op.algo = "pb";
    op.mask = &mask;
    op.complement = complement;
    op.pb.expand_mask = pb::ExpandMaskMode::kOn;
    EXPECT_TRUE(mtx::equal_exact(exec.run(p, op),
                                 mtx::pattern_filter(ref, mask, complement)))
        << (complement ? "complement" : "mask");
  }
}

// ---- fused elementwise post-ops -------------------------------------------

// The fused scale/prune/top-k must equal the separate passes the
// workloads used to run: scale, then mtx::prune, then
// mtx::keep_top_k_per_row on the unpruned product.
TEST(FusedEpilogue, PostOpMatchesTheSeparatePassesAcrossTheMatrix) {
  const mtx::CsrMatrix a = testutil::exact_er(220, 200, 5.0, 511);
  const mtx::CsrMatrix b = testutil::exact_er(200, 180, 5.0, 512);
  const SpGemmProblem p = SpGemmProblem::multiply(a, b);
  PostOp post;
  post.scale = 0.5;  // exact in binary: fused-vs-separate stays bitwise
  post.prune_threshold = 3.0;
  post.top_k = 4;
  SpGemmExecutor exec;

  for (const Variant& v : variant_matrix()) {
    if (std::string(v.semiring) == "bool_or_and") continue;  // value-free
    for (const pb::PbSchedule sched :
         {pb::PbSchedule::kBarrier, pb::PbSchedule::kPipeline}) {
      SCOPED_TRACE(trace(v, sched));
      SpGemmOp plain = pb_op(v, sched);
      const mtx::CsrMatrix product = exec.run(p, plain);

      mtx::CsrMatrix gold = product;
      for (value_t& val : gold.vals) val *= post.scale;
      gold = sorted_rows(mtx::keep_top_k_per_row(
          mtx::prune(gold, post.prune_threshold), post.top_k));

      SpGemmOp op = plain;
      op.post_op = post;
      RunInfo info;
      const mtx::CsrMatrix fused = exec.run(p, op, &info);
      EXPECT_TRUE(info.used_pb);
      EXPECT_TRUE(mtx::equal_exact(fused, gold));
      EXPECT_EQ(info.pb_stats.post_dropped,
                static_cast<nnz_t>(product.vals.size() - gold.vals.size()));
    }
  }
}

// apply_post_op (the unfused helper the row-wise and fallback paths use)
// agrees with the same separate-pass gold, knob by knob.
TEST(FusedEpilogue, ApplyPostOpMatchesTheSeparatePasses) {
  const mtx::CsrMatrix a = testutil::exact_er(200, 200, 6.0, 513);
  const SpGemmProblem p = SpGemmProblem::multiply(a, a);
  const mtx::CsrMatrix product = reference_spgemm(p);

  {
    PostOp scale_only;
    scale_only.scale = 0.25;
    mtx::CsrMatrix c = product;
    apply_post_op(c, scale_only);
    mtx::CsrMatrix gold = product;
    for (value_t& val : gold.vals) val *= 0.25;
    EXPECT_TRUE(mtx::equal_exact(c, gold));
  }
  {
    PostOp prune_only;
    prune_only.prune_threshold = 10.0;
    mtx::CsrMatrix c = product;
    apply_post_op(c, prune_only);
    EXPECT_TRUE(mtx::equal_exact(c, mtx::prune(product, 10.0)));
  }
  {
    PostOp topk_only;
    topk_only.top_k = 3;
    mtx::CsrMatrix c = product;
    apply_post_op(c, topk_only);
    EXPECT_TRUE(
        mtx::equal_exact(c, sorted_rows(mtx::keep_top_k_per_row(product, 3))));
  }
}

// The same post-op descriptor through a row-wise algorithm (heap) must
// match the PB-fused result: the epilogue is a property of the op, not
// of the kernel that happens to run it.
TEST(FusedEpilogue, PostOpIsKernelIndependent) {
  const mtx::CsrMatrix a = testutil::exact_er(180, 180, 5.0, 514);
  const SpGemmProblem p = SpGemmProblem::multiply(a, a);
  PostOp post;
  post.prune_threshold = 5.0;
  post.top_k = 6;
  SpGemmExecutor exec;

  SpGemmOp op;
  op.algo = "pb";
  op.post_op = post;
  const mtx::CsrMatrix via_pb = exec.run(p, op);

  op.algo = "heap";
  RunInfo info;
  const mtx::CsrMatrix via_heap = exec.run(p, op, &info);
  EXPECT_FALSE(info.used_pb);
  EXPECT_TRUE(mtx::equal_exact(via_heap, via_pb));
}

// Post-op composes with a mask: the mask restricts the pattern first,
// then prune/top-k act on the survivors.
TEST(FusedEpilogue, PostOpComposesWithTheMask) {
  const mtx::CsrMatrix a = testutil::exact_er(180, 180, 5.0, 515);
  const mtx::CsrMatrix mask = testutil::exact_er(180, 180, 3.0, 516);
  const SpGemmProblem p = SpGemmProblem::multiply(a, a);
  PostOp post;
  post.top_k = 2;
  SpGemmExecutor exec;

  SpGemmOp masked;
  masked.algo = "pb";
  masked.mask = &mask;
  const mtx::CsrMatrix gold =
      sorted_rows(mtx::keep_top_k_per_row(exec.run(p, masked), post.top_k));

  SpGemmOp op = masked;
  op.post_op = post;
  EXPECT_TRUE(mtx::equal_exact(exec.run(p, op), gold));
}

// Differing post-ops are distinct cache keys: the cached entry's op copy
// carries the post-op into every execution, so two ops that differ only
// in post_op must not share an entry.
TEST(FusedEpilogue, PostOpIsPartOfThePlanCacheKey) {
  const mtx::CsrMatrix a = testutil::exact_er(150, 150, 4.0, 517);
  const SpGemmProblem p = SpGemmProblem::multiply(a, a);
  SpGemmExecutor exec;

  SpGemmOp op;
  op.algo = "pb";
  op.post_op.prune_threshold = 2.0;
  const mtx::CsrMatrix pruned_2 = exec.run(p, op);

  op.post_op.prune_threshold = 50.0;
  RunInfo info;
  const mtx::CsrMatrix pruned_50 = exec.run(p, op, &info);
  EXPECT_FALSE(info.cache_hit);
  EXPECT_LT(pruned_50.vals.size(), pruned_2.vals.size());
  EXPECT_TRUE(mtx::equal_exact(pruned_50, mtx::prune(pruned_2, 50.0)));
}

// ---- descriptor validation ------------------------------------------------

TEST(FusedEpilogue, PostOpOnAValueFreeSemiringThrows) {
  const mtx::CsrMatrix a = testutil::exact_er(80, 80, 3.0, 518);
  const SpGemmProblem p = SpGemmProblem::multiply(a, a);
  SpGemmExecutor exec;
  SpGemmOp op;
  op.algo = "pb";
  op.semiring = "bool_or_and";
  op.post_op.prune_threshold = 0.5;
  EXPECT_THROW((void)exec.run(p, op), std::invalid_argument);
}

TEST(FusedEpilogue, PostOpAndAccumulateAreMutuallyExclusive) {
  const mtx::CsrMatrix a = testutil::exact_er(80, 80, 3.0, 519);
  const mtx::CsrMatrix c_old = testutil::exact_er(80, 80, 2.0, 520);
  const SpGemmProblem p = SpGemmProblem::multiply(a, a);
  SpGemmExecutor exec;
  SpGemmOp op;
  op.algo = "pb";
  op.post_op.top_k = 4;
  EXPECT_THROW((void)exec.run(p, op, c_old), std::invalid_argument);
}

// ---- PostOp spec parser ---------------------------------------------------

TEST(PostOpSpec, ParsesEveryKnobInAnyOrder) {
  const PostOp op = parse_post_op("topk:64,scale:2,prune:0.25");
  EXPECT_DOUBLE_EQ(op.scale, 2.0);
  EXPECT_DOUBLE_EQ(op.prune_threshold, 0.25);
  EXPECT_EQ(op.top_k, 64);
  EXPECT_TRUE(op.active());
  EXPECT_TRUE(op.drops_entries());
}

TEST(PostOpSpec, RoundTripsThroughToString) {
  PostOp op;
  op.scale = 2.0;
  op.prune_threshold = 0.25;
  op.top_k = 64;
  EXPECT_EQ(parse_post_op(post_op_to_string(op)), op);
  EXPECT_EQ(post_op_to_string(PostOp{}), "");
  EXPECT_FALSE(PostOp{}.active());
  EXPECT_FALSE(PostOp{}.drops_entries());
  PostOp scale_only;
  scale_only.scale = 0.5;
  EXPECT_TRUE(scale_only.active());
  EXPECT_FALSE(scale_only.drops_entries());
}

TEST(PostOpSpec, MalformedSpecsThrow) {
  EXPECT_THROW((void)parse_post_op("bogus:1"), std::invalid_argument);
  EXPECT_THROW((void)parse_post_op("prune"), std::invalid_argument);
  EXPECT_THROW((void)parse_post_op("prune:abc"), std::invalid_argument);
  EXPECT_THROW((void)parse_post_op("prune:-1"), std::invalid_argument);
  EXPECT_THROW((void)parse_post_op("prune:nan"), std::invalid_argument);
  EXPECT_THROW((void)parse_post_op("topk:0"), std::invalid_argument);
  EXPECT_THROW((void)parse_post_op("topk:-3"), std::invalid_argument);
  EXPECT_THROW((void)parse_post_op("scale:inf"), std::invalid_argument);
}

}  // namespace
}  // namespace pbs
