#include <gtest/gtest.h>

#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "test_util.hpp"

namespace pbs::mtx {
namespace {

TEST(Csr, DefaultIsEmptyValid) {
  CsrMatrix m;
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_TRUE(m.valid());
}

TEST(Csr, IdentityIsValid) {
  const CsrMatrix i = CsrMatrix::identity(5);
  EXPECT_TRUE(i.valid());
  EXPECT_EQ(i.nnz(), 5);
  for (index_t r = 0; r < 5; ++r) {
    EXPECT_EQ(i.row_nnz(r), 1);
    EXPECT_EQ(i.row_cols(r)[0], r);
    EXPECT_EQ(i.row_vals(r)[0], 1.0);
  }
}

TEST(Csr, DiagonalHoldsValues) {
  const std::vector<value_t> d{1.5, -2.0, 0.25};
  const CsrMatrix m = CsrMatrix::diagonal(d);
  EXPECT_TRUE(m.valid());
  for (index_t r = 0; r < 3; ++r) EXPECT_EQ(m.row_vals(r)[0], d[r]);
}

TEST(Csr, ValidRejectsUnsortedColumns) {
  CsrMatrix m = testutil::from_triplets(2, 4, {{0, 1, 1.0}, {0, 3, 2.0}});
  ASSERT_TRUE(m.valid());
  std::swap(m.colids[0], m.colids[1]);
  EXPECT_FALSE(m.valid());
}

TEST(Csr, ValidRejectsOutOfRangeColumn) {
  CsrMatrix m = testutil::from_triplets(2, 4, {{0, 1, 1.0}});
  m.colids[0] = 4;
  EXPECT_FALSE(m.valid());
}

TEST(Csr, ValidRejectsNonMonotoneRowptr) {
  CsrMatrix m = testutil::from_triplets(3, 3, {{0, 0, 1.0}, {2, 2, 1.0}});
  ASSERT_TRUE(m.valid());
  m.rowptr[1] = 2;
  m.rowptr[2] = 1;
  EXPECT_FALSE(m.valid());
}

TEST(Csr, AvgDegree) {
  const CsrMatrix m =
      testutil::from_triplets(4, 4, {{0, 0, 1.0}, {0, 1, 1.0}, {2, 3, 1.0}});
  EXPECT_DOUBLE_EQ(m.avg_degree(), 3.0 / 4.0);
}

TEST(Csr, EqualExactAndApprox) {
  const CsrMatrix a = testutil::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, 2.0}});
  CsrMatrix b = a;
  EXPECT_TRUE(equal_exact(a, b));
  b.vals[0] += 1e-14;
  EXPECT_FALSE(equal_exact(a, b));
  EXPECT_TRUE(equal_approx(a, b));
  b.vals[0] += 1.0;
  EXPECT_FALSE(equal_approx(a, b));
}

TEST(Csr, EqualRejectsShapeMismatch) {
  const CsrMatrix a = testutil::from_triplets(2, 2, {{0, 0, 1.0}});
  const CsrMatrix b = testutil::from_triplets(2, 3, {{0, 0, 1.0}});
  EXPECT_FALSE(equal_exact(a, b));
  EXPECT_FALSE(equal_approx(a, b));
}

TEST(Csc, ValidAndAccessors) {
  // [ 1 0 ]
  // [ 2 3 ]
  CscMatrix m(2, 2);
  m.colptr = {0, 2, 3};
  m.rowids = {0, 1, 1};
  m.vals = {1.0, 2.0, 3.0};
  EXPECT_TRUE(m.valid());
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.col_nnz(0), 2);
  EXPECT_EQ(m.col_nnz(1), 1);
  EXPECT_EQ(m.col_rows(0)[1], 1);
  EXPECT_EQ(m.col_vals(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(m.avg_degree(), 1.5);
}

TEST(Csc, ValidRejectsUnsortedRows) {
  CscMatrix m(3, 1);
  m.colptr = {0, 2};
  m.rowids = {2, 1};
  m.vals = {1.0, 1.0};
  EXPECT_FALSE(m.valid());
}

}  // namespace
}  // namespace pbs::mtx
