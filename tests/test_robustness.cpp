// Hardened-serving robustness: deterministic fault injection (allocation
// failures and phase-boundary throws at every pipeline stage, both
// schedules, all tuple formats), memory-budget degradation at plan time
// and run time, deadlines and cooperative cancellation, strong exception
// safety (leases returned, plan cache consistent, the next non-faulted
// run bit-identical to a fresh executor), strict input validation, and
// malformed matrix-market rejection.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/errors.hpp"
#include "common/fault.hpp"
#include "matrix/matrix_market.hpp"
#include "spgemm/executor.hpp"
#include "spgemm/registry.hpp"
#include "spgemm/semiring.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

using namespace std::chrono_literals;

/// Re-arms nothing and clears everything on scope exit, so a failed
/// assertion can never leak an armed injector into the next test.
struct FaultGuard {
  FaultGuard() { FaultInjector::reset(); }
  ~FaultGuard() { FaultInjector::reset(); }
};

/// The clean product of (op, p) computed by a fresh executor — the
/// bit-identity oracle the survive-then-serve checks compare against.
mtx::CsrMatrix fresh_run(const SpGemmProblem& p, const SpGemmOp& op) {
  SpGemmExecutor exec;
  return exec.run(p, op);
}

SpGemmOp pb_op(pb::PbSchedule schedule,
               pb::FormatPolicy format = pb::FormatPolicy::kAuto,
               const std::string& semiring = "plus_times") {
  SpGemmOp op;
  op.algo = "pb";
  op.semiring = semiring;
  op.pb.schedule = schedule;
  op.pb.format = format;
  return op;
}

// ---- injected allocation failures: degrade, recover, stay identical -------

// An allocation failure at the n-th budgeted workspace allocation makes
// the run re-execute through the row-wise fallback (degrade_reason
// "oom"); the executor keeps the cached PB plan, so the immediately
// following non-faulted run serves the PB path bit-identically to a
// fresh executor.  Swept over both schedules and several fault indices
// so the failure lands in different phases.
TEST(ExecutorFault, AllocFailureDegradesThenNextRunIsIdentical) {
  const mtx::CsrMatrix a = testutil::exact_er(400, 400, 6.0, 41);
  const SpGemmProblem p = SpGemmProblem::square(a);
  for (const pb::PbSchedule sched :
       {pb::PbSchedule::kBarrier, pb::PbSchedule::kPipeline}) {
    const SpGemmOp op = pb_op(sched);
    const mtx::CsrMatrix ref = fresh_run(p, op);
    for (const std::int64_t n : {0, 1, 2, 4, 8}) {
      FaultGuard guard;
      SpGemmExecutor exec;  // cold pool: the run must allocate
      FaultInjector::fail_alloc_after(n);
      RunInfo info;
      const mtx::CsrMatrix c = exec.run(p, op, &info);
      FaultInjector::reset();  // n past the run's allocation count: disarm
      EXPECT_TRUE(mtx::equal_exact(c, ref))
          << "schedule " << static_cast<int>(sched) << ", fault n = " << n;
      if (n == 0) {  // the first allocation always exists -> always fires
        EXPECT_TRUE(info.degraded);
        EXPECT_EQ(info.degrade_reason, "oom");
        EXPECT_NE(info.algo, "pb");
      }
      EXPECT_EQ(exec.pool_stats().in_flight, 0u);

      // Survive-then-serve: the same executor, un-faulted, returns to
      // the PB plan and reproduces the fresh result exactly.
      RunInfo retry;
      EXPECT_TRUE(mtx::equal_exact(exec.run(p, op, &retry), ref));
      EXPECT_FALSE(retry.degraded);
      if (info.degraded) EXPECT_TRUE(retry.used_pb);
      const ExecutorStats es = exec.stats();
      EXPECT_EQ(es.degraded_runs, es.oom_fallbacks);
    }
  }
}

// Every tuple format's stream allocation is covered by the degradation
// path — including the 8 B key-only stream (boolean semiring) and the
// f32 value mode.
TEST(ExecutorFault, AllocFailureDegradesForEveryTupleFormat) {
  const mtx::CsrMatrix a = testutil::exact_er(300, 300, 5.0, 42);
  const SpGemmProblem p = SpGemmProblem::square(a);
  struct Case {
    pb::FormatPolicy format;
    const char* semiring;
  };
  for (const Case& cs :
       {Case{pb::FormatPolicy::kWide, "plus_times"},
        Case{pb::FormatPolicy::kNarrow, "plus_times"},
        Case{pb::FormatPolicy::kF32, "plus_times"},
        Case{pb::FormatPolicy::kKeyOnly, "bool_or_and"}}) {
    const SpGemmOp op =
        pb_op(pb::PbSchedule::kBarrier, cs.format, cs.semiring);
    const mtx::CsrMatrix ref = fresh_run(p, op);
    FaultGuard guard;
    SpGemmExecutor exec;
    FaultInjector::fail_alloc_after(0);
    RunInfo info;
    const mtx::CsrMatrix c = exec.run(p, op, &info);
    EXPECT_TRUE(mtx::equal_exact(c, ref)) << cs.semiring;
    EXPECT_TRUE(info.degraded) << cs.semiring;
    EXPECT_EQ(info.degrade_reason, "oom");
    EXPECT_EQ(exec.pool_stats().in_flight, 0u);
    EXPECT_TRUE(mtx::equal_exact(exec.run(p, op), ref)) << cs.semiring;
  }
}

// ---- injected phase-boundary throws: propagate typed, stay consistent -----

// A FaultInjectedError raised at a phase boundary is NOT absorbed by the
// degradation path (it is not a bad_alloc): the run propagates it, every
// lease is returned, the plan cache stays consistent, and the next run
// on the same executor serves the exact fresh-executor product.
TEST(ExecutorFault, PhaseThrowPropagatesAndExecutorRecovers) {
  const mtx::CsrMatrix a = testutil::exact_er(400, 400, 6.0, 43);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const SpGemmOp op = pb_op(pb::PbSchedule::kBarrier);
  const mtx::CsrMatrix ref = fresh_run(p, op);
  for (const FaultPoint point :
       {FaultPoint::kPlanBuild, FaultPoint::kExpand,
        FaultPoint::kSortCompress, FaultPoint::kConvert}) {
    FaultGuard guard;
    SpGemmExecutor exec;
    FaultInjector::throw_at(point);
    EXPECT_THROW(exec.run(p, op), FaultInjectedError)
        << fault_point_name(point);
    EXPECT_EQ(exec.pool_stats().in_flight, 0u) << fault_point_name(point);
    EXPECT_TRUE(mtx::equal_exact(exec.run(p, op), ref))
        << fault_point_name(point);
  }
}

// The pipeline schedule funnels a worker-thread throw through its
// exception_ptr capture and rethrows it intact after the region joins.
TEST(ExecutorFault, PipelinePlanBuildThrowThenServes) {
  const mtx::CsrMatrix a = testutil::exact_er(400, 400, 6.0, 44);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const SpGemmOp op = pb_op(pb::PbSchedule::kPipeline);
  const mtx::CsrMatrix ref = fresh_run(p, op);
  FaultGuard guard;
  SpGemmExecutor exec;
  FaultInjector::throw_at(FaultPoint::kPlanBuild);
  EXPECT_THROW(exec.run(p, op), FaultInjectedError);
  EXPECT_EQ(exec.pool_stats().in_flight, 0u);
  EXPECT_TRUE(mtx::equal_exact(exec.run(p, op), ref));
}

// A failing batch worker drains its siblings (they unwind as cancelled)
// but the ROOT CAUSE is what propagates — not the induced cancellation —
// and the executor serves the full batch cleanly afterwards.
TEST(ExecutorFault, BatchWorkerThrowPropagatesRootCauseThenServes) {
  const mtx::CsrMatrix a = testutil::exact_er(300, 300, 5.0, 45);
  const SpGemmProblem p = SpGemmProblem::square(a);
  std::vector<SpGemmOp> ops;
  for (const char* s : {"plus_times", "min_plus", "bool_or_and"}) {
    SpGemmOp op;
    op.algo = "pb";
    op.semiring = s;
    ops.push_back(op);
  }
  FaultGuard guard;
  SpGemmExecutor exec;
  FaultInjector::throw_at(FaultPoint::kBatchWorker, /*skip=*/1);
  EXPECT_THROW(exec.run(p, std::span<const SpGemmOp>(ops)),
               FaultInjectedError);
  EXPECT_EQ(exec.pool_stats().in_flight, 0u);
  const std::vector<mtx::CsrMatrix> cs =
      exec.run(p, std::span<const SpGemmOp>(ops));
  ASSERT_EQ(cs.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    EXPECT_TRUE(mtx::equal_exact(
        cs[i], semiring_algorithm("reference", ops[i].semiring)(p)))
        << ops[i].semiring;
  }
}

// ---- deadlines and cancellation -------------------------------------------

// A per-run timeout with forced-slow bins unwinds with DeadlineError (in
// both schedules), returns every lease, and leaves the executor serving.
TEST(ExecutorDeadline, TimeoutUnwindsWithDeadlineErrorThenServes) {
  const mtx::CsrMatrix a = testutil::exact_er(400, 400, 6.0, 46);
  const SpGemmProblem p = SpGemmProblem::square(a);
  for (const pb::PbSchedule sched :
       {pb::PbSchedule::kBarrier, pb::PbSchedule::kPipeline}) {
    const SpGemmOp op = pb_op(sched);
    const mtx::CsrMatrix ref = fresh_run(p, op);
    FaultGuard guard;
    SpGemmExecutor exec;
    exec.prepare(p, op);  // plan outside the deadline window
    FaultInjector::slow_bin(20);
    RunOptions ropts;
    ropts.timeout = 1ms;
    EXPECT_THROW(exec.run(p, op, ropts), DeadlineError)
        << "schedule " << static_cast<int>(sched);
    FaultInjector::reset();
    EXPECT_EQ(exec.pool_stats().in_flight, 0u);
    EXPECT_GE(exec.stats().cancelled, 1u);
    EXPECT_TRUE(mtx::equal_exact(exec.run(p, op), ref));
  }
}

// An absolute deadline already in the past stops the run before any
// numeric work; DeadlineError is a CancelledError, so a caller catching
// the broader type sees both.
TEST(ExecutorDeadline, ExpiredDeadlineStopsBeforeWork) {
  const mtx::CsrMatrix a = testutil::exact_er(100, 100, 4.0, 47);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmExecutor exec;
  RunOptions ropts;
  ropts.deadline = std::chrono::steady_clock::now() - 1s;
  EXPECT_THROW(exec.run(p, pb_op(pb::PbSchedule::kAuto), ropts),
               DeadlineError);
  EXPECT_THROW(exec.run(p, pb_op(pb::PbSchedule::kAuto), ropts),
               CancelledError);
  EXPECT_EQ(exec.stats().cancelled, 2u);
  EXPECT_EQ(exec.pool_stats().in_flight, 0u);
}

// A pre-fired external token cancels the run; the executor's own
// cancel() only affects runs in flight at the moment it is called —
// later runs get a fresh cancellation epoch.
TEST(ExecutorDeadline, ExternalTokenAndEpochCancellation) {
  const mtx::CsrMatrix a = testutil::exact_er(100, 100, 4.0, 48);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const SpGemmOp op = pb_op(pb::PbSchedule::kAuto);
  SpGemmExecutor exec;
  const mtx::CsrMatrix ref = exec.run(p, op);

  CancelToken tok;
  tok.request_cancel();
  RunOptions ropts;
  ropts.cancel = &tok;
  EXPECT_THROW(exec.run(p, op, ropts), CancelledError);
  EXPECT_EQ(exec.pool_stats().in_flight, 0u);

  exec.cancel();  // no run in flight: must not poison future runs
  EXPECT_TRUE(mtx::equal_exact(exec.run(p, op), ref));
}

// Cancellation racing real work: each iteration either completes with
// the exact product or unwinds with CancelledError — never a partial
// result, never a leaked lease — and the executor serves afterwards.
TEST(ExecutorCancelStress, RacingCancelEitherCompletesOrUnwindsCleanly) {
  const mtx::CsrMatrix a = testutil::exact_er(500, 500, 8.0, 49);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const SpGemmOp op = pb_op(pb::PbSchedule::kAuto);
  SpGemmExecutor exec;
  const mtx::CsrMatrix ref = exec.run(p, op);  // warm plan + pool
  for (int i = 0; i < 8; ++i) {
    CancelToken tok;
    RunOptions ropts;
    ropts.cancel = &tok;
    std::thread killer([&tok, i] {
      std::this_thread::sleep_for(std::chrono::microseconds(100 * i));
      tok.request_cancel();
    });
    try {
      const mtx::CsrMatrix c = exec.run(p, op, ropts);
      EXPECT_TRUE(mtx::equal_exact(c, ref)) << "iteration " << i;
    } catch (const CancelledError&) {
      // Acceptable: the token fired inside the run.
    }
    killer.join();
    EXPECT_EQ(exec.pool_stats().in_flight, 0u) << "iteration " << i;
  }
  EXPECT_TRUE(mtx::equal_exact(exec.run(p, op), ref));
}

// ---- memory budget: plan-time and run-time degradation --------------------

// A budget the PB tuple stream cannot fit downgrades the plan to the
// row-wise fallback at analysis time (reason "budget"); the result is
// still the exact product.
TEST(ExecutorBudget, TinyBudgetDegradesAtPlanTime) {
  const mtx::CsrMatrix a = testutil::exact_er(400, 400, 6.0, 50);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const SpGemmOp op = pb_op(pb::PbSchedule::kAuto);
  const mtx::CsrMatrix ref = fresh_run(p, op);
  ExecutorOptions eo;
  eo.mem_budget_bytes = 64 * 1024;  // far below the expand stream
  SpGemmExecutor exec(eo);
  RunInfo info;
  const mtx::CsrMatrix c = exec.run(p, op, &info);
  EXPECT_TRUE(mtx::equal_exact(c, ref));
  EXPECT_TRUE(info.degraded);
  EXPECT_EQ(info.degrade_reason, "budget");
  EXPECT_FALSE(info.used_pb);
  EXPECT_NE(info.algo, "pb");
  EXPECT_GE(exec.stats().degraded_plans, 1u);
  EXPECT_EQ(exec.pool_stats().in_flight, 0u);
}

// A budget with ample headroom changes nothing: the PB plan runs and the
// product matches an unbudgeted executor bit for bit.
TEST(ExecutorBudget, AmpleBudgetRunsThePbPlanUnchanged) {
  const mtx::CsrMatrix a = testutil::exact_er(400, 400, 6.0, 51);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const SpGemmOp op = pb_op(pb::PbSchedule::kAuto);
  const mtx::CsrMatrix ref = fresh_run(p, op);
  ExecutorOptions eo;
  eo.mem_budget_bytes = std::size_t{1} << 30;
  SpGemmExecutor exec(eo);
  RunInfo info;
  const mtx::CsrMatrix c = exec.run(p, op, &info);
  EXPECT_TRUE(mtx::equal_exact(c, ref));
  EXPECT_FALSE(info.degraded);
  EXPECT_TRUE(info.used_pb);
  EXPECT_EQ(exec.stats().degraded_plans, 0u);
}

// ---- strict input validation at the executor ingress ----------------------

TEST(ExecutorValidate, StrictModeRejectsMalformedOperands) {
  const mtx::CsrMatrix a = testutil::exact_er(60, 60, 4.0, 52);
  ExecutorOptions eo;
  eo.validate_inputs = true;
  SpGemmExecutor exec(eo);
  const SpGemmOp op = pb_op(pb::PbSchedule::kAuto);
  EXPECT_NO_THROW(exec.run(SpGemmProblem::square(a), op));

  // Un-sort a row's column ids (safe to convert, invalid to multiply).
  mtx::CsrMatrix bad = a;
  bool corrupted = false;
  for (index_t r = 0; r < bad.nrows && !corrupted; ++r) {
    if (bad.row_nnz(r) >= 2) {
      std::swap(bad.colids[static_cast<std::size_t>(bad.rowptr[r])],
                bad.colids[static_cast<std::size_t>(bad.rowptr[r]) + 1]);
      corrupted = true;
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_THROW(exec.run(SpGemmProblem::square(bad), op), ValidationError);
  EXPECT_EQ(exec.pool_stats().in_flight, 0u);
}

// ---- csr_validate unit coverage -------------------------------------------

TEST(CsrValidate, AcceptsWellFormedMatrices) {
  EXPECT_TRUE(csr_validate(testutil::exact_er(50, 70, 3.0, 53)));
  EXPECT_TRUE(csr_validate(mtx::CsrMatrix{}));  // empty is well-formed
  EXPECT_TRUE(csr_validate(mtx::CsrMatrix::identity(8),
                           mtx::ValuePolicy::kFinite));
}

TEST(CsrValidate, ReportsEachStructuralViolation) {
  const mtx::CsrMatrix good = testutil::from_triplets(
      3, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 3.0}, {2, 0, 4.0}});
  ASSERT_TRUE(csr_validate(good));

  mtx::CsrMatrix m = good;
  m.rowptr.pop_back();
  EXPECT_FALSE(csr_validate(m));

  m = good;
  m.rowptr[0] = 1;
  EXPECT_FALSE(csr_validate(m));

  m = good;
  std::swap(m.rowptr[1], m.rowptr[2]);  // non-monotone
  EXPECT_FALSE(csr_validate(m));

  m = good;
  m.colids[0] = 3;  // out of [0, ncols)
  EXPECT_FALSE(csr_validate(m));

  m = good;
  m.colids[0] = -1;
  EXPECT_FALSE(csr_validate(m));

  m = good;
  std::swap(m.colids[0], m.colids[1]);  // unsorted within row 0
  EXPECT_FALSE(csr_validate(m));

  m = good;
  m.vals.pop_back();  // sizes disagree with rowptr.back()
  EXPECT_FALSE(csr_validate(m));

  // The diagnostic names the location.
  m = good;
  m.colids[2] = 5;
  const mtx::CsrValidation v = csr_validate(m);
  ASSERT_FALSE(v.ok);
  EXPECT_NE(v.error.find("row 1"), std::string::npos) << v.error;
}

TEST(CsrValidate, ValuePolicyGovernsNonFiniteValues) {
  mtx::CsrMatrix m = testutil::from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, 2.0}});
  m.vals[0] = std::numeric_limits<value_t>::infinity();
  EXPECT_TRUE(csr_validate(m));  // kAny: min-plus matrices carry inf
  EXPECT_FALSE(csr_validate(m, mtx::ValuePolicy::kFinite));
  EXPECT_THROW(
      csr_validate_or_throw(m, "ingress", mtx::ValuePolicy::kFinite),
      ValidationError);
}

// ---- malformed matrix-market rejection ------------------------------------

mtx::CooMatrix parse_mm(const std::string& text) {
  std::istringstream in(text);
  return mtx::read_matrix_market(in, "fuzz.mtx");
}

TEST(MatrixMarketReject, MalformedFilesFailWithDiagnosticsNotUndefined) {
  const char* bad[] = {
      "",                                                   // empty
      "%%NotMatrixMarket matrix coordinate real general\n"  // bad banner
      "1 1 1\n1 1 1.0\n",
      "%%MatrixMarket tensor coordinate real general\n"     // bad object
      "1 1 1\n1 1 1.0\n",
      "%%MatrixMarket matrix array real general\n"          // bad format
      "1 1\n1.0\n",
      "%%MatrixMarket matrix coordinate real general\n",    // no size line
      "%%MatrixMarket matrix coordinate real general\n"     // bad size line
      "two by two\n",
      "%%MatrixMarket matrix coordinate real general\n"     // negative dim
      "-2 2 1\n1 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n"     // > int32 dims
      "3000000000 3000000000 1\n1 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n"     // truncated
      "2 2 3\n1 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n"     // index OOB
      "2 2 1\n3 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n"     // zero-based
      "2 2 1\n0 1 1.0\n",
      "%%MatrixMarket matrix coordinate real general\n"     // missing value
      "2 2 1\n1 1\n",
      "%%MatrixMarket matrix coordinate real general\n"     // nan value
      "2 2 1\n1 1 nan\n",
      "%%MatrixMarket matrix coordinate real general\n"     // inf value
      "2 2 1\n1 1 inf\n",
  };
  for (const char* text : bad) {
    EXPECT_THROW(parse_mm(text), std::runtime_error) << text;
  }
}

TEST(MatrixMarketReject, WellFormedVariantsStillParse) {
  const mtx::CooMatrix general = parse_mm(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "2 2 2\n1 1 1.5\n2 1 -2.0\n");
  EXPECT_EQ(general.nnz(), 2);
  const mtx::CooMatrix sym = parse_mm(
      "%%MatrixMarket matrix coordinate integer symmetric\n"
      "3 3 2\n2 1 4\n3 3 9\n");
  EXPECT_EQ(sym.nnz(), 3);  // mirrored off-diagonal
  const mtx::CooMatrix pattern = parse_mm(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n2 2\n");
  EXPECT_EQ(pattern.nnz(), 1);
}

// ---- env-armed fault injection (driven by ctest, see CMakeLists) ----------

// These run twice: once through gtest discovery with no PBS_FAULT_* set
// (skipped), and once through the dedicated RobustnessFaultEnv ctest
// entries that export the env var — exercising the read-once env
// activation path end to end in a clean process.

TEST(FaultEnvCtest, AllocFaultFromEnvironmentDegradesThenServes) {
  if (std::getenv("PBS_FAULT_ALLOC_AFTER") == nullptr) {
    GTEST_SKIP() << "PBS_FAULT_ALLOC_AFTER not set";
  }
  const mtx::CsrMatrix a = testutil::exact_er(300, 300, 5.0, 54);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const SpGemmOp op = pb_op(pb::PbSchedule::kAuto);
  SpGemmExecutor exec;
  RunInfo info;
  const mtx::CsrMatrix c = exec.run(p, op, &info);
  EXPECT_TRUE(info.degraded);
  EXPECT_EQ(info.degrade_reason, "oom");
  EXPECT_EQ(exec.pool_stats().in_flight, 0u);
  // One-shot: the injector disarmed after firing, so the retry serves
  // the PB plan and must agree with the degraded result exactly.
  RunInfo retry;
  const mtx::CsrMatrix c2 = exec.run(p, op, &retry);
  EXPECT_FALSE(retry.degraded);
  EXPECT_TRUE(mtx::equal_exact(c, c2));
}

TEST(FaultEnvCtest, PhaseThrowFromEnvironmentPropagatesThenServes) {
  if (std::getenv("PBS_FAULT_THROW_AT") == nullptr) {
    GTEST_SKIP() << "PBS_FAULT_THROW_AT not set";
  }
  const mtx::CsrMatrix a = testutil::exact_er(300, 300, 5.0, 55);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const SpGemmOp op = pb_op(pb::PbSchedule::kBarrier);
  SpGemmExecutor exec;
  EXPECT_THROW(exec.run(p, op), FaultInjectedError);
  EXPECT_EQ(exec.pool_stats().in_flight, 0u);
  const mtx::CsrMatrix c = exec.run(p, op);
  SpGemmExecutor fresh;
  EXPECT_TRUE(mtx::equal_exact(c, fresh.run(p, op)));
}

}  // namespace
}  // namespace pbs
