#include "pb/symbolic.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "matrix/mstats.hpp"

namespace pbs::pb {
namespace {

struct Operands {
  mtx::CscMatrix a;
  mtx::CsrMatrix b;
};

Operands er_operands(index_t n, double d, std::uint64_t seed) {
  const mtx::CsrMatrix a = mtx::coo_to_csr(mtx::generate_er(n, n, d, seed));
  const mtx::CsrMatrix b =
      mtx::coo_to_csr(mtx::generate_er(n, n, d, seed + 1000));
  return {mtx::csr_to_csc(a), b};
}

TEST(PbSymbolic, FlopMatchesIndependentCount) {
  const Operands ops = er_operands(512, 5.0, 1);
  const SymbolicResult sym = pb_symbolic(ops.a, ops.b, PbConfig{});
  EXPECT_EQ(sym.flop, mtx::count_flops(ops.a, ops.b));
}

TEST(PbSymbolic, BinHomeIsAContiguousPartitionOverDetectedNodes) {
  // bin_home maps every bin to the NUMA node whose memory should back it
  // (PbWorkspace::place_bins first-touches accordingly).  On any machine
  // it must be a valid contiguous non-decreasing partition spanning
  // exactly numa_nodes nodes; on a single-node machine it is all zeros.
  const Operands ops = er_operands(1024, 6.0, 7);
  const SymbolicResult sym = pb_symbolic(ops.a, ops.b, PbConfig{});
  ASSERT_EQ(sym.bin_home.size(),
            static_cast<std::size_t>(sym.layout.nbins));
  ASSERT_GE(sym.numa_nodes, 1);
  int max_node = 0;
  for (std::size_t i = 0; i < sym.bin_home.size(); ++i) {
    ASSERT_GE(sym.bin_home[i], 0);
    ASSERT_LT(sym.bin_home[i], sym.numa_nodes);
    if (i > 0) ASSERT_GE(sym.bin_home[i], sym.bin_home[i - 1]);  // contiguous
    max_node = std::max(max_node, sym.bin_home[i]);
  }
  EXPECT_EQ(max_node + 1, sym.numa_nodes);
}

TEST(PbSymbolic, BinFillsPartitionFlopAndRegionsAlign) {
  for (const BinPolicy policy :
       {BinPolicy::kRange, BinPolicy::kModulo, BinPolicy::kAdaptive}) {
    const Operands ops = er_operands(700, 4.0, 2);
    PbConfig cfg;
    cfg.policy = policy;
    cfg.nbins = 16;
    const SymbolicResult sym = pb_symbolic(ops.a, ops.b, cfg);
    ASSERT_EQ(sym.bin_offsets.size(),
              static_cast<std::size_t>(sym.layout.nbins) + 1);
    ASSERT_EQ(sym.bin_fill.size(), static_cast<std::size_t>(sym.layout.nbins));
    EXPECT_EQ(sym.bin_offsets.front(), 0);

    // Region starts are 64-byte aligned on both streams: 4-tuple
    // granularity wide (4 x 16 B), 16-tuple narrow (16 x 4 B keys).
    const nnz_t pad = sym.format == TupleFormat::kNarrow ? 16 : 4;
    nnz_t total_fill = 0;
    for (int bin = 0; bin < sym.layout.nbins; ++bin) {
      const nnz_t region = sym.bin_offsets[static_cast<std::size_t>(bin) + 1] -
                           sym.bin_offsets[static_cast<std::size_t>(bin)];
      EXPECT_EQ(sym.bin_offsets[static_cast<std::size_t>(bin)] % pad, 0);
      EXPECT_GE(region, sym.bin_fill[static_cast<std::size_t>(bin)]);
      EXPECT_LT(region - sym.bin_fill[static_cast<std::size_t>(bin)], pad);
      total_fill += sym.bin_fill[static_cast<std::size_t>(bin)];
    }
    EXPECT_EQ(total_fill, sym.flop);
    EXPECT_GE(sym.bin_offsets.back(), sym.flop);
  }
}

TEST(PbSymbolic, HistogramMatchesBruteForce) {
  const Operands ops = er_operands(300, 4.0, 3);
  PbConfig cfg;
  cfg.nbins = 8;
  const SymbolicResult sym = pb_symbolic(ops.a, ops.b, cfg);

  // Brute force: per tuple, find its bin.
  std::vector<nnz_t> expected(static_cast<std::size_t>(sym.layout.nbins), 0);
  for (index_t i = 0; i < ops.a.ncols; ++i) {
    for (const index_t r : ops.a.col_rows(i)) {
      expected[static_cast<std::size_t>(sym.layout.binid(r))] +=
          ops.b.row_nnz(i);
    }
  }
  for (int bin = 0; bin < sym.layout.nbins; ++bin) {
    EXPECT_EQ(sym.bin_fill[static_cast<std::size_t>(bin)],
              expected[static_cast<std::size_t>(bin)])
        << "bin " << bin;
  }
}

TEST(PbSymbolic, AutoNbinsRespectsL2Override) {
  const Operands ops = er_operands(2048, 8.0, 4);
  PbConfig small_l2;
  small_l2.l2_bytes = 64 * 1024;
  PbConfig big_l2;
  big_l2.l2_bytes = 16 * 1024 * 1024;
  const SymbolicResult s1 = pb_symbolic(ops.a, ops.b, small_l2);
  const SymbolicResult s2 = pb_symbolic(ops.a, ops.b, big_l2);
  EXPECT_GT(s1.layout.nbins, s2.layout.nbins);
}

TEST(PbSymbolic, DimensionMismatchThrows) {
  const mtx::CsrMatrix a = mtx::coo_to_csr(mtx::generate_er(10, 20, 2.0, 5));
  const mtx::CsrMatrix b = mtx::coo_to_csr(mtx::generate_er(30, 10, 2.0, 6));
  EXPECT_THROW(pb_symbolic(mtx::csr_to_csc(a), b, PbConfig{}),
               std::invalid_argument);
}

TEST(PbSymbolic, EmptyInputsGiveZeroFlop) {
  mtx::CooMatrix empty(64, 64);
  const mtx::CsrMatrix e = mtx::coo_to_csr(empty);
  const SymbolicResult sym = pb_symbolic(mtx::csr_to_csc(e), e, PbConfig{});
  EXPECT_EQ(sym.flop, 0);
  EXPECT_EQ(sym.bin_offsets.back(), 0);
  EXPECT_GE(sym.layout.nbins, 1);
}

TEST(PbSymbolic, RectangularOperands) {
  const mtx::CsrMatrix a = mtx::coo_to_csr(mtx::generate_er(100, 50, 3.0, 7));
  const mtx::CsrMatrix b = mtx::coo_to_csr(mtx::generate_er(50, 200, 3.0, 8));
  const SymbolicResult sym = pb_symbolic(mtx::csr_to_csc(a), b, PbConfig{});
  EXPECT_EQ(sym.flop, mtx::count_flops(a, b));
  nnz_t total_fill = 0;
  for (const nnz_t f : sym.bin_fill) total_fill += f;
  EXPECT_EQ(total_fill, sym.flop);
}

}  // namespace
}  // namespace pbs::pb
