#include "matrix/ops.hpp"

#include <gtest/gtest.h>

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "test_util.hpp"

namespace pbs::mtx {
namespace {

using testutil::from_triplets;

TEST(Ops, HadamardIntersectsPatterns) {
  const CsrMatrix a = from_triplets(2, 3, {{0, 0, 2.0}, {0, 2, 3.0}, {1, 1, 4.0}});
  const CsrMatrix b = from_triplets(2, 3, {{0, 2, 5.0}, {1, 0, 6.0}});
  const CsrMatrix c = hadamard(a, b);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.colids[0], 2);
  EXPECT_EQ(c.vals[0], 15.0);
}

TEST(Ops, HadamardWithSelfSquaresValues) {
  const CsrMatrix a = from_triplets(2, 2, {{0, 1, 3.0}, {1, 0, -2.0}});
  const CsrMatrix c = hadamard(a, a);
  EXPECT_EQ(c.vals, (std::vector<value_t>{9.0, 4.0}));
}

TEST(Ops, AddUnionsPatterns) {
  const CsrMatrix a = from_triplets(2, 2, {{0, 0, 1.0}, {1, 1, 2.0}});
  const CsrMatrix b = from_triplets(2, 2, {{0, 0, 10.0}, {1, 0, 20.0}});
  const CsrMatrix c = add(a, b);
  EXPECT_EQ(c.nnz(), 3);
  EXPECT_EQ(c.vals, (std::vector<value_t>{11.0, 20.0, 2.0}));
}

TEST(Ops, AddWithCoefficients) {
  const CsrMatrix a = from_triplets(1, 2, {{0, 0, 1.0}, {0, 1, 2.0}});
  const CsrMatrix b = from_triplets(1, 2, {{0, 0, 3.0}});
  const CsrMatrix c = add(a, b, 2.0, -1.0);
  EXPECT_EQ(c.vals, (std::vector<value_t>{-1.0, 4.0}));
}

TEST(Ops, TrilTriuPartition) {
  const CsrMatrix a = coo_to_csr(generate_er(100, 100, 5.0, 31));
  const CsrMatrix lower = tril(a);       // col < row
  const CsrMatrix upper = triu(a);       // col > row
  const CsrMatrix diag_kept = add(lower, upper);
  // lower + upper + diagonal == a
  nnz_t diag_count = 0;
  for (index_t r = 0; r < a.nrows; ++r) {
    for (const index_t c : a.row_cols(r)) {
      if (c == r) {
        ++diag_count;
      }
    }
  }
  EXPECT_EQ(lower.nnz() + upper.nnz() + diag_count, a.nnz());
  for (index_t r = 0; r < lower.nrows; ++r) {
    for (const index_t c : lower.row_cols(r)) {
      ASSERT_LT(c, r);
    }
    for (const index_t c : upper.row_cols(r)) {
      ASSERT_GT(c, r);
    }
  }
  EXPECT_TRUE(diag_kept.valid());
}

TEST(Ops, TrilWithOffset) {
  const CsrMatrix a = from_triplets(
      3, 3, {{0, 0, 1.0}, {1, 0, 1.0}, {1, 1, 1.0}, {2, 2, 1.0}});
  // k=1 keeps col < row+1, i.e. the diagonal too.
  const CsrMatrix l1 = tril(a, 1);
  EXPECT_EQ(l1.nnz(), 4);
}

TEST(Ops, PruneDropsSmallMagnitudes) {
  const CsrMatrix a =
      from_triplets(1, 4, {{0, 0, 0.1}, {0, 1, -0.5}, {0, 2, 0.05}, {0, 3, 2.0}});
  const CsrMatrix p = prune(a, 0.1);
  EXPECT_EQ(p.nnz(), 3);  // keeps |v| >= 0.1 including the negative
  EXPECT_EQ(p.colids, (std::vector<index_t>{0, 1, 3}));
}

TEST(Ops, KeepTopKPerRow) {
  const CsrMatrix a = from_triplets(
      2, 5,
      {{0, 0, 1.0}, {0, 1, 5.0}, {0, 2, 3.0}, {0, 3, 5.0}, {1, 2, 1.0}});
  const CsrMatrix k2 = keep_top_k_per_row(a, 2);
  EXPECT_EQ(k2.row_nnz(0), 2);
  EXPECT_EQ(k2.row_nnz(1), 1);  // short rows kept whole
  // The two 5.0s win; ties resolved toward smaller column.
  EXPECT_EQ(k2.row_cols(0)[0], 1);
  EXPECT_EQ(k2.row_cols(0)[1], 3);
}

TEST(Ops, ElementPower) {
  const CsrMatrix a = from_triplets(1, 2, {{0, 0, 2.0}, {0, 1, 3.0}});
  const CsrMatrix sq = element_power(a, 2.0);
  EXPECT_EQ(sq.vals, (std::vector<value_t>{4.0, 9.0}));
}

TEST(Ops, NormalizeColumnsMakesStochastic) {
  const CsrMatrix a = coo_to_csr(generate_er(50, 50, 4.0, 33));
  const CsrMatrix n = normalize_columns(a);
  const std::vector<value_t> sums = col_sums(n);
  for (index_t c = 0; c < n.ncols; ++c) {
    if (sums[c] != 0.0) {
      EXPECT_NEAR(sums[c], 1.0, 1e-12) << "col " << c;
    }
  }
}

TEST(Ops, DropDiagonal) {
  const CsrMatrix a =
      from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  const CsrMatrix d = drop_diagonal(a);
  EXPECT_EQ(d.nnz(), 1);
  EXPECT_EQ(d.colids[0], 1);
}

TEST(Ops, SpmvMatchesManual) {
  // [1 2; 0 3] * [4, 5] = [14, 15]
  const CsrMatrix a =
      from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 3.0}});
  const std::vector<value_t> x{4.0, 5.0};
  const std::vector<value_t> y = spmv(a, x);
  EXPECT_EQ(y, (std::vector<value_t>{14.0, 15.0}));
}

TEST(Ops, RowColSumsAndValueSum) {
  const CsrMatrix a =
      from_triplets(2, 3, {{0, 0, 1.0}, {0, 2, 2.0}, {1, 1, 4.0}});
  EXPECT_EQ(row_sums(a), (std::vector<value_t>{3.0, 4.0}));
  EXPECT_EQ(col_sums(a), (std::vector<value_t>{1.0, 4.0, 2.0}));
  EXPECT_EQ(value_sum(a), 7.0);
}

TEST(Ops, MaxAbsDiff) {
  const CsrMatrix a = from_triplets(1, 2, {{0, 0, 1.0}, {0, 1, 5.0}});
  const CsrMatrix b = from_triplets(1, 2, {{0, 0, 1.5}});
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 5.0);
}

TEST(Ops, SymmetrizeIsSymmetric) {
  const CsrMatrix a = coo_to_csr(generate_er(64, 64, 3.0, 35));
  const CsrMatrix s = symmetrize(a);
  EXPECT_TRUE(equal_approx(s, transpose(s)));
}

TEST(Ops, ToPattern) {
  const CsrMatrix a = from_triplets(1, 2, {{0, 0, -3.0}, {0, 1, 0.5}});
  const CsrMatrix p = to_pattern(a);
  EXPECT_EQ(p.vals, (std::vector<value_t>{1.0, 1.0}));
  EXPECT_EQ(p.colids, a.colids);
}

}  // namespace
}  // namespace pbs::mtx
