#include "pb/partitioned.hpp"

#include <gtest/gtest.h>

#include "spgemm/spgemm.hpp"
#include "test_util.hpp"

namespace pbs::pb {
namespace {

class Partitioned : public ::testing::TestWithParam<int> {};

TEST_P(Partitioned, MatchesUnpartitionedOnEr) {
  const int nparts = GetParam();
  const mtx::CsrMatrix a = testutil::exact_er(500, 500, 5.0, 81);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const mtx::CsrMatrix expected = reference_spgemm(p);
  const PartitionedResult r =
      pb_spgemm_partitioned(p.a_csc, p.b_csr, nparts);
  ASSERT_TRUE(r.c.valid());
  EXPECT_TRUE(equal_exact(r.c, expected));
  EXPECT_EQ(r.parts.size(), static_cast<std::size_t>(nparts));
}

TEST_P(Partitioned, MatchesUnpartitionedOnSkewedRmat) {
  const int nparts = GetParam();
  const mtx::CsrMatrix a = testutil::exact_rmat(8, 8.0, 82);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const PartitionedResult r =
      pb_spgemm_partitioned(p.a_csc, p.b_csr, nparts);
  EXPECT_TRUE(equal_exact(r.c, reference_spgemm(p)));
}

INSTANTIATE_TEST_SUITE_P(Parts, Partitioned, ::testing::Values(1, 2, 3, 7, 16));

TEST(PartitionedEdge, SinglePartEqualsPlainPb) {
  const mtx::CsrMatrix a = testutil::exact_er(300, 300, 4.0, 83);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const PartitionedResult r = pb_spgemm_partitioned(p.a_csc, p.b_csr, 1);
  const PbResult plain = pb_spgemm(p.a_csc, p.b_csr);
  EXPECT_TRUE(equal_exact(r.c, plain.c));
  // Part flop sums to the whole multiplication's flop.
  EXPECT_EQ(r.parts[0].flop, plain.stats.flop);
}

TEST(PartitionedEdge, PartFlopsSumToTotal) {
  const mtx::CsrMatrix a = testutil::exact_er(400, 400, 6.0, 84);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const PbResult plain = pb_spgemm(p.a_csc, p.b_csr);
  const PartitionedResult r = pb_spgemm_partitioned(p.a_csc, p.b_csr, 4);
  nnz_t flop = 0, nnzc = 0;
  for (const PbTelemetry& t : r.parts) {
    flop += t.flop;
    nnzc += t.nnz_c;
  }
  EXPECT_EQ(flop, plain.stats.flop);
  EXPECT_EQ(nnzc, plain.stats.nnz_c);
}

TEST(PartitionedEdge, MorePartsThanRows) {
  const mtx::CsrMatrix a = testutil::exact_er(5, 5, 2.0, 85);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const PartitionedResult r = pb_spgemm_partitioned(p.a_csc, p.b_csr, 64);
  EXPECT_TRUE(equal_exact(r.c, reference_spgemm(p)));
}

TEST(PartitionedEdge, RectangularOperands) {
  const mtx::CsrMatrix a = testutil::exact_er(120, 60, 3.0, 86);
  const mtx::CsrMatrix b = testutil::exact_er(60, 90, 3.0, 87);
  const SpGemmProblem p = SpGemmProblem::multiply(a, b);
  const PartitionedResult r = pb_spgemm_partitioned(p.a_csc, p.b_csr, 3);
  EXPECT_TRUE(equal_exact(r.c, reference_spgemm(p)));
}

TEST(PartitionedEdge, InvalidPartsThrow) {
  const mtx::CsrMatrix a = testutil::exact_er(10, 10, 2.0, 88);
  const SpGemmProblem p = SpGemmProblem::square(a);
  EXPECT_THROW(pb_spgemm_partitioned(p.a_csc, p.b_csr, 0),
               std::invalid_argument);
}

TEST(PartitionedEdge, EmptyMatrix) {
  mtx::CooMatrix empty(40, 40);
  const mtx::CsrMatrix e = mtx::coo_to_csr(empty);
  const SpGemmProblem p = SpGemmProblem::square(e);
  const PartitionedResult r = pb_spgemm_partitioned(p.a_csc, p.b_csr, 4);
  EXPECT_EQ(r.c.nnz(), 0);
  EXPECT_TRUE(r.c.valid());
}

}  // namespace
}  // namespace pbs::pb
