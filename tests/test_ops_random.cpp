// Randomized property tests for the element-wise ops: every operation is
// mirrored against a dense implementation on random matrices, so structural
// corner cases (empty rows, full rows, cancellation) get covered without
// enumerating them by hand.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "test_util.hpp"

namespace pbs::mtx {
namespace {

using Dense = std::vector<std::vector<value_t>>;

Dense to_dense(const CsrMatrix& a) {
  Dense d(static_cast<std::size_t>(a.nrows),
          std::vector<value_t>(static_cast<std::size_t>(a.ncols), 0.0));
  for (index_t r = 0; r < a.nrows; ++r) {
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
      d[r][a.colids[i]] = a.vals[i];
    }
  }
  return d;
}

// Structural comparison: the CSR must hold exactly the nonzero cells of the
// dense mirror, except entries the op keeps structurally at value zero —
// those we skip by comparing through a presence set from the CSR side.
void expect_matches_dense(const CsrMatrix& sparse, const Dense& dense) {
  ASSERT_TRUE(sparse.valid());
  const Dense got = to_dense(sparse);
  for (std::size_t r = 0; r < dense.size(); ++r) {
    for (std::size_t c = 0; c < dense[r].size(); ++c) {
      EXPECT_DOUBLE_EQ(got[r][c], dense[r][c]) << "(" << r << "," << c << ")";
    }
  }
}

class OpsRandom : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    a_ = testutil::exact_er(60, 45, 4.0, GetParam());
    b_ = testutil::exact_er(60, 45, 5.0, GetParam() + 100);
  }
  CsrMatrix a_, b_;
};

TEST_P(OpsRandom, Hadamard) {
  const Dense da = to_dense(a_), db = to_dense(b_);
  Dense expect(da.size(), std::vector<value_t>(da[0].size(), 0.0));
  for (std::size_t r = 0; r < da.size(); ++r) {
    for (std::size_t c = 0; c < da[r].size(); ++c) {
      expect[r][c] = da[r][c] * db[r][c];
    }
  }
  expect_matches_dense(hadamard(a_, b_), expect);
}

TEST_P(OpsRandom, AddWithCoefficients) {
  const Dense da = to_dense(a_), db = to_dense(b_);
  Dense expect(da.size(), std::vector<value_t>(da[0].size(), 0.0));
  for (std::size_t r = 0; r < da.size(); ++r) {
    for (std::size_t c = 0; c < da[r].size(); ++c) {
      expect[r][c] = 2.0 * da[r][c] - 3.0 * db[r][c];
    }
  }
  expect_matches_dense(add(a_, b_, 2.0, -3.0), expect);
}

TEST_P(OpsRandom, AddIsCommutativeInPatternAndValue) {
  EXPECT_TRUE(equal_exact(add(a_, b_), add(b_, a_)));
}

TEST_P(OpsRandom, TrilPlusDiagPlusTriuIsIdentityDecomposition) {
  const CsrMatrix square = testutil::exact_er(50, 50, 5.0, GetParam() + 7);
  const CsrMatrix lower = tril(square);
  const CsrMatrix upper = triu(square);
  const CsrMatrix diag = hadamard(square, CsrMatrix::identity(50));
  const CsrMatrix sum = add(add(lower, upper), diag);
  // Same dense content as the original (structural zeros may differ).
  expect_matches_dense(sum, to_dense(square));
}

TEST_P(OpsRandom, PruneThenSumMatchesDenseFilter) {
  const Dense da = to_dense(a_);
  Dense expect(da.size(), std::vector<value_t>(da[0].size(), 0.0));
  for (std::size_t r = 0; r < da.size(); ++r) {
    for (std::size_t c = 0; c < da[r].size(); ++c) {
      if (std::abs(da[r][c]) >= 3.0) expect[r][c] = da[r][c];
    }
  }
  expect_matches_dense(prune(a_, 3.0), expect);
}

TEST_P(OpsRandom, SpmvMatchesDense) {
  std::vector<value_t> x(static_cast<std::size_t>(a_.ncols));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<value_t>((i % 7) + 1);
  }
  const Dense da = to_dense(a_);
  const std::vector<value_t> y = spmv(a_, x);
  for (index_t r = 0; r < a_.nrows; ++r) {
    value_t expect = 0;
    for (index_t c = 0; c < a_.ncols; ++c) expect += da[r][c] * x[c];
    EXPECT_DOUBLE_EQ(y[r], expect) << "row " << r;
  }
}

TEST_P(OpsRandom, TransposeInvolution) {
  EXPECT_TRUE(equal_exact(transpose(transpose(a_)), a_));
}

TEST_P(OpsRandom, TransposeSwapsRowColSums) {
  const std::vector<value_t> rs = row_sums(a_);
  const std::vector<value_t> cs_t = col_sums(transpose(a_));
  ASSERT_EQ(rs.size(), cs_t.size());
  for (std::size_t i = 0; i < rs.size(); ++i) {
    EXPECT_DOUBLE_EQ(rs[i], cs_t[i]);
  }
}

TEST_P(OpsRandom, KeepTopKNeverGrowsRows) {
  for (const index_t k : {1, 2, 5}) {
    const CsrMatrix kept = keep_top_k_per_row(a_, k);
    for (index_t r = 0; r < a_.nrows; ++r) {
      EXPECT_LE(kept.row_nnz(r), std::min<nnz_t>(k, a_.row_nnz(r)));
      EXPECT_LE(kept.row_nnz(r), k);
    }
    // Kept values dominate dropped ones: the smallest kept magnitude is >=
    // the largest dropped magnitude per row.
    const CsrMatrix dropped = add(a_, kept, 1.0, -1.0);
    for (index_t r = 0; r < a_.nrows; ++r) {
      value_t min_kept = 1e300;
      for (const value_t v : kept.row_vals(r)) {
        min_kept = std::min(min_kept, std::abs(v));
      }
      for (nnz_t i = dropped.rowptr[r];
           i < dropped.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
        if (dropped.vals[i] != 0.0) {
          EXPECT_LE(std::abs(dropped.vals[i]), min_kept) << "row " << r;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpsRandom, ::testing::Range<std::uint64_t>(1, 6));

}  // namespace
}  // namespace pbs::mtx
