// Cross-validation of the semiring-generalized PB pipeline and the
// unified (algorithm × semiring) registry.
//
// pb_spgemm<S> shares no accumulation machinery with spgemm_semiring<S>
// (outer-product expand/sort/compress vs row-wise dense accumulator), so
// agreement over random ER/RMAT inputs for every built-in semiring is a
// strong property check.  Values are small integers (see test_util.hpp),
// so plus_times sums are exact in any accumulation order; min/max/bool
// semirings are order-independent by construction.
#include <gtest/gtest.h>

#include <string>

#include "matrix/mstats.hpp"
#include "matrix/ops.hpp"
#include "pb/pb_spgemm.hpp"
#include "spgemm/registry.hpp"
#include "spgemm/semiring.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

using testutil::from_triplets;

// ---- pb_spgemm<S> vs spgemm_semiring<S> vs reference over random inputs --

struct SemiringCase {
  const char* semiring;
  const char* family;  // "er" or "rmat"
  std::uint64_t seed;
};

void PrintTo(const SemiringCase& c, std::ostream* os) {
  *os << c.semiring << "_" << c.family << "_" << c.seed;
}

mtx::CsrMatrix build_input(const SemiringCase& c) {
  return std::string(c.family) == "er" ? testutil::exact_er(300, 300, 6.0, c.seed)
                                       : testutil::exact_rmat(9, 6.0, c.seed);
}

template <typename S>
void expect_pb_matches_fallback(const mtx::CsrMatrix& a) {
  const SpGemmProblem p = SpGemmProblem::square(a);
  const mtx::CsrMatrix expected = spgemm_semiring<S>(a, a);
  const pb::PbResult r = pb::pb_spgemm<S>(p.a_csc, p.b_csr);
  ASSERT_TRUE(r.c.valid());
  EXPECT_TRUE(equal_exact(r.c, expected))
      << "pb_spgemm<" << S::name << "> diverges from spgemm_semiring";
  EXPECT_EQ(r.stats.nnz_c, expected.nnz());
}

class PbSemiring : public ::testing::TestWithParam<SemiringCase> {};

TEST_P(PbSemiring, MatchesDenseAccumulatorFallback) {
  const SemiringCase& c = GetParam();
  const mtx::CsrMatrix a = build_input(c);
  dispatch_semiring(c.semiring, [&]<typename S>() {
    expect_pb_matches_fallback<S>(a);
  });
}

TEST_P(PbSemiring, HeapMatchesDenseAccumulatorFallback) {
  const SemiringCase& c = GetParam();
  const mtx::CsrMatrix a = build_input(c);
  const SpGemmProblem p = SpGemmProblem::square(a);
  dispatch_semiring(c.semiring, [&]<typename S>() {
    EXPECT_TRUE(equal_exact(heap_spgemm_semiring<S>(p),
                            spgemm_semiring<S>(a, a)))
        << "heap_spgemm_semiring<" << S::name << "> diverges";
  });
}

std::vector<SemiringCase> make_cases() {
  std::vector<SemiringCase> cases;
  for (const std::string& s : semiring_names()) {
    for (const char* family : {"er", "rmat"}) {
      for (std::uint64_t seed : {21ull, 22ull}) {
        cases.push_back({s.c_str(), family, seed});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, PbSemiring, ::testing::ValuesIn(make_cases()));

TEST(PbSemiring, PlusTimesMatchesReference) {
  const mtx::CsrMatrix a = testutil::exact_er(250, 250, 5.0, 31);
  const SpGemmProblem p = SpGemmProblem::square(a);
  EXPECT_TRUE(equal_exact(pb::pb_spgemm<PlusTimes>(p.a_csc, p.b_csr).c,
                          reference_spgemm(p)));
}

TEST(PbSemiring, PatternIsSemiringAndAlgorithmIndependent) {
  const mtx::CsrMatrix a = testutil::exact_rmat(8, 5.0, 33);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const mtx::CsrMatrix base = pb::pb_spgemm<PlusTimes>(p.a_csc, p.b_csr).c;
  for (const std::string& s : semiring_names()) {
    const mtx::CsrMatrix c = dispatch_semiring(
        s, [&]<typename S>() { return pb::pb_spgemm<S>(p.a_csc, p.b_csr).c; });
    EXPECT_EQ(base.rowptr, c.rowptr) << s;
    EXPECT_EQ(base.colids, c.colids) << s;
  }
}

// ---- exact cancellation: zero-valued results stay structural -------------

TEST(PbSemiringCancellation, PlusTimesExactCancellationKeptStructurally) {
  // A = [1 -1], B = [1; 1]: C(0,0) = 1·1 + (-1)·1 = 0 exactly — the entry
  // must stay stored with value 0, matching spgemm_semiring and reference.
  const mtx::CsrMatrix a = from_triplets(1, 2, {{0, 0, 1.0}, {0, 1, -1.0}});
  const mtx::CsrMatrix b = from_triplets(2, 1, {{0, 0, 1.0}, {1, 0, 1.0}});
  const SpGemmProblem p = SpGemmProblem::multiply(a, b);
  const mtx::CsrMatrix c = pb::pb_spgemm<PlusTimes>(p.a_csc, p.b_csr).c;
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.colids[0], 0);
  EXPECT_EQ(c.vals[0], 0.0);
  EXPECT_TRUE(equal_exact(c, spgemm_semiring<PlusTimes>(a, b)));
  EXPECT_TRUE(equal_exact(c, reference_spgemm(p)));
}

TEST(PbSemiringCancellation, RandomCancellationHeavyInputs) {
  // ±1-valued random matrices produce many exact zero accumulations; the
  // pattern (and the zero values) must agree with the fallback kernel.
  for (std::uint64_t seed : {41ull, 42ull, 43ull}) {
    mtx::CooMatrix coo = mtx::generate_er(160, 160, 6.0, seed);
    for (nnz_t i = 0; i < coo.nnz(); ++i) {
      // Position-hashed ±1 (deterministic, order-independent): term signs
      // within one output entry are effectively independent coin flips, so
      // two-term entries cancel about half the time.
      const auto h =
          static_cast<std::uint64_t>(coo.row[i]) * 0x9E3779B97F4A7C15ull +
          static_cast<std::uint64_t>(coo.col[i]) * 0xC2B2AE3D27D4EB4Full;
      coo.val[i] = ((h >> 32) & 1) != 0 ? 1.0 : -1.0;
    }
    const mtx::CsrMatrix a = mtx::coo_to_csr(coo);
    const SpGemmProblem p = SpGemmProblem::square(a);
    const mtx::CsrMatrix c = pb::pb_spgemm<PlusTimes>(p.a_csc, p.b_csr).c;
    const mtx::CsrMatrix expected = spgemm_semiring<PlusTimes>(a, a);
    ASSERT_TRUE(equal_exact(c, expected)) << "seed " << seed;
    bool has_stored_zero = false;
    for (const value_t v : c.vals) has_stored_zero |= (v == 0.0);
    EXPECT_TRUE(has_stored_zero) << "cancellation input produced no zeros";
    // Structural nnz equals the symbolic count — nothing was dropped.
    EXPECT_EQ(c.nnz(), mtx::symbolic_nnz(a, a));
  }
}

TEST(PbSemiringCancellation, BoolOrAndZeroOperandsStayStructural) {
  // A stored 0.0 is bool-false: 0 ∧ 1 = 0 = BoolOrAnd::zero(), yet the
  // output entry must stay stored (structure is value-independent).
  const mtx::CsrMatrix a = from_triplets(1, 1, {{0, 0, 0.0}});
  const mtx::CsrMatrix b = from_triplets(1, 1, {{0, 0, 1.0}});
  const SpGemmProblem p = SpGemmProblem::multiply(a, b);
  const mtx::CsrMatrix c = pb::pb_spgemm<BoolOrAnd>(p.a_csc, p.b_csr).c;
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.vals[0], 0.0);
  EXPECT_TRUE(equal_exact(c, spgemm_semiring<BoolOrAnd>(a, b)));
}

// ---- named dispatch and registry -----------------------------------------

TEST(PbSemiringDispatch, NamedPipelineMatchesTemplate) {
  const mtx::CsrMatrix a = testutil::exact_er(120, 120, 4.0, 51);
  const SpGemmProblem p = SpGemmProblem::square(a);
  pb::PbWorkspace ws;
  for (const std::string& s : semiring_names()) {
    const pb::PbResult named =
        pb::pb_spgemm_named(s, p.a_csc, p.b_csr, pb::PbConfig{}, ws);
    const mtx::CsrMatrix expected = dispatch_semiring(
        s, [&]<typename S>() { return pb::pb_spgemm<S>(p.a_csc, p.b_csr).c; });
    EXPECT_TRUE(equal_exact(named.c, expected)) << s;
  }
  EXPECT_THROW(pb::pb_spgemm_named("nope", p.a_csc, p.b_csr, pb::PbConfig{}, ws),
               std::invalid_argument);
}

TEST(RegistrySemiring, PbEntryRunsThePbPipeline) {
  // `pb` × min_plus through the registry equals the template call — the
  // registry runs the actual propagation-blocking pipeline, not the
  // row-wise fallback pretending to be it (they agree on values, so the
  // check is that the function resolves and matches; the distinct-machinery
  // guarantee is the PbSemiring sweep above).
  const mtx::CsrMatrix a = testutil::exact_er(150, 150, 5.0, 52);
  const SpGemmProblem p = SpGemmProblem::square(a);
  for (const std::string& s : semiring_names()) {
    const mtx::CsrMatrix via_registry = semiring_algorithm("pb", s)(p);
    const mtx::CsrMatrix expected = dispatch_semiring(
        s, [&]<typename S>() { return pb::pb_spgemm<S>(p.a_csc, p.b_csr).c; });
    EXPECT_TRUE(equal_exact(via_registry, expected)) << s;
  }
}

TEST(RegistrySemiring, EveryAdvertisedPairResolvesAndAgrees) {
  const mtx::CsrMatrix a = testutil::exact_er(100, 100, 4.0, 53);
  const SpGemmProblem p = SpGemmProblem::square(a);
  for (const AlgoInfo& info : algorithms()) {
    for (const std::string& s : info.semirings) {
      const mtx::CsrMatrix c = semiring_algorithm(info.name, s)(p);
      const mtx::CsrMatrix expected = spgemm_semiring_named(s, a, a);
      EXPECT_TRUE(equal_exact(c, expected)) << info.name << " x " << s;
    }
  }
}

TEST(RegistrySemiring, UnsupportedPairFailsWithCombinationList) {
  try {
    semiring_algorithm("hashvec", "min_plus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("hashvec"), std::string::npos);
    EXPECT_NE(msg.find("plus_times-only"), std::string::npos);
    // The error lists the full support matrix.
    EXPECT_NE(msg.find("pb: plus_times min_plus max_min bool_or_and"),
              std::string::npos);
  }
}

TEST(RegistrySemiring, UnknownNamesFail) {
  EXPECT_THROW(semiring_algorithm("pb", "tropical"), std::invalid_argument);
  EXPECT_THROW(semiring_algorithm("nope", "plus_times"),
               std::invalid_argument);
  try {
    semiring_algorithm("pb", "tropical");
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("supported (algorithm, semiring)"),
              std::string::npos);
  }
}

TEST(RegistrySemiring, PlusTimesRoutesToRegisteredNumericKernel) {
  // The plus_times column must be the same fn the paper's figures measure.
  const mtx::CsrMatrix a = testutil::exact_er(80, 80, 4.0, 54);
  const SpGemmProblem p = SpGemmProblem::square(a);
  for (const AlgoInfo& info : algorithms()) {
    EXPECT_TRUE(equal_exact(semiring_algorithm(info.name, "plus_times")(p),
                            info.fn(p)))
        << info.name;
  }
}

}  // namespace
}  // namespace pbs
