// Property-based cross-validation: every algorithm must produce the exact
// same matrix as the serial reference over a randomized family of inputs.
//
// Values are small integers (see test_util.hpp), so floating-point sums are
// exact in any accumulation order and equality can be bitwise.
#include <gtest/gtest.h>

#include "matrix/mstats.hpp"
#include "spgemm/registry.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

struct PropertyCase {
  const char* algo;
  const char* family;  // "er", "rmat", "banded", "rect"
  int size_class;      // 0 = small, 1 = medium
  std::uint64_t seed;
};

void PrintTo(const PropertyCase& p, std::ostream* os) {
  *os << p.algo << "_" << p.family << "_s" << p.size_class << "_" << p.seed;
}

mtx::CsrMatrix build_input(const PropertyCase& p) {
  const index_t n = p.size_class == 0 ? 200 : 1200;
  if (std::string(p.family) == "er") {
    return testutil::exact_er(n, n, 6.0, p.seed);
  }
  if (std::string(p.family) == "rmat") {
    return testutil::exact_rmat(p.size_class == 0 ? 8 : 10, 6.0, p.seed);
  }
  // banded: high compression factor regime
  mtx::CooMatrix coo = mtx::generate_banded(n, 8.0, 6, p.seed);
  testutil::make_values_exact(coo);
  return mtx::coo_to_csr(coo);
}

class SpGemmProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SpGemmProperty, SquareMatchesReference) {
  const PropertyCase& p = GetParam();
  const mtx::CsrMatrix a = build_input(p);
  const SpGemmProblem problem = SpGemmProblem::square(a);
  const mtx::CsrMatrix expected = reference_spgemm(problem);
  const mtx::CsrMatrix actual = algorithm(p.algo).fn(problem);
  ASSERT_TRUE(actual.valid());
  EXPECT_TRUE(equal_exact(actual, expected))
      << p.algo << " diverges from reference on " << p.family;
}

TEST_P(SpGemmProperty, OutputNnzMatchesSymbolic) {
  const PropertyCase& p = GetParam();
  const mtx::CsrMatrix a = build_input(p);
  const SpGemmProblem problem = SpGemmProblem::square(a);
  const mtx::CsrMatrix c = algorithm(p.algo).fn(problem);
  EXPECT_EQ(c.nnz(), mtx::symbolic_nnz(a, a));
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  for (const char* algo :
       {"pb", "heap", "hash", "hashvec", "spa", "esc", "outer_heap"}) {
    for (const char* family : {"er", "rmat", "banded"}) {
      for (int size_class : {0, 1}) {
        // outer_heap is O(k · nnz): keep it on small inputs.
        if (std::string(algo) == "outer_heap" && size_class > 0) continue;
        for (std::uint64_t seed : {1ull, 2ull}) {
          cases.push_back({algo, family, size_class, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpGemmProperty,
                         ::testing::ValuesIn(make_cases()));

// ---- algebraic properties, checked through the PB algorithm ----

TEST(SpGemmAlgebra, AssociativityOnExactValues) {
  const mtx::CsrMatrix a = testutil::exact_er(150, 150, 4.0, 5);
  const mtx::CsrMatrix b = testutil::exact_er(150, 150, 4.0, 6);
  const mtx::CsrMatrix c = testutil::exact_er(150, 150, 4.0, 7);
  const auto& pb = algorithm("pb").fn;
  const auto ab_c = pb(SpGemmProblem::multiply(
      pb(SpGemmProblem::multiply(a, b)), c));
  const auto a_bc = pb(SpGemmProblem::multiply(
      a, pb(SpGemmProblem::multiply(b, c))));
  EXPECT_TRUE(equal_exact(ab_c, a_bc));
}

TEST(SpGemmAlgebra, TransposeOfProduct) {
  // (AB)ᵀ == Bᵀ Aᵀ
  const mtx::CsrMatrix a = testutil::exact_er(120, 80, 4.0, 8);
  const mtx::CsrMatrix b = testutil::exact_er(80, 100, 4.0, 9);
  const auto& pb = algorithm("pb").fn;
  const auto abt = mtx::transpose(pb(SpGemmProblem::multiply(a, b)));
  const auto btat = pb(SpGemmProblem::multiply(mtx::transpose(b), mtx::transpose(a)));
  EXPECT_TRUE(equal_exact(abt, btat));
}

TEST(SpGemmAlgebra, DiagonalScalingCommutesThroughProduct) {
  // (D A) B == D (A B) for diagonal D.
  const mtx::CsrMatrix a = testutil::exact_er(100, 100, 4.0, 10);
  const mtx::CsrMatrix b = testutil::exact_er(100, 100, 4.0, 11);
  std::vector<value_t> dvals(100);
  for (std::size_t i = 0; i < 100; ++i) dvals[i] = static_cast<value_t>(1 + i % 4);
  const auto d = mtx::CsrMatrix::diagonal(dvals);
  const auto& pb = algorithm("pb").fn;
  const auto lhs = pb(SpGemmProblem::multiply(pb(SpGemmProblem::multiply(d, a)), b));
  const auto rhs = pb(SpGemmProblem::multiply(d, pb(SpGemmProblem::multiply(a, b))));
  EXPECT_TRUE(equal_exact(lhs, rhs));
}

TEST(SpGemmAlgebra, FlopConservation) {
  // Every algorithm's output nnz is bounded by flop and by n².
  const mtx::CsrMatrix a = testutil::exact_rmat(9, 8.0, 12);
  const auto problem = SpGemmProblem::square(a);
  const nnz_t flop = mtx::count_flops(a, a);
  for (const char* algo : {"pb", "heap", "hash"}) {
    const auto c = algorithm(algo).fn(problem);
    EXPECT_LE(c.nnz(), flop);
    EXPECT_LE(c.nnz(), static_cast<nnz_t>(a.nrows) * a.nrows);
    EXPECT_GE(static_cast<double>(flop) / static_cast<double>(c.nnz()), 1.0);
  }
}

}  // namespace
}  // namespace pbs
