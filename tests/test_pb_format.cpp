// The narrow-key SoA tuple format (pb/tuple.hpp): plan-level format
// selection, bit-identity of the narrow and wide paths across semirings
// and bin policies, and the format boundaries — col_bits at the 32-bit
// fit edge, single-row bins, empty bins, the wide fallback, and exact
// cancellation.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "pb/binning.hpp"
#include "pb/expand.hpp"
#include "pb/output.hpp"
#include "pb/pb_spgemm.hpp"
#include "pb/plan.hpp"
#include "pb/sort_compress.hpp"
#include "spgemm/semiring.hpp"
#include "test_util.hpp"

namespace pbs::pb {
namespace {

// Runs the full pipeline under both formats and requires bitwise-equal
// CSR.  Returns the narrow result for further checks.  Inputs must carry
// exact-integer values (testutil) so sums are order-independent.
mtx::CsrMatrix expect_formats_identical(const mtx::CscMatrix& a,
                                        const mtx::CsrMatrix& b,
                                        PbConfig cfg,
                                        const std::string& semiring) {
  PbWorkspace wide_ws, narrow_ws;
  cfg.validate = true;
  cfg.format = FormatPolicy::kWide;
  const PbResult wide = pb_spgemm_named(semiring, a, b, cfg, wide_ws);
  EXPECT_EQ(wide.stats.format, TupleFormat::kWide);
  cfg.format = FormatPolicy::kNarrow;
  const PbResult narrow = pb_spgemm_named(semiring, a, b, cfg, narrow_ws);
  EXPECT_TRUE(mtx::equal_exact(wide.c, narrow.c)) << semiring;
  return narrow.c;
}

TEST(PbFormat, NarrowVsWideBitIdenticalAcrossSemirings) {
  const mtx::CsrMatrix m = testutil::exact_er(400, 400, 6.0, 41);
  const mtx::CscMatrix a = mtx::csr_to_csc(m);
  for (const std::string& s : semiring_names()) {
    for (const BinPolicy policy :
         {BinPolicy::kRange, BinPolicy::kModulo, BinPolicy::kAdaptive}) {
      PbConfig cfg;
      cfg.policy = policy;
      cfg.nbins = 8;
      (void)expect_formats_identical(a, m, cfg, s);
    }
  }
}

TEST(PbFormat, AutoSelectsNarrowWhenBitsFitAndReportsBytes) {
  const mtx::CsrMatrix m = testutil::exact_er(500, 500, 5.0, 42);
  const mtx::CscMatrix a = mtx::csr_to_csc(m);
  const PbPlan plan = pb_plan_build(a, m, PbConfig{});
  // 500 rows / 500 cols: col_bits = 9 and any bin width fits 32 bits.
  EXPECT_EQ(plan.sym.format, TupleFormat::kNarrow);
  EXPECT_EQ(plan.sym.col_bits, 9);

  PbWorkspace ws;
  const PbResult r = pb_execute<PlusTimes>(a, m, plan, ws);
  EXPECT_EQ(r.stats.format, TupleFormat::kNarrow);
  EXPECT_EQ(r.stats.tuple_bytes(), 12.0);
  // The byte models must charge the narrow stream: the sort streams
  // 12 B/tuple, not 16.
  EXPECT_EQ(r.stats.sort.bytes, 12.0 * static_cast<double>(r.stats.flop));
}

TEST(PbFormat, ForcedWideStaysWide) {
  const mtx::CsrMatrix m = testutil::exact_er(300, 300, 4.0, 43);
  const mtx::CscMatrix a = mtx::csr_to_csc(m);
  PbConfig cfg;
  cfg.format = FormatPolicy::kWide;
  const PbPlan plan = pb_plan_build(a, m, cfg);
  EXPECT_EQ(plan.sym.format, TupleFormat::kWide);

  PbWorkspace ws;
  const PbResult r = pb_execute<PlusTimes>(a, m, plan, ws);
  EXPECT_EQ(r.stats.format, TupleFormat::kWide);
  EXPECT_EQ(r.stats.tuple_bytes(), 16.0);
}

TEST(PbFormat, ColBitsAtTheFitBoundary) {
  // B has 2^30 columns -> col_bits = 30.  With 4 rows in one bin the row
  // needs 2 bits: 32 exactly, the last geometry that still packs narrow.
  const index_t wide_cols = index_t{1} << 30;
  const mtx::CsrMatrix a_csr = testutil::from_triplets(
      4, 4, {{0, 0, 2.0}, {1, 1, 3.0}, {2, 2, 5.0}, {3, 3, 7.0}});
  const mtx::CsrMatrix b = testutil::from_triplets(
      4, wide_cols,
      {{0, 0, 1.0},
       {0, wide_cols - 1, 4.0},
       {1, 12345, 6.0},
       {2, wide_cols - 2, 8.0},
       {3, 0, 9.0}});
  const mtx::CscMatrix a = mtx::csr_to_csc(a_csr);

  PbConfig cfg;
  cfg.nbins = 1;
  const PbPlan plan = pb_plan_build(a, b, cfg);
  ASSERT_EQ(plan.sym.col_bits, 30);
  ASSERT_EQ(plan.sym.layout.local_row_bits(4), 2);
  EXPECT_EQ(plan.sym.format, TupleFormat::kNarrow);

  const mtx::CsrMatrix c = expect_formats_identical(a, b, cfg, "plus_times");
  const mtx::CsrMatrix expected = testutil::from_triplets(
      4, wide_cols,
      {{0, 0, 2.0},
       {0, wide_cols - 1, 8.0},
       {1, 12345, 18.0},
       {2, wide_cols - 2, 40.0},
       {3, 0, 63.0}});
  EXPECT_TRUE(mtx::equal_exact(c, expected));
}

TEST(PbFormat, FallsBackToWideWhenBitsDontFit) {
  // Same 2^30 columns but 8 rows in one bin: 3 + 30 = 33 bits -> the
  // narrow request cannot be honored and symbolic falls back to wide.
  const index_t wide_cols = index_t{1} << 30;
  const mtx::CsrMatrix a_csr = testutil::from_triplets(
      8, 4, {{0, 0, 2.0}, {5, 1, 3.0}, {7, 3, 7.0}});
  const mtx::CsrMatrix b = testutil::from_triplets(
      4, wide_cols, {{0, 7, 1.0}, {1, wide_cols - 1, 4.0}, {3, 99, 6.0}});
  const mtx::CscMatrix a = mtx::csr_to_csc(a_csr);

  PbConfig cfg;
  cfg.nbins = 1;
  cfg.format = FormatPolicy::kNarrow;  // request is a preference, not a demand
  const PbPlan plan = pb_plan_build(a, b, cfg);
  EXPECT_EQ(plan.sym.format, TupleFormat::kWide);

  PbWorkspace ws;
  const PbResult r = pb_execute<PlusTimes>(a, b, plan, ws);
  const mtx::CsrMatrix expected = testutil::from_triplets(
      8, wide_cols,
      {{0, 7, 2.0}, {5, wide_cols - 1, 12.0}, {7, 99, 42.0}});
  EXPECT_TRUE(mtx::equal_exact(r.c, expected));
}

TEST(PbFormat, SingleRowBinsAndEmptyBins) {
  // One bin per row (range shift 0, local row always 0) and a matrix with
  // empty rows, so some bins receive nothing.
  mtx::CooMatrix acoo(16, 16);
  acoo.add(0, 3, 2.0);
  acoo.add(7, 7, 3.0);
  acoo.add(15, 0, 5.0);
  acoo.canonicalize();
  const mtx::CsrMatrix m = mtx::coo_to_csr(acoo);
  const mtx::CscMatrix a = mtx::csr_to_csc(m);

  PbConfig cfg;
  cfg.nbins = 16;
  const PbPlan plan = pb_plan_build(a, m, cfg);
  EXPECT_EQ(plan.sym.format, TupleFormat::kNarrow);
  EXPECT_EQ(plan.sym.layout.local_row_bits(16), 0);

  for (const std::string& s : semiring_names()) {
    (void)expect_formats_identical(a, m, cfg, s);
  }
}

TEST(PbFormat, ExactCancellationKeepsStructuralZeros) {
  // C(0,0) = 1*1 + (-1)*1 = 0: the entry must survive structurally in
  // both formats (the library's exact-cancellation convention).
  const mtx::CsrMatrix a_csr =
      testutil::from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, -1.0}});
  const mtx::CsrMatrix b =
      testutil::from_triplets(2, 2, {{0, 0, 1.0}, {1, 0, 1.0}});
  const mtx::CscMatrix a = mtx::csr_to_csc(a_csr);

  const mtx::CsrMatrix c =
      expect_formats_identical(a, b, PbConfig{}, "plus_times");
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.colids[0], 0);
  EXPECT_EQ(c.vals[0], 0.0);
}

TEST(PbFormat, FuzzAcrossShapesPoliciesAndSemirings) {
  mtx::SplitMix64 rng(77);
  for (int round = 0; round < 24; ++round) {
    const auto n = static_cast<index_t>(16 + rng.next_below(120));
    const auto k = static_cast<index_t>(16 + rng.next_below(120));
    const auto mcols = static_cast<index_t>(16 + rng.next_below(120));
    const mtx::CsrMatrix a_csr =
        testutil::exact_er(n, k, 3.0, 500 + round);
    const mtx::CsrMatrix b = testutil::exact_er(k, mcols, 3.0, 900 + round);
    const mtx::CscMatrix a = mtx::csr_to_csc(a_csr);

    PbConfig cfg;
    const int nbins_choices[] = {0, 1, 3, 17, 64};
    cfg.nbins = nbins_choices[rng.next_below(5)];
    const BinPolicy policies[] = {BinPolicy::kRange, BinPolicy::kModulo,
                                  BinPolicy::kAdaptive};
    cfg.policy = policies[rng.next_below(3)];
    cfg.local_bin_bytes = rng.next_below(2) == 0 ? 16 : 512;
    const std::string semiring =
        semiring_names()[rng.next_below(semiring_names().size())];
    (void)expect_formats_identical(a, b, cfg, semiring);
  }
}

TEST(PbFormat, LocalGlobalRowRoundTripsAcrossPolicies) {
  const index_t nrows = 1000;
  const BinLayout range = make_range_layout(nrows, 8);
  const BinLayout modulo = make_modulo_layout(nrows, 8);
  std::vector<nnz_t> rf(static_cast<std::size_t>(nrows), 1);
  rf[0] = 500;  // force uneven adaptive bins
  const BinLayout adaptive = make_adaptive_layout(rf, 8);

  for (const BinLayout* layout : {&range, &modulo, &adaptive}) {
    for (index_t row = 0; row < nrows; ++row) {
      const int bin = layout->binid(row);
      const index_t local = layout->local_row(bin, row);
      ASSERT_GE(local, 0);
      ASSERT_LT(local, index_t{1} << layout->local_row_bits(nrows));
      ASSERT_EQ(layout->global_row(bin, local), row)
          << to_string(layout->policy) << " row " << row;
    }
  }
}

TEST(PbFormat, NarrowKeyCodecRoundTripsAndOrdersRowMajor) {
  for (const int col_bits : {0, 1, 9, 20, 30}) {
    const index_t max_col = col_bits > 0 ? (index_t{1} << col_bits) - 1 : 0;
    // Whatever row space remains of the 32-bit key (index_t caps it at 31).
    const int row_bits = std::min(31, 32 - col_bits);
    const auto max_local = static_cast<index_t>(
        (std::uint32_t{1} << row_bits) - 1u);
    for (const index_t local : {index_t{0}, max_local / 2, max_local}) {
      for (const index_t col : {index_t{0}, max_col / 2, max_col}) {
        const narrow_key_t key = make_narrow_key(local, col, col_bits);
        ASSERT_EQ(narrow_key_local_row(key, col_bits), local);
        ASSERT_EQ(narrow_key_col(key, col_bits), col);
      }
    }
    // Row-major: a larger local row beats any column.
    if (col_bits > 0 && max_local > 0) {
      EXPECT_LT(make_narrow_key(0, max_col, col_bits),
                make_narrow_key(1, 0, col_bits));
    }
  }
}

TEST(PbFormat, WideKvSortBitIdenticalToReferenceAcrossPolicies) {
  // The wide path's per-bin sort now runs radix_sort_lsd_kv over a
  // deinterleaved u64/f64 SoA pair (8 B histogram reads instead of 16 B
  // record streams).  Both sorts are stable, so on exact-integer inputs
  // the forced-wide pipeline must stay bit-identical to the gold standard
  // for every bin policy and semiring.
  const mtx::CsrMatrix m = testutil::exact_er(350, 350, 6.0, 61);
  const mtx::CscMatrix a = mtx::csr_to_csc(m);
  const SpGemmProblem p = SpGemmProblem::square(m);
  for (const std::string& s : semiring_names()) {
    const mtx::CsrMatrix expected = dispatch_semiring(
        s, [&]<typename S>() { return reference_spgemm_semiring<S>(p); });
    for (const BinPolicy policy :
         {BinPolicy::kRange, BinPolicy::kModulo, BinPolicy::kAdaptive}) {
      PbConfig cfg;
      cfg.policy = policy;
      cfg.format = FormatPolicy::kWide;
      cfg.validate = true;
      PbWorkspace ws;
      const PbResult r = pb_spgemm_named(s, a, m, cfg, ws);
      EXPECT_EQ(r.stats.format, TupleFormat::kWide);
      EXPECT_TRUE(mtx::equal_exact(r.c, expected))
          << s << " policy=" << static_cast<int>(policy);
    }
  }
}

TEST(PbFormat, WideKvSortWithoutWorkspaceScratch) {
  // The no-workspace fallback allocates per-thread scratch locally; the
  // SoA carve must fit it the same way.
  const mtx::CsrMatrix m = testutil::exact_er(300, 300, 5.0, 62);
  const mtx::CscMatrix a = mtx::csr_to_csc(m);
  const SymbolicResult sym = [&] {
    PbConfig cfg;
    cfg.format = FormatPolicy::kWide;
    return pb_symbolic(a, m, cfg);
  }();
  std::vector<Tuple> buf(static_cast<std::size_t>(sym.bin_offsets.back()));
  PbConfig cfg;
  cfg.format = FormatPolicy::kWide;
  pb_expand<PlusTimes>(a, m, sym, cfg, buf.data());
  const SortCompressResult sc = pb_sort_compress<PlusTimes>(
      buf.data(), sym.bin_offsets, sym.bin_fill, sym.layout.nbins, nullptr);
  const mtx::CsrMatrix c =
      pb_build_csr(buf.data(), sym.bin_offsets, sc.merged, a.nrows, m.ncols);
  EXPECT_TRUE(
      mtx::equal_exact(c, reference_spgemm(SpGemmProblem::square(m))));
}

TEST(PbFormat, PredictionMatchesSymbolicForRangePolicy) {
  for (const auto& [nrows, ncols, density] :
       {std::tuple{200, 200, 4.0}, std::tuple{2000, 2000, 8.0}}) {
    const mtx::CsrMatrix m = testutil::exact_er(
        static_cast<index_t>(nrows), static_cast<index_t>(ncols), density, 7);
    const mtx::CscMatrix a = mtx::csr_to_csc(m);
    for (const bool value_free : {false, true}) {
      PbConfig cfg;
      cfg.value_free = value_free;
      const SymbolicResult sym = pb_symbolic(a, m, cfg);
      EXPECT_EQ(sym.format,
                value_free ? TupleFormat::kKeyOnly : TupleFormat::kNarrow);
      EXPECT_EQ(predict_tuple_format(a.nrows, m.ncols, sym.flop, cfg),
                sym.format);
    }
  }
}

// ---- key-only (8 B) and narrow-f32 (8 B) formats -------------------------

// Runs bool_or_and under forced-wide and under `policy`, across both
// schedules, and requires bitwise-equal CSR everywhere.  Bit-identity is
// exact, not approximate: every surviving wide value is S::add/S::mul of
// nonzeros = exactly 1.0, which is exactly what the key-only convert
// synthesizes.
void expect_keyonly_matches_wide(const mtx::CscMatrix& a,
                                 const mtx::CsrMatrix& b, PbConfig cfg,
                                 FormatPolicy policy) {
  cfg.validate = true;
  cfg.schedule = PbSchedule::kBarrier;
  cfg.format = FormatPolicy::kWide;
  PbWorkspace wide_ws;
  const PbResult wide = pb_spgemm<BoolOrAnd>(a, b, cfg, wide_ws);
  EXPECT_EQ(wide.stats.format, TupleFormat::kWide);
  for (const PbSchedule sched : {PbSchedule::kBarrier, PbSchedule::kPipeline}) {
    PbConfig kcfg = cfg;
    kcfg.format = policy;
    kcfg.schedule = sched;
    PbWorkspace ws;
    const PbResult keyonly = pb_spgemm<BoolOrAnd>(a, b, kcfg, ws);
    EXPECT_EQ(keyonly.stats.format, TupleFormat::kKeyOnly)
        << to_string(policy) << " schedule " << to_string(sched);
    EXPECT_TRUE(mtx::equal_exact(wide.c, keyonly.c))
        << to_string(policy) << " schedule " << to_string(sched);
  }
}

TEST(PbFormatKeyOnly, BitIdenticalToWideAcrossPoliciesAndSchedules) {
  const mtx::CsrMatrix m = testutil::exact_er(400, 400, 6.0, 44);
  const mtx::CscMatrix a = mtx::csr_to_csc(m);
  for (const BinPolicy policy :
       {BinPolicy::kRange, BinPolicy::kModulo, BinPolicy::kAdaptive}) {
    for (const int nbins : {1, 8}) {
      PbConfig cfg;
      cfg.policy = policy;
      cfg.nbins = nbins;
      // Both the explicit request and auto (pb_spgemm<BoolOrAnd> injects
      // value_free) must land on key-only.
      expect_keyonly_matches_wide(a, m, cfg, FormatPolicy::kKeyOnly);
      expect_keyonly_matches_wide(a, m, cfg, FormatPolicy::kAuto);
    }
  }
}

TEST(PbFormatKeyOnly, AutoSelectsKeyOnlyAndChargesEightBytes) {
  const mtx::CsrMatrix m = testutil::exact_er(500, 500, 5.0, 45);
  const mtx::CscMatrix a = mtx::csr_to_csc(m);
  PbWorkspace ws;
  const PbResult r = pb_spgemm<BoolOrAnd>(a, m, PbConfig{}, ws);
  EXPECT_EQ(r.stats.format, TupleFormat::kKeyOnly);
  EXPECT_EQ(r.stats.tuple_bytes(), 8.0);
  // Eq. 4 accounting: the sort streams 8 B/tuple, not 12 or 16.
  EXPECT_EQ(r.stats.sort.bytes, 8.0 * static_cast<double>(r.stats.flop));
  // Same semiring through the named (DynSemiring-capable) entry point.
  PbWorkspace named_ws;
  const PbResult named =
      pb_spgemm_named("bool_or_and", a, m, PbConfig{}, named_ws);
  EXPECT_EQ(named.stats.format, TupleFormat::kKeyOnly);
  EXPECT_TRUE(mtx::equal_exact(r.c, named.c));
}

TEST(PbFormatKeyOnly, EngagesWhereNarrowCannotFit) {
  // 2^30 columns and 8 rows in one bin: 3 + 30 = 33 bits, past the narrow
  // fit — but the key-only stream carries the full 64-bit global key, so
  // value-free workloads still get the 8 B format at any geometry.
  const index_t wide_cols = index_t{1} << 30;
  const mtx::CsrMatrix a_csr = testutil::from_triplets(
      8, 4, {{0, 0, 2.0}, {5, 1, 3.0}, {7, 3, 7.0}});
  const mtx::CsrMatrix b = testutil::from_triplets(
      4, wide_cols, {{0, 7, 1.0}, {1, wide_cols - 1, 4.0}, {3, 99, 6.0}});
  const mtx::CscMatrix a = mtx::csr_to_csc(a_csr);

  PbConfig cfg;
  cfg.nbins = 1;
  cfg.value_free = true;
  const PbPlan plan = pb_plan_build(a, b, cfg);
  ASSERT_GT(plan.sym.layout.local_row_bits(8) + plan.sym.col_bits, 32);
  EXPECT_EQ(plan.sym.format, TupleFormat::kKeyOnly);

  expect_keyonly_matches_wide(a, b, cfg, FormatPolicy::kAuto);
}

TEST(PbFormatKeyOnly, RequestFallsBackForValuedSemirings) {
  // A key-only request for a semiring that carries values is illegal; the
  // library treats requests as preferences and falls back to the auto
  // choice (the CLI layers a strict error on top for explicit --format).
  const mtx::CsrMatrix m = testutil::exact_er(300, 300, 4.0, 46);
  const mtx::CscMatrix a = mtx::csr_to_csc(m);
  PbConfig cfg;
  cfg.format = FormatPolicy::kKeyOnly;
  PbWorkspace ws;
  const PbResult r = pb_spgemm<PlusTimes>(a, m, cfg, ws);
  EXPECT_EQ(r.stats.format, TupleFormat::kNarrow);
  EXPECT_TRUE(
      mtx::equal_exact(r.c, reference_spgemm(SpGemmProblem::square(m))));
}

TEST(PbFormatKeyOnly, ExactCancellationStaysStructurallyCorrect) {
  // Why dropping the value stream cannot break the exact-cancellation
  // convention: in a value-free semiring, add and mul of NONZERO operands
  // always yield the present-value (1 ∨ 1 = 1 ≠ 0), so no accumulation of
  // nonzeros can cancel to zero — every distinct key survives compress in
  // the valued formats too, and the patterns agree by construction.  The
  // only way a bool_or_and output can hold a zero is an explicit stored
  // 0.0 in an operand (bool-false), and symbolic downgrades key-only
  // whenever an operand stores a zero, so the value stream is retained
  // exactly when it can matter.
  const mtx::CsrMatrix a_csr = testutil::from_triplets(1, 1, {{0, 0, 0.0}});
  const mtx::CsrMatrix b = testutil::from_triplets(1, 1, {{0, 0, 1.0}});
  const mtx::CscMatrix a = mtx::csr_to_csc(a_csr);

  PbConfig cfg;
  cfg.value_free = true;  // asserted, yet the operand scan must override
  const PbPlan plan = pb_plan_build(a, b, cfg);
  EXPECT_NE(plan.sym.format, TupleFormat::kKeyOnly);

  PbWorkspace ws;
  const PbResult r = pb_spgemm<BoolOrAnd>(a, b, cfg, ws);
  ASSERT_EQ(r.c.nnz(), 1);
  EXPECT_EQ(r.c.vals[0], 0.0);  // 0 ∧ 1 = 0, stored structurally
}

TEST(PbFormatF32, BitIdenticalToWideOnExactValuesAcrossSemirings) {
  // exact_er values are integers 1..8: every product and sum in this
  // problem is exactly representable in f32, so the narrowed value lane
  // must round-trip bit-identically through the f64 CSR.
  const mtx::CsrMatrix m = testutil::exact_er(400, 400, 6.0, 47);
  const mtx::CscMatrix a = mtx::csr_to_csc(m);
  for (const std::string& s : semiring_names()) {
    PbConfig cfg;
    cfg.validate = true;
    cfg.format = FormatPolicy::kWide;
    PbWorkspace wide_ws;
    const PbResult wide = pb_spgemm_named(s, a, m, cfg, wide_ws);
    for (const PbSchedule sched :
         {PbSchedule::kBarrier, PbSchedule::kPipeline}) {
      PbConfig fcfg = cfg;
      fcfg.format = FormatPolicy::kF32;
      fcfg.schedule = sched;
      PbWorkspace ws;
      const PbResult f32 = pb_spgemm_named(s, a, m, fcfg, ws);
      EXPECT_EQ(f32.stats.format, TupleFormat::kNarrowF32) << s;
      EXPECT_EQ(f32.stats.tuple_bytes(), 8.0) << s;
      EXPECT_TRUE(mtx::equal_exact(wide.c, f32.c))
          << s << " schedule " << to_string(sched);
    }
  }
}

TEST(PbFormatF32, FallsBackToWideWhenBitsDontFit) {
  // The f32 format keeps the narrow 32-bit key, so it inherits the narrow
  // fit constraint: 33 varying bits force the wide fallback.
  const index_t wide_cols = index_t{1} << 30;
  const mtx::CsrMatrix a_csr = testutil::from_triplets(
      8, 4, {{0, 0, 2.0}, {5, 1, 3.0}, {7, 3, 7.0}});
  const mtx::CsrMatrix b = testutil::from_triplets(
      4, wide_cols, {{0, 7, 1.0}, {1, wide_cols - 1, 4.0}, {3, 99, 6.0}});
  const mtx::CscMatrix a = mtx::csr_to_csc(a_csr);

  PbConfig cfg;
  cfg.nbins = 1;
  cfg.format = FormatPolicy::kF32;
  const PbPlan plan = pb_plan_build(a, b, cfg);
  EXPECT_EQ(plan.sym.format, TupleFormat::kWide);
}

TEST(PbFormatF32, NativeF32CsrBuilder) {
  // The no-widening output path: drive the f32 pipeline by hand and build
  // a native CsrF32, then check it against the wide result narrowed.
  const mtx::CsrMatrix m = testutil::exact_er(200, 200, 5.0, 48);
  const mtx::CscMatrix a = mtx::csr_to_csc(m);
  PbConfig cfg;
  cfg.format = FormatPolicy::kF32;
  const SymbolicResult sym = pb_symbolic(a, m, cfg);
  ASSERT_EQ(sym.format, TupleFormat::kNarrowF32);

  std::vector<narrow_key_t> keys(
      static_cast<std::size_t>(sym.bin_offsets.back()));
  std::vector<f32_val_t> vals(keys.size());
  pb_expand_narrow_f32<PlusTimes>(a, m, sym, cfg, keys.data(), vals.data());
  const SortCompressResult sc = pb_sort_compress_narrow_f32<PlusTimes>(
      keys.data(), vals.data(), sym.bin_offsets, sym.bin_fill,
      sym.layout.nbins, nullptr, {}, &sym.layout, sym.col_bits);
  const CsrF32 c32 = pb_build_csr_narrow_f32_native(
      keys.data(), vals.data(), sym.bin_offsets, sc.merged, sym.layout,
      sym.col_bits, a.nrows, m.ncols);

  const mtx::CsrMatrix expected = reference_spgemm(SpGemmProblem::square(m));
  ASSERT_EQ(c32.nnz(), expected.nnz());
  ASSERT_EQ(c32.rowptr.size(), expected.rowptr.size());
  for (std::size_t i = 0; i < expected.rowptr.size(); ++i) {
    ASSERT_EQ(c32.rowptr[i], expected.rowptr[i]) << "rowptr " << i;
  }
  for (std::size_t i = 0; i < c32.colids.size(); ++i) {
    ASSERT_EQ(c32.colids[i], expected.colids[i]) << "colid " << i;
    ASSERT_EQ(c32.vals[i], static_cast<f32_val_t>(expected.vals[i]))
        << "val " << i;
  }
}

}  // namespace
}  // namespace pbs::pb
