// The bench harness's own utilities (arg parsing, table layout, timing
// loops) feed every number in EXPERIMENTS.md — they deserve tests too.
#include <gtest/gtest.h>

#include <sstream>

#include "bench_common.hpp"
#include "matrix/convert.hpp"
#include "matrix/generate.hpp"

namespace pbs::bench {
namespace {

Args make_args(std::vector<std::string> words) {
  static std::vector<std::string> storage;
  storage = std::move(words);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& w : storage) argv.push_back(w.data());
  return Args(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, ParsesSpaceAndEqualsForms) {
  const Args a = make_args({"--reps", "5", "--shrink=2.5", "--flag"});
  EXPECT_EQ(a.get_int("reps", 1), 5);
  EXPECT_DOUBLE_EQ(a.get_double("shrink", 1.0), 2.5);
  EXPECT_EQ(a.get_int("flag", 0), 1);  // bare flag reads as "1"
  EXPECT_EQ(a.get_int("absent", 7), 7);
}

TEST(Args, ParsesLists) {
  const Args a = make_args({"--scales", "12,14,16", "--algos=pb,hash"});
  EXPECT_EQ(a.get_int_list("scales", {}), (std::vector<int>{12, 14, 16}));
  EXPECT_EQ(a.get_string_list("algos", {}),
            (std::vector<std::string>{"pb", "hash"}));
  EXPECT_EQ(a.get_int_list("missing", {1, 2}), (std::vector<int>{1, 2}));
}

TEST(Args, ConsecutiveFlagsDoNotSwallowEachOther) {
  const Args a = make_args({"--verbose", "--reps", "3"});
  EXPECT_EQ(a.get_int("verbose", 0), 1);
  EXPECT_EQ(a.get_int("reps", 0), 3);
}

TEST(Table, AlignsColumnsToWidestCell) {
  Table t({"name", "v"});
  t.row("x", 1.5);
  t.row("longer_name", 10);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // All three lines start their second column at the same offset.
  std::istringstream lines(out);
  std::string l1, l2, l3;
  std::getline(lines, l1);
  std::getline(lines, l2);
  std::getline(lines, l3);
  EXPECT_EQ(l1.find('v'), l2.find("1.5"));
  EXPECT_EQ(l1.find('v'), l3.find("10"));
}

TEST(Table, RowCellsAndMixedTypes) {
  Table t({"a", "b", "c"});
  t.row("s", 42, 2.25);
  t.row_cells({"x", "y", "z"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("42"), std::string::npos);
  EXPECT_NE(os.str().find("2.25"), std::string::npos);
  EXPECT_NE(os.str().find("z"), std::string::npos);
}

TEST(Measure, RunsWarmupPlusReps) {
  int calls = 0;
  const RunStats s = measure_seconds([&] { ++calls; }, /*reps=*/3, /*warmup=*/2);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(s.n, 3);
  EXPECT_GE(s.min, 0.0);
  EXPECT_LE(s.min, s.max);
}

TEST(Measure, AlgoMflopsPositiveOnRealWork) {
  const mtx::CsrMatrix a =
      mtx::coo_to_csr(mtx::generate_er(256, 256, 4.0, 51));
  const SpGemmProblem p = SpGemmProblem::square(a);
  const nnz_t flop = mtx::count_flops(a, a);
  const double mf = algo_mflops(algorithm("hash"), p, flop, 2, 1);
  EXPECT_GT(mf, 0.0);
}

TEST(Measure, PbTelemetryBestIsConsistent) {
  const mtx::CsrMatrix a =
      mtx::coo_to_csr(mtx::generate_er(512, 512, 4.0, 52));
  const SpGemmProblem p = SpGemmProblem::square(a);
  const pb::PbTelemetry t = pb_best_telemetry(p, pb::PbConfig{}, 2, 1);
  EXPECT_EQ(t.flop, mtx::count_flops(a, a));
  EXPECT_GT(t.total_seconds(), 0.0);
  EXPECT_GT(t.mflops(), 0.0);
}

}  // namespace
}  // namespace pbs::bench
