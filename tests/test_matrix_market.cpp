#include "matrix/matrix_market.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"

namespace pbs::mtx {
namespace {

CooMatrix parse(const std::string& text) {
  std::istringstream in(text);
  return read_matrix_market(in, "test.mtx");
}

TEST(MatrixMarket, ParsesGeneralReal) {
  const CooMatrix m = parse(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 4 2\n"
      "1 2 1.5\n"
      "3 4 -2.0\n");
  EXPECT_EQ(m.nrows, 3);
  EXPECT_EQ(m.ncols, 4);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_EQ(m.row, (std::vector<index_t>{0, 2}));
  EXPECT_EQ(m.col, (std::vector<index_t>{1, 3}));
  EXPECT_EQ(m.val, (std::vector<value_t>{1.5, -2.0}));
}

TEST(MatrixMarket, ParsesPattern) {
  const CooMatrix m = parse(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  EXPECT_EQ(m.val, (std::vector<value_t>{1.0, 1.0}));
}

TEST(MatrixMarket, ParsesInteger) {
  const CooMatrix m = parse(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "2 1 7\n");
  EXPECT_EQ(m.val[0], 7.0);
}

TEST(MatrixMarket, MirrorsSymmetric) {
  const CooMatrix m = parse(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 1.0\n"
      "2 1 2.0\n"
      "3 2 3.0\n");
  EXPECT_EQ(m.nnz(), 5);  // diagonal not mirrored
  const CsrMatrix csr = coo_to_csr(m);
  EXPECT_TRUE(equal_exact(csr, transpose(csr)));
}

TEST(MatrixMarket, MirrorsSkewSymmetric) {
  const CooMatrix m = parse(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 5.0\n");
  EXPECT_EQ(m.nnz(), 2);
  const CsrMatrix csr = coo_to_csr(m);
  const CsrMatrix neg_t = transpose(csr);
  EXPECT_EQ(csr.vals[0], -neg_t.vals[0]);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  EXPECT_THROW(parse("1 1 0\n"), std::runtime_error);
}

TEST(MatrixMarket, RejectsArrayFormat) {
  EXPECT_THROW(parse("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n"),
               std::runtime_error);
}

TEST(MatrixMarket, RejectsOutOfBoundsIndex) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "2 2 1\n"
                     "3 1 1.0\n"),
               std::runtime_error);
}

TEST(MatrixMarket, RejectsTruncatedFile) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "2 2 2\n"
                     "1 1 1.0\n"),
               std::runtime_error);
}

TEST(MatrixMarket, RejectsMissingValue) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n"
                     "2 2 1\n"
                     "1 1\n"),
               std::runtime_error);
}

TEST(MatrixMarket, ErrorMessagesCarryLineNumbers) {
  try {
    parse("%%MatrixMarket matrix coordinate real general\n"
          "2 2 1\n"
          "9 9 1.0\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":3:"), std::string::npos) << e.what();
  }
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  const CooMatrix original = generate_er(200, 150, 3.0, 21);
  std::ostringstream out;
  write_matrix_market(out, original);
  std::istringstream in(out.str());
  const CooMatrix back = read_matrix_market(in, "roundtrip");
  EXPECT_EQ(back.nrows, original.nrows);
  EXPECT_EQ(back.ncols, original.ncols);
  EXPECT_EQ(back.row, original.row);
  EXPECT_EQ(back.col, original.col);
  for (nnz_t i = 0; i < back.nnz(); ++i)
    EXPECT_DOUBLE_EQ(back.val[i], original.val[i]);
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market("/nonexistent/path/x.mtx"),
               std::runtime_error);
}

}  // namespace
}  // namespace pbs::mtx
