#include <gtest/gtest.h>

#include "common/aligned_buffer.hpp"
#include "pb/pb_spgemm.hpp"
#include "spgemm/spgemm.hpp"
#include "test_util.hpp"

namespace pbs::pb {
namespace {

TEST(Workspace, GrowsGeometricallyAndReuses) {
  PbWorkspace ws;
  EXPECT_EQ(ws.capacity(), 0u);  // capacity() reports pooled bytes
  Tuple* p1 = ws.acquire(100);
  ASSERT_NE(p1, nullptr);
  EXPECT_GE(ws.capacity(), 100u * sizeof(Tuple));
  const std::size_t cap1 = ws.capacity();
  // Smaller request: same buffer, no growth.
  Tuple* p2 = ws.acquire(50);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(ws.capacity(), cap1);
  // Larger request: grows at least geometrically.
  ws.acquire(cap1 / sizeof(Tuple) + 1);
  EXPECT_GE(ws.capacity(), cap1 + cap1 / 2);
}

TEST(Workspace, NarrowStreamSharesThePoolWithWide) {
  PbWorkspace ws;
  // A wide run sizes the pool; a narrow request for the same tuple count
  // needs 12 B + key padding per tuple, so it is served without growth.
  (void)ws.acquire(1024);
  const std::size_t cap = ws.capacity();
  const NarrowStream ns = ws.acquire_narrow(1024);
  ASSERT_NE(ns.keys, nullptr);
  ASSERT_NE(ns.vals, nullptr);
  EXPECT_EQ(ws.capacity(), cap);
  // Value array starts on its own cache line after the key span.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(ns.vals) % kCacheLineBytes, 0u);
  EXPECT_GE(reinterpret_cast<std::byte*>(ns.vals) -
                reinterpret_cast<std::byte*>(ns.keys),
            static_cast<std::ptrdiff_t>(1024 * sizeof(narrow_key_t)));
  const PbWorkspace::Stats s = ws.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.allocations, 1u);
  EXPECT_EQ(s.reuses, 1u);
}

TEST(Workspace, KeyOnlyStreamSharesThePoolWithoutValueBytes) {
  // The satellite fix for mixed-format reuse: a key-only acquire following
  // a wide lease must ask for n*8 bytes only — no value bytes charged to a
  // format that has no value array — so it reuses the wide pool and never
  // grows it.
  PbWorkspace ws;
  (void)ws.acquire(1024);  // 1024 * 16 B
  const std::size_t cap = ws.capacity();
  wide_key_t* keys = ws.acquire_keys(2048);  // 2048 * 8 B = the same bytes
  ASSERT_NE(keys, nullptr);
  EXPECT_EQ(ws.capacity(), cap);
  PbWorkspace::Stats s = ws.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.allocations, 1u);
  EXPECT_EQ(s.reuses, 1u);

  // And the other direction: growing key-only first, then wide for the
  // same tuple count doubles the byte need and must allocate.
  PbWorkspace ws2;
  (void)ws2.acquire_keys(1024);
  const std::size_t key_cap = ws2.capacity();
  EXPECT_GE(key_cap, 1024u * sizeof(wide_key_t));
  EXPECT_LT(key_cap, 1024u * sizeof(Tuple));  // no hidden value reserve
  (void)ws2.acquire(1024);
  s = ws2.stats();
  EXPECT_EQ(s.allocations, 2u);
}

TEST(Workspace, NarrowF32StreamSharesThePoolWithNarrow) {
  // f32 tuples are 8 B (4 B key + 4 B value): a narrow lease (12 B) for
  // the same count always covers an f32 lease, and the value lane starts
  // line-aligned after the key span.
  PbWorkspace ws;
  (void)ws.acquire_narrow(1024);
  const std::size_t cap = ws.capacity();
  const NarrowF32Stream nf = ws.acquire_narrow_f32(1024);
  ASSERT_NE(nf.keys, nullptr);
  ASSERT_NE(nf.vals, nullptr);
  EXPECT_EQ(ws.capacity(), cap);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(nf.vals) % kCacheLineBytes, 0u);
  EXPECT_GE(reinterpret_cast<std::byte*>(nf.vals) -
                reinterpret_cast<std::byte*>(nf.keys),
            static_cast<std::ptrdiff_t>(1024 * sizeof(narrow_key_t)));
  const PbWorkspace::Stats s = ws.stats();
  EXPECT_EQ(s.acquires, 2u);
  EXPECT_EQ(s.allocations, 1u);
  EXPECT_EQ(s.reuses, 1u);
}

TEST(Workspace, MixedFormatMultipliesReuseOnePool) {
  // One workspace serving wide, key-only and f32 plans back to back: after
  // the largest stream is paid for, every later acquire is a reuse.
  PbWorkspace ws;
  const mtx::CsrMatrix m = testutil::exact_er(300, 300, 5.0, 94);
  const SpGemmProblem p = SpGemmProblem::square(m);

  PbConfig wide_cfg;
  wide_cfg.format = FormatPolicy::kWide;
  const PbResult wide = pb_spgemm<BoolOrAnd>(p.a_csc, p.b_csr, wide_cfg, ws);
  const std::size_t cap = ws.capacity();
  ws.reset_stats();

  const PbResult keyonly =
      pb_spgemm<BoolOrAnd>(p.a_csc, p.b_csr, PbConfig{}, ws);
  EXPECT_EQ(keyonly.stats.format, TupleFormat::kKeyOnly);
  PbConfig f32_cfg;
  f32_cfg.format = FormatPolicy::kF32;
  const PbResult f32 = pb_spgemm<BoolOrAnd>(p.a_csc, p.b_csr, f32_cfg, ws);
  EXPECT_EQ(f32.stats.format, TupleFormat::kNarrowF32);

  EXPECT_EQ(ws.capacity(), cap);  // 8 B streams never outgrow the 16 B one
  const PbWorkspace::Stats s = ws.stats();
  EXPECT_EQ(s.allocations, 0u);
  EXPECT_GE(s.reuses, 2u);
  EXPECT_TRUE(equal_exact(wide.c, keyonly.c));
  EXPECT_TRUE(equal_exact(wide.c, f32.c));
}

TEST(Workspace, KeyOnlyScratchSlotsPoolPerThread) {
  PbWorkspace ws;
  ws.prepare_scratch(2);
  wide_key_t* s0 = ws.acquire_scratch_keys(0, 64);
  ASSERT_NE(s0, nullptr);
  EXPECT_EQ(ws.acquire_scratch_keys(0, 32), s0);  // shrink reuses
  const NarrowF32Stream s1 = ws.acquire_scratch_narrow_f32(1, 64);
  ASSERT_NE(s1.keys, nullptr);
  ASSERT_NE(s1.vals, nullptr);
  const PbWorkspace::Stats s = ws.stats();
  EXPECT_EQ(s.scratch_allocations, 2u);
  EXPECT_EQ(s.scratch_reuses, 1u);
}

TEST(Workspace, StatsCountGrowShrinkGrowSequences) {
  PbWorkspace ws;
  ws.acquire(1000);  // grow
  ws.acquire(10);    // shrink: served from pool
  ws.acquire(1000);  // back to peak: still served from pool
  PbWorkspace::Stats s = ws.stats();
  EXPECT_EQ(s.acquires, 3u);
  EXPECT_EQ(s.allocations, 1u);
  EXPECT_EQ(s.reuses, 2u);
  EXPECT_EQ(s.peak_request, 1000u);

  ws.acquire(5000);  // beyond capacity: second allocation
  s = ws.stats();
  EXPECT_EQ(s.allocations, 2u);
  EXPECT_EQ(s.peak_request, 5000u);

  ws.reset_stats();
  s = ws.stats();
  EXPECT_EQ(s.acquires, 0u);
  EXPECT_EQ(s.allocations, 0u);
  EXPECT_EQ(ws.capacity(), 5000u * sizeof(Tuple));  // the pool is retained
}

TEST(Workspace, ScratchSlotsPoolPerThread) {
  PbWorkspace ws;
  ws.prepare_scratch(2);
  Tuple* s0 = ws.acquire_scratch(0, 64);
  ASSERT_NE(s0, nullptr);
  EXPECT_EQ(ws.acquire_scratch(0, 32), s0);  // shrink reuses
  Tuple* s1 = ws.acquire_scratch(1, 16);
  EXPECT_NE(s0, s1);  // slots are independent
  const PbWorkspace::Stats s = ws.stats();
  EXPECT_EQ(s.scratch_allocations, 2u);
  EXPECT_EQ(s.scratch_reuses, 1u);
}

TEST(Workspace, SharedAcrossDifferentProblems) {
  PbWorkspace ws;
  const mtx::CsrMatrix big = testutil::exact_er(400, 400, 6.0, 91);
  const mtx::CsrMatrix small = testutil::exact_er(100, 100, 3.0, 92);
  const SpGemmProblem pb_big = SpGemmProblem::square(big);
  const SpGemmProblem pb_small = SpGemmProblem::square(small);

  const PbResult r1 = pb_spgemm(pb_big.a_csc, pb_big.b_csr, PbConfig{}, ws);
  const std::size_t cap_after_big = ws.capacity();
  const PbResult r2 = pb_spgemm(pb_small.a_csc, pb_small.b_csr, PbConfig{}, ws);
  const PbResult r3 = pb_spgemm(pb_big.a_csc, pb_big.b_csr, PbConfig{}, ws);

  EXPECT_EQ(ws.capacity(), cap_after_big);  // big buffer retained
  EXPECT_TRUE(equal_exact(r1.c, r3.c));     // reuse does not corrupt results
  EXPECT_TRUE(equal_exact(r2.c, reference_spgemm(pb_small)));
}

TEST(Workspace, RepeatedCallsAreDeterministic) {
  PbWorkspace ws;
  const mtx::CsrMatrix a = testutil::exact_rmat(8, 6.0, 93);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const PbResult first = pb_spgemm(p.a_csc, p.b_csr, PbConfig{}, ws);
  for (int i = 0; i < 3; ++i) {
    const PbResult again = pb_spgemm(p.a_csc, p.b_csr, PbConfig{}, ws);
    EXPECT_TRUE(equal_exact(first.c, again.c)) << "iteration " << i;
  }
}

TEST(AlignedBuffer, CacheLineAlignment) {
  AlignedBuffer<double> b(100);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % kCacheLineBytes, 0u);
  EXPECT_EQ(b.size(), 100u);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(10);
  a[0] = 42;
  int* const ptr = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), ptr);
  EXPECT_EQ(b[0], 42);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_TRUE(a.empty());

  AlignedBuffer<int> c;
  c = std::move(b);
  EXPECT_EQ(c.data(), ptr);
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBuffer, EmptyAndReallocate) {
  AlignedBuffer<int> b;
  EXPECT_TRUE(b.empty());
  b.allocate(5);
  EXPECT_EQ(b.size(), 5u);
  b.allocate(0);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.data(), nullptr);
}

TEST(AlignedBuffer, RangeForIteration) {
  AlignedBuffer<int> b(4);
  for (std::size_t i = 0; i < 4; ++i) b[i] = static_cast<int>(i);
  int sum = 0;
  for (const int v : b) sum += v;
  EXPECT_EQ(sum, 6);
}

}  // namespace
}  // namespace pbs::pb
