#include "matrix/mstats.hpp"

#include <gtest/gtest.h>

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "test_util.hpp"

namespace pbs::mtx {
namespace {

using testutil::from_triplets;

TEST(MStats, FlopsOfIdentitySquareEqualsN) {
  const CsrMatrix i = CsrMatrix::identity(10);
  EXPECT_EQ(count_flops(i, i), 10);
  EXPECT_EQ(count_flops(csr_to_csc(i), i), 10);
}

TEST(MStats, FlopsKnownSmallCase) {
  // A = [1 1; 0 1]: row0 selects B rows {0,1} (2+1 flops), row1 selects {1}.
  const CsrMatrix a =
      from_triplets(2, 2, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}});
  EXPECT_EQ(count_flops(a, a), 4);
}

TEST(MStats, OuterAndRowwiseFlopCountsAgree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const CsrMatrix a = coo_to_csr(generate_er(300, 300, 4.0, seed));
    const CsrMatrix b = coo_to_csr(generate_er(300, 300, 6.0, seed + 100));
    EXPECT_EQ(count_flops(a, b), count_flops(csr_to_csc(a), b)) << seed;
  }
}

TEST(MStats, SymbolicNnzIdentity) {
  const CsrMatrix i = CsrMatrix::identity(16);
  EXPECT_EQ(symbolic_nnz(i, i), 16);
}

TEST(MStats, SymbolicNnzDenseRowTimesDenseCol) {
  // Row vector (1x n pattern) times its transpose: 1 nonzero out.
  CooMatrix row(1, 8), col(8, 1);
  for (index_t j = 0; j < 8; ++j) {
    row.add(0, j, 1.0);
    col.add(j, 0, 1.0);
  }
  row.canonicalize();
  col.canonicalize();
  EXPECT_EQ(symbolic_nnz(coo_to_csr(row), coo_to_csr(col)), 1);
  // And outer product: 8x8 fully dense.
  EXPECT_EQ(symbolic_nnz(coo_to_csr(col), coo_to_csr(row)), 64);
}

TEST(MStats, CompressionFactorAtLeastOne) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const CsrMatrix a = coo_to_csr(generate_er(500, 500, 4.0, seed));
    const SquareStats s = square_stats(a);
    EXPECT_GE(s.cf, 1.0) << "at least one multiply per output nonzero";
    EXPECT_EQ(s.n, 500);
    EXPECT_EQ(s.nnz, a.nnz());
    EXPECT_DOUBLE_EQ(s.d, a.avg_degree());
  }
}

TEST(MStats, ErSquareCompressionFactorNearOne) {
  // Paper Sec. II-C: cf of ER x ER is close to 1 in expectation.
  const CsrMatrix a = coo_to_csr(generate_er(1 << 12, 1 << 12, 4.0, 77));
  const SquareStats s = square_stats(a);
  EXPECT_LT(s.cf, 1.1);
}

TEST(MStats, BandedSquareHasHighCompressionFactor) {
  // Dense band: many (row, col) collisions in A², so cf >> 1 — the regime
  // where the paper's Fig. 11 expects hash to win.
  const CsrMatrix a = coo_to_csr(generate_banded(4096, 32.0, 20, 78));
  const SquareStats s = square_stats(a);
  EXPECT_GT(s.cf, 4.0);
}

TEST(MStats, EmptyMatrix) {
  CooMatrix empty(100, 100);
  const CsrMatrix a = coo_to_csr(empty);
  const SquareStats s = square_stats(a);
  EXPECT_EQ(s.flops, 0);
  EXPECT_EQ(s.nnz_c, 0);
  EXPECT_EQ(s.cf, 0.0);
}

TEST(MStats, DegreeStatsOnIdentity) {
  const DegreeStats s = degree_stats(CsrMatrix::identity(100));
  EXPECT_EQ(s.min_degree, 1);
  EXPECT_EQ(s.max_degree, 1);
  EXPECT_DOUBLE_EQ(s.mean_degree, 1.0);
  EXPECT_EQ(s.p99_degree, 1);
  EXPECT_DOUBLE_EQ(s.flop_imbalance, 1.0);
}

TEST(MStats, DegreeStatsDetectHub) {
  // A hub row (0) with 99 entries, a single row (1) pointing at the hub,
  // everyone else a self-loop.  Note a pure star is *flop-balanced*
  // (every row's A² flop equals the hub degree); only rows selecting the
  // hub inherit its weight, so this shape skews the flop distribution.
  CooMatrix coo(100, 100);
  for (index_t j = 1; j < 100; ++j) coo.add(0, j, 1.0);
  coo.add(1, 0, 1.0);
  for (index_t i = 2; i < 100; ++i) coo.add(i, i, 1.0);
  coo.canonicalize();
  const DegreeStats s = degree_stats(coo_to_csr(coo));
  EXPECT_EQ(s.max_degree, 99);
  EXPECT_EQ(s.min_degree, 1);
  // Row 1's flop is 99 while the mean is ~3: imbalance far above 5.
  EXPECT_GT(s.flop_imbalance, 5.0);
}

TEST(MStats, RmatIsMoreSkewedThanEr) {
  // The quantitative backing for the paper's Fig. 12/13 discussion.
  const CsrMatrix er = coo_to_csr(generate_er(1 << 12, 1 << 12, 8.0, 90));
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8.0;
  p.seed = 91;
  const CsrMatrix rmat = coo_to_csr(generate_rmat(p));
  const DegreeStats se = degree_stats(er);
  const DegreeStats sr = degree_stats(rmat);
  EXPECT_GT(sr.max_degree, 2 * se.max_degree);
  EXPECT_GT(sr.flop_imbalance, 2 * se.flop_imbalance);
}

TEST(MStats, DegreeStatsEmptyMatrix) {
  CooMatrix empty(10, 10);
  const DegreeStats s = degree_stats(coo_to_csr(empty));
  EXPECT_EQ(s.max_degree, 0);
  EXPECT_DOUBLE_EQ(s.mean_degree, 0.0);
}

TEST(MStats, FlopsMatchBruteForce) {
  const CsrMatrix a = coo_to_csr(generate_er(128, 96, 3.0, 79));
  const CsrMatrix b = coo_to_csr(generate_er(96, 160, 5.0, 80));
  nnz_t brute = 0;
  for (index_t r = 0; r < a.nrows; ++r) {
    for (const index_t k : a.row_cols(r)) brute += b.row_nnz(k);
  }
  EXPECT_EQ(count_flops(a, b), brute);
}

}  // namespace
}  // namespace pbs::mtx
