#include "model/roofline.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pbs::model {
namespace {

TEST(Roofline, PaperHeadlineNumbers) {
  // Sec. I / Fig. 3: ER matrices (cf=1, b=16) on a 50 GB/s socket.
  EXPECT_NEAR(ai_upper_bound(1.0), 1.0 / 16, 1e-12);
  EXPECT_NEAR(attainable_gflops(50.0, ai_upper_bound(1.0)), 3.125, 1e-9);
  // Sec. II-C: Eq. 4 gives AI = 1/80 for cf = 1.
  EXPECT_NEAR(ai_outer_lower(1.0), 1.0 / 80, 1e-12);
  // Eq. 3 gives 1/48 for cf = 1.
  EXPECT_NEAR(ai_column_lower(1.0), 1.0 / 48, 1e-12);
}

TEST(Roofline, Sec5LowerBoundEstimates) {
  // Sec. V-B: "at least 40 * 1/80 = 500 MFLOPS ... 50 * 1/80 = 625 MFLOPS".
  EXPECT_NEAR(attainable_gflops(40.0, ai_outer_lower(1.0)) * 1000, 500.0, 1e-9);
  EXPECT_NEAR(attainable_gflops(50.0, ai_outer_lower(1.0)) * 1000, 625.0, 1e-9);
}

TEST(Roofline, BoundsAreOrdered) {
  for (double cf : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const SpGemmBounds b = bounds(50.0, cf);
    EXPECT_LT(b.ai_outer, b.ai_upper) << cf;
    EXPECT_LT(b.ai_column, b.ai_upper) << cf;
    EXPECT_LT(b.perf_outer, b.perf_upper) << cf;
  }
}

TEST(Roofline, ColumnBeatsOuterBoundAtHighCf) {
  // Eq.3 vs Eq.4: (2+cf) < (3+2cf) always, so the column *lower bound* is
  // always the higher AI; the paper's point is PB *achieves* its bound
  // while column algorithms do not.  Verify the algebraic relation.
  for (double cf : {1.0, 4.0, 16.0}) {
    EXPECT_GT(ai_column_lower(cf), ai_outer_lower(cf)) << cf;
  }
}

TEST(Roofline, AiGrowsWithCf) {
  EXPECT_LT(ai_outer_lower(1.0), ai_outer_lower(2.0));
  EXPECT_LT(ai_outer_lower(2.0), ai_outer_lower(8.0));
  // Saturates below cf/b.
  EXPECT_LT(ai_outer_lower(1000.0), ai_upper_bound(1000.0));
}

TEST(Roofline, PerformanceLinearInBandwidth) {
  const SpGemmBounds b1 = bounds(25.0, 1.0);
  const SpGemmBounds b2 = bounds(50.0, 1.0);
  EXPECT_NEAR(b2.perf_outer, 2.0 * b1.perf_outer, 1e-12);
}

TEST(Roofline, CustomBytesPerNnz) {
  // 8-byte tuples (4-byte values) double every AI.
  EXPECT_NEAR(ai_upper_bound(1.0, 8.0), 2.0 * ai_upper_bound(1.0, 16.0), 1e-12);
}

TEST(Roofline, Fig3PrinterMentionsOperatingPoints) {
  std::ostringstream os;
  print_fig3(os, 50.0);
  const std::string out = os.str();
  EXPECT_NE(out.find("0.0125"), std::string::npos);   // 1/80
  EXPECT_NE(out.find("0.0625"), std::string::npos);   // 1/16
  EXPECT_NE(out.find("Roofline"), std::string::npos);
}

}  // namespace
}  // namespace pbs::model
