// Serving subsystem: wire-protocol round-trips (including malformed and
// truncated frames), shard-merge bit-identity against a single executor
// across semirings and tile grids, typed error codes over the wire
// (deadline, admission budget, validation, unknown handle, unsupported
// algo, overload shedding), matrix-handle reuse hitting the value-only
// fast path, and an injected-fault request that fails alone while the
// daemon keeps serving bit-identically.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/errors.hpp"
#include "common/fault.hpp"
#include "matrix/ops.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"
#include "spgemm/executor.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

using namespace std::chrono_literals;

/// Clears the global injector on entry and exit, so a failed assertion
/// can never leak an armed fault into the next test.
struct FaultGuard {
  FaultGuard() { FaultInjector::reset(); }
  ~FaultGuard() { FaultInjector::reset(); }
};

/// A socket path unique to this process AND this call — tests never
/// collide with each other or with a concurrently running suite.
std::string unique_socket_path() {
  static std::atomic<int> counter{0};
  return "/tmp/pbs_test_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

/// An in-process daemon for one test: constructs, starts, and on scope
/// exit drains via the same stop() path SIGTERM uses.
struct TestServer {
  explicit TestServer(serve::ServeOptions opts = {}) {
    opts.socket_path = unique_socket_path();
    opts.pin_shards = false;  // irrelevant to correctness, skip affinity
    if (opts.worker_threads == 4) opts.worker_threads = 2;
    server = std::make_unique<serve::Server>(std::move(opts));
    server->start();
  }
  [[nodiscard]] const std::string& path() const {
    return server->socket_path();
  }
  std::unique_ptr<serve::Server> server;
};

mtx::CsrMatrix local_run(const mtx::CsrMatrix& a, const mtx::CsrMatrix& b,
                         const SpGemmOp& op) {
  SpGemmExecutor exec;
  return exec.run(SpGemmProblem::multiply(a, b), op);
}

/// A structurally broken CSR that survives wire decoding (monotone
/// rowptr, consistent counts) but fails csr_validate: column id out of
/// range.  Distinguishes the kMalformed layer from the kValidation layer.
mtx::CsrMatrix decodable_but_invalid_csr() {
  mtx::CsrMatrix m;
  m.nrows = 2;
  m.ncols = 2;
  m.rowptr = {0, 1, 1};
  m.colids = {5};  // >= ncols
  m.vals = {1.0};
  return m;
}

// ---- protocol unit tests (no socket) --------------------------------------

TEST(ServeProtocol, MultiplyRequestRoundTripsThroughTheWireFormat) {
  const mtx::CsrMatrix a = testutil::exact_er(60, 40, 4.0, 91);
  const mtx::CsrMatrix b = testutil::exact_er(40, 50, 4.0, 92);
  const mtx::CsrMatrix m = testutil::exact_er(60, 50, 2.0, 93);

  serve::MultiplyRequest req;
  req.algo = "pb";
  req.semiring = "min_plus";
  req.complement = true;
  req.has_mask = true;
  req.deadline_ms = 12.5;
  req.a = a;
  req.b = b;
  req.mask = m;
  const std::vector<std::uint8_t> bytes = serve::encode_multiply(req);

  serve::WireReader r(bytes);
  ASSERT_EQ(r.u8(), static_cast<std::uint8_t>(serve::MsgType::kMultiply));
  const serve::MultiplyRequest back = serve::decode_multiply(r);
  r.expect_done();

  EXPECT_EQ(back.algo, "pb");
  EXPECT_EQ(back.semiring, "min_plus");
  EXPECT_TRUE(back.complement);
  EXPECT_TRUE(back.has_mask);
  EXPECT_FALSE(back.values_only);
  EXPECT_FALSE(back.b_is_a);
  EXPECT_DOUBLE_EQ(back.deadline_ms, 12.5);
  EXPECT_EQ(back.a_handle, 0u);
  EXPECT_TRUE(mtx::equal_exact(back.a, a));
  EXPECT_TRUE(mtx::equal_exact(back.b, b));
  EXPECT_TRUE(mtx::equal_exact(back.mask, m));
}

TEST(ServeProtocol, HandleRequestsCarryNoMatrixPayload) {
  serve::MultiplyRequest req;
  req.a_handle = 7;
  req.b_is_a = true;
  req.values_only = true;
  const std::vector<std::uint8_t> bytes = serve::encode_multiply(req);

  serve::WireReader r(bytes);
  ASSERT_EQ(r.u8(), static_cast<std::uint8_t>(serve::MsgType::kMultiply));
  const serve::MultiplyRequest back = serve::decode_multiply(r);
  r.expect_done();
  EXPECT_EQ(back.a_handle, 7u);
  EXPECT_TRUE(back.b_is_a);
  EXPECT_TRUE(back.values_only);
  EXPECT_EQ(back.a.nrows, 0);
  EXPECT_EQ(back.b.nrows, 0);
}

// The post-op fields are versioned by kFlagHasPostOp: an inactive
// post-op adds no bytes (a pre-post-op client's body is reproduced byte
// for byte), an active one appends exactly the three trailing fields and
// round-trips.
TEST(ServeProtocol, PostOpRoundTripsAndStaysOffTheWireWhenInactive) {
  serve::MultiplyRequest req;
  req.a_handle = 3;
  req.b_handle = 4;
  const std::vector<std::uint8_t> without = serve::encode_multiply(req);

  req.post_op.scale = 2.0;
  req.post_op.prune_threshold = 1e-4;
  req.post_op.top_k = 8;
  const std::vector<std::uint8_t> with = serve::encode_multiply(req);
  EXPECT_EQ(with.size(),
            without.size() + 2 * sizeof(double) + sizeof(std::uint32_t));

  serve::WireReader r(with);
  ASSERT_EQ(r.u8(), static_cast<std::uint8_t>(serve::MsgType::kMultiply));
  const serve::MultiplyRequest back = serve::decode_multiply(r);
  r.expect_done();
  EXPECT_EQ(back.post_op, req.post_op);

  serve::WireReader r2(without);
  ASSERT_EQ(r2.u8(), static_cast<std::uint8_t>(serve::MsgType::kMultiply));
  const serve::MultiplyRequest back2 = serve::decode_multiply(r2);
  r2.expect_done();
  EXPECT_FALSE(back2.post_op.active());
}

// Hostile post-op bytes (non-finite scale, negative threshold) fail wire
// decoding — they never reach the executor as a live descriptor.
TEST(ServeProtocol, HostilePostOpFieldsAreRejectedAtDecode) {
  serve::MultiplyRequest req;
  req.a_handle = 1;
  req.b_handle = 1;
  req.post_op.scale = std::numeric_limits<double>::quiet_NaN();
  const std::vector<std::uint8_t> bytes = serve::encode_multiply(req);

  serve::WireReader r(bytes);
  ASSERT_EQ(r.u8(), static_cast<std::uint8_t>(serve::MsgType::kMultiply));
  EXPECT_THROW((void)serve::decode_multiply(r), serve::WireFormatError);
}

// Every strict prefix of a valid body must throw, never read past the
// end or return a half-decoded request.
TEST(ServeProtocol, TruncatedPayloadsThrowAtEveryPrefixLength) {
  serve::MultiplyRequest req;
  req.a = testutil::exact_er(20, 20, 3.0, 94);
  req.b = req.a;
  const std::vector<std::uint8_t> bytes = serve::encode_multiply(req);
  ASSERT_GT(bytes.size(), 2u);

  for (std::size_t len = 1; len < bytes.size(); ++len) {
    serve::WireReader r(std::span(bytes.data(), len));
    EXPECT_THROW(
        {
          (void)r.u8();
          serve::MultiplyRequest parsed = serve::decode_multiply(r);
          r.expect_done();  // shorter frames must not parse cleanly
          (void)parsed;
        },
        serve::WireFormatError)
        << "prefix length " << len;
  }
}

TEST(ServeProtocol, InconsistentCsrBlobsAreRejected) {
  // Non-monotone rowptr.
  {
    serve::WireWriter w;
    w.u32(2);  // nrows
    w.u32(2);  // ncols
    w.u64(2);  // nnz
    for (const std::int64_t rp : {0, 2, 1}) w.u64(static_cast<std::uint64_t>(rp));
    for (int i = 0; i < 2; ++i) w.u32(0);  // colids
    for (int i = 0; i < 2; ++i) w.f64(1.0);
    const std::vector<std::uint8_t> bytes = w.take();
    serve::WireReader r(bytes);
    EXPECT_THROW((void)r.csr(), serve::WireFormatError);
  }
  // rowptr.back() disagrees with nnz.
  {
    serve::WireWriter w;
    w.u32(1);
    w.u32(4);
    w.u64(3);
    w.u64(0);
    w.u64(2);  // back() = 2 != nnz = 3
    for (int i = 0; i < 3; ++i) w.u32(static_cast<std::uint32_t>(i));
    for (int i = 0; i < 3; ++i) w.f64(1.0);
    const std::vector<std::uint8_t> bytes = w.take();
    serve::WireReader r(bytes);
    EXPECT_THROW((void)r.csr(), serve::WireFormatError);
  }
  // Declared nnz far beyond the bytes present: the reader must refuse
  // before sizing any allocation from it.
  {
    serve::WireWriter w;
    w.u32(1);
    w.u32(4);
    w.u64(std::uint64_t{1} << 40);
    const std::vector<std::uint8_t> bytes = w.take();
    serve::WireReader r(bytes);
    EXPECT_THROW((void)r.csr(), serve::WireFormatError);
  }
}

// Regression: the reader's size check must bound each component on its
// own — a single summed bound can be wrapped by an attacker-chosen nnz.
// Both blobs below pass a naive `rowptr_bytes + 12*nnz <= remaining`
// after uint64 wraparound; accepting either means sizing an allocation
// (or a memcpy) in the exabyte range from hostile header bytes.
TEST(ServeProtocol, OverflowingDeclaredCountsCannotWrapTheSizeCheck) {
  // 12 * 1537228672809129302 == 2^64 + 8, so the naive total is
  // 16 (rowptr) + 8 == 24 <= the 24 bytes present.
  constexpr std::uint64_t kWrapNnz = 1537228672809129302ull;
  {
    serve::WireWriter w;
    w.u32(1);  // nrows
    w.u32(1);  // ncols
    w.u64(kWrapNnz);
    w.u64(0);         // rowptr[0]
    w.u64(kWrapNnz);  // rowptr[1]: consistent with nnz if it got this far
    w.u64(0);         // pad remaining up to the wrapped total
    const std::vector<std::uint8_t> bytes = w.take();
    serve::WireReader r(bytes);
    EXPECT_THROW((void)r.csr(), serve::WireFormatError);
  }
  // Same wrap reached through the rowptr term: nrows = 2^32-1 puts 2^35
  // rowptr bytes in the total and 12*nnz tips it to 2^64 + 4.
  {
    serve::WireWriter w;
    w.u32(0xFFFFFFFFu);  // nrows
    w.u32(1);            // ncols
    w.u64(1537228669945817771ull);
    w.u64(0);  // 8 bytes remaining >= the wrapped total of 4
    const std::vector<std::uint8_t> bytes = w.take();
    serve::WireReader r(bytes);
    EXPECT_THROW((void)r.csr(), serve::WireFormatError);
  }
}

// Regression: a payload that does not fit the u32 frame-length field
// must throw — silently truncating the length desyncs the stream.  The
// check precedes every send and every payload access, so the span's
// (deliberately lying) extent is never dereferenced and no byte leaks
// onto the wire.
TEST(ServeProtocol, OversizedPayloadThrowsBeforeAnyByteIsSent) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::uint8_t byte = 0;
  const std::span<const std::uint8_t> oversized(&byte, std::size_t{1} << 32);
  EXPECT_THROW(serve::write_frame(fds[0], oversized),
               serve::FrameTooLargeError);
  std::uint8_t probe = 0;
  EXPECT_EQ(::recv(fds[1], &probe, 1, MSG_DONTWAIT), -1);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeProtocol, TrailingBytesAreAProtocolViolation) {
  std::vector<std::uint8_t> bytes = serve::encode_ping();
  bytes.push_back(0xAB);
  serve::WireReader r(bytes);
  (void)r.u8();
  EXPECT_THROW(r.expect_done(), serve::WireFormatError);
}

// ---- registry unit tests --------------------------------------------------

TEST(ServeRegistry, UploadUpdateReleaseLifecycle) {
  serve::MatrixRegistry reg;
  const mtx::CsrMatrix a = testutil::exact_er(30, 30, 3.0, 95);
  const std::uint64_t h = reg.upload(a);
  ASSERT_NE(reg.get(h), nullptr);
  EXPECT_TRUE(mtx::equal_exact(*reg.get(h), a));

  // Values-only refresh is copy-on-write: a reader holding the old
  // snapshot keeps it.
  const auto old_snapshot = reg.get(h);
  mtx::CsrMatrix a2 = a;
  for (value_t& v : a2.vals) v += 1.0;
  EXPECT_TRUE(reg.update_values(h, a2));
  EXPECT_TRUE(mtx::equal_exact(*reg.get(h), a2));
  EXPECT_TRUE(mtx::equal_exact(*old_snapshot, a));

  // Structure drift is rejected, unknown handles report false.
  const mtx::CsrMatrix other = testutil::exact_er(30, 30, 3.0, 96);
  EXPECT_THROW((void)reg.update_values(h, other), std::invalid_argument);
  EXPECT_FALSE(reg.update_values(h + 100, a2));

  EXPECT_TRUE(reg.release(h));
  EXPECT_EQ(reg.get(h), nullptr);
  EXPECT_FALSE(reg.release(h));
  // Handles are never reused.
  EXPECT_GT(reg.upload(a), h);
}

// Regression: colids are frozen structure too.  An "update" that keeps
// the dims and per-row occupancy but swaps in different column ids must
// be rejected — consumers trust registry entries as validated-at-upload,
// so an update may never introduce ids that validation did not see.
TEST(ServeRegistry, UpdateValuesRejectsChangedColids) {
  serve::MatrixRegistry reg;
  mtx::CsrMatrix a;
  a.nrows = 2;
  a.ncols = 4;
  a.rowptr = {0, 2, 3};
  a.colids = {0, 2, 1};
  a.vals = {1.0, 2.0, 3.0};
  const std::uint64_t h = reg.upload(a);

  mtx::CsrMatrix same_occupancy = a;
  same_occupancy.colids = {0, 3, 1};  // same per-row counts, new column
  EXPECT_THROW((void)reg.update_values(h, same_occupancy),
               std::invalid_argument);
  EXPECT_TRUE(mtx::equal_exact(*reg.get(h), a));
}

// ---- shard router: bit-identity across grids and semirings ----------------

// The k-dimension is never split, so every tile preserves each output
// entry's accumulation order — the sharded product must be bit-identical
// (equal_exact, not tolerance) to a single executor for every grid and
// semiring, in both the Gustavson and PB kernels.
TEST(ServeShard, TiledRouteIsBitIdenticalAcrossGridsAndSemirings) {
  const mtx::CsrMatrix a = testutil::exact_er(210, 170, 5.0, 97);
  const mtx::CsrMatrix b = testutil::exact_er(170, 190, 5.0, 98);
  const SpGemmProblem p = SpGemmProblem::multiply(a, b);

  for (const char* algo : {"heap", "pb"}) {
    for (const char* semiring :
         {"plus_times", "min_plus", "max_min", "bool_or_and"}) {
      SpGemmOp op;
      op.algo = algo;
      op.semiring = semiring;
      SpGemmExecutor single;
      const mtx::CsrMatrix ref = single.run(p, op);
      for (const auto [rows, cols] :
           {std::pair{1, 2}, {2, 1}, {2, 2}, {3, 2}}) {
        serve::ShardOptions so;
        so.rows = rows;
        so.cols = cols;
        so.pin_numa = false;
        serve::ShardRouter router(so);
        const mtx::CsrMatrix c = router.run(p, op);
        EXPECT_TRUE(mtx::equal_exact(c, ref))
            << algo << " x " << semiring << " on " << rows << "x" << cols;
      }
    }
  }
}

TEST(ServeShard, MaskedAndComplementedOpsShardIdentically) {
  const mtx::CsrMatrix a = testutil::exact_er(160, 160, 5.0, 99);
  const mtx::CsrMatrix mask = testutil::exact_er(160, 160, 3.0, 100);
  const SpGemmProblem p = SpGemmProblem::square(a);

  for (const bool complement : {false, true}) {
    SpGemmOp op;
    op.mask = &mask;
    op.complement = complement;
    SpGemmExecutor single;
    const mtx::CsrMatrix ref = single.run(p, op);
    serve::ShardOptions so;
    so.rows = 2;
    so.cols = 2;
    so.pin_numa = false;
    serve::ShardRouter router(so);
    EXPECT_TRUE(mtx::equal_exact(router.run(p, op), ref))
        << "complement=" << complement;
  }
}

TEST(ServeShard, ValueOnlyFastPathWorksPerTile) {
  const mtx::CsrMatrix a = testutil::exact_er(150, 150, 5.0, 101);
  SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmOp op;
  op.algo = "pb";

  serve::ShardOptions so;
  so.rows = 2;
  so.cols = 2;
  so.pin_numa = false;
  serve::ShardRouter router(so);
  (void)router.run(p, op);  // plant per-tile plans

  mtx::CsrMatrix a2 = a;
  for (value_t& v : a2.vals) v *= 3.0;
  SpGemmProblem p2 = SpGemmProblem::square(a2);
  RunInfo info;
  const mtx::CsrMatrix c = router.run_values_updated(p2, op, {}, &info);
  EXPECT_TRUE(info.value_only);

  SpGemmExecutor single;
  (void)single.run(p2, op);
  EXPECT_TRUE(mtx::equal_exact(c, single.run_values_updated(p2, op)));
  EXPECT_GE(router.aggregate_stats().value_only_hits, 4u);
}

TEST(ServeShard, StatsAggregateAcrossTheGrid) {
  const mtx::CsrMatrix a = testutil::exact_er(120, 120, 4.0, 102);
  const SpGemmProblem p = SpGemmProblem::square(a);
  serve::ShardOptions so;
  so.rows = 2;
  so.cols = 3;
  so.pin_numa = false;
  serve::ShardRouter router(so);
  (void)router.run(p, SpGemmOp{});
  (void)router.run(p, SpGemmOp{});
  const std::vector<ExecutorStats> per = router.shard_stats();
  ASSERT_EQ(per.size(), 6u);
  std::uint64_t executes = 0;
  for (const ExecutorStats& s : per) executes += s.executes;
  EXPECT_EQ(executes, 12u);  // 6 tiles x 2 runs
  EXPECT_EQ(router.aggregate_stats().executes, 12u);
  EXPECT_EQ(router.aggregate_stats().cache_hits, 6u);
}

// ---- end-to-end over the socket -------------------------------------------

TEST(ServeEndToEnd, InlineMultiplyMatchesTheLocalExecutor) {
  TestServer ts;
  serve::Client cli(ts.path());
  cli.ping();

  const mtx::CsrMatrix a = testutil::exact_er(220, 180, 5.0, 103);
  const mtx::CsrMatrix b = testutil::exact_er(180, 200, 5.0, 104);
  for (const char* semiring : {"plus_times", "min_plus", "bool_or_and"}) {
    serve::MultiplyOptions mo;
    mo.algo = "pb";
    mo.semiring = semiring;
    SpGemmOp op;
    op.algo = "pb";
    op.semiring = semiring;
    EXPECT_TRUE(mtx::equal_exact(cli.multiply(a, b, mo), local_run(a, b, op)))
        << semiring;
  }
}

TEST(ServeEndToEnd, MaskedMultiplyCrossesTheWire) {
  TestServer ts;
  serve::Client cli(ts.path());
  const mtx::CsrMatrix a = testutil::exact_er(140, 140, 5.0, 105);
  const mtx::CsrMatrix mask = testutil::exact_er(140, 140, 2.0, 106);

  serve::MultiplyOptions mo;
  mo.mask = &mask;
  SpGemmOp op;
  op.mask = &mask;
  EXPECT_TRUE(mtx::equal_exact(cli.multiply(a, a, mo), local_run(a, a, op)));

  mo.complement = true;
  op.complement = true;
  EXPECT_TRUE(mtx::equal_exact(cli.multiply(a, a, mo), local_run(a, a, op)));
}

// A post-op crosses the wire and runs fused server-side: the reply is
// bit-identical to the local executor under the same descriptor, and
// strictly smaller than the unpruned product.
TEST(ServeEndToEnd, PostOpMultiplyIsPrunedServerSide) {
  TestServer ts;
  serve::Client cli(ts.path());
  const mtx::CsrMatrix a = testutil::exact_er(160, 160, 5.0, 120);

  serve::MultiplyOptions mo;
  mo.algo = "pb";
  mo.post_op = parse_post_op("prune:4,topk:8");
  SpGemmOp op;
  op.algo = "pb";
  op.post_op = mo.post_op;
  const mtx::CsrMatrix pruned = cli.multiply(a, a, mo);
  EXPECT_TRUE(mtx::equal_exact(pruned, local_run(a, a, op)));

  SpGemmOp plain;
  plain.algo = "pb";
  EXPECT_LT(pruned.vals.size(), local_run(a, a, plain).vals.size());
}

// A post-op the server cannot honor (value-free semiring) comes back as
// the typed kUnsupported code — and the connection keeps serving.
TEST(ServeErrors, PostOpOnAValueFreeSemiringIsKUnsupported) {
  TestServer ts;
  serve::Client cli(ts.path());
  const mtx::CsrMatrix a = testutil::exact_er(80, 80, 3.0, 121);

  serve::MultiplyOptions mo;
  mo.semiring = "bool_or_and";
  mo.post_op.top_k = 4;
  try {
    (void)cli.multiply(a, a, mo);
    FAIL() << "post-op on bool_or_and must be rejected";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::WireStatus::kUnsupported);
  }
  cli.ping();
}

// The acceptance bar: a >= 2x2 tile-sharded route, driven through the
// real socket, bit-identical to a direct single-executor run.
TEST(ServeEndToEnd, ShardedServerIsBitIdenticalToSingleExecutor) {
  serve::ServeOptions so;
  so.shard_rows = 2;
  so.shard_cols = 2;
  TestServer ts(std::move(so));
  serve::Client cli(ts.path());

  const mtx::CsrMatrix a = testutil::exact_er(260, 260, 6.0, 107);
  serve::MultiplyOptions mo;
  mo.algo = "pb";
  SpGemmOp op;
  op.algo = "pb";
  const mtx::CsrMatrix ref = local_run(a, a, op);

  EXPECT_TRUE(mtx::equal_exact(cli.multiply(a, a, mo), ref));

  const std::uint64_t h = cli.upload(a);
  EXPECT_TRUE(mtx::equal_exact(cli.square(h, mo), ref));

  // Telemetry reports the full grid.
  const std::string telemetry = cli.telemetry();
  EXPECT_NE(telemetry.find("\"shard_rows\":2"), std::string::npos);
  EXPECT_NE(telemetry.find("\"shards\""), std::string::npos);
}

TEST(ServeEndToEnd, HandleReuseHitsThePlanCacheAndValueOnlyPath) {
  TestServer ts;
  serve::Client cli(ts.path());
  const mtx::CsrMatrix a = testutil::exact_er(200, 200, 5.0, 108);

  serve::MultiplyOptions mo;
  mo.algo = "pb";
  SpGemmOp op;
  op.algo = "pb";

  const std::uint64_t h = cli.upload(a);
  serve::MultiplyInfo info;
  const mtx::CsrMatrix c1 = cli.square(h, mo, &info);
  EXPECT_FALSE(info.cache_hit);
  const mtx::CsrMatrix c2 = cli.square(h, mo, &info);
  EXPECT_TRUE(info.cache_hit);
  EXPECT_TRUE(mtx::equal_exact(c1, c2));

  // Values-only refresh by handle: the wire reports the fast path fired
  // and the numbers match the executor's own fast path.
  mtx::CsrMatrix a2 = a;
  for (value_t& v : a2.vals) v *= 2.0;
  cli.update_values(h, a2);
  mo.values_only = true;
  const mtx::CsrMatrix c3 = cli.square(h, mo, &info);
  EXPECT_TRUE(info.value_only);

  SpGemmExecutor local;
  SpGemmProblem p2 = SpGemmProblem::square(a2);
  (void)local.run(SpGemmProblem::square(a), op);
  EXPECT_TRUE(mtx::equal_exact(c3, local.run_values_updated(p2, op)));

  // After release the handle is gone, with the typed code.
  cli.release(h);
  try {
    (void)cli.square(h, mo);
    FAIL() << "released handle still multiplied";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::WireStatus::kUnknownHandle);
  }
}

// ---- typed error codes over the wire --------------------------------------

TEST(ServeErrors, DeadlineExpiryArrivesAsKDeadline) {
  TestServer ts;
  serve::Client cli(ts.path());
  const mtx::CsrMatrix a = testutil::exact_er(300, 300, 6.0, 109);
  const std::uint64_t h = cli.upload(a);

  serve::MultiplyOptions mo;
  mo.algo = "pb";
  const mtx::CsrMatrix ref = cli.square(h, mo);  // plan cached, no deadline

  FaultGuard guard;
  FaultInjector::slow_bin(20);  // make the run reliably slower than 1 ms
  mo.deadline_ms = 1;
  try {
    (void)cli.square(h, mo);
    FAIL() << "1 ms deadline on a forced-slow run did not expire";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::WireStatus::kDeadline);
  }
  FaultInjector::reset();

  // The connection and the daemon survived; the next run is clean.
  mo.deadline_ms = 0;
  EXPECT_TRUE(mtx::equal_exact(cli.square(h, mo), ref));
}

TEST(ServeErrors, AdmissionBudgetRejectsWithKMemoryBudget) {
  serve::ServeOptions so;
  so.admission_budget_bytes = 1;  // nothing real fits
  TestServer ts(std::move(so));
  serve::Client cli(ts.path());

  const mtx::CsrMatrix a = testutil::exact_er(100, 100, 4.0, 110);
  try {
    (void)cli.multiply(a, a);
    FAIL() << "admission budget of 1 byte admitted a multiply";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::WireStatus::kMemoryBudget);
  }
  EXPECT_EQ(ts.server->stats().shed, 1u);
  // Non-multiply traffic is not shed.
  cli.ping();
}

TEST(ServeErrors, InvalidOperandsRejectWithKValidation) {
  TestServer ts;
  serve::Client cli(ts.path());
  const mtx::CsrMatrix bad = decodable_but_invalid_csr();
  const mtx::CsrMatrix good = testutil::exact_er(50, 50, 3.0, 111);

  // Upload validates before registering.
  try {
    (void)cli.upload(bad);
    FAIL() << "out-of-range colids uploaded";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::WireStatus::kValidation);
  }

  // The server forces validate_inputs on the executor for inline
  // operands (wire ingress is untrusted even from a well-formed frame):
  // bad×bad is wire-consistent and dimension-compatible, but its
  // out-of-range colids must be caught before any kernel touches them.
  try {
    (void)cli.multiply(bad, bad);
    FAIL() << "invalid inline operand multiplied";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::WireStatus::kValidation);
  }

  // Dimension mismatch is a validation failure, not a crash.
  const mtx::CsrMatrix wide = testutil::exact_er(50, 60, 3.0, 112);
  try {
    (void)cli.multiply(wide, good);
    FAIL() << "inner-dimension mismatch multiplied";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::WireStatus::kValidation);
  }

  // Structure drift on update_values -> kValidation; bogus handle ->
  // kUnknownHandle.
  const std::uint64_t h = cli.upload(good);
  try {
    cli.update_values(h, wide);
    FAIL() << "structure drift accepted";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::WireStatus::kValidation);
  }
  try {
    cli.update_values(h + 999, good);
    FAIL() << "unknown handle updated";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::WireStatus::kUnknownHandle);
  }
}

// Regression: kUpdateValues is wire ingress exactly like kUpload — a
// matrix whose dims and rowptr match the registered one but whose colids
// are out of range must be stopped at the handler with kValidation,
// never enter the registry, and leave the handle multiplying with the
// original validated operand.
TEST(ServeErrors, UpdateValuesCannotInjectInvalidColids) {
  TestServer ts;
  serve::Client cli(ts.path());
  const mtx::CsrMatrix a = testutil::exact_er(60, 60, 4.0, 119);
  const std::uint64_t h = cli.upload(a);
  const mtx::CsrMatrix ref = cli.square(h);

  mtx::CsrMatrix poisoned = a;
  ASSERT_FALSE(poisoned.colids.empty());
  poisoned.colids[0] = poisoned.ncols + 7;
  try {
    cli.update_values(h, poisoned);
    FAIL() << "out-of-range colids entered the registry";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::WireStatus::kValidation);
  }
  // The registry still serves the validated original, bit-identically.
  EXPECT_TRUE(mtx::equal_exact(cli.square(h), ref));
}

TEST(ServeErrors, UnknownAlgoRejectsWithKUnsupported) {
  TestServer ts;
  serve::Client cli(ts.path());
  const mtx::CsrMatrix a = testutil::exact_er(40, 40, 3.0, 113);
  serve::MultiplyOptions mo;
  mo.algo = "no_such_kernel";
  try {
    (void)cli.multiply(a, a, mo);
    FAIL() << "unknown algo ran";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::WireStatus::kUnsupported);
  }
  cli.ping();  // the connection survived the rejection
}

// Shedding: with max_inflight = 1, a multiply arriving while another is
// being served is rejected with kOverloaded before any work.
TEST(ServeErrors, OverloadShedsWithKOverloaded) {
  serve::ServeOptions so;
  so.max_inflight = 1;
  TestServer ts(std::move(so));

  const mtx::CsrMatrix a = testutil::exact_er(300, 300, 6.0, 114);
  serve::MultiplyOptions mo;
  mo.algo = "pb";

  FaultGuard guard;
  FaultInjector::slow_bin(100);  // hold request 1 in flight

  std::thread first([&] {
    serve::Client c1(ts.path());
    (void)c1.multiply(a, a, mo);  // slow but successful
  });
  // Admission is counted in stats().multiplies before the run starts;
  // wait for it so the second request deterministically overlaps.
  while (ts.server->stats().multiplies < 1) {
    std::this_thread::sleep_for(1ms);
  }

  serve::Client c2(ts.path());
  try {
    (void)c2.multiply(a, a, mo);
    ADD_FAILURE() << "second concurrent multiply was not shed";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::WireStatus::kOverloaded);
  }
  first.join();
  FaultInjector::reset();

  // Capacity freed: the same client's next multiply is served.
  SpGemmOp op;
  op.algo = "pb";
  EXPECT_TRUE(mtx::equal_exact(c2.multiply(a, a, mo), local_run(a, a, op)));
  EXPECT_GE(ts.server->stats().shed, 1u);
}

// ---- hostile framing against the live server ------------------------------

/// A raw (non-Client) connection for speaking garbage at the server.
struct RawConn {
  explicit RawConn(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("RawConn: socket() failed");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw std::runtime_error("RawConn: connect() failed");
    }
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }
  int fd = -1;
};

TEST(ServeHostile, BadMagicGetsKMalformedAndTheDaemonSurvives) {
  TestServer ts;
  {
    RawConn raw(ts.path());
    const std::uint32_t bad_magic = 0xDEADBEEFu;
    const std::uint32_t len = 4;
    ASSERT_EQ(::send(raw.fd, &bad_magic, 4, MSG_NOSIGNAL), 4);
    ASSERT_EQ(::send(raw.fd, &len, 4, MSG_NOSIGNAL), 4);
    // The server answers kMalformed (best effort) and closes.
    std::vector<std::uint8_t> payload;
    try {
      if (serve::read_frame(raw.fd, payload)) {
        ASSERT_GE(payload.size(), 1u);
        EXPECT_EQ(static_cast<serve::WireStatus>(payload[0]),
                  serve::WireStatus::kMalformed);
      }
    } catch (const serve::WireFormatError&) {
      // Equally acceptable: the server hung up without a reply frame.
    }
  }
  EXPECT_GE(ts.server->stats().malformed, 1u);
  // Fresh connections still work.
  serve::Client cli(ts.path());
  cli.ping();
}

TEST(ServeHostile, TruncatedFrameClosesOnlyThatConnection) {
  TestServer ts;
  {
    RawConn raw(ts.path());
    const std::uint32_t magic = serve::kFrameMagic;
    const std::uint32_t len = 1000;  // promise 1000 bytes...
    ASSERT_EQ(::send(raw.fd, &magic, 4, MSG_NOSIGNAL), 4);
    ASSERT_EQ(::send(raw.fd, &len, 4, MSG_NOSIGNAL), 4);
    const std::uint8_t byte = 1;
    ASSERT_EQ(::send(raw.fd, &byte, 1, MSG_NOSIGNAL), 1);
  }  // ...then hang up mid-frame
  // The worker sees EOF mid-frame and drops the connection; the daemon
  // still serves.
  serve::Client cli(ts.path());
  cli.ping();
  const mtx::CsrMatrix a = testutil::exact_er(40, 40, 3.0, 115);
  EXPECT_TRUE(mtx::equal_exact(cli.multiply(a, a), local_run(a, a, {})));
}

TEST(ServeHostile, MalformedPayloadInAValidFrameKeepsTheConnection) {
  TestServer ts;
  RawConn raw(ts.path());
  // A well-framed multiply whose body is garbage: decode throws
  // WireFormatError, the server answers kMalformed on the SAME
  // connection, and the connection keeps working.
  const std::vector<std::uint8_t> junk = {
      static_cast<std::uint8_t>(serve::MsgType::kMultiply), 0xFF, 0xFF};
  serve::write_frame(raw.fd, junk);
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(serve::read_frame(raw.fd, payload));
  ASSERT_GE(payload.size(), 1u);
  EXPECT_EQ(static_cast<serve::WireStatus>(payload[0]),
            serve::WireStatus::kMalformed);

  serve::write_frame(raw.fd, serve::encode_ping());
  ASSERT_TRUE(serve::read_frame(raw.fd, payload));
  ASSERT_GE(payload.size(), 1u);
  EXPECT_EQ(static_cast<serve::WireStatus>(payload[0]),
            serve::WireStatus::kOk);
}

TEST(ServeHostile, UnknownMessageTypeGetsKUnsupported) {
  TestServer ts;
  RawConn raw(ts.path());
  const std::vector<std::uint8_t> unknown = {0x7F};
  serve::write_frame(raw.fd, unknown);
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(serve::read_frame(raw.fd, payload));
  ASSERT_GE(payload.size(), 1u);
  EXPECT_EQ(static_cast<serve::WireStatus>(payload[0]),
            serve::WireStatus::kUnsupported);
}

// ---- injected faults against the live server ------------------------------

// The robustness contract extended over the wire: a fault injected into
// the executor's expand phase fails exactly one request with a typed
// code, and the daemon then serves the SAME multiply bit-identically —
// no poisoned plan cache, no leaked workspace, no dead connection.
TEST(ServeFaults, InjectedFaultFailsOneRequestThenServesIdentically) {
  TestServer ts;
  serve::Client cli(ts.path());
  const mtx::CsrMatrix a = testutil::exact_er(250, 250, 6.0, 116);
  serve::MultiplyOptions mo;
  mo.algo = "pb";
  SpGemmOp op;
  op.algo = "pb";
  const mtx::CsrMatrix ref = local_run(a, a, op);

  FaultGuard guard;
  FaultInjector::throw_at(FaultPoint::kExpand);
  try {
    (void)cli.multiply(a, a, mo);
    FAIL() << "armed expand fault did not surface";
  } catch (const serve::ServeError& e) {
    EXPECT_EQ(e.status(), serve::WireStatus::kInternal);
  }
  FaultInjector::reset();

  EXPECT_TRUE(mtx::equal_exact(cli.multiply(a, a, mo), ref));
}

// Same shape for an injected allocation fault: the executor degrades
// gracefully (row-wise fallback), so the request SUCCEEDS with the exact
// product — the wire just reports the degraded flag.
TEST(ServeFaults, InjectedAllocFaultDegradesButStillAnswersExactly) {
  TestServer ts;
  serve::Client cli(ts.path());
  const mtx::CsrMatrix a = testutil::exact_er(250, 250, 6.0, 117);
  serve::MultiplyOptions mo;
  mo.algo = "pb";
  SpGemmOp op;
  op.algo = "pb";
  const mtx::CsrMatrix ref = local_run(a, a, op);

  FaultGuard guard;
  FaultInjector::fail_alloc_after(0);
  serve::MultiplyInfo info;
  const mtx::CsrMatrix c = cli.multiply(a, a, mo, &info);
  FaultInjector::reset();
  EXPECT_TRUE(mtx::equal_exact(c, ref));
  EXPECT_TRUE(info.degraded);

  EXPECT_TRUE(mtx::equal_exact(cli.multiply(a, a, mo), ref));
}

// ---- drain ----------------------------------------------------------------

TEST(ServeDrain, StopFinishesCleanlyWithConnectionsOpen) {
  TestServer ts;
  serve::Client cli(ts.path());
  cli.ping();
  const mtx::CsrMatrix a = testutil::exact_er(60, 60, 3.0, 118);
  (void)cli.multiply(a, a);

  ts.server->stop();  // idle connection open: stop() must not hang
  EXPECT_FALSE(ts.server->running());

  // The drained server refuses new work...
  EXPECT_THROW(
      {
        serve::Client late(ts.path());
        late.ping();
      },
      std::runtime_error);

  // ...and stop() is idempotent.
  ts.server->stop();
  EXPECT_EQ(ts.server->stats().connections, 1u);
}

// Regression: a connection still parked in the accept queue when stop()
// runs (every worker busy) must get SHUT_RD along with the live ones —
// otherwise the worker that pops it after the sentinels sits in recv()
// on an idle client forever and stop() never joins.
TEST(ServeDrain, StopDoesNotHangOnQueuedIdleConnections) {
  serve::ServeOptions so;
  so.worker_threads = 1;
  TestServer ts(std::move(so));

  serve::Client busy(ts.path());
  busy.ping();  // the only worker now owns this connection
  serve::Client queued(ts.path());  // accepted, waiting in the queue
  while (ts.server->stats().connections < 2) {
    std::this_thread::sleep_for(1ms);
  }
  ts.server->stop();  // must return, not park in recv() forever
  EXPECT_FALSE(ts.server->running());
}

}  // namespace
}  // namespace pbs
