// Randomized pipeline fuzzing: chains of library operations (SpGEMM over a
// random (algorithm × semiring) pair + element-wise ops + conversions)
// applied to random matrices of random shape/density, mirrored
// step-by-step against a dense implementation.  SpGEMM steps alternate
// randomly between fresh multiplies and the plan/execute path (plan once,
// execute twice, outputs must be identical); fresh steps through the PB
// pipeline additionally randomize the PbConfig (bin count, local-bin
// width, binning policy, streaming stores) with validate=true, so the
// pipeline's internal invariant checks run under fuzzed layouts.  Catches
// interaction bugs that single-op tests cannot (pattern/value coupling,
// empty intermediate results, shape propagation, semiring/config
// coupling).
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "pb/pb_spgemm.hpp"
#include "spgemm/masked.hpp"
#include "spgemm/plan.hpp"
#include "spgemm/registry.hpp"
#include "spgemm/semiring.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

using Dense = std::vector<std::vector<value_t>>;

Dense to_dense(const mtx::CsrMatrix& a) {
  Dense d(static_cast<std::size_t>(a.nrows),
          std::vector<value_t>(static_cast<std::size_t>(a.ncols), 0.0));
  for (index_t r = 0; r < a.nrows; ++r) {
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i)
      d[r][a.colids[i]] = a.vals[i];
  }
  return d;
}

// Dense mirror of the sparse semiring product.  0.0 means "absent" here:
// the fuzz chain keeps every stored value strictly positive (small
// integers, re-normalized after each multiply), so structural presence and
// a nonzero dense cell coincide and S-accumulation over present operands
// mirrors the sparse kernels exactly.
template <typename S>
Dense dense_mult(const Dense& a, const Dense& b) {
  Dense c(a.size(), std::vector<value_t>(b[0].size(), 0.0));
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b[0].size(); ++j) {
      bool any = false;
      value_t acc = S::zero();
      for (std::size_t k = 0; k < b.size(); ++k) {
        if (a[i][k] == 0.0 || b[k][j] == 0.0) continue;
        const value_t product = S::mul(a[i][k], b[k][j]);
        acc = any ? S::add(acc, product) : product;
        any = true;
      }
      if (any) c[i][j] = acc;
    }
  }
  return c;
}

void expect_dense_eq(const mtx::CsrMatrix& sparse, const Dense& dense,
                     int step) {
  ASSERT_TRUE(sparse.valid()) << "step " << step;
  const Dense got = to_dense(sparse);
  for (std::size_t r = 0; r < dense.size(); ++r) {
    for (std::size_t c = 0; c < dense[r].size(); ++c) {
      ASSERT_NEAR(got[r][c], dense[r][c], 1e-9 * (1.0 + std::abs(dense[r][c])))
          << "step " << step << " at (" << r << "," << c << ")";
    }
  }
}

// A random PbConfig: bin count, local-bin width, policy and store path all
// vary; validate=true arms the pipeline's internal invariant checks.
pb::PbConfig random_pb_config(mtx::SplitMix64& rng) {
  pb::PbConfig cfg;
  const int nbins_choices[] = {0, 1, 2, 8, 64};
  cfg.nbins = nbins_choices[rng.next_below(5)];
  const int width_choices[] = {16, 64, 512};
  cfg.local_bin_bytes = width_choices[rng.next_below(3)];
  const pb::BinPolicy policies[] = {pb::BinPolicy::kRange,
                                    pb::BinPolicy::kModulo,
                                    pb::BinPolicy::kAdaptive};
  cfg.policy = policies[rng.next_below(3)];
  // kKeyOnly is legal here for every semiring: requests are preferences,
  // so valued semirings fall back to the auto choice.  kF32 stays out of
  // the random chain — hadamard/add steps can grow values past the f32
  // exact-integer range (2^24) between multiplies; the fresh-input fuzzes
  // (ScheduleFuzz, PbFormatF32) cover it on bounded values instead.
  const pb::FormatPolicy formats[] = {
      pb::FormatPolicy::kAuto, pb::FormatPolicy::kWide,
      pb::FormatPolicy::kNarrow, pb::FormatPolicy::kKeyOnly};
  cfg.format = formats[rng.next_below(4)];
  cfg.streaming_stores = rng.next_below(2) == 0;
  cfg.validate = true;
  return cfg;
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, RandomOpChainMatchesDenseMirror) {
  mtx::SplitMix64 rng(GetParam());
  // Shape and density are themselves fuzzed.
  const auto n = static_cast<index_t>(24 + rng.next_below(40));
  const double density = 2.0 + static_cast<double>(rng.next_below(5));

  mtx::CsrMatrix m = testutil::exact_er(n, n, density, GetParam() + 1000);
  Dense d = to_dense(m);

  const std::vector<const char*> algos{"pb", "heap", "hash", "spa", "esc"};
  for (int step = 0; step < 12; ++step) {
    switch (rng.next_below(8)) {
      case 0: {  // SpGEMM square: random algorithm × random semiring
        const char* algo = algos[rng.next_below(algos.size())];
        // Only pb/heap/spa register non-numeric semirings (see registry).
        const bool generalized = algorithm(algo).semirings.size() > 1;
        const std::string semiring =
            generalized ? semiring_names()[rng.next_below(
                              semiring_names().size())]
                        : PlusTimes::name;
        const SpGemmProblem problem = SpGemmProblem::square(m);
        // Half the steps go through a fresh multiply, half through the
        // plan/execute path (plan once, execute twice — the second
        // execution reuses analysis + workspace and must be identical).
        const bool via_plan = rng.next_below(2) == 0;
        dispatch_semiring(semiring, [&]<typename S>() {
          if (via_plan) {
            PlanOptions opts;
            opts.algo = algo;
            opts.semiring = semiring;
            SpGemmPlan plan = make_plan(problem, opts);
            const mtx::CsrMatrix once = plan.execute(problem);
            m = plan.execute(problem);
            ASSERT_TRUE(mtx::equal_exact(once, m))
                << "plan re-execution diverged at step " << step;
            ASSERT_EQ(plan.telemetry().replans, 0u);
          } else if (std::string(algo) == "pb") {
            // Drive the pipeline directly so the PbConfig is fuzzed too.
            m = pb::pb_spgemm<S>(problem.a_csc, problem.b_csr,
                                 random_pb_config(rng))
                    .c;
          } else {
            m = semiring_algorithm(algo, semiring)(problem);
          }
          d = dense_mult<S>(d, d);
        });
        // The semiring product itself must match before re-normalization.
        expect_dense_eq(m, d, step);
        // Keep magnitudes bounded so the dense mirror stays comparable:
        // re-normalize to the pattern (element_power(x, 0) maps every
        // stored value, including stored zeros, to 1 — mirror by taking
        // the pattern of the normalized matrix, not by mapping d's cells).
        if (mtx::value_sum(mtx::to_pattern(m)) > 0) {
          m = mtx::element_power(m, 0.0);  // all stored values -> 1
          d = to_dense(mtx::to_pattern(m));
        }
        break;
      }
      case 1: {  // transpose
        m = mtx::transpose(m);
        Dense t(d[0].size(), std::vector<value_t>(d.size(), 0.0));
        for (std::size_t r = 0; r < d.size(); ++r) {
          for (std::size_t c = 0; c < d[r].size(); ++c) t[c][r] = d[r][c];
        }
        d = std::move(t);
        break;
      }
      case 2: {  // add a fresh random matrix
        const mtx::CsrMatrix other = testutil::exact_er(
            m.nrows, m.ncols, 3.0, GetParam() + 2000 + step);
        const Dense od = to_dense(other);
        m = mtx::add(m, other);
        for (std::size_t r = 0; r < d.size(); ++r) {
          for (std::size_t c = 0; c < d[r].size(); ++c) d[r][c] += od[r][c];
        }
        break;
      }
      case 3: {  // hadamard with a fresh random matrix
        const mtx::CsrMatrix other = testutil::exact_er(
            m.nrows, m.ncols, 6.0, GetParam() + 3000 + step);
        const Dense od = to_dense(other);
        m = mtx::hadamard(m, other);
        for (std::size_t r = 0; r < d.size(); ++r) {
          for (std::size_t c = 0; c < d[r].size(); ++c) d[r][c] *= od[r][c];
        }
        break;
      }
      case 4: {  // prune small values
        m = mtx::prune(m, 2.0);
        for (auto& row : d) {
          for (auto& v : row) {
            if (std::abs(v) < 2.0) v = 0.0;
          }
        }
        break;
      }
      case 5: {  // drop diagonal (square only)
        if (m.nrows == m.ncols) {
          m = mtx::drop_diagonal(m);
          for (std::size_t i = 0; i < d.size(); ++i) d[i][i] = 0.0;
        }
        break;
      }
      case 6: {  // round-trip through COO + CSC (must be lossless)
        m = mtx::csc_to_csr(mtx::csr_to_csc(m));
        break;
      }
      case 7: {  // masked SpGEMM square through the descriptor path
        if (m.nrows != m.ncols) break;
        const char* masked_algos[] = {"pb", "heap", "hash", "spa"};
        const char* algo = masked_algos[rng.next_below(4)];
        const std::string semiring =
            semiring_names()[rng.next_below(semiring_names().size())];
        const bool complement = rng.next_below(2) == 0;
        const mtx::CsrMatrix mask = testutil::exact_er(
            m.nrows, m.ncols, 1.0 + static_cast<double>(rng.next_below(6)),
            GetParam() + 4000 + static_cast<std::uint64_t>(step));
        const SpGemmProblem problem = SpGemmProblem::square(m);
        SpGemmOp op;
        op.algo = algo;
        op.semiring = semiring;
        op.mask = &mask;
        op.complement = complement;
        SpGemmPlan plan = make_plan(problem, op);
        m = plan.execute(problem);
        dispatch_semiring(semiring,
                          [&]<typename S>() { d = dense_mult<S>(d, d); });
        // Mirror the mask: zero every dense cell whose membership in the
        // mask pattern does not match the polarity.
        for (index_t r = 0; r < mask.nrows; ++r) {
          std::vector<bool> in_row(static_cast<std::size_t>(mask.ncols), false);
          for (const index_t c : mask.row_cols(r)) in_row[c] = true;
          for (index_t c = 0; c < mask.ncols; ++c) {
            if (in_row[c] == complement) d[r][c] = 0.0;
          }
        }
        expect_dense_eq(m, d, step);
        // Re-normalize to the pattern (same bounding trick as case 0).
        if (mtx::value_sum(mtx::to_pattern(m)) > 0) {
          m = mtx::element_power(m, 0.0);
          d = to_dense(mtx::to_pattern(m));
        }
        break;
      }
    }
    expect_dense_eq(m, d, step);
    if (m.nnz() == 0) break;  // chain died out; nothing left to fuzz
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

// --- Schedule equivalence -------------------------------------------------
//
// The pipelined per-bin dataflow (PbSchedule::kPipeline) reorders WHEN each
// bin is sorted/compressed relative to the expand phase and WHO runs it
// (work stealing), but every bin still goes through the identical
// sort → compress → count → scatter sequence on the identical tuple data.
// The output must therefore be bit-identical to the barrier schedule —
// not approximately equal: same rowptr, same colids, same vals, for every
// semiring, both tuple formats, and every descriptor variant (plain,
// masked, complemented mask, accumulate).  Values are small exact
// integers (exact_er), so even floating semiring adds are exact and any
// divergence is a scheduling bug, not roundoff.
class ScheduleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleFuzz, PipelineBitIdenticalToBarrierAcrossDescriptors) {
  mtx::SplitMix64 rng(GetParam());
  const auto n = static_cast<index_t>(48 + rng.next_below(64));
  const double density = 3.0 + static_cast<double>(rng.next_below(4));
  const mtx::CsrMatrix a = testutil::exact_er(n, n, density, GetParam() + 500);
  const mtx::CsrMatrix mask = testutil::exact_er(n, n, 2.0, GetParam() + 600);
  const mtx::CsrMatrix acc = testutil::exact_er(n, n, 2.0, GetParam() + 700);
  const SpGemmProblem problem = SpGemmProblem::square(a);

  // All four stream formats: keyonly engages for bool_or_and (valued
  // semirings fall back to the auto choice — still a schedule-identity
  // check), f32 is exact on these small-integer values.
  const pb::FormatPolicy formats[] = {
      pb::FormatPolicy::kWide, pb::FormatPolicy::kNarrow,
      pb::FormatPolicy::kKeyOnly, pb::FormatPolicy::kF32};
  enum Variant { kPlain, kMasked, kComplement, kAccumulate, kVariants };
  for (const std::string& semiring : semiring_names()) {
    for (const pb::FormatPolicy fmt : formats) {
      for (int variant = 0; variant < kVariants; ++variant) {
        const auto run = [&](pb::PbSchedule sched) {
          SpGemmOp op;
          op.algo = "pb";
          op.semiring = semiring;
          op.pb.format = fmt;
          op.pb.schedule = sched;
          op.pb.validate = true;  // arm both schedules' invariant checks
          if (variant == kMasked || variant == kComplement) {
            op.mask = &mask;
            op.complement = variant == kComplement;
          }
          op.accumulate = variant == kAccumulate;
          SpGemmPlan plan = make_plan(problem, op);
          return variant == kAccumulate ? plan.execute(problem, acc)
                                        : plan.execute(problem);
        };
        const mtx::CsrMatrix barrier = run(pb::PbSchedule::kBarrier);
        const mtx::CsrMatrix pipeline = run(pb::PbSchedule::kPipeline);
        ASSERT_TRUE(pipeline.valid());
        ASSERT_TRUE(mtx::equal_exact(barrier, pipeline))
            << "schedules diverged: semiring " << semiring << ", format "
            << static_cast<int>(fmt) << ", variant " << variant;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace pbs
