// Randomized pipeline fuzzing: chains of library operations (SpGEMM +
// element-wise ops + conversions) applied to random matrices, mirrored
// step-by-step against a dense implementation.  Catches interaction bugs
// that single-op tests cannot (pattern/value coupling, empty intermediate
// results, shape propagation).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "spgemm/registry.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

using Dense = std::vector<std::vector<value_t>>;

Dense to_dense(const mtx::CsrMatrix& a) {
  Dense d(static_cast<std::size_t>(a.nrows),
          std::vector<value_t>(static_cast<std::size_t>(a.ncols), 0.0));
  for (index_t r = 0; r < a.nrows; ++r) {
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i)
      d[r][a.colids[i]] = a.vals[i];
  }
  return d;
}

Dense dense_mult(const Dense& a, const Dense& b) {
  Dense c(a.size(), std::vector<value_t>(b[0].size(), 0.0));
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t k = 0; k < b.size(); ++k) {
      if (a[i][k] == 0.0) continue;
      for (std::size_t j = 0; j < b[0].size(); ++j)
        c[i][j] += a[i][k] * b[k][j];
    }
  }
  return c;
}

void expect_dense_eq(const mtx::CsrMatrix& sparse, const Dense& dense,
                     int step) {
  ASSERT_TRUE(sparse.valid()) << "step " << step;
  const Dense got = to_dense(sparse);
  for (std::size_t r = 0; r < dense.size(); ++r) {
    for (std::size_t c = 0; c < dense[r].size(); ++c) {
      ASSERT_NEAR(got[r][c], dense[r][c], 1e-9 * (1.0 + std::abs(dense[r][c])))
          << "step " << step << " at (" << r << "," << c << ")";
    }
  }
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, RandomOpChainMatchesDenseMirror) {
  mtx::SplitMix64 rng(GetParam());
  const index_t n = 40;

  mtx::CsrMatrix m = testutil::exact_er(n, n, 4.0, GetParam() + 1000);
  Dense d = to_dense(m);

  const std::vector<const char*> algos{"pb", "heap", "hash", "spa", "esc"};
  for (int step = 0; step < 12; ++step) {
    switch (rng.next_below(7)) {
      case 0: {  // SpGEMM square with a random algorithm
        const char* algo = algos[rng.next_below(algos.size())];
        m = algorithm(algo).fn(SpGemmProblem::square(m));
        d = dense_mult(d, d);
        // Keep magnitudes bounded so the dense mirror stays comparable.
        if (mtx::value_sum(mtx::to_pattern(m)) > 0) {
          m = mtx::element_power(m, 0.0);  // all stored values -> 1
          for (auto& row : d) {
            for (auto& v : row) v = v != 0.0 ? 1.0 : 0.0;
          }
          // element_power(x, 0) maps 0-valued stored entries to 1 as well;
          // mirror by flagging pattern positions instead.
          const Dense pat = to_dense(mtx::to_pattern(m));
          d = pat;
        }
        break;
      }
      case 1: {  // transpose
        m = mtx::transpose(m);
        Dense t(d[0].size(), std::vector<value_t>(d.size(), 0.0));
        for (std::size_t r = 0; r < d.size(); ++r) {
          for (std::size_t c = 0; c < d[r].size(); ++c) t[c][r] = d[r][c];
        }
        d = std::move(t);
        break;
      }
      case 2: {  // add a fresh random matrix
        const mtx::CsrMatrix other = testutil::exact_er(
            m.nrows, m.ncols, 3.0, GetParam() + 2000 + step);
        const Dense od = to_dense(other);
        m = mtx::add(m, other);
        for (std::size_t r = 0; r < d.size(); ++r) {
          for (std::size_t c = 0; c < d[r].size(); ++c) d[r][c] += od[r][c];
        }
        break;
      }
      case 3: {  // hadamard with a fresh random matrix
        const mtx::CsrMatrix other = testutil::exact_er(
            m.nrows, m.ncols, 6.0, GetParam() + 3000 + step);
        const Dense od = to_dense(other);
        m = mtx::hadamard(m, other);
        for (std::size_t r = 0; r < d.size(); ++r) {
          for (std::size_t c = 0; c < d[r].size(); ++c) d[r][c] *= od[r][c];
        }
        break;
      }
      case 4: {  // prune small values
        m = mtx::prune(m, 2.0);
        for (auto& row : d) {
          for (auto& v : row) {
            if (std::abs(v) < 2.0) v = 0.0;
          }
        }
        break;
      }
      case 5: {  // drop diagonal (square only)
        if (m.nrows == m.ncols) {
          m = mtx::drop_diagonal(m);
          for (std::size_t i = 0; i < d.size(); ++i) d[i][i] = 0.0;
        }
        break;
      }
      case 6: {  // round-trip through COO + CSC (must be lossless)
        m = mtx::csc_to_csr(mtx::csr_to_csc(m));
        break;
      }
    }
    expect_dense_eq(m, d, step);
    if (m.nnz() == 0) break;  // chain died out; nothing left to fuzz
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace pbs
