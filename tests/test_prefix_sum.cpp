#include "common/prefix_sum.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

namespace pbs {
namespace {

std::vector<nnz_t> random_counts(std::size_t n, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<nnz_t> dist(0, 1000);
  std::vector<nnz_t> v(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) v[i] = dist(rng);
  return v;
}

TEST(ExclusiveScan, EmptyArray) {
  std::vector<nnz_t> a{0};
  EXPECT_EQ(exclusive_scan_inplace(a.data(), 0), 0);
  EXPECT_EQ(a[0], 0);
}

TEST(ExclusiveScan, SingleElement) {
  std::vector<nnz_t> a{7, 0};
  EXPECT_EQ(exclusive_scan_inplace(a.data(), 1), 7);
  EXPECT_EQ(a[0], 0);
  EXPECT_EQ(a[1], 7);
}

TEST(ExclusiveScan, KnownSequence) {
  std::vector<nnz_t> a{1, 2, 3, 4, 0};
  EXPECT_EQ(exclusive_scan_inplace(a.data(), 4), 10);
  EXPECT_EQ(a, (std::vector<nnz_t>{0, 1, 3, 6, 10}));
}

TEST(ExclusiveScan, AllZeros) {
  std::vector<nnz_t> a(17, 0);
  EXPECT_EQ(exclusive_scan_inplace(a.data(), 16), 0);
  for (const nnz_t v : a) EXPECT_EQ(v, 0);
}

class ScanSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ScanSizes, ParallelMatchesSerial) {
  const std::size_t n = GetParam();
  std::vector<nnz_t> serial = random_counts(n, 42);
  std::vector<nnz_t> parallel = serial;
  const nnz_t ts = exclusive_scan_inplace(serial.data(), n);
  const nnz_t tp = exclusive_scan_inplace_parallel(parallel.data(), n);
  EXPECT_EQ(ts, tp);
  EXPECT_EQ(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ScanSizes,
                         ::testing::Values(0, 1, 2, 5, 100, 1023, 1024,
                                           (1u << 16) - 1, 1u << 16,
                                           (1u << 16) + 1, 1u << 18));

TEST(CountsToRowptr, BuildsCsrPointers) {
  // counts: row0=2, row1=0, row2=3
  std::vector<nnz_t> rp{0, 2, 0, 3};
  EXPECT_EQ(counts_to_rowptr(rp.data(), 3), 5);
  EXPECT_EQ(rp, (std::vector<nnz_t>{0, 2, 2, 5}));
}

TEST(CountsToRowptr, ZeroRows) {
  std::vector<nnz_t> rp{0};
  EXPECT_EQ(counts_to_rowptr(rp.data(), 0), 0);
}

TEST(CountsToRowptr, MatchesAccumulate) {
  std::vector<nnz_t> counts = random_counts(1000, 7);
  std::vector<nnz_t> rp(1001, 0);
  for (std::size_t i = 0; i < 1000; ++i) rp[i + 1] = counts[i];
  const nnz_t total = counts_to_rowptr(rp.data(), 1000);
  EXPECT_EQ(total,
            std::accumulate(counts.begin(), counts.begin() + 1000, nnz_t{0}));
  for (std::size_t i = 0; i < 1000; ++i) EXPECT_EQ(rp[i + 1] - rp[i], counts[i]);
}

}  // namespace
}  // namespace pbs
