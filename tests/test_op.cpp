// The typed operation descriptor (SpGemmOp), the runtime SemiringRegistry,
// and the descriptor-driven plan path: custom-semiring registration
// round-trips through make_plan (algo = "auto"), masks fuse into every
// kernel family, accumulate combines with the semiring add, and the
// pre-descriptor entry points keep working as shims.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <limits>
#include <stdexcept>
#include <string>

#include "matrix/ops.hpp"
#include "spgemm/masked.hpp"
#include "spgemm/op.hpp"
#include "spgemm/plan.hpp"
#include "spgemm/registry.hpp"
#include "spgemm/semiring.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

// The running custom-semiring example: (max, +) — longest-path relaxation,
// the tropical dual of min_plus.  Registered once per process (gtest runs
// all tests in one binary; double registration throws by design).
const char* kPlusMax = "plus_max";

const RuntimeSemiring& plus_max() {
  SemiringRegistry& reg = SemiringRegistry::instance();
  if (!reg.contains(kPlusMax)) {
    RuntimeSemiring rs;
    rs.name = kPlusMax;
    rs.zero = -std::numeric_limits<value_t>::infinity();
    rs.add = [](value_t a, value_t b) { return std::max(a, b); };
    rs.mul = [](value_t a, value_t b) { return a + b; };
    reg.register_semiring(rs);
  }
  return reg.at(kPlusMax);
}

// Serial oracle for plus_max (mirrors reference_spgemm_semiring's rules:
// first contribution stored as-is, exact zeros stay structural).  Written
// out locally because the library template is instantiated only for the
// built-ins + the runtime bridge.
mtx::CsrMatrix plus_max_oracle(const SpGemmProblem& p) {
  const mtx::CsrMatrix& a = p.a_csr;
  const mtx::CsrMatrix& b = p.b_csr;
  mtx::CsrMatrix out(a.nrows, b.ncols);
  std::map<index_t, value_t> acc;
  for (index_t r = 0; r < a.nrows; ++r) {
    acc.clear();
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
      const index_t k = a.colids[i];
      for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j) {
        const value_t product = a.vals[i] + b.vals[j];
        const auto [it, inserted] = acc.try_emplace(b.colids[j], product);
        if (!inserted) it->second = std::max(it->second, product);
      }
    }
    out.rowptr[static_cast<std::size_t>(r) + 1] =
        out.rowptr[r] + static_cast<nnz_t>(acc.size());
    for (const auto& [c, v] : acc) {
      out.colids.push_back(c);
      out.vals.push_back(v);
    }
  }
  return out;
}

// ---- SemiringRegistry -----------------------------------------------------

TEST(SemiringRegistryTest, BuiltinsPreRegisteredAndClosuresWork) {
  SemiringRegistry& reg = SemiringRegistry::instance();
  for (const std::string& s : semiring_names()) {
    const RuntimeSemiring* rs = reg.find(s);
    ASSERT_NE(rs, nullptr) << s;
    EXPECT_TRUE(rs->builtin);
  }
  const RuntimeSemiring& mp = reg.at(MinPlus::name);
  EXPECT_EQ(mp.zero, MinPlus::zero());
  EXPECT_EQ(mp.add(3.0, 5.0), 3.0);
  EXPECT_EQ(mp.mul(3.0, 5.0), 8.0);
}

TEST(SemiringRegistryTest, RejectsDuplicatesEmptyNamesAndMissingOps) {
  (void)plus_max();
  SemiringRegistry& reg = SemiringRegistry::instance();
  RuntimeSemiring dup;
  dup.name = kPlusMax;
  dup.add = [](value_t a, value_t b) { return a + b; };
  dup.mul = [](value_t a, value_t b) { return a * b; };
  EXPECT_THROW(reg.register_semiring(dup), std::invalid_argument);
  RuntimeSemiring anon = dup;
  anon.name = "";
  EXPECT_THROW(reg.register_semiring(anon), std::invalid_argument);
  RuntimeSemiring half;
  half.name = "half_defined";
  half.add = dup.add;
  EXPECT_THROW(reg.register_semiring(half), std::invalid_argument);
  // A user registration can never claim the built-in fast path.
  EXPECT_FALSE(reg.at(kPlusMax).builtin);
}

TEST(SemiringRegistryTest, UnknownSemiringErrorsListRegisteredNames) {
  (void)plus_max();
  try {
    semiring_algorithm("pb", "no_such_semiring");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(kPlusMax), std::string::npos)
        << "registered custom names should be listed: " << msg;
  }
}

// ---- custom semiring end-to-end -------------------------------------------

TEST(CustomSemiring, EveryGeneralizedAlgorithmMatchesOracle) {
  (void)plus_max();
  const mtx::CsrMatrix a = testutil::exact_er(120, 120, 4.0, 91);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const mtx::CsrMatrix expected =
      plus_max_oracle(p);
  for (const char* algo : {"pb", "heap", "hash", "spa", "reference"}) {
    const mtx::CsrMatrix c = semiring_algorithm(algo, kPlusMax)(p);
    EXPECT_TRUE(mtx::equal_exact(c, expected)) << algo;
  }
}

TEST(CustomSemiring, NumericCloneMatchesNumericKernelsExactly) {
  // A runtime re-statement of (+, ×) must reproduce the compiled numeric
  // kernels bit for bit — the DynSemiring bridge adds indirection, not
  // arithmetic.
  SemiringRegistry& reg = SemiringRegistry::instance();
  if (!reg.contains("plus_times_rt")) {
    RuntimeSemiring rs;
    rs.name = "plus_times_rt";
    rs.zero = 0.0;
    rs.add = [](value_t x, value_t y) { return x + y; };
    rs.mul = [](value_t x, value_t y) { return x * y; };
    reg.register_semiring(rs);
  }
  const mtx::CsrMatrix a = testutil::exact_er(150, 150, 5.0, 92);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const mtx::CsrMatrix expected = reference_spgemm(p);
  for (const char* algo : {"pb", "heap", "hash", "spa"}) {
    EXPECT_TRUE(mtx::equal_exact(semiring_algorithm(algo, "plus_times_rt")(p),
                                 expected))
        << algo;
  }
}

TEST(CustomSemiring, RoundTripsThroughMakePlanWithAutoSelection) {
  // The acceptance path: a runtime-registered semiring executes end-to-end
  // through make_plan + SpGemmPlan::execute with algo = "auto".
  (void)plus_max();
  const mtx::CsrMatrix a = testutil::exact_er(300, 300, 6.0, 93);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmOp op;
  op.semiring = kPlusMax;  // algo stays "auto"
  SpGemmPlan plan = make_plan(p, op);
  EXPECT_EQ(plan.telemetry().requested_algo, "auto");
  EXPECT_FALSE(plan.telemetry().choice.rationale.empty());
  const mtx::CsrMatrix c = plan.execute(p);
  const mtx::CsrMatrix again = plan.execute(p);
  EXPECT_TRUE(mtx::equal_exact(c, again));
  EXPECT_EQ(plan.telemetry().replans, 0u);
  EXPECT_TRUE(
      mtx::equal_exact(c, plus_max_oracle(p)));
}

TEST(CustomSemiring, WorksThroughPbSpgemmNamedWithTelemetry) {
  (void)plus_max();
  const mtx::CsrMatrix a = testutil::exact_er(200, 200, 5.0, 94);
  const SpGemmProblem p = SpGemmProblem::square(a);
  pb::PbWorkspace ws;
  const pb::PbResult r =
      pb::pb_spgemm_named(kPlusMax, p.a_csc, p.b_csr, pb::PbConfig{}, ws);
  EXPECT_TRUE(mtx::equal_exact(
      r.c, plus_max_oracle(p)));
  EXPECT_GT(r.stats.flop, 0);
}

// ---- masked descriptor path -----------------------------------------------

TEST(SpGemmOpMask, DescriptorMatchesOracleAcrossAlgorithms) {
  const mtx::CsrMatrix a = testutil::exact_er(130, 130, 5.0, 95);
  const mtx::CsrMatrix mask = testutil::exact_er(130, 130, 7.0, 96);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const mtx::CsrMatrix full = reference_spgemm(p);
  for (const bool complement : {false, true}) {
    const mtx::CsrMatrix expected =
        mtx::pattern_filter(full, mask, complement);
    for (const char* algo : {"pb", "heap", "hash", "spa"}) {
      SpGemmOp op;
      op.algo = algo;
      op.mask = &mask;
      op.complement = complement;
      SpGemmPlan plan = make_plan(p, op);
      EXPECT_TRUE(mtx::equal_exact(plan.execute(p), expected))
          << algo << " complement=" << complement;
    }
  }
}

TEST(SpGemmOpMask, AutoSelectionIsMaskAwareAndCorrect) {
  const mtx::CsrMatrix a = testutil::exact_er(400, 400, 6.0, 97);
  const mtx::CsrMatrix mask = testutil::exact_er(400, 400, 3.0, 98);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmOp op;
  op.mask = &mask;  // algo stays "auto"
  SpGemmPlan plan = make_plan(p, op);
  EXPECT_TRUE(plan.telemetry().masked);
  // The mask-density term must be visible in the recorded decision.
  EXPECT_GE(plan.telemetry().choice.cf_out, plan.telemetry().choice.cf);
  EXPECT_TRUE(mtx::equal_exact(
      plan.execute(p),
      mtx::pattern_filter(reference_spgemm(p), mask, false)));
}

TEST(SpGemmOpMask, PbRecordsDroppedTuplesInTelemetry) {
  const mtx::CsrMatrix a = testutil::exact_er(250, 250, 6.0, 99);
  const mtx::CsrMatrix mask = testutil::exact_er(250, 250, 4.0, 100);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmOp op;
  op.algo = "pb";
  op.mask = &mask;
  // Pin the compress-stage drop path: this mask is sparse enough that the
  // auto expand-mask would otherwise engage and leave nothing to drop.
  op.pb.expand_mask = pb::ExpandMaskMode::kOff;
  SpGemmPlan plan = make_plan(p, op);
  const mtx::CsrMatrix c = plan.execute(p);
  const pb::PbTelemetry& tm = plan.last_pb_stats();
  EXPECT_EQ(tm.nnz_c, c.nnz());
  EXPECT_FALSE(tm.expand_masked);
  EXPECT_EQ(tm.mask_skipped_expand, 0);
  EXPECT_GT(tm.mask_dropped, 0);
  // Survivors + dropped = the unmasked product's nonzeros.
  EXPECT_EQ(tm.nnz_c + tm.mask_dropped, reference_spgemm(p).nnz());
}

TEST(SpGemmOpMask, PbRecordsExpandSkippedTuplesInTelemetry) {
  // The same sparse mask under the fused expand path: tuples for
  // masked-out outputs are never generated, so the drop count moves from
  // mask_dropped to mask_skipped_expand and flop = generated + skipped.
  const mtx::CsrMatrix a = testutil::exact_er(250, 250, 6.0, 99);
  const mtx::CsrMatrix mask = testutil::exact_er(250, 250, 4.0, 100);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmOp op;
  op.algo = "pb";
  op.mask = &mask;
  op.pb.expand_mask = pb::ExpandMaskMode::kOn;
  SpGemmPlan plan = make_plan(p, op);
  const mtx::CsrMatrix c = plan.execute(p);
  const pb::PbTelemetry& tm = plan.last_pb_stats();
  EXPECT_EQ(tm.nnz_c, c.nnz());
  EXPECT_TRUE(tm.expand_masked);
  EXPECT_GT(tm.mask_skipped_expand, 0);
  EXPECT_EQ(tm.mask_dropped, 0);
  EXPECT_TRUE(mtx::equal_exact(
      c, mtx::pattern_filter(reference_spgemm(p), mask, false)));
}

TEST(SpGemmOpMask, MaskedAcrossSemiringsAndFormats) {
  // pb masked × every built-in semiring × wide/narrow streams against the
  // semiring oracle filtered by the mask.
  const mtx::CsrMatrix a = testutil::exact_er(150, 150, 5.0, 101);
  const mtx::CsrMatrix mask = testutil::exact_er(150, 150, 6.0, 102);
  const SpGemmProblem p = SpGemmProblem::square(a);
  for (const std::string& s : semiring_names()) {
    const mtx::CsrMatrix expected = dispatch_semiring(s, [&]<typename S>() {
      return mtx::pattern_filter(reference_spgemm_semiring<S>(p), mask,
                                 false);
    });
    for (const pb::FormatPolicy format :
         {pb::FormatPolicy::kWide, pb::FormatPolicy::kNarrow}) {
      SpGemmOp op;
      op.algo = "pb";
      op.semiring = s;
      op.mask = &mask;
      op.pb.format = format;
      SpGemmPlan plan = make_plan(p, op);
      EXPECT_TRUE(mtx::equal_exact(plan.execute(p), expected))
          << s << " format=" << static_cast<int>(format);
    }
  }
}

TEST(SpGemmOpMask, UnfusedBaselinesFallBackToFilteredProduct) {
  const mtx::CsrMatrix a = testutil::exact_er(90, 90, 4.0, 103);
  const mtx::CsrMatrix mask = testutil::exact_er(90, 90, 5.0, 104);
  const SpGemmProblem p = SpGemmProblem::square(a);
  const mtx::CsrMatrix expected =
      mtx::pattern_filter(reference_spgemm(p), mask, false);
  for (const char* algo : {"esc", "hashvec", "reference"}) {
    SpGemmOp op;
    op.algo = algo;
    op.mask = &mask;
    SpGemmPlan plan = make_plan(p, op);
    EXPECT_TRUE(mtx::equal_exact(plan.execute(p), expected)) << algo;
  }
}

TEST(SpGemmOpMask, CustomSemiringOnUnfusedGeneralizedAlgorithm) {
  // Regression: a masked plan over a runtime semiring on a generalized
  // algorithm without a fused masked form (reference) must resolve the
  // real kernel — not re-look-up the DynSemiring sentinel name.
  (void)plus_max();
  const mtx::CsrMatrix a = testutil::exact_er(80, 80, 4.0, 122);
  const mtx::CsrMatrix mask = testutil::exact_er(80, 80, 5.0, 123);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmOp op;
  op.algo = "reference";
  op.semiring = kPlusMax;
  op.mask = &mask;
  SpGemmPlan plan = make_plan(p, op);
  EXPECT_TRUE(mtx::equal_exact(
      plan.execute(p), mtx::pattern_filter(plus_max_oracle(p), mask)));
}

TEST(SpGemmOpMask, MaskShapeMismatchThrowsAtPlanTime) {
  const mtx::CsrMatrix a = testutil::exact_er(50, 50, 3.0, 105);
  const mtx::CsrMatrix bad = testutil::exact_er(50, 51, 3.0, 106);
  SpGemmOp op;
  op.mask = &bad;
  EXPECT_THROW((void)make_plan(SpGemmProblem::square(a), op),
               std::invalid_argument);
}

TEST(SpGemmOpMask, MaskPatternMayChangeBetweenExecutes) {
  // Only the mask's shape is pinned at plan time; its pattern is read per
  // execute, so iterative applications can mutate the mask in place.
  const mtx::CsrMatrix a = testutil::exact_er(140, 140, 5.0, 107);
  const SpGemmProblem p = SpGemmProblem::square(a);
  mtx::CsrMatrix mask = testutil::exact_er(140, 140, 6.0, 108);
  SpGemmOp op;
  op.algo = "pb";
  op.mask = &mask;
  SpGemmPlan plan = make_plan(p, op);
  const mtx::CsrMatrix full = reference_spgemm(p);
  EXPECT_TRUE(
      mtx::equal_exact(plan.execute(p), mtx::pattern_filter(full, mask)));
  mask = testutil::exact_er(140, 140, 2.0, 109);  // new pattern, same shape
  EXPECT_TRUE(
      mtx::equal_exact(plan.execute(p), mtx::pattern_filter(full, mask)));
  EXPECT_EQ(plan.telemetry().replans, 0u);
}

// ---- accumulate -----------------------------------------------------------

TEST(SpGemmOpAccumulate, PlusTimesAccumulateIsMatrixAdd) {
  const mtx::CsrMatrix a = testutil::exact_er(100, 100, 4.0, 110);
  const mtx::CsrMatrix c0 = testutil::exact_er(100, 100, 5.0, 111);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmOp op;
  op.algo = "pb";
  op.accumulate = true;
  SpGemmPlan plan = make_plan(p, op);
  EXPECT_THROW((void)plan.execute(p), std::logic_error);
  const mtx::CsrMatrix c = plan.execute(p, c0);
  EXPECT_TRUE(mtx::equal_exact(c, mtx::add(c0, reference_spgemm(p))));
}

TEST(SpGemmOpAccumulate, MinPlusAccumulateTakesElementwiseMin) {
  const mtx::CsrMatrix a = testutil::exact_er(80, 80, 4.0, 112);
  const mtx::CsrMatrix c0 = testutil::exact_er(80, 80, 5.0, 113);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmOp op;
  op.algo = "heap";
  op.semiring = MinPlus::name;
  op.accumulate = true;
  SpGemmPlan plan = make_plan(p, op);
  const mtx::CsrMatrix product = reference_spgemm_semiring<MinPlus>(p);
  const mtx::CsrMatrix c = plan.execute(p, c0);
  EXPECT_TRUE(
      mtx::equal_exact(c, semiring_ewise_add(MinPlus::name, c0, product)));
  // Spot-check the union-merge semantics directly.
  const mtx::CsrMatrix expected = semiring_ewise_add(MinPlus::name, c0, product);
  EXPECT_EQ(expected.nnz(),
            mtx::add(mtx::to_pattern(c0), mtx::to_pattern(product)).nnz());
}

TEST(SemiringEwiseAdd, MatchesMatrixAddForPlusTimes) {
  const mtx::CsrMatrix x = testutil::exact_er(60, 70, 3.0, 114);
  const mtx::CsrMatrix y = testutil::exact_er(60, 70, 4.0, 115);
  EXPECT_TRUE(mtx::equal_exact(semiring_ewise_add(PlusTimes::name, x, y),
                               mtx::add(x, y)));
  const mtx::CsrMatrix bad = testutil::exact_er(60, 71, 3.0, 116);
  EXPECT_THROW((void)semiring_ewise_add(PlusTimes::name, x, bad),
               std::invalid_argument);
}

// ---- pattern_filter (the oracle primitive) --------------------------------

TEST(PatternFilter, KeepsAndComplementsPartitionTheMatrix) {
  const mtx::CsrMatrix a = testutil::exact_er(70, 70, 4.0, 117);
  const mtx::CsrMatrix mask = testutil::exact_er(70, 70, 5.0, 118);
  const mtx::CsrMatrix in = mtx::pattern_filter(a, mask, false);
  const mtx::CsrMatrix out = mtx::pattern_filter(a, mask, true);
  EXPECT_EQ(in.nnz() + out.nnz(), a.nnz());
  EXPECT_TRUE(mtx::equal_exact(mtx::add(in, out), a));
  EXPECT_TRUE(mtx::equal_exact(mtx::pattern_filter(a, a), a));
}

// ---- shims ----------------------------------------------------------------

TEST(Shims, SpgemmMaskedRoutesThroughDescriptorPath) {
  const mtx::CsrMatrix a = testutil::exact_er(110, 110, 5.0, 119);
  const mtx::CsrMatrix mask = testutil::exact_er(110, 110, 6.0, 120);
  const mtx::CsrMatrix via_shim = spgemm_masked(a, a, mask);
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmOp op;
  op.algo = "spa";
  op.mask = &mask;
  EXPECT_TRUE(mtx::equal_exact(via_shim, make_plan(p, op).execute(p)));
}

TEST(Shims, PlanOptionsAliasStillCompilesAndRuns) {
  const mtx::CsrMatrix a = testutil::exact_er(90, 90, 4.0, 121);
  const SpGemmProblem p = SpGemmProblem::square(a);
  PlanOptions opts;  // the legacy name is an alias of SpGemmOp
  opts.algo = "heap";
  opts.semiring = "max_min";
  SpGemmPlan plan = make_plan(p, opts);
  EXPECT_TRUE(mtx::equal_exact(
      plan.execute(p), reference_spgemm_semiring<MaxMin>(p)));
}

}  // namespace
}  // namespace pbs
