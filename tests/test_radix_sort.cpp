#include "common/radix_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

namespace pbs {
namespace {

struct Rec {
  std::uint64_t key;
  double payload;
};

std::vector<Rec> random_records(std::size_t n, std::uint64_t key_mask,
                                unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<Rec> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i].key = rng() & key_mask;
    v[i].payload = static_cast<double>(rng() % 1000);
  }
  return v;
}

void expect_sorted_with_same_multiset(std::vector<Rec> input) {
  std::vector<Rec> sorted = input;
  radix_sort(sorted.data(), sorted.size(),
             [](const Rec& r) { return r.key; });

  ASSERT_EQ(sorted.size(), input.size());
  for (std::size_t i = 1; i < sorted.size(); ++i)
    EXPECT_LE(sorted[i - 1].key, sorted[i].key) << "at " << i;

  // The multiset of (key, payload) pairs must be preserved exactly.
  auto canon = [](std::vector<Rec>& v) {
    std::sort(v.begin(), v.end(), [](const Rec& a, const Rec& b) {
      return a.key != b.key ? a.key < b.key : a.payload < b.payload;
    });
  };
  std::vector<Rec> a = sorted, b = input;
  canon(a);
  canon(b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].key, b[i].key) << "at " << i;
    ASSERT_EQ(a[i].payload, b[i].payload) << "at " << i;
  }
}

TEST(RadixSort, EmptyAndSingle) {
  expect_sorted_with_same_multiset({});
  expect_sorted_with_same_multiset({{42, 1.0}});
}

TEST(RadixSort, TwoElements) {
  expect_sorted_with_same_multiset({{2, 1.0}, {1, 2.0}});
  expect_sorted_with_same_multiset({{1, 1.0}, {2, 2.0}});
}

TEST(RadixSort, AllKeysEqual) {
  std::vector<Rec> v(1000, Rec{7, 0.0});
  for (std::size_t i = 0; i < v.size(); ++i) v[i].payload = static_cast<double>(i);
  expect_sorted_with_same_multiset(v);
}

TEST(RadixSort, AlreadySorted) {
  std::vector<Rec> v(500);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = {i, static_cast<double>(i)};
  expect_sorted_with_same_multiset(v);
}

TEST(RadixSort, ReverseSorted) {
  std::vector<Rec> v(500);
  for (std::size_t i = 0; i < v.size(); ++i)
    v[i] = {500 - i, static_cast<double>(i)};
  expect_sorted_with_same_multiset(v);
}

TEST(RadixSort, SingleVaryingByteIsOnePass) {
  // Keys share all bytes except byte 2 — exercises the byte-skip path.
  std::vector<Rec> v = random_records(4096, 0x0000000000FF0000ull, 3);
  for (auto& r : v) r.key |= 0xAB00000000000000ull;
  expect_sorted_with_same_multiset(v);
}

TEST(RadixSort, HighBytesVaryOnly) {
  std::vector<Rec> v = random_records(4096, 0xFF00000000000000ull, 4);
  expect_sorted_with_same_multiset(v);
}

TEST(RadixSort, DuplicateHeavy) {
  // Only 16 distinct keys over 10^4 records: compress-style input.
  std::vector<Rec> v = random_records(10000, 0xFull, 5);
  expect_sorted_with_same_multiset(v);
}

TEST(RadixSort, InsertionCutoffBoundary) {
  // Around the 48-record insertion-sort fallback threshold.
  for (std::size_t n : {46u, 47u, 48u, 49u, 50u}) {
    expect_sorted_with_same_multiset(random_records(n, ~0ull, 6 + n));
  }
}

struct SortParams {
  std::size_t n;
  std::uint64_t mask;
};

class RadixSortSweep : public ::testing::TestWithParam<SortParams> {};

TEST_P(RadixSortSweep, MatchesStdSort) {
  const auto& p = GetParam();
  std::vector<Rec> v = random_records(p.n, p.mask, 11);
  std::vector<std::uint64_t> expected(p.n);
  for (std::size_t i = 0; i < p.n; ++i) expected[i] = v[i].key;
  std::sort(expected.begin(), expected.end());

  radix_sort(v.data(), v.size(), [](const Rec& r) { return r.key; });
  for (std::size_t i = 0; i < p.n; ++i) EXPECT_EQ(v[i].key, expected[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RadixSortSweep,
    ::testing::Values(SortParams{10, ~0ull}, SortParams{1000, ~0ull},
                      SortParams{100000, ~0ull},
                      SortParams{100000, 0xFFFFFull},       // 20-bit keys
                      SortParams{100000, 0xFFFFFFFFull},    // 32-bit keys
                      SortParams{50000, 0xFFFF00000000ull}, // mid bytes only
                      SortParams{65536, 0xFFull}));         // 256 buckets

void expect_lsd_matches_std(std::vector<Rec> input) {
  std::vector<Rec> scratch(input.size());
  std::vector<std::uint64_t> expected(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) expected[i] = input[i].key;
  std::sort(expected.begin(), expected.end());
  radix_sort_lsd(input.data(), input.size(), scratch.data(),
                 [](const Rec& r) { return r.key; });
  for (std::size_t i = 0; i < input.size(); ++i)
    ASSERT_EQ(input[i].key, expected[i]) << "at " << i;
}

TEST(RadixSortLsd, EmptySingleAndPair) {
  expect_lsd_matches_std({});
  expect_lsd_matches_std({{5, 0}});
  expect_lsd_matches_std({{5, 0}, {2, 1}});
}

TEST(RadixSortLsd, AllEqualKeys) {
  expect_lsd_matches_std(std::vector<Rec>(257, Rec{9, 0}));
}

TEST(RadixSortLsd, OddAndEvenPassCounts) {
  // 1 varying byte (odd passes -> copy-back path) and 2 (even, in place).
  expect_lsd_matches_std(random_records(5000, 0xFFull, 21));
  expect_lsd_matches_std(random_records(5000, 0xFFFFull, 22));
  expect_lsd_matches_std(random_records(5000, 0xFFFFFFull, 23));
}

TEST(RadixSortLsd, NonContiguousVaryingBytes) {
  // Bytes 0 and 4 vary, bytes in between constant: skip logic must hold.
  expect_lsd_matches_std(random_records(5000, 0x000000FF000000FFull, 24));
}

TEST(RadixSortLsd, FullWidthKeys) {
  expect_lsd_matches_std(random_records(100000, ~0ull, 25));
}

TEST(RadixSortLsd, IsStable) {
  // Equal keys keep insertion order (LSD property).
  std::vector<Rec> v;
  for (int i = 0; i < 1000; ++i)
    v.push_back({static_cast<std::uint64_t>(i % 7), static_cast<double>(i)});
  std::vector<Rec> scratch(v.size());
  radix_sort_lsd(v.data(), v.size(), scratch.data(),
                 [](const Rec& r) { return r.key; });
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i - 1].key == v[i].key) {
      ASSERT_LT(v[i - 1].payload, v[i].payload) << "stability broken at " << i;
    }
  }
}

TEST(RadixSortLsd, AgreesWithInPlaceVariant) {
  for (const std::uint64_t mask : {0xFFFFFull, ~0ull}) {
    std::vector<Rec> a = random_records(20000, mask, 26);
    std::vector<Rec> b = a;
    std::vector<Rec> scratch(a.size());
    radix_sort(a.data(), a.size(), [](const Rec& r) { return r.key; });
    radix_sort_lsd(b.data(), b.size(), scratch.data(),
                   [](const Rec& r) { return r.key; });
    for (std::size_t i = 0; i < a.size(); ++i) ASSERT_EQ(a[i].key, b[i].key);
  }
}

// ---- SoA variants (narrow tuple stream) -----------------------------------

std::vector<std::uint32_t> random_keys32(std::size_t n, std::uint32_t mask,
                                         unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint32_t> v(n);
  for (auto& k : v) k = static_cast<std::uint32_t>(rng()) & mask;
  return v;
}

void expect_kv_matches_std(std::vector<std::uint32_t> keys) {
  const std::size_t n = keys.size();
  // Payload encodes the original position so we can verify pairing.
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) vals[i] = static_cast<double>(i);

  std::vector<std::pair<std::uint32_t, double>> expected(n);
  for (std::size_t i = 0; i < n; ++i) expected[i] = {keys[i], vals[i]};
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<std::uint32_t> kscratch(n);
  std::vector<double> vscratch(n);
  radix_sort_lsd_kv(keys.data(), vals.data(), n, kscratch.data(),
                    vscratch.data());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(keys[i], expected[i].first) << "at " << i;
    ASSERT_EQ(vals[i], expected[i].second) << "pair broken at " << i;
  }
}

TEST(RadixSortKv, EmptySingleAndPair) {
  expect_kv_matches_std({});
  expect_kv_matches_std({5});
  expect_kv_matches_std({5, 2});
  expect_kv_matches_std({2, 5});
}

TEST(RadixSortKv, AllEqualKeys) {
  expect_kv_matches_std(std::vector<std::uint32_t>(513, 9u));
}

TEST(RadixSortKv, OddAndEvenPassCountsStayInPlaceAndStable) {
  // 1-4 varying bytes: both parities of the ping-pong (stability is
  // asserted via the position payload in expect_kv_matches_std).
  expect_kv_matches_std(random_keys32(5000, 0xFFu, 31));
  expect_kv_matches_std(random_keys32(5000, 0xFFFFu, 32));
  expect_kv_matches_std(random_keys32(5000, 0xFFFFFFu, 33));
  expect_kv_matches_std(random_keys32(5000, 0xFFFFFFFFu, 34));
}

TEST(RadixSortKv, NonContiguousVaryingBytes) {
  expect_kv_matches_std(random_keys32(5000, 0xFF0000FFu, 35));
}

TEST(RadixSortKv, NarrowTupleKeysSortRowMajor) {
  // Keys shaped like the narrow tuple stream: (local_row << 20) | col.
  std::mt19937_64 rng(36);
  std::vector<std::uint32_t> keys(20000);
  for (auto& k : keys) {
    k = (static_cast<std::uint32_t>(rng() % 1024) << 20) |
        static_cast<std::uint32_t>(rng() % (1u << 20));
  }
  expect_kv_matches_std(std::move(keys));
}

TEST(RadixSortIndex, SortsKeysAndCopermutesIndex) {
  for (const std::uint32_t mask : {0xFFu, 0xFFFFFFu, 0xFFFFFFFFu}) {
    std::vector<std::uint32_t> keys = random_keys32(10000, mask, 37);
    const std::vector<std::uint32_t> original = keys;
    const std::size_t n = keys.size();
    std::vector<std::uint32_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<std::uint32_t>(i);

    std::vector<std::uint32_t> kscratch(n), iscratch(n);
    radix_sort_lsd_index(keys.data(), idx.data(), n, kscratch.data(),
                         iscratch.data());
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0) ASSERT_LE(keys[i - 1], keys[i]) << "at " << i;
      // idx must point at where this key came from.
      ASSERT_EQ(original[idx[i]], keys[i]) << "at " << i;
      // Stability: equal keys keep ascending source positions.
      if (i > 0 && keys[i - 1] == keys[i]) ASSERT_LT(idx[i - 1], idx[i]);
    }
  }
}

TEST(RadixSortKv, U64KeysSupported) {
  // The kv variant is key-width generic; the wide pipeline could adopt it.
  std::mt19937_64 rng(38);
  const std::size_t n = 5000;
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng();
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) vals[i] = static_cast<double>(i);
  std::vector<std::uint64_t> expected = keys;
  std::sort(expected.begin(), expected.end());

  std::vector<std::uint64_t> ks(n);
  std::vector<double> vs(n);
  radix_sort_lsd_kv(keys.data(), vals.data(), n, ks.data(), vs.data());
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(keys[i], expected[i]);
}

TEST(RadixSort, PackedRowColKeysSortLexicographically) {
  // The PB tuple ordering property: sorting by (row << 32 | col) must equal
  // sorting by (row, col) lexicographically.
  std::mt19937_64 rng(17);
  std::vector<Rec> v(20000);
  for (auto& r : v) {
    const std::uint32_t row = static_cast<std::uint32_t>(rng() % 1024);
    const std::uint32_t col = static_cast<std::uint32_t>(rng() % (1u << 20));
    r.key = (static_cast<std::uint64_t>(row) << 32) | col;
    r.payload = 0;
  }
  radix_sort(v.data(), v.size(), [](const Rec& r) { return r.key; });
  for (std::size_t i = 1; i < v.size(); ++i) {
    const auto row_prev = v[i - 1].key >> 32, row_cur = v[i].key >> 32;
    ASSERT_LE(row_prev, row_cur);
    if (row_prev == row_cur) {
      ASSERT_LE(v[i - 1].key & 0xFFFFFFFFu, v[i].key & 0xFFFFFFFFu);
    }
  }
}

}  // namespace
}  // namespace pbs
