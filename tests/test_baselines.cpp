// Per-algorithm unit tests on hand-checkable inputs.  The heavy randomized
// cross-validation lives in test_property_spgemm.cpp.
#include <gtest/gtest.h>

#include "spgemm/registry.hpp"
#include "spgemm/spgemm.hpp"
#include "test_util.hpp"

namespace pbs {
namespace {

using testutil::from_triplets;

class EveryAlgorithm : public ::testing::TestWithParam<const char*> {
 protected:
  SpGemmFn fn() const { return algorithm(GetParam()).fn; }
};

TEST_P(EveryAlgorithm, IdentitySquare) {
  const auto i = mtx::CsrMatrix::identity(17);
  EXPECT_TRUE(equal_exact(fn()(SpGemmProblem::square(i)), i));
}

TEST_P(EveryAlgorithm, KnownTwoByTwo) {
  const auto a = from_triplets(2, 2, {{0, 0, 1.}, {0, 1, 2.}, {1, 0, 3.}, {1, 1, 4.}});
  const auto b = from_triplets(2, 2, {{0, 0, 5.}, {0, 1, 6.}, {1, 0, 7.}, {1, 1, 8.}});
  const auto expected =
      from_triplets(2, 2, {{0, 0, 19.}, {0, 1, 22.}, {1, 0, 43.}, {1, 1, 50.}});
  EXPECT_TRUE(equal_exact(fn()(SpGemmProblem::multiply(a, b)), expected));
}

TEST_P(EveryAlgorithm, EmptyResult) {
  // A's columns never hit B's nonzero rows: C is empty.
  const auto a = from_triplets(3, 3, {{0, 0, 1.0}, {2, 1, 1.0}});
  const auto b = from_triplets(3, 3, {{2, 2, 1.0}});
  const auto c = fn()(SpGemmProblem::multiply(a, b));
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_TRUE(c.valid());
}

TEST_P(EveryAlgorithm, EmptyOperands) {
  mtx::CooMatrix empty(9, 9);
  const auto e = mtx::coo_to_csr(empty);
  const auto c = fn()(SpGemmProblem::square(e));
  EXPECT_EQ(c.nnz(), 0);
  EXPECT_EQ(c.nrows, 9);
  EXPECT_EQ(c.ncols, 9);
  EXPECT_TRUE(c.valid());
}

TEST_P(EveryAlgorithm, RectangularChain) {
  const mtx::CsrMatrix a = testutil::exact_er(30, 50, 3.0, 11);
  const mtx::CsrMatrix b = testutil::exact_er(50, 20, 3.0, 12);
  const auto expected = reference_spgemm(SpGemmProblem::multiply(a, b));
  const auto c = fn()(SpGemmProblem::multiply(a, b));
  EXPECT_TRUE(equal_exact(c, expected));
}

TEST_P(EveryAlgorithm, SingleDenseRow) {
  // One row of A selects every row of B: stresses per-row accumulator sizing.
  mtx::CooMatrix acoo(8, 64);
  for (index_t j = 0; j < 64; ++j) acoo.add(0, j, 1.0);
  acoo.canonicalize();
  const auto a = mtx::coo_to_csr(acoo);
  const mtx::CsrMatrix b = testutil::exact_er(64, 64, 4.0, 13);
  const auto expected = reference_spgemm(SpGemmProblem::multiply(a, b));
  EXPECT_TRUE(equal_exact(fn()(SpGemmProblem::multiply(a, b)), expected));
}

TEST_P(EveryAlgorithm, SingleDenseColumn) {
  // Every row of A hits row 0 of B — duplicate-heavy accumulation.
  mtx::CooMatrix acoo(64, 8);
  for (index_t i = 0; i < 64; ++i) acoo.add(i, 0, 2.0);
  acoo.canonicalize();
  const auto a = mtx::coo_to_csr(acoo);
  const mtx::CsrMatrix b = testutil::exact_er(8, 64, 6.0, 14);
  const auto expected = reference_spgemm(SpGemmProblem::multiply(a, b));
  EXPECT_TRUE(equal_exact(fn()(SpGemmProblem::multiply(a, b)), expected));
}

TEST_P(EveryAlgorithm, PermutationMatrixProduct) {
  // Reverse permutation squared = identity.
  mtx::CooMatrix pcoo(32, 32);
  for (index_t i = 0; i < 32; ++i) pcoo.add(i, 31 - i, 1.0);
  pcoo.canonicalize();
  const auto perm = mtx::coo_to_csr(pcoo);
  EXPECT_TRUE(equal_exact(fn()(SpGemmProblem::square(perm)),
                          mtx::CsrMatrix::identity(32)));
}

TEST_P(EveryAlgorithm, CancellationKeepsExplicitZero) {
  const auto a = from_triplets(1, 2, {{0, 0, 1.0}, {0, 1, 1.0}});
  const auto b = from_triplets(2, 1, {{0, 0, 1.0}, {1, 0, -1.0}});
  const auto c = fn()(SpGemmProblem::multiply(a, b));
  ASSERT_EQ(c.nnz(), 1);
  EXPECT_EQ(c.vals[0], 0.0);
}

TEST_P(EveryAlgorithm, OutputIsCanonicalOnSkewedInput) {
  const mtx::CsrMatrix a = testutil::exact_rmat(8, 8.0, 15);
  const auto c = fn()(SpGemmProblem::square(a));
  EXPECT_TRUE(c.valid()) << "rows must be sorted and in-range";
}

INSTANTIATE_TEST_SUITE_P(Algos, EveryAlgorithm,
                         ::testing::Values("pb", "heap", "hash", "hashvec",
                                           "spa", "esc", "outer_heap"));

TEST(Registry, KnowsAllAlgorithms) {
  EXPECT_EQ(algorithms().size(), 8u);
  EXPECT_EQ(algorithm("pb").name, "pb");
  EXPECT_THROW(algorithm("bogus"), std::invalid_argument);
}

TEST(Registry, PaperComparisonSetIsTheFigureLineup) {
  const auto set = paper_comparison_set();
  ASSERT_EQ(set.size(), 4u);
  EXPECT_EQ(set[0].name, "pb");
  EXPECT_EQ(set[1].name, "heap");
  EXPECT_EQ(set[2].name, "hash");
  EXPECT_EQ(set[3].name, "hashvec");
}

TEST(Registry, ScalabilityFlags) {
  EXPECT_TRUE(algorithm("pb").scales_to_large);
  EXPECT_FALSE(algorithm("reference").scales_to_large);
  EXPECT_FALSE(algorithm("outer_heap").scales_to_large);
}

}  // namespace
}  // namespace pbs
