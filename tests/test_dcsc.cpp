#include "matrix/dcsc.hpp"

#include <gtest/gtest.h>

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "test_util.hpp"

namespace pbs::mtx {
namespace {

CscMatrix csc_of(const CsrMatrix& a) { return csr_to_csc(a); }

TEST(Dcsc, RoundTripDense) {
  const CsrMatrix a = testutil::exact_er(100, 80, 5.0, 41);
  const CscMatrix csc = csc_of(a);
  const DcscMatrix dcsc = csc_to_dcsc(csc);
  ASSERT_TRUE(dcsc.valid());
  const CscMatrix back = dcsc_to_csc(dcsc);
  EXPECT_EQ(back.colptr, csc.colptr);
  EXPECT_EQ(back.rowids, csc.rowids);
  EXPECT_EQ(back.vals, csc.vals);
}

TEST(Dcsc, EmptyMatrix) {
  CooMatrix empty(10, 10);
  const DcscMatrix d = csc_to_dcsc(coo_to_csc(empty));
  EXPECT_TRUE(d.valid());
  EXPECT_EQ(d.nnz(), 0);
  EXPECT_EQ(d.nzc(), 0);
  const CscMatrix back = dcsc_to_csc(d);
  EXPECT_EQ(back.nnz(), 0);
  EXPECT_EQ(back.ncols, 10);
}

TEST(Dcsc, HypersparseStoresOnlyNonEmptyColumns) {
  // One entry in a 1M-column matrix: CSC's colptr alone is ~8 MB; DCSC is
  // a handful of bytes.
  CooMatrix coo(1 << 20, 1 << 20);
  coo.add(7, 123456, 1.5);
  coo.canonicalize();
  const CscMatrix csc = coo_to_csc(coo);
  const DcscMatrix dcsc = csc_to_dcsc(csc);
  ASSERT_TRUE(dcsc.valid());
  EXPECT_EQ(dcsc.nzc(), 1);
  EXPECT_EQ(dcsc.jc[0], 123456);
  EXPECT_EQ(dcsc.col_rows(0)[0], 7);
  EXPECT_EQ(dcsc.col_vals(0)[0], 1.5);
  EXPECT_LT(dcsc.footprint_bytes(), 100u);
  EXPECT_GT(csc_footprint_bytes(csc), 8u << 20);
}

TEST(Dcsc, FootprintCrossoverAtHypersparsity) {
  // nnz >> ncols: CSC is the smaller format (no jc array).
  const CsrMatrix dense_ish = testutil::exact_er(256, 256, 16.0, 42);
  const CscMatrix c1 = csc_of(dense_ish);
  EXPECT_LT(csc_footprint_bytes(c1), csc_to_dcsc(c1).footprint_bytes());

  // nnz << ncols (hypersparse): DCSC wins.
  const CsrMatrix hyper = testutil::exact_er(1 << 16, 1 << 16, 0.05, 43);
  const CscMatrix c2 = csc_of(hyper);
  ASSERT_LT(c2.nnz(), c2.ncols);  // hypersparse by construction
  EXPECT_LT(csc_to_dcsc(c2).footprint_bytes(), csc_footprint_bytes(c2));
}

TEST(Dcsc, IterationMatchesCsc) {
  const CsrMatrix a = testutil::exact_er(500, 400, 2.0, 44);
  const CscMatrix csc = csc_of(a);
  const DcscMatrix dcsc = csc_to_dcsc(csc);
  // Walking DCSC's non-empty columns visits exactly CSC's nonzeros.
  nnz_t seen = 0;
  for (index_t k = 0; k < dcsc.nzc(); ++k) {
    const index_t c = dcsc.jc[k];
    const auto drows = dcsc.col_rows(k);
    const auto crows = csc.col_rows(c);
    ASSERT_EQ(drows.size(), crows.size());
    for (std::size_t i = 0; i < drows.size(); ++i) {
      ASSERT_EQ(drows[i], crows[i]);
    }
    seen += static_cast<nnz_t>(drows.size());
  }
  EXPECT_EQ(seen, csc.nnz());
}

TEST(Dcsc, ValidRejectsCorruption) {
  const CsrMatrix a = testutil::exact_er(50, 50, 3.0, 45);
  DcscMatrix d = csc_to_dcsc(csc_of(a));
  ASSERT_TRUE(d.valid());
  DcscMatrix bad = d;
  bad.jc[0] = bad.jc[1];  // duplicate column id
  EXPECT_FALSE(bad.valid());
  bad = d;
  bad.cp[1] = bad.cp[0];  // empty stored column
  EXPECT_FALSE(bad.valid());
  bad = d;
  bad.rowids[0] = -1;  // out-of-range row
  EXPECT_FALSE(bad.valid());
}

}  // namespace
}  // namespace pbs::mtx
