#include "matrix/generate.hpp"

#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "matrix/convert.hpp"

namespace pbs::mtx {
namespace {

TEST(GenerateEr, ShapeAndBounds) {
  const CooMatrix m = generate_er(1000, 800, 4.0, 1);
  EXPECT_EQ(m.nrows, 1000);
  EXPECT_EQ(m.ncols, 800);
  EXPECT_TRUE(m.in_bounds());
  EXPECT_TRUE(m.is_canonical());
}

TEST(GenerateEr, MeanDegreeCloseToRequested) {
  const double d = 8.0;
  const CooMatrix m = generate_er(1 << 12, 1 << 12, d, 2);
  const double actual = static_cast<double>(m.nnz()) / (1 << 12);
  EXPECT_NEAR(actual, d, 0.25);  // distinct-row sampling: tiny shortfall only
}

TEST(GenerateEr, FractionalDegree) {
  const CooMatrix m = generate_er(1 << 12, 1 << 12, 2.5, 3);
  const double actual = static_cast<double>(m.nnz()) / (1 << 12);
  EXPECT_NEAR(actual, 2.5, 0.2);
}

TEST(GenerateEr, DeterministicInSeed) {
  const CooMatrix a = generate_er(2000, 2000, 4.0, 42);
  const CooMatrix b = generate_er(2000, 2000, 4.0, 42);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.col, b.col);
  EXPECT_EQ(a.val, b.val);
}

TEST(GenerateEr, DifferentSeedsDiffer) {
  const CooMatrix a = generate_er(2000, 2000, 4.0, 1);
  const CooMatrix b = generate_er(2000, 2000, 4.0, 2);
  EXPECT_NE(a.row, b.row);
}

TEST(GenerateEr, IndependentOfThreadCount) {
  // Block-based generation must make results schedule-independent.
  CooMatrix multi = generate_er(1 << 13, 1 << 13, 4.0, 7);
  CooMatrix single = [&] {
    ThreadCountGuard guard(1);
    return generate_er(1 << 13, 1 << 13, 4.0, 7);
  }();
  EXPECT_EQ(multi.row, single.row);
  EXPECT_EQ(multi.col, single.col);
  EXPECT_EQ(multi.val, single.val);
}

TEST(GenerateEr, ScaleOverload) {
  const CooMatrix m = generate_er(RandomScale{10, 4.0}, 5);
  EXPECT_EQ(m.nrows, 1 << 10);
  EXPECT_EQ(m.ncols, 1 << 10);
}

TEST(GenerateEr, DistinctRowsPerColumn) {
  const CsrMatrix csr = coo_to_csr(generate_er(256, 256, 16.0, 9));
  const CscMatrix csc = csr_to_csc(csr);
  for (index_t c = 0; c < csc.ncols; ++c) {
    const auto rows = csc.col_rows(c);
    for (std::size_t i = 1; i < rows.size(); ++i)
      ASSERT_LT(rows[i - 1], rows[i]) << "duplicate row in column " << c;
  }
}

TEST(GenerateBanded, EntriesStayInBand) {
  const index_t n = 2000, w = 16;
  const CooMatrix m = generate_banded(n, 8.0, w, 4);
  EXPECT_TRUE(m.in_bounds());
  for (nnz_t i = 0; i < m.nnz(); ++i) {
    ASSERT_LE(std::abs(static_cast<long>(m.row[i]) - m.col[i]), w)
        << "entry (" << m.row[i] << "," << m.col[i] << ") outside band";
  }
}

TEST(GenerateBanded, DegreeClampsAtNarrowWindow) {
  // d > window size: every in-window slot fills, no infinite loop.
  const CooMatrix m = generate_banded(100, 10.0, 2, 6);
  EXPECT_TRUE(m.in_bounds());
  EXPECT_GT(m.nnz(), 0);
}

TEST(GenerateRmat, ShapeAndDeterminism) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8.0;
  p.seed = 3;
  const CooMatrix a = generate_rmat(p);
  const CooMatrix b = generate_rmat(p);
  EXPECT_EQ(a.nrows, 1 << 10);
  EXPECT_TRUE(a.in_bounds());
  EXPECT_TRUE(a.is_canonical());
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.val, b.val);
}

TEST(GenerateRmat, DuplicateMergingShrinksNnz) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 8.0;
  p.seed = 11;
  const CooMatrix m = generate_rmat(p);
  // Skewed quadrants produce many duplicate edges; nnz must be below the
  // raw edge count but not absurdly so.
  EXPECT_LT(m.nnz(), static_cast<nnz_t>(8.0 * (1 << 10)));
  EXPECT_GT(m.nnz(), static_cast<nnz_t>(0.5 * 8.0 * (1 << 10)));
}

TEST(GenerateRmat, SkewProducesHubs) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8.0;
  p.seed = 13;
  const CsrMatrix m = coo_to_csr(generate_rmat(p));
  nnz_t max_deg = 0;
  for (index_t r = 0; r < m.nrows; ++r) max_deg = std::max(max_deg, m.row_nnz(r));
  // Graph500-parameter R-MAT at scale 12 has hubs far above the mean of 8.
  EXPECT_GT(max_deg, 64);
}

TEST(GenerateRmat, ErParametersProduceNoExtremeHubs) {
  RmatParams p;
  p.scale = 12;
  p.edge_factor = 8.0;
  p.a = p.b = p.c = 0.25;
  p.seed = 14;
  const CsrMatrix m = coo_to_csr(generate_rmat(p));
  nnz_t max_deg = 0;
  for (index_t r = 0; r < m.nrows; ++r) max_deg = std::max(max_deg, m.row_nnz(r));
  EXPECT_LT(max_deg, 64);  // Poisson tail at mean 8 stays tiny
}

TEST(GenerateRmat, ScrambleKeepsEdgeCountAndBounds) {
  RmatParams p;
  p.scale = 10;
  p.edge_factor = 4.0;
  p.seed = 15;
  const CooMatrix plain = generate_rmat(p);
  p.scramble_ids = true;
  const CooMatrix scrambled = generate_rmat(p);
  EXPECT_TRUE(scrambled.in_bounds());
  // Scrambling permutes ids; duplicate-merge counts can differ slightly only
  // if the permutation merged distinct edges — impossible for a bijection.
  EXPECT_EQ(plain.nnz(), scrambled.nnz());
}

class RmatSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RmatSweep, CanonicalInBoundsRightShape) {
  const auto [scale, ef] = GetParam();
  RmatParams p;
  p.scale = scale;
  p.edge_factor = ef;
  p.seed = 100 + scale;
  const CooMatrix m = generate_rmat(p);
  EXPECT_EQ(m.nrows, index_t{1} << scale);
  EXPECT_TRUE(m.in_bounds());
  EXPECT_TRUE(m.is_canonical());
}

INSTANTIATE_TEST_SUITE_P(Sweep, RmatSweep,
                         ::testing::Combine(::testing::Values(6, 8, 10),
                                            ::testing::Values(2.0, 8.0)));

}  // namespace
}  // namespace pbs::mtx
