// WorkStealingDeque — the Chase–Lev deque the pipelined PB schedule hands
// ready bins through.  LIFO owner pops (cache-hot: the bin the owner just
// finished filling), FIFO steals (coldest work migrates), and the
// single-element race between pop and steal resolves to exactly one
// winner.  The stress tests run real std::threads against the atomics
// directly — no OpenMP — so they exercise the deque under TSan even when
// the OpenMP runtime itself is uninstrumented.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/parallel.hpp"

namespace pbs {
namespace {

TEST(WorkStealingDeque, OwnerPopsLifo) {
  WorkStealingDeque<int> d(8);
  for (int i = 0; i < 5; ++i) d.push(i);
  EXPECT_EQ(d.size(), 5);
  int v = -1;
  for (int expect = 4; expect >= 0; --expect) {
    ASSERT_TRUE(d.pop(v));
    EXPECT_EQ(v, expect);
  }
  EXPECT_FALSE(d.pop(v));
  EXPECT_EQ(d.size(), 0);
}

TEST(WorkStealingDeque, ThiefStealsFifo) {
  WorkStealingDeque<int> d(8);
  for (int i = 0; i < 5; ++i) d.push(i);
  int v = -1;
  for (int expect = 0; expect < 5; ++expect) {
    ASSERT_TRUE(d.steal(v));
    EXPECT_EQ(v, expect);
  }
  EXPECT_FALSE(d.steal(v));
}

TEST(WorkStealingDeque, PopAndStealMeetInTheMiddle) {
  WorkStealingDeque<int> d(16);
  for (int i = 0; i < 10; ++i) d.push(i);
  int v = -1;
  std::vector<bool> seen(10, false);
  for (int k = 0; k < 5; ++k) {
    ASSERT_TRUE(d.pop(v));
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
    ASSERT_TRUE(d.steal(v));
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
  EXPECT_FALSE(d.pop(v));
  EXPECT_FALSE(d.steal(v));
  for (const bool b : seen) EXPECT_TRUE(b);
}

TEST(WorkStealingDeque, CapacityRoundsUpAndHoldsRequested) {
  WorkStealingDeque<int> d(5);  // rounds up to 8
  for (int i = 0; i < 5; ++i) d.push(i);
  int v = -1;
  int n = 0;
  while (d.pop(v)) ++n;
  EXPECT_EQ(n, 5);
}

// Every pushed element is taken exactly once when several thieves race
// one owner that interleaves pushes and pops.  The per-element claim
// counter catches both losses (an element never delivered) and
// duplications (the classic single-element pop/steal race resolving to
// two winners).
TEST(WorkStealingDeque, StressOneOwnerManyThievesExactlyOnce) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  WorkStealingDeque<int> d(static_cast<std::size_t>(kItems));
  std::vector<std::atomic<int>> claimed(kItems);
  for (auto& c : claimed) c.store(0, std::memory_order_relaxed);
  std::atomic<int> taken{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      int v = -1;
      while (!done.load(std::memory_order_acquire) ||
             taken.load(std::memory_order_acquire) < kItems) {
        if (d.steal(v)) {
          claimed[static_cast<std::size_t>(v)].fetch_add(
              1, std::memory_order_relaxed);
          taken.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: push everything, popping a batch every so often (the pipeline's
  // owner also consumes its own deque between expand flushes).
  int v = -1;
  for (int i = 0; i < kItems; ++i) {
    d.push(i);
    if (i % 7 == 6 && d.pop(v)) {
      claimed[static_cast<std::size_t>(v)].fetch_add(1,
                                                     std::memory_order_relaxed);
      taken.fetch_add(1, std::memory_order_acq_rel);
    }
  }
  while (d.pop(v)) {
    claimed[static_cast<std::size_t>(v)].fetch_add(1, std::memory_order_relaxed);
    taken.fetch_add(1, std::memory_order_acq_rel);
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : thieves) t.join();

  EXPECT_EQ(taken.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(claimed[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

// The pipeline's actual topology: every worker owns a deque, pushes its
// own ready bins, drains itself LIFO and steals round-robin when empty.
// Total work delivered must equal total work pushed.
TEST(WorkStealingDeque, StressAllWorkersOwnAndSteal) {
  constexpr int kWorkers = 4;
  constexpr int kPerWorker = 5000;
  std::vector<std::unique_ptr<WorkStealingDeque<int>>> deques;
  for (int w = 0; w < kWorkers; ++w) {
    deques.push_back(
        std::make_unique<WorkStealingDeque<int>>(kPerWorker));
  }
  std::atomic<int> remaining{kWorkers * kPerWorker};
  std::vector<std::atomic<int>> claimed(
      static_cast<std::size_t>(kWorkers) * kPerWorker);
  for (auto& c : claimed) c.store(0, std::memory_order_relaxed);

  std::vector<std::thread> workers;
  workers.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      // Produce this worker's items, interleaved with consumption —
      // exactly how the pipeline pushes bins while expand still runs.
      int produced = 0;
      int v = -1;
      const auto take = [&](int item) {
        claimed[static_cast<std::size_t>(item)].fetch_add(
            1, std::memory_order_relaxed);
        remaining.fetch_sub(1, std::memory_order_acq_rel);
      };
      while (remaining.load(std::memory_order_acquire) > 0) {
        if (produced < kPerWorker) {
          deques[static_cast<std::size_t>(w)]->push(w * kPerWorker +
                                                    produced++);
        }
        if (deques[static_cast<std::size_t>(w)]->pop(v)) {
          take(v);
          continue;
        }
        bool got = false;
        for (int k = 1; k < kWorkers && !got; ++k) {
          got = deques[static_cast<std::size_t>((w + k) % kWorkers)]->steal(v);
        }
        if (got) {
          take(v);
        } else if (produced == kPerWorker) {
          std::this_thread::yield();
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();

  EXPECT_EQ(remaining.load(), 0);
  for (std::size_t i = 0; i < claimed.size(); ++i) {
    EXPECT_EQ(claimed[i].load(), 1) << "item " << i;
  }
}

}  // namespace
}  // namespace pbs
