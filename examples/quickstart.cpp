// Quickstart: generate a sparse matrix, square it with PB-SpGEMM, inspect
// the telemetry, and cross-check against a baseline algorithm.
//
//   ./quickstart [scale] [edge_factor]
//
// This is the five-minute tour of the public API; the other examples show
// real workloads built on top of it.
#include <pbs/pbs.hpp>

#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const double edge_factor = argc > 2 ? std::atof(argv[2]) : 8.0;

  std::cout << "PB-SpGEMM quickstart: squaring an ER matrix, scale " << scale
            << " (n = " << (1 << scale) << "), edge factor " << edge_factor
            << "\n\n";

  // 1. Build a random matrix (COO from the generator, converted to CSR).
  const pbs::mtx::CsrMatrix a = pbs::mtx::coo_to_csr(
      pbs::mtx::generate_er(pbs::mtx::RandomScale{scale, edge_factor},
                            /*seed=*/42));
  std::cout << "A: " << a.nrows << " x " << a.ncols << ", nnz = " << a.nnz()
            << ", d = " << a.avg_degree() << "\n";

  // 2. A SpGemmProblem packages A in every format an algorithm may want.
  const pbs::SpGemmProblem problem = pbs::SpGemmProblem::square(a);

  // 3. Run PB-SpGEMM directly to get per-phase telemetry.
  const pbs::pb::PbResult r = pbs::pb::pb_spgemm(problem.a_csc, problem.b_csr);
  std::cout << "\nC = A^2: nnz = " << r.c.nnz() << ", flop = " << r.stats.flop
            << ", compression factor = " << r.stats.cf() << "\n";
  std::cout << "bins: " << r.stats.nbins << " (" << r.stats.rows_per_bin
            << " rows per bin)\n\n";

  auto report = [](const char* name, const pbs::pb::PhaseStats& s) {
    std::cout << "  " << name << ": " << s.seconds * 1e3 << " ms, "
              << s.gbs() << " GB/s (modeled traffic)\n";
  };
  report("symbolic", r.stats.symbolic);
  report("expand  ", r.stats.expand);
  report("sort    ", r.stats.sort);
  report("compress", r.stats.compress);
  report("convert ", r.stats.convert);
  std::cout << "  total   : " << r.stats.total_seconds() * 1e3 << " ms -> "
            << r.stats.mflops() << " MFLOPS\n\n";

  // 4. Compare with the Roofline prediction for this multiplication.
  const pbs::StreamResult stream = pbs::run_stream(1 << 22, 3);
  const pbs::model::SpGemmBounds bounds =
      pbs::model::bounds(stream.best_gbs(), r.stats.cf());
  std::cout << "Roofline (beta = " << stream.best_gbs()
            << " GB/s STREAM): outer-product bound = "
            << bounds.perf_outer * 1e3 << " MFLOPS, upper bound = "
            << bounds.perf_upper * 1e3 << " MFLOPS\n\n";

  // 5. Every baseline is one registry lookup away; results agree.
  const pbs::mtx::CsrMatrix via_hash = pbs::algorithm("hash").fn(problem);
  std::cout << "hash baseline agrees: "
            << (pbs::mtx::equal_approx(r.c, via_hash) ? "yes" : "NO")
            << "\n";
  return 0;
}
