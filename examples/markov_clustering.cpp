// Markov clustering (MCL) — the paper's headline machine-learning workload
// (Sec. I cites HipMCL [9]; squaring a column-stochastic matrix is exactly
// the "expansion" step that dominates MCL's runtime).
//
// The loop:  expand  M <- M·M           (SpGEMM — PB-SpGEMM here)
//            inflate M <- M .^ r        (element-wise power)
//            prune   drop tiny entries, keep top-k per column
//            normalize columns to 1
// until M reaches a (near) fixed point.  Clusters are then the connected
// sets of rows that "attract" each column.
//
// The prune step is FUSED into the expansion: inflation is monotone on
// the product's non-negative values, so "inflate then drop |v| < t and
// keep the top-k" selects exactly the entries "drop |v| < t^(1/r), keep
// the top-k" selects on the raw product.  The op's post_op runs that
// selection inside the SpGEMM kernels (PB applies it per bin, before CSR
// conversion ever sizes the output), so the unpruned expansion — the
// iteration's peak-memory spike in a post-pass formulation — is never
// materialized; only the surviving entries are inflated.
//
// The expansion step runs through a SpGemmExecutor: MCL multiplies every
// iteration and its structure ALTERNATES as pruning kicks in and the
// matrix settles, so the executor's fingerprint-keyed plan cache analyzes
// each distinct structure once (with algo "auto": roofline-selected once
// per structure), leases pipeline scratch from one pooled workspace
// across all iterations, and serves revisited structures from the cache
// — the counters printed at the end show the cache hit ratio and how
// much analysis was amortized away.
//
//   ./markov_clustering [n] [avg_degree] [inflation] [algo]   (algo: auto)
#include <pbs/pbs.hpp>

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

namespace {

// Cluster extraction: attractor rows are rows with a diagonal-dominant
// entry; every column joins the cluster of its largest entry's row.
std::vector<pbs::index_t> extract_clusters(const pbs::mtx::CsrMatrix& m) {
  // Work column-wise: transpose so each row lists a column's support.
  const pbs::mtx::CsrMatrix mt = pbs::mtx::transpose(m);
  std::vector<pbs::index_t> owner(static_cast<std::size_t>(mt.nrows), -1);
  for (pbs::index_t c = 0; c < mt.nrows; ++c) {
    const auto cols = mt.row_cols(c);
    const auto vals = mt.row_vals(c);
    pbs::value_t best = -1;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      if (vals[i] > best) {
        best = vals[i];
        owner[c] = cols[i];
      }
    }
  }
  return owner;
}

}  // namespace

int main(int argc, char** argv) {
  const pbs::index_t n = argc > 1 ? std::atoi(argv[1]) : 4096;
  const double degree = argc > 2 ? std::atof(argv[2]) : 6.0;
  const double inflation = argc > 3 ? std::atof(argv[3]) : 2.0;
  const std::string algo = argc > 4 ? argv[4] : "auto";

  std::cout << "Markov clustering (" << algo << "): n = " << n
            << ", degree = " << degree << ", inflation = " << inflation
            << "\n";

  // A graph with planted structure: a banded "community" backbone plus
  // random long-range edges.
  const pbs::mtx::CsrMatrix backbone =
      pbs::mtx::coo_to_csr(pbs::mtx::generate_banded(n, degree, 24, 3));
  const pbs::mtx::CsrMatrix noise =
      pbs::mtx::coo_to_csr(pbs::mtx::generate_er(n, n, 0.5, 4));
  const pbs::mtx::CsrMatrix graph = pbs::mtx::symmetrize(
      pbs::mtx::add(backbone, noise));

  // MCL works on a column-stochastic matrix with self-loops.
  pbs::mtx::CsrMatrix m = pbs::mtx::normalize_columns(
      pbs::mtx::add(graph, pbs::mtx::CsrMatrix::identity(n)));

  constexpr int kMaxIters = 20;
  constexpr pbs::value_t kPruneThreshold = 1e-5;
  constexpr pbs::index_t kKeepPerRow = 64;

  // One executor for the expansion site; pruning changes M's structure
  // between iterations, so each new shape is analyzed once and cached —
  // when MCL revisits a shape (or converges structurally) the multiply is
  // a cache hit, and the pooled workspace persists across all of it.
  pbs::SpGemmOp op;
  op.algo = algo;
  // Fused inflate-prune (header comment): the raw-product threshold whose
  // survivors are exactly the post-inflation kPruneThreshold survivors,
  // plus the top-k per row, both applied inside the kernels.
  op.post_op.prune_threshold = std::pow(kPruneThreshold, 1.0 / inflation);
  op.post_op.top_k = kKeepPerRow;
  pbs::SpGemmExecutor exec;
  pbs::RunInfo info;
  exec.prepare(pbs::SpGemmProblem::square(m), op, &info);
  std::cout << "expansion algorithm: " << info.algo;
  if (algo == "auto") std::cout << " (" << info.choice.rationale << ")";
  std::cout << "\n";

  double spgemm_seconds = 0;
  int iter = 0;
  for (; iter < kMaxIters; ++iter) {
    const pbs::mtx::CsrMatrix prev = m;

    const pbs::nnz_t flop = pbs::mtx::count_flops(m, m);
    pbs::Timer timer;
    const pbs::SpGemmProblem p = pbs::SpGemmProblem::square(m);
    const pbs::mtx::CsrMatrix expanded = exec.run(p, op);
    spgemm_seconds += timer.elapsed_s();
    const double cf = expanded.nnz() > 0
                          ? static_cast<double>(flop) /
                                static_cast<double>(expanded.nnz())
                          : 0.0;

    // `expanded` is already pruned and top-k-selected (fused post-op):
    // inflate the survivors and renormalize.
    m = pbs::mtx::normalize_columns(
        pbs::mtx::element_power(expanded, inflation));

    const pbs::value_t delta = pbs::mtx::max_abs_diff(m, prev);
    std::cout << "  iter " << iter << ": nnz = " << m.nnz()
              << ", expansion cf = " << cf << ", delta = " << delta
              << "\n";
    if (delta < 1e-6) break;
  }

  const std::vector<pbs::index_t> owner = extract_clusters(m);
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  int clusters = 0;
  for (const pbs::index_t o : owner) {
    if (o >= 0 && !seen[static_cast<std::size_t>(o)]) {
      seen[static_cast<std::size_t>(o)] = true;
      ++clusters;
    }
  }
  const pbs::ExecutorStats es = exec.stats();
  const pbs::pb::WorkspacePool::Stats pool = exec.pool_stats();
  const pbs::pb::PbWorkspace::Stats ws = exec.workspace_stats();
  std::cout << "converged after " << iter + 1 << " iterations; " << clusters
            << " clusters; SpGEMM time " << spgemm_seconds * 1e3 << " ms\n"
            << "executor: " << es.executes << " executes, " << es.cache_hits
            << " cache hits / " << es.cache_misses << " misses (hit ratio "
            << es.hit_ratio() << "); workspace pool " << pool.created
            << " created / " << pool.reused << " reused leases, buffers "
            << ws.allocations << " allocations / " << ws.reuses
            << " reuses\n";
  return 0;
}
