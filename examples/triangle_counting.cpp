// Triangle counting with masked SpGEMM — one of the paper's motivating
// graph-analytics workloads (Sec. I cites Azad/Buluç/Gilbert [2]).
//
// Algorithm: let L be the strictly lower-triangular part of the (pattern)
// adjacency matrix.  Each triangle {i > j > k} contributes exactly one to
// (L·L)(i,j) with (i,j) an edge of L, so
//
//     triangles = Σ ( (L·L) .* L )
//
//   ./triangle_counting [scale] [edge_factor]
//
// Runs on an R-MAT graph (skewed, like real social networks).  Two
// formulations are compared:
//   * multiply-then-Hadamard: full L·L with each registry algorithm, then
//     a separate masking pass;
//   * the fused masked descriptor (SpGemmOp{mask = L} through make_plan):
//     the mask rides inside the kernel — PB drops masked-out tuples at its
//     compress stage (the telemetry reports how many), the Gustavson row
//     loops skip them outright — and "auto" selection accounts for the
//     mask's density.
#include <pbs/pbs.hpp>

#include <cstdlib>
#include <iostream>

namespace {

double count_triangles(const pbs::mtx::CsrMatrix& lower, const char* algo,
                       double* seconds) {
  pbs::Timer timer;
  const pbs::SpGemmProblem p = pbs::SpGemmProblem::square(lower);
  const pbs::mtx::CsrMatrix ll = pbs::algorithm(algo).fn(p);
  const double count = pbs::mtx::value_sum(pbs::mtx::hadamard(ll, lower));
  *seconds = timer.elapsed_s();
  return count;
}

// The fused alternative through the operation descriptor: SpGEMM
// restricted to the mask's pattern skips every product outside L and the
// separate Hadamard pass.
double count_triangles_masked(const pbs::mtx::CsrMatrix& lower,
                              const char* algo, double* seconds,
                              pbs::nnz_t* pb_dropped) {
  pbs::Timer timer;
  const pbs::SpGemmProblem p = pbs::SpGemmProblem::square(lower);
  pbs::SpGemmOp op;
  op.algo = algo;
  op.mask = &lower;
  pbs::SpGemmPlan plan = pbs::make_plan(p, op);
  const double count = pbs::mtx::value_sum(plan.execute(p));
  *seconds = timer.elapsed_s();
  *pb_dropped =
      plan.algo() == "pb" ? plan.last_pb_stats().mask_dropped : 0;
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const double edge_factor = argc > 2 ? std::atof(argv[2]) : 8.0;

  pbs::mtx::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = 7;

  std::cout << "Triangle counting on an R-MAT graph, scale " << scale
            << ", edge factor " << edge_factor << "\n";

  // Undirected graph: symmetrize the generator output, strip self-loops,
  // keep the pattern only.
  const pbs::mtx::CsrMatrix adj = pbs::mtx::to_pattern(pbs::mtx::drop_diagonal(
      pbs::mtx::symmetrize(pbs::mtx::coo_to_csr(pbs::mtx::generate_rmat(params)))));
  const pbs::mtx::CsrMatrix lower = pbs::mtx::tril(adj);
  std::cout << "graph: " << adj.nrows << " vertices, " << adj.nnz() / 2
            << " edges\n";

  const pbs::mtx::SquareStats stats = pbs::mtx::square_stats(lower);
  std::cout << "L^2: flop = " << stats.flops << ", cf = " << stats.cf
            << (stats.cf < 4 ? "  (cf < 4: PB's favourable regime)\n"
                             : "  (cf > 4: hash's favourable regime)\n");

  std::cout << "multiply-then-Hadamard:\n";
  for (const char* algo : {"pb", "hash", "heap"}) {
    double seconds = 0;
    const double triangles = count_triangles(lower, algo, &seconds);
    std::cout << "  " << algo << ": " << static_cast<long long>(triangles)
              << " triangles in " << seconds * 1e3 << " ms\n";
  }
  std::cout << "fused masked descriptor (SpGemmOp{mask = L}):\n";
  for (const char* algo : {"pb", "hash", "heap", "auto"}) {
    double seconds = 0;
    pbs::nnz_t dropped = 0;
    const double triangles =
        count_triangles_masked(lower, algo, &seconds, &dropped);
    std::cout << "  " << algo << ": " << static_cast<long long>(triangles)
              << " triangles in " << seconds * 1e3 << " ms";
    if (dropped > 0) {
      std::cout << "  (pb compress dropped " << dropped
                << " masked-out tuples)";
    }
    std::cout << "\n";
  }
  return 0;
}
