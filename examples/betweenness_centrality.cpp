// Betweenness centrality with SpGEMM — the *first* application the paper
// cites (Sec. I, [1]): Brandes' algorithm batched over many sources, where
// every BFS level and every dependency-accumulation step is a sparse
// matrix product against an n x s frontier matrix.  This is also the
// workload behind the tall-and-skinny study in bench/ext_tall_skinny.
//
// Forward phase (per level d):
//   F_{d+1} = (Aᵀ · F_d) masked to unvisited vertices     — path counts
// Backward phase (from the deepest level up):
//   W_d   = (A · (delta ⊘ sigma at level d+1)) .* reached at level d
//   delta += sigma_d .* W_d
// Centrality(v) = Σ_sources delta(v) over non-source rows.
//
//   ./betweenness_centrality [scale] [edge_factor] [num_sources]
#include <pbs/pbs.hpp>

#include <cstdlib>
#include <iostream>
#include <vector>

namespace {

using pbs::index_t;
using pbs::nnz_t;
using pbs::value_t;
using pbs::mtx::CsrMatrix;

// Dense n x s panels keep the example readable; the SpGEMM happens on the
// sparse frontier matrices, which is where the paper's algorithms matter.
struct Panel {
  index_t n = 0, s = 0;
  std::vector<value_t> v;  // row-major n x s

  Panel(index_t n_, index_t s_) : n(n_), s(s_), v(static_cast<std::size_t>(n_) * s_, 0.0) {}
  value_t& at(index_t r, index_t c) { return v[static_cast<std::size_t>(r) * s + c]; }
  [[nodiscard]] value_t at(index_t r, index_t c) const {
    return v[static_cast<std::size_t>(r) * s + c];
  }
};

CsrMatrix panel_to_csr(const Panel& p) {
  pbs::mtx::CooMatrix coo(p.n, p.s);
  for (index_t r = 0; r < p.n; ++r) {
    for (index_t c = 0; c < p.s; ++c) {
      if (p.at(r, c) != 0.0) coo.add(r, c, p.at(r, c));
    }
  }
  coo.canonicalize();
  return pbs::mtx::coo_to_csr(coo);
}

}  // namespace

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 11;
  const double edge_factor = argc > 2 ? std::atof(argv[2]) : 8.0;
  const index_t nsources = argc > 3 ? std::atoi(argv[3]) : 32;

  pbs::mtx::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = 21;
  const CsrMatrix adj = pbs::mtx::to_pattern(pbs::mtx::drop_diagonal(
      pbs::mtx::coo_to_csr(pbs::mtx::generate_rmat(params))));
  const CsrMatrix adj_t = pbs::mtx::transpose(adj);
  const index_t n = adj.nrows;

  std::cout << "Betweenness centrality: " << n << " vertices, " << adj.nnz()
            << " edges, " << nsources << " sources (batched Brandes)\n";

  // sigma[d]: path counts discovered at level d (n x s sparse panels).
  Panel sigma_all(n, nsources);          // cumulative path counts
  std::vector<CsrMatrix> level_sigma;    // per-level discoveries

  // Level 0: each source starts with one path to itself.
  Panel f0(n, nsources);
  for (index_t s = 0; s < nsources; ++s) {
    const index_t v = (n / nsources) * s;
    f0.at(v, s) = 1.0;
    sigma_all.at(v, s) = 1.0;
  }
  CsrMatrix frontier = panel_to_csr(f0);
  level_sigma.push_back(frontier);
  // (v, s) pairs already visited — the forward step's complemented mask.
  CsrMatrix visited = pbs::mtx::to_pattern(frontier);

  // ONE executor serves both multiply sites — the plan cache is keyed by
  // structure × op identity, so the forward descriptor (with its fused
  // "unvisited only" complemented mask, no separate filtering pass) and
  // the backward one never collide, and every product leases scratch from
  // the same workspace pool across the whole forward + backward sweep.
  // The frontier panels change structure every level, so forward levels
  // are cache misses by design.
  pbs::SpGemmExecutor exec;
  pbs::SpGemmOp fwd_op;
  fwd_op.algo = "pb";
  fwd_op.mask = &visited;
  fwd_op.complement = true;
  exec.prepare(pbs::SpGemmProblem::multiply(adj_t, frontier), fwd_op);
  double spgemm_ms = 0;

  // ---- forward sweep: BFS levels with path counting ----
  while (frontier.nnz() > 0 && level_sigma.size() < 64) {
    pbs::Timer t;
    const pbs::SpGemmProblem p = pbs::SpGemmProblem::multiply(adj_t, frontier);
    // Path counts restricted to unvisited (v, s) pairs, in one fused step.
    frontier = exec.run(p, fwd_op);
    spgemm_ms += t.elapsed_ms();

    for (index_t v = 0; v < n; ++v) {
      const auto cols = frontier.row_cols(v);
      const auto vals = frontier.row_vals(v);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        sigma_all.at(v, cols[i]) += vals[i];
      }
    }
    // Mark *after* the level completes so same-level discoveries merge.
    visited = pbs::mtx::to_pattern(pbs::mtx::add(visited, frontier));
    if (frontier.nnz() > 0) level_sigma.push_back(frontier);
  }
  const int depth = static_cast<int>(level_sigma.size()) - 1;

  // ---- backward sweep: dependency accumulation ----
  Panel delta(n, nsources);
  pbs::SpGemmOp bwd_op;  // unmasked: the dependency loop reads W rows
  bwd_op.algo = "pb";
  for (int d = depth; d >= 1; --d) {
    // coeff = (1 + delta) / sigma on level-d vertices.
    pbs::mtx::CooMatrix coeff_coo(n, nsources);
    const CsrMatrix& lv = level_sigma[static_cast<std::size_t>(d)];
    for (index_t v = 0; v < n; ++v) {
      for (nnz_t i = lv.rowptr[v]; i < lv.rowptr[static_cast<std::size_t>(v) + 1]; ++i) {
        const index_t s = lv.colids[i];
        const value_t sg = sigma_all.at(v, s);
        if (sg != 0.0) coeff_coo.add(v, s, (1.0 + delta.at(v, s)) / sg);
      }
    }
    coeff_coo.canonicalize();
    const CsrMatrix coeff = pbs::mtx::coo_to_csr(coeff_coo);

    pbs::Timer t;
    const pbs::SpGemmProblem p = pbs::SpGemmProblem::multiply(adj, coeff);
    const CsrMatrix w = exec.run(p, bwd_op);
    spgemm_ms += t.elapsed_ms();

    // delta(u, s) += sigma(u, s) * w(u, s) for u on level d-1.
    const CsrMatrix& prev = level_sigma[static_cast<std::size_t>(d - 1)];
    for (index_t u = 0; u < n; ++u) {
      if (prev.row_nnz(u) == 0) continue;
      const auto wcols = w.row_cols(u);
      const auto wvals = w.row_vals(u);
      // prev row marks which sources have u at level d-1.
      for (const index_t s : prev.row_cols(u)) {
        for (std::size_t i = 0; i < wcols.size(); ++i) {
          if (wcols[i] == s) {
            delta.at(u, s) += sigma_all.at(u, s) * wvals[i];
            break;
          }
        }
      }
    }
  }

  // Aggregate centrality; report the top vertices.
  std::vector<std::pair<value_t, index_t>> score(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    value_t acc = 0;
    for (index_t s = 0; s < nsources; ++s) acc += delta.at(v, s);
    score[static_cast<std::size_t>(v)] = {acc, v};
  }
  std::sort(score.rbegin(), score.rend());
  const pbs::ExecutorStats es = exec.stats();
  const pbs::pb::PbWorkspace::Stats ws = exec.workspace_stats();
  std::cout << "BFS depth " << depth << ", SpGEMM time " << spgemm_ms
            << " ms\nexecutor (both sites): " << es.executes
            << " executes, " << es.cache_misses << " cache misses / "
            << es.cache_hits << " hits; pooled buffers " << ws.allocations
            << " allocations / " << ws.reuses << " reuses\n";
  std::cout << "top-5 central vertices:\n";
  for (int i = 0; i < 5 && i < n; ++i) {
    std::cout << "  v" << score[static_cast<std::size_t>(i)].second
              << "  bc = " << score[static_cast<std::size_t>(i)].first << "\n";
  }
  return 0;
}
