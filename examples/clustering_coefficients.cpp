// Local clustering coefficients — another graph-analytics workload from
// the paper's introduction (Sec. I lists "clustering coefficients" next to
// triangle counting).
//
//   cc(v) = 2 · triangles(v) / (deg(v) · (deg(v) − 1))
//
// Per-vertex triangle counts come from one masked SpGEMM: with A the
// undirected adjacency pattern, (A·A).*A counts, for every edge (u,v), the
// common neighbours of u and v; the row sums of that matrix are
// 2·triangles(v).  Everything here is public-API plumbing around
// spgemm_masked.
//
//   ./clustering_coefficients [scale] [edge_factor]
#include <pbs/pbs.hpp>

#include <cstdlib>
#include <iostream>
#include <vector>

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 13;
  const double edge_factor = argc > 2 ? std::atof(argv[2]) : 8.0;

  pbs::mtx::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = 31;
  const pbs::mtx::CsrMatrix adj = pbs::mtx::to_pattern(pbs::mtx::drop_diagonal(
      pbs::mtx::symmetrize(pbs::mtx::coo_to_csr(pbs::mtx::generate_rmat(params)))));
  const pbs::index_t n = adj.nrows;

  std::cout << "Clustering coefficients on an R-MAT graph: " << n
            << " vertices, " << adj.nnz() / 2 << " edges\n";

  pbs::Timer timer;
  const pbs::mtx::CsrMatrix wedge_closures = pbs::spgemm_masked(adj, adj, adj);
  const std::vector<pbs::value_t> tri2 = pbs::mtx::row_sums(wedge_closures);
  const double spgemm_ms = timer.elapsed_ms();

  // Per-vertex coefficient + distribution summary.
  double total_cc = 0;
  pbs::index_t eligible = 0;
  std::vector<int> histogram(10, 0);
  for (pbs::index_t v = 0; v < n; ++v) {
    const auto deg = static_cast<double>(adj.row_nnz(v));
    if (deg < 2) continue;
    const double cc = tri2[v] / (deg * (deg - 1.0));
    total_cc += cc;
    ++eligible;
    const int bucket = std::min(9, static_cast<int>(cc * 10));
    ++histogram[bucket];
  }

  const double triangles =
      pbs::mtx::value_sum(wedge_closures) / 6.0;  // each counted 6x in A·A.*A
  std::cout << "triangles: " << static_cast<long long>(triangles)
            << ", average clustering coefficient: "
            << (eligible ? total_cc / eligible : 0.0) << " (over " << eligible
            << " vertices with degree >= 2)\n";
  std::cout << "cc distribution (deciles):";
  for (const int h : histogram) std::cout << " " << h;
  std::cout << "\nmasked SpGEMM time: " << spgemm_ms << " ms\n";
  return 0;
}
