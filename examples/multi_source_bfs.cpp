// Multi-source breadth-first search as SpGEMM — another of the paper's
// motivating workloads (Sec. I cites Gilbert/Reinhardt/Shah [3]).
//
// The frontier of `s` simultaneous BFS traversals is an n x s indicator
// matrix F; one step of all searches at once is the sparse product
// F' = Aᵀ·F over the boolean (∨, ∧) semiring, masked to vertices not yet
// visited by that search.  SpGEMM turns the classic pointer-chasing BFS
// into bulk, bandwidth-friendly work — exactly the trade PB-SpGEMM is
// designed for.  The whole step is ONE operation descriptor:
//
//   SpGemmOp op;
//   op.semiring = "bool_or_and";
//   op.mask = &visited; op.complement = true;   // "unvisited only", fused
//
// run through a SpGemmExecutor: the frontier's structure changes every
// level, so each level is a plan-cache miss (counted below), but the
// pipeline scratch stays pooled across the whole traversal, the
// complemented visited mask is fused into the kernel (no separate
// filtering pass), and with "auto" the algorithm is re-selected as the
// frontier fattens and thins.
//
//   ./multi_source_bfs [scale] [edge_factor] [num_sources] [algo]  (algo: auto)
#include <pbs/pbs.hpp>

#include <cstdlib>
#include <iostream>
#include <vector>

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const double edge_factor = argc > 2 ? std::atof(argv[2]) : 8.0;
  const pbs::index_t nsources = argc > 3 ? std::atoi(argv[3]) : 64;
  const std::string algo = argc > 4 ? argv[4] : "auto";

  pbs::mtx::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = 11;
  const pbs::mtx::CsrMatrix adj =
      pbs::mtx::coo_to_csr(pbs::mtx::generate_rmat(params));
  const pbs::index_t n = adj.nrows;
  // F' = Aᵀ F walks edges u->v from frontier row u to row v.
  const pbs::mtx::CsrMatrix at = pbs::mtx::transpose(adj);

  std::cout << "Multi-source BFS: " << n << " vertices, " << adj.nnz()
            << " edges, " << nsources << " sources\n";

  // Initial frontier: sources spread across the id space, one per column.
  pbs::mtx::CooMatrix fcoo(n, nsources);
  for (pbs::index_t s = 0; s < nsources; ++s) {
    fcoo.add((n / nsources) * s, s, 1.0);
  }
  fcoo.canonicalize();
  pbs::mtx::CsrMatrix frontier = pbs::mtx::coo_to_csr(fcoo);
  // (v, s) pairs already visited — the complemented mask of the step.
  // The descriptor captures its address; the pattern changes every level,
  // which the plan explicitly allows (only structure of A·F is
  // fingerprinted).
  pbs::mtx::CsrMatrix visited = frontier;

  // One descriptor for the frontier-expansion site: boolean semiring with
  // the fused "unvisited only" complemented mask.  Unsupported
  // (algo, semiring) pairs fail loudly at plan time.
  pbs::SpGemmOp op;
  op.algo = algo;
  op.semiring = "bool_or_and";
  op.mask = &visited;
  op.complement = true;
  pbs::SpGemmExecutor exec;
  pbs::RunInfo info;
  exec.prepare(pbs::SpGemmProblem::multiply(at, frontier), op, &info);
  std::cout << "step algorithm: " << info.algo << "\n";

  pbs::nnz_t total_reached = frontier.nnz();
  double spgemm_seconds = 0;
  int depth = 0;
  while (frontier.nnz() > 0) {
    pbs::Timer timer;
    const pbs::SpGemmProblem p = pbs::SpGemmProblem::multiply(at, frontier);
    // One fused step: expand + mask out visited, no separate filter pass.
    frontier = exec.run(p, op);
    spgemm_seconds += timer.elapsed_s();

    visited = pbs::mtx::to_pattern(pbs::mtx::add(visited, frontier));
    total_reached += frontier.nnz();
    ++depth;
    std::cout << "  level " << depth << ": frontier " << frontier.nnz()
              << " (vertex, search) pairs\n";
    if (depth > 64) break;  // safety on pathological graphs
  }

  const pbs::ExecutorStats es = exec.stats();
  const pbs::pb::PbWorkspace::Stats ws = exec.workspace_stats();
  std::cout << "done: depth " << depth << ", " << total_reached
            << " total visits, SpGEMM time " << spgemm_seconds * 1e3
            << " ms\n"
            << "executor: " << es.executes << " executes, "
            << es.cache_misses
            << " cache misses (frontier structure changes per level), "
            << es.cache_hits << " hits; pooled buffers " << ws.allocations
            << " allocations / " << ws.reuses << " reuses\n";
  return 0;
}
