// Multi-source breadth-first search as SpGEMM — another of the paper's
// motivating workloads (Sec. I cites Gilbert/Reinhardt/Shah [3]).
//
// The frontier of `s` simultaneous BFS traversals is an n x s indicator
// matrix F; one step of all searches at once is the sparse product
// F' = Aᵀ·F over the boolean (∨, ∧) semiring, followed by masking out
// visited vertices.  SpGEMM turns the classic pointer-chasing BFS into
// bulk, bandwidth-friendly work — exactly the trade PB-SpGEMM is designed
// for.  The step runs through a SpGemmPlan over bool_or_and: the frontier's
// structure changes every level, so each level replans (counted below),
// but the pipeline scratch stays pooled across the whole traversal and an
// "auto" plan re-selects the algorithm as the frontier fattens and thins.
//
//   ./multi_source_bfs [scale] [edge_factor] [num_sources] [algo]  (algo: auto)
#include <pbs/pbs.hpp>

#include <cstdlib>
#include <iostream>
#include <vector>

int main(int argc, char** argv) {
  const int scale = argc > 1 ? std::atoi(argv[1]) : 14;
  const double edge_factor = argc > 2 ? std::atof(argv[2]) : 8.0;
  const pbs::index_t nsources = argc > 3 ? std::atoi(argv[3]) : 64;
  const std::string algo = argc > 4 ? argv[4] : "auto";

  pbs::mtx::RmatParams params;
  params.scale = scale;
  params.edge_factor = edge_factor;
  params.seed = 11;
  const pbs::mtx::CsrMatrix adj =
      pbs::mtx::coo_to_csr(pbs::mtx::generate_rmat(params));
  const pbs::index_t n = adj.nrows;
  // F' = Aᵀ F walks edges u->v from frontier row u to row v.
  const pbs::mtx::CsrMatrix at = pbs::mtx::transpose(adj);

  std::cout << "Multi-source BFS: " << n << " vertices, " << adj.nnz()
            << " edges, " << nsources << " sources\n";

  // Initial frontier: sources spread across the id space, one per column.
  pbs::mtx::CooMatrix fcoo(n, nsources);
  std::vector<pbs::index_t> level(static_cast<std::size_t>(n) * 0 + 0);
  std::vector<std::vector<bool>> visited(
      static_cast<std::size_t>(nsources),
      std::vector<bool>(static_cast<std::size_t>(n), false));
  for (pbs::index_t s = 0; s < nsources; ++s) {
    const pbs::index_t v = (n / nsources) * s;
    fcoo.add(v, s, 1.0);
    visited[static_cast<std::size_t>(s)][static_cast<std::size_t>(v)] = true;
  }
  fcoo.canonicalize();
  pbs::mtx::CsrMatrix frontier = pbs::mtx::coo_to_csr(fcoo);

  // One plan for the frontier-expansion site over the boolean semiring;
  // unsupported (algo, semiring) pairs fail loudly at plan time.
  pbs::PlanOptions opts;
  opts.algo = algo;
  opts.semiring = "bool_or_and";
  pbs::SpGemmPlan plan =
      pbs::make_plan(pbs::SpGemmProblem::multiply(at, frontier), opts);
  std::cout << "step algorithm: " << plan.algo() << "\n";

  pbs::nnz_t total_reached = nsources;
  double spgemm_seconds = 0;
  int depth = 0;
  while (frontier.nnz() > 0) {
    pbs::Timer timer;
    const pbs::SpGemmProblem p = pbs::SpGemmProblem::multiply(at, frontier);
    const pbs::mtx::CsrMatrix next = plan.execute(p);
    spgemm_seconds += timer.elapsed_s();

    // Mask: keep only vertices not yet visited by that search.
    pbs::mtx::CooMatrix masked(n, nsources);
    for (pbs::index_t v = 0; v < n; ++v) {
      for (const pbs::index_t s : next.row_cols(v)) {
        auto& seen = visited[static_cast<std::size_t>(s)];
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = true;
          masked.add(v, s, 1.0);
        }
      }
    }
    masked.canonicalize();
    frontier = pbs::mtx::coo_to_csr(masked);
    total_reached += frontier.nnz();
    ++depth;
    std::cout << "  level " << depth << ": frontier " << frontier.nnz()
              << " (vertex, search) pairs\n";
    if (depth > 64) break;  // safety on pathological graphs
  }

  const pbs::PlanTelemetry& ptm = plan.telemetry();
  const pbs::pb::PbWorkspace::Stats ws = plan.workspace_stats();
  std::cout << "done: depth " << depth << ", " << total_reached
            << " total visits, SpGEMM time " << spgemm_seconds * 1e3
            << " ms\n"
            << "plan: " << ptm.executes << " executes, " << ptm.replans
            << " replans (frontier structure changes per level), "
            << ptm.analysis_reuses << " analysis reuses; workspace "
            << ws.allocations << " allocations / " << ws.reuses
            << " reuses\n";
  return 0;
}
