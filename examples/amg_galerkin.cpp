// Algebraic-multigrid Galerkin triple product R·A·P — the paper's
// scientific-computing workload (Sec. I cites Ballard/Siefert/Hu [6]; AMG
// setup is dominated by exactly these sparse triple products).
//
// Builds a 2-D five-point Poisson operator, a full-coarsening linear
// interpolation P, and computes the coarse-grid operators of a multilevel
// hierarchy with SpGEMM, verifying stencil structure at every level.
//
//   ./amg_galerkin [grid_side] [levels]
#include <pbs/pbs.hpp>

#include <cstdlib>
#include <iostream>

namespace {

// 2-D Poisson on a g x g grid: 4 on the diagonal, -1 to the four neighbors.
pbs::mtx::CsrMatrix poisson2d(pbs::index_t g) {
  pbs::mtx::CooMatrix coo(g * g, g * g);
  auto id = [g](pbs::index_t x, pbs::index_t y) { return y * g + x; };
  for (pbs::index_t y = 0; y < g; ++y) {
    for (pbs::index_t x = 0; x < g; ++x) {
      coo.add(id(x, y), id(x, y), 4.0);
      if (x > 0) coo.add(id(x, y), id(x - 1, y), -1.0);
      if (x + 1 < g) coo.add(id(x, y), id(x + 1, y), -1.0);
      if (y > 0) coo.add(id(x, y), id(x, y - 1), -1.0);
      if (y + 1 < g) coo.add(id(x, y), id(x, y + 1), -1.0);
    }
  }
  coo.canonicalize();
  return pbs::mtx::coo_to_csr(coo);
}

// Bilinear interpolation from a (g/2 x g/2) coarse grid to the fine grid.
pbs::mtx::CsrMatrix interpolation2d(pbs::index_t g) {
  const pbs::index_t gc = g / 2;
  pbs::mtx::CooMatrix coo(g * g, gc * gc);
  auto fine = [g](pbs::index_t x, pbs::index_t y) { return y * g + x; };
  auto coarse = [gc](pbs::index_t x, pbs::index_t y) { return y * gc + x; };
  for (pbs::index_t cy = 0; cy < gc; ++cy) {
    for (pbs::index_t cx = 0; cx < gc; ++cx) {
      const pbs::index_t fx = 2 * cx + 1, fy = 2 * cy + 1;
      for (pbs::index_t dy = -1; dy <= 1; ++dy) {
        for (pbs::index_t dx = -1; dx <= 1; ++dx) {
          const pbs::index_t x = fx + dx, y = fy + dy;
          if (x < 0 || x >= g || y < 0 || y >= g) continue;
          const double w = (dx == 0 ? 1.0 : 0.5) * (dy == 0 ? 1.0 : 0.5);
          coo.add(fine(x, y), coarse(cx, cy), w);
        }
      }
    }
  }
  coo.canonicalize();
  return pbs::mtx::coo_to_csr(coo);
}

}  // namespace

int main(int argc, char** argv) {
  pbs::index_t g = argc > 1 ? std::atoi(argv[1]) : 256;
  const int levels = argc > 2 ? std::atoi(argv[2]) : 4;

  std::cout << "AMG Galerkin hierarchy: " << g << " x " << g
            << " Poisson grid, " << levels << " levels\n";
  pbs::mtx::CsrMatrix a = poisson2d(g);

  // One executor for both triple-product sites (A·P and R·(AP)).  Each
  // level's operators shrink, so every level's two products are plan-
  // cache misses — but both sites lease their pipeline scratch from the
  // executor's one workspace pool (sized by the finest level, reused by
  // every coarser one), "auto" re-selects as the stencils densify, and a
  // V-cycle revisiting the hierarchy would hit every cached level.
  pbs::SpGemmOp op;
  op.algo = "auto";
  pbs::SpGemmExecutor exec;

  double spgemm_seconds = 0;
  for (int level = 0; level < levels && g >= 8; ++level) {
    const pbs::mtx::CsrMatrix p = interpolation2d(g);
    const pbs::mtx::CsrMatrix r = pbs::mtx::transpose(p);

    pbs::Timer timer;
    const pbs::SpGemmProblem ap_prob = pbs::SpGemmProblem::multiply(a, p);
    const pbs::mtx::CsrMatrix ap = exec.run(ap_prob, op);
    const pbs::SpGemmProblem rap_prob = pbs::SpGemmProblem::multiply(r, ap);
    const pbs::mtx::CsrMatrix coarse = exec.run(rap_prob, op);
    spgemm_seconds += timer.elapsed_s();

    const pbs::mtx::SquareStats ap_stats = pbs::mtx::square_stats(a);
    std::cout << "  level " << level << ": fine n = " << a.nrows
              << " (nnz " << a.nnz() << ", d " << a.avg_degree()
              << ", cf(A^2) " << ap_stats.cf << ") -> coarse n = "
              << coarse.nrows << " (nnz " << coarse.nnz() << ")\n";

    // Invariants of a Galerkin coarse operator on a symmetric fine matrix.
    if (!pbs::mtx::equal_approx(coarse, pbs::mtx::transpose(coarse), 1e-10,
                                1e-10)) {
      std::cerr << "ERROR: coarse operator lost symmetry\n";
      return 1;
    }
    a = coarse;
    g /= 2;
  }
  std::cout << "hierarchy built; total SpGEMM time " << spgemm_seconds * 1e3
            << " ms\n";
  const pbs::ExecutorStats es = exec.stats();
  const pbs::pb::WorkspacePool::Stats pool = exec.pool_stats();
  std::cout << "executor (both sites): " << es.executes << " executes, "
            << es.cache_misses << " cache misses (every level is new) / "
            << es.cache_hits << " hits; workspace pool " << pool.created
            << " created / " << pool.reused << " reused leases\n";
  return 0;
}
