// All-pairs shortest paths by min-plus matrix squaring.
//
// Over the tropical semiring (min, +), D_{2k} = D_k ⊗ D_k doubles the
// maximum path length captured by the distance matrix, so ceil(log2(n))
// squarings compute the full APSP closure — every squaring is a SpGEMM.
// Each squaring runs the bandwidth-optimized PB pipeline over (min, +)
// through the unified (algorithm × semiring) registry; pass a different
// algorithm name to compare (e.g. spa runs the dense-accumulator
// fallback).
//
//   ./apsp_minplus [n] [avg_degree] [algo]
#include <pbs/pbs.hpp>

#include <cmath>
#include <cstdlib>
#include <iostream>

int main(int argc, char** argv) {
  const pbs::index_t n = argc > 1 ? std::atoi(argv[1]) : 1024;
  const double degree = argc > 2 ? std::atof(argv[2]) : 4.0;
  const std::string algo = argc > 3 ? argv[3] : "pb";
  const pbs::SpGemmFn square = pbs::semiring_algorithm(algo, "min_plus");

  std::cout << "APSP via min-plus squaring (" << algo << "): n = " << n
            << ", degree = " << degree << "\n";

  // Random weighted digraph with unit-ish weights and 0-weight self-loops
  // (the identity of the tropical semiring's matrix monoid).
  pbs::mtx::CooMatrix coo = pbs::mtx::generate_er(n, n, degree, 5);
  for (auto& v : coo.val) v = 1.0 + v;  // weights in (1, 2]
  for (pbs::index_t i = 0; i < n; ++i) coo.add(i, i, 0.0);
  coo.canonicalize();
  // canonicalize() sums duplicates; the self-loop slots held only one entry
  // each unless the generator emitted (i, i), whose weight only shortens
  // trivial cycles — harmless for distances.
  pbs::mtx::CsrMatrix dist = pbs::mtx::coo_to_csr(coo);

  const int rounds = static_cast<int>(std::ceil(std::log2(std::max(2, n))));
  double total_ms = 0;
  for (int round = 0; round < rounds; ++round) {
    pbs::Timer t;
    pbs::mtx::CsrMatrix next = square(pbs::SpGemmProblem::square(dist));
    const double ms = t.elapsed_ms();
    total_ms += ms;
    const pbs::value_t delta = pbs::mtx::max_abs_diff(next, dist);
    std::cout << "  squaring " << round << ": nnz " << next.nnz() << " ("
              << ms << " ms), max distance change " << delta << "\n";
    dist = std::move(next);
    if (delta < 1e-12) break;  // closure reached (up to FP noise)
  }

  // Report reachability coverage and the distance spectrum.
  const auto reachable = static_cast<double>(dist.nnz());
  pbs::value_t max_finite = 0;
  for (const pbs::value_t v : dist.vals) max_finite = std::max(max_finite, v);
  std::cout << "closure: " << reachable / (static_cast<double>(n) * n) * 100
            << "% of pairs reachable, diameter (weighted) = " << max_finite
            << ", SpGEMM time " << total_ms << " ms\n";
  return 0;
}
