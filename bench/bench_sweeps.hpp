// The random-matrix sweep driver shared by the Fig. 7/8 (ER) and Fig. 9/10
// (R-MAT) benches: for each (scale, edge factor), time the paper's four
// algorithms and report PB's per-phase sustained bandwidth.
#pragma once

#include <cmath>
#include <string>

#include "bench_common.hpp"
#include "matrix/convert.hpp"
#include "matrix/generate.hpp"

namespace pbs::bench {

enum class MatrixKind { kEr, kRmat };

inline mtx::CsrMatrix make_random(MatrixKind kind, int scale, double ef,
                                  std::uint64_t seed) {
  if (kind == MatrixKind::kEr) {
    return mtx::coo_to_csr(mtx::generate_er(mtx::RandomScale{scale, ef}, seed));
  }
  mtx::RmatParams p;  // Graph500 skew parameters are the defaults
  p.scale = scale;
  p.edge_factor = ef;
  p.seed = seed;
  return mtx::coo_to_csr(mtx::generate_rmat(p));
}

/// Figs. 7a/8/9a/10 (performance) + 7b/9b (PB sustained bandwidth).
/// Multiplies two *distinct* random matrices of the same scale/edge factor,
/// as the paper does for random inputs (Sec. IV-C).
inline void run_random_sweep(const std::string& artifact, MatrixKind kind,
                             const Args& args) {
  const std::vector<int> scales = args.get_int_list("scales", {12, 13, 14});
  const std::vector<int> efs = args.get_int_list("efs", {4, 8, 16});
  const int reps = args.get_int("reps", 3);
  const int warmup = args.get_int("warmup", 2);
  const int threads = args.get_int("threads", 0);
  const auto algo_names = args.get_string_list(
      "algos", {"pb", "heap", "hash", "hashvec"});

  if (threads > 0) set_threads(threads);
  print_header(artifact,
               "multiplying two random matrices per point; MFLOPS = flop / "
               "best wall time of " +
                   std::to_string(reps) + " runs");

  Table perf([&] {
    std::vector<std::string> h{"scale", "ef", "flop", "cf"};
    for (const auto& a : algo_names) h.push_back(a + "(MF/s)");
    return h;
  }());

  // Per format (the auto-selected one first, then wide-forced as the
  // ablation): phase bandwidths plus the sort+compress seconds the
  // narrow-key stream is meant to shrink.
  Table bw({"scale", "ef", "format", "B/t", "expand(GB/s)", "sort(GB/s)",
            "compress(GB/s)", "convert(GB/s)", "sort+comp(ms)",
            "overall(MF/s)"});

  // Compressed-stream ablation: the same points multiplied over
  // bool_or_and with the 8 B key-only stream (auto) vs the 12 B narrow
  // stream (forced), plus the 8 B narrow-f32 stream on the numeric
  // semiring.  The key-only compress drops the semiring add and the value
  // scatter from every radix pass, so sort+compress is where the win
  // concentrates.
  Table stream({"scale", "ef", "semiring", "format", "B/t", "sort+comp(ms)",
                "vs narrow", "overall(MF/s)"});

  JsonSink json(args);
  double sc_speedup_product = 1.0;
  int sc_speedup_points = 0;
  double keyonly_speedup_product = 1.0;
  int keyonly_speedup_points = 0;

  for (const int scale : scales) {
    for (const int ef : efs) {
      const mtx::CsrMatrix a =
          make_random(kind, scale, ef, 1000 + static_cast<std::uint64_t>(scale));
      const mtx::CsrMatrix b =
          make_random(kind, scale, ef, 2000 + static_cast<std::uint64_t>(scale));
      const SpGemmProblem problem = SpGemmProblem::multiply(a, b);
      const nnz_t flop = mtx::count_flops(a, b);
      const nnz_t nnzc = mtx::symbolic_nnz(a, b);
      const double cf = nnzc > 0 ? static_cast<double>(flop) / nnzc : 0.0;

      std::vector<double> mflops;
      for (const auto& name : algo_names) {
        mflops.push_back(
            algo_mflops(algorithm(name), problem, flop, reps, warmup));
      }

      std::vector<std::string> cells{std::to_string(scale),
                                     std::to_string(ef),
                                     std::to_string(flop)};
      {
        std::ostringstream ss;
        ss << std::setprecision(3) << cf;
        cells.push_back(ss.str());
      }
      for (const double m : mflops) {
        std::ostringstream ss;
        ss << std::setprecision(4) << m;
        cells.push_back(ss.str());
      }
      perf.row_cells(std::move(cells));

      pb::PbConfig auto_cfg;  // FormatPolicy::kAuto — narrow when it fits
      pb::PbConfig wide_cfg;
      wide_cfg.format = pb::FormatPolicy::kWide;
      const pb::PbTelemetry t =
          pb_best_telemetry(problem, auto_cfg, reps, warmup);
      // The wide-forced ablation only measures something new when auto
      // actually packed narrow.
      const pb::PbTelemetry tw =
          t.format == pb::TupleFormat::kWide
              ? t
              : pb_best_telemetry(problem, wide_cfg, reps, warmup);
      for (const pb::PbTelemetry* tm : {&t, &tw}) {
        bw.row(scale, ef, to_string(tm->format), tm->tuple_bytes(),
               tm->expand.gbs(), tm->sort.gbs(), tm->compress.gbs(),
               tm->convert.gbs(),
               (tm->sort.seconds + tm->compress.seconds) * 1e3, tm->mflops());
      }
      if (t.format == pb::TupleFormat::kNarrow) {
        const double sc_auto = t.sort.seconds + t.compress.seconds;
        const double sc_wide = tw.sort.seconds + tw.compress.seconds;
        if (sc_auto > 0) {
          sc_speedup_product *= sc_wide / sc_auto;
          ++sc_speedup_points;
        }
      }

      pb::PbConfig narrow_cfg;
      narrow_cfg.format = pb::FormatPolicy::kNarrow;
      pb::PbConfig f32_cfg;
      f32_cfg.format = pb::FormatPolicy::kF32;
      // Boolean sweep: auto resolves to key-only (bool_or_and is
      // value-free); the narrow-forced run is the 12 B baseline the
      // acceptance floor compares against.
      const pb::PbTelemetry tko =
          pb_best_telemetry_named("bool_or_and", problem, auto_cfg, reps,
                                  warmup);
      const pb::PbTelemetry tbn =
          pb_best_telemetry_named("bool_or_and", problem, narrow_cfg, reps,
                                  warmup);
      const pb::PbTelemetry tf32 =
          pb_best_telemetry(problem, f32_cfg, reps, warmup);
      const double sc_narrow = tbn.sort.seconds + tbn.compress.seconds;
      auto stream_row = [&](const std::string& semiring,
                            const pb::PbTelemetry& tm) {
        const double sc = tm.sort.seconds + tm.compress.seconds;
        stream.row(scale, ef, semiring, to_string(tm.format),
                   tm.tuple_bytes(), sc * 1e3,
                   sc > 0 ? sc_narrow / sc : 0.0, tm.mflops());
      };
      stream_row("bool_or_and", tko);
      stream_row("bool_or_and", tbn);
      stream_row("plus_times", tf32);
      if (tko.format == pb::TupleFormat::kKeyOnly &&
          tbn.format == pb::TupleFormat::kNarrow) {
        const double sc_keyonly = tko.sort.seconds + tko.compress.seconds;
        if (sc_keyonly > 0) {
          keyonly_speedup_product *= sc_narrow / sc_keyonly;
          ++keyonly_speedup_points;
        }
      }

      if (json.enabled()) {
        Json algos;
        for (std::size_t i = 0; i < algo_names.size(); ++i) {
          algos.field(algo_names[i], mflops[i]);
        }
        auto pb_record = [](const pb::PbTelemetry& tm) {
          return Json()
              .field("format", std::string(to_string(tm.format)))
              .field("bytes_per_tuple", tm.tuple_bytes())
              .field("expand_s", tm.expand.seconds)
              .field("sort_s", tm.sort.seconds)
              .field("compress_s", tm.compress.seconds)
              .field("convert_s", tm.convert.seconds)
              .field("gflops", tm.mflops() / 1e3)
              .str();
        };
        json.add(Json()
                     .field("bench", std::string("random_sweep"))
                     .field("kind", std::string(kind == MatrixKind::kEr
                                                    ? "er"
                                                    : "rmat"))
                     .field("scale", std::int64_t{scale})
                     .field("ef", std::int64_t{ef})
                     .field("flop", std::int64_t{flop})
                     .field("cf", cf)
                     .raw("mflops", algos.str())
                     .raw("pb", pb_record(t))
                     .raw("pb_wide", pb_record(tw))
                     .raw("pb_bool_keyonly", pb_record(tko))
                     .raw("pb_bool_narrow", pb_record(tbn))
                     .raw("pb_f32", pb_record(tf32)));
      }
    }
  }

  std::cout << "## Performance (paper plots MFLOPS; its text's 'GFLOPS' is a "
               "units typo — the Roofline caps ER at ~3 GFLOPS)\n";
  perf.print(std::cout);
  std::cout << "\n## PB-SpGEMM sustained bandwidth per phase (Table III byte "
               "model), auto-selected format vs wide-forced\n";
  bw.print(std::cout);
  if (sc_speedup_points > 0) {
    std::cout << "\n# narrow-format sort+compress speedup vs wide (geomean over "
              << sc_speedup_points << " points): "
              << std::pow(sc_speedup_product, 1.0 / sc_speedup_points)
              << "x\n";
  }
  std::cout << "\n## Compressed streams: key-only (8 B) vs narrow (12 B) on "
               "bool_or_and, narrow-f32 (8 B) on plus_times\n";
  stream.print(std::cout);
  if (keyonly_speedup_points > 0) {
    std::cout << "\n# key-only sort+compress speedup vs narrow on bool_or_and "
                 "(geomean over "
              << keyonly_speedup_points << " points): "
              << std::pow(keyonly_speedup_product,
                          1.0 / keyonly_speedup_points)
              << "x\n";
  }
}

}  // namespace pbs::bench
