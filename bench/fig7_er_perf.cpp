// Fig. 7 — ER random matrices on platform 1 (paper: single Skylake socket):
//   (a) MFLOPS of PB / Heap / Hash / HashVec across scales and edge factors
//   (b) PB-SpGEMM's sustained bandwidth per phase.
//
// Expected shape (paper Sec. V-B): PB's performance is flat in scale and
// edge factor and above the column algorithms; its per-phase bandwidth
// approaches this host's STREAM value (run bench/table5_stream for beta).
#include "bench_sweeps.hpp"

int main(int argc, char** argv) {
  const pbs::bench::Args args(argc, argv);
  pbs::bench::run_random_sweep(
      "Fig. 7 — performance and bandwidth on ER matrices (platform 1)",
      pbs::bench::MatrixKind::kEr, args);
  return 0;
}
