// Robustness-machinery overhead gate: the PR 8 hardening (fault-injection
// hooks on every phase boundary and budgeted allocation, cancellation
// polling in the expand/sort inner loops, budget accounting in the
// workspace) is compiled into ALL builds, so its cost when idle must be
// noise.  This bench runs the fig7-style ER sweep through the executor
// twice per point, interleaved rep by rep:
//
//   idle  — injector disarmed (one relaxed atomic load per hook), no
//           deadline, no token: the default serving path.
//   armed — injector enabled but never firing (allocation countdown far
//           beyond any run) AND a linked cancel token with a far-future
//           deadline, so every hook takes its slow path and every poll
//           site reads the throttled clock — the worst non-faulting case.
//
// The gate (CI reads the JSON): geomean over points of
// armed_mflops / idle_mflops >= 0.97, i.e. the armed machinery costs at
// most ~3%.
#include <cmath>
#include <cstdint>

#include "bench_sweeps.hpp"
#include "common/cancel.hpp"
#include "common/fault.hpp"
#include "spgemm/executor.hpp"

using namespace pbs;

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::vector<int> scales = args.get_int_list("scales", {12, 13});
  const std::vector<int> efs = args.get_int_list("efs", {4, 8, 16});
  const int reps = args.get_int("reps", 5);
  const int warmup = args.get_int("warmup", 2);
  const int threads = args.get_int("threads", 0);
  if (threads > 0) set_threads(threads);

  bench::print_header(
      "Robustness overhead — armed-but-never-firing hooks vs idle hooks "
      "on the fig7 ER sweep (executor path)",
      "interleaved best-of-" + std::to_string(reps) +
          " per mode; gate: geomean armed/idle >= 0.97");

  bench::Table table({"scale", "ef", "flop", "idle(MF/s)", "armed(MF/s)",
                      "armed/idle"});
  bench::JsonSink json(args);

  double ratio_product = 1.0;
  int points = 0;

  for (const int scale : scales) {
    for (const int ef : efs) {
      const mtx::CsrMatrix a = bench::make_random(
          bench::MatrixKind::kEr, scale, ef,
          1000 + static_cast<std::uint64_t>(scale));
      const mtx::CsrMatrix b = bench::make_random(
          bench::MatrixKind::kEr, scale, ef,
          2000 + static_cast<std::uint64_t>(scale));
      const SpGemmProblem problem = SpGemmProblem::multiply(a, b);
      const nnz_t flop = mtx::count_flops(a, b);

      SpGemmOp op;
      op.algo = "pb";
      SpGemmExecutor exec;
      exec.prepare(problem, op);

      // Never fires: no run allocates 2^62 times.  Re-armed before every
      // armed rep in case a hook decremented the countdown.
      const auto arm = [] {
        FaultInjector::fail_alloc_after(std::int64_t{1} << 62);
      };
      CancelToken token;
      token.set_timeout(std::chrono::hours(1));
      RunOptions armed_ropts;
      armed_ropts.cancel = &token;

      const auto run_idle = [&] { (void)exec.run(problem, op); };
      const auto run_armed = [&] { (void)exec.run(problem, op, armed_ropts); };

      for (int i = 0; i < warmup; ++i) {
        run_idle();
        arm();
        run_armed();
        FaultInjector::reset();
      }
      double idle_best = 0, armed_best = 0;
      Timer t;
      for (int i = 0; i < reps; ++i) {
        // Interleave and alternate order so drift (turbo, page cache)
        // cannot systematically favor one mode.
        for (const bool armed_first : {i % 2 == 0}) {
          for (const int mode : {armed_first ? 1 : 0, armed_first ? 0 : 1}) {
            if (mode == 0) {
              FaultInjector::reset();
              t.reset();
              run_idle();
              const double s = t.elapsed_s();
              if (idle_best == 0 || s < idle_best) idle_best = s;
            } else {
              arm();
              t.reset();
              run_armed();
              const double s = t.elapsed_s();
              if (armed_best == 0 || s < armed_best) armed_best = s;
            }
          }
        }
      }
      FaultInjector::reset();

      const double idle_mflops =
          static_cast<double>(flop) / idle_best / 1e6;
      const double armed_mflops =
          static_cast<double>(flop) / armed_best / 1e6;
      const double ratio = armed_mflops / idle_mflops;
      ratio_product *= ratio;
      ++points;
      table.row(scale, ef, static_cast<double>(flop), idle_mflops,
                armed_mflops, ratio);
      if (json.enabled()) {
        json.add(bench::Json()
                     .field("bench", std::string("robustness_overhead"))
                     .field("scale", std::int64_t{scale})
                     .field("ef", std::int64_t{ef})
                     .field("flop", std::int64_t{flop})
                     .field("idle_mflops", idle_mflops)
                     .field("armed_mflops", armed_mflops)
                     .field("ratio", ratio));
      }
    }
  }

  const double geomean =
      points > 0 ? std::pow(ratio_product, 1.0 / points) : 0.0;
  table.print(std::cout);
  std::cout << "\n# armed/idle geomean over " << points
            << " points: " << geomean << " (gate: >= 0.97)\n";
  if (json.enabled()) {
    json.add(bench::Json()
                 .field("bench", std::string("robustness_overhead_summary"))
                 .field("points", std::int64_t{points})
                 .field("geomean_ratio", geomean));
  }
  return 0;
}
