// Fig. 13 — PB-SpGEMM per-phase scaling breakdown on ER (left) and R-MAT
// (right), scale 16 / edge factor 16 in the paper (default 14 here).
//
// Expected shape (paper Sec. V-C): each phase (expand/sort/compress)
// scales; on R-MAT the sort/compress phases scale worse because skewed
// rows concentrate tuples in few bins.
#include "bench_sweeps.hpp"

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);
  const int scale = args.get_int("scale", 14);
  const double ef = args.get_double("ef", 16.0);
  const int reps = args.get_int("reps", 3);
  const int warmup = args.get_int("warmup", 2);

  bench::print_header("Fig. 13 — PB-SpGEMM per-phase strong scaling, scale " +
                      std::to_string(scale) + ", ef " +
                      std::to_string(static_cast<int>(ef)));

  for (const auto kind :
       {bench::MatrixKind::kEr, bench::MatrixKind::kRmat}) {
    const bool er = kind == bench::MatrixKind::kEr;
    std::cout << "## " << (er ? "ER" : "R-MAT") << "\n";
    const mtx::CsrMatrix a = bench::make_random(kind, scale, ef, 81);
    const mtx::CsrMatrix b = bench::make_random(kind, scale, ef, 82);
    const SpGemmProblem problem = SpGemmProblem::multiply(a, b);

    bench::Table t({"threads", "symbolic(ms)", "expand(ms)", "sort(ms)",
                    "compress(ms)", "convert(ms)", "total(ms)", "speedup"});
    double base_total = 0;
    for (int threads = 1; threads <= max_threads(); ++threads) {
      ThreadCountGuard guard(threads);
      const pb::PbTelemetry tm =
          bench::pb_best_telemetry(problem, pb::PbConfig{}, reps, warmup);
      if (threads == 1) base_total = tm.total_seconds();
      t.row(threads, tm.symbolic.seconds * 1e3, tm.expand.seconds * 1e3,
            tm.sort.seconds * 1e3, tm.compress.seconds * 1e3,
            tm.convert.seconds * 1e3, tm.total_seconds() * 1e3,
            base_total > 0 ? base_total / tm.total_seconds() : 0.0);
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
