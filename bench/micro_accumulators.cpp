// Microbenchmark (google-benchmark) — the per-row accumulators of the
// column-SpGEMM baselines: linear-probing hash vs 8-wide grouped (vector)
// hash probing, on collision profiles from sparse (few duplicates) to dense
// (every key repeated many times).
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "spgemm/hash_table.hpp"
#include "spgemm/semiring_ops.hpp"

namespace {

using pbs::detail::GroupedAccumulator;
using pbs::detail::HashAccumulator;

std::vector<pbs::index_t> make_stream(std::size_t n, pbs::index_t distinct,
                                      unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<pbs::index_t> v(n);
  for (auto& x : v) x = static_cast<pbs::index_t>(rng() % distinct);
  return v;
}

template <typename Accumulator>
void accumulate_stream(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto distinct = static_cast<pbs::index_t>(state.range(1));
  const std::vector<pbs::index_t> stream = make_stream(n, distinct, 5);
  Accumulator acc;
  for (auto _ : state) {
    acc.reset(static_cast<pbs::nnz_t>(n));
    for (const pbs::index_t c : stream) acc.template accumulate<pbs::PlusTimes>(c, 1.0);
    benchmark::DoNotOptimize(acc.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_HashAccumulate(benchmark::State& state) {
  accumulate_stream<HashAccumulator>(state);
}
void BM_GroupedAccumulate(benchmark::State& state) {
  accumulate_stream<GroupedAccumulator>(state);
}

// (stream length, distinct keys): 16:1 duplicates ~ cf 16 (cant/hood
// regime); 1:1 ~ cf 1 (ER regime).
BENCHMARK(BM_HashAccumulate)
    ->ArgsProduct({{1 << 10, 1 << 14}, {1 << 6, 1 << 10, 1 << 14}});
BENCHMARK(BM_GroupedAccumulate)
    ->ArgsProduct({{1 << 10, 1 << 14}, {1 << 6, 1 << 10, 1 << 14}});

template <typename Accumulator>
void insert_stream(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<pbs::index_t> stream =
      make_stream(n, static_cast<pbs::index_t>(n), 6);
  Accumulator acc;
  for (auto _ : state) {
    acc.reset(static_cast<pbs::nnz_t>(n));
    pbs::nnz_t fresh = 0;
    for (const pbs::index_t c : stream) fresh += acc.insert(c) ? 1 : 0;
    benchmark::DoNotOptimize(fresh);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_HashSymbolic(benchmark::State& state) {
  insert_stream<HashAccumulator>(state);
}
void BM_GroupedSymbolic(benchmark::State& state) {
  insert_stream<GroupedAccumulator>(state);
}
BENCHMARK(BM_HashSymbolic)->Arg(1 << 10)->Arg(1 << 14);
BENCHMARK(BM_GroupedSymbolic)->Arg(1 << 10)->Arg(1 << 14);

}  // namespace

BENCHMARK_MAIN();
