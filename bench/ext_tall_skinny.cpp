// Extension — square × tall-and-skinny multiplication.
//
// The paper's Sec. IV-C explicitly defers this scenario ("such as
// multiplying a square matrix by a tall-and-skinny matrix as needed in
// betweenness centrality algorithms") for space; this bench fills it in.
// A (n x n, ER or R-MAT) multiplies F (n x s) for source counts s from 1
// to 512 — the multi-source BFS / betweenness frontier shape.
//
// Expected shape: with few columns the product is latency- rather than
// bandwidth-dominated and column algorithms with small accumulators win;
// as s grows the intermediate volume grows and PB's streaming advantage
// returns.  The crossover is the interesting output.
#include "bench_sweeps.hpp"

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);
  const int scale = args.get_int("scale", 14);
  const double ef = args.get_double("ef", 8.0);
  const double frontier_density = args.get_double("fd", 32.0);
  const int reps = args.get_int("reps", 3);
  const int warmup = args.get_int("warmup", 2);
  const auto algo_names =
      args.get_string_list("algos", {"pb", "heap", "hash"});

  bench::print_header(
      "Extension — A (square, scale " + std::to_string(scale) +
          ") times F (tall-and-skinny), the paper's deferred scenario",
      "F has " + std::to_string(frontier_density) +
          " nonzeros per column (frontier density)");

  const index_t n = index_t{1} << scale;
  const mtx::CsrMatrix a =
      bench::make_random(bench::MatrixKind::kRmat, scale, ef, 96);

  bench::Table t([&] {
    std::vector<std::string> h{"s(cols)", "flop", "cf"};
    for (const auto& name : algo_names) h.push_back(name + "(MF/s)");
    return h;
  }());

  for (index_t s = 1; s <= 512; s *= 4) {
    const mtx::CsrMatrix f =
        mtx::coo_to_csr(mtx::generate_er(n, s, frontier_density, 97));
    const SpGemmProblem problem = SpGemmProblem::multiply(a, f);
    const nnz_t flop = mtx::count_flops(a, f);
    if (flop == 0) continue;
    const nnz_t nnzc = mtx::symbolic_nnz(a, f);

    std::vector<std::string> cells{std::to_string(s), std::to_string(flop)};
    {
      std::ostringstream ss;
      ss << std::setprecision(3)
         << (nnzc ? static_cast<double>(flop) / nnzc : 0.0);
      cells.push_back(ss.str());
    }
    for (const auto& name : algo_names) {
      std::ostringstream ss;
      // Adaptive timing: the s=1 points run in microseconds.
      ss << std::setprecision(4)
         << bench::algo_mflops_adaptive(algorithm(name), problem, flop, reps,
                                        warmup);
      cells.push_back(ss.str());
    }
    t.row_cells(std::move(cells));
  }
  t.print(std::cout);
  return 0;
}
