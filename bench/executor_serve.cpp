// Executor serving modes (no paper artifact; this measures the PR 5
// serving layer the ROADMAP's "heavy traffic" north star asks for).
//
// Two experiments:
//
//  alternate — an MCL-style workload flipping between two structures
//    every multiply.  "replan" runs it through an executor whose plan
//    cache holds ONE entry (the pre-executor SpGemmPlan behavior: every
//    flip re-analyzes), "cached" through the default LRU — the speedup is
//    what the fingerprint-keyed cache is worth when structures alternate.
//
//  concurrent — N threads multiplying through one cached plan
//    simultaneously, each leasing its own pooled workspace and running a
//    single OpenMP lane (the serving configuration).  Reported as
//    aggregate MFLOPS vs the same single-lane executor driven by one
//    thread — above 1× means concurrent serving scales.
//
// The cache's margin is the analysis share of a multiply, so it is
// largest exactly where serving traffic lives: small/medium repeated
// products (BFS/BC frontiers, MCL pruning epochs) — ≥1.2× at the default
// scales on one core, shrinking toward the fingerprint-pass cost as the
// execute grows.  Concurrent scaling needs physical cores: on a 1-CPU
// container the 4-thread aggregate sits just below 1× (pure overhead).
//
//   ./bench_executor_serve [--scales 9,10] [--efs 8] [--rounds 30]
//                          [--threads 4] [--iters 8] [--algo auto]
//                          [--json out.json]
#include "bench_common.hpp"

#include <thread>

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "spgemm/executor.hpp"

namespace {

using namespace pbs;

double alternate_ms_per_multiply(const SpGemmProblem& pa,
                                 const SpGemmProblem& pb_,
                                 const SpGemmOp& op, std::size_t capacity,
                                 int rounds, ExecutorStats* stats_out) {
  ExecutorOptions eo;
  eo.cache_capacity = capacity;
  SpGemmExecutor exec(eo);
  // One untimed warm round: pages, instantiations — and, for the cached
  // mode, the two analyses the workload then never repeats.
  (void)exec.run(pa, op);
  (void)exec.run(pb_, op);
  Timer t;
  for (int r = 0; r < rounds; ++r) {
    (void)exec.run(pa, op);
    (void)exec.run(pb_, op);
  }
  const double seconds = t.elapsed_s();
  if (stats_out != nullptr) *stats_out = exec.stats();
  return seconds / (2.0 * rounds) * 1e3;
}

double concurrent_aggregate_mflops(const SpGemmProblem& p, const SpGemmOp& op,
                                   nnz_t flop, int nthreads, int iters) {
  SpGemmExecutor exec;
  (void)exec.run(p, op);  // analysis out of the timed region
  Timer t;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));
  for (int i = 0; i < nthreads; ++i) {
    threads.emplace_back([&] {
      set_threads(1);  // one OpenMP lane per request (serving config)
      for (int it = 0; it < iters; ++it) (void)exec.run(p, op);
    });
  }
  for (std::thread& th : threads) th.join();
  const double seconds = t.elapsed_s();
  return seconds > 0 ? static_cast<double>(flop) * nthreads * iters /
                           seconds / 1e6
                     : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::vector<int> scales = args.get_int_list("scales", {9, 10});
  const std::vector<int> efs = args.get_int_list("efs", {8});
  const int rounds = args.get_int("rounds", 30);
  const int nthreads = args.get_int("threads", 4);
  const int iters = args.get_int("iters", 8);
  const std::string algo = args.get_string("algo", "auto");

  bench::print_header(
      "executor serving: plan-cache hit vs replan on alternating "
      "structures; concurrent execute scaling through one cached plan",
      "rounds = " + std::to_string(rounds) + ", threads = " +
          std::to_string(nthreads) + ", algo = " + algo);

  bench::Table alt({"input", "replan ms", "cached ms", "speedup",
                    "hit ratio"});
  bench::Table conc({"input", "1-thread MFLOPS",
                     std::to_string(nthreads) + "-thread MFLOPS",
                     "scaling"});
  bench::JsonSink json(args);

  SpGemmOp op;
  op.algo = algo;

  for (const int scale : scales) {
    for (const int ef : efs) {
      // The two structures of the alternating workload: same size,
      // different density — MCL's expand/prune flip without the app
      // logic.  (Two seeds at one density would also work now that the
      // fingerprint's structural hash tells same-aggregate structures
      // apart; different densities keep the flip realistic.)
      const mtx::CsrMatrix a = mtx::coo_to_csr(
          mtx::generate_er(mtx::RandomScale{scale, double(ef)}, 7));
      const mtx::CsrMatrix b = mtx::coo_to_csr(mtx::generate_er(
          mtx::RandomScale{scale, 0.75 * double(ef)}, 8));
      const SpGemmProblem pa = SpGemmProblem::square(a);
      const SpGemmProblem pb_ = SpGemmProblem::square(b);
      const std::string input =
          "er-s" + std::to_string(scale) + "-ef" + std::to_string(ef);

      ExecutorStats cached_stats;
      const double replan_ms = alternate_ms_per_multiply(
          pa, pb_, op, /*capacity=*/1, rounds, nullptr);
      const double cached_ms = alternate_ms_per_multiply(
          pa, pb_, op, ExecutorOptions{}.cache_capacity, rounds,
          &cached_stats);
      const double speedup = cached_ms > 0 ? replan_ms / cached_ms : 0.0;
      alt.row(input, replan_ms, cached_ms, speedup,
              cached_stats.hit_ratio());

      const nnz_t flop = pb::pb_count_flop(pa.a_csc, pa.b_csr);
      const double one = concurrent_aggregate_mflops(pa, op, flop, 1, iters);
      const double many =
          concurrent_aggregate_mflops(pa, op, flop, nthreads, iters);
      const double scaling = one > 0 ? many / one : 0.0;
      conc.row(input, one, many, scaling);

      if (json.enabled()) {
        json.add(bench::Json()
                     .field("bench", std::string("executor_serve"))
                     .field("kind", std::string("alternate"))
                     .field("input", input)
                     .field("algo", algo)
                     .field("replan_ms_per_mult", replan_ms)
                     .field("cached_ms_per_mult", cached_ms)
                     .field("speedup", speedup)
                     .field("hit_ratio", cached_stats.hit_ratio()));
        json.add(bench::Json()
                     .field("bench", std::string("executor_serve"))
                     .field("kind", std::string("concurrent"))
                     .field("input", input)
                     .field("algo", algo)
                     .field("threads", static_cast<std::int64_t>(nthreads))
                     .field("single_mflops", one)
                     .field("aggregate_mflops", many)
                     .field("scaling", scaling));
      }
    }
  }

  std::cout << "# alternating two structures (cached plans vs replan per "
               "flip)\n";
  alt.print(std::cout);
  std::cout << "\n# concurrent executes through one cached plan (1 OpenMP "
               "lane per request)\n";
  conc.print(std::cout);
  return 0;
}
