// Shared infrastructure for the figure/table reproduction benches.
//
// Every bench binary in this directory regenerates one table or figure of
// the paper: it prints an environment header (so numbers are traceable), a
// column header naming the paper artifact, and one row per data point of
// the original plot — series value, per-algorithm MFLOPS and/or sustained
// bandwidth.  All knobs have laptop-scale defaults and are overridable on
// the command line:
//
//   --scales 12,14     --efs 4,8,16    --reps 3    --warmup 1
//   --threads 0        --shrink 8      --algos pb,hash
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/env_report.hpp"
#include "common/parallel.hpp"
#include "common/run_stats.hpp"
#include "common/timer.hpp"
#include "matrix/mstats.hpp"
#include "pb/pb_spgemm.hpp"
#include "spgemm/registry.hpp"

namespace pbs::bench {

// ---- tiny argv parser -----------------------------------------------------

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        kv_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[arg] = argv[++i];
      } else {
        kv_[arg] = "1";
      }
    }
  }

  [[nodiscard]] int get_int(const std::string& key, int fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : std::stoi(it->second);
  }

  [[nodiscard]] double get_double(const std::string& key, double fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : std::stod(it->second);
  }

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? fallback : it->second;
  }

  [[nodiscard]] std::vector<int> get_int_list(const std::string& key,
                                              std::vector<int> fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    std::vector<int> out;
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) out.push_back(std::stoi(item));
    return out;
  }

  [[nodiscard]] std::vector<std::string> get_string_list(
      const std::string& key, std::vector<std::string> fallback) const {
    const auto it = kv_.find(key);
    if (it == kv_.end()) return fallback;
    std::vector<std::string> out;
    std::stringstream ss(it->second);
    std::string item;
    while (std::getline(ss, item, ',')) out.push_back(item);
    return out;
  }

 private:
  std::map<std::string, std::string> kv_;
};

// ---- measurement ----------------------------------------------------------

/// Best-of-N wall time of `fn`, with warmup runs excluded — the paper's
/// STREAM-style methodology.
template <typename Fn>
RunStats measure_seconds(Fn&& fn, int reps, int warmup) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  Timer t;
  for (int i = 0; i < reps; ++i) {
    t.reset();
    fn();
    samples.push_back(t.elapsed_s());
  }
  return RunStats::of(std::move(samples));
}

/// MFLOPS of one algorithm on one problem (best-of-reps).
inline double algo_mflops(const AlgoInfo& algo, const SpGemmProblem& problem,
                          nnz_t flop, int reps, int warmup) {
  const RunStats s = measure_seconds(
      [&] { (void)algo.fn(problem); }, reps, warmup);
  return s.min > 0 ? static_cast<double>(flop) / s.min / 1e6 : 0.0;
}

/// Variant for microsecond-scale problems (e.g. tall-and-skinny frontiers):
/// each timed sample repeats `fn` enough times to last >= min_sample_s, so
/// clock granularity and call overhead do not dominate.
template <typename Fn>
RunStats measure_seconds_adaptive(Fn&& fn, int reps, int warmup,
                                  double min_sample_s = 0.005) {
  for (int i = 0; i < warmup; ++i) fn();
  Timer t;
  fn();
  const double once = t.elapsed_s();
  const int inner =
      once >= min_sample_s
          ? 1
          : static_cast<int>(min_sample_s / std::max(once, 1e-9)) + 1;
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    t.reset();
    for (int j = 0; j < inner; ++j) fn();
    samples.push_back(t.elapsed_s() / inner);
  }
  return RunStats::of(std::move(samples));
}

inline double algo_mflops_adaptive(const AlgoInfo& algo,
                                   const SpGemmProblem& problem, nnz_t flop,
                                   int reps, int warmup) {
  const RunStats s = measure_seconds_adaptive(
      [&] { (void)algo.fn(problem); }, reps, warmup);
  return s.min > 0 ? static_cast<double>(flop) / s.min / 1e6 : 0.0;
}

/// PB with telemetry, keeping the run with the best total time.  A shared
/// workspace keeps the Cˆ scratch warm across warmup + measured runs.
inline pb::PbTelemetry pb_best_telemetry(const SpGemmProblem& problem,
                                         const pb::PbConfig& cfg, int reps,
                                         int warmup) {
  thread_local pb::PbWorkspace workspace;
  for (int i = 0; i < warmup; ++i)
    (void)pb::pb_spgemm(problem.a_csc, problem.b_csr, cfg, workspace);
  pb::PbTelemetry best;
  double best_total = 0;
  for (int i = 0; i < reps; ++i) {
    const pb::PbResult r =
        pb::pb_spgemm(problem.a_csc, problem.b_csr, cfg, workspace);
    if (i == 0 || r.stats.total_seconds() < best_total) {
      best = r.stats;
      best_total = r.stats.total_seconds();
    }
  }
  return best;
}

/// pb_best_telemetry through the runtime semiring dispatch — the boolean
/// stream benches need bool_or_and so the key-only format can engage.
inline pb::PbTelemetry pb_best_telemetry_named(const std::string& semiring,
                                               const SpGemmProblem& problem,
                                               const pb::PbConfig& cfg,
                                               int reps, int warmup) {
  thread_local pb::PbWorkspace workspace;
  for (int i = 0; i < warmup; ++i)
    (void)pb::pb_spgemm_named(semiring, problem.a_csc, problem.b_csr, cfg,
                              workspace);
  pb::PbTelemetry best;
  double best_total = 0;
  for (int i = 0; i < reps; ++i) {
    const pb::PbResult r =
        pb::pb_spgemm_named(semiring, problem.a_csc, problem.b_csr, cfg,
                            workspace);
    if (i == 0 || r.stats.total_seconds() < best_total) {
      best = r.stats;
      best_total = r.stats.total_seconds();
    }
  }
  return best;
}

// ---- output ---------------------------------------------------------------

/// Fixed-width table printer: header row then rows of cells.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  template <typename... Cells>
  void row(Cells&&... cells) {
    std::vector<std::string> r;
    (r.push_back(to_cell(std::forward<Cells>(cells))), ...);
    rows_.push_back(std::move(r));
  }

  /// Row from pre-formatted cells (for variable-width tables).
  void row_cells(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i)
      width[i] = headers_[i].size();
    for (const auto& r : rows_) {
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i)
        width[i] = std::max(width[i], r[i].size());
    }
    auto print_row = [&](const std::vector<std::string>& r) {
      for (std::size_t i = 0; i < r.size(); ++i)
        os << std::left << std::setw(static_cast<int>(width[i]) + 2) << r[i];
      os << "\n";
    };
    print_row(headers_);
    for (const auto& r : rows_) print_row(r);
  }

 private:
  template <typename T>
  static std::string to_cell(T&& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(std::forward<T>(v));
    } else {
      std::ostringstream ss;
      ss << std::setprecision(4) << v;
      return ss.str();
    }
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Standard bench prologue: what artifact this reproduces + environment.
inline void print_header(const std::string& artifact,
                         const std::string& notes = "") {
  std::cout << "# Reproduces: " << artifact << "\n";
  print_env_report(std::cout, collect_env_report());
  if (!notes.empty()) std::cout << "# " << notes << "\n";
  std::cout << "\n";
}

// ---- machine-readable output ----------------------------------------------

/// Minimal JSON object builder for the benches' --json output (CI tracks
/// the perf trajectory from these records; no external JSON dependency).
class Json {
 public:
  Json& field(const std::string& key, double v) {
    std::ostringstream ss;
    ss << std::setprecision(10) << v;
    return raw(key, ss.str());
  }
  Json& field(const std::string& key, std::int64_t v) {
    return raw(key, std::to_string(v));
  }
  Json& field(const std::string& key, const std::string& v) {
    return raw(key, "\"" + v + "\"");  // callers pass identifier-like strings
  }
  /// Pre-serialized JSON value (nested object/array).
  Json& raw(const std::string& key, const std::string& json) {
    if (!first_) ss_ << ",";
    first_ = false;
    ss_ << "\"" << key << "\":" << json;
    return *this;
  }
  [[nodiscard]] std::string str() const { return "{" + ss_.str() + "}"; }

 private:
  std::ostringstream ss_;
  bool first_ = true;
};

/// Collects records and writes them as one JSON array when a --json path
/// was given; inert otherwise.
class JsonSink {
 public:
  explicit JsonSink(const Args& args) : path_(args.get_string("json", "")) {}

  [[nodiscard]] bool enabled() const { return !path_.empty(); }
  void add(const Json& record) {
    if (enabled()) records_.push_back(record.str());
  }

  ~JsonSink() {
    if (!enabled()) return;
    std::ofstream out(path_);
    out << "[";
    for (std::size_t i = 0; i < records_.size(); ++i) {
      out << (i ? ",\n " : "\n ") << records_[i];
    }
    out << "\n]\n";
    std::cout << "# wrote " << records_.size() << " JSON records to " << path_
              << "\n";
  }

 private:
  std::string path_;
  std::vector<std::string> records_;
};

}  // namespace pbs::bench
