// Serving daemon round-trip overhead vs the in-process executor (the
// PR 9 serving layer; no paper artifact — fig. 7's ER squaring workload
// reused as the traffic generator).
//
// Steady-state ms/multiply for three ways of running the same A^2:
//
//   inproc  — SpGemmExecutor::run in this process, plan cache warm: the
//     floor every serving layer is measured against.
//   daemon  — a pbs_serve Server in this process, driven through the
//     real Unix-socket client: upload A once, square by handle.  The
//     delta over inproc is the whole wire stack — framing, the result
//     serialization (16 B/nnz of C), two socket copies, decode.
//   daemon 2x2 — the same traffic through a 2x2 tile-sharded router.
//
// overhead_ratio = daemon_ms / inproc_ms.  The wire cost is a bandwidth
// term proportional to nnz(C) while compute grows with flop, so the
// ratio is workload-dependent: ER emits ~1 output nonzero per flop, the
// worst case for serving.  The default sweep is fig. 7's ER family at
// edge factor 8; CI gates max(overhead_ratio) over it at 1.25, measured
// with a single OpenMP lane (the serving configuration: parallelism
// comes from concurrent requests, not from within one multiply).
//
//   ./bench_serve_throughput [--scales 11,12,13] [--efs 8] [--rounds 12]
//                            [--algo pb] [--json out.json]
#include "bench_common.hpp"

#include <unistd.h>

#include "common/timer.hpp"
#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "spgemm/executor.hpp"

namespace {

using namespace pbs;

std::string unique_socket_path() {
  static int counter = 0;
  return "/tmp/pbs_bench_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter++) + ".sock";
}

double inproc_ms(const SpGemmProblem& p, const SpGemmOp& op, int rounds) {
  ExecutorOptions eo;
  eo.validate_inputs = true;  // the server forces this: compare like-for-like
  SpGemmExecutor exec(eo);
  (void)exec.run(p, op);  // analysis + first touch out of the timed region
  Timer t;
  for (int r = 0; r < rounds; ++r) (void)exec.run(p, op);
  return t.elapsed_s() / rounds * 1e3;
}

double daemon_ms(const mtx::CsrMatrix& a, const SpGemmOp& op, int rounds,
                 int shard_rows, int shard_cols) {
  serve::ServeOptions so;
  so.socket_path = unique_socket_path();
  so.worker_threads = 1;  // one client connection: one worker suffices
  so.shard_rows = shard_rows;
  so.shard_cols = shard_cols;
  so.pin_shards = false;
  serve::Server server(std::move(so));
  server.start();

  serve::Client cli(server.socket_path());
  const std::uint64_t h = cli.upload(a);
  serve::MultiplyOptions mo;
  mo.algo = op.algo;
  mo.semiring = op.semiring;
  (void)cli.square(h, mo);  // warm the per-shard plan caches
  Timer t;
  for (int r = 0; r < rounds; ++r) (void)cli.square(h, mo);
  const double ms = t.elapsed_s() / rounds * 1e3;
  server.stop();
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::vector<int> scales = args.get_int_list("scales", {11, 12, 13});
  const std::vector<int> efs = args.get_int_list("efs", {8});
  const int rounds = args.get_int("rounds", 12);
  const std::string algo = args.get_string("algo", "pb");

  bench::print_header(
      "serving daemon round-trip overhead: upload-once / square-by-handle "
      "over a Unix socket vs the in-process executor",
      "rounds = " + std::to_string(rounds) + ", algo = " + algo);

  bench::Table table({"input", "C MB", "inproc ms", "daemon ms", "overhead",
                      "2x2 ms", "2x2 overhead"});
  bench::JsonSink json(args);

  SpGemmOp op;
  op.algo = algo;

  for (const int scale : scales) {
    for (const int ef : efs) {
      const mtx::CsrMatrix a = mtx::coo_to_csr(
          mtx::generate_er(mtx::RandomScale{scale, double(ef)}, 7));
      const SpGemmProblem p = SpGemmProblem::square(a);
      const std::string input =
          "er-s" + std::to_string(scale) + "-ef" + std::to_string(ef);

      const double local = inproc_ms(p, op, rounds);
      const double wire = daemon_ms(a, op, rounds, 1, 1);
      const double wire22 = daemon_ms(a, op, rounds, 2, 2);
      const double ratio = local > 0 ? wire / local : 0.0;
      const double ratio22 = local > 0 ? wire22 / local : 0.0;

      // nnz(C) prices the response frame the daemon must ship per round.
      SpGemmExecutor probe;
      const mtx::CsrMatrix c = probe.run(p, op);
      const double c_mb =
          (static_cast<double>(c.nnz()) * 12.0 +
           static_cast<double>(c.nrows + 1) * 8.0) /
          (1024.0 * 1024.0);

      table.row(input, c_mb, local, wire, ratio, wire22, ratio22);
      if (json.enabled()) {
        json.add(bench::Json()
                     .field("bench", std::string("serve_throughput"))
                     .field("input", input)
                     .field("algo", algo)
                     .field("rounds", static_cast<std::int64_t>(rounds))
                     .field("result_mb", c_mb)
                     .field("inproc_ms", local)
                     .field("daemon_ms", wire)
                     .field("overhead_ratio", ratio)
                     .field("daemon_2x2_ms", wire22)
                     .field("overhead_ratio_2x2", ratio22));
      }
    }
  }

  table.print(std::cout);
  return 0;
}
