// Fig. 9 — R-MAT (Graph500 parameters a=0.57, b=c=0.19, d=0.05) matrices on
// platform 1:
//   (a) MFLOPS of the four algorithms across scales and edge factors
//   (b) PB-SpGEMM's sustained bandwidth per phase.
//
// Expected shape (paper Sec. V-B): PB still wins, but its sustained
// bandwidth drops below the ER numbers — skewed degrees make bins uneven
// and the expand phase less bandwidth-efficient.
#include "bench_sweeps.hpp"

int main(int argc, char** argv) {
  const pbs::bench::Args args(argc, argv);
  pbs::bench::run_random_sweep(
      "Fig. 9 — performance and bandwidth on R-MAT matrices (platform 1)",
      pbs::bench::MatrixKind::kRmat, args);
  return 0;
}
