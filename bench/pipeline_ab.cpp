// Pipelined vs barrier schedule A/B sweep (no paper artifact; this
// measures the PR 6 per-bin task-dataflow execution).
//
// Both schedules run the identical per-bin sort → compress → count →
// scatter work on identical tuple data; the pipeline differs only in WHEN
// a bin runs (the moment every thread has flushed into it, not after an
// expand barrier) and WHO runs it (work-stealing deques).  The A/B forces
// each schedule explicitly — resolve_schedule(kAuto) would pick barrier on
// one core and hide the comparison — and times the full multiply wall
// clock, best of --reps, over ER and RMAT squarings.
//
// What to expect: at 1 thread the pipeline is the same work minus the
// barriers plus the readiness counters and deque traffic it pays for
// nothing — a few percent behind (the CI gate bounds the overhead at
// 0.90x).  With real cores the overlap hides the sort/compress tail
// behind expand and the stolen-bin counter shows the load balancing;
// speedup should clear 1.0.
//
//   ./bench_pipeline_ab [--scales 11,12] [--efs 8] [--reps 5]
//                       [--rmat-scale 11] [--json out.json]
#include "bench_common.hpp"

#include "common/parallel.hpp"
#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "pb/pb_spgemm.hpp"

namespace {

using namespace pbs;

struct AbResult {
  double best_s = 0;
  pb::PbTelemetry stats;
};

AbResult best_of(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                 pb::PbSchedule schedule, int reps) {
  pb::PbConfig cfg;
  cfg.schedule = schedule;
  pb::PbWorkspace ws;
  AbResult r;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    pb::PbResult run = pb::pb_spgemm(a, b, cfg, ws);
    const double s = t.elapsed_s();
    if (i == 0 || s < r.best_s) {
      r.best_s = s;
      r.stats = run.stats;
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::vector<int> scales = args.get_int_list("scales", {11, 12});
  const std::vector<int> efs = args.get_int_list("efs", {8});
  const int reps = args.get_int("reps", 5);
  const int rmat_scale = args.get_int("rmat-scale", 11);
  const int threads = max_threads();

  bench::print_header(
      "pipeline A/B: per-bin task-dataflow schedule vs three-barrier "
      "schedule, identical per-bin work",
      "reps = " + std::to_string(reps) + ", threads = " +
          std::to_string(threads));

  bench::Table t({"input", "barrier ms", "pipeline ms", "speedup",
                  "overlap ms", "stolen"});
  bench::JsonSink json(args);

  struct Input {
    std::string name;
    mtx::CsrMatrix m;
  };
  std::vector<Input> inputs;
  for (const int scale : scales) {
    for (const int ef : efs) {
      inputs.push_back(
          {"er-s" + std::to_string(scale) + "-ef" + std::to_string(ef),
           mtx::coo_to_csr(mtx::generate_er(
               mtx::RandomScale{scale, static_cast<double>(ef)}, 7))});
    }
  }
  {
    mtx::RmatParams rp;
    rp.scale = rmat_scale;
    rp.edge_factor = 8.0;
    rp.seed = 9;
    inputs.push_back({"rmat-s" + std::to_string(rmat_scale),
                      mtx::coo_to_csr(mtx::generate_rmat(rp))});
  }

  for (const Input& in : inputs) {
    const mtx::CscMatrix a_csc = mtx::csr_to_csc(in.m);
    const AbResult barrier =
        best_of(a_csc, in.m, pb::PbSchedule::kBarrier, reps);
    const AbResult pipeline =
        best_of(a_csc, in.m, pb::PbSchedule::kPipeline, reps);
    const double speedup =
        pipeline.best_s > 0 ? barrier.best_s / pipeline.best_s : 0.0;
    t.row(in.name, barrier.best_s * 1e3, pipeline.best_s * 1e3, speedup,
          pipeline.stats.overlap_seconds() * 1e3,
          static_cast<double>(pipeline.stats.bins_stolen));

    if (json.enabled()) {
      json.add(bench::Json()
                   .field("bench", std::string("pipeline_ab"))
                   .field("input", in.name)
                   .field("threads", static_cast<std::int64_t>(threads))
                   .field("barrier_ms", barrier.best_s * 1e3)
                   .field("pipeline_ms", pipeline.best_s * 1e3)
                   .field("speedup", speedup)
                   .field("overlap_hidden_ms",
                          pipeline.stats.overlap_seconds() * 1e3)
                   .field("bin_wait_ms",
                          pipeline.stats.bin_wait_seconds * 1e3)
                   .field("bins_stolen",
                          static_cast<std::int64_t>(
                              pipeline.stats.bins_stolen))
                   .field("numeric_wall_ms",
                          pipeline.stats.wall_seconds * 1e3));
    }
  }

  t.print(std::cout);
  std::cout << "\n# speedup = barrier/pipeline wall (best of " << reps
            << "); at 1 thread expect parity — the dataflow pays for "
               "itself through overlap, which needs cores\n";
  return 0;
}
