// Microbenchmark (google-benchmark) — the in-place byte-skipping radix sort
// at the heart of PB-SpGEMM's sort phase, against std::sort, across the key
// distributions the bins actually see.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "common/radix_sort.hpp"
#include "pb/tuple.hpp"

namespace {

using pbs::pb::Tuple;

std::vector<Tuple> make_tuples(std::size_t n, int row_bits, int col_bits,
                               unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<Tuple> v(n);
  const std::uint64_t row_mask = (1ull << row_bits) - 1;
  const std::uint64_t col_mask = (1ull << col_bits) - 1;
  for (auto& t : v) {
    t.key = pbs::pb::make_key(static_cast<pbs::index_t>(rng() & row_mask),
                              static_cast<pbs::index_t>(rng() & col_mask));
    t.val = 1.0;
  }
  return v;
}

// row_bits models the bin geometry: 10 bits ~ 1K rows per bin (the paper's
// "squeeze keys to 4 bytes" case), 20 bits ~ unbinned keys.
void BM_RadixSortBin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int row_bits = static_cast<int>(state.range(1));
  const std::vector<Tuple> original = make_tuples(n, row_bits, 20, 7);
  std::vector<Tuple> work(n);
  for (auto _ : state) {
    state.PauseTiming();
    work = original;
    state.ResumeTiming();
    pbs::radix_sort(work.data(), work.size(),
                    [](const Tuple& t) { return t.key; });
    benchmark::DoNotOptimize(work.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(Tuple)));
}
BENCHMARK(BM_RadixSortBin)
    ->ArgsProduct({{1 << 12, 1 << 14, 1 << 16}, {10, 20}});

// The LSD double-buffer variant PB-SpGEMM's sort phase actually uses.
void BM_RadixSortLsdBin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int row_bits = static_cast<int>(state.range(1));
  const std::vector<Tuple> original = make_tuples(n, row_bits, 20, 7);
  std::vector<Tuple> work(n), scratch(n);
  for (auto _ : state) {
    state.PauseTiming();
    work = original;
    state.ResumeTiming();
    pbs::radix_sort_lsd(work.data(), work.size(), scratch.data(),
                        [](const Tuple& t) { return t.key; });
    benchmark::DoNotOptimize(work.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(Tuple)));
}
BENCHMARK(BM_RadixSortLsdBin)
    ->ArgsProduct({{1 << 12, 1 << 14, 1 << 16}, {10, 20}});

void BM_StdSortBin(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int row_bits = static_cast<int>(state.range(1));
  const std::vector<Tuple> original = make_tuples(n, row_bits, 20, 7);
  std::vector<Tuple> work(n);
  for (auto _ : state) {
    state.PauseTiming();
    work = original;
    state.ResumeTiming();
    std::sort(work.begin(), work.end(),
              [](const Tuple& a, const Tuple& b) { return a.key < b.key; });
    benchmark::DoNotOptimize(work.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * sizeof(Tuple)));
}
BENCHMARK(BM_StdSortBin)->ArgsProduct({{1 << 12, 1 << 14, 1 << 16}, {10, 20}});

// ---- SoA narrow-format variants -------------------------------------------
// The per-bin sort of the narrow tuple stream (pb/tuple.hpp): u32 keys
// shaped like (local_row << col_bits) | col with a separate f64 value
// array.  Byte throughput is reported over the 12 B/tuple the SoA stream
// moves, so GB/s is comparable with the 16 B AoS benches above — the
// per-tuple speedup is what the pipeline's sort phase gains.

std::vector<std::uint32_t> make_narrow_keys(std::size_t n, int row_bits,
                                            int col_bits, unsigned seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::uint32_t> keys(n);
  const std::uint64_t row_mask = (1ull << row_bits) - 1;
  const std::uint64_t col_mask = (1ull << col_bits) - 1;
  for (auto& k : keys) {
    k = (static_cast<std::uint32_t>(rng() & row_mask) << col_bits) |
        static_cast<std::uint32_t>(rng() & col_mask);
  }
  return keys;
}

// Paired key/value SoA sort — what pb_sort_compress_narrow runs.
void BM_RadixSortLsdNarrowKv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int row_bits = static_cast<int>(state.range(1));
  const std::vector<std::uint32_t> original =
      make_narrow_keys(n, row_bits, 20, 7);
  std::vector<std::uint32_t> keys(n), kscratch(n);
  std::vector<double> vals(n, 1.0), vscratch(n);
  for (auto _ : state) {
    state.PauseTiming();
    keys = original;
    state.ResumeTiming();
    pbs::radix_sort_lsd_kv(keys.data(), vals.data(), n, kscratch.data(),
                           vscratch.data());
    benchmark::DoNotOptimize(keys.data());
    benchmark::DoNotOptimize(vals.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n * (sizeof(std::uint32_t) + sizeof(double))));
}
BENCHMARK(BM_RadixSortLsdNarrowKv)
    ->ArgsProduct({{1 << 12, 1 << 14, 1 << 16}, {10, 12}});

// Key + payload-index sort: scatter passes move 8 B/record; the caller
// gathers the payload once afterwards (modeled here so the comparison is
// end-to-end fair).
void BM_RadixSortLsdNarrowIndex(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int row_bits = static_cast<int>(state.range(1));
  const std::vector<std::uint32_t> original =
      make_narrow_keys(n, row_bits, 20, 7);
  std::vector<std::uint32_t> keys(n), idx(n), kscratch(n), iscratch(n);
  std::vector<double> vals(n, 1.0), gathered(n);
  for (auto _ : state) {
    state.PauseTiming();
    keys = original;
    for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<std::uint32_t>(i);
    state.ResumeTiming();
    pbs::radix_sort_lsd_index(keys.data(), idx.data(), n, kscratch.data(),
                              iscratch.data());
    for (std::size_t i = 0; i < n; ++i) gathered[i] = vals[idx[i]];
    benchmark::DoNotOptimize(keys.data());
    benchmark::DoNotOptimize(gathered.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n * (sizeof(std::uint32_t) + sizeof(double))));
}
BENCHMARK(BM_RadixSortLsdNarrowIndex)
    ->ArgsProduct({{1 << 12, 1 << 14, 1 << 16}, {10, 12}});

// Duplicate-heavy bins (high compression factor): radix recursion bottoms
// out fast, the compress pass dominates.
void BM_RadixSortDuplicateHeavy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<Tuple> original = make_tuples(n, 6, 6, 9);  // ~4K keys
  std::vector<Tuple> work(n);
  for (auto _ : state) {
    state.PauseTiming();
    work = original;
    state.ResumeTiming();
    pbs::radix_sort(work.data(), work.size(),
                    [](const Tuple& t) { return t.key; });
    benchmark::DoNotOptimize(work.data());
  }
}
BENCHMARK(BM_RadixSortDuplicateHeavy)->Arg(1 << 14)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
