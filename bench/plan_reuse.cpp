// Plan-once/execute-N vs N fresh multiplies — the amortization the
// plan/execute architecture exists to deliver (no paper artifact; this
// measures the repeated-traffic serving mode of the library).
//
// For each input × semiring the bench multiplies the same problem N times
// two ways: fresh pb_spgemm calls, each paying symbolic analysis and a
// cold workspace, and one PbPlan executed N times through a pooled
// workspace.  Reported: amortized ms/multiply for both modes, the
// speedup, and the fraction of the fresh cost recovered — which bounds at
// the symbolic+allocation share of a fresh multiply as N grows.
//
//   ./bench_plan_reuse [--scales 11,13] [--efs 8] [--execs 10]
//                      [--semirings plus_times,min_plus]
#include "bench_common.hpp"
#include "pb/plan.hpp"

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"

namespace {

using namespace pbs;

struct Mode {
  const char* kind;
  mtx::CsrMatrix matrix;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::vector<int> scales = args.get_int_list("scales", {11, 13});
  const std::vector<int> efs = args.get_int_list("efs", {8});
  const int execs = args.get_int("execs", 10);
  const std::vector<std::string> semirings =
      args.get_string_list("semirings", {"plus_times", "min_plus"});

  bench::print_header(
      "plan reuse: amortized plan-once/execute-N vs N fresh multiplies",
      "execs = " + std::to_string(execs));

  bench::Table table({"input", "semiring", "fresh ms", "planned ms",
                      "speedup", "recovered", "plan ms"});
  bench::JsonSink json(args);

  for (const int scale : scales) {
    for (const int ef : efs) {
      std::vector<Mode> modes;
      modes.push_back({"er", mtx::coo_to_csr(mtx::generate_er(
                                 mtx::RandomScale{scale, double(ef)}, 7))});
      mtx::RmatParams rp;
      rp.scale = scale;
      rp.edge_factor = ef;
      rp.seed = 7;
      modes.push_back({"rmat", mtx::coo_to_csr(mtx::generate_rmat(rp))});

      for (const Mode& mode : modes) {
        const SpGemmProblem p = SpGemmProblem::square(mode.matrix);
        const std::string input = std::string(mode.kind) + "-s" +
                                  std::to_string(scale) + "-ef" +
                                  std::to_string(ef);

        for (const std::string& s : semirings) {
          // Warm both code paths (instantiation, page cache) once.
          {
            pb::PbWorkspace warm;
            (void)pb::pb_spgemm_named(s, p.a_csc, p.b_csr, {}, warm);
          }

          // N fresh multiplies: every call re-analyzes and re-allocates.
          Timer t;
          for (int i = 0; i < execs; ++i) {
            pb::PbWorkspace ws;  // cold workspace per call, by design
            (void)pb::pb_spgemm_named(s, p.a_csc, p.b_csr, {}, ws);
          }
          const double fresh_s = t.elapsed_s();

          // Plan once, execute N times through one pooled workspace.
          t.reset();
          const pb::PbPlan plan = pb::pb_plan_build(p.a_csc, p.b_csr, {});
          const double plan_s = t.elapsed_s();
          pb::PbWorkspace ws;
          t.reset();
          for (int i = 0; i < execs; ++i) {
            (void)pb::pb_execute_named(s, p.a_csc, p.b_csr, plan, ws);
          }
          const double exec_s = t.elapsed_s();

          const double fresh_per = fresh_s / execs * 1e3;
          const double planned_per = (plan_s + exec_s) / execs * 1e3;
          table.row(input, s, fresh_per, planned_per,
                    fresh_per / planned_per,
                    std::to_string(
                        static_cast<int>((1.0 - planned_per / fresh_per) *
                                         100.0 + 0.5)) + "%",
                    plan_s * 1e3);
          if (json.enabled()) {
            json.add(bench::Json()
                         .field("bench", std::string("plan_reuse"))
                         .field("input", input)
                         .field("semiring", s)
                         .field("format",
                                std::string(pb::to_string(plan.sym.format)))
                         .field("bytes_per_tuple",
                                static_cast<double>(
                                    pb::bytes_per_tuple(plan.sym.format)))
                         .field("fresh_ms_per_mult", fresh_per)
                         .field("planned_ms_per_mult", planned_per)
                         .field("speedup", fresh_per / planned_per)
                         .field("plan_ms", plan_s * 1e3));
          }
        }
      }
    }
  }
  table.print(std::cout);
  return 0;
}
