// Table VII — NUMA local/remote bandwidth and latency, plus the library's
// own NUMA placement layer.
//
// The paper measures ~50 GB/s / 88 ns locally vs ~33 GB/s / 147 ns across
// Skylake sockets to explain Fig. 14.  This host exposes a single NUMA
// domain (DESIGN.md §3), so the bench measures the local figures with the
// same methodology — a STREAM copy kernel for bandwidth and a
// pointer-chase over a cache-busting working set for latency — and reports
// remote access as unavailable.
//
// The second half reports what the placement layer does with the detected
// topology: pb_symbolic's bin→home-node partition (contiguous,
// flop-balanced) and a pipelined PB squaring through
// PbWorkspace::place_bins, whose tuple pool is first-touched bin-by-bin on
// each bin's home node.  On one node the partition is all zeros and
// place_bins degenerates to a parallel pre-fault — the multiply still
// validates the path end to end.
//
//   ./bench_table7_numa [--mb N] [--reps R] [--hops H] [--scale S]
//                       [--json out.json]
#include <numeric>
#include <random>

#include "bench_common.hpp"
#include "common/aligned_buffer.hpp"
#include "common/cache_info.hpp"
#include "common/numa.hpp"
#include "common/stream.hpp"
#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "pb/pb_spgemm.hpp"
#include "pb/symbolic.hpp"

namespace {

// Average load-to-use latency (ns) via a randomized pointer chase: each
// element holds the index of the next, so every load depends on the last.
double chase_latency_ns(std::size_t elements, std::int64_t hops) {
  pbs::AlignedBuffer<std::uint64_t> next(elements);
  std::vector<std::uint64_t> order(elements);
  std::iota(order.begin(), order.end(), 0);
  std::mt19937_64 rng(99);
  std::shuffle(order.begin(), order.end(), rng);
  for (std::size_t i = 0; i + 1 < elements; ++i) next[order[i]] = order[i + 1];
  next[order[elements - 1]] = order[0];

  std::uint64_t p = order[0];
  pbs::Timer t;
  for (std::int64_t i = 0; i < hops; ++i) p = next[p];
  const double ns = t.elapsed_s() * 1e9 / static_cast<double>(hops);
  // Defeat dead-code elimination.
  if (p == ~0ull) std::cerr << "";
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);

  bench::print_header(
      "Table VII — NUMA local and cross-socket bandwidth / latency",
      "paper: 50.26 GB/s + 88.1 ns local, 33.36 GB/s + 147.4 ns remote");

  // Bandwidth: STREAM copy, all threads (the paper uses a STREAM copy
  // kernel with data pinned to one socket).
  const StreamResult local = run_stream(
      static_cast<std::size_t>(args.get_int("mb", 192)) * 1024 * 1024 /
          (3 * sizeof(double)),
      args.get_int("reps", 5));

  // Latency: pointer chase over 8x the last-level cache.
  const std::size_t working_set =
      std::max<std::size_t>(8 * cache_info().l3_bytes, 64u << 20);
  const double latency =
      chase_latency_ns(working_set / sizeof(std::uint64_t),
                       args.get_int("hops", 1 << 22));

  bench::Table t({"access", "bandwidth(GB/s)", "latency(ns)"});
  {
    std::ostringstream bw, lat;
    bw << std::setprecision(4) << local.copy_gbs;
    lat << std::setprecision(4) << latency;
    t.row_cells({"local (socket 0 -> socket 0)", bw.str(), lat.str()});
  }
  t.row_cells({"remote (socket 0 -> socket 1)", "n/a (single NUMA domain)",
               "n/a (single NUMA domain)"});
  t.print(std::cout);
  std::cout << "\n# On a real dual-socket host, rerun under `numactl "
               "--cpunodebind=1 --membind=0` to obtain the remote row.\n";

  // --- the library's placement layer on this topology ---------------------
  const NumaTopology& topo = numa_topology();
  std::cout << "\n# detected topology: " << topo.nnodes << " node(s), "
            << topo.cpu_to_node.size() << " cpu(s) mapped\n";

  const int scale = args.get_int("scale", 12);
  const mtx::CsrMatrix a = mtx::coo_to_csr(
      mtx::generate_er(mtx::RandomScale{scale, 8.0}, 7));
  const mtx::CscMatrix a_csc = mtx::csr_to_csc(a);
  const pb::SymbolicResult sym = pb::pb_symbolic(a_csc, a, pb::PbConfig{});

  std::vector<int> bins_per_node(static_cast<std::size_t>(sym.numa_nodes), 0);
  for (const int node : sym.bin_home) {
    ++bins_per_node[static_cast<std::size_t>(node)];
  }
  std::cout << "# bin->home partition over er-s" << scale << "^2: "
            << sym.layout.nbins << " bins across " << sym.numa_nodes
            << " node(s):";
  for (std::size_t n = 0; n < bins_per_node.size(); ++n) {
    std::cout << " node" << n << "=" << bins_per_node[n];
  }
  std::cout << "\n";

  // Exercise place_bins through the pipelined schedule (its acquire path
  // first-touches the pool bin-by-bin on each bin's home node).
  pb::PbConfig cfg;
  cfg.schedule = pb::PbSchedule::kPipeline;
  const pb::PbResult placed = pb::pb_spgemm(a_csc, a, cfg);
  std::cout << "# pipelined squaring through place_bins: "
            << placed.stats.mflops() << " MFLOPS, numeric wall "
            << placed.stats.wall_seconds * 1e3 << " ms, overlap hidden "
            << placed.stats.overlap_seconds() * 1e3 << " ms\n";

  bench::JsonSink json(args);
  if (json.enabled()) {
    json.add(bench::Json()
                 .field("bench", std::string("table7_numa"))
                 .field("kind", std::string("local"))
                 .field("copy_gbs", local.copy_gbs)
                 .field("latency_ns", latency)
                 .field("numa_nodes", static_cast<std::int64_t>(topo.nnodes))
                 .field("cpus_mapped",
                        static_cast<std::int64_t>(topo.cpu_to_node.size())));
    json.add(bench::Json()
                 .field("bench", std::string("table7_numa"))
                 .field("kind", std::string("placement"))
                 .field("input", "er-s" + std::to_string(scale))
                 .field("nbins", static_cast<std::int64_t>(sym.layout.nbins))
                 .field("bin_home_nodes",
                        static_cast<std::int64_t>(sym.numa_nodes))
                 .field("pipelined_mflops", placed.stats.mflops())
                 .field("numeric_wall_ms", placed.stats.wall_seconds * 1e3)
                 .field("overlap_hidden_ms",
                        placed.stats.overlap_seconds() * 1e3));
  }
  return 0;
}
