// Fig. 11 — squaring the twelve Table VI matrices, sorted by ascending
// compression factor (the paper's x-axis), with the four algorithms.
//
// Expected shape (paper Secs. V-B, VI): PB-SpGEMM wins on matrices with
// cf < 4 (everything left of 'offshore'); HashSpGEMM takes over on the
// high-cf FEM matrices (cant, hood) where the expanded Cˆ costs PB 2·flop
// extra traffic.
//
// Real SuiteSparse .mtx files are used when PBS_MATRIX_DIR (or --dir) is
// set; otherwise the structured surrogates of DESIGN.md §3 stand in,
// shrunk by --shrink (default 12) to laptop scale.
#include "bench_common.hpp"
#include "matrix/surrogates.hpp"

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);
  const double shrink = args.get_double("shrink", 12.0);
  const int reps = args.get_int("reps", 3);
  const int warmup = args.get_int("warmup", 2);
  const std::string dir = args.get_string("dir", "");
  const auto algo_names = args.get_string_list(
      "algos", {"pb", "heap", "hash", "hashvec"});

  bench::print_header(
      "Fig. 11 — A^2 on the Table VI suite, ascending compression factor",
      dir.empty()
          ? "surrogate matrices (DESIGN.md s3), shrink " + std::to_string(shrink)
          : "real matrices from " + dir);

  bench::Table t([&] {
    std::vector<std::string> h{"matrix", "cf(paper)", "cf(meas)", "flop"};
    for (const auto& a : algo_names) h.push_back(a + "(MF/s)");
    h.push_back("winner");
    return h;
  }());

  for (const mtx::SuiteEntry& entry : mtx::table6_sorted_by_cf()) {
    const mtx::SuiteMatrix sm = mtx::load_suite_matrix(
        entry, shrink, dir.empty() ? std::nullopt : std::optional(dir));
    const SpGemmProblem problem = SpGemmProblem::square(sm.matrix);
    const nnz_t flop = mtx::count_flops(sm.matrix, sm.matrix);
    const nnz_t nnzc = mtx::symbolic_nnz(sm.matrix, sm.matrix);
    const double cf = nnzc > 0 ? static_cast<double>(flop) / nnzc : 0.0;

    std::vector<double> mflops;
    for (const auto& name : algo_names) {
      mflops.push_back(
          bench::algo_mflops(algorithm(name), problem, flop, reps, warmup));
    }
    const std::size_t win = static_cast<std::size_t>(
        std::max_element(mflops.begin(), mflops.end()) - mflops.begin());

    std::vector<std::string> cells{entry.name};
    auto num = [](double v) {
      std::ostringstream ss;
      ss << std::setprecision(4) << v;
      return ss.str();
    };
    cells.push_back(num(entry.cf));
    cells.push_back(num(cf));
    cells.push_back(std::to_string(flop));
    for (const double m : mflops) cells.push_back(num(m));
    cells.push_back(algo_names[win]);
    t.row_cells(std::move(cells));
  }
  t.print(std::cout);
  std::cout << "\n# paper's conclusion: PB wins for cf < 4, hash wins for "
               "cf > 4\n";
  return 0;
}
