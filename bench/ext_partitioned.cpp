// Extension — partitioned PB-SpGEMM (paper Sec. V-D / the first author's
// thesis): A split into row blocks, each multiplied with B independently.
//
// On the paper's dual-socket machine this keeps bins socket-local at the
// cost of reading B once per partition.  On any machine it also shrinks
// the expanded-buffer working set per part.  This bench sweeps the number
// of partitions on ER and R-MAT inputs; the paper's observation — "it does
// not perform uniformly well for all matrices due to the additional cost
// of reading B more than once" — shows up as the nparts > 1 rows winning
// or losing depending on the input.
#include "bench_sweeps.hpp"
#include "pb/partitioned.hpp"

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);
  const int scale = args.get_int("scale", 14);
  const double ef = args.get_double("ef", 8.0);
  const int reps = args.get_int("reps", 3);
  const int warmup = args.get_int("warmup", 2);

  bench::print_header(
      "Extension — partitioned PB-SpGEMM (paper Sec. V-D), scale " +
      std::to_string(scale) + ", ef " + std::to_string(static_cast<int>(ef)));

  for (const auto kind :
       {bench::MatrixKind::kEr, bench::MatrixKind::kRmat}) {
    const bool er = kind == bench::MatrixKind::kEr;
    std::cout << "## " << (er ? "ER" : "R-MAT") << "\n";
    const mtx::CsrMatrix a = bench::make_random(kind, scale, ef, 98);
    const mtx::CsrMatrix b = bench::make_random(kind, scale, ef, 99);
    const SpGemmProblem problem = SpGemmProblem::multiply(a, b);
    const nnz_t flop = mtx::count_flops(a, b);

    bench::Table t({"nparts", "MF/s", "slowest-part share"});
    for (const int nparts : {1, 2, 4, 8}) {
      const RunStats s = bench::measure_seconds(
          [&] {
            (void)pb::pb_spgemm_partitioned(problem.a_csc, problem.b_csr,
                                            nparts);
          },
          reps, warmup);
      // Load imbalance indicator: the heaviest part's share of summed time.
      const pb::PartitionedResult r =
          pb::pb_spgemm_partitioned(problem.a_csc, problem.b_csr, nparts);
      double heaviest = 0, sum = 0;
      for (const pb::PbTelemetry& part : r.parts) {
        heaviest = std::max(heaviest, part.total_seconds());
        sum += part.total_seconds();
      }
      t.row(nparts, static_cast<double>(flop) / s.min / 1e6,
            sum > 0 ? heaviest / sum : 0.0);
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
