// Fig. 6 — PB-SpGEMM tuning parameters on an ER matrix:
//   (a) expand-phase bandwidth vs local-bin width (paper: small bins waste
//       cache lines; 512 B is the sweet spot), and
//   (b) expand vs sort bandwidth as the number of global bins grows
//       (paper: more bins -> in-cache sort speeds up, too many bins ->
//       expand loses bandwidth).
//
// The paper uses ER scale 20, edge factor 4; default here is scale 15 so
// the sweep finishes on a laptop (override with --scale 20 --ef 4).
#include "bench_common.hpp"
#include "matrix/convert.hpp"
#include "matrix/generate.hpp"

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);
  const int scale = args.get_int("scale", 15);
  const double ef = args.get_double("ef", 4.0);
  const int reps = args.get_int("reps", 3);
  const int warmup = args.get_int("warmup", 2);

  bench::print_header("Fig. 6 — local-bin width (a) and bin count (b)",
                      "ER scale " + std::to_string(scale) + ", edge factor " +
                          std::to_string(ef));

  const mtx::CsrMatrix a =
      mtx::coo_to_csr(mtx::generate_er(mtx::RandomScale{scale, ef}, 61));
  const mtx::CsrMatrix b =
      mtx::coo_to_csr(mtx::generate_er(mtx::RandomScale{scale, ef}, 62));
  const SpGemmProblem problem = SpGemmProblem::multiply(a, b);

  std::cout << "## (a) expand bandwidth vs local bin width\n";
  bench::Table ta({"lbin_bytes", "expand(GB/s)", "total(MF/s)"});
  for (const int width : {16, 32, 64, 128, 256, 512, 1024, 2048, 4096}) {
    pb::PbConfig cfg;
    cfg.local_bin_bytes = width;
    const pb::PbTelemetry t =
        bench::pb_best_telemetry(problem, cfg, reps, warmup);
    ta.row(width, t.expand.gbs(), t.mflops());
  }
  ta.print(std::cout);

  std::cout << "\n## (b) expand/sort bandwidth vs number of global bins\n";
  bench::Table tb({"nbins", "expand(GB/s)", "sort(GB/s)", "compress(GB/s)",
                   "total(MF/s)"});
  for (int nbins = 2; nbins <= (1 << 12); nbins *= 4) {
    pb::PbConfig cfg;
    cfg.nbins = nbins;
    const pb::PbTelemetry t =
        bench::pb_best_telemetry(problem, cfg, reps, warmup);
    tb.row(t.nbins, t.expand.gbs(), t.sort.gbs(), t.compress.gbs(),
           t.mflops());
  }
  tb.print(std::cout);
  std::cout << "\n# paper's defaults: 512-byte local bins, 1K-2K global "
               "bins (auto rule: one bin fits half of L2)\n";
  return 0;
}
