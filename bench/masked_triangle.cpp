// Masked triangle-counting sweep: the fused masked descriptor
// (SpGemmOp{mask = L} through make_plan/execute) vs the unfused
// multiply-then-Hadamard formulation, per algorithm, on R-MAT graphs.
//
//   triangles = Σ ( (L·L) .* L ),  L = strict lower triangle of the
//   pattern adjacency matrix
//
// The fused path restricts the product to L's pattern inside the kernel —
// PB drops masked-out tuples at its compress stage (reported below as
// `dropped`), the Gustavson row loops skip them outright — so it writes
// nnz((L·L) .* L) instead of nnz(L·L) and never runs the Hadamard pass.
//
//   ./bench_masked_triangle [--scales 11,12,13] [--efs 8] [--reps 5]
//                           [--warmup 1] [--algos pb,hash,heap,auto]
//                           [--json FILE]
#include "bench_common.hpp"

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "matrix/ops.hpp"
#include "spgemm/op.hpp"
#include "spgemm/plan.hpp"

namespace {

using namespace pbs;
using namespace pbs::bench;

mtx::CsrMatrix make_lower(int scale, double ef) {
  mtx::RmatParams params;
  params.scale = scale;
  params.edge_factor = ef;
  params.seed = 7;
  const mtx::CsrMatrix adj = mtx::to_pattern(mtx::drop_diagonal(
      mtx::symmetrize(mtx::coo_to_csr(mtx::generate_rmat(params)))));
  return mtx::tril(adj);
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv);
  const std::vector<int> scales = args.get_int_list("scales", {11, 12, 13});
  const std::vector<int> efs = args.get_int_list("efs", {8});
  const int reps = args.get_int("reps", 5);
  const int warmup = args.get_int("warmup", 1);
  const std::vector<std::string> algos =
      args.get_string_list("algos", {"pb", "hash", "heap", "auto"});
  JsonSink sink(args);

  print_header("masked triangle counting — fused descriptor vs multiply-then-Hadamard",
               "fused: SpGemmOp{mask = L} through make_plan; unfused: full "
               "L*L then pattern filter");
  Table table({"scale", "ef", "algo", "resolved", "fused_ms", "unfused_ms",
               "speedup", "dropped", "triangles"});

  for (const int scale : scales) {
    for (const int ef : efs) {
      const mtx::CsrMatrix lower = make_lower(scale, static_cast<double>(ef));
      const SpGemmProblem p = SpGemmProblem::square(lower);
      const nnz_t flop = mtx::count_flops(lower, lower);

      for (const std::string& algo : algos) {
        // Fused: one descriptor plan, executed repeatedly (analysis paid
        // once — the architecture's steady state).
        SpGemmOp op;
        op.algo = algo;
        op.mask = &lower;
        SpGemmPlan plan = make_plan(p, op);
        double triangles = 0;
        const RunStats fused = measure_seconds(
            [&] { triangles = mtx::value_sum(plan.execute(p)); }, reps,
            warmup);
        const nnz_t dropped =
            plan.algo() == "pb" ? plan.last_pb_stats().mask_dropped : 0;

        // Unfused: the same concrete algorithm's full product, then the
        // value-safe masking pass (pattern_filter — what hadamard with a
        // pattern mask computes).  "auto" resolves to the masked plan's
        // choice so both sides run the same kernel family.
        const AlgoInfo& unfused_algo = algorithm(plan.algo());
        double triangles_unfused = 0;
        const RunStats unfused = measure_seconds(
            [&] {
              triangles_unfused = mtx::value_sum(
                  mtx::pattern_filter(unfused_algo.fn(p), lower));
            },
            reps, warmup);

        const double speedup = fused.min > 0 ? unfused.min / fused.min : 0.0;
        table.row(scale, ef, algo, plan.algo(), fused.min * 1e3,
                  unfused.min * 1e3, speedup, dropped,
                  static_cast<long long>(triangles));
        if (triangles != triangles_unfused) {
          std::cerr << "MISMATCH: fused " << triangles << " vs unfused "
                    << triangles_unfused << "\n";
          return 1;
        }
        Json record;
        record.field("bench", std::string("masked_triangle"))
            .field("scale", static_cast<std::int64_t>(scale))
            .field("ef", static_cast<std::int64_t>(ef))
            .field("algo", algo)
            .field("resolved", plan.algo())
            .field("flop", static_cast<std::int64_t>(flop))
            .field("fused_ms", fused.min * 1e3)
            .field("unfused_ms", unfused.min * 1e3)
            .field("speedup", speedup)
            .field("mask_dropped", static_cast<std::int64_t>(dropped))
            .field("triangles", static_cast<std::int64_t>(triangles));
        sink.add(record);
      }
    }
  }
  table.print(std::cout);
  return 0;
}
