// Fused epilogues vs their two-pass formulations — the PR 10 wins.
//
// Three measurements per input, all through SpGemmExecutor (cached plans,
// pooled workspaces) so the delta is the epilogue, not planning:
//
//   accumulate   C ⊞= A·B iterated: fused merge-at-convert vs the product
//                materialized and combined with semiring_ewise_add.  The
//                post-pass reads and writes the accumulator once more per
//                round — exactly the traffic the fusion deletes.
//   expand_mask  masked A·A: mask applied in the expand scatter loop
//                (ExpandMaskMode::kOn) vs filtered at compress (kOff).
//                Reports generated tuples against the mask-bounded count
//                (the kOff run's surviving tuples) — the CI gate holds
//                generated <= 1.05x that bound.
//   post_op      prune+top-k fused into the per-bin filter vs the plain
//                product followed by apply_post_op.
//
//   ./bench_fused_epilogue [--scales 11,12] [--efs 8] [--rounds 6]
//                          [--reps 5] [--warmup 1] [--mask_ef 2]
//                          [--json out.json]
#include "bench_common.hpp"

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "spgemm/epilogue.hpp"
#include "spgemm/executor.hpp"

namespace {

using namespace pbs;

struct Input {
  std::string name;
  mtx::CsrMatrix matrix;
};

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  const std::vector<int> scales = args.get_int_list("scales", {11, 12});
  const std::vector<int> efs = args.get_int_list("efs", {8});
  const int rounds = args.get_int("rounds", 6);
  const int reps = args.get_int("reps", 5);
  const int warmup = args.get_int("warmup", 1);
  const int mask_ef = args.get_int("mask_ef", 2);

  bench::print_header(
      "fused epilogues: in-kernel accumulate / expand mask / post-op vs "
      "their two-pass formulations",
      "rounds = " + std::to_string(rounds));

  bench::Table table({"input", "mode", "detail", "fused ms", "two-pass ms",
                      "speedup"});
  bench::JsonSink json(args);

  for (const int scale : scales) {
    for (const int ef : efs) {
      std::vector<Input> inputs;
      inputs.push_back({"er-s" + std::to_string(scale) + "-ef" +
                            std::to_string(ef),
                        mtx::coo_to_csr(mtx::generate_er(
                            mtx::RandomScale{scale, double(ef)}, 7))});
      mtx::RmatParams rp;
      rp.scale = scale;
      rp.edge_factor = ef;
      rp.seed = 7;
      inputs.push_back({"rmat-s" + std::to_string(scale) + "-ef" +
                            std::to_string(ef),
                        mtx::coo_to_csr(mtx::generate_rmat(rp))});
      const mtx::CsrMatrix mask = mtx::coo_to_csr(mtx::generate_er(
          mtx::RandomScale{scale, double(mask_ef)}, 11));

      for (const Input& in : inputs) {
        const SpGemmProblem p = SpGemmProblem::square(in.matrix);
        SpGemmExecutor exec;

        // ---- fused accumulate vs semiring_ewise_add post-pass ------------
        for (const char* semiring : {"plus_times", "min_plus"}) {
          SpGemmOp op;
          op.algo = "pb";
          op.semiring = semiring;
          // The iterative shape: every round folds the same product into
          // the running aggregate, so after round one the accumulator
          // carries the product's pattern.
          const mtx::CsrMatrix c0 = exec.run(p, op);  // warms the plan too

          const auto fused = bench::measure_seconds(
              [&] {
                mtx::CsrMatrix c = c0;
                for (int r = 0; r < rounds; ++r) c = exec.run(p, op, c);
              },
              reps, warmup);
          const auto post = bench::measure_seconds(
              [&] {
                mtx::CsrMatrix c = c0;
                for (int r = 0; r < rounds; ++r) {
                  c = semiring_ewise_add(op.semiring, c, exec.run(p, op));
                }
              },
              reps, warmup);

          const double fused_ms = fused.min / rounds * 1e3;
          const double post_ms = post.min / rounds * 1e3;
          table.row(in.name, "accumulate", semiring, fused_ms, post_ms,
                    post_ms / fused_ms);
          if (json.enabled()) {
            json.add(bench::Json()
                         .field("bench", std::string("fused_epilogue"))
                         .field("mode", std::string("accumulate"))
                         .field("input", in.name)
                         .field("semiring", std::string(semiring))
                         .field("fused_ms_per_round", fused_ms)
                         .field("postpass_ms_per_round", post_ms)
                         .field("speedup", post_ms / fused_ms));
          }
        }

        // ---- expand-stage masking vs compress-stage filtering ------------
        {
          SpGemmOp op;
          op.algo = "pb";
          op.mask = &mask;

          op.pb.expand_mask = pb::ExpandMaskMode::kOff;
          RunInfo off_info;
          (void)exec.run(p, op, &off_info);
          const auto off = bench::measure_seconds(
              [&] { (void)exec.run(p, op); }, reps, warmup);

          op.pb.expand_mask = pb::ExpandMaskMode::kOn;
          RunInfo on_info;
          (void)exec.run(p, op, &on_info);
          const auto on = bench::measure_seconds(
              [&] { (void)exec.run(p, op); }, reps, warmup);

          // The nnz(mask)-bounded tuple count: a mask-aware kernel
          // generates at most min(nnz(A(i,:)), nnz(B(:,j))) tuples per
          // mask entry (i,j); the kOff run generates all `flop` of them
          // regardless of the mask.
          const auto generated = static_cast<double>(
              on_info.pb_stats.flop - on_info.pb_stats.mask_skipped_expand);
          double bound = 0;
          for (index_t r = 0; r < mask.nrows; ++r) {
            const double row_nnz = static_cast<double>(
                in.matrix.rowptr[static_cast<std::size_t>(r) + 1] -
                in.matrix.rowptr[r]);
            for (nnz_t i = mask.rowptr[r];
                 i < mask.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
              const index_t col = mask.colids[i];
              const double col_nnz = static_cast<double>(
                  p.a_csc.colptr[static_cast<std::size_t>(col) + 1] -
                  p.a_csc.colptr[col]);
              bound += std::min(row_nnz, col_nnz);
            }
          }
          const double on_ms = on.min * 1e3;
          const double off_ms = off.min * 1e3;
          table.row(in.name, "expand_mask",
                    "tuples " + std::to_string(static_cast<long long>(
                                    generated)) +
                        "/" +
                        std::to_string(static_cast<long long>(bound)),
                    on_ms, off_ms, off_ms / on_ms);
          if (json.enabled()) {
            json.add(bench::Json()
                         .field("bench", std::string("fused_epilogue"))
                         .field("mode", std::string("expand_mask"))
                         .field("input", in.name)
                         .field("generated_tuples", generated)
                         .field("mask_bounded_tuples", bound)
                         .field("tuple_ratio",
                                bound > 0 ? generated / bound : 1.0)
                         .field("masked_ms", on_ms)
                         .field("filtered_ms", off_ms)
                         .field("speedup", off_ms / on_ms));
          }
        }

        // ---- fused post-op vs plain product + apply_post_op --------------
        {
          PostOp post;
          post.prune_threshold = 2.0;
          post.top_k = 16;

          SpGemmOp plain;
          plain.algo = "pb";
          SpGemmOp op = plain;
          op.post_op = post;
          (void)exec.run(p, op);  // warm the fused plan

          const auto fused = bench::measure_seconds(
              [&] { (void)exec.run(p, op); }, reps, warmup);
          const auto separate = bench::measure_seconds(
              [&] {
                mtx::CsrMatrix c = exec.run(p, plain);
                apply_post_op(c, post);
              },
              reps, warmup);

          const double fused_ms = fused.min * 1e3;
          const double sep_ms = separate.min * 1e3;
          table.row(in.name, "post_op", "prune:2,topk:16", fused_ms, sep_ms,
                    sep_ms / fused_ms);
          if (json.enabled()) {
            json.add(bench::Json()
                         .field("bench", std::string("fused_epilogue"))
                         .field("mode", std::string("post_op"))
                         .field("input", in.name)
                         .field("fused_ms", fused_ms)
                         .field("separate_ms", sep_ms)
                         .field("speedup", sep_ms / fused_ms));
          }
        }
      }
    }
  }
  table.print(std::cout);
  return 0;
}
