// Fig. 12 — strong scaling of the four algorithms from 1 to all threads on
// an ER matrix (left panel) and an R-MAT matrix (right panel), both scale
// 16 / edge factor 16 in the paper (default scale 14 here; --scale 16 for
// the paper-faithful size).
//
// Expected shape (paper Sec. V-C): every algorithm scales within a socket;
// PB stays on top; R-MAT scales worse than ER for PB because skewed bins
// imbalance the sort/compress work.
#include "bench_sweeps.hpp"

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);
  const int scale = args.get_int("scale", 14);
  const double ef = args.get_double("ef", 16.0);
  const int reps = args.get_int("reps", 3);
  const int warmup = args.get_int("warmup", 2);
  const auto algo_names = args.get_string_list(
      "algos", {"pb", "heap", "hash", "hashvec"});

  bench::print_header("Fig. 12 — strong scaling on ER (left) and R-MAT "
                      "(right), scale " +
                          std::to_string(scale) + ", ef " +
                          std::to_string(static_cast<int>(ef)),
                      "speedup is relative to the same algorithm on 1 thread");

  for (const auto kind :
       {bench::MatrixKind::kEr, bench::MatrixKind::kRmat}) {
    const bool er = kind == bench::MatrixKind::kEr;
    std::cout << "## " << (er ? "ER" : "R-MAT") << "\n";
    const mtx::CsrMatrix a = bench::make_random(kind, scale, ef, 71);
    const mtx::CsrMatrix b = bench::make_random(kind, scale, ef, 72);
    const SpGemmProblem problem = SpGemmProblem::multiply(a, b);
    const nnz_t flop = mtx::count_flops(a, b);

    bench::Table t([&] {
      std::vector<std::string> h{"threads"};
      for (const auto& n : algo_names) {
        h.push_back(n + "(MF/s)");
        h.push_back(n + "(x)");
      }
      return h;
    }());

    std::vector<double> base(algo_names.size(), 0.0);
    for (int threads = 1; threads <= max_threads(); ++threads) {
      ThreadCountGuard guard(threads);
      std::vector<std::string> cells{std::to_string(threads)};
      for (std::size_t i = 0; i < algo_names.size(); ++i) {
        const double m = bench::algo_mflops(algorithm(algo_names[i]), problem,
                                            flop, reps, warmup);
        if (threads == 1) base[i] = m;
        std::ostringstream s1, s2;
        s1 << std::setprecision(4) << m;
        s2 << std::setprecision(3) << (base[i] > 0 ? m / base[i] : 0.0);
        cells.push_back(s1.str());
        cells.push_back(s2.str());
      }
      t.row_cells(std::move(cells));
    }
    t.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
