// Table VI — the statistics of the real-matrix suite: n, nnz, d, flop,
// nnz(C) and compression factor of A².  Prints the paper's published values
// next to the values measured on the matrices actually used (real files if
// PBS_MATRIX_DIR/--dir is set, surrogates otherwise), so the surrogate
// fidelity is auditable.
#include "bench_common.hpp"
#include "matrix/surrogates.hpp"

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);
  const double shrink = args.get_double("shrink", 12.0);
  const std::string dir = args.get_string("dir", "");

  bench::print_header(
      "Table VI — evaluation-matrix statistics (paper vs this build)",
      dir.empty() ? "surrogates at shrink " + std::to_string(shrink) +
                        " (set PBS_MATRIX_DIR for real SuiteSparse files)"
                  : "real matrices from " + dir);

  bench::Table t({"matrix", "n", "nnz", "d", "cf(paper)", "n(meas)",
                  "nnz(meas)", "d(meas)", "flop(meas)", "nnzC(meas)",
                  "cf(meas)", "maxdeg", "flop-imb", "source"});
  for (const mtx::SuiteEntry& e : mtx::table6_suite()) {
    const mtx::SuiteMatrix sm = mtx::load_suite_matrix(
        e, shrink, dir.empty() ? std::nullopt : std::optional(dir));
    const mtx::SquareStats s = mtx::square_stats(sm.matrix);
    const mtx::DegreeStats ds = mtx::degree_stats(sm.matrix);
    t.row(e.name, e.n, e.nnz, e.d, e.cf, s.n, s.nnz, s.d, s.flops, s.nnz_c,
          s.cf, ds.max_degree, ds.flop_imbalance,
          sm.from_file ? "file" : "surrogate");
  }
  t.print(std::cout);
  std::cout << "\n# surrogate recipes and the offshore nnz(C) typo "
               "correction: see DESIGN.md s3 and src/matrix/surrogates.*\n";
  return 0;
}
