// Fig. 14 — the dual-socket (full machine) configuration: the same
// ER/R-MAT sweep as Figs. 7/9 but with every hardware thread instead of one
// socket.
//
// The paper's finding: on two NUMA sockets PB loses its edge on R-MAT
// because bins allocated on one socket get sorted by threads on the other,
// paying the ~33 GB/s cross-socket bandwidth of Table VII.  This host has a
// single NUMA domain (DESIGN.md §3): the *code path* (all threads, shared
// bins) is exercised, but the cross-socket penalty cannot manifest — the
// bench reports that explicitly so readers do not over-interpret the rows.
#include "bench_sweeps.hpp"

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);

  set_threads(max_threads());  // "both sockets": everything the host has

  for (const auto kind :
       {bench::MatrixKind::kEr, bench::MatrixKind::kRmat}) {
    bench::run_random_sweep(
        std::string("Fig. 14 — full-machine performance, ") +
            (kind == bench::MatrixKind::kEr ? "ER" : "R-MAT") +
            " (paper: dual-socket Skylake; this host: single NUMA domain, "
            "substitution per DESIGN.md s3)",
        kind, args);
    std::cout << "\n";
  }
  return 0;
}
