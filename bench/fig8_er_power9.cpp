// Fig. 8 — ER random matrices on platform 2.
//
// The paper's second platform is an IBM POWER9; no second ISA is available
// in this environment, so this bench reruns the identical sweep on the host
// and stands as the platform-2 data point (substitution documented in
// DESIGN.md §3).  The paper's POWER9 finding is qualitative — "PB-SpGEMM
// performs better than column SpGEMM algorithms and its performance remains
// relatively stable" — which is exactly what this rerun can (dis)confirm.
#include "bench_sweeps.hpp"

int main(int argc, char** argv) {
  const pbs::bench::Args args(argc, argv);
  pbs::bench::run_random_sweep(
      "Fig. 8 — ER matrices on platform 2 (paper: POWER9; here: same host, "
      "substitution per DESIGN.md s3)",
      pbs::bench::MatrixKind::kEr, args);
  return 0;
}
