// Fig. 10 — R-MAT matrices on platform 2 (paper: POWER9; here: the same
// host — substitution per DESIGN.md §3, see fig8_er_power9.cpp).
#include "bench_sweeps.hpp"

int main(int argc, char** argv) {
  const pbs::bench::Args args(argc, argv);
  pbs::bench::run_random_sweep(
      "Fig. 10 — R-MAT matrices on platform 2 (paper: POWER9; here: same "
      "host, substitution per DESIGN.md s3)",
      pbs::bench::MatrixKind::kRmat, args);
  return 0;
}
