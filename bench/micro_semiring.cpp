// Per-semiring PB-SpGEMM throughput (companion to the algorithm×semiring
// registry).
//
// Squares one ER matrix with every registered semiring-capable algorithm
// (pb, heap, spa) over every built-in semiring and reports MFLOPS (one
// "flop" = one semiring multiply).  Two properties to look for:
//
//   * Down a column, pb stays ahead of the Gustavson baselines on every
//     semiring — the bandwidth-optimized pipeline is what the min_plus /
//     bool_or_and applications (APSP, multi-source BFS) actually run.
//   * Across the pb row, plus_times matches the other semirings: the
//     semiring arrives as a template parameter (S::mul in expand, S::add
//     in compress), so the generalization adds no dispatch cost to the
//     numeric specialization — cross-check against bench/fig7_er_perf.
//
//   --scale 13  --ef 8  --reps 3  --warmup 1  --algos pb,heap,spa
#include "bench_common.hpp"

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "spgemm/semiring.hpp"

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);
  const int scale = args.get_int("scale", 13);
  const double ef = args.get_double("ef", 8.0);
  const int reps = args.get_int("reps", 3);
  const int warmup = args.get_int("warmup", 1);
  const std::vector<std::string> algos =
      args.get_string_list("algos", {"pb", "heap", "spa"});

  bench::print_header(
      "algorithm × semiring throughput matrix (registry dispatch)",
      "MFLOPS, best of " + std::to_string(reps) + "; ER scale " +
          std::to_string(scale) + ", edge factor " + std::to_string(ef));

  const mtx::CsrMatrix a =
      mtx::coo_to_csr(mtx::generate_er(mtx::RandomScale{scale, ef}, 1));
  const SpGemmProblem problem = SpGemmProblem::square(a);
  const nnz_t flop = mtx::count_flops(a, a);

  std::vector<std::string> headers = {"semiring"};
  for (const std::string& algo : algos) headers.push_back(algo);
  bench::Table table(headers);

  for (const std::string& semiring : semiring_names()) {
    std::vector<std::string> cells = {semiring};
    for (const std::string& algo : algos) {
      const SpGemmFn fn = semiring_algorithm(algo, semiring);
      const RunStats s = bench::measure_seconds(
          [&] { (void)fn(problem); }, reps, warmup);
      std::ostringstream cell;
      cell << std::setprecision(4)
           << (s.min > 0 ? static_cast<double>(flop) / s.min / 1e6 : 0.0);
      cells.push_back(cell.str());
    }
    table.row_cells(std::move(cells));
  }
  table.print(std::cout);
  return 0;
}
