// Ablation — the design choices DESIGN.md calls out, beyond what the paper
// plots:
//
//  1. Binning policy: range (Fig. 4's depiction, our default) vs modulo
//     (Algorithm 2 line 9's literal `rowid % nbins`) vs adaptive
//     variable-range bins (Sec. V-C's skew mitigation).
//  2. The ESC family ladder on the same inputs: plain row-partitioned ESC
//     (no propagation blocking) vs PB, plus SPA for a dense-accumulator
//     reference — isolating how much of PB's win is the blocking itself.
#include "bench_sweeps.hpp"

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);
  const int scale = args.get_int("scale", 14);
  const double ef = args.get_double("ef", 8.0);
  const int reps = args.get_int("reps", 3);
  const int warmup = args.get_int("warmup", 2);

  bench::print_header("Ablation — binning policy and the ESC ladder, scale " +
                      std::to_string(scale) + ", ef " +
                      std::to_string(static_cast<int>(ef)));

  for (const auto kind :
       {bench::MatrixKind::kEr, bench::MatrixKind::kRmat}) {
    const bool er = kind == bench::MatrixKind::kEr;
    const mtx::CsrMatrix a = bench::make_random(kind, scale, ef, 91);
    const mtx::CsrMatrix b = bench::make_random(kind, scale, ef, 92);
    const SpGemmProblem problem = SpGemmProblem::multiply(a, b);
    const nnz_t flop = mtx::count_flops(a, b);

    std::cout << "## " << (er ? "ER" : "R-MAT")
              << " — binning policy (same auto bin count)\n";
    bench::Table tp({"policy", "nbins", "expand(GB/s)", "sort(GB/s)",
                     "total(MF/s)"});
    for (const pb::BinPolicy policy :
         {pb::BinPolicy::kRange, pb::BinPolicy::kModulo,
          pb::BinPolicy::kAdaptive}) {
      pb::PbConfig cfg;
      cfg.policy = policy;
      const pb::PbTelemetry t =
          bench::pb_best_telemetry(problem, cfg, reps, warmup);
      tp.row(pb::to_string(policy), t.nbins, t.expand.gbs(), t.sort.gbs(),
             t.mflops());
    }
    tp.print(std::cout);

    std::cout << "\n## " << (er ? "ER" : "R-MAT")
              << " — streaming (non-temporal) stores in the expand flush\n";
    bench::Table ts({"streaming_stores", "expand(GB/s)", "total(MF/s)"});
    for (const bool streaming : {true, false}) {
      pb::PbConfig cfg;
      cfg.streaming_stores = streaming;
      const pb::PbTelemetry t =
          bench::pb_best_telemetry(problem, cfg, reps, warmup);
      ts.row(streaming ? "on" : "off", t.expand.gbs(), t.mflops());
    }
    ts.print(std::cout);

    std::cout << "\n## " << (er ? "ER" : "R-MAT")
              << " — ESC ladder (blocking isolated)\n";
    bench::Table tl({"algorithm", "MF/s"});
    for (const char* name : {"esc", "pb", "spa", "hash"}) {
      tl.row(name, bench::algo_mflops(algorithm(name), problem, flop, reps,
                                      warmup));
    }
    tl.print(std::cout);
    std::cout << "\n";
  }
  return 0;
}
