// Table V — STREAM benchmark of the evaluation platform: sustainable
// Copy/Scale/Add/Triad bandwidth on one thread, one "socket" (all cores
// here), and the full machine.  These β values calibrate every Roofline
// prediction in the other benches.
//
// Extended with the tuple-stream section: the same write-then-read pattern
// Eq. 4 charges the Cˆ stream, run over each TupleFormat's physical
// layout.  GB/s is flat across formats (it is the same machine), which is
// the point — at equal bandwidth the 8 B key-only/f32 streams move twice
// the tuples per second of the 16 B wide stream.
#include <cstring>

#include "bench_common.hpp"
#include "common/aligned_buffer.hpp"
#include "common/stream.hpp"
#include "pb/tuple.hpp"

namespace {

using namespace pbs;

/// Best-of-reps bandwidth of a parallel copy over `n` elements of T —
/// 2·n·sizeof(T) bytes per pass (write the stream, read it back), the
/// Cˆ term of Eq. 4.
template <typename T>
double lane_copy_gbs(std::size_t n, int reps) {
  AlignedBuffer<T> src(n), dst(n);
#pragma omp parallel for schedule(static)
  for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
    src[static_cast<std::size_t>(i)] = T{};
  }
  double best = 0;
  for (int r = 0; r < reps + 1; ++r) {  // first pass is warmup
    Timer t;
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(n); ++i) {
      dst[static_cast<std::size_t>(i)] = src[static_cast<std::size_t>(i)];
    }
    const double s = t.elapsed_s();
    const double gbs =
        s > 0 ? 2.0 * static_cast<double>(n * sizeof(T)) / s / 1e9 : 0.0;
    if (r > 0 && gbs > best) best = gbs;
  }
  return best;
}

struct TupleStreamPoint {
  pb::TupleFormat format;
  double gbs = 0;
  double mtuples_s = 0;
};

/// One point per format, moving the same tuple COUNT through each layout
/// (SoA formats copy their lanes separately, as the pipeline does).
std::vector<TupleStreamPoint> run_tuple_streams(std::size_t tuples, int reps) {
  std::vector<TupleStreamPoint> out;
  auto add = [&](pb::TupleFormat f, double gbs) {
    TupleStreamPoint p;
    p.format = f;
    p.gbs = gbs;
    const double bpt = static_cast<double>(pb::bytes_per_tuple(f));
    p.mtuples_s = gbs * 1e9 / (2.0 * bpt) / 1e6;
    out.push_back(p);
  };
  add(pb::TupleFormat::kWide, lane_copy_gbs<pb::Tuple>(tuples, reps));
  {
    // narrow: 4 B key lane + 8 B value lane, timed as one pass
    AlignedBuffer<pb::narrow_key_t> ks(tuples), kd(tuples);
    AlignedBuffer<value_t> vs(tuples), vd(tuples);
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(tuples); ++i) {
      ks[static_cast<std::size_t>(i)] = 0;
      vs[static_cast<std::size_t>(i)] = 0;
    }
    double best = 0;
    for (int r = 0; r < reps + 1; ++r) {
      Timer t;
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(tuples);
           ++i) {
        kd[static_cast<std::size_t>(i)] = ks[static_cast<std::size_t>(i)];
        vd[static_cast<std::size_t>(i)] = vs[static_cast<std::size_t>(i)];
      }
      const double s = t.elapsed_s();
      const double gbs =
          s > 0 ? 2.0 *
                      static_cast<double>(tuples * pb::kBytesPerTupleNarrow) /
                      s / 1e9
                : 0.0;
      if (r > 0 && gbs > best) best = gbs;
    }
    add(pb::TupleFormat::kNarrow, best);
  }
  add(pb::TupleFormat::kKeyOnly, lane_copy_gbs<pb::wide_key_t>(tuples, reps));
  {
    AlignedBuffer<pb::narrow_key_t> ks(tuples), kd(tuples);
    AlignedBuffer<pb::f32_val_t> vs(tuples), vd(tuples);
#pragma omp parallel for schedule(static)
    for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(tuples); ++i) {
      ks[static_cast<std::size_t>(i)] = 0;
      vs[static_cast<std::size_t>(i)] = 0;
    }
    double best = 0;
    for (int r = 0; r < reps + 1; ++r) {
      Timer t;
#pragma omp parallel for schedule(static)
      for (std::ptrdiff_t i = 0; i < static_cast<std::ptrdiff_t>(tuples);
           ++i) {
        kd[static_cast<std::size_t>(i)] = ks[static_cast<std::size_t>(i)];
        vd[static_cast<std::size_t>(i)] = vs[static_cast<std::size_t>(i)];
      }
      const double s = t.elapsed_s();
      const double gbs =
          s > 0
              ? 2.0 *
                    static_cast<double>(tuples *
                                        pb::kBytesPerTupleNarrowF32) /
                    s / 1e9
              : 0.0;
      if (r > 0 && gbs > best) best = gbs;
    }
    add(pb::TupleFormat::kNarrowF32, best);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);
  const auto elements =
      static_cast<std::size_t>(args.get_int("mb", 256)) * 1024 * 1024 /
      (3 * sizeof(double));
  const int ntimes = args.get_int("reps", 5);

  bench::print_header(
      "Table V — STREAM bandwidth (GB/s)",
      "paper: Skylake single socket ~47-57, dual ~87-108; this host's "
      "values below are the beta used everywhere else");

  bench::JsonSink json(args);

  bench::Table t({"threads", "Copy", "Scale", "Add", "Triad"});
  const int max = max_threads();
  for (const int threads : {1, max}) {
    const StreamResult r = run_stream(elements, ntimes, threads);
    t.row(threads, r.copy_gbs, r.scale_gbs, r.add_gbs, r.triad_gbs);
    if (json.enabled()) {
      json.add(bench::Json()
                   .field("bench", std::string("stream"))
                   .field("threads", std::int64_t{threads})
                   .field("copy_gbs", r.copy_gbs)
                   .field("scale_gbs", r.scale_gbs)
                   .field("add_gbs", r.add_gbs)
                   .field("triad_gbs", r.triad_gbs));
    }
    if (max == 1) break;
  }
  t.print(std::cout);

  // Tuple-stream rates: what the Cˆ write+read term sustains per format.
  const auto tuples = static_cast<std::size_t>(
      args.get_int("tuples_mb", 64)) * 1024 * 1024 / sizeof(pb::Tuple);
  bench::Table ts({"format", "B/t", "copy(GB/s)", "Mtuples/s"});
  for (const TupleStreamPoint& p : run_tuple_streams(tuples, ntimes)) {
    const auto bpt = static_cast<double>(pb::bytes_per_tuple(p.format));
    ts.row(pb::to_string(p.format), bpt, p.gbs, p.mtuples_s);
    if (json.enabled()) {
      json.add(bench::Json()
                   .field("bench", std::string("tuple_stream"))
                   .field("format", std::string(pb::to_string(p.format)))
                   .field("bytes_per_tuple", bpt)
                   .field("copy_gbs", p.gbs)
                   .field("mtuples_s", p.mtuples_s));
    }
  }
  std::cout << "\n## Tuple-stream copy (write Cˆ, read it back) per format\n";
  ts.print(std::cout);

  std::cout << "\n# NOTE: the paper's dual-socket row needs a second NUMA "
               "domain; this host has one (substitution documented in "
               "DESIGN.md s3 / EXPERIMENTS.md).\n";
  return 0;
}
