// Table V — STREAM benchmark of the evaluation platform: sustainable
// Copy/Scale/Add/Triad bandwidth on one thread, one "socket" (all cores
// here), and the full machine.  These β values calibrate every Roofline
// prediction in the other benches.
#include "bench_common.hpp"
#include "common/stream.hpp"

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);
  const auto elements =
      static_cast<std::size_t>(args.get_int("mb", 256)) * 1024 * 1024 /
      (3 * sizeof(double));
  const int ntimes = args.get_int("reps", 5);

  bench::print_header(
      "Table V — STREAM bandwidth (GB/s)",
      "paper: Skylake single socket ~47-57, dual ~87-108; this host's "
      "values below are the beta used everywhere else");

  bench::Table t({"threads", "Copy", "Scale", "Add", "Triad"});
  const int max = max_threads();
  for (const int threads : {1, max}) {
    const StreamResult r = run_stream(elements, ntimes, threads);
    t.row(threads, r.copy_gbs, r.scale_gbs, r.add_gbs, r.triad_gbs);
    if (max == 1) break;
  }
  t.print(std::cout);
  std::cout << "\n# NOTE: the paper's dual-socket row needs a second NUMA "
               "domain; this host has one (substitution documented in "
               "DESIGN.md s3 / EXPERIMENTS.md).\n";
  return 0;
}
