// Fig. 3 — the Roofline model for SpGEMM on ER matrices: attainable
// performance (beta * AI) over the paper's AI range with the three
// operating points (upper bound, column lower bound, outer lower bound),
// using this machine's measured STREAM bandwidth as beta.
#include "bench_common.hpp"
#include "common/stream.hpp"
#include "model/roofline.hpp"

int main(int argc, char** argv) {
  using namespace pbs;
  const bench::Args args(argc, argv);

  bench::print_header("Fig. 3 — Roofline bounds for SpGEMM (ER, cf = 1)");

  const double beta =
      args.get_double("beta", 0.0) > 0
          ? args.get_double("beta", 0.0)
          : run_stream(1 << 24, args.get_int("reps", 5)).best_gbs();
  model::print_fig3(std::cout, beta);

  // Bonus over the paper's figure: the same three bounds across the cf
  // range of Table VI, which is what Fig. 11's crossover argument uses.
  std::cout << "\n## Bounds vs compression factor (b = 16 bytes)\n";
  bench::Table t({"cf", "AI_upper", "AI_column", "AI_outer", "perf_upper(GF/s)",
                  "perf_column(GF/s)", "perf_outer(GF/s)"});
  for (const double cf : {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 16.0}) {
    const model::SpGemmBounds b = model::bounds(beta, cf);
    t.row(cf, b.ai_upper, b.ai_column, b.ai_outer, b.perf_upper, b.perf_column,
          b.perf_outer);
  }
  t.print(std::cout);
  return 0;
}
