// pbs_cli — command-line front end for the library.
//
//   pbs_cli gen      --kind er|rmat|banded --scale N [--ef F] [--n N]
//                    [--halfwidth W] [--seed S] --out FILE.mtx
//   pbs_cli stats    --a FILE.mtx
//   pbs_cli multiply --a FILE.mtx [--b FILE.mtx] [--algo pb|auto|...]
//                    [--schedule auto|barrier|pipeline]
//                    [--reps R] [--repeat N] [--out FILE.mtx]
//                    [--semiring plus_times]
//                    [--mask FILE.mtx] [--complement]
//                    [--post-op prune:T,topk:K,scale:X]
//                    [--mem-budget-mb N] [--deadline-ms T]
//   pbs_cli semiring --a FILE.mtx [--algo auto] [--repeat N]
//   pbs_cli calibrate [--scale N] [--reps R]
//   pbs_cli info
//   pbs_cli stream   [--mb N]
//   pbs_cli roofline [--beta GBS] [--cf CF]
//
// Matrices are Matrix Market files; `multiply` with no --b squares A (the
// paper's evaluation mode) and prints per-phase PB telemetry when the
// algorithm is "pb".  --algo auto resolves to a concrete algorithm via the
// roofline selection model (mask-density-aware when --mask is given) and
// reports the decision; --repeat N plans once into a SpGemmExecutor and
// executes N times, reporting the amortization plus the executor's
// cache-hit/miss and workspace-pool reuse counters.  `calibrate` refits
// the selection model's derating constants from recorded
// predicted-vs-achieved MFLOPS pairs.  --mask restricts the output to the mask's pattern with
// the mask *fused* into the kernel (PB skips masked-out tuples in its
// expand scatter loop when the kept side is sparse, or drops them at the
// compress stage when dense, reporting both counts); --complement flips
// the polarity.  --post-op applies a fused elementwise epilogue
// (scale, then prune |v| < T, then keep the top-k per row) inside the
// kernels — the unpruned product is never materialized; it is an error
// on value-free semirings.
// `semiring` demonstrates runtime semiring registration: it registers the
// tropical (max, +) semiring "plus_max" through SemiringRegistry and runs
// the multiplication over it via the descriptor plan path.  `info` prints
// the (algorithm × semiring) support matrix and the detected cache
// hierarchy.
#include <pbs/pbs.hpp>

#include <algorithm>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <string>

namespace {

using namespace pbs;

class Cli {
 public:
  Cli(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      // The one value-less flag; every other option consumes the next
      // token as its value (as before — a trailing value-less option is
      // dropped, see the verify notes).
      if (arg == "--complement") {
        kv_["complement"] = "1";
      } else if (i + 1 < argc) {
        kv_[arg.substr(2)] = argv[++i];
      }
    }
  }

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? std::nullopt : std::optional(it->second);
  }

  [[nodiscard]] std::string require(const std::string& key) const {
    const auto v = get(key);
    if (!v) throw std::invalid_argument("missing required option --" + key);
    return *v;
  }

  [[nodiscard]] double number(const std::string& key, double fallback) const {
    const auto v = get(key);
    return v ? std::stod(*v) : fallback;
  }

 private:
  std::map<std::string, std::string> kv_;
};

int cmd_gen(const Cli& cli) {
  const std::string kind = cli.require("kind");
  const auto seed = static_cast<std::uint64_t>(cli.number("seed", 1));
  mtx::CooMatrix coo;
  if (kind == "er") {
    const int scale = static_cast<int>(cli.number("scale", 14));
    coo = mtx::generate_er(mtx::RandomScale{scale, cli.number("ef", 8.0)}, seed);
  } else if (kind == "rmat") {
    mtx::RmatParams p;
    p.scale = static_cast<int>(cli.number("scale", 14));
    p.edge_factor = cli.number("ef", 8.0);
    p.seed = seed;
    coo = mtx::generate_rmat(p);
  } else if (kind == "banded") {
    coo = mtx::generate_banded(static_cast<index_t>(cli.number("n", 1 << 14)),
                               cli.number("ef", 8.0),
                               static_cast<index_t>(cli.number("halfwidth", 16)),
                               seed);
  } else {
    throw std::invalid_argument("unknown --kind '" + kind +
                                "' (er, rmat, banded)");
  }
  const std::string out = cli.require("out");
  mtx::write_matrix_market(out, coo);
  std::cout << "wrote " << out << ": " << coo.nrows << " x " << coo.ncols
            << ", nnz " << coo.nnz() << "\n";
  return 0;
}

int cmd_stats(const Cli& cli) {
  const mtx::CsrMatrix a =
      mtx::coo_to_csr(mtx::read_matrix_market(cli.require("a")));
  const mtx::SquareStats s = mtx::square_stats(a);
  std::cout << "n " << s.n << "\nnnz " << s.nnz << "\nd " << s.d << "\nflop(A^2) "
            << s.flops << "\nnnz(A^2) " << s.nnz_c << "\ncf " << s.cf << "\n";
  return 0;
}

void print_pb_phases(const pb::PbTelemetry& tm) {
  std::cout << "  format " << to_string(tm.format) << " ("
            << tm.tuple_bytes() << " B/tuple), schedule "
            << to_string(tm.schedule) << ", symbolic "
            << tm.symbolic.seconds * 1e3 << " ms, expand "
            << tm.expand.seconds * 1e3 << " ms (" << tm.expand.gbs()
            << " GB/s), sort " << tm.sort.seconds * 1e3 << " ms ("
            << tm.sort.gbs() << " GB/s), compress "
            << tm.compress.seconds * 1e3 << " ms, convert "
            << tm.convert.seconds * 1e3 << " ms\n";
  if (tm.schedule == pb::PbSchedule::kPipeline) {
    std::cout << "  pipeline: numeric wall " << tm.wall_seconds * 1e3
              << " ms, overlap hidden " << tm.overlap_seconds() * 1e3
              << " ms, bin wait " << tm.bin_wait_seconds * 1e3
              << " ms, bin run " << tm.bin_run_seconds * 1e3 << " ms, "
              << tm.bins_stolen << " bin(s) stolen\n";
  }
}

// Executor path: analyze + select once into the executor's plan cache,
// execute `execs` times through it.  With --repeat the report centers on
// amortization and the executor's cache/pool counters (the serving
// layer's reason to exist); with --reps it is best-of-N timing like the
// fresh paths, just through the executor.  A non-null mask runs the fused
// masked descriptor.
int multiply_planned(const Cli& cli, const SpGemmProblem& problem,
                     const std::string& algo, const std::string& semiring,
                     pb::FormatPolicy format, int execs,
                     bool amortization_report,
                     const mtx::CsrMatrix* mask = nullptr,
                     bool complement = false,
                     pb::PbSchedule schedule = pb::PbSchedule::kAuto,
                     const PostOp& post_op = {}) {
  SpGemmOp opts;
  opts.algo = algo;
  opts.semiring = semiring;
  opts.pb.format = format;
  opts.pb.schedule = schedule;
  opts.mask = mask;
  opts.complement = complement;
  opts.post_op = post_op;
  // Robust-serving knobs: a byte cap on pooled workspace memory (PB
  // degrades to the row-wise fallback rather than exceeding it) and a
  // per-execute deadline (DeadlineError once it expires).
  ExecutorOptions eopts;
  const double budget_mb = cli.number("mem-budget-mb", 0);
  if (budget_mb > 0) {
    eopts.mem_budget_bytes =
        static_cast<std::size_t>(budget_mb * 1024.0 * 1024.0);
  }
  // Plan-cache knobs: --cache-capacity N bounds the entry count,
  // --cache-capacity-mb M switches to the byte-budgeted policy the
  // serving daemon uses (cost-aware eviction; overrides N).
  const double cache_entries = cli.number("cache-capacity", 0);
  if (cache_entries > 0) {
    eopts.cache_capacity = static_cast<std::size_t>(cache_entries);
  }
  const double cache_mb = cli.number("cache-capacity-mb", 0);
  if (cache_mb > 0) {
    eopts.cache_capacity_bytes =
        static_cast<std::size_t>(cache_mb * 1024.0 * 1024.0);
  }
  RunOptions ropts;
  const double deadline_ms = cli.number("deadline-ms", 0);
  if (deadline_ms > 0) {
    ropts.timeout =
        std::chrono::milliseconds(static_cast<long long>(deadline_ms));
  }
  SpGemmExecutor exec(eopts);
  Timer t;
  RunInfo info;
  exec.prepare(problem, opts, &info);
  const double plan_s = t.elapsed_s();

  if (algo == "auto") {
    std::cout << "auto -> " << info.algo << " (" << info.choice.rationale
              << ")\n";
  }

  const nnz_t flop = info.flop;  // computed by the analysis
  const double predicted = info.predicted_mflops;
  mtx::CsrMatrix c;
  double first_s = 0, rest_s = 0, best_s = 0;
  for (int i = 0; i < execs; ++i) {
    t.reset();
    c = exec.run(problem, opts, ropts, &info);
    const double s = t.elapsed_s();
    (i == 0 ? first_s : rest_s) += s;
    if (i == 0 || s < best_s) best_s = s;
  }

  std::cout << info.algo << " (" << semiring << "): nnz(C) = " << c.nnz()
            << ", flop = " << flop << ", "
            << static_cast<double>(flop) / best_s / 1e6
            << " MFLOPS (best of " << execs << " executes)\n"
            << "  plan " << plan_s * 1e3 << " ms, first execute "
            << first_s * 1e3 << " ms";
  if (execs > 1)
    std::cout << ", steady execute " << rest_s / (execs - 1) * 1e3 << " ms";
  std::cout << "\n";
  if (amortization_report && execs > 1) {
    const double fresh_per_mult = plan_s + first_s;  // analysis paid in-line
    const double amortized = (plan_s + first_s + rest_s) / execs;
    std::cout << "  amortized over " << execs << ": " << amortized * 1e3
              << " ms/multiply vs " << fresh_per_mult * 1e3
              << " fresh (recovered "
              << (1.0 - amortized / fresh_per_mult) * 100 << "%)\n";
  }
  const ExecutorStats es = exec.stats();
  const pb::WorkspacePool::Stats pool = exec.pool_stats();
  const pb::PbWorkspace::Stats ws = exec.workspace_stats();
  std::cout << "  executor cache: " << es.executes << " executes, "
            << es.cache_hits << " hits / " << es.cache_misses
            << " misses (hit ratio " << es.hit_ratio() << "), "
            << es.cache_entries << " entries / "
            << static_cast<double>(es.cache_bytes) / 1024.0 << " KiB held, "
            << es.evictions << " evicted";
  if (es.passthrough > 0) {
    std::cout << ", " << es.passthrough << " pass-through";
  }
  std::cout << "\n  workspace pool: " << pool.leases << " leases, "
            << pool.created << " workspace(s) created, " << pool.reused
            << " reuses; pooled buffers: " << ws.allocations
            << " allocations, " << ws.reuses << " reuses\n";
  if (eopts.mem_budget_bytes > 0 || deadline_ms > 0 ||
      es.degraded_plans > 0 || es.degraded_runs > 0 || es.cancelled > 0) {
    std::cout << "  robustness:";
    if (eopts.mem_budget_bytes > 0)
      std::cout << " budget " << budget_mb << " MiB,";
    if (deadline_ms > 0) std::cout << " deadline " << deadline_ms << " ms,";
    std::cout << " " << es.degraded_plans << " plan(s) degraded, "
              << es.degraded_runs << " run(s) fell back (" << es.oom_fallbacks
              << " oom), " << es.cancelled << " cancelled\n";
    if (info.degraded) {
      std::cout << "  last execute degraded ('" << info.degrade_reason
                << "') -> ran " << info.algo << "\n";
    }
  }
  if (predicted > 0) {
    std::cout << "  model: predicted " << predicted
              << " MFLOPS, last execute achieved " << info.achieved_mflops
              << "\n";
  }
  if (mask != nullptr) {
    std::cout << "  mask: nnz " << mask->nnz()
              << (complement ? " (complemented)" : "");
    if (info.used_pb) {
      // The two fused mask sites are disjoint: a sparse mask skips tuple
      // generation in the expand scatter loops, a dense one drops after
      // the per-bin compress.
      std::cout << ", tuples skipped at expand "
                << info.pb_stats.mask_skipped_expand
                << ", tuples dropped at compress "
                << info.pb_stats.mask_dropped;
    }
    std::cout << "\n";
  }
  if (post_op.active()) {
    std::cout << "  post-op: " << post_op_to_string(post_op);
    if (info.used_pb) {
      std::cout << ", entries dropped in-kernel "
                << info.pb_stats.post_dropped;
    }
    std::cout << "\n";
  }
  if (info.used_pb) {
    print_pb_phases(info.pb_stats);
  } else {
    std::cout << "  note: the executor caches "
              << (algo == "auto" ? "the roofline selection"
                                 : "kernel resolution")
              << " for " << info.algo
              << "; each execute is a fresh multiply\n";
  }
  if (cli.get("out")) mtx::write_matrix_market(*cli.get("out"), mtx::csr_to_coo(c));
  return 0;
}

pb::FormatPolicy parse_format(const std::string& name) {
  if (name == "auto") return pb::FormatPolicy::kAuto;
  if (name == "wide") return pb::FormatPolicy::kWide;
  if (name == "narrow") return pb::FormatPolicy::kNarrow;
  if (name == "keyonly") return pb::FormatPolicy::kKeyOnly;
  if (name == "f32") return pb::FormatPolicy::kF32;
  throw std::invalid_argument("unknown --format '" + name +
                              "' (auto, wide, narrow, keyonly, f32)");
}

// Inside the library a format request is a preference (an illegal choice
// falls back silently); an explicit --format from the user is strict —
// requesting the 8 B key-only stream for a semiring that carries values
// is an error, not a silent downgrade to 12 or 16 B.
void check_format_legal(pb::FormatPolicy format, const std::string& semiring) {
  if (format == pb::FormatPolicy::kKeyOnly &&
      is_registered_semiring(semiring) && !semiring_value_free(semiring)) {
    throw std::invalid_argument(
        "--format keyonly requires a value-free semiring (bool_or_and, or a "
        "runtime semiring registered with value_free = true); '" +
        semiring + "' carries values — use wide, narrow or f32");
  }
}

pb::PbSchedule parse_schedule(const std::string& name) {
  if (name == "auto") return pb::PbSchedule::kAuto;
  if (name == "barrier") return pb::PbSchedule::kBarrier;
  if (name == "pipeline") return pb::PbSchedule::kPipeline;
  throw std::invalid_argument("unknown --schedule '" + name +
                              "' (auto, barrier, pipeline)");
}

int cmd_multiply(const Cli& cli) {
  const mtx::CsrMatrix a =
      mtx::coo_to_csr(mtx::read_matrix_market(cli.require("a")));
  const mtx::CsrMatrix b =
      cli.get("b") ? mtx::coo_to_csr(mtx::read_matrix_market(*cli.get("b"))) : a;
  const std::string algo = cli.get("algo").value_or("pb");
  const std::string semiring = cli.get("semiring").value_or("plus_times");
  const int reps = static_cast<int>(cli.number("reps", 1));
  const int repeat = static_cast<int>(cli.number("repeat", 0));
  const pb::FormatPolicy format =
      parse_format(cli.get("format").value_or("auto"));
  if (cli.get("format")) check_format_legal(format, semiring);
  const pb::PbSchedule schedule =
      parse_schedule(cli.get("schedule").value_or("auto"));
  const SpGemmProblem problem = SpGemmProblem::multiply(a, b);

  if (repeat > 0 && reps > 1) {
    throw std::invalid_argument(
        "--reps (best-of-N timing) and --repeat (plan amortization) are "
        "mutually exclusive; pass one");
  }
  // A mask always runs the descriptor plan path (the fused kernels live
  // behind it), as do auto-selection and --repeat amortization.
  std::optional<mtx::CsrMatrix> mask;
  if (cli.get("mask")) {
    mask = mtx::coo_to_csr(mtx::read_matrix_market(*cli.get("mask")));
  }
  const bool complement = cli.number("complement", 0) != 0;
  // --post-op runs the fused epilogue: strict about value-free semirings
  // (nothing to scale or prune) rather than silently ignoring the flag.
  PostOp post_op;
  if (cli.get("post-op")) {
    post_op = parse_post_op(*cli.get("post-op"));
    if (post_op.active() && semiring_value_free(semiring)) {
      throw std::invalid_argument(
          "--post-op on value-free semiring '" + semiring +
          "': every output value is the present-value 1.0; there is "
          "nothing to scale, prune or rank");
    }
  }
  // The robustness and cache knobs live in the executor, so they imply
  // the executor path even for a fixed algorithm.
  const bool robust =
      cli.get("mem-budget-mb").has_value() ||
      cli.get("deadline-ms").has_value() ||
      cli.get("cache-capacity").has_value() ||
      cli.get("cache-capacity-mb").has_value();
  if (algo == "auto" || repeat > 0 || mask.has_value() || robust ||
      post_op.active()) {
    const int execs = repeat > 0 ? repeat : reps;
    return multiply_planned(cli, problem, algo, semiring, format,
                            std::max(execs, 1),
                            /*amortization_report=*/repeat > 0,
                            mask ? &*mask : nullptr, complement, schedule,
                            post_op);
  }

  // Resolve through the (algorithm × semiring) registry first: unknown
  // names and unsupported pairs fail here with the full support matrix
  // instead of falling back to a different algorithm or semiring.
  const SpGemmFn fn = semiring_algorithm(algo, semiring);
  const std::string label = algo + " (" + semiring + ")";

  if (algo == "pb") {
    // The PB pipeline runs for every semiring; keep its per-phase
    // telemetry rather than going through the type-erased registry fn.
    pb::PbConfig cfg;
    cfg.format = format;
    cfg.schedule = schedule;
    pb::PbWorkspace ws;
    pb::PbResult best;
    for (int i = 0; i < reps; ++i) {
      pb::PbResult r = pb::pb_spgemm_named(semiring, problem.a_csc,
                                           problem.b_csr, cfg, ws);
      if (i == 0 || r.stats.total_seconds() < best.stats.total_seconds())
        best = std::move(r);
    }
    const pb::PbTelemetry& tm = best.stats;
    std::cout << label << ": nnz(C) = " << best.c.nnz() << ", flop = "
              << tm.flop << ", cf = " << tm.cf() << ", " << tm.mflops()
              << " MFLOPS\n";
    print_pb_phases(tm);
    if (cli.get("out"))
      mtx::write_matrix_market(*cli.get("out"), mtx::csr_to_coo(best.c));
    return 0;
  }

  const nnz_t flop = mtx::count_flops(a, b);
  double best_s = 0;
  mtx::CsrMatrix c;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    c = fn(problem);
    const double s = t.elapsed_s();
    if (i == 0 || s < best_s) best_s = s;
  }
  std::cout << label << ": nnz(C) = " << c.nnz() << ", flop = " << flop
            << ", " << static_cast<double>(flop) / best_s / 1e6
            << " MFLOPS\n";
  if (cli.get("out")) mtx::write_matrix_market(*cli.get("out"), mtx::csr_to_coo(c));
  return 0;
}

// Runtime semiring registration demo: register the tropical (max, +)
// semiring and run the multiplication over it through the descriptor plan
// path — the round trip a user-defined semiring takes.
int cmd_semiring(const Cli& cli) {
  const std::string name = cli.get("name").value_or("plus_max");
  SemiringRegistry& reg = SemiringRegistry::instance();
  if (!reg.contains(name)) {
    RuntimeSemiring rs;
    rs.name = name;
    rs.zero = -std::numeric_limits<value_t>::infinity();
    rs.add = [](value_t x, value_t y) { return std::max(x, y); };
    rs.mul = [](value_t x, value_t y) { return x + y; };
    reg.register_semiring(rs);
    std::cout << "registered runtime semiring '" << name
              << "' (tropical max-plus: zero = -inf, add = max, mul = +)\n";
  } else {
    std::cout << "semiring '" << name << "' already registered\n";
  }
  std::cout << "support matrix now:\n" << algorithm_semiring_matrix() << "\n";

  const mtx::CsrMatrix a =
      mtx::coo_to_csr(mtx::read_matrix_market(cli.require("a")));
  const SpGemmProblem problem = SpGemmProblem::multiply(a, a);
  const int repeat = static_cast<int>(cli.number("repeat", 1));
  return multiply_planned(cli, problem, cli.get("algo").value_or("auto"),
                          name, pb::FormatPolicy::kAuto,
                          std::max(repeat, 1),
                          /*amortization_report=*/repeat > 1);
}

// Closes the telemetry loop from the command line: runs an "auto" sweep
// over generated problems spanning the compression-factor range (sparse
// ER squarings sit at cf ≈ 1-2 and select pb; dense squarings compress
// heavily and select hash), records the predicted-vs-achieved MFLOPS pair
// of every fingerprint-verified execute, and refits the selection model's
// two derating constants from them (SelectionModel::calibrate).
int cmd_calibrate(const Cli& cli) {
  const int scale = static_cast<int>(cli.number("scale", 11));
  const int reps = std::max(1, static_cast<int>(cli.number("reps", 3)));

  SpGemmExecutor exec;
  SpGemmOp op;  // algo = "auto": every execute records a sample

  // The pb-family probe: an ER squaring at the paper's ef = 8 (cf ≈ 1-2).
  const mtx::CsrMatrix sparse = mtx::coo_to_csr(
      mtx::generate_er(mtx::RandomScale{scale, 8.0}, 7));
  // The column-family probe: a small dense-ish squaring (high cf).
  const index_t dn = 1 << std::max(4, scale - 4);
  const mtx::CsrMatrix dense =
      mtx::coo_to_csr(mtx::generate_er(dn, dn, 40.0, 8));

  for (const mtx::CsrMatrix* m : {&sparse, &dense}) {
    const SpGemmProblem p = SpGemmProblem::square(*m);
    RunInfo info;
    exec.prepare(p, op, &info);
    std::cout << "probe n = " << m->nrows << ", nnz = " << m->nnz()
              << ": auto -> " << info.algo << " (cf " << info.choice.cf
              << ")\n";
    for (int i = 0; i < reps + 1; ++i) (void)exec.run(p, op);  // +1 warmup
  }

  const std::vector<model::PerfSample> samples = exec.samples();
  std::cout << samples.size() << " predicted-vs-achieved samples recorded\n";
  const model::SelectionModel defaults;
  model::SelectionModel fitted;
  const model::CalibrationResult r = fitted.calibrate(samples);
  if (!r.changed) {
    std::cout << "no usable samples; model unchanged\n";
    return 1;
  }
  std::cout << "refit derating constants from " << r.pb_samples
            << " pb + " << r.column_samples << " column samples:\n"
            << "  pb_efficiency          " << defaults.pb_efficiency
            << " -> " << r.pb_efficiency << "\n"
            << "  column_latency_penalty " << defaults.column_latency_penalty
            << " -> " << r.column_latency_penalty << "\n"
            << "apply via SelectionModel{.pb_efficiency = " << r.pb_efficiency
            << ", .column_latency_penalty = " << r.column_latency_penalty
            << "} in SpGemmOp::model, or let a long-lived executor refit "
               "itself (ExecutorOptions::calibrate_after)\n";
  return 0;
}

int cmd_info(const Cli&) {
  std::cout << "algorithm x semiring support matrix (multiply --algo A "
               "--semiring S; generalized algorithms also accept any "
               "semiring registered at runtime):\n"
            << algorithm_semiring_matrix();
  const CacheInfo& c = cache_info();
  std::cout << "\ndetected cache hierarchy (sizes the PB bin layout):\n"
            << "  L1d  " << c.l1d_bytes / 1024 << " KiB\n"
            << "  L2   " << c.l2_bytes / 1024 << " KiB  (bins sized to L2/2)\n"
            << "  L3   " << c.l3_bytes / 1024 << " KiB\n"
            << "  line " << c.line_bytes << " B\n"
            << "\nOpenMP threads: " << max_threads() << "\n";
  return 0;
}

int cmd_stream(const Cli& cli) {
  const auto elements = static_cast<std::size_t>(cli.number("mb", 256)) *
                        1024 * 1024 / (3 * sizeof(double));
  const StreamResult r = run_stream(elements);
  std::cout << "copy " << r.copy_gbs << " GB/s, scale " << r.scale_gbs
            << ", add " << r.add_gbs << ", triad " << r.triad_gbs << "\n";
  return 0;
}

int cmd_roofline(const Cli& cli) {
  const double beta = cli.number("beta", 0.0) > 0
                          ? cli.number("beta", 0.0)
                          : run_stream(1 << 23, 3).best_gbs();
  const double cf = cli.number("cf", 1.0);
  const model::SpGemmBounds b = model::bounds(beta, cf);
  std::cout << "beta = " << beta << " GB/s, cf = " << cf << "\n"
            << "upper bound  : " << b.perf_upper * 1e3 << " MFLOPS (AI "
            << b.ai_upper << ")\n"
            << "column bound : " << b.perf_column * 1e3 << " MFLOPS (AI "
            << b.ai_column << ")\n"
            << "outer bound  : " << b.perf_outer * 1e3 << " MFLOPS (AI "
            << b.ai_outer << ")\n";
  return 0;
}

void usage() {
  std::cout <<
      "pbs_cli <command> [options]\n"
      "  gen      --kind er|rmat|banded --out FILE.mtx [--scale N --ef F --seed S]\n"
      "  stats    --a FILE.mtx\n"
      "  multiply --a FILE.mtx [--b FILE.mtx] [--algo NAME|auto] [--semiring NAME]\n"
      "           [--format auto|wide|narrow|keyonly|f32]\n"
      "           [--schedule auto|barrier|pipeline]\n"
      "           [--reps R] [--repeat N] [--out FILE.mtx]\n"
      "           [--mask FILE.mtx] [--complement]\n"
      "           [--post-op prune:T,topk:K,scale:X]\n"
      "           [--mem-budget-mb N] [--deadline-ms T]\n"
      "           [--cache-capacity N] [--cache-capacity-mb M]\n"
      "  semiring --a FILE.mtx [--name plus_max] [--algo auto] [--repeat N]\n"
      "  calibrate [--scale N] [--reps R]\n"
      "  info\n"
      "  stream   [--mb N]\n"
      "  roofline [--beta GBS] [--cf CF]\n"
      "\n"
      "multiply computes A ⊗ B with --algo over --semiring (defaults: pb,\n"
      "plus_times).  Every (algorithm, semiring) pair runs that actual\n"
      "algorithm — pb over min_plus executes the propagation-blocking\n"
      "pipeline, not a fallback; unsupported pairs are an error (run\n"
      "`pbs_cli info` for the support matrix).  --algo auto selects\n"
      "pb/hash/heap from the roofline model and reports why; --repeat N\n"
      "plans once and executes N times, reporting the amortized cost.\n"
      "--schedule picks PB's phase scheduling: barrier (three fork-join\n"
      "phases) or pipeline (per-bin task dataflow with work stealing);\n"
      "auto pipelines at >1 thread.  Pipelined runs report the numeric\n"
      "wall, the busy time the overlap hid, and bins stolen.\n"
      "--mask M restricts the output to M's pattern with the mask fused\n"
      "into the kernel (a sparse mask skips tuple generation at expand, a\n"
      "dense one drops at compress; both counts are reported);\n"
      "--complement keeps the positions NOT in M.  --post-op fuses an\n"
      "elementwise epilogue into the kernels — scale, then prune\n"
      "|v| < T, then top-k per row — so the unpruned product is never\n"
      "materialized; it is an error on value-free semirings.\n"
      "--mem-budget-mb N caps the executor's pooled workspace memory: a\n"
      "PB stream that cannot fit degrades to the row-wise fallback and\n"
      "the degradation is reported; --deadline-ms T bounds each execute\n"
      "(a run past the deadline unwinds with a deadline error).\n"
      "--cache-capacity N bounds the plan cache's entry count and\n"
      "--cache-capacity-mb M switches it to the byte-budgeted, cost-aware\n"
      "policy the serving daemon uses (M overrides N).  All four route\n"
      "through the executor path.  `semiring`\n"
      "registers the tropical (max, +) semiring at runtime and multiplies\n"
      "over it — the user-defined-semiring round trip.  `calibrate` runs\n"
      "an auto-selected sweep and refits the roofline model's derating\n"
      "constants from the recorded predicted-vs-achieved MFLOPS pairs.\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Cli cli(argc, argv);
  try {
    if (cmd == "help" || cmd == "--help" || cmd == "-h") {
      usage();
      return 0;
    }
    if (cmd == "gen") return cmd_gen(cli);
    if (cmd == "stats") return cmd_stats(cli);
    if (cmd == "multiply") return cmd_multiply(cli);
    if (cmd == "semiring") return cmd_semiring(cli);
    if (cmd == "calibrate") return cmd_calibrate(cli);
    if (cmd == "info") return cmd_info(cli);
    if (cmd == "stream") return cmd_stream(cli);
    if (cmd == "roofline") return cmd_roofline(cli);
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "pbs_cli: " << e.what() << "\n";
    return 1;
  }
}
