// pbs_serve — the SpGEMM serving daemon (serve/server.hpp) and its
// self-test driver.
//
//   pbs_serve serve --socket /tmp/pbs.sock [--workers 4]
//                   [--shard-rows 1] [--shard-cols 1] [--no-pin]
//                   [--max-inflight N] [--deadline-ms T]
//                   [--admission-budget-mb N] [--mem-budget-mb N]
//                   [--cache-capacity-mb M] [--max-frame-mb N]
//     Serves until SIGTERM/SIGINT, then drains in-flight requests and
//     exits 0, printing the final telemetry JSON.
//
//   pbs_serve smoke --socket /tmp/pbs.sock [--scale 13] [--ef 8]
//     Drives a running daemon through the client: ping, inline multiply
//     checked bit-identical against an in-process executor, upload +
//     multiply-by-handle, values-only refresh hitting the fast path,
//     deadline rejection as a typed kDeadline code, and unknown-handle
//     rejection.  Exits non-zero on the first violation — the CI serve
//     smoke job runs exactly this against a daemon it then SIGTERMs.
#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>

#include "matrix/convert.hpp"
#include "matrix/generate.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "spgemm/executor.hpp"

namespace {

using namespace pbs;

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      arg = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        kv_[arg] = argv[++i];
      } else {
        kv_[arg] = "1";  // value-less flag
      }
    }
  }
  [[nodiscard]] std::string get(const std::string& k,
                                const std::string& fallback) const {
    const auto it = kv_.find(k);
    return it == kv_.end() ? fallback : it->second;
  }
  [[nodiscard]] double num(const std::string& k, double fallback) const {
    const auto it = kv_.find(k);
    return it == kv_.end() ? fallback : std::stod(it->second);
  }
  [[nodiscard]] bool has(const std::string& k) const {
    return kv_.count(k) > 0;
  }

 private:
  std::map<std::string, std::string> kv_;
};

int cmd_serve(const Args& args) {
  serve::ServeOptions so;
  so.socket_path = args.get("socket", "/tmp/pbs_serve.sock");
  so.worker_threads = static_cast<int>(args.num("workers", 4));
  so.shard_rows = static_cast<int>(args.num("shard-rows", 1));
  so.shard_cols = static_cast<int>(args.num("shard-cols", 1));
  so.pin_shards = !args.has("no-pin");
  so.max_inflight = static_cast<int>(args.num("max-inflight", 0));
  so.default_deadline_ms = args.num("deadline-ms", 0);
  const double adm_mb = args.num("admission-budget-mb", 0);
  if (adm_mb > 0) {
    so.admission_budget_bytes =
        static_cast<std::size_t>(adm_mb * 1024.0 * 1024.0);
  }
  const double mem_mb = args.num("mem-budget-mb", 0);
  if (mem_mb > 0) {
    so.executor.mem_budget_bytes =
        static_cast<std::size_t>(mem_mb * 1024.0 * 1024.0);
  }
  const double cache_mb = args.num("cache-capacity-mb", 0);
  if (cache_mb > 0) {
    so.executor.cache_capacity_bytes =
        static_cast<std::size_t>(cache_mb * 1024.0 * 1024.0);
  }
  const double frame_mb = args.num("max-frame-mb", 0);
  if (frame_mb > 0) {
    so.max_frame_bytes =
        static_cast<std::size_t>(frame_mb * 1024.0 * 1024.0);
  }

  serve::Server server(std::move(so));
  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  server.start();
  std::cout << "pbs_serve: listening on " << server.socket_path() << " ("
            << args.num("workers", 4) << " workers, "
            << static_cast<int>(args.num("shard-rows", 1)) << "x"
            << static_cast<int>(args.num("shard-cols", 1)) << " shards)"
            << std::endl;
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "pbs_serve: draining..." << std::endl;
  server.stop();
  std::cout << server.telemetry_json() << std::endl;
  return 0;
}

#define SMOKE_CHECK(cond, what)                                   \
  do {                                                            \
    if (!(cond)) {                                                \
      std::cerr << "smoke FAILED: " << what << std::endl;         \
      return 1;                                                   \
    }                                                             \
  } while (0)

int cmd_smoke(const Args& args) {
  const std::string path = args.get("socket", "/tmp/pbs_serve.sock");
  const int scale = static_cast<int>(args.num("scale", 13));
  const double ef = args.num("ef", 8);

  serve::Client cli(path);
  cli.ping();

  const mtx::CsrMatrix a = mtx::coo_to_csr(
      mtx::generate_er(mtx::RandomScale{scale, ef}, /*seed=*/7));
  const SpGemmProblem p = SpGemmProblem::square(a);
  SpGemmOp op;
  op.algo = "pb";
  SpGemmExecutor local;
  const mtx::CsrMatrix expect = local.run(p, op);

  serve::Client::MultiplyOptions mo;
  mo.algo = "pb";

  // Inline multiply: bit-identical to the in-process executor.
  const mtx::CsrMatrix c1 = cli.multiply(a, a, mo);
  SMOKE_CHECK(mtx::equal_exact(c1, expect),
              "inline multiply differs from the local executor");

  // Handle reuse: upload once, square by handle twice — the second run
  // must hit the server-side plan cache.
  const std::uint64_t h = cli.upload(a);
  serve::Client::MultiplyInfo info;
  const mtx::CsrMatrix c2 = cli.square(h, mo, &info);
  SMOKE_CHECK(mtx::equal_exact(c2, expect), "square-by-handle differs");
  const mtx::CsrMatrix c3 = cli.square(h, mo, &info);
  SMOKE_CHECK(mtx::equal_exact(c3, expect), "cached square differs");
  SMOKE_CHECK(info.cache_hit, "second square-by-handle missed the cache");

  // Values-only refresh through the registry hits the fast path.
  mtx::CsrMatrix a2 = a;
  for (value_t& v : a2.vals) v *= 2.0;
  cli.update_values(h, a2);
  mo.values_only = true;
  const mtx::CsrMatrix c4 = cli.square(h, mo, &info);
  mo.values_only = false;
  SMOKE_CHECK(info.value_only, "values-only run did not take the fast path");
  SpGemmProblem p2 = SpGemmProblem::square(a2);
  SMOKE_CHECK(mtx::equal_exact(c4, local.run_values_updated(p2, op)),
              "values-only result differs");

  // Deadline rejection arrives as the typed kDeadline code.
  bool deadline_hit = false;
  try {
    mo.deadline_ms = 1;
    (void)cli.square(h, mo);
  } catch (const serve::ServeError& e) {
    deadline_hit = e.status() == serve::WireStatus::kDeadline;
  }
  mo.deadline_ms = 0;
  SMOKE_CHECK(deadline_hit, "1 ms deadline not rejected with kDeadline");

  // ... and the daemon still serves correctly afterwards.
  const mtx::CsrMatrix c5 = cli.square(h, mo);
  SMOKE_CHECK(mtx::equal_exact(c5, c4), "post-deadline square differs");

  bool unknown_hit = false;
  try {
    (void)cli.square(999999, mo);
  } catch (const serve::ServeError& e) {
    unknown_hit = e.status() == serve::WireStatus::kUnknownHandle;
  }
  SMOKE_CHECK(unknown_hit, "bogus handle not rejected with kUnknownHandle");

  cli.release(h);
  const std::string telemetry = cli.telemetry();
  SMOKE_CHECK(telemetry.find("\"value_only_hits\"") != std::string::npos,
              "telemetry JSON missing executor counters");

  std::cout << "smoke OK (" << telemetry.size() << " B telemetry)"
            << std::endl;
  return 0;
}

void usage() {
  std::cout
      << "pbs_serve <serve|smoke> [options]\n"
         "  serve  --socket PATH [--workers N] [--shard-rows R]\n"
         "         [--shard-cols C] [--no-pin] [--max-inflight N]\n"
         "         [--deadline-ms T] [--admission-budget-mb N]\n"
         "         [--mem-budget-mb N] [--cache-capacity-mb M]\n"
         "         [--max-frame-mb N]\n"
         "  smoke  --socket PATH [--scale N] [--ef F]\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args(argc, argv);
  try {
    if (cmd == "serve") return cmd_serve(args);
    if (cmd == "smoke") return cmd_smoke(args);
  } catch (const std::exception& e) {
    std::cerr << "pbs_serve: " << e.what() << std::endl;
    return 1;
  }
  usage();
  return 2;
}
