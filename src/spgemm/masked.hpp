// Masked SpGEMM: C = (A · B) .* M computed without materializing A·B.
//
// Triangle counting (paper [2]) and many GraphBLAS-style kernels only need
// the product at positions where a mask matrix M is nonzero.  Fusing the
// mask into the multiplication skips every accumulation outside M's
// pattern — for triangle counting that reduces the output from nnz(L²) to
// nnz(L) entries and removes the separate Hadamard pass.
#pragma once

#include "matrix/csr.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

/// C(i,j) = Σ_k A(i,k)·B(k,j) for (i,j) in the pattern of `mask`; all other
/// positions are structurally zero.  Entries of `mask` act purely as a
/// pattern — values are ignored.  Requires matching outer dimensions.
///
/// With `complement = true` the mask selects the positions NOT in its
/// pattern (GraphBLAS-style complemented mask) — e.g. "new wedges only",
/// or BFS frontier expansion excluding visited vertices.
mtx::CsrMatrix spgemm_masked(const mtx::CsrMatrix& a, const mtx::CsrMatrix& b,
                             const mtx::CsrMatrix& mask,
                             bool complement = false);

}  // namespace pbs
