// Masked SpGEMM: C = (A ⊗ B) .* M computed without materializing A ⊗ B.
//
// Triangle counting (paper [2]) and many GraphBLAS-style kernels only need
// the product at positions where a mask matrix M is nonzero.  Fusing the
// mask into the multiplication skips every accumulation outside M's
// pattern — for triangle counting that reduces the output from nnz(L²) to
// nnz(L) entries and removes the separate Hadamard pass.
//
// Every Gustavson family member has a fused masked form, each generalized
// over the semiring (the PB pipeline's fused mask lives in its compress
// stage — pb/plan.hpp's MaskSpec):
//
//   spgemm_masked_semiring<S> — dense-accumulator (SPA) row loop
//   heap_masked_semiring<S>   — k-way heap merge, masked at emission
//   hash_masked_semiring<S>   — two-phase hash, masked in both phases
//                               (declared here, defined in hash.cpp)
//
// The preferred way to run a masked multiplication is the operation
// descriptor (spgemm/op.hpp): set SpGemmOp::mask/complement and go through
// make_plan — selection then accounts for the mask's density and every
// algorithm (including PB) fuses it.  The free function spgemm_masked
// below survives as a thin shim over that path.
#pragma once

#include <vector>

#include "matrix/csr.hpp"
#include "spgemm/semiring_ops.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

namespace detail {

/// Throws std::invalid_argument unless mask is (a.nrows x b.ncols).
void check_mask_shape(const char* who, const SpGemmProblem& p,
                      const mtx::CsrMatrix& mask);

/// Per-thread mask stamps shared by the fused masked row loops (hash,
/// heap): allowed[c] == r marks column c allowed for the current row r,
/// so clearing between rows is free and a probe is O(1); `skip` applies
/// the polarity (complement flips the test).
struct MaskStamp {
  std::vector<index_t> allowed;

  void stamp_row(const mtx::CsrMatrix& mask, index_t r) {
    if (allowed.empty()) {
      allowed.assign(static_cast<std::size_t>(mask.ncols), -1);
    }
    for (const index_t c : mask.row_cols(r)) allowed[c] = r;
  }

  /// True when column c should be skipped for row r under the polarity.
  [[nodiscard]] bool skip(index_t r, index_t c, bool complement) const {
    return (allowed[c] == r) == complement;
  }
};

}  // namespace detail

/// C(i,j) = ⊕_k A(i,k) ⊗ B(k,j) for (i,j) in the pattern of `mask`; all
/// other positions are structurally zero.  Entries of `mask` act purely as
/// a pattern — values are ignored.  With `complement = true` the mask
/// selects the positions NOT in its pattern (GraphBLAS-style complemented
/// mask).  Dense-accumulator row loop; O(flop) probes but only
/// O(nnz(mask(r,:))) accumulator slots per row.
template <typename S>
mtx::CsrMatrix spgemm_masked_semiring(const mtx::CsrMatrix& a,
                                      const mtx::CsrMatrix& b,
                                      const mtx::CsrMatrix& mask,
                                      bool complement = false);

// Instantiated in masked.cpp (built-in four + the runtime bridge).
extern template mtx::CsrMatrix spgemm_masked_semiring<PlusTimes>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&, const mtx::CsrMatrix&, bool);
extern template mtx::CsrMatrix spgemm_masked_semiring<MinPlus>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&, const mtx::CsrMatrix&, bool);
extern template mtx::CsrMatrix spgemm_masked_semiring<MaxMin>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&, const mtx::CsrMatrix&, bool);
extern template mtx::CsrMatrix spgemm_masked_semiring<BoolOrAnd>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&, const mtx::CsrMatrix&, bool);

/// Masked k-way heap merge (heap_spgemm_semiring with the mask applied as
/// merged columns surface).  Defined in heap.cpp.
template <typename S>
mtx::CsrMatrix heap_masked_semiring(const SpGemmProblem& p,
                                    const mtx::CsrMatrix& mask,
                                    bool complement = false);

extern template mtx::CsrMatrix heap_masked_semiring<PlusTimes>(
    const SpGemmProblem&, const mtx::CsrMatrix&, bool);
extern template mtx::CsrMatrix heap_masked_semiring<MinPlus>(
    const SpGemmProblem&, const mtx::CsrMatrix&, bool);
extern template mtx::CsrMatrix heap_masked_semiring<MaxMin>(
    const SpGemmProblem&, const mtx::CsrMatrix&, bool);
extern template mtx::CsrMatrix heap_masked_semiring<BoolOrAnd>(
    const SpGemmProblem&, const mtx::CsrMatrix&, bool);

/// Masked two-phase hash accumulation.  Defined in hash.cpp.
template <typename S>
mtx::CsrMatrix hash_masked_semiring(const SpGemmProblem& p,
                                    const mtx::CsrMatrix& mask,
                                    bool complement = false);

extern template mtx::CsrMatrix hash_masked_semiring<PlusTimes>(
    const SpGemmProblem&, const mtx::CsrMatrix&, bool);
extern template mtx::CsrMatrix hash_masked_semiring<MinPlus>(
    const SpGemmProblem&, const mtx::CsrMatrix&, bool);
extern template mtx::CsrMatrix hash_masked_semiring<MaxMin>(
    const SpGemmProblem&, const mtx::CsrMatrix&, bool);
extern template mtx::CsrMatrix hash_masked_semiring<BoolOrAnd>(
    const SpGemmProblem&, const mtx::CsrMatrix&, bool);

/// Numeric (+, ×) masked SpGEMM — a thin shim over the descriptor path:
/// equivalent to make_plan with SpGemmOp{mask, complement} on the SPA
/// kernel.  Requires matching outer dimensions.
mtx::CsrMatrix spgemm_masked(const mtx::CsrMatrix& a, const mtx::CsrMatrix& b,
                             const mtx::CsrMatrix& mask,
                             bool complement = false);

}  // namespace pbs
