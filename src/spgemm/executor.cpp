#include "spgemm/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <list>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/cancel.hpp"
#include "common/errors.hpp"
#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "common/timer.hpp"
#include "pb/symbolic.hpp"
#include "spgemm/epilogue.hpp"
#include "spgemm/registry.hpp"

namespace pbs {

namespace {

// Everything of an op that changes what planning produces: the algorithm
// and semiring, the mask binding (by address — the pattern behind it may
// change freely, the fused kernels re-read it per call), and the pb/model
// tunables that steer symbolic layout and "auto" selection.  accumulate
// is execution-time behavior and deliberately excluded: an accumulating
// op shares its cached plan with the plain product.  post_op IS keyed —
// the cached entry's op copy carries it into every execution, so two ops
// differing only in their post-op must not share an entry.
std::string op_cache_key(const SpGemmOp& op) {
  std::ostringstream key;
  key << op.algo << '|' << op.semiring << '|'
      << static_cast<const void*>(op.mask) << '|' << op.complement << '|'
      << static_cast<int>(op.pb.policy) << '|'
      << static_cast<int>(op.pb.format) << '|' << op.pb.value_free << '|'
      << static_cast<int>(op.pb.schedule) << '|' << op.pb.nbins << '|'
      << op.pb.local_bin_bytes << '|' << op.pb.l2_bytes << '|'
      << op.pb.streaming_stores << '|'
      << static_cast<int>(op.pb.expand_mask) << '|'
      << op.pb.expand_mask_max_density << '|' << op.post_op.scale << '|'
      << op.post_op.prune_threshold << '|' << op.post_op.top_k << '|'
      << op.model.pb_efficiency << '|'
      << op.model.column_latency_penalty << '|'
      << op.model.small_flop_threshold << '|' << op.model.pb_tuple_bytes
      << '|' << op.model.bytes_per_nnz;
  return key.str();
}

void check_mask_shape(const SpGemmOp& op, const SpGemmProblem& p) {
  if (op.mask != nullptr && (op.mask->nrows != p.a_csr.nrows ||
                             op.mask->ncols != p.b_csr.ncols)) {
    throw std::invalid_argument(
        "SpGemmExecutor: mask shape does not match the product");
  }
}

/// Descriptor-level legality of op.post_op, enforced at every entry point
/// (plan time, never execute time).  `accumulating` covers both the
/// op.accumulate flag and the accumulating run overload's target.
void check_post_op(const SpGemmOp& op, bool accumulating) {
  if (!op.post_op.active()) return;
  if (accumulating) {
    throw std::invalid_argument(
        "SpGemmExecutor: post_op and accumulate are mutually exclusive "
        "(prune/top-k over a merged C is ambiguous — run the product with "
        "the post-op, then accumulate explicitly)");
  }
  if (op.pb.value_free || semiring_value_free(op.semiring)) {
    throw std::invalid_argument(
        "SpGemmExecutor: post_op on value-free semiring '" + op.semiring +
        "': every output value is the present-value 1.0, so there is "
        "nothing to scale, prune or rank");
  }
}

bool is_passthrough(const SpGemmOp& op) {
  return op.algo != "auto" && op.algo != "pb";
}

/// Serializes executions over runtime-registered semirings.  The
/// DynSemiring bridge routes scalar ops through ONE process-global
/// active-semiring pointer (spgemm/op.hpp), so the mutex must be
/// process-global too — a per-executor mutex would let two executors
/// (e.g. two SpGemmPlans, each owning a private executor) interleave
/// their activations and silently compute with the wrong semiring.
std::mutex& dyn_semiring_mutex() {
  static std::mutex mu;
  return mu;
}

/// The low-memory row-wise kernel a degraded op executes with: hash when
/// it speaks the op's semiring, heap otherwise (heap supports every
/// registered semiring).
std::string fallback_algo(const std::string& semiring) {
  const AlgoInfo* hash = find_algorithm("hash");
  return hash != nullptr && hash->supports_semiring(semiring) ? "hash"
                                                              : "heap";
}

}  // namespace

/// One cached plan: the full analysis product for (structure, op),
/// immutable after construction so in-flight executions can keep using it
/// through their shared_ptr after an eviction.
struct CachedPlanEntry {
  pb::StructureFingerprint fp;
  std::string key;
  SpGemmOp op;  ///< copy; the mask pointer stays non-owning
  std::string resolved;
  bool auto_requested = false;
  bool use_pb = false;
  model::AlgoChoice choice;
  double predicted_mflops = 0;
  double plan_seconds = 0;
  /// Derating constants the "auto" selection ran with (op tunables or
  /// calibrated overrides) — recorded into every PerfSample so a later
  /// calibrate() inverts each prediction through the right constants.
  double sel_pb_efficiency = 0;
  double sel_column_latency_penalty = 0;
  pb::PbPlan pb_plan;  ///< valid when use_pb
  SpGemmFn fn;         ///< execution path when !use_pb
  bool degraded = false;       ///< plan-time budget downgrade
  std::string degrade_reason;  ///< "budget" when degraded
  std::size_t bytes = 0;  ///< estimated footprint (set at insert time)
};

namespace {

/// Estimated resident cost of one cache entry: the struct itself, its
/// strings, and the PB symbolic arrays (per-bin offsets/fills/homes and
/// the adaptive layout's bounds).  The tuple streams are NOT here — they
/// live in the workspace pool, shared by every entry.
std::size_t entry_bytes(const CachedPlanEntry& e) {
  std::size_t b = sizeof(CachedPlanEntry);
  b += e.key.capacity() + e.resolved.capacity() + e.op.algo.capacity() +
       e.op.semiring.capacity() + e.degrade_reason.capacity();
  const pb::SymbolicResult& sym = e.pb_plan.sym;
  b += sym.bin_offsets.capacity() * sizeof(nnz_t);
  b += sym.bin_fill.capacity() * sizeof(nnz_t);
  b += sym.bin_home.capacity() * sizeof(int);
  b += sym.layout.bounds.capacity() * sizeof(index_t);
  return b;
}

}  // namespace

struct SpGemmExecutor::Impl {
  explicit Impl(ExecutorOptions o) : opts(o) {
    opts.cache_capacity = std::max<std::size_t>(opts.cache_capacity, 1);
    opts.max_samples = std::max<std::size_t>(opts.max_samples, 1);
    pool.set_budget_bytes(opts.mem_budget_bytes);
  }

  using EntryPtr = std::shared_ptr<const CachedPlanEntry>;

  ExecutorOptions opts;
  mutable std::mutex mu;  ///< cache + stats + samples + calibration state
  std::list<EntryPtr> lru;  ///< front = most recently used
  std::map<std::string, SpGemmFn> passthrough_fns;  ///< fixed non-pb ops
  ExecutorStats stats;
  std::vector<model::PerfSample> samples;
  bool calibrated = false;
  double cal_pb_efficiency = 0;
  double cal_column_latency_penalty = 0;
  pb::WorkspacePool pool;

  /// Cancellation epoch: every run links the epoch current at its start;
  /// cancel() fires it and swaps in a fresh one, so only in-flight runs
  /// unwind.  shared_ptr keeps a fired epoch alive until its last run
  /// finishes polling it.
  std::shared_ptr<CancelToken> epoch = std::make_shared<CancelToken>();

  /// Builds a run's stack token from the caller's RunOptions + the
  /// current epoch.  `token` must outlive the run (caller's stack).
  void arm_token(CancelToken& token, const RunOptions& ropts,
                 std::shared_ptr<CancelToken>& epoch_snapshot) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      epoch_snapshot = epoch;
    }
    token.link(epoch_snapshot.get());
    token.link(ropts.cancel);
    if (ropts.timeout.count() > 0) {
      token.set_timeout(ropts.timeout);
    } else if (ropts.deadline.time_since_epoch().count() != 0) {
      token.set_deadline(ropts.deadline);
    }
  }

  /// Strict-ingress validation (ExecutorOptions::validate_inputs).
  void validate_problem(const SpGemmProblem& p, const SpGemmOp& op) const {
    mtx::csr_validate_or_throw(p.a_csr, "SpGemmExecutor: operand A");
    mtx::csr_validate_or_throw(p.b_csr, "SpGemmExecutor: operand B");
    if (op.mask != nullptr) {
      mtx::csr_validate_or_throw(*op.mask, "SpGemmExecutor: mask");
    }
  }

  void count_cancelled() {
    const std::lock_guard<std::mutex> lock(mu);
    ++stats.cancelled;
  }

  // ---- cache primitives (callers hold no lock) ----------------------------

  EntryPtr find(const pb::StructureFingerprint& fp, const std::string& key) {
    const std::lock_guard<std::mutex> lock(mu);
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if ((*it)->key == key && (*it)->fp == fp) {
        lru.splice(lru.begin(), lru, it);
        return lru.front();
      }
    }
    return nullptr;
  }

  /// Value-only match: same op, same dims and nnz — the flop field (the
  /// one that needs an O(ncols) pass to recompute) is vouched for by the
  /// caller.
  EntryPtr find_values_only(const SpGemmProblem& p, const std::string& key) {
    const std::lock_guard<std::mutex> lock(mu);
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      const pb::StructureFingerprint& fp = (*it)->fp;
      if ((*it)->key == key && fp.a_rows == p.a_csc.nrows &&
          fp.a_cols == p.a_csc.ncols && fp.b_rows == p.b_csr.nrows &&
          fp.b_cols == p.b_csr.ncols && fp.a_nnz == p.a_csc.nnz() &&
          fp.b_nnz == p.b_csr.nnz()) {
        lru.splice(lru.begin(), lru, it);
        return lru.front();
      }
    }
    return nullptr;
  }

  void insert(EntryPtr entry) {
    const std::lock_guard<std::mutex> lock(mu);
    // A racing thread may have analyzed the same (structure, op); replace
    // rather than hold duplicates.
    for (auto it = lru.begin(); it != lru.end(); ++it) {
      if ((*it)->key == entry->key && (*it)->fp == entry->fp) {
        drop(it);
        break;
      }
    }
    stats.cache_bytes += entry->bytes;
    ++stats.cache_entries;
    lru.push_front(std::move(entry));
    if (opts.cache_capacity_bytes > 0) {
      // Byte-budget mode: the entry count is unbounded; evict by cost.
      // Among the coldest few entries (LRU tail) the one whose plan is
      // cheapest to rebuild per byte it occupies goes first — an old but
      // expensive analysis of a huge structure outlives an equally old
      // cheap one.  The newest entry is always retained, so a single
      // over-budget plan still caches (the budget is a target, not a
      // hard cap).
      while (stats.cache_bytes > opts.cache_capacity_bytes &&
             lru.size() > 1) {
        const std::size_t window = std::min<std::size_t>(8, lru.size() - 1);
        auto victim = std::prev(lru.end());
        double victim_score = score(**victim);
        auto it = std::prev(lru.end());
        for (std::size_t i = 1; i < window; ++i) {
          --it;
          const double s = score(**it);
          if (s < victim_score) {
            victim = it;
            victim_score = s;
          }
        }
        evict(victim);
      }
    } else {
      while (lru.size() > opts.cache_capacity) {
        evict(std::prev(lru.end()));
      }
    }
  }

  /// Rebuild-cost density: seconds of analysis bought back per byte held.
  static double score(const CachedPlanEntry& e) {
    return e.plan_seconds / static_cast<double>(std::max<std::size_t>(e.bytes, 1));
  }

  /// Removes an entry, keeping the byte/entry accounting consistent.
  /// In-flight holders keep their shared_ptr; only the cache's claim on
  /// the footprint is released here.
  void drop(std::list<EntryPtr>::iterator it) {
    stats.cache_bytes -= (*it)->bytes;
    --stats.cache_entries;
    lru.erase(it);
  }

  void evict(std::list<EntryPtr>::iterator it) {
    stats.bytes_evicted += (*it)->bytes;
    ++stats.evictions;
    drop(it);
  }

  /// The selection model an analysis of `op` runs under: the op's
  /// tunables, with the derating constants replaced by calibrated values
  /// once a refit has run.
  model::SelectionModel effective_model(const SpGemmOp& op) {
    model::SelectionModel m = op.model;
    const std::lock_guard<std::mutex> lock(mu);
    if (calibrated) {
      m.pb_efficiency = cal_pb_efficiency;
      m.column_latency_penalty = cal_column_latency_penalty;
    }
    return m;
  }

  model::CalibrationResult calibrate_now() {
    std::vector<model::PerfSample> local;
    model::SelectionModel base;
    {
      const std::lock_guard<std::mutex> lock(mu);
      local = samples;
      if (calibrated) {
        base.pb_efficiency = cal_pb_efficiency;
        base.column_latency_penalty = cal_column_latency_penalty;
      }
    }
    const model::CalibrationResult r = base.calibrate(local);
    const std::lock_guard<std::mutex> lock(mu);
    if (r.changed) {
      calibrated = true;
      cal_pb_efficiency = base.pb_efficiency;
      cal_column_latency_penalty = base.column_latency_penalty;
      samples.clear();  // the next window measures the refitted model
      ++stats.calibrations;
    }
    return r;
  }

  // ---- analysis ------------------------------------------------------------

  /// Full analysis for one (structure, op): "auto" selection (mask-aware,
  /// with the structural-only masked nnz estimate), kernel resolution,
  /// and the PB symbolic build when the choice lands on pb.  Shared
  /// analysis products from a batch caller arrive via `shared_row_flops`
  /// / `shared_nnz_est` (< 0 = unknown) so each O(nnz)/O(ncols) pass runs
  /// at most once per batch.
  EntryPtr analyze(const SpGemmProblem& p, const SpGemmOp& op,
                   const std::string& key,
                   const pb::StructureFingerprint& fp,
                   std::span<const nnz_t> shared_row_flops,
                   nnz_t shared_nnz_est) {
    Timer timer;
    check_mask_shape(op, p);

    // Planning must see the op's value-freeness (it legalizes the 8 B
    // key-only stream): derive it from the semiring registration when the
    // caller did not assert it.  Derived state stays out of the cache key —
    // it is a pure function of op.semiring, which is already keyed.
    pb::PbConfig pbcfg = op.pb;
    if (!pbcfg.value_free) pbcfg.value_free = semiring_value_free(op.semiring);

    auto entry = std::make_shared<CachedPlanEntry>();
    entry->fp = fp;
    entry->key = key;
    entry->op = op;
    entry->auto_requested = op.algo == "auto";

    std::string resolved = op.algo;
    std::vector<nnz_t> row_flops_storage;
    std::span<const nnz_t> row_flops = shared_row_flops;
    if (entry->auto_requested) {
      if (row_flops.empty()) {
        row_flops_storage = pb::pb_row_flops(p.a_csc, p.b_csr);
        row_flops = row_flops_storage;
      }
      const nnz_t nnz_est =
          shared_nnz_est >= 0
              ? shared_nnz_est
              : pb::pb_estimate_nnz_c(row_flops, p.b_csr.ncols);
      const double cf = static_cast<double>(fp.flop) /
                        static_cast<double>(std::max<nnz_t>(nnz_est, 1));
      const AlgoInfo* hash = find_algorithm("hash");
      const bool hash_available =
          hash != nullptr && hash->supports_semiring(op.semiring);
      model::SelectionModel m = effective_model(op);
      m.pb_tuple_bytes = static_cast<double>(pb::bytes_per_tuple(
          pb::predict_tuple_format(p.a_csc.nrows, p.b_csr.ncols, fp.flop,
                                   pbcfg)));
      // Schedule term: pb's derating reflects the schedule this op will
      // actually execute under (kAuto resolved for the current team size).
      m.pipelined_schedule =
          pb::resolve_schedule(op.pb.schedule, max_threads()) ==
          pb::PbSchedule::kPipeline;
      // Record the *effective* derating (schedule term applied): a later
      // calibrate() inverts predictions through this constant.
      entry->sel_pb_efficiency = m.effective_pb_efficiency();
      entry->sel_column_latency_penalty = m.column_latency_penalty;
      // Keep the model's expand-mask gate in lockstep with the config the
      // pb path will actually run under: credit a skip that will happen,
      // never one that kOff has disabled.
      m.expand_mask_density_max =
          pbcfg.expand_mask == pb::ExpandMaskMode::kOff
              ? 0.0
              : pbcfg.expand_mask_max_density;
      model::MaskModel mm;
      if (op.mask != nullptr) {
        mm.present = true;
        mm.complement = op.complement;
        mm.mask_nnz = op.mask->nnz();
        const double cells = static_cast<double>(p.a_csr.nrows) *
                             static_cast<double>(p.b_csr.ncols);
        if (cells > 0) {
          const double density =
              static_cast<double>(op.mask->nnz()) / cells;
          mm.kept_density = op.complement ? 1.0 - density : density;
        }
        if (!op.complement) {
          // Structural-only masked estimate: per-row caps make the
          // output bound strictly sharper than the global nnz(mask) min.
          mm.mask_nnz =
              std::min(mm.mask_nnz,
                       pb::pb_estimate_nnz_c_masked(row_flops, *op.mask));
          if (fp.flop > 0) {
            nnz_t covered = 0;
            for (index_t r = 0; r < p.a_csr.nrows; ++r) {
              if (op.mask->row_nnz(r) > 0) covered += row_flops[r];
            }
            mm.coverage = static_cast<double>(covered) /
                          static_cast<double>(fp.flop);
          }
        }
      }
      entry->choice =
          model::select_algorithm(cf, fp.flop, hash_available, m, mm);
      resolved = entry->choice.algo;
      entry->predicted_mflops = resolved == "pb"
                                    ? entry->choice.pb_mflops
                                    : entry->choice.column_mflops;
    }

    // Resolve through the registry even for pb: unknown names and
    // unsupported (algo, semiring) pairs fail here, at plan time.
    entry->fn = masked_semiring_algorithm(resolved, op.semiring, op.mask,
                                          op.complement);
    entry->resolved = std::move(resolved);
    entry->use_pb = entry->resolved == "pb";
    if (entry->use_pb) {
      const auto cap = static_cast<double>(opts.mem_budget_bytes);
      bool over_budget = false;
      // Cheap bound before paying the symbolic build: no stream format is
      // narrower than 8 B/tuple, so flop tuples that cannot fit even at
      // that width cannot fit at all.
      if (cap > 0 && static_cast<double>(fp.flop) * 8.0 > cap) {
        over_budget = true;
      } else {
        pb::SymbolicHints hints;
        hints.flop = fp.flop;
        hints.row_flops = row_flops;
        entry->pb_plan = pb::pb_plan_build(p.a_csc, p.b_csr, pbcfg, hints);
        if (cap > 0) {
          // Exact requirement of the built plan: the full tuple stream
          // plus one max-bin sort scratch per thread, at the chosen
          // format's width.
          const pb::SymbolicResult& sym = entry->pb_plan.sym;
          const auto bpt = static_cast<double>(
              pb::bytes_per_tuple(sym.format));
          nnz_t max_bin = 0;
          for (const nnz_t f : sym.bin_fill) max_bin = std::max(max_bin, f);
          const double need =
              bpt * (static_cast<double>(sym.bin_offsets.back()) +
                     static_cast<double>(max_threads()) *
                         static_cast<double>(max_bin));
          over_budget = need > cap;
        }
      }
      if (over_budget) {
        // Graceful degradation: this (structure, op) serves through the
        // low-memory row-wise kernel instead of failing.  The downgrade
        // is a property of the cached plan — re-raising the budget means
        // a new executor (or larger cache pressure evicting the entry).
        const std::string fb = fallback_algo(op.semiring);
        entry->fn = masked_semiring_algorithm(fb, op.semiring, op.mask,
                                              op.complement);
        entry->resolved = fb;
        entry->use_pb = false;
        entry->degraded = true;
        entry->degrade_reason = "budget";
        entry->pb_plan = pb::PbPlan{};
        const std::lock_guard<std::mutex> lock(mu);
        ++stats.degraded_plans;
      }
    }
    entry->plan_seconds = timer.elapsed_s();
    entry->bytes = entry_bytes(*entry);
    return entry;
  }

  // ---- execution -----------------------------------------------------------

  mtx::CsrMatrix execute_entry(const EntryPtr& entry, const SpGemmProblem& p,
                               RunInfo* info,
                               const CancelToken* cancel = nullptr,
                               const mtx::CsrMatrix* accumulate = nullptr) {
    Timer timer;
    mtx::CsrMatrix c;
    pb::PbTelemetry pb_stats;
    bool oom_fallback = false;
    {
      // Runtime-registered semirings indirect through the process-global
      // DynSemiring bridge; serialize those executions.  Built-ins (and
      // every kernel compiled against them) run fully concurrent.
      std::unique_lock<std::mutex> dyn_lock;
      if (!is_semiring_name(entry->op.semiring)) {
        dyn_lock = std::unique_lock<std::mutex>(dyn_semiring_mutex());
      }
      if (entry->use_pb) {
        try {
          const pb::WorkspacePool::Lease lease = pool.acquire();
          const pb::MaskSpec mask{entry->op.mask, entry->op.complement};
          // The epilogue rides INTO the kernels: an accumulation target
          // merges during CSR conversion (pb/output_accum.hpp) and the
          // post-op applies in the per-bin filter stage — neither the
          // plain product nor the unpruned C is ever materialized.
          const pb::PbEpilogue epi{accumulate, entry->op.post_op};
          pb::PbResult r = pb::pb_execute_named(
              entry->op.semiring, p.a_csc, p.b_csr, entry->pb_plan,
              lease.workspace(), /*check_fingerprint=*/false, mask, cancel,
              epi);
          pb_stats = r.stats;
          c = std::move(r.c);
        } catch (const std::bad_alloc&) {
          // Budget rejection, injected allocation fault, or the real
          // thing.  The lease already returned (RAII above); degrade THIS
          // run to the row-wise fallback and keep the cached pb plan — a
          // later, perhaps less contended, run retries pb and stays
          // bit-identical to a fresh executor's.
          throw_if_stopped(cancel);
          {
            const std::lock_guard<std::mutex> lock(mu);
            ++stats.oom_fallbacks;
            ++stats.degraded_runs;
          }
          const SpGemmFn fn = masked_semiring_algorithm(
              fallback_algo(entry->op.semiring), entry->op.semiring,
              entry->op.mask, entry->op.complement);
          c = fn(p);
          oom_fallback = true;
        }
      } else {
        throw_if_stopped(cancel);
        c = entry->fn(p);
      }
      // Unfused epilogue: row-wise kernels and the oom fallback produced
      // the plain product — shape/merge it here so every path returns the
      // same matrix the fused pb kernels build directly.  Inside the dyn
      // scope: semiring_ewise_add over a runtime semiring rides the same
      // process-global bridge.
      if (!entry->use_pb || oom_fallback) {
        throw_if_stopped(cancel);
        if (entry->op.post_op.active()) apply_post_op(c, entry->op.post_op);
        if (accumulate != nullptr) {
          c = semiring_ewise_add(entry->op.semiring, *accumulate, c);
        }
      }
    }
    // Row-wise kernels have no internal poll points: honor a deadline
    // that expired while one ran (pb enforces its own inside the phases).
    if (!entry->use_pb || oom_fallback) throw_if_stopped(cancel);
    const double seconds = timer.elapsed_s();
    const double achieved =
        seconds > 0
            ? static_cast<double>(entry->fp.flop) / seconds / 1e6
            : 0.0;

    // Close the telemetry loop: unmasked "auto" executes feed the
    // calibration sample window (a mask changes both roofline bounds, so
    // masked pairs would fold the mask term into the derating constants).
    if (entry->auto_requested && entry->op.mask == nullptr && !oom_fallback &&
        entry->predicted_mflops > 0 && achieved > 0) {
      bool want_calibration = false;
      {
        const std::lock_guard<std::mutex> lock(mu);
        samples.push_back({entry->resolved, entry->choice.cf,
                           entry->predicted_mflops, achieved,
                           entry->sel_pb_efficiency,
                           entry->sel_column_latency_penalty});
        if (samples.size() > opts.max_samples) {
          samples.erase(samples.begin());
        }
        want_calibration = opts.calibrate_after > 0 && !calibrated &&
                           samples.size() >= opts.calibrate_after;
      }
      if (want_calibration) (void)calibrate_now();
    }

    if (info != nullptr) {
      fill_info(*info, *entry);
      info->achieved_mflops = achieved;
      if (entry->use_pb && !oom_fallback) info->pb_stats = pb_stats;
      if (oom_fallback) {
        info->algo = fallback_algo(entry->op.semiring);
        info->used_pb = false;
        info->degraded = true;
        info->degrade_reason = "oom";
      }
    }
    return c;
  }

  static void fill_info(RunInfo& info, const CachedPlanEntry& entry) {
    info.algo = entry.resolved;
    info.used_pb = entry.use_pb;
    info.degraded = entry.degraded;
    info.degrade_reason = entry.degrade_reason;
    info.flop = entry.fp.flop;
    info.plan_seconds = entry.plan_seconds;
    info.predicted_mflops = entry.predicted_mflops;
    info.choice = entry.choice;
  }

  SpGemmFn passthrough_fn(const SpGemmOp& op, const std::string& key) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      const auto it = passthrough_fns.find(key);
      if (it != passthrough_fns.end()) return it->second;
    }
    SpGemmFn fn = masked_semiring_algorithm(op.algo, op.semiring, op.mask,
                                            op.complement);
    const std::lock_guard<std::mutex> lock(mu);
    return passthrough_fns.emplace(key, std::move(fn)).first->second;
  }

  mtx::CsrMatrix run_passthrough(const SpGemmProblem& p, const SpGemmOp& op,
                                 RunInfo* info,
                                 const CancelToken* cancel = nullptr,
                                 const mtx::CsrMatrix* accumulate = nullptr) {
    check_mask_shape(op, p);
    const SpGemmFn fn = passthrough_fn(op, op_cache_key(op));
    throw_if_stopped(cancel);
    mtx::CsrMatrix c;
    {
      std::unique_lock<std::mutex> dyn_lock;
      if (!is_semiring_name(op.semiring)) {
        dyn_lock = std::unique_lock<std::mutex>(dyn_semiring_mutex());
      }
      c = fn(p);
      // Fixed baseline kernels never fuse: post-pass epilogue, same
      // result as the fused paths.
      if (op.post_op.active()) apply_post_op(c, op.post_op);
      if (accumulate != nullptr) {
        c = semiring_ewise_add(op.semiring, *accumulate, c);
      }
    }
    throw_if_stopped(cancel);
    {
      const std::lock_guard<std::mutex> lock(mu);
      ++stats.executes;
      ++stats.passthrough;
    }
    if (info != nullptr) {
      *info = RunInfo{};
      info->algo = op.algo;
      info->passthrough = true;
    }
    return c;
  }
};

SpGemmExecutor::SpGemmExecutor(ExecutorOptions opts)
    : impl_(std::make_unique<Impl>(opts)) {}

SpGemmExecutor::~SpGemmExecutor() = default;

mtx::CsrMatrix SpGemmExecutor::run_product(const SpGemmProblem& p,
                                           const SpGemmOp& op, RunInfo* info,
                                           bool values_only,
                                           const RunOptions& ropts,
                                           const mtx::CsrMatrix* accumulate) {
  Impl& im = *impl_;
  if (info != nullptr) *info = RunInfo{};  // no stale fields across reuses
  check_post_op(op, op.accumulate || accumulate != nullptr);
  if (im.opts.validate_inputs) im.validate_problem(p, op);

  // This run's token: RunOptions deadline/cancel + the executor's
  // cancel() epoch, all polled through one stack token.
  CancelToken token;
  std::shared_ptr<CancelToken> epoch_snapshot;
  im.arm_token(token, ropts, epoch_snapshot);

  try {
    if (is_passthrough(op)) {
      // A fixed baseline algorithm caches nothing beyond kernel
      // resolution: there is no analysis to reuse and no fingerprint to
      // verify.
      return im.run_passthrough(p, op, info, &token, accumulate);
    }

    const std::string key = op_cache_key(op);
    if (values_only) {
      if (Impl::EntryPtr entry = im.find_values_only(p, key)) {
        {
          const std::lock_guard<std::mutex> lock(im.mu);
          ++im.stats.executes;
          ++im.stats.cache_hits;
          ++im.stats.value_only_hits;
        }
        mtx::CsrMatrix c = im.execute_entry(entry, p, info, &token, accumulate);
        if (info != nullptr) {
          info->cache_hit = true;
          info->value_only = true;
        }
        return c;
      }
      // No structure on file for this op: fall through to the full path.
    }

    const pb::StructureFingerprint fp =
        pb::StructureFingerprint::of(p.a_csc, p.b_csr);
    Impl::EntryPtr entry = im.find(fp, key);
    const bool hit = entry != nullptr;
    if (!hit) {
      entry = im.analyze(p, op, key, fp, {}, -1);
      im.insert(entry);
    }
    {
      const std::lock_guard<std::mutex> lock(im.mu);
      ++im.stats.executes;
      hit ? ++im.stats.cache_hits : ++im.stats.cache_misses;
    }
    mtx::CsrMatrix c = im.execute_entry(entry, p, info, &token, accumulate);
    if (info != nullptr) info->cache_hit = hit;
    return c;
  } catch (const CancelledError&) {
    im.count_cancelled();
    throw;
  }
}

mtx::CsrMatrix SpGemmExecutor::run(const SpGemmProblem& p, const SpGemmOp& op,
                                   RunInfo* info) {
  return run(p, op, RunOptions{}, info);
}

mtx::CsrMatrix SpGemmExecutor::run(const SpGemmProblem& p, const SpGemmOp& op,
                                   const RunOptions& ropts, RunInfo* info) {
  if (op.accumulate) {
    throw std::logic_error(
        "SpGemmExecutor::run: the op declared accumulate — pass the matrix "
        "to accumulate into (run(problem, op, c))");
  }
  return run_product(p, op, info, /*values_only=*/false, ropts);
}

mtx::CsrMatrix SpGemmExecutor::run(const SpGemmProblem& p, const SpGemmOp& op,
                                   const mtx::CsrMatrix& accumulate_into,
                                   RunInfo* info) {
  // The target threads into the execution itself: the pb path merges it
  // during CSR conversion (fused accumulate), the row-wise paths post-pass
  // through semiring_ewise_add — bit-identical by construction.
  return run_product(p, op, info, /*values_only=*/false, RunOptions{},
                     &accumulate_into);
}

mtx::CsrMatrix SpGemmExecutor::run_values_updated(const SpGemmProblem& p,
                                                  const SpGemmOp& op,
                                                  RunInfo* info) {
  return run_values_updated(p, op, RunOptions{}, info);
}

mtx::CsrMatrix SpGemmExecutor::run_values_updated(const SpGemmProblem& p,
                                                  const SpGemmOp& op,
                                                  const RunOptions& ropts,
                                                  RunInfo* info) {
  if (op.accumulate) {
    throw std::logic_error(
        "SpGemmExecutor::run_values_updated: accumulating ops use "
        "run(problem, op, c)");
  }
  return run_product(p, op, info, /*values_only=*/true, ropts);
}

void SpGemmExecutor::cancel() {
  Impl& im = *impl_;
  std::shared_ptr<CancelToken> old;
  {
    const std::lock_guard<std::mutex> lock(im.mu);
    old = std::move(im.epoch);
    im.epoch = std::make_shared<CancelToken>();
  }
  old->request_cancel();
}

std::vector<mtx::CsrMatrix> SpGemmExecutor::run(const SpGemmProblem& p,
                                                std::span<const SpGemmOp> ops) {
  return run(p, ops, RunOptions{});
}

std::vector<mtx::CsrMatrix> SpGemmExecutor::run(const SpGemmProblem& p,
                                                std::span<const SpGemmOp> ops,
                                                const RunOptions& ropts) {
  Impl& im = *impl_;
  std::vector<mtx::CsrMatrix> results;
  if (ops.empty()) return results;
  results.reserve(ops.size());
  {
    const std::lock_guard<std::mutex> lock(im.mu);
    ++im.stats.batches;
  }
  if (im.opts.validate_inputs) {
    for (const SpGemmOp& op : ops) im.validate_problem(p, op);
  }
  CancelToken token;
  std::shared_ptr<CancelToken> epoch_snapshot;
  im.arm_token(token, ropts, epoch_snapshot);

  // One analysis pass shared by every op that plans: the fingerprint's
  // flop count always; the row-flop histogram and nnz estimate when any
  // op runs "auto" selection (each op's mask terms still derive from the
  // shared histogram).
  bool any_planned = false;
  bool any_auto = false;
  for (const SpGemmOp& op : ops) {
    if (op.accumulate) {
      throw std::logic_error(
          "SpGemmExecutor::run(problem, ops): batch results are products; "
          "accumulate through the two-argument run");
    }
    check_post_op(op, op.accumulate);
    if (!is_passthrough(op)) any_planned = true;
    if (op.algo == "auto") any_auto = true;
  }

  pb::StructureFingerprint fp;
  std::vector<nnz_t> row_flops;
  nnz_t nnz_est = -1;
  if (any_planned) {
    fp = pb::StructureFingerprint::of(p.a_csc, p.b_csr);
    if (any_auto) {
      row_flops = pb::pb_row_flops(p.a_csc, p.b_csr);
      nnz_est = pb::pb_estimate_nnz_c(row_flops, p.b_csr.ncols);
    }
  }

  // Phase 1 (serial): resolve every descriptor to an executable entry —
  // cache lookups, analyses and stats stay ordered, and every plan is in
  // the cache before anything runs.  Passthrough ops resolve to a null
  // entry and execute through run_passthrough below.
  std::vector<Impl::EntryPtr> entries(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const SpGemmOp& op = ops[i];
    if (is_passthrough(op)) continue;
    const std::string key = op_cache_key(op);
    Impl::EntryPtr entry = im.find(fp, key);
    const bool hit = entry != nullptr;
    if (!hit) {
      entry = im.analyze(p, op, key, fp, row_flops, nnz_est);
      im.insert(entry);
    }
    {
      const std::lock_guard<std::mutex> lock(im.mu);
      ++im.stats.executes;
      hit ? ++im.stats.cache_hits : ++im.stats.cache_misses;
    }
    entries[i] = std::move(entry);
  }

  // Phase 2: fan the executions out over the workspace pool — each worker
  // leases its own PbWorkspace, so ops run fully concurrent (dyn-semiring
  // ops still serialize on the process-global bridge).  Results land in
  // op order; the first worker exception is rethrown after the join.
  results.resize(ops.size());
  auto execute_one = [&](std::size_t i) {
    FaultInjector::at(FaultPoint::kBatchWorker);
    results[i] = entries[i] != nullptr
                     ? im.execute_entry(entries[i], p, nullptr, &token)
                     : im.run_passthrough(p, ops[i], nullptr, &token);
  };
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t workers =
      std::min(ops.size(), im.opts.batch_concurrency == 0
                               ? hw
                               : im.opts.batch_concurrency);
  if (workers <= 1) {
    try {
      for (std::size_t i = 0; i < ops.size(); ++i) execute_one(i);
    } catch (const CancelledError&) {
      im.count_cancelled();
      throw;
    }
    return results;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::exception_ptr> errors(workers);
  std::vector<std::thread> team;
  team.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    team.emplace_back([&, w] {
      for (std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
           i < ops.size();
           i = next.fetch_add(1, std::memory_order_relaxed)) {
        try {
          execute_one(i);
        } catch (...) {
          errors[w] = std::current_exception();
          // Drain the queue on any failure: sibling workers stop at
          // their next poll instead of finishing doomed products.
          token.request_cancel();
          return;  // this worker stops; the rest drain the queue
        }
      }
    });
  }
  for (std::thread& t : team) t.join();
  // Rethrow the root-cause error; every lease has already returned (RAII
  // inside execute_entry), so the pool and cache are consistent.  A
  // failing worker cancels its siblings, so prefer an error that is NOT
  // the induced CancelledError when one exists.
  std::exception_ptr first;
  std::exception_ptr root;
  for (const std::exception_ptr& e : errors) {
    if (!e) continue;
    if (!first) first = e;
    if (!root) {
      try {
        std::rethrow_exception(e);
      } catch (const CancelledError&) {
      } catch (...) {
        root = e;
      }
    }
  }
  if (!root) root = first;
  if (root) {
    try {
      std::rethrow_exception(root);
    } catch (const CancelledError&) {
      im.count_cancelled();
      throw;
    }
  }
  return results;
}

void SpGemmExecutor::prepare(const SpGemmProblem& p, const SpGemmOp& op,
                             RunInfo* info) {
  Impl& im = *impl_;
  check_post_op(op, op.accumulate);
  if (im.opts.validate_inputs) im.validate_problem(p, op);
  if (is_passthrough(op)) {
    check_mask_shape(op, p);
    Timer timer;
    (void)im.passthrough_fn(op, op_cache_key(op));  // throws on bad pairs
    // Fixed baseline plans still report the problem's flop (the analysis
    // SpGemmPlan has always exposed), they just never re-verify it.
    const pb::StructureFingerprint fp =
        pb::StructureFingerprint::of(p.a_csc, p.b_csr);
    if (info != nullptr) {
      *info = RunInfo{};
      info->algo = op.algo;
      info->passthrough = true;
      info->flop = fp.flop;
      info->plan_seconds = timer.elapsed_s();
    }
    return;
  }
  const std::string key = op_cache_key(op);
  const pb::StructureFingerprint fp =
      pb::StructureFingerprint::of(p.a_csc, p.b_csr);
  Impl::EntryPtr entry = im.find(fp, key);
  const bool hit = entry != nullptr;
  if (!hit) {
    entry = im.analyze(p, op, key, fp, {}, -1);
    im.insert(entry);
    const std::lock_guard<std::mutex> lock(im.mu);
    ++im.stats.cache_misses;
  } else {
    const std::lock_guard<std::mutex> lock(im.mu);
    ++im.stats.cache_hits;
  }
  if (info != nullptr) {
    *info = RunInfo{};
    Impl::fill_info(*info, *entry);
    info->cache_hit = hit;
  }
}

ExecutorStats SpGemmExecutor::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

pb::WorkspacePool::Stats SpGemmExecutor::pool_stats() const {
  return impl_->pool.stats();
}

pb::PbWorkspace::Stats SpGemmExecutor::workspace_stats() const {
  return impl_->pool.workspace_stats();
}

std::vector<model::PerfSample> SpGemmExecutor::samples() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->samples;
}

model::SelectionModel SpGemmExecutor::selection_model() const {
  model::SelectionModel m;
  const std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->calibrated) {
    m.pb_efficiency = impl_->cal_pb_efficiency;
    m.column_latency_penalty = impl_->cal_column_latency_penalty;
  }
  return m;
}

model::CalibrationResult SpGemmExecutor::calibrate() {
  return impl_->calibrate_now();
}

}  // namespace pbs
