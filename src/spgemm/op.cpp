#include "spgemm/op.hpp"

#include <list>
#include <mutex>
#include <stdexcept>

namespace pbs {

namespace detail {
const RuntimeSemiring* g_active_semiring = nullptr;
}  // namespace detail

// std::list gives registered semirings stable addresses for the process
// lifetime (find/at hand out pointers and references).
struct SemiringRegistry::Impl {
  mutable std::mutex mu;
  std::list<RuntimeSemiring> semirings;
};

SemiringRegistry::SemiringRegistry() : impl_(new Impl) {
  // Seed the built-in four.  builtin=true routes dispatch to the compiled
  // template instantiations; the closures make generic (non-dispatching)
  // code work uniformly.
  auto seed = [&]<typename S>() {
    RuntimeSemiring rs;
    rs.name = S::name;
    rs.zero = S::zero();
    rs.add = [](value_t a, value_t b) { return S::add(a, b); };
    rs.mul = [](value_t a, value_t b) { return S::mul(a, b); };
    rs.builtin = true;
    rs.value_free = semiring_is_value_free<S>();
    impl_->semirings.push_back(std::move(rs));
  };
  seed.operator()<PlusTimes>();
  seed.operator()<MinPlus>();
  seed.operator()<MaxMin>();
  seed.operator()<BoolOrAnd>();
}

SemiringRegistry& SemiringRegistry::instance() {
  static SemiringRegistry registry;
  return registry;
}

void SemiringRegistry::register_semiring(RuntimeSemiring s) {
  if (s.name.empty()) {
    throw std::invalid_argument("register_semiring: name must not be empty");
  }
  if (!s.add || !s.mul) {
    throw std::invalid_argument("register_semiring: semiring '" + s.name +
                                "' needs both add and mul closures");
  }
  s.builtin = false;  // only the registry's own seeds may claim the fast path
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const RuntimeSemiring& existing : impl_->semirings) {
    if (existing.name == s.name) {
      throw std::invalid_argument("register_semiring: semiring '" + s.name +
                                  "' is already registered");
    }
  }
  impl_->semirings.push_back(std::move(s));
}

const RuntimeSemiring* SemiringRegistry::find(
    const std::string& name) const noexcept {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (const RuntimeSemiring& s : impl_->semirings) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const RuntimeSemiring& SemiringRegistry::at(const std::string& name) const {
  if (const RuntimeSemiring* s = find(name)) return *s;
  std::string valid;
  for (const std::string& n : names()) valid += n + " ";
  throw std::invalid_argument("unknown semiring '" + name +
                              "'; registered: " + valid);
}

std::vector<std::string> SemiringRegistry::names() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::vector<std::string> out;
  out.reserve(impl_->semirings.size());
  for (const RuntimeSemiring& s : impl_->semirings) out.push_back(s.name);
  return out;
}

bool is_registered_semiring(const std::string& name) {
  return SemiringRegistry::instance().contains(name);
}

bool semiring_value_free(const std::string& name) {
  const RuntimeSemiring* s = SemiringRegistry::instance().find(name);
  return s != nullptr && s->value_free;
}

mtx::CsrMatrix semiring_ewise_add(const std::string& semiring,
                                  const mtx::CsrMatrix& a,
                                  const mtx::CsrMatrix& b) {
  if (a.nrows != b.nrows || a.ncols != b.ncols) {
    throw std::invalid_argument("semiring_ewise_add: shape mismatch");
  }
  return dispatch_semiring_any(semiring, [&]<typename S>() {
    mtx::CsrMatrix out(a.nrows, a.ncols);
    out.colids.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
    out.vals.reserve(static_cast<std::size_t>(a.nnz() + b.nnz()));
    for (index_t r = 0; r < a.nrows; ++r) {
      // Two-pointer union merge of the sorted rows: both-present positions
      // combine with S::add, single-present positions copy through (no
      // identity injected, matching the kernels' first-contribution rule).
      nnz_t i = a.rowptr[r];
      nnz_t j = b.rowptr[r];
      const nnz_t ia = a.rowptr[static_cast<std::size_t>(r) + 1];
      const nnz_t jb = b.rowptr[static_cast<std::size_t>(r) + 1];
      while (i < ia || j < jb) {
        if (j >= jb || (i < ia && a.colids[i] < b.colids[j])) {
          out.colids.push_back(a.colids[i]);
          out.vals.push_back(a.vals[i]);
          ++i;
        } else if (i >= ia || b.colids[j] < a.colids[i]) {
          out.colids.push_back(b.colids[j]);
          out.vals.push_back(b.vals[j]);
          ++j;
        } else {
          out.colids.push_back(a.colids[i]);
          out.vals.push_back(S::add(a.vals[i], b.vals[j]));
          ++i;
          ++j;
        }
      }
      out.rowptr[static_cast<std::size_t>(r) + 1] =
          static_cast<nnz_t>(out.colids.size());
    }
    return out;
  });
}

}  // namespace pbs
