// Open-addressing accumulators for the hash-based column/row SpGEMM
// baselines (Nagasaka et al. [12], [27]).
//
// Two probe disciplines:
//  * HashAccumulator     — classic linear probing, one slot at a time.
//  * GroupedAccumulator  — probes 8-slot bucket groups; scanning a whole
//    group per step is the scalar analogue of the vector-register probing
//    in HashVecSpGEMM (the compiler vectorizes the 8-wide key compare).
//
// Tables are sized per row to the next power of two >= 2x the row's upper
// bound and reused across rows via an occupied-slot list (no O(table) clear
// between rows).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace pbs::detail {

inline std::uint32_t hash_col(index_t c) {
  auto x = static_cast<std::uint32_t>(c);
  x = (x ^ (x >> 16)) * 0x85EBCA6Bu;
  x = (x ^ (x >> 13)) * 0xC2B2AE35u;
  return x ^ (x >> 16);
}

class HashAccumulator {
 public:
  /// Prepares for a row with at most `upper` distinct keys.
  void reset(nnz_t upper) {
    const auto want = static_cast<std::size_t>(
        next_pow2(static_cast<std::uint64_t>(std::max<nnz_t>(upper, 1)) * 2));
    if (want > keys_.size()) {
      keys_.assign(want, kEmpty);
      vals_.resize(want);
    } else {
      for (const std::uint32_t s : occupied_) keys_[s] = kEmpty;
    }
    mask_ = static_cast<std::uint32_t>(keys_.size() - 1);
    occupied_.clear();
  }

  /// Keyed insert-or-combine: a fresh slot stores v as-is (the kernels'
  /// first-contribution rule — S::zero() never enters the accumulation), a
  /// hit combines with the semiring add.  S = PlusTimes reproduces the
  /// original `vals_[slot] += v` byte for byte.
  template <typename S>
  void accumulate(index_t col, value_t v) {
    std::uint32_t slot = hash_col(col) & mask_;
    for (;;) {
      if (keys_[slot] == col) {
        vals_[slot] = S::add(vals_[slot], v);
        return;
      }
      if (keys_[slot] == kEmpty) {
        keys_[slot] = col;
        vals_[slot] = v;
        occupied_.push_back(slot);
        return;
      }
      slot = (slot + 1) & mask_;
    }
  }

  /// Symbolic variant: inserts the key only; returns true when new.
  bool insert(index_t col) {
    std::uint32_t slot = hash_col(col) & mask_;
    for (;;) {
      if (keys_[slot] == col) return false;
      if (keys_[slot] == kEmpty) {
        keys_[slot] = col;
        occupied_.push_back(slot);
        return true;
      }
      slot = (slot + 1) & mask_;
    }
  }

  [[nodiscard]] nnz_t size() const { return static_cast<nnz_t>(occupied_.size()); }

  /// Extracts (col, val) pairs in table order into `out` (unsorted).
  template <typename OutIt>
  void extract(OutIt out) const {
    for (const std::uint32_t s : occupied_) *out++ = {keys_[s], vals_[s]};
  }

 private:
  static constexpr index_t kEmpty = -1;
  std::vector<index_t> keys_;
  std::vector<value_t> vals_;
  std::vector<std::uint32_t> occupied_;
  std::uint32_t mask_ = 0;
};

class GroupedAccumulator {
 public:
  static constexpr std::uint32_t kGroup = 8;  // vector width (AVX-512: 8 x i32... 16; POWER9 VSX: 4)

  void reset(nnz_t upper) {
    const auto want_groups = static_cast<std::size_t>(next_pow2(
        (static_cast<std::uint64_t>(std::max<nnz_t>(upper, 1)) * 2 + kGroup - 1) /
        kGroup));
    if (want_groups * kGroup > keys_.size()) {
      keys_.assign(want_groups * kGroup, kEmpty);
      vals_.resize(want_groups * kGroup);
    } else {
      for (const std::uint32_t s : occupied_) keys_[s] = kEmpty;
    }
    group_mask_ = static_cast<std::uint32_t>(keys_.size() / kGroup - 1);
    occupied_.clear();
  }

  /// Same keyed insert-or-combine contract as HashAccumulator::accumulate.
  template <typename S>
  void accumulate(index_t col, value_t v) {
    std::uint32_t g = hash_col(col) & group_mask_;
    for (;;) {
      const std::uint32_t base = g * kGroup;
      // 8-wide compare; with -march=native this is one vector compare.
      for (std::uint32_t lane = 0; lane < kGroup; ++lane) {
        if (keys_[base + lane] == col) {
          vals_[base + lane] = S::add(vals_[base + lane], v);
          return;
        }
      }
      for (std::uint32_t lane = 0; lane < kGroup; ++lane) {
        if (keys_[base + lane] == kEmpty) {
          keys_[base + lane] = col;
          vals_[base + lane] = v;
          occupied_.push_back(base + lane);
          return;
        }
      }
      g = (g + 1) & group_mask_;
    }
  }

  bool insert(index_t col) {
    std::uint32_t g = hash_col(col) & group_mask_;
    for (;;) {
      const std::uint32_t base = g * kGroup;
      for (std::uint32_t lane = 0; lane < kGroup; ++lane) {
        if (keys_[base + lane] == col) return false;
      }
      for (std::uint32_t lane = 0; lane < kGroup; ++lane) {
        if (keys_[base + lane] == kEmpty) {
          keys_[base + lane] = col;
          occupied_.push_back(base + lane);
          return true;
        }
      }
      g = (g + 1) & group_mask_;
    }
  }

  [[nodiscard]] nnz_t size() const { return static_cast<nnz_t>(occupied_.size()); }

  template <typename OutIt>
  void extract(OutIt out) const {
    for (const std::uint32_t s : occupied_) *out++ = {keys_[s], vals_[s]};
  }

 private:
  static constexpr index_t kEmpty = -1;
  std::vector<index_t> keys_;
  std::vector<value_t> vals_;
  std::vector<std::uint32_t> occupied_;
  std::uint32_t group_mask_ = 0;
};

}  // namespace pbs::detail
