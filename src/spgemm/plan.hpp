// SpGemmPlan — reusable, algorithm-selecting multiplication plans
// (FFTW-style plan/execute over the whole algorithm registry), driven by
// the typed operation descriptor SpGemmOp (spgemm/op.hpp):
//
//   SpGemmOp op;                         // algo = "auto" by default
//   op.semiring = "min_plus";            // built-in or runtime-registered
//   op.mask = &m; op.complement = false; // optional fused output mask
//   SpGemmPlan plan = make_plan(problem, op);
//   for (...) c = plan.execute(problem);
//   // accumulating descriptor: op.accumulate = true, then
//   //   c = plan.execute(problem, c);   // c ⊞= A ⊗ B (semiring add)
//
// make_plan analyzes the problem once — flop count, estimated compression
// factor, roofline-guided algorithm selection (model/selection.hpp, with a
// mask-density term when the op carries a mask), and, when the choice
// lands on the PB pipeline, the full symbolic bin layout (pb/plan.hpp) —
// and returns an executable plan with a pooled workspace.  execute() runs
// only the numeric stages: for PB that is expand → sort/compress → convert
// against the captured layout with zero analysis and, at steady state,
// zero allocation; a mask is fused into PB's compress stage (dropped
// tuples are counted in last_pb_stats().mask_dropped) and into the
// heap/hash/spa row loops.
//
// Since PR 5 a plan is a thin single-entry view over a private
// SpGemmExecutor (spgemm/executor.hpp): the analysis products live in the
// executor's fingerprint-keyed LRU cache, so a plan tracking a workload
// that ALTERNATES between a few structures (MCL expand/prune shapes, AMG
// level pairs) replans once per structure, not once per flip — returning
// to a cached structure is an analysis reuse.  Every execute still
// fingerprints the operands (dims + nnz + flop, see
// pb::StructureFingerprint) and a genuinely new structure transparently
// replans (counted in telemetry().replans), re-deriving the algorithm
// choice for "auto" plans.  execute_values_updated() is the value-only
// fast path: when the caller knows only the operands' values changed, the
// flop recount is skipped too and just the numeric stages replay.  The
// mask's *pattern* is never fingerprinted: it may change freely between
// executions (only its shape is pinned at plan time).  telemetry()
// reports executes / replans / analysis reuses and the selection
// rationale; workspace_stats() exposes the pooled allocator's reuse
// counters.  Plans are move-only (they own their executor); callers
// needing shared, concurrent, or multi-op execution should hold a
// SpGemmExecutor directly.
//
// PlanOptions is the pre-descriptor name of SpGemmOp and survives as an
// alias, so existing callers compile unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "model/selection.hpp"
#include "pb/plan.hpp"
#include "spgemm/op.hpp"
#include "spgemm/registry.hpp"

namespace pbs {

class SpGemmExecutor;
struct RunInfo;

/// Legacy name of the operation descriptor (shim).
using PlanOptions = SpGemmOp;

struct PlanTelemetry {
  std::string requested_algo;  ///< what the SpGemmOp asked for
  std::string algo;            ///< the concrete algorithm executing
  std::string semiring;
  bool masked = false;      ///< the op carries a fused output mask
  bool complement = false;  ///< ... with complemented polarity
  /// The roofline decision (populated when requested_algo == "auto");
  /// choice.rationale is the human-readable explanation (including the
  /// mask-density term when masked).
  model::AlgoChoice choice;
  nnz_t flop = 0;           ///< flop(A·B) of the planned structure
  double plan_seconds = 0;  ///< analysis cost of the most recent (re)plan
  /// Roofline prediction for the chosen algorithm (the derated estimate of
  /// `choice` at its default β; populated when requested_algo == "auto")
  /// vs. what the most recent fingerprint-verified execute achieved —
  /// the measurement pairs from which the selection model's derating
  /// constants are learned (SelectionModel::calibrate).  Fixed non-pb
  /// plans skip the fingerprint pass, so their executes leave
  /// achieved_mflops at 0.
  double predicted_mflops = 0;
  double achieved_mflops = 0;
  std::uint64_t executes = 0;
  /// Fingerprint misses after build: structures never seen before (or
  /// evicted).  Flipping back to a structure the backing cache still
  /// holds is NOT a replan — it counts as an analysis reuse.
  std::uint64_t replans = 0;
  /// Executes that reused captured analysis (a cached pb symbolic layout,
  /// or the cached roofline selection for "auto" plans) — including
  /// value-only fast-path executes.  A plan fixed on a non-pb algorithm
  /// caches only kernel resolution: its executes are pass-through and
  /// counted in neither replans nor analysis_reuses.
  std::uint64_t analysis_reuses = 0;
};

class SpGemmPlan {
 public:
  ~SpGemmPlan();
  SpGemmPlan(SpGemmPlan&&) noexcept;
  SpGemmPlan& operator=(SpGemmPlan&&) noexcept;

  /// Multiplies p over the planned op.  Operands whose structure
  /// fingerprint misses the backing cache trigger a transparent replan
  /// (counted in telemetry().replans); cached structures skip analysis
  /// entirely.  Throws std::logic_error when the op declared
  /// accumulate — use the two-argument overload.
  mtx::CsrMatrix execute(const SpGemmProblem& p);

  /// Accumulating execute: returns c ⊞ (A ⊗ B under the op's mask), the
  /// union-pattern combine with the op semiring's add.  Usable on any
  /// plan; the one the descriptor's accumulate flag promises.
  mtx::CsrMatrix execute(const SpGemmProblem& p, const mtx::CsrMatrix& c);

  /// Value-only fast path: the caller asserts p has the same structure as
  /// a previously executed problem of this plan and only the numeric
  /// values changed — the fingerprint's O(ncols) flop recount is skipped
  /// (the cached plan is matched on dims + nnz alone) and only the
  /// numeric stages replay.  Falls back to a normal fingerprinted
  /// execute when no matching structure is cached.  The assertion is
  /// trusted; see SpGemmExecutor::run_values_updated for the contract.
  mtx::CsrMatrix execute_values_updated(const SpGemmProblem& p);

  /// The concrete algorithm currently selected ("pb", "hash", ...).
  [[nodiscard]] const std::string& algo() const { return tm_.algo; }

  /// The descriptor this plan was built from (mask pointer included).
  [[nodiscard]] const SpGemmOp& op() const { return opts_; }

  [[nodiscard]] const PlanTelemetry& telemetry() const { return tm_; }

  /// Per-phase PB telemetry of the most recent execute (valid when
  /// algo() == "pb"; its symbolic phase is zero on reused executions, and
  /// mask_dropped counts the tuples the fused mask removed at compress).
  [[nodiscard]] const pb::PbTelemetry& last_pb_stats() const {
    return pb_stats_;
  }

  /// Reuse counters of the pooled workspace (PB executions draw all
  /// scratch from it; steady state shows reuses growing, allocations not).
  [[nodiscard]] pb::PbWorkspace::Stats workspace_stats() const;

  /// The backing executor — for callers that outgrow the single-op view
  /// (batched descriptors, concurrent execution, calibration) without
  /// rebuilding their plans.
  [[nodiscard]] SpGemmExecutor& executor() { return *exec_; }

 private:
  friend SpGemmPlan make_plan(const SpGemmProblem& p, SpGemmOp op);
  SpGemmPlan();

  /// The common body of both execute overloads (the masked product).
  mtx::CsrMatrix execute_product(const SpGemmProblem& p, bool values_only);

  /// Folds one run's RunInfo into the plan-level telemetry.
  void note_run(const RunInfo& info);

  SpGemmOp opts_;
  PlanTelemetry tm_;
  pb::PbTelemetry pb_stats_;
  std::unique_ptr<SpGemmExecutor> exec_;
};

/// Analyzes `p` and returns an executable plan.  Throws
/// std::invalid_argument for unknown algorithms/semirings, unsupported
/// pairs (same contract as semiring_algorithm), or a mask whose shape does
/// not match the product.
SpGemmPlan make_plan(const SpGemmProblem& p, SpGemmOp op = {});

}  // namespace pbs
