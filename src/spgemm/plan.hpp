// SpGemmPlan — reusable, algorithm-selecting multiplication plans
// (FFTW-style plan/execute over the whole algorithm registry).
//
//   PlanOptions opts;                    // algo = "auto" by default
//   opts.semiring = "min_plus";
//   SpGemmPlan plan = make_plan(problem, opts);
//   for (...) c = plan.execute(problem);
//
// make_plan analyzes the problem once — flop count, estimated compression
// factor, roofline-guided algorithm selection (model/selection.hpp), and,
// when the choice lands on the PB pipeline, the full symbolic bin layout
// (pb/plan.hpp) — and returns an executable plan with a pooled workspace.
// execute() runs only the numeric stages: for PB that is
// expand → sort/compress → convert against the captured layout with zero
// analysis and, at steady state, zero allocation.
//
// Invalidation is automatic and cheap: every execute fingerprints the
// operands (dims + nnz + flop, see pb::StructureFingerprint for the exact
// contract) and transparently replans on a mismatch — for "auto" plans the
// algorithm choice is re-derived, so a plan tracking an iterative
// application (MCL, BFS frontiers, AMG levels) follows the problem as its
// structure drifts, while repeated same-structure traffic pays analysis
// exactly once.  telemetry() reports executes / replans / analysis reuses
// and the selection rationale; workspace_stats() exposes the allocator's
// reuse counters.
#pragma once

#include <cstdint>
#include <string>

#include "model/selection.hpp"
#include "pb/plan.hpp"
#include "spgemm/registry.hpp"

namespace pbs {

struct PlanOptions {
  /// "auto" (roofline-guided selection among pb / hash / heap) or any
  /// registry algorithm name; unknown names and unsupported
  /// (algo, semiring) pairs throw at plan time, never at execute time.
  std::string algo = "auto";
  std::string semiring = PlusTimes::name;
  /// Configuration for the PB pipeline when it is (or may be) chosen.
  pb::PbConfig pb;
  /// Selection tunables (β, derating efficiencies, small-flop cutoff).
  model::SelectionModel model;
};

struct PlanTelemetry {
  std::string requested_algo;  ///< what PlanOptions asked for
  std::string algo;            ///< the concrete algorithm executing
  std::string semiring;
  /// The roofline decision (populated when requested_algo == "auto");
  /// choice.rationale is the human-readable explanation.
  model::AlgoChoice choice;
  nnz_t flop = 0;           ///< flop(A·B) of the planned structure
  double plan_seconds = 0;  ///< analysis cost of the most recent (re)plan
  /// Roofline prediction for the chosen algorithm (the derated estimate of
  /// `choice` at its default β; populated when requested_algo == "auto")
  /// vs. what the most recent fingerprint-verified execute achieved —
  /// the measurement pairs from which the selection model's derating
  /// constants can be learned.  Fixed non-pb plans skip the fingerprint
  /// pass, so their executes leave achieved_mflops at 0.
  double predicted_mflops = 0;
  double achieved_mflops = 0;
  std::uint64_t executes = 0;
  std::uint64_t replans = 0;          ///< fingerprint misses after build
  /// Executes that reused captured analysis (the pb symbolic layout, or
  /// the roofline selection for "auto" plans).  A plan fixed on a non-pb
  /// algorithm caches only kernel resolution: its executes are
  /// pass-through and counted in neither replans nor analysis_reuses.
  std::uint64_t analysis_reuses = 0;
};

class SpGemmPlan {
 public:
  /// Multiplies p over the planned (algorithm, semiring).  Operands whose
  /// structure fingerprint differs from the plan's trigger a transparent
  /// replan (counted in telemetry().replans); matching operands skip
  /// analysis entirely.
  mtx::CsrMatrix execute(const SpGemmProblem& p);

  /// The concrete algorithm currently selected ("pb", "hash", ...).
  [[nodiscard]] const std::string& algo() const { return tm_.algo; }

  [[nodiscard]] const PlanTelemetry& telemetry() const { return tm_; }

  /// Per-phase PB telemetry of the most recent execute (valid when
  /// algo() == "pb"; its symbolic phase is zero on reused executions).
  [[nodiscard]] const pb::PbTelemetry& last_pb_stats() const {
    return pb_stats_;
  }

  /// Reuse counters of the pooled workspace (PB executions draw all
  /// scratch from it; steady state shows reuses growing, allocations not).
  [[nodiscard]] pb::PbWorkspace::Stats workspace_stats() const {
    return ws_.stats();
  }

 private:
  friend SpGemmPlan make_plan(const SpGemmProblem& p, PlanOptions opts);
  SpGemmPlan() = default;

  /// Full analysis: selection (for "auto"), symbolic plan (for pb),
  /// kernel resolution (otherwise).  `fp` is p's already-computed
  /// fingerprint (callers always have it; recomputing costs an O(ncols)
  /// parallel flop pass).
  void analyze(const SpGemmProblem& p, const pb::StructureFingerprint& fp);

  PlanOptions opts_;
  PlanTelemetry tm_;
  pb::StructureFingerprint fp_;
  bool use_pb_ = false;
  pb::PbPlan pb_plan_;     ///< valid when use_pb_
  SpGemmFn fn_;            ///< execution path when !use_pb_
  pb::PbWorkspace ws_;
  pb::PbTelemetry pb_stats_;
};

/// Analyzes `p` and returns an executable plan.  Throws
/// std::invalid_argument for unknown algorithms/semirings or unsupported
/// pairs (same contract as semiring_algorithm).
SpGemmPlan make_plan(const SpGemmProblem& p, PlanOptions opts = {});

}  // namespace pbs
