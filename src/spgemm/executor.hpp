// SpGemmExecutor — the long-lived serving layer over the plan/execute
// machinery.
//
// SpGemmPlan answers "multiply this one structure many times"; iterative
// and serving workloads need more: MCL alternates between a few pruned
// shapes (a single plan replans on every flip), AMG walks two triple-
// product sites down a level hierarchy, batched masked BFS/BC frontiers
// run several descriptors against one analysis, and a service multiplies
// through one hot plan from many threads at once.  The executor owns all
// four patterns:
//
//   PlanCache      — an LRU of cached plans keyed by StructureFingerprint
//                    × op identity.  Workloads alternating between a few
//                    structures pay the O(ncols)/O(nnz) analysis once per
//                    structure instead of once per flip; the per-execute
//                    cost of a hit is the O(ncols) fingerprint pass.
//   value-only     — run_values_updated(): when the caller knows only the
//                    operands' *values* changed since the previous run of
//                    this op (same structure), the executor matches the
//                    cached plan on dims+nnz alone and replays just the
//                    numeric stages — no flop recount, no symbolic.
//   batched ops    — run(problem, span<SpGemmOp>) plans every descriptor
//                    from ONE analysis pass (fingerprint flop, row-flop
//                    histogram, nnz estimate) and selects each op's
//                    algorithm from it.
//   concurrency    — run() is thread-safe: the cache is mutex-guarded,
//                    each in-flight execution leases its own PbWorkspace
//                    from a WorkspacePool, and cached plans are shared
//                    immutably (shared_ptr, so eviction never invalidates
//                    an execution in progress).  N threads can multiply
//                    through one cached plan simultaneously; for serving,
//                    give each caller thread its own OpenMP budget
//                    (omp_set_num_threads per thread).  Executions over
//                    *runtime-registered* semirings serialize internally
//                    (the DynSemiring bridge is process-global); built-in
//                    semirings run fully concurrent.
//
// The executor also closes the PR 3 telemetry loop: every unmasked "auto"
// execute records a model::PerfSample (predicted vs achieved MFLOPS), and
// after `calibrate_after` samples the executor refits its selection
// model's derating constants from them (SelectionModel::calibrate), so
// long-running services converge onto this machine's measured crossover.
//
// SpGemmPlan (spgemm/plan.hpp) survives as a thin single-entry view over
// one private executor, so existing callers keep their API and gain the
// structure cache transparently.
#pragma once

#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/cancel.hpp"
#include "model/selection.hpp"
#include "pb/plan.hpp"
#include "pb/workspace_pool.hpp"
#include "spgemm/op.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

struct ExecutorOptions {
  /// Cached plans retained (LRU).  Size it to the number of distinct
  /// (structure, op) pairs the workload alternates between; each entry
  /// holds a PB symbolic layout (O(nbins) offsets), not tuple storage —
  /// the big buffers live in the workspace pool, shared by all entries.
  /// Ignored when cache_capacity_bytes is set.
  std::size_t cache_capacity = 8;

  /// Byte budget for the plan cache (0 = entry-count mode via
  /// cache_capacity).  A serving daemon sees thousands of distinct
  /// structures, not 8: a byte budget sizes the cache by what the entries
  /// actually cost (each entry's symbolic arrays are measured at insert;
  /// ExecutorStats::cache_bytes tracks the occupancy) instead of an
  /// arbitrary count.  Eviction is cost-aware: among the coldest entries
  /// the one with the lowest rebuild-cost density (plan seconds per byte)
  /// goes first, so a cheap-to-replan giant does not squeeze out many
  /// expensive small plans.  The budget is a target, not a hard cap: the
  /// most recent entry is always retained so the current workload cannot
  /// thrash itself out of the cache.
  std::size_t cache_capacity_bytes = 0;

  /// Refit the selection model's derating constants once this many
  /// predicted-vs-achieved samples have been recorded (0 = never).
  /// Replans and new structures selected after the refit use the
  /// calibrated constants; already-cached choices are kept.
  std::size_t calibrate_after = 0;

  /// Telemetry ring capacity: the most recent samples kept for
  /// calibrate()/samples().
  std::size_t max_samples = 512;

  /// Worker threads the batched run(problem, ops) fans executions out
  /// over after its shared (serial) analysis pass.  0 = auto:
  /// min(#ops, hardware threads).  1 = serial (the pre-fan-out
  /// behavior).  Each worker leases its own PbWorkspace from the pool
  /// and runs its op's full execution; results land in op order
  /// regardless.  Ops over runtime-registered semirings still serialize
  /// on the process-global DynSemiring bridge.
  std::size_t batch_concurrency = 0;

  /// Byte cap on the pooled workspace memory (tuple streams + sort
  /// scratch) across ALL concurrent leases; 0 = unlimited.  A plan whose
  /// PB stream cannot fit degrades to the row-wise fallback at plan time;
  /// a run whose workspace growth is rejected mid-flight (or whose
  /// allocation genuinely fails) re-executes through the fallback kernel,
  /// keeping the cached PB plan for the next, possibly less contended,
  /// run.  Degradations surface in ExecutorStats and RunInfo.
  std::size_t mem_budget_bytes = 0;

  /// Strict-ingress mode: csr_validate every problem's operands (and the
  /// op mask) on run/prepare entry, rejecting malformed matrices with
  /// ValidationError instead of computing undefined results.  Off by
  /// default — trusted callers skip the O(nnz) sweep.
  bool validate_inputs = false;
};

/// Per-call deadline/cancellation controls (all optional; default = run
/// to completion).  `timeout` wins over `deadline` when both are set; an
/// external `cancel` token is linked alongside the executor's own
/// cancel() epoch, so any of the three can stop the run.
struct RunOptions {
  std::chrono::milliseconds timeout{0};
  std::chrono::steady_clock::time_point deadline{};
  const CancelToken* cancel = nullptr;
};

struct ExecutorStats {
  std::uint64_t executes = 0;     ///< product executions, all paths
  std::uint64_t cache_hits = 0;   ///< fingerprint-verified plan reuses
  std::uint64_t cache_misses = 0; ///< full analyses (first touch included)
  std::uint64_t value_only_hits = 0;  ///< dims+nnz-matched fast-path runs
  std::uint64_t passthrough = 0;  ///< fixed non-pb ops (no fingerprint)
  std::uint64_t evictions = 0;
  std::uint64_t cache_entries = 0;  ///< plans currently cached
  std::uint64_t cache_bytes = 0;    ///< estimated bytes they occupy
  std::uint64_t bytes_evicted = 0;  ///< cumulative bytes reclaimed
  std::uint64_t batches = 0;      ///< run(problem, ops) calls
  std::uint64_t calibrations = 0; ///< automatic warmup refits performed
  std::uint64_t degraded_plans = 0;  ///< pb plans downgraded at plan time
  std::uint64_t degraded_runs = 0;   ///< runs that fell back mid-flight
  std::uint64_t oom_fallbacks = 0;   ///< degraded_runs caused by bad_alloc
  std::uint64_t cancelled = 0;       ///< runs unwound by cancel/deadline

  [[nodiscard]] double hit_ratio() const {
    const double looked = static_cast<double>(cache_hits + cache_misses);
    return looked > 0 ? static_cast<double>(cache_hits) / looked : 0.0;
  }
};

/// What one run()/prepare() did — the executor's per-call telemetry
/// (aggregate counters live in ExecutorStats).
struct RunInfo {
  std::string algo;        ///< the concrete algorithm that executed
  bool cache_hit = false;  ///< plan came from the cache (incl. value-only)
  bool value_only = false; ///< matched on dims+nnz, flop pass skipped
  bool passthrough = false;  ///< fixed non-pb op: nothing to cache
  bool used_pb = false;
  nnz_t flop = 0;
  double plan_seconds = 0;  ///< analysis cost when this call (re)planned
  /// Roofline prediction of the entry's choice / what this execute
  /// achieved (0 for prepare and for non-"auto" predictions).
  double predicted_mflops = 0;
  double achieved_mflops = 0;
  model::AlgoChoice choice;  ///< populated for "auto" entries
  pb::PbTelemetry pb_stats;  ///< per-phase telemetry when used_pb
  /// This call ran a downgraded kernel instead of the preferred PB path;
  /// degrade_reason is "budget" (plan-time: the stream cannot fit the
  /// memory budget) or "oom" (run-time: a workspace growth was rejected
  /// or threw, and the run re-executed through the row-wise fallback).
  bool degraded = false;
  std::string degrade_reason;
};

class SpGemmExecutor {
 public:
  explicit SpGemmExecutor(ExecutorOptions opts = {});
  ~SpGemmExecutor();
  SpGemmExecutor(const SpGemmExecutor&) = delete;
  SpGemmExecutor& operator=(const SpGemmExecutor&) = delete;

  /// Multiplies p under op, through the cached plan for (structure, op)
  /// when one exists (building and caching it otherwise).  Thread-safe.
  /// Throws like make_plan for unknown algorithms/semirings, unsupported
  /// pairs, or a mask whose shape does not match the product; throws
  /// std::logic_error when op.accumulate is set (use the accumulating
  /// overload).
  mtx::CsrMatrix run(const SpGemmProblem& p, const SpGemmOp& op = {},
                     RunInfo* info = nullptr);

  /// run with per-call deadline/cancellation controls: the run unwinds
  /// with DeadlineError/CancelledError (plan cache and workspace pool
  /// stay consistent; a following run on this executor is unaffected).
  mtx::CsrMatrix run(const SpGemmProblem& p, const SpGemmOp& op,
                     const RunOptions& ropts, RunInfo* info = nullptr);

  /// Accumulating run: c ⊞ (A ⊗ B under op's mask), the union-pattern
  /// combine with the op semiring's add.  When the plan executes PB the
  /// merge is fused into CSR conversion (the plain product is never
  /// materialized); row-wise paths post-pass through semiring_ewise_add.
  /// Both produce bit-identical results, and the cached plan is shared
  /// with non-accumulating runs of the same op.  Rejects ops with an
  /// active post_op (std::invalid_argument — prune/top-k over a merged C
  /// is ambiguous).
  mtx::CsrMatrix run(const SpGemmProblem& p, const SpGemmOp& op,
                     const mtx::CsrMatrix& accumulate_into,
                     RunInfo* info = nullptr);

  /// Batched descriptor execution: every op multiplied against p, sharing
  /// ONE analysis pass — the fingerprint's flop count, the row-flop
  /// histogram and the nnz(C) estimate are computed once and every op's
  /// selection (mask-aware per op) and symbolic build draw on them.  The
  /// executions then fan out over ExecutorOptions::batch_concurrency
  /// worker threads, each leasing its own PbWorkspace from the pool.
  /// Results are returned in op order; each (structure, op) plan lands in
  /// the cache, so subsequent single runs hit.  Accumulating descriptors
  /// are rejected here (std::logic_error) — batch results are products.
  std::vector<mtx::CsrMatrix> run(const SpGemmProblem& p,
                                  std::span<const SpGemmOp> ops);

  /// Batched run under deadline/cancellation: the first stopped or failed
  /// worker's error propagates after every in-flight op unwinds.
  std::vector<mtx::CsrMatrix> run(const SpGemmProblem& p,
                                  std::span<const SpGemmOp> ops,
                                  const RunOptions& ropts);

  /// Value-only fast path: the caller asserts p's operands have the SAME
  /// STRUCTURE as the most recent run of this op and only the numeric
  /// values changed.  The cached plan is matched on dims + nnz alone —
  /// the O(ncols) flop recount and the symbolic phase are both skipped —
  /// and only the numeric stages replay.  Falls back to the full path
  /// (fingerprint + replan) when no dims+nnz-matching entry is cached.
  /// The assertion is trusted: operands that moved nonzeros between rows
  /// at equal dims+nnz would be routed through a stale bin layout
  /// (undefined results) — exactly the StructureFingerprint contract,
  /// minus the flop term the caller vouches for.  An op with a post_op
  /// stays valid here even when it drops entries: the cached plan
  /// describes the *operands'* structure, and the post-op shapes only the
  /// output, downstream of everything the plan fixed.
  mtx::CsrMatrix run_values_updated(const SpGemmProblem& p,
                                    const SpGemmOp& op = {},
                                    RunInfo* info = nullptr);

  /// Value-only fast path under deadline/cancellation controls.
  mtx::CsrMatrix run_values_updated(const SpGemmProblem& p,
                                    const SpGemmOp& op,
                                    const RunOptions& ropts,
                                    RunInfo* info = nullptr);

  /// Requests cancellation of every in-flight run (they unwind with
  /// CancelledError at their next poll).  Runs started after this call
  /// are unaffected — the executor swaps in a fresh cancellation epoch.
  void cancel();

  /// Analyzes and caches the plan for (p, op) without executing — warms
  /// the cache, validates the op (same throws as run), and reports the
  /// selection through `info`.  make_plan primes its plan this way.
  void prepare(const SpGemmProblem& p, const SpGemmOp& op = {},
               RunInfo* info = nullptr);

  [[nodiscard]] ExecutorStats stats() const;

  /// Lease bookkeeping of the workspace pool (created vs reused).
  [[nodiscard]] pb::WorkspacePool::Stats pool_stats() const;

  /// Aggregated allocator counters of the pooled workspaces — the
  /// executor analogue of SpGemmPlan::workspace_stats().  Quiescent
  /// callers only (counters are written lock-free by in-flight runs).
  [[nodiscard]] pb::PbWorkspace::Stats workspace_stats() const;

  /// The recorded predicted-vs-achieved samples (most recent
  /// ExecutorOptions::max_samples), oldest first.
  [[nodiscard]] std::vector<model::PerfSample> samples() const;

  /// The selection model future analyses will use: per-op tunables with
  /// the derating constants replaced by calibrated values once a refit
  /// has run (reported relative to the default-constructed model).
  [[nodiscard]] model::SelectionModel selection_model() const;

  /// Refits the derating constants from the recorded samples now
  /// (regardless of calibrate_after) and applies them to future analyses.
  model::CalibrationResult calibrate();

 private:
  mtx::CsrMatrix run_product(const SpGemmProblem& p, const SpGemmOp& op,
                             RunInfo* info, bool values_only,
                             const RunOptions& ropts,
                             const mtx::CsrMatrix* accumulate = nullptr);

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pbs
