// HashVecSpGEMM — the vector-register-probing hash variant of [12].
//
// The original probes hash buckets with SIMD compares; here the 8-slot
// bucket-group scan in GroupedAccumulator is written so the compiler's
// auto-vectorizer produces the same wide compare (see hash_table.hpp).
#include "spgemm/hash_impl.hpp"
#include "spgemm/hash_table.hpp"
#include "spgemm/semiring_ops.hpp"

namespace pbs {

mtx::CsrMatrix hashvec_spgemm(const SpGemmProblem& p) {
  return detail::hash_spgemm_impl<PlusTimes, detail::GroupedAccumulator>(p);
}

}  // namespace pbs
