// The typed SpGEMM operation descriptor and the runtime semiring registry.
//
// The paper frames PB-SpGEMM as one kernel in a family of bandwidth-bound
// graph/linear-algebra operations; GraphBLAS-style systems (Buluç &
// Gilbert's Combinatorial BLAS, Azad et al.'s masked/fused kernels) show
// the API shape that family wants: one descriptor that composes
//
//   semiring      — which (add, mul, zero) the multiplication runs over,
//                   by name: a built-in ("plus_times", "min_plus",
//                   "max_min", "bool_or_and") or any semiring registered
//                   at runtime through SemiringRegistry
//   mask          — restrict the output to a pattern M (or, with
//                   `complement`, to the positions NOT in M) *fused into
//                   the kernels*: the Gustavson row loops skip
//                   accumulations outside the mask and the PB pipeline
//                   drops masked-out tuples at its compress stage, before
//                   CSR conversion
//   accumulate    — GraphBLAS-style C ⊞= A ⊗ B: execute(problem, c)
//                   combines the product into an existing matrix with the
//                   semiring's add over the union pattern
//   algo          — "auto" (roofline-guided, mask-density-aware) or a
//                   concrete registry algorithm
//
// so every variant — plain, masked, accumulating, custom-semiring — flows
// through the same plan/execute machinery:
//
//   SpGemmOp op;                       // algo = "auto" by default
//   op.semiring = "min_plus";
//   op.mask = &m;                      // optional; op.complement flips it
//   SpGemmPlan plan = make_plan(problem, op);   // spgemm/plan.hpp
//   auto c = plan.execute(problem);
//
// The pre-descriptor entry points (`semiring_algorithm`, `spgemm_masked`,
// `PlanOptions`) survive as thin shims over this path.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "matrix/csr.hpp"
#include "model/selection.hpp"
#include "pb/pb_config.hpp"
#include "spgemm/semiring_ops.hpp"

namespace pbs {

/// A semiring as a runtime value: type-erased add/mul closures plus the
/// additive identity.  The four compiled-in semirings are pre-registered
/// with `builtin = true`, which lets dispatch recover the fully templated
/// kernels (the closures still work, so generic code never branches);
/// user-registered semirings execute through the same kernels via the
/// DynSemiring bridge below.
struct RuntimeSemiring {
  std::string name;
  value_t zero = 0.0;
  std::function<value_t(value_t, value_t)> add;  ///< associative, commutative
  std::function<value_t(value_t, value_t)> mul;  ///< distributes over add
  /// Set by the registry for the built-in four; dispatch uses it as a fast
  /// path to the compiled kernels.  User registrations leave it false.
  bool builtin = false;
  /// Declares the semiring value-free (idempotent-structural): every
  /// output value is the present-value 1.0, determined by structure alone
  /// — add and mul of nonzeros must yield exactly 1.0.  Legalizes the 8 B
  /// key-only tuple stream (pb/tuple.hpp).  Registrants opt in; the
  /// registry sets it for bool_or_and.
  bool value_free = false;
};

/// Process-wide name -> semiring table.  Pre-seeded with the built-in
/// four; `register_semiring` adds user semirings, after which every
/// name-keyed entry point in the library (make_plan, semiring_algorithm,
/// pbs_cli --semiring) accepts the new name.  Registration is guarded by a
/// mutex; registered semirings are never removed, so the pointers and
/// references handed out stay valid for the process lifetime.
class SemiringRegistry {
 public:
  static SemiringRegistry& instance();

  /// Registers `s`.  Throws std::invalid_argument when the name is empty,
  /// already registered, or either closure is missing.
  void register_semiring(RuntimeSemiring s);

  /// nullptr when `name` is not registered.
  const RuntimeSemiring* find(const std::string& name) const noexcept;

  /// Throws std::invalid_argument listing every registered name on a miss.
  const RuntimeSemiring& at(const std::string& name) const;

  [[nodiscard]] bool contains(const std::string& name) const noexcept {
    return find(name) != nullptr;
  }

  /// All registered names, built-ins first, then user semirings in
  /// registration order.
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  SemiringRegistry();
  struct Impl;
  Impl* impl_;
};

/// True iff `name` is a built-in or runtime-registered semiring.
bool is_registered_semiring(const std::string& name);

/// True iff `name` is a registered semiring flagged value-free
/// (RuntimeSemiring::value_free) — bool_or_and, or a user semiring that
/// opted in at registration.  False for unknown names.
bool semiring_value_free(const std::string& name);

namespace detail {

/// The semiring DynSemiring forwards to.  A plain global (not
/// thread_local: OpenMP worker threads inside a kernel must see the value
/// the spawning thread set).  Executions over *different* runtime
/// semirings must not overlap — the same single-pipeline contract
/// PbWorkspace already imposes.
extern const RuntimeSemiring* g_active_semiring;

/// RAII activation of a runtime semiring around one kernel invocation.
class ScopedSemiring {
 public:
  explicit ScopedSemiring(const RuntimeSemiring* s) : prev_(g_active_semiring) {
    g_active_semiring = s;
  }
  ~ScopedSemiring() { g_active_semiring = prev_; }
  ScopedSemiring(const ScopedSemiring&) = delete;
  ScopedSemiring& operator=(const ScopedSemiring&) = delete;

 private:
  const RuntimeSemiring* prev_;
};

}  // namespace detail

/// The bridge that runs *runtime-registered* semirings through the
/// library's semiring-templated kernels: one extra instantiation whose
/// scalar ops indirect through the active RuntimeSemiring's closures.
/// Never use directly — dispatch_semiring_any activates the right semiring
/// around the call.
struct DynSemiring {
  static constexpr const char* name = "<runtime>";
  static value_t zero() { return detail::g_active_semiring->zero; }
  static value_t add(value_t a, value_t b) {
    return detail::g_active_semiring->add(a, b);
  }
  static value_t mul(value_t a, value_t b) {
    return detail::g_active_semiring->mul(a, b);
  }
  /// Runtime answer for semiring_is_value_free<DynSemiring>(): whatever
  /// the active registration declared.
  static bool value_free() {
    return detail::g_active_semiring != nullptr &&
           detail::g_active_semiring->value_free;
  }
};

/// dispatch_semiring extended to the runtime registry: built-in names get
/// the compiled instantiation (identical codegen to before), registered
/// user semirings run fn with DynSemiring under a scoped activation.
/// Throws std::invalid_argument listing every registered name on a miss.
/// The whole kernel must execute inside `fn` — do not capture and call the
/// returned value later without re-dispatching.
template <typename Fn>
decltype(auto) dispatch_semiring_any(const std::string& name, Fn&& fn) {
  if (is_semiring_name(name)) {
    return dispatch_semiring(name, std::forward<Fn>(fn));
  }
  const RuntimeSemiring& rs = SemiringRegistry::instance().at(name);
  detail::ScopedSemiring guard(&rs);
  return fn.template operator()<DynSemiring>();
}

/// The operation descriptor: everything that defines one SpGEMM variant.
/// `make_plan(problem, op)` (spgemm/plan.hpp) is the one entry point; the
/// legacy PlanOptions name is an alias of this struct.
struct SpGemmOp {
  /// "auto" (roofline-guided selection, mask-density-aware when a mask is
  /// set) or any registry algorithm name; unknown names and unsupported
  /// (algo, semiring) pairs throw at plan time, never at execute time.
  std::string algo = "auto";

  /// Built-in or runtime-registered semiring name.
  std::string semiring = PlusTimes::name;

  /// Output mask: C is restricted to mask's pattern (values ignored).
  /// Non-owning — must outlive the plan.  Shape must match the product
  /// (checked at plan time).  nullptr = unmasked.
  const mtx::CsrMatrix* mask = nullptr;

  /// With a mask set: keep the positions NOT in the mask's pattern
  /// (GraphBLAS complemented mask).
  bool complement = false;

  /// Declares the op accumulating: execute(problem, c) combines the
  /// product into c with the semiring's add; the single-argument
  /// execute(problem) then throws std::logic_error (the descriptor
  /// promised an accumulation target).
  bool accumulate = false;

  /// Elementwise post-op (scale / prune / top-k, common/post_op.hpp)
  /// applied to the product before it is returned — fused into the
  /// kernels, so a pruning op never materializes the unpruned C.  Applies
  /// after the mask; rejected at plan time for value-free semirings
  /// (there are no values to scale or compare) and in combination with
  /// accumulate (prune/top-k over a merged C is ambiguous).
  PostOp post_op;

  /// Configuration for the PB pipeline when it is (or may be) chosen.
  pb::PbConfig pb;

  /// Selection tunables (β, derating efficiencies, small-flop cutoff).
  model::SelectionModel model;
};

/// C = A ⊞ B over the named semiring's add: union of patterns, positions
/// present in both operands combined with add, positions present in one
/// copied through — the accumulate step of SpGemmOp.  Requires matching
/// shapes.
mtx::CsrMatrix semiring_ewise_add(const std::string& semiring,
                                  const mtx::CsrMatrix& a,
                                  const mtx::CsrMatrix& b);

}  // namespace pbs
