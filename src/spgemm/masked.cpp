#include "spgemm/masked.hpp"

#include <omp.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "spgemm/assemble.hpp"
#include "spgemm/op.hpp"
#include "spgemm/plan.hpp"

namespace pbs {

namespace detail {

void check_mask_shape(const char* who, const SpGemmProblem& p,
                      const mtx::CsrMatrix& mask) {
  if (mask.nrows != p.a_csr.nrows || mask.ncols != p.b_csr.ncols) {
    throw std::invalid_argument(std::string(who) + ": mask shape mismatch");
  }
}

}  // namespace detail

template <typename S>
mtx::CsrMatrix spgemm_masked_semiring(const mtx::CsrMatrix& a,
                                      const mtx::CsrMatrix& b,
                                      const mtx::CsrMatrix& mask,
                                      bool complement) {
  if (a.ncols != b.nrows) {
    throw std::invalid_argument("spgemm_masked: inner dimensions differ");
  }
  if (mask.nrows != a.nrows || mask.ncols != b.ncols) {
    throw std::invalid_argument("spgemm_masked: mask shape mismatch");
  }

  // Row r: stamp the mask's columns as allowed, then run the usual row-wise
  // Gustavson accumulation, dropping every product whose column is not
  // stamped.  Work is O(flop) probes but only O(nnz(mask(r,:))) accumulator
  // slots.  A second stamp array distinguishes "allowed" from "allowed and
  // already accumulated" so exact cancellation to S::zero() stays
  // structural.
  struct Scratch {
    std::vector<value_t> dense;
    std::vector<index_t> allowed;  // allowed[c] == r  =>  mask has (r, c)
    std::vector<index_t> seen;     // seen[c] == r     =>  c already in hit
    std::vector<index_t> hit;
  };
  std::vector<Scratch> scratch(static_cast<std::size_t>(max_threads()));

  return detail::assemble_rowwise(
      a.nrows, b.ncols, [&](index_t r, detail::BlockBuffer& buf) {
        Scratch& s = scratch[static_cast<std::size_t>(omp_get_thread_num())];
        if (s.dense.empty()) {
          s.dense.assign(static_cast<std::size_t>(b.ncols), S::zero());
          s.allowed.assign(static_cast<std::size_t>(b.ncols), -1);
          s.seen.assign(static_cast<std::size_t>(b.ncols), -1);
        }
        const auto mask_cols = mask.row_cols(r);
        if (!complement && mask_cols.empty()) return;
        for (const index_t c : mask_cols) s.allowed[c] = r;
        s.hit.clear();

        for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
          const index_t k = a.colids[i];
          const value_t av = a.vals[i];
          for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j) {
            const index_t c = b.colids[j];
            // Plain mask keeps stamped columns; complemented drops them.
            if ((s.allowed[c] == r) == complement) continue;
            const value_t product = S::mul(av, b.vals[j]);
            if (s.seen[c] != r) {
              s.seen[c] = r;
              s.dense[c] = product;
              s.hit.push_back(c);
            } else {
              s.dense[c] = S::add(s.dense[c], product);
            }
          }
        }

        std::sort(s.hit.begin(), s.hit.end());
        for (const index_t c : s.hit) {
          buf.cols.push_back(c);
          buf.vals.push_back(s.dense[c]);
        }
      });
}

template mtx::CsrMatrix spgemm_masked_semiring<PlusTimes>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&, const mtx::CsrMatrix&, bool);
template mtx::CsrMatrix spgemm_masked_semiring<MinPlus>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&, const mtx::CsrMatrix&, bool);
template mtx::CsrMatrix spgemm_masked_semiring<MaxMin>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&, const mtx::CsrMatrix&, bool);
template mtx::CsrMatrix spgemm_masked_semiring<BoolOrAnd>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&, const mtx::CsrMatrix&, bool);
// The runtime-semiring bridge (spgemm/op.hpp).
template mtx::CsrMatrix spgemm_masked_semiring<DynSemiring>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&, const mtx::CsrMatrix&, bool);

mtx::CsrMatrix spgemm_masked(const mtx::CsrMatrix& a, const mtx::CsrMatrix& b,
                             const mtx::CsrMatrix& mask, bool complement) {
  // Shim over the descriptor path: same SPA kernel the pre-descriptor
  // implementation ran, now reached through SpGemmOp.
  const SpGemmProblem p = SpGemmProblem::multiply(a, b);
  SpGemmOp op;
  op.algo = "spa";
  op.mask = &mask;
  op.complement = complement;
  return make_plan(p, op).execute(p);
}

}  // namespace pbs
