// Semiring-generalized SpGEMM kernels.
//
// The semiring operator structs themselves live in semiring_ops.hpp (they
// are shared with the propagation-blocking pipeline in pb/); this header
// declares the semiring-templated *algorithms* of the Gustavson family:
//
//   spgemm_semiring<S>          — row-wise dense accumulator (generalized
//                                 SPA); the fast validation fallback
//   heap_spgemm_semiring<S>     — row-wise k-way heap merge
//   hash_spgemm_semiring<S>     — two-phase hash accumulation: the keyed
//                                 insert stays structural, the combine on
//                                 an occupied slot becomes S::add
//   reference_spgemm_semiring<S>— serial ordered-map gold standard, the
//                                 direct oracle for non-numeric semirings
//
// The bandwidth-optimized PB pipeline's semiring form, pb_spgemm<S>, is
// declared in pb/pb_spgemm.hpp; runtime (algorithm × semiring) dispatch —
// including semirings registered at runtime (spgemm/op.hpp) — is in
// spgemm/registry.hpp.
//
// All kernels keep entries whose accumulated value equals S::zero()
// (structural presence mirrors the numeric convention for exact
// cancellation), so the output pattern is semiring- and
// algorithm-independent.
#pragma once

#include <string>

#include "spgemm/semiring_ops.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

/// C = A ⊗ B over semiring S (row-wise Gustavson with a dense
/// accumulator, OpenMP-parallel).  Requires a.ncols == b.nrows.
template <typename S>
mtx::CsrMatrix spgemm_semiring(const mtx::CsrMatrix& a,
                               const mtx::CsrMatrix& b);

// Instantiated in semiring.cpp for the four semirings above.
extern template mtx::CsrMatrix spgemm_semiring<PlusTimes>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&);
extern template mtx::CsrMatrix spgemm_semiring<MinPlus>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&);
extern template mtx::CsrMatrix spgemm_semiring<MaxMin>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&);
extern template mtx::CsrMatrix spgemm_semiring<BoolOrAnd>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&);

/// Row-wise Gustavson with a k-way heap merge over semiring S — the
/// generalized form of heap_spgemm (see heap.cpp).
template <typename S>
mtx::CsrMatrix heap_spgemm_semiring(const SpGemmProblem& p);

// Instantiated in heap.cpp.
extern template mtx::CsrMatrix heap_spgemm_semiring<PlusTimes>(
    const SpGemmProblem&);
extern template mtx::CsrMatrix heap_spgemm_semiring<MinPlus>(
    const SpGemmProblem&);
extern template mtx::CsrMatrix heap_spgemm_semiring<MaxMin>(
    const SpGemmProblem&);
extern template mtx::CsrMatrix heap_spgemm_semiring<BoolOrAnd>(
    const SpGemmProblem&);

/// Row-wise Gustavson with two-phase hash accumulation over semiring S —
/// the generalized form of hash_spgemm (see hash.cpp): symbolic keyed
/// inserts are pure structure, numeric slot hits combine with S::add.
template <typename S>
mtx::CsrMatrix hash_spgemm_semiring(const SpGemmProblem& p);

// Instantiated in hash.cpp.
extern template mtx::CsrMatrix hash_spgemm_semiring<PlusTimes>(
    const SpGemmProblem&);
extern template mtx::CsrMatrix hash_spgemm_semiring<MinPlus>(
    const SpGemmProblem&);
extern template mtx::CsrMatrix hash_spgemm_semiring<MaxMin>(
    const SpGemmProblem&);
extern template mtx::CsrMatrix hash_spgemm_semiring<BoolOrAnd>(
    const SpGemmProblem&);

/// Serial ordered-map gold standard over semiring S — the direct oracle
/// for validating non-numeric semirings (generalized reference_spgemm;
/// O(flop log d), validation scale only).
template <typename S>
mtx::CsrMatrix reference_spgemm_semiring(const SpGemmProblem& p);

// Instantiated in reference.cpp.
extern template mtx::CsrMatrix reference_spgemm_semiring<PlusTimes>(
    const SpGemmProblem&);
extern template mtx::CsrMatrix reference_spgemm_semiring<MinPlus>(
    const SpGemmProblem&);
extern template mtx::CsrMatrix reference_spgemm_semiring<MaxMin>(
    const SpGemmProblem&);
extern template mtx::CsrMatrix reference_spgemm_semiring<BoolOrAnd>(
    const SpGemmProblem&);

/// Runtime dispatch by semiring name — built-in or registered through
/// SemiringRegistry (spgemm/op.hpp); throws std::invalid_argument on
/// unknown names.
mtx::CsrMatrix spgemm_semiring_named(const std::string& semiring,
                                     const mtx::CsrMatrix& a,
                                     const mtx::CsrMatrix& b);

}  // namespace pbs
