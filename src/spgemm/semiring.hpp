// Semiring-generalized SpGEMM kernels.
//
// The semiring operator structs themselves live in semiring_ops.hpp (they
// are shared with the propagation-blocking pipeline in pb/); this header
// declares the semiring-templated *algorithms* of the Gustavson family:
//
//   spgemm_semiring<S>       — row-wise dense accumulator (generalized SPA);
//                              the validation fallback every other
//                              generalized kernel is tested against
//   heap_spgemm_semiring<S>  — row-wise k-way heap merge (generalized Heap)
//
// The bandwidth-optimized PB pipeline's semiring form, pb_spgemm<S>, is
// declared in pb/pb_spgemm.hpp; runtime (algorithm × semiring) dispatch is
// in spgemm/registry.hpp.
//
// All kernels keep entries whose accumulated value equals S::zero()
// (structural presence mirrors the numeric convention for exact
// cancellation), so the output pattern is semiring- and
// algorithm-independent.
#pragma once

#include <string>

#include "spgemm/semiring_ops.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

/// C = A ⊗ B over semiring S (row-wise Gustavson with a dense
/// accumulator, OpenMP-parallel).  Requires a.ncols == b.nrows.
template <typename S>
mtx::CsrMatrix spgemm_semiring(const mtx::CsrMatrix& a,
                               const mtx::CsrMatrix& b);

// Instantiated in semiring.cpp for the four semirings above.
extern template mtx::CsrMatrix spgemm_semiring<PlusTimes>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&);
extern template mtx::CsrMatrix spgemm_semiring<MinPlus>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&);
extern template mtx::CsrMatrix spgemm_semiring<MaxMin>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&);
extern template mtx::CsrMatrix spgemm_semiring<BoolOrAnd>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&);

/// Row-wise Gustavson with a k-way heap merge over semiring S — the
/// generalized form of heap_spgemm (see heap.cpp).
template <typename S>
mtx::CsrMatrix heap_spgemm_semiring(const SpGemmProblem& p);

// Instantiated in heap.cpp.
extern template mtx::CsrMatrix heap_spgemm_semiring<PlusTimes>(
    const SpGemmProblem&);
extern template mtx::CsrMatrix heap_spgemm_semiring<MinPlus>(
    const SpGemmProblem&);
extern template mtx::CsrMatrix heap_spgemm_semiring<MaxMin>(
    const SpGemmProblem&);
extern template mtx::CsrMatrix heap_spgemm_semiring<BoolOrAnd>(
    const SpGemmProblem&);

/// Runtime dispatch by semiring name ("plus_times", "min_plus", "max_min",
/// "bool_or_and"); throws std::invalid_argument on unknown names.
mtx::CsrMatrix spgemm_semiring_named(const std::string& semiring,
                                     const mtx::CsrMatrix& a,
                                     const mtx::CsrMatrix& b);

}  // namespace pbs
