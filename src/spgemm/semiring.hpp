// Semiring-generalized SpGEMM.
//
// The paper's motivating applications replace (+, ×) with other semirings:
// multi-source BFS runs over the boolean (∨, ∧) semiring [3], shortest
// paths over (min, +), and bottleneck paths over (max, min).  The
// propagation-blocking pipeline itself is semiring-agnostic — only the
// "multiply" in expand and the "add" in compress change — so the library
// exposes a generalized row-wise kernel usable wherever numeric SpGEMM is.
//
// A semiring supplies:
//   value_t zero()            — additive identity (annihilator of mul)
//   value_t add(a, b)         — associative, commutative
//   value_t mul(a, b)         — distributes over add
//
// Entries whose accumulated value equals zero() are kept (structural
// presence mirrors the numeric SpGEMM convention for exact cancellation).
#pragma once

#include <algorithm>
#include <limits>
#include <string>

#include "spgemm/spgemm.hpp"

namespace pbs {

/// The ordinary arithmetic semiring — spgemm_semiring<PlusTimes> computes
/// exactly what the numeric algorithms compute.
struct PlusTimes {
  static constexpr const char* name = "plus_times";
  static value_t zero() { return 0.0; }
  static value_t add(value_t a, value_t b) { return a + b; }
  static value_t mul(value_t a, value_t b) { return a * b; }
};

/// Tropical semiring: path relaxation.  (A ⊗ B)(i,j) = min_k A(i,k)+B(k,j)
/// — one step of all-pairs shortest paths.
struct MinPlus {
  static constexpr const char* name = "min_plus";
  static value_t zero() { return std::numeric_limits<value_t>::infinity(); }
  static value_t add(value_t a, value_t b) { return std::min(a, b); }
  static value_t mul(value_t a, value_t b) { return a + b; }
};

/// Bottleneck semiring: widest-path capacity.
struct MaxMin {
  static constexpr const char* name = "max_min";
  static value_t zero() { return -std::numeric_limits<value_t>::infinity(); }
  static value_t add(value_t a, value_t b) { return std::max(a, b); }
  static value_t mul(value_t a, value_t b) { return std::min(a, b); }
};

/// Boolean semiring on {0.0, 1.0}: reachability / frontier expansion.
struct BoolOrAnd {
  static constexpr const char* name = "bool_or_and";
  static value_t zero() { return 0.0; }
  static value_t add(value_t a, value_t b) {
    return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
  }
  static value_t mul(value_t a, value_t b) {
    return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
  }
};

/// C = A ⊗ B over semiring S (row-wise Gustavson with a dense
/// accumulator, OpenMP-parallel).  Requires a.ncols == b.nrows.
template <typename S>
mtx::CsrMatrix spgemm_semiring(const mtx::CsrMatrix& a,
                               const mtx::CsrMatrix& b);

// Instantiated in semiring.cpp for the four semirings above.
extern template mtx::CsrMatrix spgemm_semiring<PlusTimes>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&);
extern template mtx::CsrMatrix spgemm_semiring<MinPlus>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&);
extern template mtx::CsrMatrix spgemm_semiring<MaxMin>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&);
extern template mtx::CsrMatrix spgemm_semiring<BoolOrAnd>(
    const mtx::CsrMatrix&, const mtx::CsrMatrix&);

/// Runtime dispatch by semiring name ("plus_times", "min_plus", "max_min",
/// "bool_or_and"); throws std::invalid_argument on unknown names.
mtx::CsrMatrix spgemm_semiring_named(const std::string& semiring,
                                     const mtx::CsrMatrix& a,
                                     const mtx::CsrMatrix& b);

}  // namespace pbs
