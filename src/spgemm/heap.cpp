// HeapSpGEMM — row-wise Gustavson with a k-way heap merge (paper Sec. IV-A,
// after Azad et al. [22]).
//
// For each output row r, the rows B(k,:) selected by A(r,:) form nnz(A(r,:))
// sorted runs; a binary min-heap on the current column id of each run merges
// them in one pass, emitting columns in ascending order and combining
// duplicates as they surface consecutively.  Complexity O(flop · log d).
//
// The kernel is semiring-templated (heap_spgemm_semiring<S>): merging is
// pure structure, so generalizing costs exactly the two scalar ops — the
// run's scale multiply becomes S::mul and the duplicate accumulation
// S::add.  heap_spgemm is the numeric (+, ×) instantiation.
#include <omp.h>

#include <vector>

#include "common/parallel.hpp"
#include "spgemm/assemble.hpp"
#include "spgemm/masked.hpp"
#include "spgemm/op.hpp"
#include "spgemm/semiring.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

namespace {

// One merge run: a cursor into B(k,:) plus the scaling value A(r,k).
struct Run {
  nnz_t cur;
  nnz_t end;
  value_t scale;
};

// Binary min-heap of run indices ordered by the run's current column.
class RunHeap {
 public:
  void reset() { heap_.clear(); }

  void push(int run, index_t col) {
    heap_.push_back({col, run});
    sift_up(heap_.size() - 1);
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] index_t top_col() const { return heap_.front().col; }
  [[nodiscard]] int top_run() const { return heap_.front().run; }

  void pop() {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  /// Replaces the top (cheaper than pop+push when a run advances).
  void replace_top(index_t col) {
    heap_.front().col = col;
    sift_down(0);
  }

 private:
  struct Node {
    index_t col;
    int run;
  };

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_[parent].col <= heap_[i].col) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t smallest = i;
      const std::size_t l = 2 * i + 1, r = 2 * i + 2;
      if (l < n && heap_[l].col < heap_[smallest].col) smallest = l;
      if (r < n && heap_[r].col < heap_[smallest].col) smallest = r;
      if (smallest == i) return;
      std::swap(heap_[i], heap_[smallest]);
      i = smallest;
    }
  }

  std::vector<Node> heap_;
};

}  // namespace

template <typename S>
mtx::CsrMatrix heap_spgemm_semiring(const SpGemmProblem& p) {
  const mtx::CsrMatrix& a = p.a_csr;
  const mtx::CsrMatrix& b = p.b_csr;

  // Thread-private scratch reused across that thread's rows.
  struct Scratch {
    std::vector<Run> runs;
    RunHeap heap;
  };
  // assemble_rowwise parallelizes over row blocks; scratch lives in
  // thread-local storage keyed by omp thread id.
  std::vector<Scratch> scratch(static_cast<std::size_t>(max_threads()));

  return detail::assemble_rowwise(
      a.nrows, b.ncols, [&](index_t r, detail::BlockBuffer& buf) {
        Scratch& s = scratch[static_cast<std::size_t>(omp_get_thread_num())];
        s.runs.clear();
        s.heap.reset();

        for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
          const index_t k = a.colids[i];
          const nnz_t lo = b.rowptr[k];
          const nnz_t hi = b.rowptr[static_cast<std::size_t>(k) + 1];
          if (lo == hi) continue;
          s.heap.push(static_cast<int>(s.runs.size()), b.colids[lo]);
          s.runs.push_back(Run{lo, hi, a.vals[i]});
        }

        while (!s.heap.empty()) {
          const index_t col = s.heap.top_col();
          // Drain every run currently sitting on `col`, combining the
          // first contribution directly so S::zero() never enters the
          // accumulation (it is an identity, but this keeps the numeric
          // instantiation bit-identical to the pre-semiring kernel).
          bool first = true;
          value_t acc = S::zero();
          while (!s.heap.empty() && s.heap.top_col() == col) {
            const int ri = s.heap.top_run();
            Run& run = s.runs[static_cast<std::size_t>(ri)];
            const value_t product = S::mul(run.scale, b.vals[run.cur]);
            acc = first ? product : S::add(acc, product);
            first = false;
            ++run.cur;
            if (run.cur < run.end) {
              s.heap.replace_top(b.colids[run.cur]);
            } else {
              s.heap.pop();
            }
          }
          buf.cols.push_back(col);
          buf.vals.push_back(acc);
        }
      });
}

template mtx::CsrMatrix heap_spgemm_semiring<PlusTimes>(const SpGemmProblem&);
template mtx::CsrMatrix heap_spgemm_semiring<MinPlus>(const SpGemmProblem&);
template mtx::CsrMatrix heap_spgemm_semiring<MaxMin>(const SpGemmProblem&);
template mtx::CsrMatrix heap_spgemm_semiring<BoolOrAnd>(const SpGemmProblem&);
// The runtime-semiring bridge (spgemm/op.hpp).
template mtx::CsrMatrix heap_spgemm_semiring<DynSemiring>(const SpGemmProblem&);

mtx::CsrMatrix heap_spgemm(const SpGemmProblem& p) {
  return heap_spgemm_semiring<PlusTimes>(p);
}

template <typename S>
mtx::CsrMatrix heap_masked_semiring(const SpGemmProblem& p,
                                    const mtx::CsrMatrix& mask,
                                    bool complement) {
  detail::check_mask_shape("heap_masked_semiring", p, mask);
  const mtx::CsrMatrix& a = p.a_csr;
  const mtx::CsrMatrix& b = p.b_csr;

  // The merge must still walk every run (structure drives the heap), but
  // masked-out columns are dropped as they surface, skipping their
  // accumulation and emission.  The shared MaskStamp makes the per-column
  // test O(1).
  struct Scratch {
    std::vector<Run> runs;
    RunHeap heap;
    detail::MaskStamp stamp;
  };
  std::vector<Scratch> scratch(static_cast<std::size_t>(max_threads()));

  return detail::assemble_rowwise(
      a.nrows, b.ncols, [&](index_t r, detail::BlockBuffer& buf) {
        Scratch& s = scratch[static_cast<std::size_t>(omp_get_thread_num())];
        if (!complement && mask.row_nnz(r) == 0) return;
        s.stamp.stamp_row(mask, r);
        s.runs.clear();
        s.heap.reset();

        for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
          const index_t k = a.colids[i];
          const nnz_t lo = b.rowptr[k];
          const nnz_t hi = b.rowptr[static_cast<std::size_t>(k) + 1];
          if (lo == hi) continue;
          s.heap.push(static_cast<int>(s.runs.size()), b.colids[lo]);
          s.runs.push_back(Run{lo, hi, a.vals[i]});
        }

        while (!s.heap.empty()) {
          const index_t col = s.heap.top_col();
          const bool keep = !s.stamp.skip(r, col, complement);
          bool first = true;
          value_t acc = S::zero();
          while (!s.heap.empty() && s.heap.top_col() == col) {
            const int ri = s.heap.top_run();
            Run& run = s.runs[static_cast<std::size_t>(ri)];
            if (keep) {
              const value_t product = S::mul(run.scale, b.vals[run.cur]);
              acc = first ? product : S::add(acc, product);
              first = false;
            }
            ++run.cur;
            if (run.cur < run.end) {
              s.heap.replace_top(b.colids[run.cur]);
            } else {
              s.heap.pop();
            }
          }
          if (keep) {
            buf.cols.push_back(col);
            buf.vals.push_back(acc);
          }
        }
      });
}

template mtx::CsrMatrix heap_masked_semiring<PlusTimes>(const SpGemmProblem&,
                                                        const mtx::CsrMatrix&,
                                                        bool);
template mtx::CsrMatrix heap_masked_semiring<MinPlus>(const SpGemmProblem&,
                                                      const mtx::CsrMatrix&,
                                                      bool);
template mtx::CsrMatrix heap_masked_semiring<MaxMin>(const SpGemmProblem&,
                                                     const mtx::CsrMatrix&,
                                                     bool);
template mtx::CsrMatrix heap_masked_semiring<BoolOrAnd>(const SpGemmProblem&,
                                                        const mtx::CsrMatrix&,
                                                        bool);
template mtx::CsrMatrix heap_masked_semiring<DynSemiring>(
    const SpGemmProblem&, const mtx::CsrMatrix&, bool);

}  // namespace pbs
