// "Buffer and stitch" CSR assembly shared by the single-pass row-wise
// algorithms (heap, SPA, ESC).
//
// Rows are processed in fixed blocks; each block appends its entries to a
// private buffer, so no symbolic pass is needed and results are independent
// of the OpenMP schedule.  A final prefix-sum + parallel copy stitches the
// blocks into one canonical CSR matrix.
#pragma once

#include <algorithm>
#include <vector>

#include "common/prefix_sum.hpp"
#include "matrix/csr.hpp"

namespace pbs::detail {

inline constexpr index_t kRowsPerBlock = 256;

struct BlockBuffer {
  std::vector<index_t> cols;
  std::vector<value_t> vals;
  std::vector<nnz_t> row_counts;  // per row in the block
};

/// Runs `body(row, block_buffer)` for every row (grouped in blocks, blocks
/// in parallel); `body` must append the row's entries in ascending column
/// order and push the row count.  Returns the assembled CSR.
template <typename RowFn>
mtx::CsrMatrix assemble_rowwise(index_t nrows, index_t ncols, RowFn body) {
  const index_t nblocks =
      nrows == 0 ? 0 : (nrows + kRowsPerBlock - 1) / kRowsPerBlock;
  std::vector<BlockBuffer> blocks(static_cast<std::size_t>(nblocks));

#pragma omp parallel for schedule(dynamic, 1)
  for (index_t blk = 0; blk < nblocks; ++blk) {
    BlockBuffer& buf = blocks[blk];
    const index_t lo = blk * kRowsPerBlock;
    const index_t hi = std::min<index_t>(nrows, lo + kRowsPerBlock);
    buf.row_counts.reserve(static_cast<std::size_t>(hi - lo));
    for (index_t r = lo; r < hi; ++r) {
      const std::size_t before = buf.cols.size();
      body(r, buf);
      buf.row_counts.push_back(static_cast<nnz_t>(buf.cols.size() - before));
    }
  }

  mtx::CsrMatrix out(nrows, ncols);
  // Stitch: block base offsets, then per-row pointers, then parallel copy.
  std::vector<nnz_t> block_base(static_cast<std::size_t>(nblocks) + 1, 0);
  for (index_t blk = 0; blk < nblocks; ++blk)
    block_base[static_cast<std::size_t>(blk)] =
        static_cast<nnz_t>(blocks[blk].cols.size());
  exclusive_scan_inplace(block_base.data(), static_cast<std::size_t>(nblocks));
  const nnz_t total = block_base[static_cast<std::size_t>(nblocks)];

  out.colids.resize(static_cast<std::size_t>(total));
  out.vals.resize(static_cast<std::size_t>(total));

#pragma omp parallel for schedule(dynamic, 1)
  for (index_t blk = 0; blk < nblocks; ++blk) {
    const BlockBuffer& buf = blocks[blk];
    const index_t lo = blk * kRowsPerBlock;
    nnz_t pos = block_base[blk];
    // Row pointers for this block's rows.
    nnz_t acc = pos;
    for (std::size_t i = 0; i < buf.row_counts.size(); ++i) {
      out.rowptr[static_cast<std::size_t>(lo) + i + 1] = acc + buf.row_counts[i];
      acc += buf.row_counts[i];
    }
    std::copy(buf.cols.begin(), buf.cols.end(), out.colids.begin() + pos);
    std::copy(buf.vals.begin(), buf.vals.end(), out.vals.begin() + pos);
  }

  // rowptr[r+1] was only written for rows inside blocks; rowptr[0] is 0 and
  // empty trailing rows (when nrows == 0) need no fixup.  Rows are covered
  // exactly once by construction.
  return out;
}

}  // namespace pbs::detail
