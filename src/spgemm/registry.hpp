// Name -> algorithm registry shared by benches, tests and examples.
#pragma once

#include <string>
#include <vector>

#include "spgemm/spgemm.hpp"

namespace pbs {

struct AlgoInfo {
  std::string name;
  std::string description;
  SpGemmFn fn;
  /// False for algorithms that are quadratic-ish and only suitable for
  /// validation-scale inputs (reference, outer_heap).
  bool scales_to_large = true;
};

/// All registered algorithms.  "pb" is the paper's contribution; "heap",
/// "hash", "hashvec" are the paper's comparators; the rest complete
/// Table I.
const std::vector<AlgoInfo>& algorithms();

/// Lookup by name; throws std::invalid_argument with the list of valid
/// names on a miss.
const AlgoInfo& algorithm(const std::string& name);

/// The four algorithms the paper's figures compare.
std::vector<AlgoInfo> paper_comparison_set();

}  // namespace pbs
