// Name -> algorithm registry shared by benches, tests, examples and the
// CLI, with unified (algorithm × semiring) dispatch.
//
// Every algorithm is registered with the set of semirings it supports.
// The bandwidth-optimized PB pipeline and the generalized Gustavson
// kernels (heap, hash, spa, reference) support every *registered* semiring
// — the built-in four plus anything added through SemiringRegistry
// (spgemm/op.hpp) at runtime; the remaining baselines are numeric (+, ×)
// only and say so in their lookup error rather than silently falling back.
#pragma once

#include <string>
#include <vector>

#include "spgemm/semiring_ops.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

struct AlgoInfo {
  std::string name;
  std::string description;
  /// The numeric (+, ×) kernel — what the paper's figures measure.
  SpGemmFn fn;
  /// False for algorithms that are quadratic-ish and only suitable for
  /// validation-scale inputs (reference, outer_heap).
  bool scales_to_large = true;
  /// Names of the built-in semirings this algorithm supports (always
  /// contains "plus_times"; see semiring_algorithm for the generalized
  /// kernels).
  std::vector<std::string> semirings = {PlusTimes::name};
  /// True when the algorithm's kernel is semiring-templated: it then also
  /// accepts every semiring registered at runtime (SemiringRegistry),
  /// executed through the DynSemiring bridge.
  bool generalized = false;

  [[nodiscard]] bool supports_semiring(const std::string& semiring) const;
};

/// All registered algorithms.  "pb" is the paper's contribution; "heap",
/// "hash", "hashvec" are the paper's comparators; the rest complete
/// Table I.
const std::vector<AlgoInfo>& algorithms();

/// Lookup by name; throws std::invalid_argument with the list of valid
/// names on a miss.
const AlgoInfo& algorithm(const std::string& name);

/// Non-throwing lookup; nullptr on a miss (for probing, e.g. "auto").
const AlgoInfo* find_algorithm(const std::string& name) noexcept;

/// Unified (algorithm × semiring) lookup: returns the kernel computing
/// A ⊗ B with `algo` over `semiring` (built-in or runtime-registered).
/// Throws std::invalid_argument listing every valid
/// (algorithm, semiring) combination when the algorithm is unknown, the
/// semiring is unknown, or the pair is unsupported — callers never
/// silently fall back to a different algorithm or semiring.  This is the
/// kernel-resolution layer the descriptor path (make_plan + SpGemmOp)
/// runs on; calling it directly is the non-planning shim.
SpGemmFn semiring_algorithm(const std::string& algo,
                            const std::string& semiring);

/// Masked counterpart: the returned kernel computes (A ⊗ B) restricted to
/// `mask`'s pattern (or its complement) with the mask fused into the
/// algorithm — the Gustavson row loops for heap/hash/spa, the compress
/// stage for pb, and a multiply-then-filter fallback for the remaining
/// baselines (still exact, just unfused).  `mask` is captured by pointer
/// and must outlive the returned kernel; its shape is validated per call.
SpGemmFn masked_semiring_algorithm(const std::string& algo,
                                   const std::string& semiring,
                                   const mtx::CsrMatrix* mask,
                                   bool complement);

/// Human-readable support matrix, one "algo: semiring..." line per
/// algorithm (used by CLI --help and lookup errors).  Runtime-registered
/// semirings show up on every generalized algorithm's line.
std::string algorithm_semiring_matrix();

/// The four algorithms the paper's figures compare.
std::vector<AlgoInfo> paper_comparison_set();

// ---- plan-returning dispatch ---------------------------------------------
//
// semiring_algorithm resolves one call; make_plan resolves a *traffic
// pattern*: it analyzes the problem once (flop, estimated compression
// factor, roofline-guided selection when the op's algo is "auto" — mask-
// density-aware when the op carries a mask — PB symbolic bin layout when
// the choice lands on pb) and returns a reusable SpGemmPlan whose
// execute() skips re-analysis and re-allocation while the operand
// structure is unchanged.  The descriptor SpGemmOp (spgemm/op.hpp)
// composes semiring × mask × accumulation × algo hint; full API and
// defaults live in spgemm/plan.hpp.
class SpGemmPlan;
struct SpGemmOp;
SpGemmPlan make_plan(const SpGemmProblem& p, SpGemmOp op);

}  // namespace pbs
