// Name -> algorithm registry shared by benches, tests, examples and the
// CLI, with unified (algorithm × semiring) dispatch.
//
// Every algorithm is registered with the set of semirings it supports.
// The bandwidth-optimized PB pipeline and the cheaply generalized
// Gustavson baselines (heap, spa) support all built-in semirings; the
// remaining baselines are numeric (+, ×) only and say so in their lookup
// error rather than silently falling back.
#pragma once

#include <string>
#include <vector>

#include "spgemm/semiring_ops.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

struct AlgoInfo {
  std::string name;
  std::string description;
  /// The numeric (+, ×) kernel — what the paper's figures measure.
  SpGemmFn fn;
  /// False for algorithms that are quadratic-ish and only suitable for
  /// validation-scale inputs (reference, outer_heap).
  bool scales_to_large = true;
  /// Names of the semirings this algorithm supports (always contains
  /// "plus_times"; see semiring_algorithm for the generalized kernels).
  std::vector<std::string> semirings = {PlusTimes::name};

  [[nodiscard]] bool supports_semiring(const std::string& semiring) const;
};

/// All registered algorithms.  "pb" is the paper's contribution; "heap",
/// "hash", "hashvec" are the paper's comparators; the rest complete
/// Table I.
const std::vector<AlgoInfo>& algorithms();

/// Lookup by name; throws std::invalid_argument with the list of valid
/// names on a miss.
const AlgoInfo& algorithm(const std::string& name);

/// Non-throwing lookup; nullptr on a miss (for probing, e.g. "auto").
const AlgoInfo* find_algorithm(const std::string& name) noexcept;

/// Unified (algorithm × semiring) lookup: returns the kernel computing
/// A ⊗ B with `algo` over `semiring`.  Throws std::invalid_argument
/// listing every valid (algorithm, semiring) combination when the
/// algorithm is unknown, the semiring is unknown, or the pair is
/// unsupported — callers never silently fall back to a different
/// algorithm or semiring.
SpGemmFn semiring_algorithm(const std::string& algo,
                            const std::string& semiring);

/// Human-readable support matrix, one "algo: semiring..." line per
/// algorithm (used by CLI --help and lookup errors).
std::string algorithm_semiring_matrix();

/// The four algorithms the paper's figures compare.
std::vector<AlgoInfo> paper_comparison_set();

// ---- plan-returning dispatch ---------------------------------------------
//
// semiring_algorithm resolves one call; make_plan resolves a *traffic
// pattern*: it analyzes the problem once (flop, estimated compression
// factor, roofline-guided selection when algo is "auto", PB symbolic bin
// layout when the choice lands on pb) and returns a reusable SpGemmPlan
// whose execute() skips re-analysis and re-allocation while the operand
// structure is unchanged.  Full API and defaults live in spgemm/plan.hpp.
class SpGemmPlan;
struct PlanOptions;
SpGemmPlan make_plan(const SpGemmProblem& p, PlanOptions opts);

}  // namespace pbs
