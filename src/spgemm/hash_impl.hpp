// Shared two-phase driver for HashSpGEMM and HashVecSpGEMM.
//
// Phase 1 (symbolic): per row, insert the product's column ids into a hash
// set to count nnz(C(r,:)) exactly; prefix-sum gives rowptr and one exact
// allocation — the structure of Nagasaka et al. [12].
// Phase 2 (numeric): per row, accumulate into the hash table, extract, sort
// by column (canonical CSR), write in place.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "spgemm/spgemm.hpp"

namespace pbs::detail {

template <typename Accumulator>
mtx::CsrMatrix hash_spgemm_impl(const SpGemmProblem& p) {
  const mtx::CsrMatrix& a = p.a_csr;
  const mtx::CsrMatrix& b = p.b_csr;

  mtx::CsrMatrix out(a.nrows, b.ncols);

  // Upper bound per row (row flop, capped at ncols) for table sizing.
  std::vector<nnz_t> row_upper(static_cast<std::size_t>(a.nrows), 0);
#pragma omp parallel for schedule(dynamic, 1024)
  for (index_t r = 0; r < a.nrows; ++r) {
    nnz_t f = 0;
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i)
      f += b.row_nnz(a.colids[i]);
    row_upper[r] = std::min<nnz_t>(f, b.ncols);
  }

  // ---- symbolic: exact nnz per output row ----
#pragma omp parallel
  {
    Accumulator acc;
#pragma omp for schedule(dynamic, 256)
    for (index_t r = 0; r < a.nrows; ++r) {
      if (row_upper[r] == 0) {
        out.rowptr[static_cast<std::size_t>(r) + 1] = 0;
        continue;
      }
      acc.reset(row_upper[r]);
      for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
        const index_t k = a.colids[i];
        for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j)
          acc.insert(b.colids[j]);
      }
      out.rowptr[static_cast<std::size_t>(r) + 1] = acc.size();
    }
  }

  // Counts -> row pointers (inclusive running sum; rowptr[0] == 0 already).
  for (index_t r = 0; r < a.nrows; ++r)
    out.rowptr[static_cast<std::size_t>(r) + 1] += out.rowptr[r];

  const auto total = static_cast<std::size_t>(out.rowptr.back());
  out.colids.resize(total);
  out.vals.resize(total);

  // ---- numeric: accumulate, extract, sort, write in place ----
#pragma omp parallel
  {
    Accumulator acc;
    std::vector<std::pair<index_t, value_t>> entries;
#pragma omp for schedule(dynamic, 256)
    for (index_t r = 0; r < a.nrows; ++r) {
      const nnz_t lo = out.rowptr[r];
      const nnz_t hi = out.rowptr[static_cast<std::size_t>(r) + 1];
      if (lo == hi) continue;
      acc.reset(row_upper[r]);
      for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
        const index_t k = a.colids[i];
        const value_t av = a.vals[i];
        for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j)
          acc.accumulate(b.colids[j], av * b.vals[j]);
      }
      entries.clear();
      acc.extract(std::back_inserter(entries));
      std::sort(entries.begin(), entries.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
      for (std::size_t i = 0; i < entries.size(); ++i) {
        out.colids[static_cast<std::size_t>(lo) + i] = entries[i].first;
        out.vals[static_cast<std::size_t>(lo) + i] = entries[i].second;
      }
    }
  }

  return out;
}

}  // namespace pbs::detail
