// Shared two-phase driver for HashSpGEMM and HashVecSpGEMM, generalized
// over a semiring and an optional fused output mask.
//
// Phase 1 (symbolic): per row, insert the product's column ids into a hash
// set to count nnz(C(r,:)) exactly; prefix-sum gives rowptr and one exact
// allocation — the structure of Nagasaka et al. [12].
// Phase 2 (numeric): per row, accumulate into the hash table (S::mul
// products, S::add keyed-insert combine), extract, sort by column
// (canonical CSR), write in place.
//
// With a mask, both phases skip columns outside (or, complemented, inside)
// the mask row's pattern — the row's stamp array marks the allowed
// columns, so a probe costs O(1) and rows whose plain mask row is empty
// are skipped outright.
#pragma once

#include <omp.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "matrix/csr.hpp"
#include "spgemm/masked.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs::detail {

template <typename S, typename Accumulator>
mtx::CsrMatrix hash_spgemm_impl(const SpGemmProblem& p,
                                const mtx::CsrMatrix* mask = nullptr,
                                bool complement = false) {
  const mtx::CsrMatrix& a = p.a_csr;
  const mtx::CsrMatrix& b = p.b_csr;

  mtx::CsrMatrix out(a.nrows, b.ncols);

  // Upper bound per row (row flop, capped at ncols — and at the mask row's
  // size for a plain mask, which also zeroes out maskless rows) for table
  // sizing.
  std::vector<nnz_t> row_upper(static_cast<std::size_t>(a.nrows), 0);
#pragma omp parallel for schedule(dynamic, 1024)
  for (index_t r = 0; r < a.nrows; ++r) {
    nnz_t f = 0;
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i)
      f += b.row_nnz(a.colids[i]);
    f = std::min<nnz_t>(f, b.ncols);
    if (mask != nullptr && !complement) f = std::min<nnz_t>(f, mask->row_nnz(r));
    row_upper[r] = f;
  }

  // ---- symbolic: exact nnz per output row ----
#pragma omp parallel
  {
    Accumulator acc;
    MaskStamp stamp;
#pragma omp for schedule(dynamic, 256)
    for (index_t r = 0; r < a.nrows; ++r) {
      if (row_upper[r] == 0) {
        out.rowptr[static_cast<std::size_t>(r) + 1] = 0;
        continue;
      }
      if (mask != nullptr) stamp.stamp_row(*mask, r);
      acc.reset(row_upper[r]);
      for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
        const index_t k = a.colids[i];
        for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j) {
          const index_t c = b.colids[j];
          if (mask != nullptr && stamp.skip(r, c, complement)) continue;
          acc.insert(c);
        }
      }
      out.rowptr[static_cast<std::size_t>(r) + 1] = acc.size();
    }
  }

  // Counts -> row pointers (inclusive running sum; rowptr[0] == 0 already).
  for (index_t r = 0; r < a.nrows; ++r)
    out.rowptr[static_cast<std::size_t>(r) + 1] += out.rowptr[r];

  const auto total = static_cast<std::size_t>(out.rowptr.back());
  out.colids.resize(total);
  out.vals.resize(total);

  // ---- numeric: accumulate, extract, sort, write in place ----
#pragma omp parallel
  {
    Accumulator acc;
    MaskStamp stamp;
    std::vector<std::pair<index_t, value_t>> entries;
#pragma omp for schedule(dynamic, 256)
    for (index_t r = 0; r < a.nrows; ++r) {
      const nnz_t lo = out.rowptr[r];
      const nnz_t hi = out.rowptr[static_cast<std::size_t>(r) + 1];
      if (lo == hi) continue;
      if (mask != nullptr) stamp.stamp_row(*mask, r);
      acc.reset(row_upper[r]);
      for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
        const index_t k = a.colids[i];
        const value_t av = a.vals[i];
        for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j) {
          const index_t c = b.colids[j];
          if (mask != nullptr && stamp.skip(r, c, complement)) continue;
          acc.template accumulate<S>(c, S::mul(av, b.vals[j]));
        }
      }
      entries.clear();
      acc.extract(std::back_inserter(entries));
      std::sort(entries.begin(), entries.end(),
                [](const auto& x, const auto& y) { return x.first < y.first; });
      for (std::size_t i = 0; i < entries.size(); ++i) {
        out.colids[static_cast<std::size_t>(lo) + i] = entries[i].first;
        out.vals[static_cast<std::size_t>(lo) + i] = entries[i].second;
      }
    }
  }

  return out;
}

}  // namespace pbs::detail
