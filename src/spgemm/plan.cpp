#include "spgemm/plan.hpp"

#include <stdexcept>
#include <utility>

#include "spgemm/executor.hpp"

namespace pbs {

SpGemmPlan::SpGemmPlan() = default;
SpGemmPlan::~SpGemmPlan() = default;
SpGemmPlan::SpGemmPlan(SpGemmPlan&&) noexcept = default;
SpGemmPlan& SpGemmPlan::operator=(SpGemmPlan&&) noexcept = default;

void SpGemmPlan::note_run(const RunInfo& info) {
  ++tm_.executes;
  if (info.passthrough) return;  // nothing cached, nothing reused
  if (info.cache_hit) {
    ++tm_.analysis_reuses;
  } else {
    ++tm_.replans;
    tm_.plan_seconds = info.plan_seconds;
  }
  // The entry that ran may differ from the one before (alternating
  // structures): keep the visible telemetry tracking what executed.
  tm_.algo = info.algo;
  tm_.flop = info.flop;
  tm_.choice = info.choice;
  tm_.predicted_mflops = info.predicted_mflops;
  tm_.achieved_mflops = info.achieved_mflops;
  if (info.used_pb) pb_stats_ = info.pb_stats;
}

mtx::CsrMatrix SpGemmPlan::execute_product(const SpGemmProblem& p,
                                           bool values_only) {
  // The accumulate flag is enforced at this level (the overload taken);
  // the executor must see a plain product request.  It shares the cached
  // plan either way — accumulate is not part of the cache key.
  SpGemmOp op = opts_;
  op.accumulate = false;
  RunInfo info;
  mtx::CsrMatrix c = values_only ? exec_->run_values_updated(p, op, &info)
                                 : exec_->run(p, op, &info);
  note_run(info);
  return c;
}

mtx::CsrMatrix SpGemmPlan::execute(const SpGemmProblem& p) {
  if (opts_.accumulate) {
    throw std::logic_error(
        "SpGemmPlan::execute: the op declared accumulate — pass the matrix "
        "to accumulate into (execute(problem, c))");
  }
  return execute_product(p, /*values_only=*/false);
}

mtx::CsrMatrix SpGemmPlan::execute(const SpGemmProblem& p,
                                   const mtx::CsrMatrix& c) {
  // Routed through the executor's accumulating run so the pb path merges
  // c during CSR conversion instead of a post-pass over the materialized
  // product; row-wise paths still post-pass (bit-identical either way).
  SpGemmOp op = opts_;
  op.accumulate = false;  // the overload IS the declaration
  RunInfo info;
  mtx::CsrMatrix out = exec_->run(p, op, c, &info);
  note_run(info);
  return out;
}

mtx::CsrMatrix SpGemmPlan::execute_values_updated(const SpGemmProblem& p) {
  if (opts_.accumulate) {
    throw std::logic_error(
        "SpGemmPlan::execute_values_updated: the op declared accumulate — "
        "pass the matrix to accumulate into (execute(problem, c))");
  }
  return execute_product(p, /*values_only=*/true);
}

pb::PbWorkspace::Stats SpGemmPlan::workspace_stats() const {
  return exec_->workspace_stats();
}

SpGemmPlan make_plan(const SpGemmProblem& p, SpGemmOp op) {
  SpGemmPlan plan;
  plan.opts_ = std::move(op);
  // A handful of cached structures per plan covers the alternating
  // workloads (MCL's expand/prune flip, AMG's per-level pairs) without
  // letting an iterative app with drifting structure hoard stale layouts.
  ExecutorOptions eo;
  eo.cache_capacity = 4;
  plan.exec_ = std::make_unique<SpGemmExecutor>(eo);

  RunInfo info;
  plan.exec_->prepare(p, plan.opts_, &info);  // throws exactly like before
  plan.tm_.requested_algo = plan.opts_.algo;
  plan.tm_.semiring = plan.opts_.semiring;
  plan.tm_.masked = plan.opts_.mask != nullptr;
  plan.tm_.complement = plan.opts_.complement;
  plan.tm_.algo = info.algo;
  plan.tm_.flop = info.flop;
  plan.tm_.plan_seconds = info.plan_seconds;
  plan.tm_.predicted_mflops = info.predicted_mflops;
  plan.tm_.choice = info.choice;
  return plan;
}

}  // namespace pbs
