#include "spgemm/plan.hpp"

#include "common/timer.hpp"

namespace pbs {

void SpGemmPlan::analyze(const SpGemmProblem& p,
                         const pb::StructureFingerprint& fp) {
  Timer timer;

  // Run everything that can throw into locals first; commit member state
  // only once analysis has fully succeeded.  Otherwise an exception
  // mid-replan (e.g. bad_alloc in the symbolic build) could leave fp_
  // claiming a structure the cached pb plan was never built for, and a
  // retried execute would run the stale bin layout unchecked.
  std::string resolved = opts_.algo;
  model::AlgoChoice choice;
  if (opts_.algo == "auto") {
    // Selection needs only flop (already in the fingerprint) and an
    // estimated compression factor — no bin layout yet, so a choice that
    // lands on a Gustavson kernel never pays for one.
    const nnz_t nnz_est = pb::pb_estimate_nnz_c(p.a_csc, p.b_csr);
    const double cf =
        static_cast<double>(fp.flop) /
        static_cast<double>(std::max<nnz_t>(nnz_est, 1));
    const AlgoInfo* hash = find_algorithm("hash");
    const bool hash_available =
        hash != nullptr && hash->supports_semiring(opts_.semiring);
    choice = model::select_algorithm(cf, fp.flop, hash_available, opts_.model);
    resolved = choice.algo;
  }

  // Resolve through the registry even for pb: unknown names and
  // unsupported (algo, semiring) pairs fail here, at plan time.
  SpGemmFn fn = semiring_algorithm(resolved, opts_.semiring);
  const bool use_pb = resolved == "pb";
  pb::PbPlan pb_plan;
  if (use_pb) pb_plan = pb::pb_plan_build(p.a_csc, p.b_csr, opts_.pb);

  // ---- commit (nothing below throws) ----
  fp_ = fp;
  fn_ = std::move(fn);
  use_pb_ = use_pb;
  pb_plan_ = std::move(pb_plan);
  tm_.requested_algo = opts_.algo;
  tm_.semiring = opts_.semiring;
  tm_.choice = std::move(choice);
  tm_.algo = std::move(resolved);
  tm_.flop = fp.flop;
  tm_.plan_seconds = timer.elapsed_s();
}

mtx::CsrMatrix SpGemmPlan::execute(const SpGemmProblem& p) {
  ++tm_.executes;

  // A fixed baseline algorithm caches nothing beyond kernel resolution:
  // the plan is pass-through, so skip the fingerprint pass entirely
  // (there is nothing to invalidate and no analysis being reused).
  if (!use_pb_ && tm_.requested_algo != "auto") return fn_(p);

  const pb::StructureFingerprint fp =
      pb::StructureFingerprint::of(p.a_csc, p.b_csr);
  if (fp != fp_) {
    ++tm_.replans;
    analyze(p, fp);
  } else {
    ++tm_.analysis_reuses;
  }

  if (use_pb_) {
    // Execute through the captured symbolic plan and pooled workspace,
    // keeping the per-phase telemetry the type-erased registry fn hides.
    // The fingerprint was just verified above, so skip pb_execute's check.
    pb::PbResult r =
        pb::pb_execute_named(opts_.semiring, p.a_csc, p.b_csr, pb_plan_, ws_,
                             /*check_fingerprint=*/false);
    pb_stats_ = r.stats;
    return std::move(r.c);
  }
  return fn_(p);
}

SpGemmPlan make_plan(const SpGemmProblem& p, PlanOptions opts) {
  SpGemmPlan plan;
  plan.opts_ = std::move(opts);
  plan.analyze(p, pb::StructureFingerprint::of(p.a_csc, p.b_csr));
  return plan;
}

}  // namespace pbs
