#include "spgemm/plan.hpp"

#include <stdexcept>

#include "common/timer.hpp"

namespace pbs {

void SpGemmPlan::analyze(const SpGemmProblem& p,
                         const pb::StructureFingerprint& fp) {
  Timer timer;

  if (opts_.mask != nullptr && (opts_.mask->nrows != p.a_csr.nrows ||
                                opts_.mask->ncols != p.b_csr.ncols)) {
    throw std::invalid_argument(
        "make_plan: mask shape does not match the product");
  }

  // Run everything that can throw into locals first; commit member state
  // only once analysis has fully succeeded.  Otherwise an exception
  // mid-replan (e.g. bad_alloc in the symbolic build) could leave fp_
  // claiming a structure the cached pb plan was never built for, and a
  // retried execute would run the stale bin layout unchecked.
  std::string resolved = opts_.algo;
  model::AlgoChoice choice;
  std::vector<nnz_t> row_flops;
  if (opts_.algo == "auto") {
    // Selection needs only flop (already in the fingerprint) and an
    // estimated compression factor — no bin layout yet, so a choice that
    // lands on a Gustavson kernel never pays for one.  The row-flop
    // histogram backing the estimate is kept: if the choice lands on pb
    // with adaptive binning, symbolic reuses it instead of recounting.
    row_flops = pb::pb_row_flops(p.a_csc, p.b_csr);
    const nnz_t nnz_est = pb::pb_estimate_nnz_c(row_flops, p.b_csr.ncols);
    const double cf =
        static_cast<double>(fp.flop) /
        static_cast<double>(std::max<nnz_t>(nnz_est, 1));
    const AlgoInfo* hash = find_algorithm("hash");
    const bool hash_available =
        hash != nullptr && hash->supports_semiring(opts_.semiring);
    // Charge PB's Eq. 4 bound the bytes its tuple stream would actually
    // move under the format symbolic would pick for this problem.
    model::SelectionModel m = opts_.model;
    m.pb_tuple_bytes = static_cast<double>(pb::bytes_per_tuple(
        pb::predict_tuple_format(p.a_csc.nrows, p.b_csr.ncols, fp.flop,
                                 opts_.pb)));
    // The mask-density term: a plain mask caps the output at nnz(mask)
    // and lets the Gustavson row loops skip every wedge whose output row
    // has no mask entry (the masked wedge count, computed from the row
    // flops the selection pass already owns).
    model::MaskModel mm;
    if (opts_.mask != nullptr) {
      mm.present = true;
      mm.complement = opts_.complement;
      mm.mask_nnz = opts_.mask->nnz();
      if (!opts_.complement && fp.flop > 0) {
        nnz_t covered = 0;
        for (index_t r = 0; r < p.a_csr.nrows; ++r) {
          if (opts_.mask->row_nnz(r) > 0) covered += row_flops[r];
        }
        mm.coverage =
            static_cast<double>(covered) / static_cast<double>(fp.flop);
      }
    }
    choice = model::select_algorithm(cf, fp.flop, hash_available, m, mm);
    resolved = choice.algo;
  }

  // Resolve through the registry even for pb: unknown names and
  // unsupported (algo, semiring) pairs fail here, at plan time.  With a
  // mask the resolved kernel is the fused masked form.
  SpGemmFn fn = masked_semiring_algorithm(resolved, opts_.semiring,
                                          opts_.mask, opts_.complement);
  const bool use_pb = resolved == "pb";
  pb::PbPlan pb_plan;
  if (use_pb) {
    // The fingerprint already owns flop and the selection pass may own the
    // row-flop histogram: thread both into symbolic so a (re)plan runs
    // each O(ncols)/O(nnz) structure pass exactly once.
    pb::SymbolicHints hints;
    hints.flop = fp.flop;
    hints.row_flops = row_flops;
    pb_plan = pb::pb_plan_build(p.a_csc, p.b_csr, opts_.pb, hints);
  }

  // ---- commit (nothing below throws) ----
  fp_ = fp;
  fn_ = std::move(fn);
  use_pb_ = use_pb;
  pb_plan_ = std::move(pb_plan);
  tm_.requested_algo = opts_.algo;
  tm_.semiring = opts_.semiring;
  tm_.masked = opts_.mask != nullptr;
  tm_.complement = opts_.complement;
  tm_.algo = std::move(resolved);
  tm_.flop = fp.flop;
  tm_.predicted_mflops = tm_.algo == "pb" ? choice.pb_mflops
                                          : choice.column_mflops;
  if (opts_.algo != "auto") tm_.predicted_mflops = 0;
  tm_.choice = std::move(choice);
  tm_.plan_seconds = timer.elapsed_s();
}

mtx::CsrMatrix SpGemmPlan::execute_product(const SpGemmProblem& p) {
  ++tm_.executes;

  // A fixed baseline algorithm caches nothing beyond kernel resolution:
  // the plan is pass-through, so skip the fingerprint pass entirely
  // (there is nothing to invalidate and no analysis being reused).
  if (!use_pb_ && tm_.requested_algo != "auto") return fn_(p);

  const pb::StructureFingerprint fp =
      pb::StructureFingerprint::of(p.a_csc, p.b_csr);
  if (fp != fp_) {
    ++tm_.replans;
    analyze(p, fp);
  } else {
    ++tm_.analysis_reuses;
  }

  // Record what this execute achieves against the plan's prediction
  // (telemetry().predicted_mflops) — the raw material for learning the
  // selection model's derating constants from real runs.
  Timer exec_timer;
  mtx::CsrMatrix c;
  if (use_pb_) {
    // Execute through the captured symbolic plan and pooled workspace,
    // keeping the per-phase telemetry the type-erased registry fn hides;
    // the op's mask is fused into the compress stage.  The fingerprint was
    // just verified above, so skip pb_execute's check.
    const pb::MaskSpec mask{opts_.mask, opts_.complement};
    pb::PbResult r =
        pb::pb_execute_named(opts_.semiring, p.a_csc, p.b_csr, pb_plan_, ws_,
                             /*check_fingerprint=*/false, mask);
    pb_stats_ = r.stats;
    c = std::move(r.c);
  } else {
    c = fn_(p);
  }
  const double s = exec_timer.elapsed_s();
  tm_.achieved_mflops =
      s > 0 ? static_cast<double>(tm_.flop) / s / 1e6 : 0.0;
  return c;
}

mtx::CsrMatrix SpGemmPlan::execute(const SpGemmProblem& p) {
  if (opts_.accumulate) {
    throw std::logic_error(
        "SpGemmPlan::execute: the op declared accumulate — pass the matrix "
        "to accumulate into (execute(problem, c))");
  }
  return execute_product(p);
}

mtx::CsrMatrix SpGemmPlan::execute(const SpGemmProblem& p,
                                   const mtx::CsrMatrix& c) {
  return semiring_ewise_add(opts_.semiring, c, execute_product(p));
}

SpGemmPlan make_plan(const SpGemmProblem& p, SpGemmOp op) {
  SpGemmPlan plan;
  plan.opts_ = std::move(op);
  plan.analyze(p, pb::StructureFingerprint::of(p.a_csc, p.b_csr));
  return plan;
}

}  // namespace pbs
