// The semiring operator set — the algebraic core shared by every
// semiring-generalized kernel in the library (the row-wise fallback in
// spgemm/semiring.hpp, the generalized Gustavson baselines, and the
// propagation-blocking pipeline in pb/).
//
// The paper's motivating applications replace (+, ×) with other semirings:
// multi-source BFS runs over the boolean (∨, ∧) semiring [3], shortest
// paths over (min, +), and bottleneck paths over (max, min).  The
// propagation-blocking pipeline itself is semiring-agnostic — only the
// "multiply" in expand and the "add" in compress change — so kernels are
// templated on a semiring type.
//
// A semiring supplies:
//   value_t zero()            — additive identity (annihilator of mul)
//   value_t add(a, b)         — associative, commutative
//   value_t mul(a, b)         — distributes over add
//
// Entries whose accumulated value equals zero() are kept (structural
// presence mirrors the numeric SpGEMM convention for exact cancellation);
// every kernel in the library follows this convention, so the output
// pattern of A ⊗ B is identical across semirings and algorithms.
//
// This header is deliberately standalone (depends only on common/types.hpp)
// so low-level kernels can use the operators without the SpGEMM
// entry-point layer.
#pragma once

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace pbs {

/// The ordinary arithmetic semiring — the semiring-generalized kernels
/// instantiated with PlusTimes compute exactly what the numeric algorithms
/// compute.
struct PlusTimes {
  static constexpr const char* name = "plus_times";
  static value_t zero() { return 0.0; }
  static value_t add(value_t a, value_t b) { return a + b; }
  static value_t mul(value_t a, value_t b) { return a * b; }
};

/// Tropical semiring: path relaxation.  (A ⊗ B)(i,j) = min_k A(i,k)+B(k,j)
/// — one step of all-pairs shortest paths.
struct MinPlus {
  static constexpr const char* name = "min_plus";
  static value_t zero() { return std::numeric_limits<value_t>::infinity(); }
  static value_t add(value_t a, value_t b) { return std::min(a, b); }
  static value_t mul(value_t a, value_t b) { return a + b; }
};

/// Bottleneck semiring: widest-path capacity.
struct MaxMin {
  static constexpr const char* name = "max_min";
  static value_t zero() { return -std::numeric_limits<value_t>::infinity(); }
  static value_t add(value_t a, value_t b) { return std::max(a, b); }
  static value_t mul(value_t a, value_t b) { return std::min(a, b); }
};

/// Boolean semiring on {0.0, 1.0}: reachability / frontier expansion.
struct BoolOrAnd {
  static constexpr const char* name = "bool_or_and";
  static value_t zero() { return 0.0; }
  static value_t add(value_t a, value_t b) {
    return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
  }
  static value_t mul(value_t a, value_t b) {
    return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
  }
  /// Value-free (idempotent-structural): presence alone determines every
  /// output value (1.0 for any surviving entry built from nonzero
  /// operands), which legalizes the 8 B key-only tuple stream
  /// (pb/tuple.hpp).
  static constexpr bool value_free() { return true; }
};

/// True when S declares itself value-free — its output values are a pure
/// function of structure (every surviving entry carries the semiring's
/// present-value), so kernels may drop the value stream entirely.
/// Detected via an optional static `value_free()` member, so custom
/// semiring types need no change to stay valued.
template <typename S>
bool semiring_is_value_free() {
  if constexpr (requires { S::value_free(); }) {
    return S::value_free();
  } else {
    return false;
  }
}

/// Names of all built-in semirings, in registry order.
const std::vector<std::string>& semiring_names();

/// True iff `name` names a built-in semiring.
bool is_semiring_name(const std::string& name);

/// Invokes `fn.template operator()<S>()` for the semiring named `name`;
/// throws std::invalid_argument listing the valid names on a miss.
///
///   auto c = dispatch_semiring(name, [&]<typename S>() {
///     return spgemm_semiring<S>(a, b);
///   });
template <typename Fn>
decltype(auto) dispatch_semiring(const std::string& name, Fn&& fn) {
  if (name == PlusTimes::name) return fn.template operator()<PlusTimes>();
  if (name == MinPlus::name) return fn.template operator()<MinPlus>();
  if (name == MaxMin::name) return fn.template operator()<MaxMin>();
  if (name == BoolOrAnd::name) return fn.template operator()<BoolOrAnd>();
  std::string valid;
  for (const std::string& s : semiring_names()) valid += s + " ";
  throw std::invalid_argument("unknown semiring '" + name +
                              "'; valid: " + valid);
}

}  // namespace pbs
