// SPA SpGEMM — row-wise Gustavson with a dense sparse accumulator
// (Gilbert, Moler, Schreiber [25]; Table I upper-left cell).
//
// The dense-accumulator kernel is implemented once, semiring-generalized,
// as spgemm_semiring<S> (semiring.cpp): each thread owns one dense value
// array plus a "stamp" array marking which columns the current row
// touched, so clearing between rows is O(row nnz) instead of O(ncols).
// The numeric algorithm registered as "spa" is its (+, ×) instantiation —
// PlusTimes::add/mul inline to the raw +/* the pre-unification kernel
// used, so codegen is unchanged.
#include "spgemm/semiring.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

mtx::CsrMatrix spa_spgemm(const SpGemmProblem& p) {
  return spgemm_semiring<PlusTimes>(p.a_csr, p.b_csr);
}

}  // namespace pbs
