// SPA SpGEMM — row-wise Gustavson with a dense sparse accumulator
// (Gilbert, Moler, Schreiber [25]; Table I upper-left cell).
//
// Each thread owns one dense value array plus a "stamp" array marking which
// columns the current row touched, so clearing between rows is O(row nnz)
// instead of O(ncols).
#include <omp.h>

#include <algorithm>
#include <vector>

#include "common/parallel.hpp"
#include "spgemm/assemble.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

mtx::CsrMatrix spa_spgemm(const SpGemmProblem& p) {
  const mtx::CsrMatrix& a = p.a_csr;
  const mtx::CsrMatrix& b = p.b_csr;

  struct Scratch {
    std::vector<value_t> dense;
    std::vector<index_t> stamp;    // stamp[c] == row => dense[c] is live
    std::vector<index_t> touched;  // columns written this row
  };
  std::vector<Scratch> scratch(static_cast<std::size_t>(max_threads()));

  return detail::assemble_rowwise(
      a.nrows, b.ncols, [&](index_t r, detail::BlockBuffer& buf) {
        Scratch& s = scratch[static_cast<std::size_t>(omp_get_thread_num())];
        if (s.dense.empty()) {
          s.dense.assign(static_cast<std::size_t>(b.ncols), 0.0);
          s.stamp.assign(static_cast<std::size_t>(b.ncols), -1);
        }
        s.touched.clear();

        for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
          const index_t k = a.colids[i];
          const value_t av = a.vals[i];
          for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j) {
            const index_t c = b.colids[j];
            if (s.stamp[c] != r) {
              s.stamp[c] = r;
              s.dense[c] = av * b.vals[j];
              s.touched.push_back(c);
            } else {
              s.dense[c] += av * b.vals[j];
            }
          }
        }

        std::sort(s.touched.begin(), s.touched.end());
        for (const index_t c : s.touched) {
          buf.cols.push_back(c);
          buf.vals.push_back(s.dense[c]);
        }
      });
}

}  // namespace pbs
