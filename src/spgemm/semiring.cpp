#include "spgemm/semiring.hpp"

#include <omp.h>

#include <cassert>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "spgemm/assemble.hpp"

namespace pbs {

template <typename S>
mtx::CsrMatrix spgemm_semiring(const mtx::CsrMatrix& a,
                               const mtx::CsrMatrix& b) {
  if (a.ncols != b.nrows) {
    throw std::invalid_argument("spgemm_semiring: inner dimensions differ");
  }

  // SPA-style dense accumulator with stamp-based clearing; the semiring
  // only changes the combine step.
  struct Scratch {
    std::vector<value_t> dense;
    std::vector<index_t> stamp;
    std::vector<index_t> touched;
  };
  std::vector<Scratch> scratch(static_cast<std::size_t>(max_threads()));

  return detail::assemble_rowwise(
      a.nrows, b.ncols, [&](index_t r, detail::BlockBuffer& buf) {
        Scratch& s = scratch[static_cast<std::size_t>(omp_get_thread_num())];
        if (s.dense.empty()) {
          s.dense.assign(static_cast<std::size_t>(b.ncols), S::zero());
          s.stamp.assign(static_cast<std::size_t>(b.ncols), -1);
        }
        s.touched.clear();

        for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
          const index_t k = a.colids[i];
          const value_t av = a.vals[i];
          for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j) {
            const index_t c = b.colids[j];
            const value_t product = S::mul(av, b.vals[j]);
            if (s.stamp[c] != r) {
              s.stamp[c] = r;
              s.dense[c] = product;
              s.touched.push_back(c);
            } else {
              s.dense[c] = S::add(s.dense[c], product);
            }
          }
        }

        std::sort(s.touched.begin(), s.touched.end());
        for (const index_t c : s.touched) {
          buf.cols.push_back(c);
          buf.vals.push_back(s.dense[c]);
        }
      });
}

template mtx::CsrMatrix spgemm_semiring<PlusTimes>(const mtx::CsrMatrix&,
                                                   const mtx::CsrMatrix&);
template mtx::CsrMatrix spgemm_semiring<MinPlus>(const mtx::CsrMatrix&,
                                                 const mtx::CsrMatrix&);
template mtx::CsrMatrix spgemm_semiring<MaxMin>(const mtx::CsrMatrix&,
                                                const mtx::CsrMatrix&);
template mtx::CsrMatrix spgemm_semiring<BoolOrAnd>(const mtx::CsrMatrix&,
                                                   const mtx::CsrMatrix&);

mtx::CsrMatrix spgemm_semiring_named(const std::string& semiring,
                                     const mtx::CsrMatrix& a,
                                     const mtx::CsrMatrix& b) {
  if (semiring == PlusTimes::name) return spgemm_semiring<PlusTimes>(a, b);
  if (semiring == MinPlus::name) return spgemm_semiring<MinPlus>(a, b);
  if (semiring == MaxMin::name) return spgemm_semiring<MaxMin>(a, b);
  if (semiring == BoolOrAnd::name) return spgemm_semiring<BoolOrAnd>(a, b);
  throw std::invalid_argument(
      "unknown semiring '" + semiring +
      "'; valid: plus_times min_plus max_min bool_or_and");
}

}  // namespace pbs
