#include "spgemm/semiring.hpp"

#include <omp.h>

#include <cassert>
#include <stdexcept>
#include <vector>

#include "common/parallel.hpp"
#include "spgemm/assemble.hpp"
#include "spgemm/op.hpp"

namespace pbs {

template <typename S>
mtx::CsrMatrix spgemm_semiring(const mtx::CsrMatrix& a,
                               const mtx::CsrMatrix& b) {
  if (a.ncols != b.nrows) {
    throw std::invalid_argument("spgemm_semiring: inner dimensions differ");
  }

  // SPA-style dense accumulator with stamp-based clearing; the semiring
  // only changes the combine step.
  struct Scratch {
    std::vector<value_t> dense;
    std::vector<index_t> stamp;
    std::vector<index_t> touched;
  };
  std::vector<Scratch> scratch(static_cast<std::size_t>(max_threads()));

  return detail::assemble_rowwise(
      a.nrows, b.ncols, [&](index_t r, detail::BlockBuffer& buf) {
        Scratch& s = scratch[static_cast<std::size_t>(omp_get_thread_num())];
        if (s.dense.empty()) {
          s.dense.assign(static_cast<std::size_t>(b.ncols), S::zero());
          s.stamp.assign(static_cast<std::size_t>(b.ncols), -1);
        }
        s.touched.clear();

        for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
          const index_t k = a.colids[i];
          const value_t av = a.vals[i];
          for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j) {
            const index_t c = b.colids[j];
            const value_t product = S::mul(av, b.vals[j]);
            if (s.stamp[c] != r) {
              s.stamp[c] = r;
              s.dense[c] = product;
              s.touched.push_back(c);
            } else {
              s.dense[c] = S::add(s.dense[c], product);
            }
          }
        }

        std::sort(s.touched.begin(), s.touched.end());
        for (const index_t c : s.touched) {
          buf.cols.push_back(c);
          buf.vals.push_back(s.dense[c]);
        }
      });
}

template mtx::CsrMatrix spgemm_semiring<PlusTimes>(const mtx::CsrMatrix&,
                                                   const mtx::CsrMatrix&);
template mtx::CsrMatrix spgemm_semiring<MinPlus>(const mtx::CsrMatrix&,
                                                 const mtx::CsrMatrix&);
template mtx::CsrMatrix spgemm_semiring<MaxMin>(const mtx::CsrMatrix&,
                                                const mtx::CsrMatrix&);
template mtx::CsrMatrix spgemm_semiring<BoolOrAnd>(const mtx::CsrMatrix&,
                                                   const mtx::CsrMatrix&);
// The runtime-semiring bridge (spgemm/op.hpp).
template mtx::CsrMatrix spgemm_semiring<DynSemiring>(const mtx::CsrMatrix&,
                                                     const mtx::CsrMatrix&);

mtx::CsrMatrix spgemm_semiring_named(const std::string& semiring,
                                     const mtx::CsrMatrix& a,
                                     const mtx::CsrMatrix& b) {
  return dispatch_semiring_any(semiring, [&]<typename S>() {
    return spgemm_semiring<S>(a, b);
  });
}

const std::vector<std::string>& semiring_names() {
  static const std::vector<std::string> names = {
      PlusTimes::name, MinPlus::name, MaxMin::name, BoolOrAnd::name};
  return names;
}

bool is_semiring_name(const std::string& name) {
  for (const std::string& s : semiring_names()) {
    if (s == name) return true;
  }
  return false;
}

}  // namespace pbs
