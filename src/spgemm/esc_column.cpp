// Row-partitioned expand-sort-compress SpGEMM — the CPU analogue of the
// GPU ESC algorithms (Dalton/Olson/Bell [15], Liu et al. [18]); Table I
// lower-left cell, Table II row 2.
//
// Phase 1 sizes each output row's expansion slice exactly (row flop) so the
// expanded matrix Cˆ is one allocation with per-row sub-arrays.  Phase 2
// expands every row's unmerged tuples, phase 3 radix-sorts each slice by
// column id and phase 4 compresses duplicates in place.  Unlike PB-SpGEMM
// there is no propagation blocking: a slice is whatever size the row's flop
// dictates, so cache behaviour degrades on heavy rows — exactly the
// weakness the paper's Sec. II-B attributes to this family.
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/prefix_sum.hpp"
#include "common/radix_sort.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

namespace {

struct EscTuple {
  index_t col;
  value_t val;
};

}  // namespace

mtx::CsrMatrix esc_column_spgemm(const SpGemmProblem& p) {
  const mtx::CsrMatrix& a = p.a_csr;
  const mtx::CsrMatrix& b = p.b_csr;

  // ---- symbolic: per-row flop, prefix-summed into slice offsets ----
  std::vector<nnz_t> slice(static_cast<std::size_t>(a.nrows) + 1, 0);
#pragma omp parallel for schedule(dynamic, 1024)
  for (index_t r = 0; r < a.nrows; ++r) {
    nnz_t f = 0;
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i)
      f += b.row_nnz(a.colids[i]);
    slice[r] = f;
  }
  const nnz_t flop =
      exclusive_scan_inplace_parallel(slice.data(), static_cast<std::size_t>(a.nrows));

  // The flop-sized expansion scratch is reused across calls (cf. PbWorkspace
  // in pb/pb_spgemm.hpp) so repeated runs do not re-pay its page faults.
  thread_local AlignedBuffer<EscTuple> scratch;
  if (static_cast<std::size_t>(flop) > scratch.size()) {
    scratch.allocate(static_cast<std::size_t>(flop));
  }
  AlignedBuffer<EscTuple>& expanded = scratch;

  // ---- expand ----
#pragma omp parallel for schedule(dynamic, 256)
  for (index_t r = 0; r < a.nrows; ++r) {
    nnz_t pos = slice[r];
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
      const index_t k = a.colids[i];
      const value_t av = a.vals[i];
      for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j) {
        expanded[static_cast<std::size_t>(pos++)] =
            EscTuple{b.colids[j], av * b.vals[j]};
      }
    }
  }

  // ---- sort + compress each row slice in place ----
  mtx::CsrMatrix out(a.nrows, b.ncols);
#pragma omp parallel for schedule(dynamic, 256)
  for (index_t r = 0; r < a.nrows; ++r) {
    EscTuple* t = expanded.data() + slice[r];
    const auto len = static_cast<std::size_t>(
        slice[static_cast<std::size_t>(r) + 1] - slice[r]);
    if (len == 0) {
      out.rowptr[static_cast<std::size_t>(r) + 1] = 0;
      continue;
    }
    radix_sort(t, len, [](const EscTuple& e) {
      return static_cast<std::uint32_t>(e.col);
    });
    std::size_t merged = 0;
    for (std::size_t i = 1; i < len; ++i) {
      if (t[i].col == t[merged].col) {
        t[merged].val += t[i].val;
      } else {
        t[++merged] = t[i];
      }
    }
    out.rowptr[static_cast<std::size_t>(r) + 1] = static_cast<nnz_t>(merged + 1);
  }

  for (index_t r = 0; r < a.nrows; ++r)
    out.rowptr[static_cast<std::size_t>(r) + 1] += out.rowptr[r];

  // ---- gather merged slices into the final CSR ----
  const auto total = static_cast<std::size_t>(out.rowptr.back());
  out.colids.resize(total);
  out.vals.resize(total);
#pragma omp parallel for schedule(dynamic, 256)
  for (index_t r = 0; r < a.nrows; ++r) {
    const EscTuple* t = expanded.data() + slice[r];
    nnz_t pos = out.rowptr[r];
    const nnz_t end = out.rowptr[static_cast<std::size_t>(r) + 1];
    for (nnz_t i = 0; pos + i < end; ++i) {
      out.colids[static_cast<std::size_t>(out.rowptr[r] + i)] = t[i].col;
      out.vals[static_cast<std::size_t>(out.rowptr[r] + i)] = t[i].val;
    }
  }

  return out;
}

}  // namespace pbs
