#include <map>

#include "matrix/convert.hpp"
#include "spgemm/op.hpp"
#include "spgemm/semiring.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

// Gold standard: serial row-wise Gustavson with an ordered map accumulator.
// The ordered map gives sorted columns for free and a deterministic
// left-to-right accumulation order.  Semiring-generalized so non-numeric
// semirings validate directly against it; the first contribution to a
// position is stored as-is (never combined with S::zero()), matching every
// kernel's first-contribution rule, and positions whose values combine to
// S::zero() stay structurally present.
template <typename S>
mtx::CsrMatrix reference_spgemm_semiring(const SpGemmProblem& p) {
  const mtx::CsrMatrix& a = p.a_csr;
  const mtx::CsrMatrix& b = p.b_csr;

  mtx::CsrMatrix out(a.nrows, b.ncols);
  std::map<index_t, value_t> acc;
  for (index_t r = 0; r < a.nrows; ++r) {
    acc.clear();
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
      const index_t k = a.colids[i];
      const value_t av = a.vals[i];
      for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j) {
        const value_t product = S::mul(av, b.vals[j]);
        const auto [it, inserted] = acc.try_emplace(b.colids[j], product);
        if (!inserted) it->second = S::add(it->second, product);
      }
    }
    out.rowptr[static_cast<std::size_t>(r) + 1] =
        out.rowptr[r] + static_cast<nnz_t>(acc.size());
    for (const auto& [c, v] : acc) {
      out.colids.push_back(c);
      out.vals.push_back(v);
    }
  }
  return out;
}

template mtx::CsrMatrix reference_spgemm_semiring<PlusTimes>(
    const SpGemmProblem&);
template mtx::CsrMatrix reference_spgemm_semiring<MinPlus>(
    const SpGemmProblem&);
template mtx::CsrMatrix reference_spgemm_semiring<MaxMin>(
    const SpGemmProblem&);
template mtx::CsrMatrix reference_spgemm_semiring<BoolOrAnd>(
    const SpGemmProblem&);
// The runtime-semiring bridge (spgemm/op.hpp).
template mtx::CsrMatrix reference_spgemm_semiring<DynSemiring>(
    const SpGemmProblem&);

mtx::CsrMatrix reference_spgemm(const SpGemmProblem& p) {
  return reference_spgemm_semiring<PlusTimes>(p);
}

SpGemmProblem SpGemmProblem::multiply(const mtx::CsrMatrix& a,
                                      const mtx::CsrMatrix& b) {
  SpGemmProblem p;
  p.a_csr = a;
  p.a_csc = mtx::csr_to_csc(a);
  p.b_csr = b;
  return p;
}

SpGemmProblem SpGemmProblem::square(const mtx::CsrMatrix& a) {
  return multiply(a, a);
}

}  // namespace pbs
