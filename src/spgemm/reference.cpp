#include <map>

#include "matrix/convert.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

// Gold standard: serial row-wise Gustavson with an ordered map accumulator.
// The ordered map gives sorted columns for free and a deterministic
// left-to-right accumulation order.
mtx::CsrMatrix reference_spgemm(const SpGemmProblem& p) {
  const mtx::CsrMatrix& a = p.a_csr;
  const mtx::CsrMatrix& b = p.b_csr;

  mtx::CsrMatrix out(a.nrows, b.ncols);
  std::map<index_t, value_t> acc;
  for (index_t r = 0; r < a.nrows; ++r) {
    acc.clear();
    for (nnz_t i = a.rowptr[r]; i < a.rowptr[static_cast<std::size_t>(r) + 1]; ++i) {
      const index_t k = a.colids[i];
      const value_t av = a.vals[i];
      for (nnz_t j = b.rowptr[k]; j < b.rowptr[static_cast<std::size_t>(k) + 1]; ++j) {
        acc[b.colids[j]] += av * b.vals[j];
      }
    }
    out.rowptr[static_cast<std::size_t>(r) + 1] =
        out.rowptr[r] + static_cast<nnz_t>(acc.size());
    for (const auto& [c, v] : acc) {
      out.colids.push_back(c);
      out.vals.push_back(v);
    }
  }
  return out;
}

SpGemmProblem SpGemmProblem::multiply(const mtx::CsrMatrix& a,
                                      const mtx::CsrMatrix& b) {
  SpGemmProblem p;
  p.a_csr = a;
  p.a_csc = mtx::csr_to_csc(a);
  p.b_csr = b;
  return p;
}

SpGemmProblem SpGemmProblem::square(const mtx::CsrMatrix& a) {
  return multiply(a, a);
}

}  // namespace pbs
