// Common SpGEMM entry-point types.
//
// Different algorithm families want different input formats (paper Table I):
// column/row Gustavson algorithms stream one operand compressed along the
// multiplication axis, while outer-product algorithms need A in CSC and B in
// CSR.  A `SpGemmProblem` therefore carries the operand in every format an
// algorithm might pick, built once outside any timed region — the same
// methodology as the paper, where each algorithm receives its preferred
// layout for free.
#pragma once

#include <functional>
#include <string>

#include "matrix/csc.hpp"
#include "matrix/csr.hpp"

namespace pbs {

struct SpGemmProblem {
  mtx::CsrMatrix a_csr;
  mtx::CscMatrix a_csc;
  mtx::CsrMatrix b_csr;

  /// Prepares A·B.
  static SpGemmProblem multiply(const mtx::CsrMatrix& a,
                                const mtx::CsrMatrix& b);

  /// Prepares A·A (the paper squares every real matrix).
  static SpGemmProblem square(const mtx::CsrMatrix& a);

  [[nodiscard]] index_t result_rows() const { return a_csr.nrows; }
  [[nodiscard]] index_t result_cols() const { return b_csr.ncols; }
};

/// Every algorithm: problem in, canonical CSR out.  Implementations read
/// the OpenMP thread count set by the caller.
using SpGemmFn = std::function<mtx::CsrMatrix(const SpGemmProblem&)>;

// ---- the individual algorithms -------------------------------------------

/// Serial gold standard (ordered-map accumulator).  O(flop log d) and slow;
/// for validation only.
mtx::CsrMatrix reference_spgemm(const SpGemmProblem& p);

/// Row-wise Gustavson with a k-way heap merge (paper's HeapSpGEMM, [22]).
mtx::CsrMatrix heap_spgemm(const SpGemmProblem& p);

/// Row-wise Gustavson with hash accumulation, two-phase symbolic+numeric
/// (paper's HashSpGEMM, Nagasaka et al. [12]).
mtx::CsrMatrix hash_spgemm(const SpGemmProblem& p);

/// Hash variant probing 8-slot bucket groups, the scalar-emulated analogue
/// of the paper's vector-register probing HashVecSpGEMM [12].
mtx::CsrMatrix hashvec_spgemm(const SpGemmProblem& p);

/// Row-wise Gustavson with a dense sparse-accumulator (SPA) [20], [25].
mtx::CsrMatrix spa_spgemm(const SpGemmProblem& p);

/// Row-partitioned expand-sort-compress, the CPU analogue of the GPU ESC
/// algorithms [15], [18] (Table II row 2).
mtx::CsrMatrix esc_column_spgemm(const SpGemmProblem& p);

/// Outer-product with incremental sorted-merge accumulation, after
/// Buluç & Gilbert [23] (Table I upper-right cell).  O(k) merge rounds —
/// the paper dismisses it as "too expensive"; included for completeness and
/// gated to small problems in the benches.
mtx::CsrMatrix outer_heap_spgemm(const SpGemmProblem& p);

}  // namespace pbs
