// HashSpGEMM — row-wise Gustavson with linear-probing hash accumulation
// (paper Sec. IV-A, after Nagasaka et al. [12], [27]).
#include "spgemm/hash_impl.hpp"
#include "spgemm/hash_table.hpp"

namespace pbs {

mtx::CsrMatrix hash_spgemm(const SpGemmProblem& p) {
  return detail::hash_spgemm_impl<detail::HashAccumulator>(p);
}

}  // namespace pbs
