// HashSpGEMM — row-wise Gustavson with linear-probing hash accumulation
// (paper Sec. IV-A, after Nagasaka et al. [12], [27]).
//
// Generalized over any semiring via the keyed insert-or-combine step in
// hash_table.hpp (hash_spgemm_semiring<S>); hash_spgemm is the numeric
// (+, ×) instantiation, and the masked form fuses an output mask into
// both the symbolic and numeric row loops (see hash_impl.hpp).
#include "spgemm/hash_impl.hpp"
#include "spgemm/hash_table.hpp"
#include "spgemm/masked.hpp"
#include "spgemm/op.hpp"
#include "spgemm/semiring.hpp"

namespace pbs {

template <typename S>
mtx::CsrMatrix hash_spgemm_semiring(const SpGemmProblem& p) {
  return detail::hash_spgemm_impl<S, detail::HashAccumulator>(p);
}

template mtx::CsrMatrix hash_spgemm_semiring<PlusTimes>(const SpGemmProblem&);
template mtx::CsrMatrix hash_spgemm_semiring<MinPlus>(const SpGemmProblem&);
template mtx::CsrMatrix hash_spgemm_semiring<MaxMin>(const SpGemmProblem&);
template mtx::CsrMatrix hash_spgemm_semiring<BoolOrAnd>(const SpGemmProblem&);
// The runtime-semiring bridge (spgemm/op.hpp).
template mtx::CsrMatrix hash_spgemm_semiring<DynSemiring>(const SpGemmProblem&);

mtx::CsrMatrix hash_spgemm(const SpGemmProblem& p) {
  return hash_spgemm_semiring<PlusTimes>(p);
}

template <typename S>
mtx::CsrMatrix hash_masked_semiring(const SpGemmProblem& p,
                                    const mtx::CsrMatrix& mask,
                                    bool complement) {
  detail::check_mask_shape("hash_masked_semiring", p, mask);
  return detail::hash_spgemm_impl<S, detail::HashAccumulator>(p, &mask,
                                                              complement);
}

template mtx::CsrMatrix hash_masked_semiring<PlusTimes>(const SpGemmProblem&,
                                                        const mtx::CsrMatrix&,
                                                        bool);
template mtx::CsrMatrix hash_masked_semiring<MinPlus>(const SpGemmProblem&,
                                                      const mtx::CsrMatrix&,
                                                      bool);
template mtx::CsrMatrix hash_masked_semiring<MaxMin>(const SpGemmProblem&,
                                                     const mtx::CsrMatrix&,
                                                     bool);
template mtx::CsrMatrix hash_masked_semiring<BoolOrAnd>(const SpGemmProblem&,
                                                        const mtx::CsrMatrix&,
                                                        bool);
template mtx::CsrMatrix hash_masked_semiring<DynSemiring>(
    const SpGemmProblem&, const mtx::CsrMatrix&, bool);

}  // namespace pbs
