// Epilogue helpers for the execution paths that cannot fuse.
//
// The PB pipeline applies SpGemmOp::post_op inside its per-bin filter
// stage and merges an accumulation target during CSR conversion
// (pb/sort_compress_impl.hpp, pb/output_accum.hpp), so the shaped output
// is the only one that ever exists.  The row-wise kernels (heap, hash,
// spa) and the executor's degraded/fallback runs produce the plain
// product; this header gives them the same semantics as one post-pass:
//
//   apply_post_op(c, op)   — scale / prune / top-k in place, row by row,
//                            bit-identical in selection and ordering to
//                            the fused pb path (scale first, prune
//                            |v| < threshold, top-k by (|v| desc, col
//                            asc), survivors in ascending column order)
//   accumulate             — semiring_ewise_add (spgemm/op.hpp) IS the
//                            row-merge post-pass; the fused pb builders
//                            are verified bit-identical against it
//
// Keeping the unfused epilogue in one place is what lets the executor
// guarantee "same result, different traffic" across every algo.
#pragma once

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/post_op.hpp"
#include "matrix/csr.hpp"

namespace pbs {

/// Applies the post-op to one row segment [begin, end) of (colids, vals),
/// compacting survivors to the front of the segment in ascending column
/// order.  Returns the survivor count.  `sel` is caller-provided scratch
/// so a parallel driver reuses one allocation per thread.
inline nnz_t post_op_row(const PostOp& op, index_t* colids, value_t* vals,
                         nnz_t begin, nnz_t end,
                         std::vector<std::pair<double, nnz_t>>& sel) {
  sel.clear();
  for (nnz_t t = begin; t < end; ++t) {
    const double av = std::abs(vals[t]);
    if (op.prune_threshold > 0 && av < op.prune_threshold) continue;
    sel.emplace_back(av, t);
  }
  // (|v| desc, index asc) — within a row index order is column order, so
  // this is the same total order the fused pb filter and
  // mtx::keep_top_k_per_row select under.
  const auto larger = [](const std::pair<double, nnz_t>& x,
                         const std::pair<double, nnz_t>& y) {
    return x.first > y.first || (x.first == y.first && x.second < y.second);
  };
  if (op.top_k > 0 && sel.size() > static_cast<std::size_t>(op.top_k)) {
    const auto kth = sel.begin() + (op.top_k - 1);
    std::nth_element(sel.begin(), kth, sel.end(), larger);
    const auto cut = *kth;
    sel.erase(std::remove_if(sel.begin(), sel.end(),
                             [&](const std::pair<double, nnz_t>& e) {
                               return larger(cut, e);
                             }),
              sel.end());
    std::sort(sel.begin(), sel.end(),
              [](const std::pair<double, nnz_t>& x,
                 const std::pair<double, nnz_t>& y) {
                return x.second < y.second;
              });
  }
  nnz_t out = begin;
  for (const auto& e : sel) {
    if (e.second != out) {
      colids[out] = colids[e.second];
      vals[out] = vals[e.second];
    }
    ++out;
  }
  return out - begin;
}

/// Applies `op` to a finished CSR matrix in place — the unfused epilogue
/// the executor runs after row-wise kernels and fallback executions.
/// Scale rewrites values; prune/top-k compact the matrix (rowptr shrinks).
/// No-op when the post-op is the identity.
inline void apply_post_op(mtx::CsrMatrix& c, const PostOp& op) {
  if (!op.active()) return;
  if (op.scale != 1.0) {
    const nnz_t n = c.nnz();
#pragma omp parallel for schedule(static)
    for (nnz_t i = 0; i < n; ++i) c.vals[i] *= op.scale;
  }
  if (!op.drops_entries()) return;

  // Pass 1: per-row selection, survivors compacted to the front of each
  // row's original segment (rows are independent — safe in parallel).
  std::vector<nnz_t> kept(static_cast<std::size_t>(c.nrows) + 1, 0);
#pragma omp parallel
  {
    std::vector<std::pair<double, nnz_t>> sel;
#pragma omp for schedule(dynamic, 64)
    for (index_t r = 0; r < c.nrows; ++r) {
      kept[static_cast<std::size_t>(r) + 1] = post_op_row(
          op, c.colids.data(), c.vals.data(), c.rowptr[r], c.rowptr[r + 1],
          sel);
    }
  }
  for (index_t r = 0; r < c.nrows; ++r) kept[r + 1] += kept[r];

  // Pass 2: close the gaps between rows.
  std::vector<index_t> colids(static_cast<std::size_t>(kept[c.nrows]));
  std::vector<value_t> vals(colids.size());
#pragma omp parallel for schedule(static)
  for (index_t r = 0; r < c.nrows; ++r) {
    const nnz_t src = c.rowptr[r];
    const nnz_t dst = kept[r];
    const nnz_t n = kept[r + 1] - dst;
    std::copy_n(c.colids.begin() + src, n, colids.begin() + dst);
    std::copy_n(c.vals.begin() + src, n, vals.begin() + dst);
  }
  c.rowptr = std::move(kept);
  c.colids = std::move(colids);
  c.vals = std::move(vals);
}

}  // namespace pbs
