#include "spgemm/registry.hpp"

#include <stdexcept>

#include "pb/pb_spgemm.hpp"
#include "spgemm/semiring.hpp"

namespace pbs {

namespace {

const std::vector<std::string>& all_semirings() { return semiring_names(); }

/// One flop-sized Cˆ scratch per thread, shared by every pb_run<S>
/// instantiation (the workspace holds raw tuples, so semirings can share
/// it — and must live outside the template, or each instantiation would
/// retain its own copy).  Reuse across calls means repeated invocations —
/// benchmarks, iterative applications — pay its page faults once, not per
/// call.
pb::PbWorkspace& pb_shared_workspace() {
  thread_local pb::PbWorkspace workspace;
  return workspace;
}

/// PB over semiring S through the shared per-thread workspace.
template <typename S>
mtx::CsrMatrix pb_run(const SpGemmProblem& p) {
  return pb::pb_spgemm<S>(p.a_csc, p.b_csr, pb::PbConfig{},
                          pb_shared_workspace())
      .c;
}

template <typename S>
mtx::CsrMatrix heap_run(const SpGemmProblem& p) {
  return heap_spgemm_semiring<S>(p);
}

template <typename S>
mtx::CsrMatrix spa_run(const SpGemmProblem& p) {
  return spgemm_semiring<S>(p.a_csr, p.b_csr);
}

}  // namespace

bool AlgoInfo::supports_semiring(const std::string& semiring) const {
  for (const std::string& s : semirings) {
    if (s == semiring) return true;
  }
  return false;
}

const std::vector<AlgoInfo>& algorithms() {
  static const std::vector<AlgoInfo> algos = {
      {"pb",
       "PB-SpGEMM: outer-product ESC with propagation blocking (this paper)",
       pb_run<PlusTimes>, true, all_semirings()},
      {"heap", "column/row Gustavson with k-way heap merge [22]",
       heap_spgemm, true, all_semirings()},
      {"hash", "column/row Gustavson with hash accumulation [12]",
       hash_spgemm, true},
      {"hashvec", "hash variant with vectorized bucket-group probing [12]",
       hashvec_spgemm, true},
      {"spa", "column/row Gustavson with dense accumulator [25]",
       spa_spgemm, true, all_semirings()},
      {"esc", "row-partitioned expand-sort-compress [15]",
       esc_column_spgemm, true},
      {"outer_heap",
       "outer product with incremental sorted-merge accumulation [23]",
       outer_heap_spgemm, false},
      {"reference", "serial ordered-map gold standard (validation only)",
       reference_spgemm, false},
  };
  return algos;
}

const AlgoInfo* find_algorithm(const std::string& name) noexcept {
  for (const AlgoInfo& a : algorithms()) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const AlgoInfo& algorithm(const std::string& name) {
  if (const AlgoInfo* a = find_algorithm(name)) return *a;
  std::string valid;
  for (const AlgoInfo& a : algorithms()) valid += a.name + " ";
  throw std::invalid_argument("unknown SpGEMM algorithm '" + name +
                              "'; valid: " + valid);
}

std::string algorithm_semiring_matrix() {
  std::string out;
  for (const AlgoInfo& a : algorithms()) {
    out += "  " + a.name + ":";
    for (const std::string& s : a.semirings) out += " " + s;
    out += "\n";
  }
  return out;
}

SpGemmFn semiring_algorithm(const std::string& algo,
                            const std::string& semiring) {
  const AlgoInfo& info = algorithm(algo);  // throws on unknown algorithm

  if (!is_semiring_name(semiring)) {
    std::string valid;
    for (const std::string& s : semiring_names()) valid += s + " ";
    throw std::invalid_argument(
        "unknown semiring '" + semiring + "'; valid: " + valid +
        "\nsupported (algorithm, semiring) combinations:\n" +
        algorithm_semiring_matrix());
  }
  if (!info.supports_semiring(semiring)) {
    throw std::invalid_argument(
        "algorithm '" + algo + "' does not support semiring '" + semiring +
        "' (it is numeric plus_times-only)\n"
        "supported (algorithm, semiring) combinations:\n" +
        algorithm_semiring_matrix());
  }

  if (semiring == PlusTimes::name) return info.fn;

  // The generalized kernels.  Only pb, heap and spa register semirings
  // beyond plus_times, so this switch is exhaustive.
  return dispatch_semiring(semiring, [&]<typename S>() -> SpGemmFn {
    if (algo == "pb") return pb_run<S>;
    if (algo == "heap") return heap_run<S>;
    if (algo == "spa") return spa_run<S>;
    throw std::logic_error("registry: algorithm '" + algo +
                           "' advertises semiring '" + semiring +
                           "' but has no generalized kernel");
  });
}

std::vector<AlgoInfo> paper_comparison_set() {
  return {algorithm("pb"), algorithm("heap"), algorithm("hash"),
          algorithm("hashvec")};
}

}  // namespace pbs
