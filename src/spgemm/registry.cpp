#include "spgemm/registry.hpp"

#include <stdexcept>

#include "pb/pb_spgemm.hpp"

namespace pbs {

const std::vector<AlgoInfo>& algorithms() {
  static const std::vector<AlgoInfo> algos = {
      {"pb",
       "PB-SpGEMM: outer-product ESC with propagation blocking (this paper)",
       [](const SpGemmProblem& p) {
         // The flop-sized Cˆ scratch is reused across calls on each thread
         // (see PbWorkspace) so that repeated invocations — benchmarks,
         // iterative applications — pay its page faults once, not per call.
         thread_local pb::PbWorkspace workspace;
         return pb::pb_spgemm(p.a_csc, p.b_csr, pb::PbConfig{}, workspace).c;
       },
       true},
      {"heap", "column/row Gustavson with k-way heap merge [22]",
       heap_spgemm, true},
      {"hash", "column/row Gustavson with hash accumulation [12]",
       hash_spgemm, true},
      {"hashvec", "hash variant with vectorized bucket-group probing [12]",
       hashvec_spgemm, true},
      {"spa", "column/row Gustavson with dense accumulator [25]",
       spa_spgemm, true},
      {"esc", "row-partitioned expand-sort-compress [15]",
       esc_column_spgemm, true},
      {"outer_heap",
       "outer product with incremental sorted-merge accumulation [23]",
       outer_heap_spgemm, false},
      {"reference", "serial ordered-map gold standard (validation only)",
       reference_spgemm, false},
  };
  return algos;
}

const AlgoInfo& algorithm(const std::string& name) {
  for (const AlgoInfo& a : algorithms()) {
    if (a.name == name) return a;
  }
  std::string valid;
  for (const AlgoInfo& a : algorithms()) valid += a.name + " ";
  throw std::invalid_argument("unknown SpGEMM algorithm '" + name +
                              "'; valid: " + valid);
}

std::vector<AlgoInfo> paper_comparison_set() {
  return {algorithm("pb"), algorithm("heap"), algorithm("hash"),
          algorithm("hashvec")};
}

}  // namespace pbs
