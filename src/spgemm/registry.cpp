#include "spgemm/registry.hpp"

#include <stdexcept>

#include "matrix/ops.hpp"
#include "pb/pb_spgemm.hpp"
#include "pb/plan.hpp"
#include "spgemm/masked.hpp"
#include "spgemm/op.hpp"
#include "spgemm/semiring.hpp"

namespace pbs {

namespace {

const std::vector<std::string>& all_semirings() { return semiring_names(); }

/// One flop-sized Cˆ scratch per thread, shared by every pb_run<S>
/// instantiation (the workspace holds raw tuples, so semirings can share
/// it — and must live outside the template, or each instantiation would
/// retain its own copy).  Reuse across calls means repeated invocations —
/// benchmarks, iterative applications — pay its page faults once, not per
/// call.
pb::PbWorkspace& pb_shared_workspace() {
  thread_local pb::PbWorkspace workspace;
  return workspace;
}

/// PB over semiring S through the shared per-thread workspace.
template <typename S>
mtx::CsrMatrix pb_run(const SpGemmProblem& p) {
  return pb::pb_spgemm<S>(p.a_csc, p.b_csr, pb::PbConfig{},
                          pb_shared_workspace())
      .c;
}

template <typename S>
mtx::CsrMatrix heap_run(const SpGemmProblem& p) {
  return heap_spgemm_semiring<S>(p);
}

template <typename S>
mtx::CsrMatrix hash_run(const SpGemmProblem& p) {
  return hash_spgemm_semiring<S>(p);
}

template <typename S>
mtx::CsrMatrix spa_run(const SpGemmProblem& p) {
  return spgemm_semiring<S>(p.a_csr, p.b_csr);
}

template <typename S>
mtx::CsrMatrix reference_run(const SpGemmProblem& p) {
  return reference_spgemm_semiring<S>(p);
}

/// The generalized kernel of `algo` over S; algo must be one of the
/// registry entries flagged `generalized`.
template <typename S>
SpGemmFn generalized_kernel(const std::string& algo) {
  if (algo == "pb") return pb_run<S>;
  if (algo == "heap") return heap_run<S>;
  if (algo == "hash") return hash_run<S>;
  if (algo == "spa") return spa_run<S>;
  if (algo == "reference") return reference_run<S>;
  throw std::logic_error("registry: algorithm '" + algo +
                         "' advertises generalized semirings but has no "
                         "generalized kernel");
}

/// Ditto for the fused masked kernels.  PB fuses the mask at its compress
/// stage; heap/hash/spa in their row loops; the remaining baselines fall
/// back to multiply-then-pattern_filter (exact, unfused).
template <typename S>
SpGemmFn masked_kernel(const std::string& algo, const mtx::CsrMatrix* mask,
                       bool complement) {
  if (algo == "pb") {
    return [mask, complement](const SpGemmProblem& p) {
      // Fresh build + masked execute through the shared workspace; the
      // plan was just built from these operands, so skip the fingerprint.
      const pb::PbPlan plan =
          pb::pb_plan_build(p.a_csc, p.b_csr, pb::PbConfig{});
      const pb::MaskSpec ms{mask, complement};
      return pb::pb_execute<S>(p.a_csc, p.b_csr, plan, pb_shared_workspace(),
                               /*check_fingerprint=*/false, ms)
          .c;
    };
  }
  if (algo == "heap") {
    return [mask, complement](const SpGemmProblem& p) {
      return heap_masked_semiring<S>(p, *mask, complement);
    };
  }
  if (algo == "hash") {
    return [mask, complement](const SpGemmProblem& p) {
      return hash_masked_semiring<S>(p, *mask, complement);
    };
  }
  if (algo == "spa") {
    return [mask, complement](const SpGemmProblem& p) {
      detail::check_mask_shape("spgemm_masked_semiring", p, *mask);
      return spgemm_masked_semiring<S>(p.a_csr, p.b_csr, *mask, complement);
    };
  }
  // Unfused fallback: exact result, paid as a full multiply plus an
  // O(nnz) pattern filter.  Generalized algorithms without a fused masked
  // form (reference) resolve their kernel directly — S may be the runtime
  // bridge, whose sentinel name must not be re-looked-up; the numeric-only
  // baselines only ever reach here with a built-in S.
  const SpGemmFn plain = algorithm(algo).generalized
                             ? generalized_kernel<S>(algo)
                             : semiring_algorithm(algo, S::name);
  return [plain, mask, complement](const SpGemmProblem& p) {
    detail::check_mask_shape("masked_semiring_algorithm", p, *mask);
    return mtx::pattern_filter(plain(p), *mask, complement);
  };
}

/// Validates the (algo, semiring) pair against the registry + runtime
/// semiring registry; returns the resolved AlgoInfo.
const AlgoInfo& check_pair(const std::string& algo,
                           const std::string& semiring) {
  const AlgoInfo& info = algorithm(algo);  // throws on unknown algorithm

  if (!is_registered_semiring(semiring)) {
    std::string valid;
    for (const std::string& s : SemiringRegistry::instance().names())
      valid += s + " ";
    throw std::invalid_argument(
        "unknown semiring '" + semiring + "'; registered: " + valid +
        "\nsupported (algorithm, semiring) combinations:\n" +
        algorithm_semiring_matrix());
  }
  if (!info.supports_semiring(semiring)) {
    throw std::invalid_argument(
        "algorithm '" + algo + "' does not support semiring '" + semiring +
        "' (it is numeric plus_times-only)\n"
        "supported (algorithm, semiring) combinations:\n" +
        algorithm_semiring_matrix());
  }
  return info;
}

}  // namespace

bool AlgoInfo::supports_semiring(const std::string& semiring) const {
  for (const std::string& s : semirings) {
    if (s == semiring) return true;
  }
  // Generalized kernels accept any runtime-registered semiring through the
  // DynSemiring bridge.
  return generalized && is_registered_semiring(semiring);
}

const std::vector<AlgoInfo>& algorithms() {
  static const std::vector<AlgoInfo> algos = {
      {"pb",
       "PB-SpGEMM: outer-product ESC with propagation blocking (this paper)",
       pb_run<PlusTimes>, true, all_semirings(), true},
      {"heap", "column/row Gustavson with k-way heap merge [22]",
       heap_spgemm, true, all_semirings(), true},
      {"hash", "column/row Gustavson with hash accumulation [12]",
       hash_spgemm, true, all_semirings(), true},
      {"hashvec", "hash variant with vectorized bucket-group probing [12]",
       hashvec_spgemm, true},
      {"spa", "column/row Gustavson with dense accumulator [25]",
       spa_spgemm, true, all_semirings(), true},
      {"esc", "row-partitioned expand-sort-compress [15]",
       esc_column_spgemm, true},
      {"outer_heap",
       "outer product with incremental sorted-merge accumulation [23]",
       outer_heap_spgemm, false},
      {"reference", "serial ordered-map gold standard (validation only)",
       reference_spgemm, false, all_semirings(), true},
  };
  return algos;
}

const AlgoInfo* find_algorithm(const std::string& name) noexcept {
  for (const AlgoInfo& a : algorithms()) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

const AlgoInfo& algorithm(const std::string& name) {
  if (const AlgoInfo* a = find_algorithm(name)) return *a;
  std::string valid;
  for (const AlgoInfo& a : algorithms()) valid += a.name + " ";
  throw std::invalid_argument("unknown SpGEMM algorithm '" + name +
                              "'; valid: " + valid);
}

std::string algorithm_semiring_matrix() {
  // Generalized algorithms list every registered semiring (so runtime
  // registrations show up); the rest list their static (plus_times) set.
  const std::vector<std::string> registered =
      SemiringRegistry::instance().names();
  std::string out;
  for (const AlgoInfo& a : algorithms()) {
    out += "  " + a.name + ":";
    for (const std::string& s : a.generalized ? registered : a.semirings)
      out += " " + s;
    out += "\n";
  }
  return out;
}

SpGemmFn semiring_algorithm(const std::string& algo,
                            const std::string& semiring) {
  const AlgoInfo& info = check_pair(algo, semiring);

  if (semiring == PlusTimes::name) return info.fn;

  // The generalized kernels; check_pair guarantees the pair is supported,
  // so `semiring` here is a non-plus_times name of a generalized algorithm
  // (built-in via the compiled instantiations, runtime via DynSemiring).
  if (is_semiring_name(semiring)) {
    return dispatch_semiring(semiring, [&]<typename S>() -> SpGemmFn {
      return generalized_kernel<S>(algo);
    });
  }
  // Runtime-registered: capture the semiring by value and activate it
  // around every call (the registry never removes entries, but a value
  // copy keeps the kernel self-contained).
  const RuntimeSemiring rs = SemiringRegistry::instance().at(semiring);
  const SpGemmFn inner = generalized_kernel<DynSemiring>(algo);
  return [rs, inner](const SpGemmProblem& p) {
    detail::ScopedSemiring guard(&rs);
    return inner(p);
  };
}

SpGemmFn masked_semiring_algorithm(const std::string& algo,
                                   const std::string& semiring,
                                   const mtx::CsrMatrix* mask,
                                   bool complement) {
  if (mask == nullptr) return semiring_algorithm(algo, semiring);
  check_pair(algo, semiring);

  if (is_semiring_name(semiring)) {
    return dispatch_semiring(semiring, [&]<typename S>() -> SpGemmFn {
      return masked_kernel<S>(algo, mask, complement);
    });
  }
  const RuntimeSemiring rs = SemiringRegistry::instance().at(semiring);
  const SpGemmFn inner = masked_kernel<DynSemiring>(algo, mask, complement);
  return [rs, inner](const SpGemmProblem& p) {
    detail::ScopedSemiring guard(&rs);
    return inner(p);
  };
}

std::vector<AlgoInfo> paper_comparison_set() {
  return {algorithm("pb"), algorithm("heap"), algorithm("hash"),
          algorithm("hashvec")};
}

}  // namespace pbs
