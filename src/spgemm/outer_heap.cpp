// Outer-product SpGEMM with incremental sorted-merge accumulation, after
// Buluç & Gilbert's hypersparse outer-product formulation [23] — Table I's
// upper-right cell.
//
// Every iteration i forms the rank-1 product A(:,i)·B(i,:) (already sorted
// by (row, col) because CSC columns are row-sorted and CSR rows are
// col-sorted) and merges it into a running accumulator.  The paper points
// out this needs k merge passes and "is too expensive"; it exists here so
// the comparison can be reproduced, and the benches gate it to small inputs.
//
// Parallelization: the i-range is split into per-thread chunks that each
// accumulate privately, followed by a pairwise merge tree.
#include <omp.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "spgemm/spgemm.hpp"

namespace pbs {

namespace {

struct Acc {
  std::vector<std::uint64_t> keys;  // (row << 32) | col, sorted
  std::vector<value_t> vals;
};

std::uint64_t make_key(index_t r, index_t c) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)) << 32) |
         static_cast<std::uint32_t>(c);
}

/// Sorted-union merge of two accumulators, summing equal keys.
Acc merge(const Acc& x, const Acc& y) {
  Acc out;
  out.keys.reserve(x.keys.size() + y.keys.size());
  out.vals.reserve(x.keys.size() + y.keys.size());
  std::size_t i = 0, j = 0;
  while (i < x.keys.size() || j < y.keys.size()) {
    if (j == y.keys.size() || (i < x.keys.size() && x.keys[i] < y.keys[j])) {
      out.keys.push_back(x.keys[i]);
      out.vals.push_back(x.vals[i]);
      ++i;
    } else if (i == x.keys.size() || y.keys[j] < x.keys[i]) {
      out.keys.push_back(y.keys[j]);
      out.vals.push_back(y.vals[j]);
      ++j;
    } else {
      out.keys.push_back(x.keys[i]);
      out.vals.push_back(x.vals[i] + y.vals[j]);
      ++i;
      ++j;
    }
  }
  return out;
}

}  // namespace

mtx::CsrMatrix outer_heap_spgemm(const SpGemmProblem& p) {
  const mtx::CscMatrix& a = p.a_csc;
  const mtx::CsrMatrix& b = p.b_csr;
  const index_t k = a.ncols;

  const int nthreads = max_threads();
  std::vector<Acc> partial(static_cast<std::size_t>(nthreads));

#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    const int nt = omp_get_num_threads();
    const index_t chunk = (k + nt - 1) / nt;
    const index_t lo = std::min<index_t>(k, chunk * tid);
    const index_t hi = std::min<index_t>(k, lo + chunk);

    Acc acc;
    Acc rank1;
    for (index_t i = lo; i < hi; ++i) {
      rank1.keys.clear();
      rank1.vals.clear();
      for (nnz_t ai = a.colptr[i]; ai < a.colptr[static_cast<std::size_t>(i) + 1]; ++ai) {
        const index_t r = a.rowids[ai];
        const value_t av = a.vals[ai];
        for (nnz_t bi = b.rowptr[i]; bi < b.rowptr[static_cast<std::size_t>(i) + 1]; ++bi) {
          rank1.keys.push_back(make_key(r, b.colids[bi]));
          rank1.vals.push_back(av * b.vals[bi]);
        }
      }
      acc = merge(acc, rank1);
    }
    partial[static_cast<std::size_t>(tid)] = std::move(acc);
  }

  // Pairwise merge tree over per-thread partials.
  for (int stride = 1; stride < nthreads; stride *= 2) {
#pragma omp parallel for schedule(dynamic, 1)
    for (int t = 0; t < nthreads; t += 2 * stride) {
      if (t + stride < nthreads) {
        partial[static_cast<std::size_t>(t)] =
            merge(partial[static_cast<std::size_t>(t)],
                  partial[static_cast<std::size_t>(t + stride)]);
        partial[static_cast<std::size_t>(t + stride)] = Acc{};
      }
    }
  }

  const Acc& total = partial[0];
  mtx::CsrMatrix out(a.nrows, b.ncols);
  out.colids.resize(total.keys.size());
  out.vals.resize(total.keys.size());
  for (std::size_t i = 0; i < total.keys.size(); ++i) {
    const auto r = static_cast<index_t>(total.keys[i] >> 32);
    const auto c = static_cast<index_t>(total.keys[i] & 0xFFFFFFFFu);
    ++out.rowptr[static_cast<std::size_t>(r) + 1];
    out.colids[i] = c;
    out.vals[i] = total.vals[i];
  }
  for (index_t r = 0; r < a.nrows; ++r)
    out.rowptr[static_cast<std::size_t>(r) + 1] += out.rowptr[r];
  return out;
}

}  // namespace pbs
