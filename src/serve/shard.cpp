#include "serve/shard.hpp"

#include <algorithm>
#include <exception>
#include <stdexcept>
#include <thread>

#include "common/errors.hpp"
#include "common/numa.hpp"
#include "pb/partitioned.hpp"

#ifdef __linux__
#include <sched.h>
#endif

namespace pbs::serve {

namespace {

/// Best-effort affinity to one NUMA node's cpu set.  A no-op when the
/// topology is unknown or single-node — then first-touch already lands
/// everything on the only node there is.
void pin_to_node(int node) {
#ifdef __linux__
  const NumaTopology& topo = numa_topology();
  if (topo.nnodes <= 1 || topo.cpu_to_node.empty()) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (std::size_t cpu = 0; cpu < topo.cpu_to_node.size(); ++cpu) {
    if (topo.cpu_to_node[cpu] == node && cpu < CPU_SETSIZE) {
      CPU_SET(cpu, &set);
      any = true;
    }
  }
  if (any) (void)sched_setaffinity(0, sizeof(set), &set);
#else
  (void)node;
#endif
}

/// Re-bases a tile's column ids into the global column space: the tile
/// computed columns [col_lo, col_lo + tile.ncols) of a ncols-wide C.
mtx::CsrMatrix widen_cols(const mtx::CsrMatrix& tile, index_t col_lo,
                          index_t ncols) {
  mtx::CsrMatrix out = tile;
  out.ncols = ncols;
  for (index_t& c : out.colids) c += col_lo;
  return out;
}

}  // namespace

ShardRouter::ShardRouter(ShardOptions opts)
    : rows_(std::max(opts.rows, 1)),
      cols_(std::max(opts.cols, 1)),
      pin_numa_(opts.pin_numa) {
  shards_.reserve(static_cast<std::size_t>(nshards()));
  for (int s = 0; s < nshards(); ++s) {
    shards_.push_back(std::make_unique<SpGemmExecutor>(opts.executor));
  }
}

mtx::CsrMatrix ShardRouter::run(const SpGemmProblem& p, const SpGemmOp& op,
                                const RunOptions& ropts, RunInfo* info) {
  return run_impl(p, op, ropts, info, /*values_only=*/false);
}

mtx::CsrMatrix ShardRouter::run_values_updated(const SpGemmProblem& p,
                                               const SpGemmOp& op,
                                               const RunOptions& ropts,
                                               RunInfo* info) {
  return run_impl(p, op, ropts, info, /*values_only=*/true);
}

mtx::CsrMatrix ShardRouter::run_impl(const SpGemmProblem& p,
                                     const SpGemmOp& op,
                                     const RunOptions& ropts, RunInfo* info,
                                     bool values_only) {
  if (nshards() == 1) {
    return values_only ? shards_[0]->run_values_updated(p, op, ropts, info)
                       : shards_[0]->run(p, op, ropts, info);
  }
  if (p.a_csr.ncols != p.b_csr.nrows) {
    throw std::invalid_argument("ShardRouter: dimensions differ");
  }
  if (op.accumulate) {
    throw std::logic_error(
        "ShardRouter: accumulating ops are not routable (accumulate "
        "client-side over the returned product)");
  }

  const index_t nrows = p.a_csr.nrows;
  const index_t ncols = p.b_csr.ncols;
  const std::vector<index_t> rb = pb::split_ranges(nrows, rows_);
  const std::vector<index_t> cb = pb::split_ranges(ncols, cols_);

  const int n = nshards();
  std::vector<mtx::CsrMatrix> tiles(static_cast<std::size_t>(n));
  std::vector<RunInfo> infos(static_cast<std::size_t>(n));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  const int nnodes = numa_topology().nnodes;

  for (int s = 0; s < n; ++s) {
    threads.emplace_back([&, s] {
      try {
        if (pin_numa_) pin_to_node(s % nnodes);
        const int r = s / cols_;
        const int c = s % cols_;
        // Slice on the shard's own thread: with pinning, first touch
        // places every tile operand on the shard's node.
        const mtx::CsrMatrix a_tile =
            pb::slice_rows(p.a_csr, rb[static_cast<std::size_t>(r)],
                           rb[static_cast<std::size_t>(r) + 1]);
        const mtx::CsrMatrix b_tile =
            pb::slice_cols(p.b_csr, cb[static_cast<std::size_t>(c)],
                           cb[static_cast<std::size_t>(c) + 1]);
        mtx::CsrMatrix mask_tile;
        SpGemmOp tile_op = op;
        if (op.mask != nullptr) {
          mask_tile = pb::slice_cols(
              pb::slice_rows(*op.mask, rb[static_cast<std::size_t>(r)],
                             rb[static_cast<std::size_t>(r) + 1]),
              cb[static_cast<std::size_t>(c)],
              cb[static_cast<std::size_t>(c) + 1]);
          tile_op.mask = &mask_tile;
        }
        const SpGemmProblem tp = SpGemmProblem::multiply(a_tile, b_tile);
        auto& exec = *shards_[static_cast<std::size_t>(s)];
        tiles[static_cast<std::size_t>(s)] =
            values_only
                ? exec.run_values_updated(tp, tile_op, ropts,
                                          &infos[static_cast<std::size_t>(s)])
                : exec.run(tp, tile_op, ropts,
                           &infos[static_cast<std::size_t>(s)]);
      } catch (...) {
        errors[static_cast<std::size_t>(s)] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Root-cause preference mirrors the executor's batch fan-out: a tile
  // that failed for a real reason beats tiles that merely got cancelled
  // in its wake.
  std::exception_ptr first;
  std::exception_ptr non_cancel;
  for (const std::exception_ptr& e : errors) {
    if (e == nullptr) continue;
    if (first == nullptr) first = e;
    if (non_cancel == nullptr) {
      try {
        std::rethrow_exception(e);
      } catch (const CancelledError&) {
      } catch (...) {
        non_cancel = e;
      }
    }
  }
  if (non_cancel != nullptr) std::rethrow_exception(non_cancel);
  if (first != nullptr) std::rethrow_exception(first);

  // Merge: per row block, fold the widened column tiles with the
  // semiring's e-wise add (disjoint patterns: values copy through), then
  // stack the row blocks.
  std::vector<mtx::CsrMatrix> row_blocks;
  row_blocks.reserve(static_cast<std::size_t>(rows_));
  for (int r = 0; r < rows_; ++r) {
    mtx::CsrMatrix merged =
        widen_cols(tiles[static_cast<std::size_t>(r * cols_)], cb[0], ncols);
    for (int c = 1; c < cols_; ++c) {
      merged = semiring_ewise_add(
          op.semiring, merged,
          widen_cols(tiles[static_cast<std::size_t>(r * cols_ + c)],
                     cb[static_cast<std::size_t>(c)], ncols));
    }
    row_blocks.push_back(std::move(merged));
  }
  mtx::CsrMatrix out = pb::stack_row_blocks(row_blocks, nrows, ncols);

  if (info != nullptr) {
    *info = infos[0];
    for (int s = 1; s < n; ++s) {
      const RunInfo& i = infos[static_cast<std::size_t>(s)];
      info->cache_hit = info->cache_hit && i.cache_hit;
      info->value_only = info->value_only && i.value_only;
      info->used_pb = info->used_pb || i.used_pb;
      if (i.degraded && !info->degraded) {
        info->degraded = true;
        info->degrade_reason = i.degrade_reason;
      }
      info->plan_seconds += i.plan_seconds;
      info->flop += i.flop;
    }
  }
  return out;
}

void ShardRouter::cancel() {
  for (const auto& s : shards_) s->cancel();
}

std::vector<ExecutorStats> ShardRouter::shard_stats() const {
  std::vector<ExecutorStats> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) out.push_back(s->stats());
  return out;
}

ExecutorStats ShardRouter::aggregate_stats() const {
  ExecutorStats agg;
  for (const auto& s : shards_) {
    const ExecutorStats st = s->stats();
    agg.executes += st.executes;
    agg.cache_hits += st.cache_hits;
    agg.cache_misses += st.cache_misses;
    agg.value_only_hits += st.value_only_hits;
    agg.passthrough += st.passthrough;
    agg.evictions += st.evictions;
    agg.cache_entries += st.cache_entries;
    agg.cache_bytes += st.cache_bytes;
    agg.bytes_evicted += st.bytes_evicted;
    agg.batches += st.batches;
    agg.calibrations += st.calibrations;
    agg.degraded_plans += st.degraded_plans;
    agg.degraded_runs += st.degraded_runs;
    agg.oom_fallbacks += st.oom_fallbacks;
    agg.cancelled += st.cancelled;
  }
  return agg;
}

}  // namespace pbs::serve
