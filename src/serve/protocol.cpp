#include "serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <limits>

namespace pbs::serve {

const char* wire_status_name(WireStatus s) noexcept {
  switch (s) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kValidation: return "validation";
    case WireStatus::kDeadline: return "deadline";
    case WireStatus::kCancelled: return "cancelled";
    case WireStatus::kMemoryBudget: return "memory_budget";
    case WireStatus::kOverloaded: return "overloaded";
    case WireStatus::kMalformed: return "malformed";
    case WireStatus::kUnknownHandle: return "unknown_handle";
    case WireStatus::kUnsupported: return "unsupported";
    case WireStatus::kInternal: return "internal";
  }
  return "?";
}

// ---- writer ----------------------------------------------------------------

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  const auto* b = reinterpret_cast<const std::uint8_t*>(s.data());
  buf_.insert(buf_.end(), b, b + s.size());
}

void WireWriter::csr(const mtx::CsrMatrix& m) {
  // One exact reservation: appending a multi-megabyte matrix must not
  // re-copy the buffer through the vector's growth doublings.
  reserve(16 + m.rowptr.size() * sizeof(nnz_t) +
          m.colids.size() * sizeof(index_t) + m.vals.size() * sizeof(value_t));
  u32(static_cast<std::uint32_t>(m.nrows));
  u32(static_cast<std::uint32_t>(m.ncols));
  u64(static_cast<std::uint64_t>(m.nnz()));
  raw(m.rowptr.data(), m.rowptr.size() * sizeof(nnz_t));
  raw(m.colids.data(), m.colids.size() * sizeof(index_t));
  raw(m.vals.data(), m.vals.size() * sizeof(value_t));
}

// ---- reader ----------------------------------------------------------------

std::string WireReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return s;
}

mtx::CsrMatrix WireReader::csr() {
  const std::uint32_t nrows = u32();
  const std::uint32_t ncols = u32();
  const std::uint64_t nnz = u64();
  // Size the arrays from the REMAINING bytes before allocating: the
  // declared counts must fit in what the peer actually sent, so a hostile
  // header cannot provoke a giant allocation.  Each component is checked
  // on its own — a single summed bound would let an attacker-chosen nnz
  // near 2^64/12 wrap the total below remaining() and pass.
  const std::uint64_t rem = remaining();
  const std::uint64_t rowptr_bytes =
      (static_cast<std::uint64_t>(nrows) + 1) * sizeof(nnz_t);
  constexpr std::uint64_t kEntryBytes = sizeof(index_t) + sizeof(value_t);
  if (rowptr_bytes > rem || nnz > (rem - rowptr_bytes) / kEntryBytes) {
    throw WireFormatError(
        "wire: csr declares more data than the payload holds");
  }
  mtx::CsrMatrix m(static_cast<index_t>(nrows), static_cast<index_t>(ncols));
  std::memcpy(m.rowptr.data(), data_.data() + pos_,
              m.rowptr.size() * sizeof(nnz_t));
  pos_ += m.rowptr.size() * sizeof(nnz_t);
  if (m.rowptr.front() != 0 ||
      m.rowptr.back() != static_cast<nnz_t>(nnz)) {
    throw WireFormatError("wire: csr rowptr inconsistent with nnz");
  }
  for (std::size_t r = 1; r < m.rowptr.size(); ++r) {
    if (m.rowptr[r] < m.rowptr[r - 1]) {
      throw WireFormatError("wire: csr rowptr not monotone");
    }
  }
  m.colids.resize(static_cast<std::size_t>(nnz));
  m.vals.resize(static_cast<std::size_t>(nnz));
  std::memcpy(m.colids.data(), data_.data() + pos_,
              m.colids.size() * sizeof(index_t));
  pos_ += m.colids.size() * sizeof(index_t);
  std::memcpy(m.vals.data(), data_.data() + pos_,
              m.vals.size() * sizeof(value_t));
  pos_ += m.vals.size() * sizeof(value_t);
  return m;
}

void WireReader::expect_done() const {
  if (remaining() != 0) {
    throw WireFormatError("wire: " + std::to_string(remaining()) +
                          " trailing bytes after the last field");
  }
}

// ---- frame transport -------------------------------------------------------

namespace {

void write_all(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as an
    // error on this connection, not SIGPIPE the whole daemon.
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("wire: send failed: ") +
                               std::strerror(errno));
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

/// Reads exactly n bytes.  Returns false on EOF before the first byte
/// (only legal at a frame boundary); throws WireFormatError on EOF
/// mid-read.
bool read_all(int fd, void* data, std::size_t n, bool eof_ok) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("wire: recv failed: ") +
                               std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw WireFormatError("wire: connection closed mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

void write_frame(int fd, std::span<const std::uint8_t> payload) {
  if (payload.size() > std::numeric_limits<std::uint32_t>::max()) {
    // Before any send: the stream stays framed, the caller can still
    // answer on this connection.
    throw FrameTooLargeError("wire: payload of " +
                             std::to_string(payload.size()) +
                             " bytes does not fit the u32 frame length");
  }
  std::uint8_t header[8];
  const std::uint32_t magic = kFrameMagic;
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::memcpy(header, &magic, 4);
  std::memcpy(header + 4, &len, 4);
  // Header and payload in one gathered send: the peer's blocking header
  // read never needs a separate wakeup.
  iovec iov[2] = {{header, sizeof(header)},
                  {const_cast<std::uint8_t*>(payload.data()), payload.size()}};
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = payload.empty() ? 1 : 2;
  for (;;) {
    const ssize_t w = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("wire: send failed: ") +
                               std::strerror(errno));
    }
    std::size_t sent = static_cast<std::size_t>(w);
    if (sent >= sizeof(header) + payload.size()) return;
    // Partial gathered send: finish the remainder with plain sends.
    if (sent < sizeof(header)) {
      write_all(fd, header + sent, sizeof(header) - sent);
      sent = sizeof(header);
    }
    if (!payload.empty()) {
      write_all(fd, payload.data() + (sent - sizeof(header)),
                payload.size() - (sent - sizeof(header)));
    }
    return;
  }
}

bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                std::size_t max_bytes) {
  std::uint8_t header[8];
  if (!read_all(fd, header, sizeof(header), /*eof_ok=*/true)) return false;
  std::uint32_t magic = 0, len = 0;
  std::memcpy(&magic, header, 4);
  std::memcpy(&len, header + 4, 4);
  if (magic != kFrameMagic) {
    throw WireFormatError("wire: bad frame magic");
  }
  if (len > max_bytes) {
    throw WireFormatError("wire: frame of " + std::to_string(len) +
                          " bytes exceeds the " + std::to_string(max_bytes) +
                          "-byte limit");
  }
  payload.resize(len);
  if (len > 0) (void)read_all(fd, payload.data(), len, /*eof_ok=*/false);
  return true;
}

// ---- typed messages --------------------------------------------------------

std::vector<std::uint8_t> encode_ping() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kPing));
  return w.take();
}

std::vector<std::uint8_t> encode_telemetry_request() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kTelemetry));
  return w.take();
}

std::vector<std::uint8_t> encode_upload(const mtx::CsrMatrix& m) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kUpload));
  w.csr(m);
  return w.take();
}

std::vector<std::uint8_t> encode_update_values(std::uint64_t handle,
                                               const mtx::CsrMatrix& m) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kUpdateValues));
  w.u64(handle);
  w.csr(m);
  return w.take();
}

std::vector<std::uint8_t> encode_release(std::uint64_t handle) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kRelease));
  w.u64(handle);
  return w.take();
}

std::vector<std::uint8_t> encode_multiply(const MultiplyRequest& req) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(MsgType::kMultiply));
  w.str(req.algo);
  w.str(req.semiring);
  std::uint8_t flags = 0;
  if (req.complement) flags |= kFlagComplement;
  if (req.has_mask) flags |= kFlagHasMask;
  if (req.values_only) flags |= kFlagValuesOnly;
  if (req.b_is_a) flags |= kFlagBIsA;
  // Versioned field: an identity post-op emits the pre-post-op body byte
  // for byte (protocol.hpp header comment).
  if (req.post_op.active()) flags |= kFlagHasPostOp;
  w.u8(flags);
  w.f64(req.deadline_ms);
  w.u64(req.a_handle);
  w.u64(req.b_handle);
  if (req.a_handle == 0) w.csr(req.a);
  if (req.b_handle == 0 && !req.b_is_a) w.csr(req.b);
  if (req.has_mask) w.csr(req.mask);
  if (req.post_op.active()) {
    w.f64(req.post_op.scale);
    w.f64(req.post_op.prune_threshold);
    w.u32(static_cast<std::uint32_t>(req.post_op.top_k));
  }
  return w.take();
}

MultiplyRequest decode_multiply(WireReader& r) {
  MultiplyRequest req;
  req.algo = r.str();
  req.semiring = r.str();
  const std::uint8_t flags = r.u8();
  req.complement = (flags & kFlagComplement) != 0;
  req.has_mask = (flags & kFlagHasMask) != 0;
  req.values_only = (flags & kFlagValuesOnly) != 0;
  req.b_is_a = (flags & kFlagBIsA) != 0;
  req.deadline_ms = r.f64();
  req.a_handle = r.u64();
  req.b_handle = r.u64();
  if (req.a_handle == 0) req.a = r.csr();
  if (req.b_handle == 0 && !req.b_is_a) req.b = r.csr();
  if (req.has_mask) req.mask = r.csr();
  if ((flags & kFlagHasPostOp) != 0) {
    req.post_op.scale = r.f64();
    req.post_op.prune_threshold = r.f64();
    // Hostile bytes: a threshold that is negative/NaN or a top_k past
    // index_t would desync the op's invariants downstream — reject in
    // the decoder like every other inconsistent field.
    const std::uint32_t k = r.u32();
    if (!std::isfinite(req.post_op.scale) ||
        !(req.post_op.prune_threshold >= 0) ||
        !std::isfinite(req.post_op.prune_threshold) ||
        k > static_cast<std::uint32_t>(
                std::numeric_limits<index_t>::max())) {
      throw WireFormatError("wire: invalid post-op fields");
    }
    req.post_op.top_k = static_cast<index_t>(k);
  }
  r.expect_done();
  return req;
}

std::vector<std::uint8_t> encode_ok_empty() {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(WireStatus::kOk));
  return w.take();
}

std::vector<std::uint8_t> encode_ok_handle(std::uint64_t handle) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(WireStatus::kOk));
  w.u64(handle);
  return w.take();
}

std::vector<std::uint8_t> encode_ok_text(const std::string& text) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(WireStatus::kOk));
  w.str(text);
  return w.take();
}

std::vector<std::uint8_t> encode_ok_csr(std::uint8_t info_flags,
                                        const mtx::CsrMatrix& c,
                                        std::vector<std::uint8_t> reuse) {
  WireWriter w(std::move(reuse));
  w.u8(static_cast<std::uint8_t>(WireStatus::kOk));
  w.u8(info_flags);
  w.csr(c);
  return w.take();
}

std::vector<std::uint8_t> encode_error(WireStatus status,
                                       const std::string& message) {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(status));
  w.str(message);
  return w.take();
}

}  // namespace pbs::serve
