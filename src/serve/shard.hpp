// 2D tile shard router — PartitionedPlan's row decomposition generalized
// to a row×column grid of independent executors.
//
// CombBLAS-style 2D decomposition (Buluç & Gilbert) splits both operands
// over a process grid; the in-node analogue here splits A row-wise and B
// column-wise, so tile (r, c) computes the full C[rows_r, cols_c] block:
// the k-dimension is NOT split, every tile sees A's full column range and
// B's full row range.  That is what makes the route bit-identical to a
// single-executor run — each output entry's accumulation order over k is
// unchanged in every kernel (Gustavson walks k ascending; PB's stable
// radix sort preserves the expand emission order), the tiles' output
// patterns are disjoint by construction, and the merge just re-bases
// column ids and concatenates row blocks.  The per-row-block fold still
// goes through semiring_ewise_add — on disjoint patterns the semiring add
// degenerates to a copy, so the merge is the semiring-correct operation,
// not a shortcut that would break on overlapping tiles.
//
// Each tile is served by its own long-lived SpGemmExecutor (own plan
// cache, own workspace pool), and the fan-out thread for shard s pins
// itself to NUMA node s % nnodes before touching the slices — the
// multi-socket mitigation of paper Sec. V-D applied to serving: a shard's
// slices, bins and sort scratch stay on the socket that computes them.
#pragma once

#include <memory>
#include <vector>

#include "spgemm/executor.hpp"

namespace pbs::serve {

struct ShardOptions {
  int rows = 1;  ///< row blocks of A (and of C)
  int cols = 1;  ///< column blocks of B (and of C)
  /// Pin each shard's fan-out thread to NUMA node (shard % nnodes).
  /// Best-effort and inert on single-node hosts.
  bool pin_numa = true;
  /// Options for every per-shard executor (cache budget, memory budget,
  /// validation are all per shard).
  ExecutorOptions executor;
};

/// Routes one multiply across the tile grid and merges the results.
/// Thread-safe: concurrent run() calls fan out over the same per-shard
/// executors (which are themselves thread-safe).
class ShardRouter {
 public:
  explicit ShardRouter(ShardOptions opts = {});

  [[nodiscard]] int shard_rows() const { return rows_; }
  [[nodiscard]] int shard_cols() const { return cols_; }
  [[nodiscard]] int nshards() const { return rows_ * cols_; }

  /// A·B under op, tiled across the grid.  On a 1×1 grid this is exactly
  /// SpGemmExecutor::run.  `info`, when given, reports the (0,0) tile's
  /// telemetry with cache_hit/value_only/degraded aggregated as "true
  /// only if every tile says so".  Throws like the executor; when tiles
  /// fail differently, a non-cancellation cause wins (mirrors the
  /// executor's batch fan-out).
  mtx::CsrMatrix run(const SpGemmProblem& p, const SpGemmOp& op,
                     const RunOptions& ropts = {}, RunInfo* info = nullptr);

  /// Value-only fast path, tiled: every tile runs run_values_updated, so
  /// a structure-stable iterative workload skips re-analysis on every
  /// shard.
  mtx::CsrMatrix run_values_updated(const SpGemmProblem& p,
                                    const SpGemmOp& op,
                                    const RunOptions& ropts = {},
                                    RunInfo* info = nullptr);

  /// Cancels in-flight runs on every shard executor.
  void cancel();

  /// Per-shard executor stats, row-major over the grid.
  [[nodiscard]] std::vector<ExecutorStats> shard_stats() const;

  /// Element-wise sum of shard_stats() — the aggregate the telemetry
  /// endpoint reports.
  [[nodiscard]] ExecutorStats aggregate_stats() const;

 private:
  mtx::CsrMatrix run_impl(const SpGemmProblem& p, const SpGemmOp& op,
                          const RunOptions& ropts, RunInfo* info,
                          bool values_only);

  int rows_ = 1;
  int cols_ = 1;
  bool pin_numa_ = true;
  std::vector<std::unique_ptr<SpGemmExecutor>> shards_;
};

}  // namespace pbs::serve
