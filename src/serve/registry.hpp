// Matrix registry — the serving daemon's handle table.
//
// Iterative clients (MCL pruning epochs, BFS/BC frontiers, relaxation
// sweeps) multiply against the same operand structure for many requests;
// shipping the CSR payload every time would make the wire the bottleneck
// the paper's bandwidth analysis warns about.  The registry lets a client
// upload a matrix once, multiply by handle, and refresh only the numeric
// values in place — update_values keeps the structure (dims + nnz
// occupancy) frozen, which is exactly the contract the executor's
// value-only fast path (run_values_updated) trusts, so handle reuse hits
// that path across requests.
//
// Entries are shared_ptr<const CsrMatrix>: an in-flight multiply keeps
// its operand alive even if the client releases or refreshes the handle
// mid-request (copy-on-write — update_values installs a new matrix, it
// never mutates the published one).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "matrix/csr.hpp"

namespace pbs::serve {

class MatrixRegistry {
 public:
  using MatrixPtr = std::shared_ptr<const mtx::CsrMatrix>;

  /// Stores a copy of m; handles start at 1 (0 means "inline operand" on
  /// the wire) and are never reused.
  std::uint64_t upload(mtx::CsrMatrix m);

  /// nullptr when the handle is unknown (expired or never issued).
  [[nodiscard]] MatrixPtr get(std::uint64_t handle) const;

  /// Replaces the values of a registered matrix, keeping its structure:
  /// m must match the stored matrix's dims, rowptr, AND colids exactly
  /// (the full-structure analogue of PartitionedPlan::update_a_values'
  /// check — so an update cannot introduce column ids the upload-time
  /// validation never saw).  Returns false for an unknown handle; throws
  /// std::invalid_argument on a structure mismatch, leaving the stored
  /// matrix unchanged.
  bool update_values(std::uint64_t handle, const mtx::CsrMatrix& m);

  /// Forgets the handle.  Returns false when it was not registered.
  bool release(std::uint64_t handle);

  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::uint64_t, MatrixPtr> table_;
  std::uint64_t next_ = 1;
};

}  // namespace pbs::serve
