// pbs_serve server core — accept loop, worker pool, admission control,
// graceful drain.
//
// One long-lived process owns a ShardRouter (per-shard SpGemmExecutors
// with their plan caches and workspace pools) plus a MatrixRegistry, and
// serves the wire protocol (serve/protocol.hpp) over a Unix-domain
// socket:
//
//   accept loop   — one thread accepting connections into a queue
//   workers       — worker_threads threads, each owning one connection at
//                   a time and serving its requests serially (clients
//                   wanting parallel requests open parallel connections)
//   admission     — requests beyond max_inflight concurrent multiplies
//                   are shed with kOverloaded before any work; requests
//                   whose expanded-tuple bound exceeds
//                   admission_budget_bytes are rejected with
//                   kMemoryBudget (the hard outer gate in front of the
//                   executor's graceful degradation)
//   deadlines     — each multiply runs under RunOptions{timeout} from the
//                   request's deadline_ms (or default_deadline_ms);
//                   expiry surfaces as kDeadline
//   drain         — stop() closes the listener, lets in-flight requests
//                   finish, shuts idle connections and joins every
//                   thread; pbs_serve wires SIGTERM to it
//   faults        — a typed failure (including PBS_FAULT_* injections)
//                   fails only its request: the error maps to a wire code,
//                   the connection and the daemon keep serving
//
// The server is embeddable (tests run it in-process and connect through
// a real socket) — pbs_serve (tools/) is a thin main() around it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "serve/shard.hpp"

namespace pbs::serve {

struct ServeOptions {
  std::string socket_path = "/tmp/pbs_serve.sock";
  int worker_threads = 4;

  /// Tile grid of the shard router; 1×1 serves through a single
  /// executor.
  int shard_rows = 1;
  int shard_cols = 1;
  bool pin_shards = true;

  /// Concurrent multiplies admitted before shedding with kOverloaded
  /// (0 = bounded only by worker_threads).
  int max_inflight = 0;

  /// Largest request/response frame accepted (kMalformed beyond it).
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Hard admission gate: reject a multiply with kMemoryBudget when its
  /// expanded-tuple bound (16 B × flop upper bound, the wide-format
  /// worst case) exceeds this (0 = off).  Distinct from the executor's
  /// mem_budget_bytes, which degrades gracefully INSIDE an admitted
  /// request.
  std::size_t admission_budget_bytes = 0;

  /// Deadline applied to multiplies that do not carry their own
  /// (0 = none).
  double default_deadline_ms = 0;

  /// Per-shard executor options (cache budget, memory budget, ...).
  /// validate_inputs is forced on by the server: wire ingress is
  /// untrusted by definition.
  ExecutorOptions executor;
};

struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;
  std::uint64_t multiplies = 0;  ///< admitted multiply requests
  std::uint64_t errors = 0;      ///< non-kOk responses sent
  std::uint64_t shed = 0;        ///< kOverloaded + admission kMemoryBudget
  std::uint64_t malformed = 0;   ///< frames that failed to decode
};

class Server {
 public:
  /// Binds and listens on opts.socket_path (replacing a stale socket
  /// file).  Throws std::runtime_error when the socket cannot be bound.
  explicit Server(ServeOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Spawns the accept loop and the worker pool.
  void start();

  /// Graceful drain: stop accepting, finish in-flight requests, shut
  /// idle connections, join all threads, remove the socket file.
  /// Idempotent.
  void stop();

  [[nodiscard]] bool running() const;
  [[nodiscard]] const std::string& socket_path() const;
  [[nodiscard]] ServerStats stats() const;

  /// Aggregate + per-shard counters as a JSON object (the telemetry
  /// endpoint's payload).
  [[nodiscard]] std::string telemetry_json() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pbs::serve
