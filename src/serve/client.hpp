// Blocking C++ client for the pbs_serve wire protocol.
//
// One Client owns one connection; requests on it are serial (the
// protocol is strict request/response per connection).  Open one Client
// per thread for concurrent traffic — the server's worker pool serves
// the connections in parallel.
//
//   serve::Client cli("/tmp/pbs_serve.sock");
//   const std::uint64_t h = cli.upload(a);          // ship A once
//   serve::Client::MultiplyOptions mo;
//   mtx::CsrMatrix c = cli.multiply(h, h, mo);      // iterate by handle
//   cli.update_values(h, a_rescaled);               // values-only refresh
//   mo.values_only = true;                          // hit the fast path
//   c = cli.multiply(h, h, mo);
//
// Server-side failures surface as ServeError carrying the typed
// WireStatus code; transport and framing problems surface as
// std::runtime_error / WireFormatError.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"

namespace pbs::serve {

/// A non-kOk response: `status` is the stable wire code, what() the
/// server's message.
class ServeError : public std::runtime_error {
 public:
  ServeError(WireStatus status, const std::string& message)
      : std::runtime_error(std::string(wire_status_name(status)) + ": " +
                           message),
        status_(status) {}

  [[nodiscard]] WireStatus status() const noexcept { return status_; }

 private:
  WireStatus status_;
};

/// Per-multiply options (out-of-class so it is complete where Client's
/// default arguments need it).
struct MultiplyOptions {
  std::string algo = "auto";
  std::string semiring = "plus_times";
  const mtx::CsrMatrix* mask = nullptr;
  bool complement = false;
  /// Assert the operands' structures are unchanged since the previous
  /// multiply of this op — the server runs the value-only fast path.
  bool values_only = false;
  /// Per-request deadline; 0 defers to the server default.
  double deadline_ms = 0;
  /// Fused elementwise epilogue (scale/prune/top-k) applied server-side
  /// inside the kernels.  Sent only when active (versioned wire field);
  /// a server that cannot honor it answers kUnsupported.
  PostOp post_op;
};

/// What the executor reported for a multiply, decoded from the
/// response's info flags.
struct MultiplyInfo {
  bool cache_hit = false;
  bool value_only = false;
  bool used_pb = false;
  bool degraded = false;
};

class Client {
 public:
  /// Connects to the daemon's Unix socket; throws std::runtime_error
  /// when the connection cannot be established.
  explicit Client(const std::string& socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  using MultiplyOptions = serve::MultiplyOptions;
  using MultiplyInfo = serve::MultiplyInfo;

  void ping();

  /// Registers m server-side; returns the handle for multiply-by-handle.
  std::uint64_t upload(const mtx::CsrMatrix& m);

  /// Values-only refresh of an uploaded matrix (structure must match).
  void update_values(std::uint64_t handle, const mtx::CsrMatrix& m);

  void release(std::uint64_t handle);

  /// A·B with inline payloads.
  mtx::CsrMatrix multiply(const mtx::CsrMatrix& a, const mtx::CsrMatrix& b,
                          const MultiplyOptions& mo = {},
                          MultiplyInfo* info = nullptr);

  /// A·B by registry handles (uploaded earlier on any connection).
  mtx::CsrMatrix multiply(std::uint64_t a_handle, std::uint64_t b_handle,
                          const MultiplyOptions& mo = {},
                          MultiplyInfo* info = nullptr);

  /// A·A by one handle (the paper's squaring workloads) — B never
  /// crosses the wire.
  mtx::CsrMatrix square(std::uint64_t a_handle,
                        const MultiplyOptions& mo = {},
                        MultiplyInfo* info = nullptr);

  /// The server's telemetry JSON (aggregate + per-shard counters).
  std::string telemetry();

 private:
  mtx::CsrMatrix multiply_request(MultiplyRequest req, MultiplyInfo* info);
  /// Sends req and reads the response into rx_; throws ServeError on a
  /// non-kOk status.  Returns a reader over rx_ positioned after the
  /// status byte — valid until the next request on this client.
  WireReader roundtrip(const std::vector<std::uint8_t>& req);

  int fd_ = -1;
  /// Response payload buffer, recycled across requests so steady-state
  /// traffic with large results does not allocate per round-trip.
  std::vector<std::uint8_t> rx_;
};

}  // namespace pbs::serve
