#include "serve/registry.hpp"

#include <stdexcept>

namespace pbs::serve {

std::uint64_t MatrixRegistry::upload(mtx::CsrMatrix m) {
  auto ptr = std::make_shared<const mtx::CsrMatrix>(std::move(m));
  const std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t h = next_++;
  table_.emplace(h, std::move(ptr));
  return h;
}

MatrixRegistry::MatrixPtr MatrixRegistry::get(std::uint64_t handle) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = table_.find(handle);
  return it == table_.end() ? nullptr : it->second;
}

bool MatrixRegistry::update_values(std::uint64_t handle,
                                   const mtx::CsrMatrix& m) {
  MatrixPtr cur = get(handle);
  if (cur == nullptr) return false;
  // colids are part of the frozen structure: comparing them (not just
  // the per-row occupancy) is what lets consumers trust a registry-held
  // matrix as validated-at-upload — an update can never smuggle in
  // column ids the upload-time csr_validate did not see.
  if (m.nrows != cur->nrows || m.ncols != cur->ncols ||
      m.rowptr != cur->rowptr || m.colids != cur->colids) {
    throw std::invalid_argument(
        "MatrixRegistry::update_values: structure differs from the "
        "registered matrix (same dims, per-row occupancy, and column ids "
        "required; upload a new handle instead)");
  }
  // Copy-on-write: in-flight multiplies holding `cur` are unaffected.
  auto next = std::make_shared<const mtx::CsrMatrix>(m);
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = table_.find(handle);
  if (it == table_.end()) return false;  // released since the get()
  it->second = std::move(next);
  return true;
}

bool MatrixRegistry::release(std::uint64_t handle) {
  const std::lock_guard<std::mutex> lock(mu_);
  return table_.erase(handle) > 0;
}

std::size_t MatrixRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

}  // namespace pbs::serve
