#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace pbs::serve {

Client::Client(const std::string& socket_path) {
  if (socket_path.empty() ||
      socket_path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("serve client: socket path empty or too long: '" +
                             socket_path + "'");
  }
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::runtime_error(std::string("serve client: socket() failed: ") +
                             std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("serve client: cannot connect to '" +
                             socket_path + "': " + err);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

WireReader Client::roundtrip(const std::vector<std::uint8_t>& req) {
  write_frame(fd_, req);
  if (!read_frame(fd_, rx_)) {
    throw std::runtime_error(
        "serve client: server closed the connection before replying");
  }
  WireReader r(rx_);
  const auto status = static_cast<WireStatus>(r.u8());
  if (status != WireStatus::kOk) {
    throw ServeError(status, r.remaining() > 0 ? r.str() : "");
  }
  return r;  // positioned after the status byte, no body copy
}

void Client::ping() { roundtrip(encode_ping()).expect_done(); }

std::uint64_t Client::upload(const mtx::CsrMatrix& m) {
  WireReader r = roundtrip(encode_upload(m));
  const std::uint64_t h = r.u64();
  r.expect_done();
  return h;
}

void Client::update_values(std::uint64_t handle, const mtx::CsrMatrix& m) {
  roundtrip(encode_update_values(handle, m)).expect_done();
}

void Client::release(std::uint64_t handle) {
  roundtrip(encode_release(handle)).expect_done();
}

std::string Client::telemetry() {
  WireReader r = roundtrip(encode_telemetry_request());
  std::string text = r.str();
  r.expect_done();
  return text;
}

mtx::CsrMatrix Client::multiply_request(MultiplyRequest req,
                                        MultiplyInfo* info) {
  WireReader r = roundtrip(encode_multiply(req));
  const std::uint8_t flags = r.u8();
  mtx::CsrMatrix c = r.csr();
  r.expect_done();
  if (info != nullptr) {
    info->cache_hit = (flags & kInfoCacheHit) != 0;
    info->value_only = (flags & kInfoValueOnly) != 0;
    info->used_pb = (flags & kInfoUsedPb) != 0;
    info->degraded = (flags & kInfoDegraded) != 0;
  }
  return c;
}

namespace {

MultiplyRequest base_request(const Client::MultiplyOptions& mo) {
  MultiplyRequest req;
  req.algo = mo.algo;
  req.semiring = mo.semiring;
  req.complement = mo.complement;
  req.values_only = mo.values_only;
  req.deadline_ms = mo.deadline_ms;
  req.post_op = mo.post_op;
  if (mo.mask != nullptr) {
    req.has_mask = true;
    req.mask = *mo.mask;
  }
  return req;
}

}  // namespace

mtx::CsrMatrix Client::multiply(const mtx::CsrMatrix& a,
                                const mtx::CsrMatrix& b,
                                const MultiplyOptions& mo,
                                MultiplyInfo* info) {
  MultiplyRequest req = base_request(mo);
  req.a = a;
  req.b = b;
  return multiply_request(std::move(req), info);
}

mtx::CsrMatrix Client::multiply(std::uint64_t a_handle,
                                std::uint64_t b_handle,
                                const MultiplyOptions& mo,
                                MultiplyInfo* info) {
  MultiplyRequest req = base_request(mo);
  req.a_handle = a_handle;
  req.b_handle = b_handle;
  return multiply_request(std::move(req), info);
}

mtx::CsrMatrix Client::square(std::uint64_t a_handle,
                              const MultiplyOptions& mo,
                              MultiplyInfo* info) {
  MultiplyRequest req = base_request(mo);
  req.a_handle = a_handle;
  req.b_is_a = true;
  return multiply_request(std::move(req), info);
}

}  // namespace pbs::serve
