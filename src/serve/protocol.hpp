// pbs_serve wire protocol — length-prefixed binary frames over a
// Unix-domain stream socket.
//
// Every message is one frame: a fixed 8-byte header (magic + payload
// length) followed by the payload.  Integers are host-endian — both ends
// of a Unix socket are the same host — and the magic word rejects
// non-protocol peers before any allocation is sized from attacker bytes.
//
//   frame    := u32 magic ("PBSF") · u32 payload_len · payload
//   request  := u8 MsgType · type-specific body
//   response := u8 WireStatus · (kOk: type-specific body | else: str error)
//
// Request bodies:
//   kPing          (empty)
//   kMultiply      str algo · str semiring · u8 flags · f64 deadline_ms ·
//                  u64 a_handle · u64 b_handle ·
//                  [csr A when a_handle == 0] ·
//                  [csr B when b_handle == 0 and !kFlagBIsA] ·
//                  [csr mask when kFlagHasMask] ·
//                  [f64 scale · f64 prune_threshold · u32 top_k
//                   when kFlagHasPostOp]
//
// The post-op fields are versioned by their flag and trail every older
// field: a client that never sets kFlagHasPostOp emits the pre-post-op
// body byte for byte, so old clients keep working against new servers
// unchanged.  (A NEW client sending a post-op to an OLD server gets
// kMalformed — the old decoder sees trailing bytes — which is the
// fail-closed direction: the op would otherwise be silently dropped.)
//   kUpload        csr
//   kUpdateValues  u64 handle · csr
//   kRelease       u64 handle
//   kTelemetry     (empty)
//
// Response bodies (kOk):
//   kPing / kRelease / kUpdateValues   (empty)
//   kMultiply                          u8 info flags · csr C
//   kUpload                            u64 handle
//   kTelemetry                         str json
//
//   csr := u32 nrows · u32 ncols · u64 nnz · i64 rowptr[nrows+1] ·
//          i32 colids[nnz] · f64 vals[nnz]
//   str := u32 len · bytes
//
// Typed failures map PR 8's exception hierarchy to stable codes
// (WireStatus) so clients distinguish "hit its deadline" from "shed by
// admission control" without parsing message text.  Decoding is strictly
// bounds-checked: any truncated, oversized, or inconsistent frame throws
// WireFormatError, which the server answers with kMalformed and a closed
// connection — a hostile peer cannot make it read past the payload.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/post_op.hpp"
#include "matrix/csr.hpp"

namespace pbs::serve {

inline constexpr std::uint32_t kFrameMagic = 0x46534250u;  // "PBSF" LE
inline constexpr std::size_t kDefaultMaxFrameBytes = std::size_t{1} << 30;

enum class MsgType : std::uint8_t {
  kPing = 1,
  kMultiply = 2,
  kUpload = 3,
  kUpdateValues = 4,
  kRelease = 5,
  kTelemetry = 6,
};

/// Stable wire error codes — the serving contract over PR 8's typed
/// exceptions.  Append-only: codes are part of the protocol.
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kValidation = 1,     ///< ValidationError / malformed operand shapes
  kDeadline = 2,       ///< DeadlineError (per-request deadline expired)
  kCancelled = 3,      ///< CancelledError (server cancel/drain)
  kMemoryBudget = 4,   ///< MemoryBudgetError, admission budget rejection,
                       ///< or a result too large for the wire format
  kOverloaded = 5,     ///< shed by admission control (max_inflight)
  kMalformed = 6,      ///< frame failed to decode
  kUnknownHandle = 7,  ///< matrix handle not in the registry
  kUnsupported = 8,    ///< unknown algo/semiring/message type
  kInternal = 9,       ///< anything else (fault injection included)
};

const char* wire_status_name(WireStatus s) noexcept;

/// A frame that cannot be decoded (truncated, bad magic, inconsistent
/// lengths).  Client-side it surfaces as-is; server-side it becomes a
/// kMalformed reply and a closed connection.
class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& what)
      : std::runtime_error(what) {}
};

/// A payload too large for the u32 frame-length field (>= 4 GiB) —
/// silently wrapping the length would desync the stream.  write_frame
/// throws this BEFORE the first byte goes out, so the connection is
/// still framed: the server maps it to a typed error reply and keeps
/// serving.
class FrameTooLargeError : public std::runtime_error {
 public:
  explicit FrameTooLargeError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Multiply request flags (bit positions in the u8 flags byte).
inline constexpr std::uint8_t kFlagComplement = 1u << 0;
inline constexpr std::uint8_t kFlagHasMask = 1u << 1;
inline constexpr std::uint8_t kFlagValuesOnly = 1u << 2;
inline constexpr std::uint8_t kFlagBIsA = 1u << 3;
/// Versioned trailing post-op fields follow the body (see the header
/// comment).  Servers that cannot honor a requested post-op (value-free
/// semiring, combined with an accumulating op) answer kUnsupported.
inline constexpr std::uint8_t kFlagHasPostOp = 1u << 4;

/// Multiply response info flags — what the executor reported, so clients
/// (and tests) can observe cache behavior across the wire.
inline constexpr std::uint8_t kInfoCacheHit = 1u << 0;
inline constexpr std::uint8_t kInfoValueOnly = 1u << 1;
inline constexpr std::uint8_t kInfoUsedPb = 1u << 2;
inline constexpr std::uint8_t kInfoDegraded = 1u << 3;

// ---- payload builder / parser ---------------------------------------------

class WireWriter {
 public:
  WireWriter() = default;
  /// Recycles a previous payload's allocation: the buffer is cleared but
  /// its capacity is kept, so steady-state traffic with multi-megabyte
  /// responses stops paying an allocation (and its page faults) per
  /// frame.
  explicit WireWriter(std::vector<std::uint8_t> reuse)
      : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void reserve(std::size_t extra) { buf_.reserve(buf_.size() + extra); }
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void str(const std::string& s);
  void csr(const mtx::CsrMatrix& m);

  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over one payload.  Every accessor throws
/// WireFormatError instead of reading past the end; csr() additionally
/// verifies the structural invariants cheap enough to check inline
/// (consistent counts, monotone in-range rowptr) so a decoded matrix is
/// safe to index even before any csr_validate pass.
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> payload)
      : data_(payload) {}

  std::uint8_t u8() { return take<std::uint8_t>(); }
  std::uint32_t u32() { return take<std::uint32_t>(); }
  std::uint64_t u64() { return take<std::uint64_t>(); }
  double f64() { return take<double>(); }
  std::string str();
  mtx::CsrMatrix csr();

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  /// Trailing bytes after the last field are a protocol violation too.
  void expect_done() const;

 private:
  template <typename T>
  T take() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void need(std::size_t n) const {
    if (remaining() < n) {
      throw WireFormatError("wire: truncated payload (need " +
                            std::to_string(n) + " bytes, have " +
                            std::to_string(remaining()) + ")");
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// ---- frame transport ------------------------------------------------------

/// Writes one frame (header + payload) to a connected stream socket.
/// Throws FrameTooLargeError (before writing anything) when the payload
/// does not fit the u32 length field, std::runtime_error on a write
/// failure (peer gone).
void write_frame(int fd, std::span<const std::uint8_t> payload);

/// Reads one frame's payload.  Returns false on clean EOF at a frame
/// boundary (peer closed); throws WireFormatError on a bad magic, a
/// payload larger than max_bytes, or EOF mid-frame.
bool read_frame(int fd, std::vector<std::uint8_t>& payload,
                std::size_t max_bytes = kDefaultMaxFrameBytes);

// ---- typed messages -------------------------------------------------------

/// The decoded multiply request.  Operands come inline or by registry
/// handle; `b_is_a` squares the A operand (the paper's A·A workloads)
/// without shipping it twice.
struct MultiplyRequest {
  std::string algo = "auto";
  std::string semiring = "plus_times";
  bool complement = false;
  bool has_mask = false;
  bool values_only = false;
  bool b_is_a = false;
  double deadline_ms = 0;  ///< 0 = server default
  std::uint64_t a_handle = 0;  ///< 0 = inline payload in `a`
  std::uint64_t b_handle = 0;
  mtx::CsrMatrix a, b, mask;
  /// Fused elementwise epilogue (scale/prune/top-k).  Encoded only when
  /// active (kFlagHasPostOp); the identity op keeps the wire body
  /// byte-compatible with pre-post-op peers.
  PostOp post_op;
};

std::vector<std::uint8_t> encode_ping();
std::vector<std::uint8_t> encode_telemetry_request();
std::vector<std::uint8_t> encode_upload(const mtx::CsrMatrix& m);
std::vector<std::uint8_t> encode_update_values(std::uint64_t handle,
                                               const mtx::CsrMatrix& m);
std::vector<std::uint8_t> encode_release(std::uint64_t handle);
std::vector<std::uint8_t> encode_multiply(const MultiplyRequest& req);

/// Decodes a multiply body (the type byte already consumed).
MultiplyRequest decode_multiply(WireReader& r);

std::vector<std::uint8_t> encode_ok_empty();
std::vector<std::uint8_t> encode_ok_handle(std::uint64_t handle);
std::vector<std::uint8_t> encode_ok_text(const std::string& text);
/// `reuse` recycles a previous response's buffer (see WireWriter) — the
/// result frame is the one hot, large allocation in steady-state serving.
std::vector<std::uint8_t> encode_ok_csr(std::uint8_t info_flags,
                                        const mtx::CsrMatrix& c,
                                        std::vector<std::uint8_t> reuse = {});
std::vector<std::uint8_t> encode_error(WireStatus status,
                                       const std::string& message);

}  // namespace pbs::serve
