#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/errors.hpp"

namespace pbs::serve {

namespace {

int bind_unix_listener(const std::string& path) {
  if (path.empty() || path.size() >= sizeof(sockaddr_un{}.sun_path)) {
    throw std::runtime_error("serve: socket path empty or too long: '" +
                             path + "'");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("serve: socket() failed: ") +
                             std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());  // replace a stale socket file
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("serve: cannot listen on '" + path +
                             "': " + err);
  }
  return fd;
}

/// Upper bound on the multiply's expanded-tuple bytes: flop(A·B) × the
/// 16 B wide-format tuple — the admission gate's one-pass estimate
/// (column counts of A folded against B's row lengths).
double expand_bytes_bound(const mtx::CsrMatrix& a, const mtx::CsrMatrix& b) {
  std::vector<nnz_t> col_nnz(static_cast<std::size_t>(a.ncols), 0);
  for (const index_t c : a.colids) ++col_nnz[static_cast<std::size_t>(c)];
  double flop = 0;
  const index_t k_max = std::min<index_t>(a.ncols, b.nrows);
  for (index_t k = 0; k < k_max; ++k) {
    flop += static_cast<double>(col_nnz[static_cast<std::size_t>(k)]) *
            static_cast<double>(b.row_nnz(k));
  }
  return 16.0 * flop;
}

}  // namespace

struct Server::Impl {
  explicit Impl(ServeOptions o) : opts(std::move(o)) {
    opts.worker_threads = std::max(opts.worker_threads, 1);
    // Wire ingress is untrusted: every decoded operand gets the strict
    // csr_validate sweep regardless of what the embedder configured.
    opts.executor.validate_inputs = true;
    ShardOptions so;
    so.rows = opts.shard_rows;
    so.cols = opts.shard_cols;
    so.pin_numa = opts.pin_shards;
    so.executor = opts.executor;
    router = std::make_unique<ShardRouter>(so);
    listen_fd = bind_unix_listener(opts.socket_path);
  }

  ~Impl() {
    stop();
    if (listen_fd >= 0) ::close(listen_fd);
    ::unlink(opts.socket_path.c_str());
  }

  // ---- lifecycle ----------------------------------------------------------

  void start() {
    bool expected = false;
    if (!started.compare_exchange_strong(expected, true)) return;
    stopping = false;
    accept_thread = std::thread([this] { accept_loop(); });
    workers.reserve(static_cast<std::size_t>(opts.worker_threads));
    for (int i = 0; i < opts.worker_threads; ++i) {
      workers.emplace_back([this] { worker_loop(); });
    }
  }

  void stop() {
    bool expected = false;
    if (!stopping.compare_exchange_strong(expected, true)) return;
    if (!started) return;
    // 1. Stop accepting (the poll() in the accept loop sees `stopping`),
    //    then close the listener and remove the socket file so late
    //    clients get an immediate connection error instead of sitting in
    //    a backlog nobody will ever accept from.
    if (accept_thread.joinable()) accept_thread.join();
    if (listen_fd >= 0) {
      ::close(listen_fd);
      listen_fd = -1;
    }
    ::unlink(opts.socket_path.c_str());
    // 2. Unblock workers idle in recv(): in-flight requests run to
    //    completion (only the read side is shut), their responses still
    //    go out, then the worker sees EOF and closes.
    {
      const std::lock_guard<std::mutex> lock(mu);
      for (const int fd : live_fds) ::shutdown(fd, SHUT_RD);
      // Connections still waiting in the queue get the same treatment
      // BEFORE the sentinels go in: a worker that pops one afterwards
      // sees immediate EOF instead of parking in recv() on an idle
      // client forever.  (Workers move an fd from queue to live_fds
      // under this mutex, so every accepted fd is in exactly one of the
      // two sets here.)
      for (const int fd : queue) {
        if (fd >= 0) ::shutdown(fd, SHUT_RD);
      }
      // Wake workers idle on the queue.
      for (int i = 0; i < opts.worker_threads; ++i) queue.push_back(-1);
    }
    cv.notify_all();
    for (std::thread& w : workers) {
      if (w.joinable()) w.join();
    }
    workers.clear();
    // 3. Connections accepted but never picked up.
    for (const int fd : queue) {
      if (fd >= 0) ::close(fd);
    }
    queue.clear();
    started = false;
  }

  void accept_loop() {
    while (!stopping) {
      pollfd pfd{listen_fd, POLLIN, 0};
      const int r = ::poll(&pfd, 1, 200);
      if (r <= 0) continue;  // timeout or EINTR: re-check stopping
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) continue;
      {
        const std::lock_guard<std::mutex> lock(mu);
        ++stats.connections;
        queue.push_back(fd);
      }
      cv.notify_one();
    }
  }

  void worker_loop() {
    for (;;) {
      int fd = -1;
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [this] { return !queue.empty(); });
        fd = queue.front();
        queue.pop_front();
        // Queue -> live_fds under ONE critical section: stop() must see
        // every accepted fd in one of the two sets, or a connection
        // caught between them would never get its SHUT_RD.
        if (fd >= 0) live_fds.insert(fd);
      }
      if (fd < 0) return;  // stop sentinel
      serve_connection(fd);
      {
        const std::lock_guard<std::mutex> lock(mu);
        live_fds.erase(fd);
      }
      ::close(fd);
    }
  }

  // ---- per-connection request loop ----------------------------------------

  void serve_connection(int fd) {
    std::vector<std::uint8_t> payload;
    std::vector<std::uint8_t> response;
    for (;;) {
      try {
        if (!read_frame(fd, payload, opts.max_frame_bytes)) return;  // EOF
      } catch (const WireFormatError&) {
        // Framing is broken: the stream position is unrecoverable, so
        // answer best-effort and drop the connection.  The daemon itself
        // keeps serving.
        count_malformed();
        try {
          const auto err = encode_error(WireStatus::kMalformed,
                                        "malformed frame");
          write_frame(fd, err);
        } catch (...) {
        }
        return;
      } catch (const std::exception&) {
        return;  // transport error: peer gone
      }
      try {
        // `response` round-trips through handle_request so the multiply
        // path can recycle its (large) allocation across requests.
        response = handle_request(payload, std::move(response));
      } catch (const WireFormatError& e) {
        // The frame arrived intact but its payload did not decode; the
        // stream is still framed, so the connection survives.
        count_malformed();
        response = encode_error(WireStatus::kMalformed, e.what());
      }
      try {
        write_frame(fd, response);
      } catch (const FrameTooLargeError& e) {
        // A result >= 4 GiB does not fit the u32 length field.  Nothing
        // was written (the size check precedes the first send), so the
        // stream is still framed: answer with a typed error instead of
        // silently wrapping the length and desyncing the client.
        try {
          response = error(WireStatus::kMemoryBudget, e.what());
          write_frame(fd, response);
        } catch (const std::exception&) {
          return;
        }
      } catch (const std::exception&) {
        return;
      }
    }
  }

  std::vector<std::uint8_t> handle_request(
      std::span<const std::uint8_t> payload,
      std::vector<std::uint8_t> reuse = {}) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      ++stats.requests;
    }
    WireReader r(payload);
    const auto type = static_cast<MsgType>(r.u8());
    switch (type) {
      case MsgType::kPing:
        r.expect_done();
        return encode_ok_empty();
      case MsgType::kTelemetry:
        r.expect_done();
        return encode_ok_text(telemetry_json());
      case MsgType::kUpload: {
        mtx::CsrMatrix m = r.csr();
        r.expect_done();
        const mtx::CsrValidation v = mtx::csr_validate(m);
        if (!v) return error(WireStatus::kValidation, v.error);
        return encode_ok_handle(registry.upload(std::move(m)));
      }
      case MsgType::kUpdateValues: {
        const std::uint64_t h = r.u64();
        const mtx::CsrMatrix m = r.csr();
        r.expect_done();
        // Same gate as kUpload: nothing unvalidated may enter the
        // registry, because handle_multiply trusts registry-held
        // operands as validated-at-upload and scatters by their column
        // ids before the executor's own checks run.
        const mtx::CsrValidation v = mtx::csr_validate(m);
        if (!v) return error(WireStatus::kValidation, v.error);
        try {
          if (!registry.update_values(h, m)) {
            return error(WireStatus::kUnknownHandle,
                         "unknown matrix handle " + std::to_string(h));
          }
        } catch (const std::invalid_argument& e) {
          return error(WireStatus::kValidation, e.what());
        }
        return encode_ok_empty();
      }
      case MsgType::kRelease: {
        const std::uint64_t h = r.u64();
        r.expect_done();
        if (!registry.release(h)) {
          return error(WireStatus::kUnknownHandle,
                       "unknown matrix handle " + std::to_string(h));
        }
        return encode_ok_empty();
      }
      case MsgType::kMultiply:
        return handle_multiply(decode_multiply(r), std::move(reuse));
      default:
        return error(WireStatus::kUnsupported,
                     "unknown message type " +
                         std::to_string(static_cast<int>(type)));
    }
  }

  std::vector<std::uint8_t> handle_multiply(MultiplyRequest req,
                                            std::vector<std::uint8_t> reuse) {
    // Resolve operands (registry handles keep in-flight matrices alive
    // even across a concurrent release/update).
    MatrixRegistry::MatrixPtr a_held, b_held;
    if (req.a_handle != 0) {
      a_held = registry.get(req.a_handle);
      if (a_held == nullptr) {
        return error(WireStatus::kUnknownHandle,
                     "unknown matrix handle " + std::to_string(req.a_handle));
      }
    }
    if (req.b_handle != 0 && !req.b_is_a) {
      b_held = registry.get(req.b_handle);
      if (b_held == nullptr) {
        return error(WireStatus::kUnknownHandle,
                     "unknown matrix handle " + std::to_string(req.b_handle));
      }
    }
    const mtx::CsrMatrix& a = a_held != nullptr ? *a_held : req.a;
    const mtx::CsrMatrix& b =
        req.b_is_a ? a : (b_held != nullptr ? *b_held : req.b);

    // Inline operands are validated HERE, before anything indexes by
    // their column ids — the admission estimate and the problem's CSC
    // conversion both scatter by colid, so an out-of-range id from the
    // wire must never reach them.  Registry-held operands were validated
    // at upload.
    if (a_held == nullptr && req.a_handle == 0) {
      const mtx::CsrValidation v = mtx::csr_validate(a);
      if (!v) return error(WireStatus::kValidation, "A: " + v.error);
    }
    if (!req.b_is_a && b_held == nullptr && req.b_handle == 0) {
      const mtx::CsrValidation v = mtx::csr_validate(b);
      if (!v) return error(WireStatus::kValidation, "B: " + v.error);
    }
    if (req.has_mask) {
      const mtx::CsrValidation v = mtx::csr_validate(req.mask);
      if (!v) return error(WireStatus::kValidation, "mask: " + v.error);
    }

    if (a.ncols != b.nrows) {
      return error(WireStatus::kValidation,
                   "operand dimensions differ: A is " +
                       std::to_string(a.nrows) + "x" +
                       std::to_string(a.ncols) + ", B is " +
                       std::to_string(b.nrows) + "x" +
                       std::to_string(b.ncols));
    }

    // Admission: concurrency gate, then the memory gate, both BEFORE the
    // CSC conversion — a shed request costs O(nnz) at most.
    if (opts.max_inflight > 0) {
      bool admitted = false;
      {
        const std::lock_guard<std::mutex> lock(mu);
        if (inflight < opts.max_inflight) {
          ++inflight;
          admitted = true;
        } else {
          ++stats.shed;
        }
      }
      if (!admitted) {
        return error(WireStatus::kOverloaded,
                     "at max_inflight=" + std::to_string(opts.max_inflight) +
                         " concurrent multiplies");
      }
    }
    struct InflightGuard {
      Impl* im;
      ~InflightGuard() {
        if (im != nullptr && im->opts.max_inflight > 0) {
          const std::lock_guard<std::mutex> lock(im->mu);
          --im->inflight;
        }
      }
    } guard{this};

    if (opts.admission_budget_bytes > 0) {
      const double need = expand_bytes_bound(a, b);
      if (need > static_cast<double>(opts.admission_budget_bytes)) {
        {
          const std::lock_guard<std::mutex> lock(mu);
          ++stats.shed;
        }
        return error(
            WireStatus::kMemoryBudget,
            "admission: expanded-tuple bound " +
                std::to_string(static_cast<std::uint64_t>(need)) +
                " B exceeds admission_budget_bytes=" +
                std::to_string(opts.admission_budget_bytes));
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mu);
      ++stats.multiplies;
    }

    SpGemmOp op;
    op.algo = req.algo;
    op.semiring = req.semiring;
    op.complement = req.complement;
    if (req.has_mask) op.mask = &req.mask;
    // Fused epilogue rides the descriptor; an illegal combination (post-op
    // on a value-free semiring) throws std::invalid_argument below, which
    // maps to the typed kUnsupported reply.
    op.post_op = req.post_op;
    RunOptions ropts;
    const double deadline_ms =
        req.deadline_ms > 0 ? req.deadline_ms : opts.default_deadline_ms;
    if (deadline_ms > 0) {
      ropts.timeout =
          std::chrono::milliseconds(static_cast<long long>(deadline_ms));
    }

    try {
      const SpGemmProblem p = SpGemmProblem::multiply(a, b);
      RunInfo info;
      const mtx::CsrMatrix c =
          req.values_only ? router->run_values_updated(p, op, ropts, &info)
                          : router->run(p, op, ropts, &info);
      std::uint8_t flags = 0;
      if (info.cache_hit) flags |= kInfoCacheHit;
      if (info.value_only) flags |= kInfoValueOnly;
      if (info.used_pb) flags |= kInfoUsedPb;
      if (info.degraded) flags |= kInfoDegraded;
      return encode_ok_csr(flags, c, std::move(reuse));
    } catch (const DeadlineError& e) {
      return error(WireStatus::kDeadline, e.what());
    } catch (const CancelledError& e) {
      return error(WireStatus::kCancelled, e.what());
    } catch (const MemoryBudgetError& e) {
      return error(WireStatus::kMemoryBudget, e.what());
    } catch (const ValidationError& e) {
      return error(WireStatus::kValidation, e.what());
    } catch (const std::invalid_argument& e) {
      return error(WireStatus::kUnsupported, e.what());
    } catch (const std::logic_error& e) {
      return error(WireStatus::kUnsupported, e.what());
    } catch (const std::bad_alloc& e) {
      return error(WireStatus::kMemoryBudget, e.what());
    } catch (const std::exception& e) {
      // FaultInjectedError and everything unforeseen: THIS request
      // fails, the daemon survives.
      return error(WireStatus::kInternal, e.what());
    }
  }

  std::vector<std::uint8_t> error(WireStatus status,
                                  const std::string& message) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      ++stats.errors;
    }
    return encode_error(status, message);
  }

  void count_malformed() {
    const std::lock_guard<std::mutex> lock(mu);
    ++stats.malformed;
    ++stats.errors;
  }

  // ---- telemetry ----------------------------------------------------------

  std::string telemetry_json() const {
    ServerStats server_stats;
    {
      const std::lock_guard<std::mutex> lock(mu);
      server_stats = stats;
    }
    std::ostringstream os;
    os << "{\"server\":{"
       << "\"connections\":" << server_stats.connections
       << ",\"requests\":" << server_stats.requests
       << ",\"multiplies\":" << server_stats.multiplies
       << ",\"errors\":" << server_stats.errors
       << ",\"shed\":" << server_stats.shed
       << ",\"malformed\":" << server_stats.malformed
       << ",\"registry_size\":" << registry.size()
       << ",\"shard_rows\":" << router->shard_rows()
       << ",\"shard_cols\":" << router->shard_cols() << "}";
    const auto emit = [&os](const ExecutorStats& e) {
      os << "{\"executes\":" << e.executes
         << ",\"cache_hits\":" << e.cache_hits
         << ",\"cache_misses\":" << e.cache_misses
         << ",\"value_only_hits\":" << e.value_only_hits
         << ",\"evictions\":" << e.evictions
         << ",\"cache_entries\":" << e.cache_entries
         << ",\"cache_bytes\":" << e.cache_bytes
         << ",\"bytes_evicted\":" << e.bytes_evicted
         << ",\"degraded_plans\":" << e.degraded_plans
         << ",\"degraded_runs\":" << e.degraded_runs
         << ",\"cancelled\":" << e.cancelled << "}";
    };
    os << ",\"aggregate\":";
    emit(router->aggregate_stats());
    os << ",\"shards\":[";
    const std::vector<ExecutorStats> per_shard = router->shard_stats();
    for (std::size_t i = 0; i < per_shard.size(); ++i) {
      if (i > 0) os << ",";
      emit(per_shard[i]);
    }
    os << "]}";
    return os.str();
  }

  // ---- state --------------------------------------------------------------

  ServeOptions opts;
  std::unique_ptr<ShardRouter> router;
  MatrixRegistry registry;
  int listen_fd = -1;

  mutable std::mutex mu;
  std::condition_variable cv;
  std::deque<int> queue;     ///< accepted fds awaiting a worker (-1 = stop)
  std::set<int> live_fds;    ///< connections currently owned by workers
  ServerStats stats;
  int inflight = 0;          ///< admitted multiplies in flight

  std::atomic<bool> started{false};
  std::atomic<bool> stopping{false};
  std::thread accept_thread;
  std::vector<std::thread> workers;
};

Server::Server(ServeOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts))) {}

Server::~Server() = default;

void Server::start() { impl_->start(); }
void Server::stop() { impl_->stop(); }

bool Server::running() const {
  return impl_->started && !impl_->stopping;
}

const std::string& Server::socket_path() const {
  return impl_->opts.socket_path;
}

ServerStats Server::stats() const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

std::string Server::telemetry_json() const { return impl_->telemetry_json(); }

}  // namespace pbs::serve
