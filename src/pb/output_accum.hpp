// Fused-accumulate CSR conversion: C = C_old ⊞ (A ⊗ B) assembled directly
// from the compressed bins.
//
// The descriptor's accumulate used to run as a post-pass
// semiring_ewise_add over the union pattern — a complete second read of
// the freshly built product plus a read of C_old and a write of the
// union, all at memory bandwidth.  Here the union merge happens *inside*
// the conversion phase instead: each bin's surviving tuples are already
// (row, col)-sorted and no row spans two bins, so one forward sweep per
// bin merges the bin's tuple stream against C_old's rows
// (BinLayout::for_each_row visits them in exactly the stream's row order)
// while both are streaming through cache once.  The product CSR is never
// materialized.
//
// Bit-identity contract with the post-pass: both-present entries combine
// as S::add(c_old_value, product_value) — the same argument order
// semiring_ewise_add uses — and single-side entries are copied, so the
// fused result is bitwise equal to
// semiring_ewise_add(c_old, pb_build_csr(...)).
//
// Both schedules land here: the barrier path replaces its convert switch,
// and the pipelined path replaces its tail (the per-bin folded row count
// is skipped when accumulating — the union count needs C_old's rows,
// which these builders walk anyway).
#pragma once

#include <span>

#include "common/cancel.hpp"
#include "common/prefix_sum.hpp"
#include "matrix/csr.hpp"
#include "pb/binning.hpp"
#include "pb/tuple.hpp"

namespace pbs::pb {

namespace detail {

/// Counts the union pattern of one bin's surviving product tuples and
/// C_old's rows into rowptr[row + 1].  `row_of`/`col_of` decode the bin's
/// tuples by bin-relative index; the tuple walk and for_each_row agree on
/// row order, so a single forward cursor serves the whole bin.  Race-free
/// across bins for the same reason pb_count_bin is: no row spans two.
template <typename RowOf, typename ColOf>
void accum_count_bin(nnz_t merged, const mtx::CsrMatrix& c_old,
                     const BinLayout& layout, int bin, index_t nrows,
                     RowOf row_of, ColOf col_of, nnz_t* rowptr) {
  nnz_t t = 0;
  layout.for_each_row(bin, nrows, [&](index_t r) {
    const auto ccols = c_old.row_cols(r);
    std::size_t ci = 0;
    nnz_t cnt = 0;
    while (t < merged && row_of(t) == r) {
      const index_t pc = col_of(t);
      while (ci < ccols.size() && ccols[ci] < pc) {
        ++ci;
        ++cnt;
      }
      if (ci < ccols.size() && ccols[ci] == pc) ++ci;
      ++cnt;
      ++t;
    }
    cnt += static_cast<nnz_t>(ccols.size() - ci);
    if (cnt != 0) rowptr[r + 1] += cnt;
  });
}

/// Streams one bin's union merge into its rows' final CSR positions.
/// `rowptr` must already hold absolute row starts.  Both-present entries
/// combine with S::add(c_old, product) — semiring_ewise_add's argument
/// order — single-side entries are copied.
template <typename S, typename RowOf, typename ColOf, typename ValOf>
void accum_scatter_bin(nnz_t merged, const mtx::CsrMatrix& c_old,
                       const BinLayout& layout, int bin, index_t nrows,
                       RowOf row_of, ColOf col_of, ValOf val_of,
                       const nnz_t* rowptr, index_t* colids, value_t* vals) {
  nnz_t t = 0;
  layout.for_each_row(bin, nrows, [&](index_t r) {
    const auto ccols = c_old.row_cols(r);
    const auto cvals = c_old.row_vals(r);
    std::size_t ci = 0;
    nnz_t pos = rowptr[r];
    while (t < merged && row_of(t) == r) {
      const index_t pc = col_of(t);
      while (ci < ccols.size() && ccols[ci] < pc) {
        colids[pos] = ccols[ci];
        vals[pos] = cvals[ci];
        ++pos;
        ++ci;
      }
      colids[pos] = pc;
      if (ci < ccols.size() && ccols[ci] == pc) {
        vals[pos] = S::add(cvals[ci], val_of(t));
        ++ci;
      } else {
        vals[pos] = val_of(t);
      }
      ++pos;
      ++t;
    }
    for (; ci < ccols.size(); ++ci) {
      colids[pos] = ccols[ci];
      vals[pos] = cvals[ci];
      ++pos;
    }
  });
}

/// The two-sweep batch driver shared by the four formats: union count per
/// bin, prefix sum, union scatter per bin.  `Adapter` decodes the stream —
/// row(bin, i) / col(i) / val(i) with absolute stream indices.
/// Cancellation is polled per bin; cancelled bins are skipped (the partial
/// CSR is about to be discarded) and the typed error raises after each
/// join.
template <typename S, typename Adapter>
mtx::CsrMatrix build_csr_accum(const Adapter& ad,
                               std::span<const nnz_t> offsets,
                               std::span<const nnz_t> merged,
                               const mtx::CsrMatrix& c_old,
                               const BinLayout& layout, index_t nrows,
                               index_t ncols, const CancelToken* cancel) {
  mtx::CsrMatrix c(nrows, ncols);
  const int nbins = layout.nbins;

#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    if (stop_requested(cancel)) continue;
    const auto ubin = static_cast<std::size_t>(bin);
    const nnz_t off = offsets[ubin];
    accum_count_bin(
        merged[ubin], c_old, layout, bin, nrows,
        [&](nnz_t i) { return ad.row(bin, off + i); },
        [&](nnz_t i) { return ad.col(off + i); }, c.rowptr.data());
  }
  throw_if_stopped(cancel);

  const nnz_t total =
      counts_to_rowptr(c.rowptr.data(), static_cast<std::size_t>(nrows));
  c.colids.resize(static_cast<std::size_t>(total));
  c.vals.resize(static_cast<std::size_t>(total));

#pragma omp parallel for schedule(dynamic, 1)
  for (int bin = 0; bin < nbins; ++bin) {
    if (stop_requested(cancel)) continue;
    const auto ubin = static_cast<std::size_t>(bin);
    const nnz_t off = offsets[ubin];
    accum_scatter_bin<S>(
        merged[ubin], c_old, layout, bin, nrows,
        [&](nnz_t i) { return ad.row(bin, off + i); },
        [&](nnz_t i) { return ad.col(off + i); },
        [&](nnz_t i) { return ad.val(off + i); }, c.rowptr.data(),
        c.colids.data(), c.vals.data());
  }
  throw_if_stopped(cancel);
  return c;
}

struct WideAccumAdapter {
  const Tuple* tuples = nullptr;
  index_t row(int /*bin*/, nnz_t i) const { return key_row(tuples[i].key); }
  index_t col(nnz_t i) const { return key_col(tuples[i].key); }
  value_t val(nnz_t i) const { return tuples[i].val; }
};

struct NarrowAccumAdapter {
  const narrow_key_t* keys = nullptr;
  const value_t* vals = nullptr;
  const BinLayout* layout = nullptr;
  int col_bits = 0;
  index_t row(int bin, nnz_t i) const {
    return layout->global_row(bin, narrow_key_local_row(keys[i], col_bits));
  }
  index_t col(nnz_t i) const { return narrow_key_col(keys[i], col_bits); }
  value_t val(nnz_t i) const { return vals[i]; }
};

struct KeyOnlyAccumAdapter {
  const wide_key_t* keys = nullptr;
  value_t present = 1.0;
  index_t row(int /*bin*/, nnz_t i) const { return key_row(keys[i]); }
  index_t col(nnz_t i) const { return key_col(keys[i]); }
  value_t val(nnz_t /*i*/) const { return present; }
};

struct NarrowF32AccumAdapter {
  const narrow_key_t* keys = nullptr;
  const f32_val_t* vals = nullptr;
  const BinLayout* layout = nullptr;
  int col_bits = 0;
  index_t row(int bin, nnz_t i) const {
    return layout->global_row(bin, narrow_key_local_row(keys[i], col_bits));
  }
  index_t col(nnz_t i) const { return narrow_key_col(keys[i], col_bits); }
  value_t val(nnz_t i) const { return static_cast<value_t>(vals[i]); }
};

}  // namespace detail

/// Wide-format fused-accumulate conversion (see the file comment for the
/// contract all four builders share).
template <typename S>
mtx::CsrMatrix pb_build_csr_accum(const Tuple* tuples,
                                  std::span<const nnz_t> offsets,
                                  std::span<const nnz_t> merged,
                                  const mtx::CsrMatrix& c_old,
                                  const BinLayout& layout, index_t nrows,
                                  index_t ncols,
                                  const CancelToken* cancel = nullptr) {
  return detail::build_csr_accum<S>(detail::WideAccumAdapter{tuples}, offsets,
                                    merged, c_old, layout, nrows, ncols,
                                    cancel);
}

/// Narrow-format fused-accumulate conversion.
template <typename S>
mtx::CsrMatrix pb_build_csr_accum_narrow(
    const narrow_key_t* keys, const value_t* vals,
    std::span<const nnz_t> offsets, std::span<const nnz_t> merged,
    const mtx::CsrMatrix& c_old, const BinLayout& layout, int col_bits,
    index_t nrows, index_t ncols, const CancelToken* cancel = nullptr) {
  return detail::build_csr_accum<S>(
      detail::NarrowAccumAdapter{keys, vals, &layout, col_bits}, offsets,
      merged, c_old, layout, nrows, ncols, cancel);
}

/// Key-only fused-accumulate conversion: product values are synthesized as
/// `present` (the value-free convention of pb_build_csr_keyonly), so
/// both-present entries combine as S::add(c_old, present) and
/// product-only entries store `present` — exactly what the post-pass does
/// with the synthesized product.
template <typename S>
mtx::CsrMatrix pb_build_csr_accum_keyonly(
    const wide_key_t* keys, std::span<const nnz_t> offsets,
    std::span<const nnz_t> merged, const mtx::CsrMatrix& c_old,
    const BinLayout& layout, index_t nrows, index_t ncols,
    value_t present = 1.0, const CancelToken* cancel = nullptr) {
  return detail::build_csr_accum<S>(detail::KeyOnlyAccumAdapter{keys, present},
                                    offsets, merged, c_old, layout, nrows,
                                    ncols, cancel);
}

/// Narrow-f32 fused-accumulate conversion: product values widen f32 → f64
/// before the merge, matching pb_build_csr_narrow_f32's widening.
template <typename S>
mtx::CsrMatrix pb_build_csr_accum_narrow_f32(
    const narrow_key_t* keys, const f32_val_t* vals,
    std::span<const nnz_t> offsets, std::span<const nnz_t> merged,
    const mtx::CsrMatrix& c_old, const BinLayout& layout, int col_bits,
    index_t nrows, index_t ncols, const CancelToken* cancel = nullptr) {
  return detail::build_csr_accum<S>(
      detail::NarrowF32AccumAdapter{keys, vals, &layout, col_bits}, offsets,
      merged, c_old, layout, nrows, ncols, cancel);
}

}  // namespace pbs::pb
