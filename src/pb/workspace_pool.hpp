// Thread-safe pool of PbWorkspace — the concurrency counterpart of the
// single-pipeline pooling allocator in pb_spgemm.hpp.
//
// PbWorkspace deliberately serves ONE pipeline execution at a time (its
// tuple pool is a single buffer every acquire returns).  A serving layer
// that lets N threads multiply through one cached plan simultaneously
// therefore needs N workspaces — but exactly N, warm, and reused, not one
// fresh allocation per request.  WorkspacePool leases a workspace per
// in-flight execution: acquire() hands out the most recently returned idle
// workspace (LIFO, so the warmest pages are reused first) or constructs a
// new one when every workspace is leased, and the RAII Lease returns it on
// destruction.  Steady-state serving at concurrency N settles on exactly N
// workspaces, each behaving like the single-pipeline pool (no allocation
// once sized).
//
// The pool's own bookkeeping is mutex-guarded and cheap (two vector ops
// per lease); the leased workspace itself is touched only by its holder.
// workspace_stats() aggregates the members' reuse counters the way
// PbWorkspace::stats() reports them — call it (and stats()) from quiescent
// code: the counters are written lock-free by in-flight executions.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "pb/pb_spgemm.hpp"

namespace pbs::pb {

class WorkspacePool {
 public:
  struct Stats {
    std::uint64_t leases = 0;   ///< total acquire() calls
    std::uint64_t created = 0;  ///< leases that constructed a new workspace
    std::uint64_t reused = 0;   ///< leases served by an idle workspace
    std::size_t workspaces = 0;      ///< workspaces currently owned
    std::size_t peak_in_flight = 0;  ///< max simultaneous leases observed
    std::size_t in_flight = 0;       ///< leases outstanding right now
    std::size_t mem_used = 0;        ///< bytes charged to the pool budget
    std::size_t mem_budget = 0;      ///< budget cap (0 = unlimited)
  };

  /// Exclusive use of one pooled workspace; returns it on destruction.
  /// Move-only; the workspace reference stays valid for the lease's
  /// lifetime (the pool never destroys members while it lives).
  class Lease {
   public:
    Lease(Lease&& o) noexcept
        : pool_(std::exchange(o.pool_, nullptr)),
          ws_(std::exchange(o.ws_, nullptr)) {}
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    ~Lease() {
      if (pool_ != nullptr) pool_->release(ws_);
    }

    [[nodiscard]] PbWorkspace& workspace() const { return *ws_; }

   private:
    friend class WorkspacePool;
    Lease(WorkspacePool* pool, PbWorkspace* ws) : pool_(pool), ws_(ws) {}
    WorkspacePool* pool_;
    PbWorkspace* ws_;
  };

  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Caps the pool-wide workspace footprint (tuple pools + sort scratch
  /// across all members) at `bytes`; 0 means unlimited.  Growth past the
  /// cap throws MemoryBudgetError from the leased workspace.  Call before
  /// the first acquire (the executor does, at construction).
  void set_budget_bytes(std::size_t bytes) {
    const std::lock_guard<std::mutex> lock(mu_);
    budget_.cap = bytes;
    for (const auto& ws : all_) ws->set_budget(&budget_);
  }

  [[nodiscard]] Lease acquire() {
    const std::lock_guard<std::mutex> lock(mu_);
    ++stats_.leases;
    PbWorkspace* ws = nullptr;
    if (!idle_.empty()) {
      ws = idle_.back();
      idle_.pop_back();
      ++stats_.reused;
    } else {
      all_.push_back(std::make_unique<PbWorkspace>());
      ws = all_.back().get();
      ws->set_budget(&budget_);
      ++stats_.created;
    }
    ++in_flight_;
    stats_.peak_in_flight = std::max(stats_.peak_in_flight, in_flight_);
    return Lease(this, ws);
  }

  [[nodiscard]] Stats stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    Stats s = stats_;
    s.workspaces = all_.size();
    s.in_flight = in_flight_;
    s.mem_used = budget_.used.load(std::memory_order_relaxed);
    s.mem_budget = budget_.cap;
    return s;
  }

  /// Members' allocator counters summed (peak_request is the max) — the
  /// same contract as PbWorkspace::stats() over the whole pool.
  [[nodiscard]] PbWorkspace::Stats workspace_stats() const {
    const std::lock_guard<std::mutex> lock(mu_);
    PbWorkspace::Stats agg;
    for (const auto& ws : all_) {
      const PbWorkspace::Stats s = ws->stats();
      agg.acquires += s.acquires;
      agg.allocations += s.allocations;
      agg.reuses += s.reuses;
      agg.scratch_allocations += s.scratch_allocations;
      agg.scratch_reuses += s.scratch_reuses;
      agg.peak_request = std::max(agg.peak_request, s.peak_request);
      agg.budget_rejections += s.budget_rejections;
    }
    return agg;
  }

 private:
  void release(PbWorkspace* ws) {
    const std::lock_guard<std::mutex> lock(mu_);
    idle_.push_back(ws);
    --in_flight_;
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<PbWorkspace>> all_;
  std::vector<PbWorkspace*> idle_;  ///< LIFO: warmest first
  std::size_t in_flight_ = 0;
  Stats stats_;
  MemoryBudget budget_;  ///< shared by all members; outlives them
};

}  // namespace pbs::pb
