// PB-SpGEMM sort + compress phases (paper Algorithm 2, lines 19-21;
// Secs. III-D, III-E).
//
// Bins never share a (rowid, colid), so every bin is sorted and compressed
// independently — one bin per thread, bins over threads.  Sort and compress
// are *fused per bin*: a bin sized for L2 is radix-sorted and immediately
// two-pointer-merged while still cache-hot, which is what lets the paper
// charge the compress phase only its output writes (Table III).
//
// The phase is templated on the semiring: the duplicate merge combines
// equal-key tuples with S::add.  Tuples whose values combine to S::zero()
// are kept — structural presence under exact cancellation matches
// spgemm_semiring and the numeric convention, so the output pattern is
// semiring-independent.  Definitions live in sort_compress_impl.hpp with
// explicit instantiations in sort_compress.cpp; the non-template overload
// is the numeric (+, ×) entry point and keeps the pre-semiring ABI.
//
// A fused output mask (SpGemmOp, pb_config.hpp's MaskSpec) is applied here
// too: immediately after a bin's duplicate merge — while the bin is still
// cache-hot — survivors whose (row, col) misses the mask's pattern (or
// hits it, complemented) are compacted away, so the conversion phase never
// sees them and the masked output costs only its own writes.
#pragma once

#include <span>
#include <vector>

#include "common/cancel.hpp"
#include "pb/binning.hpp"
#include "pb/pb_config.hpp"
#include "pb/tuple.hpp"
#include "spgemm/semiring_ops.hpp"

namespace pbs::pb {

class PbWorkspace;  // pb_spgemm.hpp — optional scratch pool

struct SortCompressResult {
  /// Surviving (post-compression, post-mask) tuple count per bin; size
  /// nbins.
  std::vector<nnz_t> merged;
  /// Tuples the mask filter dropped across all bins (0 unmasked); the
  /// pre-mask merged total is Σ merged + mask_dropped.
  nnz_t mask_dropped = 0;
  /// Entries the fused elementwise post-op removed across all bins
  /// (prune/top-k; 0 when the post-op is inactive or a pure scale).
  nnz_t post_dropped = 0;
  /// Busy-time estimates for the two sub-phases: the maximum across
  /// threads of each thread's accumulated in-phase time (≈ wall time when
  /// bins balance; see DESIGN.md).
  double sort_seconds = 0;
  double compress_seconds = 0;
};

/// Sorts each bin [offsets[b], offsets[b] + fill[b]) by key, then
/// compresses duplicates in place with S::add (survivors packed at the
/// bin's front).  When `workspace` is non-null its per-thread scratch pool
/// serves the radix-sort scratch, so repeated calls allocate nothing;
/// otherwise each call allocates thread-local scratch.  A non-null active
/// `mask` additionally drops masked-out survivors in place (wide keys
/// carry global coordinates, so no layout is needed).
/// A non-null `cancel` token is polled per bin; a fired token skips the
/// remaining bins and raises its typed error after the parallel join.
/// An active `post` applies the fused elementwise post-op
/// (common/post_op.hpp) to each bin right after the mask filter, per
/// row segment, while the bin is cache-hot.
template <typename S>
SortCompressResult pb_sort_compress(Tuple* tuples,
                                    std::span<const nnz_t> offsets,
                                    std::span<const nnz_t> fill, int nbins,
                                    PbWorkspace* workspace = nullptr,
                                    const MaskSpec& mask = {},
                                    const CancelToken* cancel = nullptr,
                                    const PostOp& post = {});

extern template SortCompressResult pb_sort_compress<PlusTimes>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&, const CancelToken*, const PostOp&);
extern template SortCompressResult pb_sort_compress<MinPlus>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&, const CancelToken*, const PostOp&);
extern template SortCompressResult pb_sort_compress<MaxMin>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&, const CancelToken*, const PostOp&);
extern template SortCompressResult pb_sort_compress<BoolOrAnd>(
    Tuple*, std::span<const nnz_t>, std::span<const nnz_t>, int, PbWorkspace*,
    const MaskSpec&, const CancelToken*, const PostOp&);

/// Narrow-format variant over the SoA stream (pb/tuple.hpp): each bin's
/// u32 key array is LSD-sorted with its value array as SoA payload
/// (radix_sort_lsd_kv — the histogram passes read 4 B per tuple, the
/// scatters move 12), then duplicates merge in place over the key array
/// with values compacted once.  Same workspace/scratch and mask contract
/// as pb_sort_compress; the mask filter decodes narrow keys through
/// (`layout`, `col_bits`), which must be the stream's own
/// (SymbolicResult::layout / col_bits) whenever the mask is active.
template <typename S>
SortCompressResult pb_sort_compress_narrow(narrow_key_t* keys, value_t* vals,
                                           std::span<const nnz_t> offsets,
                                           std::span<const nnz_t> fill,
                                           int nbins,
                                           PbWorkspace* workspace = nullptr,
                                           const MaskSpec& mask = {},
                                           const BinLayout* layout = nullptr,
                                           int col_bits = 0,
                                           const CancelToken* cancel = nullptr,
                                           const PostOp& post = {});

extern template SortCompressResult pb_sort_compress_narrow<PlusTimes>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
extern template SortCompressResult pb_sort_compress_narrow<MinPlus>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
extern template SortCompressResult pb_sort_compress_narrow<MaxMin>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
extern template SortCompressResult pb_sort_compress_narrow<BoolOrAnd>(
    narrow_key_t*, value_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);

/// Key-only variant: the stream is bare 8 B global keys, so the sort has
/// no payload lane at all and the duplicate merge is a pure drop — no
/// semiring add runs, hence no template parameter.  Legal only for
/// value-free semirings (the compress result is the output *pattern*;
/// conversion synthesizes the values).  The structural-presence
/// convention is preserved by construction: every distinct key survives,
/// exactly as the valued formats keep exact-cancellation survivors.
SortCompressResult pb_sort_compress_keyonly(
    wide_key_t* keys, std::span<const nnz_t> offsets,
    std::span<const nnz_t> fill, int nbins, PbWorkspace* workspace = nullptr,
    const MaskSpec& mask = {}, const CancelToken* cancel = nullptr);

/// Narrow-f32 variant over the 8 B SoA stream: u32 keys with f32 values.
/// The duplicate merge widens to double around S::add, so only the stream
/// width differs from pb_sort_compress_narrow.  Same mask contract.
template <typename S>
SortCompressResult pb_sort_compress_narrow_f32(
    narrow_key_t* keys, f32_val_t* vals, std::span<const nnz_t> offsets,
    std::span<const nnz_t> fill, int nbins, PbWorkspace* workspace = nullptr,
    const MaskSpec& mask = {}, const BinLayout* layout = nullptr,
    int col_bits = 0, const CancelToken* cancel = nullptr,
    const PostOp& post = {});

extern template SortCompressResult pb_sort_compress_narrow_f32<PlusTimes>(
    narrow_key_t*, f32_val_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
extern template SortCompressResult pb_sort_compress_narrow_f32<MinPlus>(
    narrow_key_t*, f32_val_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
extern template SortCompressResult pb_sort_compress_narrow_f32<MaxMin>(
    narrow_key_t*, f32_val_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);
extern template SortCompressResult pb_sort_compress_narrow_f32<BoolOrAnd>(
    narrow_key_t*, f32_val_t*, std::span<const nnz_t>, std::span<const nnz_t>,
    int, PbWorkspace*, const MaskSpec&, const BinLayout*, int,
    const CancelToken*, const PostOp&);

/// Numeric (+, ×) sort+compress — equivalent to pb_sort_compress<PlusTimes>.
SortCompressResult pb_sort_compress(Tuple* tuples,
                                    std::span<const nnz_t> offsets,
                                    std::span<const nnz_t> fill, int nbins,
                                    PbWorkspace* workspace = nullptr);

}  // namespace pbs::pb
