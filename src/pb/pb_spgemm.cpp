#include "pb/pb_spgemm_impl.hpp"

#include <omp.h>

#include "common/numa.hpp"
#include "common/parallel.hpp"
#include "spgemm/op.hpp"

namespace pbs::pb {

namespace {

// One write per page is enough to bind it; 0 is safe anywhere in the pool
// (tuple contents are undefined until expand overwrites them, and region
// padding is alignment slack by contract).
void touch_pages(std::byte* begin, std::byte* end) {
  constexpr std::size_t kPage = 4096;
  for (std::byte* p = begin; p < end;
       p += kPage - reinterpret_cast<std::uintptr_t>(p) % kPage) {
    *p = std::byte{0};
  }
}

}  // namespace

void PbWorkspace::place_bins(std::span<const nnz_t> bin_offsets,
                             std::span<const int> bin_home,
                             TupleFormat format) {
  if (!fresh_ || bin_offsets.size() < 2) return;
  fresh_ = false;
  const auto nbins = bin_offsets.size() - 1;
  const auto total = static_cast<std::size_t>(bin_offsets[nbins]);
  std::byte* base = buf_.data();
  const int nthreads = max_threads();

  // Byte range of bin b in the pool: one region wide (16 B tuples) and
  // key-only (8 B keys, no value block at all), two for the narrow
  // formats (the key block, then the value block at key_span(total) — 8 B
  // values for kNarrow, 4 B for kNarrowF32).
  auto touch_bin = [&](std::size_t b) {
    const auto lo = static_cast<std::size_t>(bin_offsets[b]);
    const auto hi = static_cast<std::size_t>(bin_offsets[b + 1]);
    switch (format) {
      case TupleFormat::kWide:
        touch_pages(base + lo * sizeof(Tuple), base + hi * sizeof(Tuple));
        break;
      case TupleFormat::kKeyOnly:
        touch_pages(base + lo * sizeof(wide_key_t),
                    base + hi * sizeof(wide_key_t));
        break;
      case TupleFormat::kNarrow: {
        touch_pages(base + lo * sizeof(narrow_key_t),
                    base + hi * sizeof(narrow_key_t));
        std::byte* vals = base + key_span(total);
        touch_pages(vals + lo * sizeof(value_t), vals + hi * sizeof(value_t));
        break;
      }
      case TupleFormat::kNarrowF32: {
        touch_pages(base + lo * sizeof(narrow_key_t),
                    base + hi * sizeof(narrow_key_t));
        std::byte* vals = base + key_span(total);
        touch_pages(vals + lo * sizeof(f32_val_t),
                    vals + hi * sizeof(f32_val_t));
        break;
      }
    }
  };

  // Each bin is touched by exactly ONE thread — a thread on the bin's
  // home node when that node has one in this team, any thread round-robin
  // otherwise — so the pass is race-free (TSan-clean) and the faults are
  // spread across the team even on a single node.
  std::vector<int> thread_node(static_cast<std::size_t>(nthreads), 0);
#pragma omp parallel num_threads(nthreads)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    thread_node[tid] = current_numa_node();
#pragma omp barrier
    int my_rank = 0;   // rank among the team's threads on my node
    int node_cnt = 0;  // how many of them there are
    for (std::size_t t = 0; t < thread_node.size(); ++t) {
      if (thread_node[t] == thread_node[tid]) {
        if (t < tid) ++my_rank;
        ++node_cnt;
      }
    }
    int max_node = 0;
    for (const int n : thread_node) max_node = std::max(max_node, n);
    std::vector<char> node_present(static_cast<std::size_t>(max_node) + 1, 0);
    for (const int n : thread_node) node_present[static_cast<std::size_t>(n)] = 1;
    std::size_t on_node = 0;     // bins whose home node is mine
    std::size_t homeless = 0;    // bins whose home node has no thread here
    for (std::size_t b = 0; b < nbins; ++b) {
      const int home = b < bin_home.size() ? bin_home[b] : 0;
      const bool home_present =
          home >= 0 && home <= max_node &&
          node_present[static_cast<std::size_t>(home)] != 0;
      if (home_present) {
        if (home != thread_node[tid]) continue;
        if (static_cast<int>(on_node++ % static_cast<std::size_t>(node_cnt)) ==
            my_rank) {
          touch_bin(b);
        }
      } else {
        if (static_cast<int>(homeless++ % static_cast<std::size_t>(nthreads)) ==
            static_cast<int>(tid)) {
          touch_bin(b);
        }
      }
    }
  }
}

// The runtime-semiring bridge (spgemm/op.hpp): pb_spgemm_named reaches
// these for any semiring registered at runtime.
template PbResult pb_spgemm<DynSemiring>(const mtx::CscMatrix&,
                                         const mtx::CsrMatrix&,
                                         const PbConfig&);
template PbResult pb_spgemm<DynSemiring>(const mtx::CscMatrix&,
                                         const mtx::CsrMatrix&,
                                         const PbConfig&, PbWorkspace&);

template PbResult pb_spgemm<PlusTimes>(const mtx::CscMatrix&,
                                       const mtx::CsrMatrix&, const PbConfig&);
template PbResult pb_spgemm<MinPlus>(const mtx::CscMatrix&,
                                     const mtx::CsrMatrix&, const PbConfig&);
template PbResult pb_spgemm<MaxMin>(const mtx::CscMatrix&,
                                    const mtx::CsrMatrix&, const PbConfig&);
template PbResult pb_spgemm<BoolOrAnd>(const mtx::CscMatrix&,
                                       const mtx::CsrMatrix&, const PbConfig&);
template PbResult pb_spgemm<PlusTimes>(const mtx::CscMatrix&,
                                       const mtx::CsrMatrix&, const PbConfig&,
                                       PbWorkspace&);
template PbResult pb_spgemm<MinPlus>(const mtx::CscMatrix&,
                                     const mtx::CsrMatrix&, const PbConfig&,
                                     PbWorkspace&);
template PbResult pb_spgemm<MaxMin>(const mtx::CscMatrix&,
                                    const mtx::CsrMatrix&, const PbConfig&,
                                    PbWorkspace&);
template PbResult pb_spgemm<BoolOrAnd>(const mtx::CscMatrix&,
                                       const mtx::CsrMatrix&, const PbConfig&,
                                       PbWorkspace&);

PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg) {
  PbWorkspace workspace;
  return pb_spgemm<PlusTimes>(a, b, cfg, workspace);
}

PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg, PbWorkspace& workspace) {
  return pb_spgemm<PlusTimes>(a, b, cfg, workspace);
}

PbResult pb_spgemm_named(const std::string& semiring, const mtx::CscMatrix& a,
                         const mtx::CsrMatrix& b, const PbConfig& cfg,
                         PbWorkspace& workspace) {
  return dispatch_semiring_any(semiring, [&]<typename S>() {
    return pb_spgemm<S>(a, b, cfg, workspace);
  });
}

}  // namespace pbs::pb
