#include "pb/pb_spgemm_impl.hpp"

#include "spgemm/op.hpp"

namespace pbs::pb {

// The runtime-semiring bridge (spgemm/op.hpp): pb_spgemm_named reaches
// these for any semiring registered at runtime.
template PbResult pb_spgemm<DynSemiring>(const mtx::CscMatrix&,
                                         const mtx::CsrMatrix&,
                                         const PbConfig&);
template PbResult pb_spgemm<DynSemiring>(const mtx::CscMatrix&,
                                         const mtx::CsrMatrix&,
                                         const PbConfig&, PbWorkspace&);

template PbResult pb_spgemm<PlusTimes>(const mtx::CscMatrix&,
                                       const mtx::CsrMatrix&, const PbConfig&);
template PbResult pb_spgemm<MinPlus>(const mtx::CscMatrix&,
                                     const mtx::CsrMatrix&, const PbConfig&);
template PbResult pb_spgemm<MaxMin>(const mtx::CscMatrix&,
                                    const mtx::CsrMatrix&, const PbConfig&);
template PbResult pb_spgemm<BoolOrAnd>(const mtx::CscMatrix&,
                                       const mtx::CsrMatrix&, const PbConfig&);
template PbResult pb_spgemm<PlusTimes>(const mtx::CscMatrix&,
                                       const mtx::CsrMatrix&, const PbConfig&,
                                       PbWorkspace&);
template PbResult pb_spgemm<MinPlus>(const mtx::CscMatrix&,
                                     const mtx::CsrMatrix&, const PbConfig&,
                                     PbWorkspace&);
template PbResult pb_spgemm<MaxMin>(const mtx::CscMatrix&,
                                    const mtx::CsrMatrix&, const PbConfig&,
                                    PbWorkspace&);
template PbResult pb_spgemm<BoolOrAnd>(const mtx::CscMatrix&,
                                       const mtx::CsrMatrix&, const PbConfig&,
                                       PbWorkspace&);

PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg) {
  PbWorkspace workspace;
  return pb_spgemm<PlusTimes>(a, b, cfg, workspace);
}

PbResult pb_spgemm(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   const PbConfig& cfg, PbWorkspace& workspace) {
  return pb_spgemm<PlusTimes>(a, b, cfg, workspace);
}

PbResult pb_spgemm_named(const std::string& semiring, const mtx::CscMatrix& a,
                         const mtx::CsrMatrix& b, const PbConfig& cfg,
                         PbWorkspace& workspace) {
  return dispatch_semiring_any(semiring, [&]<typename S>() {
    return pb_spgemm<S>(a, b, cfg, workspace);
  });
}

}  // namespace pbs::pb
