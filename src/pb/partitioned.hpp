// Partitioned PB-SpGEMM (paper Sec. V-D).
//
// The paper reports that on dual-socket NUMA systems PB-SpGEMM loses its
// edge because bins filled on one socket get sorted by threads of the
// other, and mentions (from the first author's thesis) a mitigation:
// partition A into row blocks and multiply each block with B independently
// so every block's bins stay socket-local, at the cost of reading B once
// per partition.
//
// This module implements that variant: A (CSC) is split into `nparts`
// contiguous row ranges; each part runs the full PB pipeline; the
// per-part CSR results are stacked (their row ranges are disjoint and
// ordered, so stacking is a concatenation).  On a single socket it serves
// as the ablation for the extra-B-reads trade-off the paper describes.
#pragma once

#include "pb/pb_spgemm.hpp"

namespace pbs::pb {

struct PartitionedResult {
  mtx::CsrMatrix c;
  /// Telemetry of each part, in row order.
  std::vector<PbTelemetry> parts;

  [[nodiscard]] double total_seconds() const {
    double t = 0;
    for (const PbTelemetry& p : parts) t += p.total_seconds();
    return t;
  }
};

/// Multiplies A·B with A split into `nparts` row blocks.  nparts == 1 is
/// equivalent to pb_spgemm.  Requires 1 <= nparts and a.ncols == b.nrows.
PartitionedResult pb_spgemm_partitioned(const mtx::CscMatrix& a,
                                        const mtx::CsrMatrix& b, int nparts,
                                        const PbConfig& cfg = {});

}  // namespace pbs::pb
