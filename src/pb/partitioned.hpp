// Partitioned PB-SpGEMM (paper Sec. V-D).
//
// The paper reports that on dual-socket NUMA systems PB-SpGEMM loses its
// edge because bins filled on one socket get sorted by threads of the
// other, and mentions (from the first author's thesis) a mitigation:
// partition A into row blocks and multiply each block with B independently
// so every block's bins stay socket-local, at the cost of reading B once
// per partition.
//
// This module implements that variant: A (CSC) is split into `nparts`
// contiguous row ranges; each part runs the full PB pipeline; the
// per-part CSR results are stacked (their row ranges are disjoint and
// ordered, so stacking is a concatenation).  On a single socket it serves
// as the ablation for the extra-B-reads trade-off the paper describes.
//
// The variant is plan-aware: slicing A and analyzing every part are pure
// structure work, so PartitionedPlan captures the row slices and their
// per-part symbolic plans once and execute() replays only the numeric
// pipeline stages against a pooled workspace — the partitioned analogue of
// pb_plan_build / pb_execute (pb/plan.hpp).
#pragma once

#include "pb/plan.hpp"

namespace pbs::pb {

struct PartitionedResult {
  mtx::CsrMatrix c;
  /// Telemetry of each part, in row order.
  std::vector<PbTelemetry> parts;

  [[nodiscard]] double total_seconds() const {
    double t = 0;
    for (const PbTelemetry& p : parts) t += p.total_seconds();
    return t;
  }
};

/// Reusable partitioned plan: owns the row slices of A (structure *and*
/// values, frozen at build time) and one PbPlan per part.  execute(b)
/// multiplies the captured A against `b`, whose structure must match the
/// build-time B (checked per part via the plan fingerprints; values are
/// free to change).
class PartitionedPlan {
 public:
  /// Runs every part's expand → sort/compress → convert through the
  /// pooled workspace and stacks the results.  With check_fingerprint
  /// (the default) a b whose structure no longer matches throws
  /// std::invalid_argument; callers that just built the plan from this
  /// exact b pass false and skip the per-part flop recounts.
  PartitionedResult execute(const mtx::CsrMatrix& b,
                            bool check_fingerprint = true);

  /// Value-only refresh of the frozen A slices: re-scatters `a`'s values
  /// into every part without re-slicing or re-analyzing.  For iterative
  /// workloads that update A's numeric values in place (relaxation
  /// sweeps, reweighted graphs) — the partitioned analogue of the
  /// executor's value-only fast path.  `a` must have the build-time A's
  /// exact structure: dimensions, nnz, and per-part row occupancy are
  /// verified during the single copy pass and a mismatch throws
  /// std::invalid_argument (the slices' values are then unspecified;
  /// rebuild the plan).  Entries moved between rows at equal counts
  /// cannot be detected — the same residual caveat as
  /// StructureFingerprint.
  void update_a_values(const mtx::CscMatrix& a);

  [[nodiscard]] int nparts() const { return static_cast<int>(plans_.size()); }

  /// Symbolic cost paid at build time, summed over parts plus the
  /// A-slicing passes (for amortization reporting).
  [[nodiscard]] double build_seconds() const { return build_seconds_; }

  /// The per-part symbolic plans (their .symbolic records each part's own
  /// analysis cost, excluding slicing).
  [[nodiscard]] const std::vector<PbPlan>& part_plans() const {
    return plans_;
  }

  [[nodiscard]] PbWorkspace::Stats workspace_stats() const {
    return workspace_.stats();
  }

 private:
  friend PartitionedPlan make_partitioned_plan(const mtx::CscMatrix& a,
                                               const mtx::CsrMatrix& b,
                                               int nparts, const PbConfig& cfg);

  std::vector<mtx::CscMatrix> a_parts_;
  std::vector<index_t> part_row_lo_;  ///< global first row of each part
  std::vector<PbPlan> plans_;
  PbWorkspace workspace_;
  index_t a_nrows_ = 0;
  double build_seconds_ = 0;
};

/// Slices A into `nparts` row blocks and builds one symbolic plan per
/// block.  Requires 1 <= nparts and a.ncols == b.nrows.
PartitionedPlan make_partitioned_plan(const mtx::CscMatrix& a,
                                      const mtx::CsrMatrix& b, int nparts,
                                      const PbConfig& cfg = {});

/// Multiplies A·B with A split into `nparts` row blocks (plan built and
/// executed once).  nparts == 1 is equivalent to pb_spgemm.  Requires
/// 1 <= nparts and a.ncols == b.nrows.
PartitionedResult pb_spgemm_partitioned(const mtx::CscMatrix& a,
                                        const mtx::CsrMatrix& b, int nparts,
                                        const PbConfig& cfg = {});

// ---- tile slicing primitives ----------------------------------------------
//
// The contiguous-range splits PartitionedPlan freezes for its 1D row
// decomposition, exposed so the 2D shard router (serve/shard.hpp) can
// generalize them to a row×column tile grid: A split row-wise, B split
// column-wise, each tile multiplied by an independent executor and the
// tile outputs merged back into one CSR.

/// Bounds of `k` contiguous, balanced ranges covering [0, n): k+1
/// ascending cut points with front() == 0 and back() == n.  Requires
/// k >= 1; ranges are empty only when k > n.
std::vector<index_t> split_ranges(index_t n, int k);

/// Extracts rows [row_lo, row_hi) of A (CSC) with row ids rebased to 0.
/// One filtering pass per column — the "read A once per partition" cost
/// the paper attributes to the partitioned variant.
mtx::CscMatrix slice_rows(const mtx::CscMatrix& a, index_t row_lo,
                          index_t row_hi);

/// Extracts rows [row_lo, row_hi) of A (CSR) — a contiguous copy, no
/// filtering pass.
mtx::CsrMatrix slice_rows(const mtx::CsrMatrix& a, index_t row_lo,
                          index_t row_hi);

/// Extracts columns [col_lo, col_hi) of A (CSR) with column ids rebased
/// to 0.  One filtering pass over the nonzeros (columns are sorted within
/// each row, so the kept run of every row is contiguous).
mtx::CsrMatrix slice_cols(const mtx::CsrMatrix& a, index_t col_lo,
                          index_t col_hi);

/// Stacks per-block CSR results owning disjoint, ascending row ranges
/// into one (nrows × ncols) CSR — the merge step of the row-partitioned
/// variant.  Blocks are concatenated in order; rows past the last block
/// stay empty.
mtx::CsrMatrix stack_row_blocks(const std::vector<mtx::CsrMatrix>& pieces,
                                index_t nrows, index_t ncols);

}  // namespace pbs::pb
