// PB-SpGEMM symbolic phase (paper Algorithm 3).
//
// Streams only the pointer arrays of A (CSC) and B (CSR) to compute flop,
// picks the bin layout, and — one refinement over the paper's pseudocode —
// histograms flop *per bin* (an O(nnz(A)) pass over A's row ids) so the
// global bin array can be laid out as contiguous per-bin regions of a
// single uninitialized allocation.
#pragma once

#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "pb/binning.hpp"
#include "pb/pb_config.hpp"

namespace pbs::pb {

struct SymbolicResult {
  nnz_t flop = 0;
  BinLayout layout;

  /// Region start of each bin in Cˆ; size layout.nbins + 1.  Regions are
  /// padded to 4-tuple (64-byte) multiples so that every full local-bin
  /// flush lands cache-line aligned and the expand phase can use
  /// non-temporal streaming stores (write full lines with no
  /// read-for-ownership — the paper's "always write tuples in multiples of
  /// cache lines").  bin_offsets.back() >= flop is the Cˆ buffer length.
  std::vector<nnz_t> bin_offsets;

  /// Actual tuple count of each bin; size layout.nbins.  Bin b's tuples
  /// occupy [bin_offsets[b], bin_offsets[b] + bin_fill[b]); the remainder
  /// of the region up to bin_offsets[b+1] is alignment slack.
  std::vector<nnz_t> bin_fill;

  /// Modeled memory traffic of this phase (for telemetry).
  double modeled_bytes = 0;
};

SymbolicResult pb_symbolic(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                           const PbConfig& cfg);

}  // namespace pbs::pb
