// PB-SpGEMM symbolic phase (paper Algorithm 3).
//
// Streams only the pointer arrays of A (CSC) and B (CSR) to compute flop,
// picks the bin layout, and — one refinement over the paper's pseudocode —
// histograms flop *per bin* (an O(nnz(A)) pass over A's row ids) so the
// global bin array can be laid out as contiguous per-bin regions of a
// single uninitialized allocation.
#pragma once

#include <span>

#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "pb/binning.hpp"
#include "pb/pb_config.hpp"

namespace pbs::pb {

struct SymbolicResult {
  nnz_t flop = 0;
  BinLayout layout;

  /// Region start of each bin in Cˆ; size layout.nbins + 1.  Regions are
  /// padded to cache-line-friendly tuple multiples (4 tuples = 64 B wide,
  /// 16 tuples = one key line + two value lines narrow) so that every full
  /// local-bin flush lands cache-line aligned and the expand phase can use
  /// non-temporal streaming stores (write full lines with no
  /// read-for-ownership — the paper's "always write tuples in multiples of
  /// cache lines").  bin_offsets.back() >= flop is the Cˆ buffer length.
  std::vector<nnz_t> bin_offsets;

  /// Actual tuple count of each bin; size layout.nbins.  Bin b's tuples
  /// occupy [bin_offsets[b], bin_offsets[b] + bin_fill[b]); the remainder
  /// of the region up to bin_offsets[b+1] is alignment slack.
  std::vector<nnz_t> bin_fill;

  /// Home NUMA node of each bin (size layout.nbins): a contiguous,
  /// flop-balanced partition of the bins over the machine's nodes
  /// (common/numa.hpp).  The placement layer first-touches each bin's
  /// tuple region from a thread on its home node, and the pipelined
  /// schedule prefers stealing from same-node victims.  All zeros on
  /// single-node hosts.
  std::vector<int> bin_home;

  /// Number of distinct nodes bin_home spans (>= 1).
  int numa_nodes = 1;

  /// Stream format the plan selected (pb/tuple.hpp) and, for kNarrow, the
  /// column bit width of the packed key.  pb_execute dispatches the
  /// format-matched kernels from these; the per-phase entry points
  /// (pb_expand / pb_expand_narrow, ...) are format-specific by name and
  /// ignore them.
  TupleFormat format = TupleFormat::kWide;
  int col_bits = 0;

  /// Modeled memory traffic of this phase (for telemetry).
  double modeled_bytes = 0;
};

/// Structure facts a caller may already own, letting pb_symbolic skip its
/// own O(ncols) flop pass and (under adaptive binning) its O(nnz) row-flop
/// pass.  The values are trusted: they must describe the exact operands
/// being analyzed (the plan layer derives them from the same fingerprint
/// pass it already runs).
struct SymbolicHints {
  nnz_t flop = -1;                    ///< flop(A·B); < 0 when unknown
  std::span<const nnz_t> row_flops;   ///< pb_row_flops(A, B); empty = unknown
};

SymbolicResult pb_symbolic(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                           const PbConfig& cfg,
                           const SymbolicHints& hints = {});

/// flop(A·B) = Σ_i nnz(A(:,i)) · nnz(B(i,:)) — Algorithm 3 lines 1-5.
/// O(k) over the pointer arrays only; the cheapest structural invariant of
/// a product, which the plan layer also uses as its invalidation check.
/// Like every flop pass here, throws std::invalid_argument when
/// a.ncols != b.nrows.
nnz_t pb_count_flop(const mtx::CscMatrix& a, const mtx::CsrMatrix& b);

/// Per-output-row flop histogram (row r of C receives
/// Σ_{A(r,i)≠0} nnz(B(i,:)) tuples) — feeds the adaptive bin layout and
/// the compression-factor estimator.  O(nnz(A)).
std::vector<nnz_t> pb_row_flops(const mtx::CscMatrix& a,
                                const mtx::CsrMatrix& b);

/// Estimate of nnz(C) without running the multiplication: per output row,
/// flop_r draws into ncols(B) column slots collide like a balls-into-bins
/// process, so E[distinct] ≈ ncols·(1 − exp(−flop_r/ncols)).  Exact in the
/// two regimes that matter (flop_r ≪ ncols ⇒ ≈flop_r; flop_r ≫ ncols ⇒
/// ≈ncols) and within ~20% in between for unstructured matrices; banded or
/// highly correlated patterns compress more than it predicts.  Cost is one
/// O(nnz(A)) pass.  The ratio flop / estimate is the compression factor cf
/// the roofline-guided algorithm selection runs on (model/selection.hpp).
nnz_t pb_estimate_nnz_c(const mtx::CscMatrix& a, const mtx::CsrMatrix& b);

/// Same estimator over an already-computed pb_row_flops histogram —
/// callers holding one (e.g. the plan layer's selection pass) skip the
/// O(nnz(A)) recount.
nnz_t pb_estimate_nnz_c(std::span<const nnz_t> row_flops, index_t ncols);

/// Structural-only masked estimate: a plain (non-complemented) output mask
/// caps each output row at that row's mask support, so row r contributes
/// min(estimate_r, nnz(mask(r,:))) — strictly sharper than the global
/// min(estimate, nnz(mask)) the selection model applied before, and what
/// keeps masked plans from over-provisioning for output the mask will
/// drop.  Values of `mask` are ignored (pattern only).  Requires
/// row_flops.size() == mask.nrows (the product's row count); throws
/// std::invalid_argument otherwise.  ncols is taken from mask.ncols (the
/// product's column count by the shape contract).
nnz_t pb_estimate_nnz_c_masked(std::span<const nnz_t> row_flops,
                               const mtx::CsrMatrix& mask);

/// Cheap prediction of the tuple format pb_symbolic would select, without
/// running symbolic: derives the bin count from flop and L2 the way the
/// layout builders do and tests the narrow fit.  Exact for the range and
/// modulo policies; for adaptive layouts (whose bin widths depend on the
/// row-flop histogram) it uses the range geometry as a proxy, so the
/// roofline selection sees the right bytes/tuple in the overwhelming case
/// and a 16-vs-12-byte misestimate in the rest.
TupleFormat predict_tuple_format(index_t a_nrows, index_t b_ncols, nnz_t flop,
                                 const PbConfig& cfg);

}  // namespace pbs::pb
