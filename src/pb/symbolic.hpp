// PB-SpGEMM symbolic phase (paper Algorithm 3).
//
// Streams only the pointer arrays of A (CSC) and B (CSR) to compute flop,
// picks the bin layout, and — one refinement over the paper's pseudocode —
// histograms flop *per bin* (an O(nnz(A)) pass over A's row ids) so the
// global bin array can be laid out as contiguous per-bin regions of a
// single uninitialized allocation.
#pragma once

#include "matrix/csc.hpp"
#include "matrix/csr.hpp"
#include "pb/binning.hpp"
#include "pb/pb_config.hpp"

namespace pbs::pb {

struct SymbolicResult {
  nnz_t flop = 0;
  BinLayout layout;

  /// Region start of each bin in Cˆ; size layout.nbins + 1.  Regions are
  /// padded to 4-tuple (64-byte) multiples so that every full local-bin
  /// flush lands cache-line aligned and the expand phase can use
  /// non-temporal streaming stores (write full lines with no
  /// read-for-ownership — the paper's "always write tuples in multiples of
  /// cache lines").  bin_offsets.back() >= flop is the Cˆ buffer length.
  std::vector<nnz_t> bin_offsets;

  /// Actual tuple count of each bin; size layout.nbins.  Bin b's tuples
  /// occupy [bin_offsets[b], bin_offsets[b] + bin_fill[b]); the remainder
  /// of the region up to bin_offsets[b+1] is alignment slack.
  std::vector<nnz_t> bin_fill;

  /// Modeled memory traffic of this phase (for telemetry).
  double modeled_bytes = 0;
};

SymbolicResult pb_symbolic(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                           const PbConfig& cfg);

/// flop(A·B) = Σ_i nnz(A(:,i)) · nnz(B(i,:)) — Algorithm 3 lines 1-5.
/// O(k) over the pointer arrays only; the cheapest structural invariant of
/// a product, which the plan layer also uses as its invalidation check.
/// Like every flop pass here, throws std::invalid_argument when
/// a.ncols != b.nrows.
nnz_t pb_count_flop(const mtx::CscMatrix& a, const mtx::CsrMatrix& b);

/// Per-output-row flop histogram (row r of C receives
/// Σ_{A(r,i)≠0} nnz(B(i,:)) tuples) — feeds the adaptive bin layout and
/// the compression-factor estimator.  O(nnz(A)).
std::vector<nnz_t> pb_row_flops(const mtx::CscMatrix& a,
                                const mtx::CsrMatrix& b);

/// Estimate of nnz(C) without running the multiplication: per output row,
/// flop_r draws into ncols(B) column slots collide like a balls-into-bins
/// process, so E[distinct] ≈ ncols·(1 − exp(−flop_r/ncols)).  Exact in the
/// two regimes that matter (flop_r ≪ ncols ⇒ ≈flop_r; flop_r ≫ ncols ⇒
/// ≈ncols) and within ~20% in between for unstructured matrices; banded or
/// highly correlated patterns compress more than it predicts.  Cost is one
/// O(nnz(A)) pass.  The ratio flop / estimate is the compression factor cf
/// the roofline-guided algorithm selection runs on (model/selection.hpp).
nnz_t pb_estimate_nnz_c(const mtx::CscMatrix& a, const mtx::CsrMatrix& b);

}  // namespace pbs::pb
