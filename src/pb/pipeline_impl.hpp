// Pipelined (per-bin task-dataflow) execution of a PB plan — the
// PbSchedule::kPipeline backend of pb_execute (plan_impl.hpp dispatches
// here; barrier execution stays in plan_impl.hpp).
//
// The barrier schedule runs expand, sort/compress and convert as three
// team-wide loops with an implicit barrier between each: every thread
// waits for the slowest thread of every phase, and the whole Cˆ buffer
// goes cold between the expand that wrote a bin and the sort that reads
// it.  But the dependence structure is per bin, not per phase: bin b is
// sortable the moment the *last* expand flush into b lands, regardless of
// how much expanding remains elsewhere.  This file exploits that:
//
//   - expand runs exactly as before (expand_team / expand_narrow_team),
//     with a flush sink that advances a per-bin done-counter; the flush
//     that completes a bin's fill publishes the bin to the flushing
//     thread's work-stealing deque (common/parallel.hpp),
//   - every thread, after finishing its share of expand, becomes a
//     worker: pop own deque LIFO (the bin most recently flushed — still
//     warmest in cache), else steal FIFO from a victim, running each
//     bin's sort + compress + mask filter + CSR row count as one task,
//   - the row count folds into the task (the paper's convert pass 1),
//     reading the survivors while they are cache-hot; only the prefix
//     sum and the scatter (pass 2) remain as a short tail after the
//     region.
//
// Memory-ordering contract (the reason this is TSan-clean by design):
// a flushing thread's tuple stores are ordered before its done-counter
// fetch_add (acq_rel, preceded by an sfence for the non-temporal path);
// the completing thread's fetch_add joins the same RMW chain, so by the
// release-sequence rule every flusher's stores happen-before the
// completion; the deque's release/acquire handoff then carries that
// ordering to whichever worker pops or steals the bin.
#pragma once

#include <omp.h>

#include <algorithm>
#include <atomic>
#include <exception>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/cancel.hpp"
#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "common/prefix_sum.hpp"
#include "common/timer.hpp"
#include "pb/expand_impl.hpp"
#include "pb/output.hpp"
#include "pb/plan.hpp"
#include "pb/sort_compress_impl.hpp"

namespace pbs::pb {

namespace detail {

// Policy dispatch for the team-callable expand bodies (mirrors
// pb_expand / pb_expand_narrow).
template <typename S, typename Sink>
nnz_t expand_team_any(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                      const SymbolicResult& sym, const PbConfig& cfg,
                      Tuple* out, std::atomic<nnz_t>* cursor, Sink& sink,
                      const MaskSpec& emask) {
  switch (sym.layout.policy) {
    case BinPolicy::kRange:
      return expand_team<BinPolicy::kRange, S>(a, b, sym, cfg, out, cursor,
                                               sink, emask);
    case BinPolicy::kModulo:
      return expand_team<BinPolicy::kModulo, S>(a, b, sym, cfg, out, cursor,
                                                sink, emask);
    case BinPolicy::kAdaptive:
      return expand_team<BinPolicy::kAdaptive, S>(a, b, sym, cfg, out, cursor,
                                                  sink, emask);
  }
  return 0;
}

template <typename S, typename Sink>
nnz_t expand_narrow_team_any(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                             const SymbolicResult& sym, const PbConfig& cfg,
                             narrow_key_t* out_keys, value_t* out_vals,
                             std::atomic<nnz_t>* cursor, Sink& sink,
                             const MaskSpec& emask) {
  switch (sym.layout.policy) {
    case BinPolicy::kRange:
      return expand_narrow_team<BinPolicy::kRange, S>(
          a, b, sym, cfg, out_keys, out_vals, cursor, sink, emask);
    case BinPolicy::kModulo:
      return expand_narrow_team<BinPolicy::kModulo, S>(
          a, b, sym, cfg, out_keys, out_vals, cursor, sink, emask);
    case BinPolicy::kAdaptive:
      return expand_narrow_team<BinPolicy::kAdaptive, S>(
          a, b, sym, cfg, out_keys, out_vals, cursor, sink, emask);
  }
  return 0;
}

// Key-only expand needs no semiring: there is no value to multiply.
template <typename Sink>
nnz_t expand_keyonly_team_any(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                              const SymbolicResult& sym, const PbConfig& cfg,
                              wide_key_t* out_keys, std::atomic<nnz_t>* cursor,
                              Sink& sink, const MaskSpec& emask) {
  switch (sym.layout.policy) {
    case BinPolicy::kRange:
      return expand_keyonly_team<BinPolicy::kRange>(a, b, sym, cfg, out_keys,
                                                    cursor, sink, emask);
    case BinPolicy::kModulo:
      return expand_keyonly_team<BinPolicy::kModulo>(a, b, sym, cfg, out_keys,
                                                     cursor, sink, emask);
    case BinPolicy::kAdaptive:
      return expand_keyonly_team<BinPolicy::kAdaptive>(
          a, b, sym, cfg, out_keys, cursor, sink, emask);
  }
  return 0;
}

template <typename S, typename Sink>
nnz_t expand_narrow_f32_team_any(const mtx::CscMatrix& a,
                                 const mtx::CsrMatrix& b,
                                 const SymbolicResult& sym, const PbConfig& cfg,
                                 narrow_key_t* out_keys, f32_val_t* out_vals,
                                 std::atomic<nnz_t>* cursor, Sink& sink,
                                 const MaskSpec& emask) {
  switch (sym.layout.policy) {
    case BinPolicy::kRange:
      return expand_narrow_f32_team<BinPolicy::kRange, S>(
          a, b, sym, cfg, out_keys, out_vals, cursor, sink, emask);
    case BinPolicy::kModulo:
      return expand_narrow_f32_team<BinPolicy::kModulo, S>(
          a, b, sym, cfg, out_keys, out_vals, cursor, sink, emask);
    case BinPolicy::kAdaptive:
      return expand_narrow_f32_team<BinPolicy::kAdaptive, S>(
          a, b, sym, cfg, out_keys, out_vals, cursor, sink, emask);
  }
  return 0;
}

// Flush sink of the pipelined schedule: counts flushed tuples per bin and
// publishes a bin to this thread's deque the moment its fill completes.
struct PipelineSink {
  std::atomic<nnz_t>* done = nullptr;  ///< per-bin flushed-tuple counters
  const nnz_t* fill = nullptr;         ///< sym.bin_fill
  double* ready_ts = nullptr;          ///< per-bin readiness timestamp
  int* completer = nullptr;            ///< per-bin completing thread
  WorkStealingDeque<int>* my_deque = nullptr;
  int tid = 0;

  void flushed(std::size_t bin, int count) {
    // Order the flush's stores (non-temporal included — flush_fence is an
    // sfence) before the counter add; acq_rel keeps the RMW chain a
    // release sequence so the completion below carries every flusher's
    // stores with it.
    flush_fence();
    credit(bin, static_cast<nnz_t>(count));
  }

  /// Skip credit from a masked expand (expand_impl.hpp): `count` tuples of
  /// this bin were never generated, so the done counter still converges to
  /// the symbolic fill mark — flushed + skipped == flop — and bin
  /// completion is detected exactly as in the unmasked run.  No data was
  /// written, so no flush_fence is needed; the credit may itself complete
  /// the bin.
  void skipped(std::size_t bin, nnz_t count) { credit(bin, count); }

 private:
  void credit(std::size_t bin, nnz_t count) {
    const nnz_t prev = done[bin].fetch_add(count, std::memory_order_acq_rel);
    if (prev + count == fill[bin]) {
      ready_ts[bin] = omp_get_wtime();
      completer[bin] = tid;
      my_deque->push(static_cast<int>(bin));
    }
  }
};

// Per-thread accounting of the pipelined region, reduced into PbTelemetry
// after the join.
struct PipelineThreadStats {
  double expand_busy = 0;
  double sort_busy = 0;
  double compress_busy = 0;
  double count_busy = 0;
  double wait = 0;  ///< Σ over processed bins of (task start − ready)
  double run = 0;   ///< Σ task durations
  nnz_t dropped = 0;       ///< mask-filter drops in this thread's tasks
  nnz_t post_dropped = 0;  ///< post-op drops in this thread's tasks
  int stolen = 0;
};

}  // namespace detail

/// Pipelined pb_execute backend.  Same contract and result as the barrier
/// path (fingerprint and mask shape already checked by the caller).
///
/// Robustness: an internal abort token (linked to the caller's `cancel`)
/// is the region's single unwind signal.  Expand polls it per column, the
/// worker loop per iteration; any in-region exception is captured once,
/// fires the abort, and every thread drains to the join — throwing across
/// an OpenMP region boundary is undefined, and a cancelled expand leaves
/// bins forever unpublished, so the steal loop must not wait on
/// bins_remaining alone.
template <typename S>
PbResult pb_execute_pipeline(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                             const PbPlan& plan, PbWorkspace& workspace,
                             const MaskSpec& mask,
                             const CancelToken* cancel = nullptr,
                             const PbEpilogue& epi = {}) {
  const SymbolicResult& sym = plan.sym;
  const TupleFormat fmt = sym.format;
  const auto nbins = static_cast<std::size_t>(sym.layout.nbins);
  const int nthreads = max_threads();

  PbResult result;
  PbTelemetry& tm = result.stats;
  tm.flop = sym.flop;
  tm.nbins = sym.layout.nbins;
  tm.rows_per_bin = sym.layout.rows_per_bin();
  tm.format = sym.format;
  tm.schedule = PbSchedule::kPipeline;
  const double bpt = tm.tuple_bytes();

  // Fused expand-time mask (same per-run decision as the barrier path).
  // When it engages, the done counters still reach the symbolic fill marks
  // — skipped tuples are credited through PipelineSink::skipped — but the
  // write cursors fall short, so task lengths come from the cursors and
  // the compress-stage filter is disabled (survivors are in-mask by
  // construction).
  const bool expand_masked =
      engage_expand_mask(mask, plan.cfg, a.nrows, b.ncols);
  const MaskSpec emask = expand_masked ? mask : MaskSpec{};
  const MaskSpec cmask = expand_masked ? MaskSpec{} : mask;
  const bool accumulating = epi.accumulate != nullptr;

  // ---- shared state ----
  const auto buf_len = static_cast<std::size_t>(sym.bin_offsets.back());
  Tuple* expanded = nullptr;
  NarrowStream ns;
  NarrowF32Stream nf;
  wide_key_t* keys_only = nullptr;
  switch (fmt) {
    case TupleFormat::kNarrow:
      ns = workspace.acquire_narrow(buf_len);
      break;
    case TupleFormat::kNarrowF32:
      nf = workspace.acquire_narrow_f32(buf_len);
      break;
    case TupleFormat::kKeyOnly:
      keys_only = workspace.acquire_keys(buf_len);
      break;
    case TupleFormat::kWide:
      expanded = workspace.acquire(buf_len);
      break;
  }
  workspace.place_bins(sym.bin_offsets, sym.bin_home, sym.format);
  workspace.prepare_scratch(nthreads);

  std::vector<std::atomic<nnz_t>> cursor(nbins);
  std::vector<std::atomic<nnz_t>> done(nbins);
  for (std::size_t bin = 0; bin < nbins; ++bin) {
    cursor[bin].store(sym.bin_offsets[bin], std::memory_order_relaxed);
    done[bin].store(0, std::memory_order_relaxed);
  }
  std::vector<double> ready_ts(nbins, 0.0);
  std::vector<int> completer(nbins, -1);
  std::vector<nnz_t> merged(nbins, 0);

  int nonempty = 0;
  nnz_t max_bin = 0;
  for (std::size_t bin = 0; bin < nbins; ++bin) {
    if (sym.bin_fill[bin] != 0) ++nonempty;
    max_bin = std::max(max_bin, sym.bin_fill[bin]);
  }
  std::atomic<int> bins_remaining{nonempty};

  // One deque per thread; a bin enters exactly one deque (its completer's),
  // so per-deque capacity nbins can never overflow.
  std::vector<std::unique_ptr<WorkStealingDeque<int>>> deques(
      static_cast<std::size_t>(nthreads));
  for (auto& d : deques) {
    d = std::make_unique<WorkStealingDeque<int>>(std::max<std::size_t>(nbins, 1));
  }

  std::vector<detail::PipelineThreadStats> tstats(
      static_cast<std::size_t>(nthreads));

  // Single unwind signal for the whole region (see the function comment);
  // expand reads it through the run-local config below.
  CancelToken abort;
  abort.link(cancel);
  PbConfig run_cfg = plan.cfg;
  run_cfg.cancel = &abort;
  std::exception_ptr error;

  // The result CSR is built incrementally: tasks count rows into
  // rowptr[row + 1] while their bin is cache-hot (race-free — no row spans
  // two bins), and only the prefix sum + scatter run after the join.
  mtx::CsrMatrix c(a.nrows, b.ncols);

  const WideBinOps<S> wide_ops{expanded, &cmask, &epi.post_op};
  const NarrowBinOps<S> narrow_ops{ns.keys, ns.vals, &cmask, &epi.post_op,
                                   &sym.layout, sym.col_bits};
  const KeyOnlyBinOps keyonly_ops{keys_only, &cmask};
  const NarrowF32BinOps<S> f32_ops{nf.keys, nf.vals, &cmask, &epi.post_op,
                                   &sym.layout, sym.col_bits};

  Timer region_timer;

#pragma omp parallel num_threads(nthreads)
  {
    const int tid = omp_get_thread_num();
    const auto utid = static_cast<std::size_t>(tid);
    detail::PipelineThreadStats& ts = tstats[utid];

    // Per-thread sort scratch, acquired once (slot reuse across tasks).
    // Acquisition can throw (budget rejection, injected OOM); the thread
    // must still reach expand's worksharing construct, so failure is
    // captured here and the thread runs the region as a no-op.
    bool ok = true;
    Tuple* wide_scratch = nullptr;
    NarrowStream narrow_scratch;
    NarrowF32Stream f32_scratch;
    wide_key_t* key_scratch = nullptr;
    try {
      switch (fmt) {
        case TupleFormat::kNarrow:
          narrow_scratch = workspace.acquire_scratch_narrow(
              utid, static_cast<std::size_t>(max_bin));
          break;
        case TupleFormat::kNarrowF32:
          f32_scratch = workspace.acquire_scratch_narrow_f32(
              utid, static_cast<std::size_t>(max_bin));
          break;
        case TupleFormat::kKeyOnly:
          key_scratch = workspace.acquire_scratch_keys(
              utid, static_cast<std::size_t>(max_bin));
          break;
        case TupleFormat::kWide:
          wide_scratch = workspace.acquire_scratch(
              utid, static_cast<std::size_t>(max_bin));
          break;
      }
    } catch (...) {
      ok = false;
#pragma omp critical(pbs_pipeline_error)
      {
        if (error == nullptr) error = std::current_exception();
      }
      abort.request_cancel();
    }

    // One bin's task: sort + compress + mask filter + row count, back to
    // back while the bin is cache-hot.
    auto run_task = [&](int bin) {
      FaultInjector::on_bin();
      const auto ubin = static_cast<std::size_t>(bin);
      const double t0 = omp_get_wtime();
      const nnz_t off = sym.bin_offsets[ubin];
      // The bin's actual tuple count comes from its write cursor, not the
      // symbolic fill mark: a masked expand generates fewer tuples than
      // flop.  Every flusher's cursor add happens-before the completing
      // done add (program order into the acq_rel RMW chain), and the deque
      // handoff carries that ordering here, so a relaxed load is exact.
      const auto len = static_cast<std::size_t>(
          cursor[ubin].load(std::memory_order_relaxed) - off);

      double t1 = t0;
      nnz_t kept = 0;
      nnz_t pre_mask = 0;
      nnz_t kept_mask = 0;
      // A fully masked bin can complete on skip credits alone: nothing to
      // sort (the kernels assume non-empty bins), nothing to count.
      if (len != 0) {
        switch (fmt) {
          case TupleFormat::kNarrow:
            narrow_ops.sort(off, len, narrow_scratch);
            t1 = omp_get_wtime();
            pre_mask = narrow_ops.compress(off, len);
            kept_mask = narrow_ops.filter(bin, off, pre_mask);
            kept = narrow_ops.post_apply(off, kept_mask);
            break;
          case TupleFormat::kNarrowF32:
            f32_ops.sort(off, len, f32_scratch);
            t1 = omp_get_wtime();
            pre_mask = f32_ops.compress(off, len);
            kept_mask = f32_ops.filter(bin, off, pre_mask);
            kept = f32_ops.post_apply(off, kept_mask);
            break;
          case TupleFormat::kKeyOnly:
            keyonly_ops.sort(off, len, key_scratch);
            t1 = omp_get_wtime();
            pre_mask = keyonly_ops.compress(off, len);
            kept_mask = keyonly_ops.filter(bin, off, pre_mask);
            kept = kept_mask;  // value-free: no post-op lane
            break;
          case TupleFormat::kWide:
            wide_ops.sort(off, len, wide_scratch,
                          static_cast<std::size_t>(max_bin));
            t1 = omp_get_wtime();
            pre_mask = wide_ops.compress(off, len);
            kept_mask = wide_ops.filter(bin, off, pre_mask);
            kept = wide_ops.post_apply(off, kept_mask);
            break;
        }
      }
      merged[ubin] = kept;
      ts.dropped += pre_mask - kept_mask;
      ts.post_dropped += kept_mask - kept;
      const double t2 = omp_get_wtime();

      // The folded row count is skipped when accumulating: the union count
      // needs C_old's rows too, and the accumulate tail walks both streams
      // anyway (output_accum.hpp).
      if (!accumulating && kept != 0) {
        switch (fmt) {
          case TupleFormat::kNarrow:
            pb_count_bin_narrow(ns.keys + off, kept, bin, sym.layout,
                                sym.col_bits, c.rowptr.data());
            break;
          // The f32 count pass reuses the narrow counter: keys are
          // identical.
          case TupleFormat::kNarrowF32:
            pb_count_bin_narrow(nf.keys + off, kept, bin, sym.layout,
                                sym.col_bits, c.rowptr.data());
            break;
          case TupleFormat::kKeyOnly:
            pb_count_bin_keyonly(keys_only + off, kept, c.rowptr.data());
            break;
          case TupleFormat::kWide:
            pb_count_bin(expanded + off, kept, c.rowptr.data());
            break;
        }
      }
      const double t3 = omp_get_wtime();

      ts.sort_busy += t1 - t0;
      ts.compress_busy += t2 - t1;
      ts.count_busy += t3 - t2;
      ts.wait += std::max(0.0, t0 - ready_ts[ubin]);
      ts.run += t3 - t0;
      if (completer[ubin] != tid) ++ts.stolen;
      bins_remaining.fetch_sub(1, std::memory_order_acq_rel);
    };

    // Task exceptions must not cross the region join: capture the first,
    // fire the abort, and let every worker drain out.
    auto try_run = [&](int bin) {
      try {
        run_task(bin);
      } catch (...) {
#pragma omp critical(pbs_pipeline_error)
        {
          if (error == nullptr) error = std::current_exception();
        }
        abort.request_cancel();
      }
    };

    detail::PipelineSink sink{done.data(), sym.bin_fill.data(),
                              ready_ts.data(), completer.data(),
                              deques[utid].get(), tid};

    // Expand this thread's share, interleaved (by the sink) with
    // publishing completed bins.  `omp for nowait` inside: threads fall
    // straight through to the worker loop.
    const double e0 = omp_get_wtime();
    switch (fmt) {
      case TupleFormat::kNarrow:
        detail::expand_narrow_team_any<S>(a, b, sym, run_cfg, ns.keys,
                                          ns.vals, cursor.data(), sink,
                                          emask);
        break;
      case TupleFormat::kNarrowF32:
        detail::expand_narrow_f32_team_any<S>(a, b, sym, run_cfg, nf.keys,
                                              nf.vals, cursor.data(), sink,
                                              emask);
        break;
      case TupleFormat::kKeyOnly:
        detail::expand_keyonly_team_any(a, b, sym, run_cfg, keys_only,
                                        cursor.data(), sink, emask);
        break;
      case TupleFormat::kWide:
        detail::expand_team_any<S>(a, b, sym, run_cfg, expanded,
                                   cursor.data(), sink, emask);
        break;
    }
    ts.expand_busy = omp_get_wtime() - e0;

    // Worker loop: own deque first (LIFO — most recently flushed bin,
    // warmest), then steal FIFO round-robin.  Runs until every nonempty
    // bin has been processed by someone — or the abort fires (a cancelled
    // expand leaves bins unpublished, so bins_remaining alone would spin
    // forever).
    int bin = -1;
    while (ok && bins_remaining.load(std::memory_order_acquire) > 0) {
      if (abort.stop_requested_now()) break;
      if (deques[utid]->pop(bin)) {
        try_run(bin);
        continue;
      }
      bool got = false;
      for (int k = 1; k < nthreads && !got; ++k) {
        got = deques[static_cast<std::size_t>((tid + k) % nthreads)]->steal(
            bin);
      }
      if (got) {
        try_run(bin);
      } else {
        // Bins still in flight inside other threads' expand: let them run.
        std::this_thread::yield();
      }
    }
  }

  // Unwind before the validate pass: a cancelled or faulted region leaves
  // cursors/done counters legitimately short of their fill marks, and the
  // typed error must win over the (misleading) logic_error.
  if (error != nullptr) std::rethrow_exception(error);
  throw_if_stopped(cancel);

  if (plan.cfg.validate) {
    for (std::size_t bin = 0; bin < nbins; ++bin) {
      // A masked expand legitimately leaves the cursor short of the fill
      // mark (skipped tuples were credited, not written); it must still
      // never overshoot.
      const nnz_t end = cursor[bin].load(std::memory_order_relaxed);
      const nnz_t mark = sym.bin_offsets[bin] + sym.bin_fill[bin];
      if (expand_masked ? end > mark : end != mark) {
        throw std::logic_error("pb_execute(pipeline): bin " +
                               std::to_string(bin) +
                               " cursor does not meet its fill mark");
      }
      if (done[bin].load(std::memory_order_relaxed) != sym.bin_fill[bin]) {
        throw std::logic_error("pb_execute(pipeline): bin " +
                               std::to_string(bin) +
                               " done counter does not meet its fill mark");
      }
    }
  }

  const double region_wall = region_timer.elapsed_s();

  // ---- tail: prefix sum + scatter (the only barrier left); with an
  // accumulate epilogue the tail is the fused union build instead
  // (output_accum.hpp — count + prefix + merge-scatter against C_old) ----
  Timer tail_timer;
  if (accumulating) {
    const mtx::CsrMatrix& c_old = *epi.accumulate;
    switch (fmt) {
      case TupleFormat::kNarrow:
        result.c = pb_build_csr_accum_narrow<S>(
            ns.keys, ns.vals, sym.bin_offsets, merged, c_old, sym.layout,
            sym.col_bits, a.nrows, b.ncols, cancel);
        break;
      case TupleFormat::kNarrowF32:
        result.c = pb_build_csr_accum_narrow_f32<S>(
            nf.keys, nf.vals, sym.bin_offsets, merged, c_old, sym.layout,
            sym.col_bits, a.nrows, b.ncols, cancel);
        break;
      case TupleFormat::kKeyOnly:
        result.c = pb_build_csr_accum_keyonly<S>(keys_only, sym.bin_offsets,
                                                 merged, c_old, sym.layout,
                                                 a.nrows, b.ncols, 1.0,
                                                 cancel);
        break;
      case TupleFormat::kWide:
        result.c =
            pb_build_csr_accum<S>(expanded, sym.bin_offsets, merged, c_old,
                                  sym.layout, a.nrows, b.ncols, cancel);
        break;
    }
  } else {
    const nnz_t total =
        counts_to_rowptr(c.rowptr.data(), static_cast<std::size_t>(a.nrows));
    c.colids.resize(static_cast<std::size_t>(total));
    c.vals.resize(static_cast<std::size_t>(total));
#pragma omp parallel for schedule(dynamic, 1)
    for (int bin = 0; bin < sym.layout.nbins; ++bin) {
      // Deadline may expire inside the tail: skip the remaining bins (the
      // partial CSR is discarded) and raise after the join.
      if (stop_requested(cancel)) continue;
      const auto ubin = static_cast<std::size_t>(bin);
      const nnz_t off = sym.bin_offsets[ubin];
      switch (fmt) {
        case TupleFormat::kNarrow:
          pb_scatter_bin_narrow(ns.keys + off, ns.vals + off, merged[ubin],
                                bin, sym.layout, sym.col_bits,
                                c.rowptr.data(), c.colids.data(),
                                c.vals.data());
          break;
        case TupleFormat::kNarrowF32:
          pb_scatter_bin_narrow_f32(nf.keys + off, nf.vals + off,
                                    merged[ubin], bin, sym.layout,
                                    sym.col_bits, c.rowptr.data(),
                                    c.colids.data(), c.vals.data());
          break;
        case TupleFormat::kKeyOnly:
          pb_scatter_bin_keyonly(keys_only + off, merged[ubin],
                                 c.rowptr.data(), c.colids.data(),
                                 c.vals.data(), 1.0);
          break;
        case TupleFormat::kWide:
          pb_scatter_bin(expanded + off, merged[ubin], c.rowptr.data(),
                         c.colids.data(), c.vals.data());
          break;
      }
    }
    result.c = std::move(c);
  }
  throw_if_stopped(cancel);
  const double tail_wall = tail_timer.elapsed_s();

  // ---- telemetry ----
  // Per-phase seconds are max per-thread *busy* times: they overlap one
  // another inside the region, so their sum can exceed wall_seconds — that
  // surplus is exactly what overlap_seconds() reports.  The Table III byte
  // models are schedule-independent and match the barrier path.
  tm.wall_seconds = region_wall + tail_wall;
  nnz_t nnz_c = 0;
  for (const nnz_t m : merged) nnz_c += m;
  tm.nnz_c = nnz_c;
  // Tuples this run actually generated (== flop unless expand masked; the
  // cursors are exact after the join).
  nnz_t generated = sym.flop;
  if (expand_masked) {
    generated = 0;
    for (std::size_t bin = 0; bin < nbins; ++bin) {
      generated += cursor[bin].load(std::memory_order_relaxed) -
                   sym.bin_offsets[bin];
    }
    tm.mask_skipped_expand = sym.flop - generated;
    tm.expand_masked = true;
  }
  for (const auto& ts : tstats) {
    tm.expand.seconds = std::max(tm.expand.seconds, ts.expand_busy);
    tm.sort.seconds = std::max(tm.sort.seconds, ts.sort_busy);
    tm.compress.seconds = std::max(tm.compress.seconds, ts.compress_busy);
    tm.convert.seconds = std::max(tm.convert.seconds, ts.count_busy);
    tm.bin_wait_seconds += ts.wait;
    tm.bin_run_seconds += ts.run;
    tm.bins_stolen += ts.stolen;
    tm.mask_dropped += ts.dropped;
    tm.post_dropped += ts.post_dropped;
  }
  tm.convert.seconds += tail_wall;
  tm.expand.bytes =
      static_cast<double>(kBytesPerTuple) *
          (static_cast<double>(a.nnz()) + static_cast<double>(b.nnz())) +
      bpt * static_cast<double>(generated);
  tm.sort.bytes = bpt * static_cast<double>(generated);
  tm.compress.bytes =
      bpt * static_cast<double>(nnz_c + tm.mask_dropped + tm.post_dropped);
  tm.convert.bytes =
      (bpt + static_cast<double>(sizeof(index_t) + sizeof(value_t))) *
          static_cast<double>(nnz_c) +
      2.0 * static_cast<double>(sizeof(nnz_t)) * static_cast<double>(a.nrows);
  if (accumulating) {
    const auto entry = static_cast<double>(sizeof(index_t) + sizeof(value_t));
    tm.convert.bytes +=
        entry * static_cast<double>(epi.accumulate->nnz()) +      // C_old in
        entry * static_cast<double>(result.c.nnz() - nnz_c);      // extra out
  }

  return result;
}

}  // namespace pbs::pb
