// Template definitions for the expand phase (see expand.hpp for the
// algorithm description).  Included by expand.cpp, which explicitly
// instantiates pb_expand<S> / pb_expand_narrow<S> for the built-in
// semirings — include this header directly only to instantiate a custom
// semiring.
#pragma once

#include "pb/expand.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include <atomic>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/cancel.hpp"

namespace pbs::pb {

namespace detail {

// Flush copy: when the destination is cache-line aligned and the block is
// whole lines, use non-temporal stores — full-line writes with no
// read-for-ownership traffic, which is what lets the expand phase approach
// STREAM bandwidth (paper Sec. III-C).  Symbolic pads bin regions so full
// flushes stay aligned; partial drain flushes fall back to memcpy.  One
// template serves both formats: wide flushes move Tuple lines, narrow
// flushes move a key block and a value block separately (non-temporal on
// both).
template <typename T>
inline void flush_copy(T* dst, const T* src, int count,
                       [[maybe_unused]] bool streaming) {
  const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
#if defined(__SSE2__)
  if (streaming && (reinterpret_cast<std::uintptr_t>(dst) & 63u) == 0 &&
      bytes % 64 == 0) {
    const auto* s = reinterpret_cast<const __m128i*>(src);
    auto* d = reinterpret_cast<__m128i*>(dst);
    const std::size_t blocks = bytes / sizeof(__m128i);
    for (std::size_t i = 0; i < blocks; ++i)
      _mm_stream_si128(d + i, _mm_load_si128(s + i));
    return;
  }
#endif
  std::memcpy(dst, src, bytes);
}

inline void flush_fence() {
#if defined(__SSE2__)
  _mm_sfence();  // make non-temporal stores visible before the sort phase
#endif
}

// The expand kernel is templated on the binning policy so the binid
// computation in the inner loop is a shift/mask, not a switch.
template <BinPolicy P>
int fast_binid(const BinLayout& layout, index_t row) {
  if constexpr (P == BinPolicy::kRange) {
    return static_cast<int>(row >> layout.shift);
  } else if constexpr (P == BinPolicy::kModulo) {
    return static_cast<int>(static_cast<std::uint32_t>(row) & layout.mask);
  } else {
    return layout.binid(row);
  }
}

// Bin-relative row for the narrow key, same specialization idea as
// fast_binid.  `mod_shift` is layout.modulo_shift(), hoisted by the caller
// so the modulo case is a plain shift here.
template <BinPolicy P>
index_t fast_local_row(const BinLayout& layout, int bin, index_t row,
                       int mod_shift) {
  if constexpr (P == BinPolicy::kRange) {
    return static_cast<index_t>(static_cast<std::uint32_t>(row) &
                                ((std::uint32_t{1} << layout.shift) - 1u));
  } else if constexpr (P == BinPolicy::kModulo) {
    return row >> mod_shift;
  } else {
    (void)mod_shift;
    return row - layout.bounds[static_cast<std::size_t>(bin)];
  }
}

// Flush sink: the team-callable expand bodies below notify it after every
// completed flush_copy — `sink.flushed(bin, count)` with the data already
// written to the bin's global region.  The barrier schedule plugs in this
// no-op (compiled away); the pipelined schedule's sink advances the bin's
// done-counter and, on completion, publishes the bin to a work-stealing
// deque (pipeline_impl.hpp).
//
// With an active expand-phase mask (emask), tuples the mask rejects are
// never buffered — the bodies instead batch per-bin *skip credits* and
// report them through `sink.skipped(bin, count)`.  A bin's done-counter
// thus still converges to its symbolic fill mark (flushed + skipped ==
// flop), so pipelined bin-completion detection is untouched; only the
// write cursor falls short of the mark, and the caller reads the cursors
// back as the bins' actual generated fills.  Credits ride the flush cycle
// (plus a final drain) rather than hitting the sink per tuple.
struct NullFlushSink {
  void flushed(std::size_t /*bin*/, int /*count*/) {}
  void skipped(std::size_t /*bin*/, nnz_t /*count*/) {}
};

// The per-(output row, B row) mask merge used by all four team bodies: the
// B row's columns and the mask row's columns are both ascending, so one
// forward scan of the mask row per pair decides every candidate tuple.
// Keep when membership != complement.  Returns via `emit(bi)` for kept
// candidates and counts the rest.
template <typename Emit>
inline nnz_t masked_scan(std::span<const index_t> bcols,
                         std::span<const index_t> mrow, bool complement,
                         Emit&& emit) {
  nnz_t skipped = 0;
  std::size_t mi = 0;
  for (std::size_t bi = 0; bi < bcols.size(); ++bi) {
    const index_t c = bcols[bi];
    while (mi < mrow.size() && mrow[mi] < c) ++mi;
    const bool in_mask = mi < mrow.size() && mrow[mi] == c;
    if (in_mask == complement) {
      ++skipped;
      continue;
    }
    emit(bi);
  }
  return skipped;
}

// Team-callable wide expand: runs INSIDE an existing parallel region (every
// thread of the team must call it — it contains an `omp for`).  `cursor`
// is the shared per-bin write-cursor array, pre-seeded with the bin region
// origins.  Returns this thread's flush count.
template <BinPolicy P, typename S, typename Sink>
nnz_t expand_team(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                  const SymbolicResult& sym, const PbConfig& cfg, Tuple* out,
                  std::atomic<nnz_t>* cursor, Sink& sink,
                  const MaskSpec& emask = {}) {
  const BinLayout& layout = sym.layout;
  const auto nbins = static_cast<std::size_t>(layout.nbins);
  const int cap =
      std::max<int>(1, cfg.local_bin_bytes / static_cast<int>(sizeof(Tuple)));
  const bool masked = emask.active();

  // Thread-private local bins: nbins buffers of `cap` tuples in one
  // contiguous allocation (paper: 1K bins x 512B fits comfortably in L2).
  AlignedBuffer<Tuple> lbin(nbins * static_cast<std::size_t>(cap));
  std::vector<int> lcnt(nbins, 0);
  std::vector<nnz_t> lskip(masked ? nbins : 0, 0);
  nnz_t flushes = 0;

  auto flush = [&](std::size_t bin) {
    const int count = lcnt[bin];
    const nnz_t pos = cursor[bin].fetch_add(count, std::memory_order_relaxed);
    flush_copy(out + pos, lbin.data() + bin * static_cast<std::size_t>(cap),
               count, cfg.streaming_stores);
    lcnt[bin] = 0;
    ++flushes;
    sink.flushed(bin, count);
    if (masked && lskip[bin] != 0) {
      sink.skipped(bin, lskip[bin]);
      lskip[bin] = 0;
    }
  };

#pragma omp for schedule(guided) nowait
  for (index_t i = 0; i < a.ncols; ++i) {
    // Cooperative cancellation at column granularity (`break` is illegal
    // in an omp for; skipped columns just leave their bins short, and the
    // caller raises the typed error after the join).
    if (stop_requested(cfg.cancel)) continue;
    const auto arows = a.col_rows(i);
    const auto avals = a.col_vals(i);
    const auto bcols = b.row_cols(i);
    const auto bvals = b.row_vals(i);
    if (bcols.empty()) continue;

    for (std::size_t ai = 0; ai < arows.size(); ++ai) {
      const index_t r = arows[ai];
      const value_t av = avals[ai];
      const auto bin = static_cast<std::size_t>(fast_binid<P>(layout, r));
      Tuple* lane = lbin.data() + bin * static_cast<std::size_t>(cap);
      if (masked) {
        const auto mrow = emask.csr->row_cols(r);
        if (mrow.empty() && !emask.complement) {
          // Empty mask row keeps nothing: the whole B row is skipped
          // without touching the lane (the common case on sparse masks).
          lskip[bin] += static_cast<nnz_t>(bcols.size());
          continue;
        }
        lskip[bin] += masked_scan(bcols, mrow, emask.complement,
                                  [&](std::size_t bi) {
                                    if (lcnt[bin] == cap) flush(bin);
                                    lane[lcnt[bin]++] =
                                        Tuple{make_key(r, bcols[bi]),
                                              S::mul(av, bvals[bi])};
                                  });
        continue;
      }
      for (std::size_t bi = 0; bi < bcols.size(); ++bi) {
        if (lcnt[bin] == cap) flush(bin);
        lane[lcnt[bin]++] =
            Tuple{make_key(r, bcols[bi]), S::mul(av, bvals[bi])};
      }
    }
  }

  // Drain the partially-filled local bins (Algorithm 2, lines 15-18), plus
  // any skip credits batched for bins this thread never flushed again.
  for (std::size_t bin = 0; bin < nbins; ++bin) {
    if (lcnt[bin] != 0) flush(bin);
    if (masked && lskip[bin] != 0) {
      sink.skipped(bin, lskip[bin]);
      lskip[bin] = 0;
    }
  }
  flush_fence();
  return flushes;
}

template <BinPolicy P, typename S>
nnz_t expand_impl(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                  const SymbolicResult& sym, const PbConfig& cfg, Tuple* out,
                  const MaskSpec& emask, nnz_t* actual_fill) {
  const auto nbins = static_cast<std::size_t>(sym.layout.nbins);

  // One write cursor per global bin, starting at the bin's region origin.
  std::vector<std::atomic<nnz_t>> cursor(nbins);
  for (std::size_t bin = 0; bin < nbins; ++bin)
    cursor[bin].store(sym.bin_offsets[bin], std::memory_order_relaxed);

  nnz_t flushes = 0;

#pragma omp parallel reduction(+ : flushes)
  {
    NullFlushSink sink;
    flushes += expand_team<P, S>(a, b, sym, cfg, out, cursor.data(), sink,
                                 emask);
  }

  if (actual_fill != nullptr) {
    for (std::size_t bin = 0; bin < nbins; ++bin) {
      actual_fill[bin] =
          cursor[bin].load(std::memory_order_relaxed) - sym.bin_offsets[bin];
    }
  }
  if (cfg.validate &&
      !(cfg.cancel != nullptr && cfg.cancel->stop_requested_now())) {
    for (std::size_t bin = 0; bin < nbins; ++bin) {
      const nnz_t end = cursor[bin].load(std::memory_order_relaxed);
      const nnz_t mark = sym.bin_offsets[bin] + sym.bin_fill[bin];
      // A masked scatter legitimately stops short of the fill mark; an
      // unmasked one must hit it exactly.
      if (emask.active() ? end > mark : end != mark) {
        throw std::logic_error("pb_expand: bin " + std::to_string(bin) +
                               " cursor does not meet its fill mark");
      }
    }
  }
  return flushes;
}

// Narrow-format expand: identical routing and blocking, but local bins are
// SoA — a key lane and a value lane per bin — and a flush scatters the two
// streams separately, so the phase writes 12 bytes per tuple instead of
// 16.  The local-bin capacity is rounded to 16 tuples so a full flush is
// whole cache lines on both streams (one 64 B key line per 16 tuples, two
// value lines), keeping the non-temporal store path of flush_copy.
// Team-callable; same contract as expand_team.
template <BinPolicy P, typename S, typename Sink>
nnz_t expand_narrow_team(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                         const SymbolicResult& sym, const PbConfig& cfg,
                         narrow_key_t* out_keys, value_t* out_vals,
                         std::atomic<nnz_t>* cursor, Sink& sink,
                         const MaskSpec& emask = {}) {
  const BinLayout& layout = sym.layout;
  const auto nbins = static_cast<std::size_t>(layout.nbins);
  const int cap = std::max<int>(
      16, cfg.local_bin_bytes /
              static_cast<int>(kBytesPerTupleNarrow) / 16 * 16);
  const int col_bits = sym.col_bits;
  const int mod_shift =
      layout.policy == BinPolicy::kModulo ? layout.modulo_shift() : 0;
  const bool masked = emask.active();

  // All key lanes, then all value lanes (both line-aligned: cap is a
  // multiple of 16, so each lane starts on a 64 B boundary).
  AlignedBuffer<narrow_key_t> lkeys(nbins * static_cast<std::size_t>(cap));
  AlignedBuffer<value_t> lvals(nbins * static_cast<std::size_t>(cap));
  std::vector<int> lcnt(nbins, 0);
  std::vector<nnz_t> lskip(masked ? nbins : 0, 0);
  nnz_t flushes = 0;

  auto flush = [&](std::size_t bin) {
    const int count = lcnt[bin];
    const nnz_t pos = cursor[bin].fetch_add(count, std::memory_order_relaxed);
    flush_copy(out_keys + pos,
               lkeys.data() + bin * static_cast<std::size_t>(cap), count,
               cfg.streaming_stores);
    flush_copy(out_vals + pos,
               lvals.data() + bin * static_cast<std::size_t>(cap), count,
               cfg.streaming_stores);
    lcnt[bin] = 0;
    ++flushes;
    sink.flushed(bin, count);
    if (masked && lskip[bin] != 0) {
      sink.skipped(bin, lskip[bin]);
      lskip[bin] = 0;
    }
  };

#pragma omp for schedule(guided) nowait
  for (index_t i = 0; i < a.ncols; ++i) {
    // Cooperative cancellation at column granularity (`break` is illegal
    // in an omp for; skipped columns just leave their bins short, and the
    // caller raises the typed error after the join).
    if (stop_requested(cfg.cancel)) continue;
    const auto arows = a.col_rows(i);
    const auto avals = a.col_vals(i);
    const auto bcols = b.row_cols(i);
    const auto bvals = b.row_vals(i);
    if (bcols.empty()) continue;

    for (std::size_t ai = 0; ai < arows.size(); ++ai) {
      const index_t r = arows[ai];
      const value_t av = avals[ai];
      const int bin_i = fast_binid<P>(layout, r);
      const auto bin = static_cast<std::size_t>(bin_i);
      // The row bits are constant across B(i,:): build them once.
      const narrow_key_t rowkey =
          static_cast<narrow_key_t>(
              fast_local_row<P>(layout, bin_i, r, mod_shift))
          << col_bits;
      narrow_key_t* klane = lkeys.data() + bin * static_cast<std::size_t>(cap);
      value_t* vlane = lvals.data() + bin * static_cast<std::size_t>(cap);
      if (masked) {
        const auto mrow = emask.csr->row_cols(r);
        if (mrow.empty() && !emask.complement) {
          lskip[bin] += static_cast<nnz_t>(bcols.size());
          continue;
        }
        lskip[bin] += masked_scan(bcols, mrow, emask.complement,
                                  [&](std::size_t bi) {
                                    if (lcnt[bin] == cap) flush(bin);
                                    const int at = lcnt[bin]++;
                                    klane[at] =
                                        rowkey |
                                        static_cast<narrow_key_t>(bcols[bi]);
                                    vlane[at] = S::mul(av, bvals[bi]);
                                  });
        continue;
      }
      for (std::size_t bi = 0; bi < bcols.size(); ++bi) {
        if (lcnt[bin] == cap) flush(bin);
        const int at = lcnt[bin]++;
        klane[at] = rowkey | static_cast<narrow_key_t>(bcols[bi]);
        vlane[at] = S::mul(av, bvals[bi]);
      }
    }
  }

  for (std::size_t bin = 0; bin < nbins; ++bin) {
    if (lcnt[bin] != 0) flush(bin);
    if (masked && lskip[bin] != 0) {
      sink.skipped(bin, lskip[bin]);
      lskip[bin] = 0;
    }
  }
  flush_fence();
  return flushes;
}

template <BinPolicy P, typename S>
nnz_t expand_narrow_impl(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                         const SymbolicResult& sym, const PbConfig& cfg,
                         narrow_key_t* out_keys, value_t* out_vals,
                         const MaskSpec& emask, nnz_t* actual_fill) {
  const auto nbins = static_cast<std::size_t>(sym.layout.nbins);

  std::vector<std::atomic<nnz_t>> cursor(nbins);
  for (std::size_t bin = 0; bin < nbins; ++bin)
    cursor[bin].store(sym.bin_offsets[bin], std::memory_order_relaxed);

  nnz_t flushes = 0;

#pragma omp parallel reduction(+ : flushes)
  {
    NullFlushSink sink;
    flushes += expand_narrow_team<P, S>(a, b, sym, cfg, out_keys, out_vals,
                                        cursor.data(), sink, emask);
  }

  if (actual_fill != nullptr) {
    for (std::size_t bin = 0; bin < nbins; ++bin) {
      actual_fill[bin] =
          cursor[bin].load(std::memory_order_relaxed) - sym.bin_offsets[bin];
    }
  }
  if (cfg.validate &&
      !(cfg.cancel != nullptr && cfg.cancel->stop_requested_now())) {
    for (std::size_t bin = 0; bin < nbins; ++bin) {
      const nnz_t end = cursor[bin].load(std::memory_order_relaxed);
      const nnz_t mark = sym.bin_offsets[bin] + sym.bin_fill[bin];
      if (emask.active() ? end > mark : end != mark) {
        throw std::logic_error("pb_expand_narrow: bin " + std::to_string(bin) +
                               " cursor does not meet its fill mark");
      }
    }
  }
  return flushes;
}

// Key-only expand: the stream carries nothing but the 8-byte global key —
// there is no value lane anywhere, so the multiply S::mul disappears and
// the kernel needs no semiring parameter at all.  Legal only when the
// caller established the semiring is value-free (pb/tuple.hpp).  Local
// bin capacity is rounded to 8 keys so a full flush is whole 64 B lines,
// keeping the non-temporal path of flush_copy.  Team-callable; same
// contract as expand_team.
template <BinPolicy P, typename Sink>
nnz_t expand_keyonly_team(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                          const SymbolicResult& sym, const PbConfig& cfg,
                          wide_key_t* out_keys, std::atomic<nnz_t>* cursor,
                          Sink& sink, const MaskSpec& emask = {}) {
  const BinLayout& layout = sym.layout;
  const auto nbins = static_cast<std::size_t>(layout.nbins);
  const int cap = std::max<int>(
      8, cfg.local_bin_bytes / static_cast<int>(kBytesPerTupleKeyOnly) / 8 * 8);
  const bool masked = emask.active();

  AlignedBuffer<wide_key_t> lkeys(nbins * static_cast<std::size_t>(cap));
  std::vector<int> lcnt(nbins, 0);
  std::vector<nnz_t> lskip(masked ? nbins : 0, 0);
  nnz_t flushes = 0;

  auto flush = [&](std::size_t bin) {
    const int count = lcnt[bin];
    const nnz_t pos = cursor[bin].fetch_add(count, std::memory_order_relaxed);
    flush_copy(out_keys + pos,
               lkeys.data() + bin * static_cast<std::size_t>(cap), count,
               cfg.streaming_stores);
    lcnt[bin] = 0;
    ++flushes;
    sink.flushed(bin, count);
    if (masked && lskip[bin] != 0) {
      sink.skipped(bin, lskip[bin]);
      lskip[bin] = 0;
    }
  };

#pragma omp for schedule(guided) nowait
  for (index_t i = 0; i < a.ncols; ++i) {
    // Cooperative cancellation at column granularity (`break` is illegal
    // in an omp for; skipped columns just leave their bins short, and the
    // caller raises the typed error after the join).
    if (stop_requested(cfg.cancel)) continue;
    const auto arows = a.col_rows(i);
    const auto bcols = b.row_cols(i);
    if (bcols.empty()) continue;

    for (std::size_t ai = 0; ai < arows.size(); ++ai) {
      const index_t r = arows[ai];
      const auto bin = static_cast<std::size_t>(fast_binid<P>(layout, r));
      // The row half of the key is constant across B(i,:): build it once.
      const wide_key_t rowkey =
          static_cast<wide_key_t>(static_cast<std::uint32_t>(r)) << 32;
      wide_key_t* lane = lkeys.data() + bin * static_cast<std::size_t>(cap);
      if (masked) {
        const auto mrow = emask.csr->row_cols(r);
        if (mrow.empty() && !emask.complement) {
          lskip[bin] += static_cast<nnz_t>(bcols.size());
          continue;
        }
        lskip[bin] += masked_scan(bcols, mrow, emask.complement,
                                  [&](std::size_t bi) {
                                    if (lcnt[bin] == cap) flush(bin);
                                    lane[lcnt[bin]++] =
                                        rowkey |
                                        static_cast<std::uint32_t>(bcols[bi]);
                                  });
        continue;
      }
      for (std::size_t bi = 0; bi < bcols.size(); ++bi) {
        if (lcnt[bin] == cap) flush(bin);
        lane[lcnt[bin]++] =
            rowkey | static_cast<std::uint32_t>(bcols[bi]);
      }
    }
  }

  for (std::size_t bin = 0; bin < nbins; ++bin) {
    if (lcnt[bin] != 0) flush(bin);
    if (masked && lskip[bin] != 0) {
      sink.skipped(bin, lskip[bin]);
      lskip[bin] = 0;
    }
  }
  flush_fence();
  return flushes;
}

template <BinPolicy P>
nnz_t expand_keyonly_impl(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                          const SymbolicResult& sym, const PbConfig& cfg,
                          wide_key_t* out_keys, const MaskSpec& emask,
                          nnz_t* actual_fill) {
  const auto nbins = static_cast<std::size_t>(sym.layout.nbins);

  std::vector<std::atomic<nnz_t>> cursor(nbins);
  for (std::size_t bin = 0; bin < nbins; ++bin)
    cursor[bin].store(sym.bin_offsets[bin], std::memory_order_relaxed);

  nnz_t flushes = 0;

#pragma omp parallel reduction(+ : flushes)
  {
    NullFlushSink sink;
    flushes += expand_keyonly_team<P>(a, b, sym, cfg, out_keys, cursor.data(),
                                      sink, emask);
  }

  if (actual_fill != nullptr) {
    for (std::size_t bin = 0; bin < nbins; ++bin) {
      actual_fill[bin] =
          cursor[bin].load(std::memory_order_relaxed) - sym.bin_offsets[bin];
    }
  }
  if (cfg.validate &&
      !(cfg.cancel != nullptr && cfg.cancel->stop_requested_now())) {
    for (std::size_t bin = 0; bin < nbins; ++bin) {
      const nnz_t end = cursor[bin].load(std::memory_order_relaxed);
      const nnz_t mark = sym.bin_offsets[bin] + sym.bin_fill[bin];
      if (emask.active() ? end > mark : end != mark) {
        throw std::logic_error("pb_expand_keyonly: bin " +
                               std::to_string(bin) +
                               " cursor does not meet its fill mark");
      }
    }
  }
  return flushes;
}

// Narrow-f32 expand: the narrow SoA kernel with a 4-byte value lane — the
// product is computed in double (S::mul semantics unchanged) and narrowed
// on store, so the phase writes 8 bytes per tuple.  A full flush is whole
// lines on both streams (cap is a multiple of 16: one 64 B key line and
// one 64 B value line).  Team-callable; same contract as expand_team.
template <BinPolicy P, typename S, typename Sink>
nnz_t expand_narrow_f32_team(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                             const SymbolicResult& sym, const PbConfig& cfg,
                             narrow_key_t* out_keys, f32_val_t* out_vals,
                             std::atomic<nnz_t>* cursor, Sink& sink,
                             const MaskSpec& emask = {}) {
  const BinLayout& layout = sym.layout;
  const auto nbins = static_cast<std::size_t>(layout.nbins);
  const int cap = std::max<int>(
      16, cfg.local_bin_bytes /
              static_cast<int>(kBytesPerTupleNarrowF32) / 16 * 16);
  const int col_bits = sym.col_bits;
  const int mod_shift =
      layout.policy == BinPolicy::kModulo ? layout.modulo_shift() : 0;
  const bool masked = emask.active();

  AlignedBuffer<narrow_key_t> lkeys(nbins * static_cast<std::size_t>(cap));
  AlignedBuffer<f32_val_t> lvals(nbins * static_cast<std::size_t>(cap));
  std::vector<int> lcnt(nbins, 0);
  std::vector<nnz_t> lskip(masked ? nbins : 0, 0);
  nnz_t flushes = 0;

  auto flush = [&](std::size_t bin) {
    const int count = lcnt[bin];
    const nnz_t pos = cursor[bin].fetch_add(count, std::memory_order_relaxed);
    flush_copy(out_keys + pos,
               lkeys.data() + bin * static_cast<std::size_t>(cap), count,
               cfg.streaming_stores);
    flush_copy(out_vals + pos,
               lvals.data() + bin * static_cast<std::size_t>(cap), count,
               cfg.streaming_stores);
    lcnt[bin] = 0;
    ++flushes;
    sink.flushed(bin, count);
    if (masked && lskip[bin] != 0) {
      sink.skipped(bin, lskip[bin]);
      lskip[bin] = 0;
    }
  };

#pragma omp for schedule(guided) nowait
  for (index_t i = 0; i < a.ncols; ++i) {
    // Cooperative cancellation at column granularity (`break` is illegal
    // in an omp for; skipped columns just leave their bins short, and the
    // caller raises the typed error after the join).
    if (stop_requested(cfg.cancel)) continue;
    const auto arows = a.col_rows(i);
    const auto avals = a.col_vals(i);
    const auto bcols = b.row_cols(i);
    const auto bvals = b.row_vals(i);
    if (bcols.empty()) continue;

    for (std::size_t ai = 0; ai < arows.size(); ++ai) {
      const index_t r = arows[ai];
      const value_t av = avals[ai];
      const int bin_i = fast_binid<P>(layout, r);
      const auto bin = static_cast<std::size_t>(bin_i);
      const narrow_key_t rowkey =
          static_cast<narrow_key_t>(
              fast_local_row<P>(layout, bin_i, r, mod_shift))
          << col_bits;
      narrow_key_t* klane = lkeys.data() + bin * static_cast<std::size_t>(cap);
      f32_val_t* vlane = lvals.data() + bin * static_cast<std::size_t>(cap);
      if (masked) {
        const auto mrow = emask.csr->row_cols(r);
        if (mrow.empty() && !emask.complement) {
          lskip[bin] += static_cast<nnz_t>(bcols.size());
          continue;
        }
        lskip[bin] += masked_scan(
            bcols, mrow, emask.complement, [&](std::size_t bi) {
              if (lcnt[bin] == cap) flush(bin);
              const int at = lcnt[bin]++;
              klane[at] = rowkey | static_cast<narrow_key_t>(bcols[bi]);
              vlane[at] = static_cast<f32_val_t>(S::mul(av, bvals[bi]));
            });
        continue;
      }
      for (std::size_t bi = 0; bi < bcols.size(); ++bi) {
        if (lcnt[bin] == cap) flush(bin);
        const int at = lcnt[bin]++;
        klane[at] = rowkey | static_cast<narrow_key_t>(bcols[bi]);
        vlane[at] = static_cast<f32_val_t>(S::mul(av, bvals[bi]));
      }
    }
  }

  for (std::size_t bin = 0; bin < nbins; ++bin) {
    if (lcnt[bin] != 0) flush(bin);
    if (masked && lskip[bin] != 0) {
      sink.skipped(bin, lskip[bin]);
      lskip[bin] = 0;
    }
  }
  flush_fence();
  return flushes;
}

template <BinPolicy P, typename S>
nnz_t expand_narrow_f32_impl(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                             const SymbolicResult& sym, const PbConfig& cfg,
                             narrow_key_t* out_keys, f32_val_t* out_vals,
                             const MaskSpec& emask, nnz_t* actual_fill) {
  const auto nbins = static_cast<std::size_t>(sym.layout.nbins);

  std::vector<std::atomic<nnz_t>> cursor(nbins);
  for (std::size_t bin = 0; bin < nbins; ++bin)
    cursor[bin].store(sym.bin_offsets[bin], std::memory_order_relaxed);

  nnz_t flushes = 0;

#pragma omp parallel reduction(+ : flushes)
  {
    NullFlushSink sink;
    flushes += expand_narrow_f32_team<P, S>(a, b, sym, cfg, out_keys,
                                            out_vals, cursor.data(), sink,
                                            emask);
  }

  if (actual_fill != nullptr) {
    for (std::size_t bin = 0; bin < nbins; ++bin) {
      actual_fill[bin] =
          cursor[bin].load(std::memory_order_relaxed) - sym.bin_offsets[bin];
    }
  }
  if (cfg.validate &&
      !(cfg.cancel != nullptr && cfg.cancel->stop_requested_now())) {
    for (std::size_t bin = 0; bin < nbins; ++bin) {
      const nnz_t end = cursor[bin].load(std::memory_order_relaxed);
      const nnz_t mark = sym.bin_offsets[bin] + sym.bin_fill[bin];
      if (emask.active() ? end > mark : end != mark) {
        throw std::logic_error("pb_expand_narrow_f32: bin " +
                               std::to_string(bin) +
                               " cursor does not meet its fill mark");
      }
    }
  }
  return flushes;
}

}  // namespace detail

template <typename S>
nnz_t pb_expand_narrow_f32(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                           const SymbolicResult& sym, const PbConfig& cfg,
                           narrow_key_t* out_keys, f32_val_t* out_vals,
                           const MaskSpec& emask, nnz_t* actual_fill) {
  switch (sym.layout.policy) {
    case BinPolicy::kRange:
      return detail::expand_narrow_f32_impl<BinPolicy::kRange, S>(
          a, b, sym, cfg, out_keys, out_vals, emask, actual_fill);
    case BinPolicy::kModulo:
      return detail::expand_narrow_f32_impl<BinPolicy::kModulo, S>(
          a, b, sym, cfg, out_keys, out_vals, emask, actual_fill);
    case BinPolicy::kAdaptive:
      return detail::expand_narrow_f32_impl<BinPolicy::kAdaptive, S>(
          a, b, sym, cfg, out_keys, out_vals, emask, actual_fill);
  }
  return 0;
}

template <typename S>
nnz_t pb_expand(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                const SymbolicResult& sym, const PbConfig& cfg, Tuple* out,
                const MaskSpec& emask, nnz_t* actual_fill) {
  switch (sym.layout.policy) {
    case BinPolicy::kRange:
      return detail::expand_impl<BinPolicy::kRange, S>(a, b, sym, cfg, out,
                                                       emask, actual_fill);
    case BinPolicy::kModulo:
      return detail::expand_impl<BinPolicy::kModulo, S>(a, b, sym, cfg, out,
                                                        emask, actual_fill);
    case BinPolicy::kAdaptive:
      return detail::expand_impl<BinPolicy::kAdaptive, S>(a, b, sym, cfg, out,
                                                          emask, actual_fill);
  }
  return 0;
}

template <typename S>
nnz_t pb_expand_narrow(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                       const SymbolicResult& sym, const PbConfig& cfg,
                       narrow_key_t* out_keys, value_t* out_vals,
                       const MaskSpec& emask, nnz_t* actual_fill) {
  switch (sym.layout.policy) {
    case BinPolicy::kRange:
      return detail::expand_narrow_impl<BinPolicy::kRange, S>(
          a, b, sym, cfg, out_keys, out_vals, emask, actual_fill);
    case BinPolicy::kModulo:
      return detail::expand_narrow_impl<BinPolicy::kModulo, S>(
          a, b, sym, cfg, out_keys, out_vals, emask, actual_fill);
    case BinPolicy::kAdaptive:
      return detail::expand_narrow_impl<BinPolicy::kAdaptive, S>(
          a, b, sym, cfg, out_keys, out_vals, emask, actual_fill);
  }
  return 0;
}

}  // namespace pbs::pb
