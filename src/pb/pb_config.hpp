// PB-SpGEMM configuration and telemetry.
//
// The two tunables the paper studies in Fig. 6 — the number of global bins
// and the width of the thread-private local bins — plus the binning policy
// (the paper's Algorithm 2 writes `rowid % nbins`, its Fig. 4 depicts row
// *ranges*, and Sec. V-C mentions variable-length bins for skewed inputs;
// all three are implemented and compared in bench/ablation_binning).
//
// Telemetry records per-phase wall time alongside the *modeled* bytes of
// Table III, so "sustained bandwidth" is computed with the same accounting
// the paper uses for Figs. 6, 7b and 9b.
#pragma once

#include <cstddef>

#include "common/post_op.hpp"
#include "common/types.hpp"
#include "matrix/csr.hpp"
#include "pb/tuple.hpp"

namespace pbs {
class CancelToken;
}

namespace pbs::pb {

enum class BinPolicy {
  kRange,    ///< bin b owns rows [b·W, (b+1)·W), W a power of two (Fig. 4)
  kModulo,   ///< binid = rowid % nbins (Algorithm 2, line 9 literal)
  kAdaptive, ///< variable row ranges balanced by per-bin flop (Sec. V-C)
};

const char* to_string(BinPolicy p);

/// How pb_execute schedules the numeric phases.
enum class PbSchedule {
  kAuto,      ///< pipeline with >1 thread, barrier on one (no sync to hide)
  kBarrier,   ///< three barrier-separated phase loops (paper Algorithm 2)
  kPipeline,  ///< per-bin task dataflow: a bin sorts/compresses the moment
              ///< its last expand flush lands, on any free worker
};

const char* to_string(PbSchedule s);

/// The schedule kAuto resolves to for a team of `nthreads`: pipelining
/// exists to overlap phases across workers and hide the fork-join tail, so
/// a single thread keeps the barrier loops (identical work, none of the
/// readiness bookkeeping).
constexpr PbSchedule resolve_schedule(PbSchedule requested, int nthreads) {
  if (requested != PbSchedule::kAuto) return requested;
  return nthreads > 1 ? PbSchedule::kPipeline : PbSchedule::kBarrier;
}

/// How the symbolic phase picks the tuple stream format (pb/tuple.hpp).
/// Every request except kWide is a preference: when the requested format
/// is not legal for the plan (narrow/f32 bin-geometry fit, key-only
/// value-freeness) the symbolic phase falls back rather than fail.  The
/// CLI layers a strict legality check on top for explicit user requests.
enum class FormatPolicy {
  kAuto,     ///< key-only for value-free semirings, else narrow when it fits
  kWide,     ///< force the 16 B AoS format (ablation / bitwise comparison)
  kNarrow,   ///< request narrow; falls back to wide when it cannot fit
  kKeyOnly,  ///< request 8 B key-only; needs a value-free semiring
  kF32,      ///< request 8 B narrow-f32; falls back to wide when keys
             ///< cannot fit (value precision is the caller's assertion)
};

const char* to_string(FormatPolicy p);

/// Whether the expand phase applies the fused output mask while scattering
/// tuples (skipping generation of masked-out tuples entirely) or leaves the
/// mask to the post-compress filter.
enum class ExpandMaskMode {
  kAuto,  ///< engage when the mask's kept-side density is sparse enough
  kOff,   ///< always filter at compress (the PR 4 behavior)
  kOn,    ///< always mask at expand (tests/benches force the path)
};

const char* to_string(ExpandMaskMode m);

struct PbConfig {
  /// Number of global bins; 0 selects the paper's rule
  /// nbins ≈ flop·16B / (L2/2), clamped to [1, 2^16] (Algorithm 3, line 6).
  int nbins = 0;

  /// Local (thread-private) bin width in bytes; the paper's default is 512
  /// (Algorithm 2, line 3).  Must hold at least one 16-byte tuple.
  int local_bin_bytes = 512;

  BinPolicy policy = BinPolicy::kRange;

  /// Tuple stream format selection (default: narrow when it fits, and
  /// key-only when the semiring is value-free).
  FormatPolicy format = FormatPolicy::kAuto;

  /// Caller's assertion that the semiring is value-free (idempotent-
  /// structural): the output pattern alone determines every value, so the
  /// 8 B key-only stream is legal.  The symbolic phase has no semiring
  /// knowledge, so this is set by the layers that do — pb_spgemm<S> from
  /// the semiring type, the executor from the op's semiring name — and
  /// only read by format selection.  bool_or_and qualifies; a runtime-
  /// registered semiring qualifies when flagged value_free at
  /// registration.
  bool value_free = false;

  /// L2 size used by the auto-nbins rule; 0 = detect at runtime.
  std::size_t l2_bytes = 0;

  /// Phase scheduling of pb_execute (resolve_schedule resolves kAuto at
  /// execute time from the thread count, so one plan serves both).
  PbSchedule schedule = PbSchedule::kAuto;

  /// Use non-temporal (streaming) stores for local-bin flushes — full
  /// cache-line writes with no read-for-ownership, the mechanism behind
  /// the paper's "always write tuples in multiples of cache lines".
  /// Disable only for the ablation bench.
  bool streaming_stores = true;

  /// Expand-phase masking (per run: the decision reads the mask passed to
  /// pb_execute, never plan state — mask patterns may change between
  /// executions of one plan).  Under kAuto the phase engages when the
  /// kept-side density (nnz(mask)/cells, complement-flipped) is at most
  /// expand_mask_max_density: sparse masks turn the post-compress traffic
  /// win into a flop win (tuples for masked-out outputs are never
  /// generated), while dense masks keep the cheap compress-stage drop —
  /// the merge-scan against the mask row would cost more than it saves.
  ExpandMaskMode expand_mask = ExpandMaskMode::kAuto;
  double expand_mask_max_density = 0.05;

  /// Extra O(flop) invariant checks after each phase (tests only).
  bool validate = false;

  /// Cooperative cancellation/deadline token for THIS run, polled at
  /// column granularity in expand and bin granularity in sort/compress
  /// and convert.  Per-run state: plans never store a live token
  /// (pb_plan_build clears it), and the plan/execute entry points take
  /// the token as an explicit parameter and thread it through a run-local
  /// config copy.  nullptr = never cancelled.
  const CancelToken* cancel = nullptr;
};

/// Output-mask request threaded through the pipeline (an SpGemmOp mask
/// lowered to PB terms): tuples whose (row, col) lies outside (or, with
/// complement, inside) the pattern of `csr` are dropped at the compress
/// stage, before CSR conversion.  Values of `csr` are ignored.
struct MaskSpec {
  const mtx::CsrMatrix* csr = nullptr;  ///< nullptr = unmasked
  bool complement = false;

  [[nodiscard]] bool active() const { return csr != nullptr; }
};

/// Per-run output epilogue fused into pb_execute (descriptor semantics the
/// post-pass used to own):
///  * accumulate — C_old ⊞= A ⊗ B: C_old's rows are union-merged with the
///    product during CSR conversion (per-bin, rows cache-hot), replacing
///    the post-pass semiring_ewise_add and its full extra stream of C.
///    Must match the product's shape; pattern-only equality with the
///    post-pass (S::add(c_old, product) where both present).
///  * post_op — elementwise scale/prune/top-k applied in the per-bin
///    filter stage right after the fused mask (common/post_op.hpp).
/// The two are mutually exclusive (the descriptor layer rejects the
/// combination), and post_op requires a valued stream format.
struct PbEpilogue {
  const mtx::CsrMatrix* accumulate = nullptr;
  PostOp post_op;

  [[nodiscard]] bool active() const {
    return accumulate != nullptr || post_op.active();
  }
};

struct PhaseStats {
  double seconds = 0;
  double bytes = 0;  ///< modeled traffic per Table III

  /// Sustained bandwidth in GB/s under the Table III byte model.
  [[nodiscard]] double gbs() const {
    return seconds > 0 ? bytes / seconds / 1e9 : 0.0;
  }
};

struct PbTelemetry {
  PhaseStats symbolic;
  PhaseStats expand;
  PhaseStats sort;
  PhaseStats compress;
  PhaseStats convert;

  nnz_t flop = 0;
  nnz_t nnz_c = 0;
  /// Tuples the fused output mask dropped at the compress stage (0 when
  /// the run was unmasked).  nnz_c counts survivors only, so
  /// nnz_c + mask_dropped is the unmasked product's nonzero count.
  nnz_t mask_dropped = 0;
  /// Tuples the expand phase never generated because the fused mask was
  /// applied in the scatter loop (ExpandMaskMode): a flop reduction, not
  /// just a traffic one.  When expand masking engages the compress-stage
  /// filter has nothing left to drop, so mask_dropped stays 0 and
  /// flop == generated tuples + mask_skipped_expand.
  nnz_t mask_skipped_expand = 0;
  /// True when this run's expand phase applied the mask in its scatter
  /// loop (mask_skipped_expand is meaningful, even if it skipped nothing).
  bool expand_masked = false;
  /// Entries the fused elementwise post-op removed in the per-bin filter
  /// stage (prune/top-k; a pure scale drops nothing).
  nnz_t post_dropped = 0;
  int nbins = 0;
  index_t rows_per_bin = 0;  ///< 0 for adaptive layouts

  /// Stream format this run used and its per-tuple byte cost (the `b` the
  /// phase byte models above were computed with).
  TupleFormat format = TupleFormat::kWide;

  /// Schedule this run actually executed under (resolved; never kAuto).
  PbSchedule schedule = PbSchedule::kBarrier;

  /// Pipelined runs only: wall time of the overlapped numeric phases
  /// (expand through convert).  The per-phase seconds above are busy
  /// times that overlap each other, so their sum exceeds the wall when
  /// the pipeline achieves overlap; barrier runs leave this 0 (their
  /// phases are sequential and sum to the wall).
  double wall_seconds = 0;

  /// Pipelined runs: total time completed bins spent *waiting* — between
  /// the expand flush that made a bin sortable and a worker picking its
  /// task up.
  double bin_wait_seconds = 0;

  /// Pipelined runs: total time workers spent *running* bin tasks
  /// (sort + compress + mask filter + row count), summed over bins.
  double bin_run_seconds = 0;

  /// Pipelined runs: bin tasks executed by a thread other than the one
  /// whose flush completed the bin (work stealing in action).
  int bins_stolen = 0;

  [[nodiscard]] double tuple_bytes() const {
    return static_cast<double>(bytes_per_tuple(format));
  }

  [[nodiscard]] double cf() const {
    return nnz_c > 0 ? static_cast<double>(flop) / static_cast<double>(nnz_c) : 0.0;
  }

  [[nodiscard]] double total_seconds() const {
    if (wall_seconds > 0) return symbolic.seconds + wall_seconds;
    return symbolic.seconds + expand.seconds + sort.seconds +
           compress.seconds + convert.seconds;
  }

  /// Pipelined runs: busy time the overlap hid — Σ phase busy − wall
  /// (0 when nothing overlapped or the run was barrier-scheduled).
  [[nodiscard]] double overlap_seconds() const {
    if (wall_seconds <= 0) return 0.0;
    const double busy = expand.seconds + sort.seconds + compress.seconds +
                        convert.seconds;
    return busy > wall_seconds ? busy - wall_seconds : 0.0;
  }

  /// Millions of multiplications per second over the whole run — the
  /// paper's performance metric.
  [[nodiscard]] double mflops() const {
    const double t = total_seconds();
    return t > 0 ? static_cast<double>(flop) / t / 1e6 : 0.0;
  }
};

struct PbResult {
  mtx::CsrMatrix c;
  PbTelemetry stats;
};

}  // namespace pbs::pb
