#include "pb/binning.hpp"

#include <algorithm>
#include <cassert>

#include "pb/tuple.hpp"

namespace pbs::pb {

const char* to_string(BinPolicy p) {
  switch (p) {
    case BinPolicy::kRange: return "range";
    case BinPolicy::kModulo: return "modulo";
    case BinPolicy::kAdaptive: return "adaptive";
  }
  return "?";
}

int BinLayout::binid(index_t row) const {
  switch (policy) {
    case BinPolicy::kRange:
      return static_cast<int>(row >> shift);
    case BinPolicy::kModulo:
      return static_cast<int>(static_cast<std::uint32_t>(row) & mask);
    case BinPolicy::kAdaptive: {
      // First bound greater than row, minus one bin.
      const auto it = std::upper_bound(bounds.begin(), bounds.end(), row);
      return static_cast<int>(it - bounds.begin()) - 1;
    }
  }
  return 0;
}

const char* to_string(PbSchedule s) {
  switch (s) {
    case PbSchedule::kAuto: return "auto";
    case PbSchedule::kBarrier: return "barrier";
    case PbSchedule::kPipeline: return "pipeline";
  }
  return "?";
}

const char* to_string(FormatPolicy p) {
  switch (p) {
    case FormatPolicy::kAuto: return "auto";
    case FormatPolicy::kWide: return "wide";
    case FormatPolicy::kNarrow: return "narrow";
    case FormatPolicy::kKeyOnly: return "keyonly";
    case FormatPolicy::kF32: return "f32";
  }
  return "?";
}

const char* to_string(ExpandMaskMode m) {
  switch (m) {
    case ExpandMaskMode::kAuto: return "auto";
    case ExpandMaskMode::kOff: return "off";
    case ExpandMaskMode::kOn: return "on";
  }
  return "?";
}

const char* to_string(TupleFormat f) {
  switch (f) {
    case TupleFormat::kWide: return "wide";
    case TupleFormat::kNarrow: return "narrow";
    case TupleFormat::kKeyOnly: return "keyonly";
    case TupleFormat::kNarrowF32: return "f32";
  }
  return "?";
}

int BinLayout::local_row_bits(index_t nrows) const {
  if (nrows <= 0) return 0;
  index_t max_local = 0;
  switch (policy) {
    case BinPolicy::kRange:
      // Bins except possibly the last are full; the widest local row is
      // bounded by the bin width.  Unsigned arithmetic: shift can be 31.
      max_local = static_cast<index_t>((std::uint32_t{1} << shift) - 1u);
      break;
    case BinPolicy::kModulo:
      max_local = (nrows - 1) >> modulo_shift();
      break;
    case BinPolicy::kAdaptive:
      for (std::size_t b = 0; b + 1 < bounds.size(); ++b) {
        max_local = std::max<index_t>(max_local,
                                      bounds[b + 1] - bounds[b] - 1);
      }
      break;
  }
  return ceil_log2(static_cast<std::uint64_t>(max_local) + 1);
}

int auto_nbins(nnz_t flop, std::size_t l2_bytes) {
  if (flop <= 0) return 1;
  const auto bin_budget = static_cast<nnz_t>(l2_bytes / 2);
  const nnz_t bytes = flop * static_cast<nnz_t>(sizeof(Tuple));
  const nnz_t want = (bytes + bin_budget - 1) / std::max<nnz_t>(bin_budget, 1);
  const auto pow2 = static_cast<nnz_t>(next_pow2(static_cast<std::uint64_t>(
      std::clamp<nnz_t>(want, 1, nnz_t{1} << 16))));
  return static_cast<int>(pow2);
}

BinLayout make_range_layout(index_t nrows, int nbins_target) {
  assert(nbins_target >= 1);
  BinLayout layout;
  layout.policy = BinPolicy::kRange;
  // Power-of-two rows per bin, so binid is a shift and local row bits are
  // exactly the low `shift` bits of the rowid.
  const auto rows = std::max<index_t>(nrows, 1);
  const auto per_bin = static_cast<index_t>(next_pow2(static_cast<std::uint64_t>(
      (rows + nbins_target - 1) / nbins_target)));
  layout.shift = ceil_log2(static_cast<std::uint64_t>(per_bin));
  // next_pow2 result is exact, so ceil_log2 is its log2.
  layout.nbins = static_cast<int>((rows + per_bin - 1) / per_bin);
  return layout;
}

BinLayout make_modulo_layout(index_t nrows, int nbins_target) {
  assert(nbins_target >= 1);
  BinLayout layout;
  layout.policy = BinPolicy::kModulo;
  const auto nbins = static_cast<int>(next_pow2(static_cast<std::uint64_t>(
      std::min<index_t>(std::max<index_t>(nrows, 1),
                        static_cast<index_t>(nbins_target)))));
  layout.nbins = nbins;
  layout.mask = static_cast<std::uint32_t>(nbins - 1);
  return layout;
}

BinLayout make_adaptive_layout(std::span<const nnz_t> row_flops,
                               int nbins_target) {
  assert(nbins_target >= 1);
  BinLayout layout;
  layout.policy = BinPolicy::kAdaptive;

  nnz_t total = 0;
  for (const nnz_t f : row_flops) total += f;
  const nnz_t cap = std::max<nnz_t>(1, total / nbins_target);

  layout.bounds.push_back(0);
  nnz_t acc = 0;
  for (std::size_t r = 0; r < row_flops.size(); ++r) {
    if (acc + row_flops[r] > cap && acc > 0) {
      layout.bounds.push_back(static_cast<index_t>(r));
      acc = 0;
    }
    acc += row_flops[r];
  }
  layout.bounds.push_back(static_cast<index_t>(row_flops.size()));
  layout.nbins = static_cast<int>(layout.bounds.size()) - 1;
  return layout;
}

}  // namespace pbs::pb
