// PB-SpGEMM output conversion (paper Algorithm 2, line 22: ConvertCSR).
//
// After compression each bin holds its surviving tuples sorted by
// (row, col), and no row spans two bins.  Conversion is therefore
// race-free per bin: count rows, prefix-sum into rowptr, then stream each
// bin's tuples into its rows' final positions.
//
// This phase copies values without interpreting them, so unlike expand and
// sort/compress it needs no semiring template: one conversion serves every
// pb_spgemm<S> instantiation.
#pragma once

#include <span>

#include "matrix/csr.hpp"
#include "pb/binning.hpp"
#include "pb/pb_config.hpp"
#include "pb/tuple.hpp"

namespace pbs::pb {

/// Builds the canonical CSR result from compressed bins.
/// `offsets[b]` is bin b's region origin in `tuples`; `merged[b]` the
/// number of surviving tuples at that origin.
mtx::CsrMatrix pb_build_csr(const Tuple* tuples,
                            std::span<const nnz_t> offsets,
                            std::span<const nnz_t> merged, index_t nrows,
                            index_t ncols);

/// Narrow-format conversion: reconstructs the global (row, col) of each
/// surviving tuple from the bin geometry while streaming — the row-count
/// pass reads only the 4 B key array, and values are copied straight from
/// the SoA value array.  `layout`/`col_bits` must be the ones the stream
/// was expanded with (SymbolicResult::layout / col_bits).
mtx::CsrMatrix pb_build_csr_narrow(const narrow_key_t* keys,
                                   const value_t* vals,
                                   std::span<const nnz_t> offsets,
                                   std::span<const nnz_t> merged,
                                   const BinLayout& layout, int col_bits,
                                   index_t nrows, index_t ncols);

}  // namespace pbs::pb
