// PB-SpGEMM output conversion (paper Algorithm 2, line 22: ConvertCSR).
//
// After compression each bin holds its surviving tuples sorted by
// (row, col), and no row spans two bins.  Conversion is therefore
// race-free per bin: count rows, prefix-sum into rowptr, then stream each
// bin's tuples into its rows' final positions.
//
// This phase copies values without interpreting them, so unlike expand and
// sort/compress it needs no semiring template: one conversion serves every
// pb_spgemm<S> instantiation.
#pragma once

#include <span>
#include <vector>

#include "common/cancel.hpp"
#include "matrix/csr.hpp"
#include "pb/binning.hpp"
#include "pb/pb_config.hpp"
#include "pb/tuple.hpp"

namespace pbs::pb {

// The batch builders below accept an optional CancelToken, polled at bin
// granularity: cancelled bins are skipped (their partial output is about
// to be discarded) and the token's typed error is raised once the
// parallel sweeps join — throwing from inside an `omp for` is illegal.

/// A CSR matrix with single-precision values — the native output of a
/// narrow-f32 plan when the caller asks for it (the default conversion
/// widens back to the canonical f64 CsrMatrix).  Pattern arrays match
/// mtx::CsrMatrix exactly; only the value width differs.
struct CsrF32 {
  index_t nrows = 0;
  index_t ncols = 0;
  std::vector<nnz_t> rowptr;
  std::vector<index_t> colids;
  std::vector<f32_val_t> vals;

  [[nodiscard]] nnz_t nnz() const {
    return rowptr.empty() ? 0 : rowptr.back();
  }
};

/// Builds the canonical CSR result from compressed bins.
/// `offsets[b]` is bin b's region origin in `tuples`; `merged[b]` the
/// number of surviving tuples at that origin.
mtx::CsrMatrix pb_build_csr(const Tuple* tuples,
                            std::span<const nnz_t> offsets,
                            std::span<const nnz_t> merged, index_t nrows,
                            index_t ncols,
                            const CancelToken* cancel = nullptr);

// --- Per-bin streaming primitives --------------------------------------
//
// The batch builders above are two barrier-separated sweeps over all bins.
// The pipelined schedule instead folds the COUNT pass into each bin's
// sort/compress task (the tuples are still cache-hot) and runs only the
// SCATTER as a second sweep, so both builders are also exposed one bin at
// a time.  The race-freedom argument is unchanged: no row spans two bins,
// so concurrent calls on distinct bins may share `rowptr` (counting into
// slot row+1) and the output arrays without atomics.

/// Counts bin `b`'s surviving rows into rowptr[row + 1] (+= per tuple).
void pb_count_bin(const Tuple* bin_tuples, nnz_t merged, nnz_t* rowptr);

/// Streams bin `b`'s sorted tuples into their final CSR positions.
/// `rowptr` must already hold absolute row starts (counts_to_rowptr done).
void pb_scatter_bin(const Tuple* bin_tuples, nnz_t merged,
                    const nnz_t* rowptr, index_t* colids, value_t* vals);

/// Narrow-format per-bin count: reads only the 4 B key array.
void pb_count_bin_narrow(const narrow_key_t* bin_keys, nnz_t merged, int bin,
                         const BinLayout& layout, int col_bits,
                         nnz_t* rowptr);

/// Narrow-format per-bin scatter.
void pb_scatter_bin_narrow(const narrow_key_t* bin_keys,
                           const value_t* bin_vals, nnz_t merged, int bin,
                           const BinLayout& layout, int col_bits,
                           const nnz_t* rowptr, index_t* colids,
                           value_t* vals);

/// Narrow-format conversion: reconstructs the global (row, col) of each
/// surviving tuple from the bin geometry while streaming — the row-count
/// pass reads only the 4 B key array, and values are copied straight from
/// the SoA value array.  `layout`/`col_bits` must be the ones the stream
/// was expanded with (SymbolicResult::layout / col_bits).
mtx::CsrMatrix pb_build_csr_narrow(const narrow_key_t* keys,
                                   const value_t* vals,
                                   std::span<const nnz_t> offsets,
                                   std::span<const nnz_t> merged,
                                   const BinLayout& layout, int col_bits,
                                   index_t nrows, index_t ncols,
                                   const CancelToken* cancel = nullptr);

/// Key-only per-bin count: the stream is bare wide keys, read 8 B each.
void pb_count_bin_keyonly(const wide_key_t* bin_keys, nnz_t merged,
                          nnz_t* rowptr);

/// Key-only per-bin scatter: every surviving entry's value is synthesized
/// as `present` (a value-free semiring's present-value, 1.0 — "true" for
/// bool_or_and), since the stream carries no values to copy.
void pb_scatter_bin_keyonly(const wide_key_t* bin_keys, nnz_t merged,
                            const nnz_t* rowptr, index_t* colids,
                            value_t* vals, value_t present);

/// Key-only conversion: pattern from the keys, values synthesized as
/// `present` (see pb_scatter_bin_keyonly).  The bit-identity contract with
/// a wide run of the same value-free semiring holds because the wide run's
/// surviving values are all exactly `present` too (S::add/S::mul of
/// nonzeros is 1.0 for bool_or_and).
mtx::CsrMatrix pb_build_csr_keyonly(const wide_key_t* keys,
                                    std::span<const nnz_t> offsets,
                                    std::span<const nnz_t> merged,
                                    index_t nrows, index_t ncols,
                                    value_t present = 1.0,
                                    const CancelToken* cancel = nullptr);

/// Narrow-f32 per-bin scatter: values widen f32 → f64 on the way out.
/// (The count pass is pb_count_bin_narrow — it reads only the key array,
/// which is identical across the two narrow formats.)
void pb_scatter_bin_narrow_f32(const narrow_key_t* bin_keys,
                               const f32_val_t* bin_vals, nnz_t merged,
                               int bin, const BinLayout& layout, int col_bits,
                               const nnz_t* rowptr, index_t* colids,
                               value_t* vals);

/// Narrow-f32 conversion to the canonical f64 CSR (values widened).
mtx::CsrMatrix pb_build_csr_narrow_f32(const narrow_key_t* keys,
                                       const f32_val_t* vals,
                                       std::span<const nnz_t> offsets,
                                       std::span<const nnz_t> merged,
                                       const BinLayout& layout, int col_bits,
                                       index_t nrows, index_t ncols,
                                       const CancelToken* cancel = nullptr);

/// Narrow-f32 conversion to a *native* f32 CSR — no widening pass, for
/// callers whose whole workload is single precision.
CsrF32 pb_build_csr_narrow_f32_native(const narrow_key_t* keys,
                                      const f32_val_t* vals,
                                      std::span<const nnz_t> offsets,
                                      std::span<const nnz_t> merged,
                                      const BinLayout& layout, int col_bits,
                                      index_t nrows, index_t ncols);

}  // namespace pbs::pb
