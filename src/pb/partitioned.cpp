#include "pb/partitioned.hpp"

#include <algorithm>
#include <stdexcept>

namespace pbs::pb {

namespace {

// Extracts rows [row_lo, row_hi) of A (CSC) as a CSC matrix with row ids
// rebased to 0.  One filtering pass per column — this is the "read A once
// per partition" cost the paper attributes to the variant (B is reread by
// the multiplications themselves).
mtx::CscMatrix slice_rows(const mtx::CscMatrix& a, index_t row_lo,
                          index_t row_hi) {
  mtx::CscMatrix out(row_hi - row_lo, a.ncols);
  // Count per column first for exact allocation.
  for (index_t c = 0; c < a.ncols; ++c) {
    nnz_t count = 0;
    for (const index_t r : a.col_rows(c)) {
      if (r >= row_lo && r < row_hi) ++count;
    }
    out.colptr[static_cast<std::size_t>(c) + 1] =
        out.colptr[c] + count;
  }
  out.rowids.resize(static_cast<std::size_t>(out.colptr.back()));
  out.vals.resize(static_cast<std::size_t>(out.colptr.back()));
  for (index_t c = 0; c < a.ncols; ++c) {
    nnz_t pos = out.colptr[c];
    const auto rows = a.col_rows(c);
    const auto vals = a.col_vals(c);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] >= row_lo && rows[i] < row_hi) {
        out.rowids[static_cast<std::size_t>(pos)] = rows[i] - row_lo;
        out.vals[static_cast<std::size_t>(pos)] = vals[i];
        ++pos;
      }
    }
  }
  return out;
}

}  // namespace

PartitionedResult pb_spgemm_partitioned(const mtx::CscMatrix& a,
                                        const mtx::CsrMatrix& b, int nparts,
                                        const PbConfig& cfg) {
  if (nparts < 1) {
    throw std::invalid_argument("pb_spgemm_partitioned: nparts must be >= 1");
  }
  if (a.ncols != b.nrows) {
    throw std::invalid_argument("pb_spgemm_partitioned: dimensions differ");
  }
  nparts = std::min<int>(nparts, std::max<index_t>(a.nrows, 1));

  PartitionedResult out;
  out.parts.reserve(static_cast<std::size_t>(nparts));

  std::vector<mtx::CsrMatrix> pieces;
  pieces.reserve(static_cast<std::size_t>(nparts));
  PbWorkspace workspace;  // shared: parts run one after another

  const index_t rows_per_part = (a.nrows + nparts - 1) / nparts;
  for (int part = 0; part < nparts; ++part) {
    const index_t lo = std::min<index_t>(a.nrows, part * rows_per_part);
    const index_t hi = std::min<index_t>(a.nrows, lo + rows_per_part);
    const mtx::CscMatrix a_part = slice_rows(a, lo, hi);
    PbResult r = pb_spgemm(a_part, b, cfg, workspace);
    out.parts.push_back(r.stats);
    pieces.push_back(std::move(r.c));
  }

  // Stack: parts own disjoint, ascending row ranges.
  mtx::CsrMatrix& c = out.c;
  c.nrows = a.nrows;
  c.ncols = b.ncols;
  c.rowptr.assign(static_cast<std::size_t>(a.nrows) + 1, 0);
  nnz_t total = 0;
  for (const mtx::CsrMatrix& piece : pieces) total += piece.nnz();
  c.colids.reserve(static_cast<std::size_t>(total));
  c.vals.reserve(static_cast<std::size_t>(total));

  index_t row_base = 0;
  nnz_t nnz_base = 0;
  for (const mtx::CsrMatrix& piece : pieces) {
    for (index_t r = 0; r < piece.nrows; ++r) {
      c.rowptr[static_cast<std::size_t>(row_base + r) + 1] =
          nnz_base + piece.rowptr[static_cast<std::size_t>(r) + 1];
    }
    c.colids.insert(c.colids.end(), piece.colids.begin(), piece.colids.end());
    c.vals.insert(c.vals.end(), piece.vals.begin(), piece.vals.end());
    row_base += piece.nrows;
    nnz_base += piece.nnz();
  }
  // Rows past the last part (possible when nparts > nrows) keep the running
  // total so rowptr stays monotone.
  for (std::size_t r = static_cast<std::size_t>(row_base) + 1;
       r < c.rowptr.size(); ++r) {
    c.rowptr[r] = nnz_base;
  }
  return out;
}

}  // namespace pbs::pb
