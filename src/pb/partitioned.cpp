#include "pb/partitioned.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/timer.hpp"

namespace pbs::pb {

namespace {

// Extracts rows [row_lo, row_hi) of A (CSC) as a CSC matrix with row ids
// rebased to 0.  One filtering pass per column — this is the "read A once
// per partition" cost the paper attributes to the variant (B is reread by
// the multiplications themselves).
mtx::CscMatrix slice_rows(const mtx::CscMatrix& a, index_t row_lo,
                          index_t row_hi) {
  mtx::CscMatrix out(row_hi - row_lo, a.ncols);
  // Count per column first for exact allocation.
  for (index_t c = 0; c < a.ncols; ++c) {
    nnz_t count = 0;
    for (const index_t r : a.col_rows(c)) {
      if (r >= row_lo && r < row_hi) ++count;
    }
    out.colptr[static_cast<std::size_t>(c) + 1] =
        out.colptr[c] + count;
  }
  out.rowids.resize(static_cast<std::size_t>(out.colptr.back()));
  out.vals.resize(static_cast<std::size_t>(out.colptr.back()));
  for (index_t c = 0; c < a.ncols; ++c) {
    nnz_t pos = out.colptr[c];
    const auto rows = a.col_rows(c);
    const auto vals = a.col_vals(c);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] >= row_lo && rows[i] < row_hi) {
        out.rowids[static_cast<std::size_t>(pos)] = rows[i] - row_lo;
        out.vals[static_cast<std::size_t>(pos)] = vals[i];
        ++pos;
      }
    }
  }
  return out;
}

// Validates and clamps nparts to the row count.
int checked_nparts(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   int nparts) {
  if (nparts < 1) {
    throw std::invalid_argument("pb_spgemm_partitioned: nparts must be >= 1");
  }
  if (a.ncols != b.nrows) {
    throw std::invalid_argument("pb_spgemm_partitioned: dimensions differ");
  }
  return std::min<int>(nparts, std::max<index_t>(a.nrows, 1));
}

// Stacks per-part CSR results owning disjoint, ascending row ranges.
mtx::CsrMatrix stack_pieces(const std::vector<mtx::CsrMatrix>& pieces,
                            index_t nrows, index_t ncols) {
  mtx::CsrMatrix c;
  c.nrows = nrows;
  c.ncols = ncols;
  c.rowptr.assign(static_cast<std::size_t>(nrows) + 1, 0);
  nnz_t total = 0;
  for (const mtx::CsrMatrix& piece : pieces) total += piece.nnz();
  c.colids.reserve(static_cast<std::size_t>(total));
  c.vals.reserve(static_cast<std::size_t>(total));

  index_t row_base = 0;
  nnz_t nnz_base = 0;
  for (const mtx::CsrMatrix& piece : pieces) {
    for (index_t r = 0; r < piece.nrows; ++r) {
      c.rowptr[static_cast<std::size_t>(row_base + r) + 1] =
          nnz_base + piece.rowptr[static_cast<std::size_t>(r) + 1];
    }
    c.colids.insert(c.colids.end(), piece.colids.begin(), piece.colids.end());
    c.vals.insert(c.vals.end(), piece.vals.begin(), piece.vals.end());
    row_base += piece.nrows;
    nnz_base += piece.nnz();
  }
  // Rows past the last part (possible when nparts > nrows) keep the running
  // total so rowptr stays monotone.
  for (std::size_t r = static_cast<std::size_t>(row_base) + 1;
       r < c.rowptr.size(); ++r) {
    c.rowptr[r] = nnz_base;
  }
  return c;
}

}  // namespace

PartitionedPlan make_partitioned_plan(const mtx::CscMatrix& a,
                                      const mtx::CsrMatrix& b, int nparts,
                                      const PbConfig& cfg) {
  nparts = checked_nparts(a, b, nparts);

  PartitionedPlan plan;
  plan.a_nrows_ = a.nrows;
  plan.a_parts_.reserve(static_cast<std::size_t>(nparts));
  plan.plans_.reserve(static_cast<std::size_t>(nparts));

  Timer timer;
  const index_t rows_per_part = (a.nrows + nparts - 1) / nparts;
  for (int part = 0; part < nparts; ++part) {
    const index_t lo = std::min<index_t>(a.nrows, part * rows_per_part);
    const index_t hi = std::min<index_t>(a.nrows, lo + rows_per_part);
    plan.a_parts_.push_back(slice_rows(a, lo, hi));
    plan.part_row_lo_.push_back(lo);
    plan.plans_.push_back(pb_plan_build(plan.a_parts_.back(), b, cfg));
  }
  plan.build_seconds_ = timer.elapsed_s();
  return plan;
}

void PartitionedPlan::update_a_values(const mtx::CscMatrix& a) {
  if (a.nrows != a_nrows_ ||
      (!a_parts_.empty() && a.ncols != a_parts_.front().ncols)) {
    throw std::invalid_argument(
        "PartitionedPlan::update_a_values: dimensions differ from the "
        "build-time A");
  }
  const auto structure_changed = [] {
    return std::invalid_argument(
        "PartitionedPlan::update_a_values: A's structure differs from the "
        "build-time A (slice values now unspecified; rebuild the plan)");
  };
  // ONE pass over A, routing each entry to its part: the parts own
  // contiguous ascending row ranges and a column's rows are sorted, so
  // the destination part only ever advances within a column.  The frozen
  // slices' per-column occupancy doubles as the structure check: any
  // entry that does not land exactly on the slice's recorded position
  // (or a column that ends short) proves the structure changed.
  const std::size_t nparts = a_parts_.size();
  std::vector<nnz_t> pos(nparts);
  for (index_t c = 0; c < a.ncols; ++c) {
    for (std::size_t part = 0; part < nparts; ++part) {
      pos[part] = a_parts_[part].colptr[c];
    }
    std::size_t part = 0;
    const auto rows = a.col_rows(c);
    const auto vals = a.col_vals(c);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      while (part + 1 < nparts && rows[i] >= part_row_lo_[part + 1]) {
        ++part;
      }
      mtx::CscMatrix& slice = a_parts_[part];
      const index_t local_row = rows[i] - part_row_lo_[part];
      const nnz_t at = pos[part];
      if (at == slice.colptr[static_cast<std::size_t>(c) + 1] ||
          slice.rowids[static_cast<std::size_t>(at)] != local_row) {
        throw structure_changed();
      }
      slice.vals[static_cast<std::size_t>(at)] = vals[i];
      ++pos[part];
    }
    for (std::size_t p = 0; p < nparts; ++p) {
      if (pos[p] != a_parts_[p].colptr[static_cast<std::size_t>(c) + 1]) {
        throw structure_changed();
      }
    }
  }
}

PartitionedResult PartitionedPlan::execute(const mtx::CsrMatrix& b,
                                           bool check_fingerprint) {
  PartitionedResult out;
  out.parts.reserve(plans_.size());

  std::vector<mtx::CsrMatrix> pieces;
  pieces.reserve(plans_.size());

  for (std::size_t part = 0; part < plans_.size(); ++part) {
    // b is caller-supplied on every execute, so by default keep
    // pb_execute's fingerprint check: a structurally different b fails
    // loudly here (one O(ncols) flop recount per part) instead of
    // corrupting the captured bin layouts.
    PbResult r = pb_execute<PlusTimes>(a_parts_[part], b, plans_[part],
                                       workspace_, check_fingerprint);
    out.parts.push_back(r.stats);
    pieces.push_back(std::move(r.c));
  }

  out.c = stack_pieces(pieces, a_nrows_, b.ncols);
  return out;
}

PartitionedResult pb_spgemm_partitioned(const mtx::CscMatrix& a,
                                        const mtx::CsrMatrix& b, int nparts,
                                        const PbConfig& cfg) {
  nparts = checked_nparts(a, b, nparts);

  // One-shot form: slice, analyze, execute and free one part at a time
  // through the plan-build/execute split — unlike PartitionedPlan it never
  // holds more than one row slice of A, so peak memory matches the
  // pre-plan implementation.  The in-line analysis lands in each part's
  // symbolic stats, like pb_spgemm.
  PartitionedResult out;
  out.parts.reserve(static_cast<std::size_t>(nparts));
  std::vector<mtx::CsrMatrix> pieces;
  pieces.reserve(static_cast<std::size_t>(nparts));
  PbWorkspace workspace;  // shared: parts run one after another

  const index_t rows_per_part = (a.nrows + nparts - 1) / nparts;
  for (int part = 0; part < nparts; ++part) {
    const index_t lo = std::min<index_t>(a.nrows, part * rows_per_part);
    const index_t hi = std::min<index_t>(a.nrows, lo + rows_per_part);
    const mtx::CscMatrix a_part = slice_rows(a, lo, hi);
    const PbPlan plan = pb_plan_build(a_part, b, cfg);
    PbResult r = pb_execute<PlusTimes>(a_part, b, plan, workspace,
                                       /*check_fingerprint=*/false);
    r.stats.symbolic = plan.symbolic;
    out.parts.push_back(r.stats);
    pieces.push_back(std::move(r.c));
  }

  out.c = stack_pieces(pieces, a.nrows, b.ncols);
  return out;
}

}  // namespace pbs::pb
