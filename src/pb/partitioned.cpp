#include "pb/partitioned.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/timer.hpp"

namespace pbs::pb {

mtx::CscMatrix slice_rows(const mtx::CscMatrix& a, index_t row_lo,
                          index_t row_hi) {
  mtx::CscMatrix out(row_hi - row_lo, a.ncols);
  // Count per column first for exact allocation.
  for (index_t c = 0; c < a.ncols; ++c) {
    nnz_t count = 0;
    for (const index_t r : a.col_rows(c)) {
      if (r >= row_lo && r < row_hi) ++count;
    }
    out.colptr[static_cast<std::size_t>(c) + 1] =
        out.colptr[c] + count;
  }
  out.rowids.resize(static_cast<std::size_t>(out.colptr.back()));
  out.vals.resize(static_cast<std::size_t>(out.colptr.back()));
  for (index_t c = 0; c < a.ncols; ++c) {
    nnz_t pos = out.colptr[c];
    const auto rows = a.col_rows(c);
    const auto vals = a.col_vals(c);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      if (rows[i] >= row_lo && rows[i] < row_hi) {
        out.rowids[static_cast<std::size_t>(pos)] = rows[i] - row_lo;
        out.vals[static_cast<std::size_t>(pos)] = vals[i];
        ++pos;
      }
    }
  }
  return out;
}

mtx::CsrMatrix slice_rows(const mtx::CsrMatrix& a, index_t row_lo,
                          index_t row_hi) {
  mtx::CsrMatrix out(row_hi - row_lo, a.ncols);
  const nnz_t base = a.rowptr[row_lo];
  for (index_t r = row_lo; r < row_hi; ++r) {
    out.rowptr[static_cast<std::size_t>(r - row_lo) + 1] =
        a.rowptr[static_cast<std::size_t>(r) + 1] - base;
  }
  const auto lo = static_cast<std::size_t>(base);
  const auto n = static_cast<std::size_t>(a.rowptr[row_hi] - base);
  out.colids.assign(a.colids.begin() + lo, a.colids.begin() + lo + n);
  out.vals.assign(a.vals.begin() + lo, a.vals.begin() + lo + n);
  return out;
}

mtx::CsrMatrix slice_cols(const mtx::CsrMatrix& a, index_t col_lo,
                          index_t col_hi) {
  mtx::CsrMatrix out(a.nrows, col_hi - col_lo);
  // Columns are sorted within each row, so the kept entries of row r form
  // one contiguous run found by binary search.
  std::vector<nnz_t> lo(static_cast<std::size_t>(a.nrows));
  for (index_t r = 0; r < a.nrows; ++r) {
    const auto cols = a.row_cols(r);
    const auto first =
        std::lower_bound(cols.begin(), cols.end(), col_lo) - cols.begin();
    const auto last =
        std::lower_bound(cols.begin(), cols.end(), col_hi) - cols.begin();
    lo[static_cast<std::size_t>(r)] = a.rowptr[r] + first;
    out.rowptr[static_cast<std::size_t>(r) + 1] =
        out.rowptr[r] + (last - first);
  }
  out.colids.resize(static_cast<std::size_t>(out.rowptr.back()));
  out.vals.resize(static_cast<std::size_t>(out.rowptr.back()));
  for (index_t r = 0; r < a.nrows; ++r) {
    const auto src = static_cast<std::size_t>(lo[static_cast<std::size_t>(r)]);
    const auto dst = static_cast<std::size_t>(out.rowptr[r]);
    const auto n = static_cast<std::size_t>(out.row_nnz(r));
    for (std::size_t i = 0; i < n; ++i) {
      out.colids[dst + i] = a.colids[src + i] - col_lo;
      out.vals[dst + i] = a.vals[src + i];
    }
  }
  return out;
}

std::vector<index_t> split_ranges(index_t n, int k) {
  if (k < 1) {
    throw std::invalid_argument("split_ranges: k must be >= 1");
  }
  std::vector<index_t> bounds(static_cast<std::size_t>(k) + 1);
  const index_t per = (n + k - 1) / std::max(k, 1);
  for (int i = 0; i <= k; ++i) {
    bounds[static_cast<std::size_t>(i)] =
        std::min<index_t>(n, static_cast<index_t>(i) * per);
  }
  return bounds;
}

namespace {

// Validates and clamps nparts to the row count.
int checked_nparts(const mtx::CscMatrix& a, const mtx::CsrMatrix& b,
                   int nparts) {
  if (nparts < 1) {
    throw std::invalid_argument("pb_spgemm_partitioned: nparts must be >= 1");
  }
  if (a.ncols != b.nrows) {
    throw std::invalid_argument("pb_spgemm_partitioned: dimensions differ");
  }
  return std::min<int>(nparts, std::max<index_t>(a.nrows, 1));
}

}  // namespace

mtx::CsrMatrix stack_row_blocks(const std::vector<mtx::CsrMatrix>& pieces,
                                index_t nrows, index_t ncols) {
  mtx::CsrMatrix c;
  c.nrows = nrows;
  c.ncols = ncols;
  c.rowptr.assign(static_cast<std::size_t>(nrows) + 1, 0);
  nnz_t total = 0;
  for (const mtx::CsrMatrix& piece : pieces) total += piece.nnz();
  c.colids.reserve(static_cast<std::size_t>(total));
  c.vals.reserve(static_cast<std::size_t>(total));

  index_t row_base = 0;
  nnz_t nnz_base = 0;
  for (const mtx::CsrMatrix& piece : pieces) {
    for (index_t r = 0; r < piece.nrows; ++r) {
      c.rowptr[static_cast<std::size_t>(row_base + r) + 1] =
          nnz_base + piece.rowptr[static_cast<std::size_t>(r) + 1];
    }
    c.colids.insert(c.colids.end(), piece.colids.begin(), piece.colids.end());
    c.vals.insert(c.vals.end(), piece.vals.begin(), piece.vals.end());
    row_base += piece.nrows;
    nnz_base += piece.nnz();
  }
  // Rows past the last part (possible when nparts > nrows) keep the running
  // total so rowptr stays monotone.
  for (std::size_t r = static_cast<std::size_t>(row_base) + 1;
       r < c.rowptr.size(); ++r) {
    c.rowptr[r] = nnz_base;
  }
  return c;
}

PartitionedPlan make_partitioned_plan(const mtx::CscMatrix& a,
                                      const mtx::CsrMatrix& b, int nparts,
                                      const PbConfig& cfg) {
  nparts = checked_nparts(a, b, nparts);

  PartitionedPlan plan;
  plan.a_nrows_ = a.nrows;
  plan.a_parts_.reserve(static_cast<std::size_t>(nparts));
  plan.plans_.reserve(static_cast<std::size_t>(nparts));

  Timer timer;
  const std::vector<index_t> bounds = split_ranges(a.nrows, nparts);
  for (int part = 0; part < nparts; ++part) {
    const index_t lo = bounds[static_cast<std::size_t>(part)];
    const index_t hi = bounds[static_cast<std::size_t>(part) + 1];
    plan.a_parts_.push_back(slice_rows(a, lo, hi));
    plan.part_row_lo_.push_back(lo);
    plan.plans_.push_back(pb_plan_build(plan.a_parts_.back(), b, cfg));
  }
  plan.build_seconds_ = timer.elapsed_s();
  return plan;
}

void PartitionedPlan::update_a_values(const mtx::CscMatrix& a) {
  if (a.nrows != a_nrows_ ||
      (!a_parts_.empty() && a.ncols != a_parts_.front().ncols)) {
    throw std::invalid_argument(
        "PartitionedPlan::update_a_values: dimensions differ from the "
        "build-time A");
  }
  const auto structure_changed = [] {
    return std::invalid_argument(
        "PartitionedPlan::update_a_values: A's structure differs from the "
        "build-time A (slice values now unspecified; rebuild the plan)");
  };
  // ONE pass over A, routing each entry to its part: the parts own
  // contiguous ascending row ranges and a column's rows are sorted, so
  // the destination part only ever advances within a column.  The frozen
  // slices' per-column occupancy doubles as the structure check: any
  // entry that does not land exactly on the slice's recorded position
  // (or a column that ends short) proves the structure changed.
  const std::size_t nparts = a_parts_.size();
  std::vector<nnz_t> pos(nparts);
  for (index_t c = 0; c < a.ncols; ++c) {
    for (std::size_t part = 0; part < nparts; ++part) {
      pos[part] = a_parts_[part].colptr[c];
    }
    std::size_t part = 0;
    const auto rows = a.col_rows(c);
    const auto vals = a.col_vals(c);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      while (part + 1 < nparts && rows[i] >= part_row_lo_[part + 1]) {
        ++part;
      }
      mtx::CscMatrix& slice = a_parts_[part];
      const index_t local_row = rows[i] - part_row_lo_[part];
      const nnz_t at = pos[part];
      if (at == slice.colptr[static_cast<std::size_t>(c) + 1] ||
          slice.rowids[static_cast<std::size_t>(at)] != local_row) {
        throw structure_changed();
      }
      slice.vals[static_cast<std::size_t>(at)] = vals[i];
      ++pos[part];
    }
    for (std::size_t p = 0; p < nparts; ++p) {
      if (pos[p] != a_parts_[p].colptr[static_cast<std::size_t>(c) + 1]) {
        throw structure_changed();
      }
    }
  }
}

PartitionedResult PartitionedPlan::execute(const mtx::CsrMatrix& b,
                                           bool check_fingerprint) {
  PartitionedResult out;
  out.parts.reserve(plans_.size());

  std::vector<mtx::CsrMatrix> pieces;
  pieces.reserve(plans_.size());

  for (std::size_t part = 0; part < plans_.size(); ++part) {
    // b is caller-supplied on every execute, so by default keep
    // pb_execute's fingerprint check: a structurally different b fails
    // loudly here (one O(ncols) flop recount per part) instead of
    // corrupting the captured bin layouts.
    PbResult r = pb_execute<PlusTimes>(a_parts_[part], b, plans_[part],
                                       workspace_, check_fingerprint);
    out.parts.push_back(r.stats);
    pieces.push_back(std::move(r.c));
  }

  out.c = stack_row_blocks(pieces, a_nrows_, b.ncols);
  return out;
}

PartitionedResult pb_spgemm_partitioned(const mtx::CscMatrix& a,
                                        const mtx::CsrMatrix& b, int nparts,
                                        const PbConfig& cfg) {
  nparts = checked_nparts(a, b, nparts);

  // One-shot form: slice, analyze, execute and free one part at a time
  // through the plan-build/execute split — unlike PartitionedPlan it never
  // holds more than one row slice of A, so peak memory matches the
  // pre-plan implementation.  The in-line analysis lands in each part's
  // symbolic stats, like pb_spgemm.
  PartitionedResult out;
  out.parts.reserve(static_cast<std::size_t>(nparts));
  std::vector<mtx::CsrMatrix> pieces;
  pieces.reserve(static_cast<std::size_t>(nparts));
  PbWorkspace workspace;  // shared: parts run one after another

  const std::vector<index_t> bounds = split_ranges(a.nrows, nparts);
  for (int part = 0; part < nparts; ++part) {
    const index_t lo = bounds[static_cast<std::size_t>(part)];
    const index_t hi = bounds[static_cast<std::size_t>(part) + 1];
    const mtx::CscMatrix a_part = slice_rows(a, lo, hi);
    const PbPlan plan = pb_plan_build(a_part, b, cfg);
    PbResult r = pb_execute<PlusTimes>(a_part, b, plan, workspace,
                                       /*check_fingerprint=*/false);
    r.stats.symbolic = plan.symbolic;
    out.parts.push_back(r.stats);
    pieces.push_back(std::move(r.c));
  }

  out.c = stack_row_blocks(pieces, a.nrows, b.ncols);
  return out;
}

}  // namespace pbs::pb
