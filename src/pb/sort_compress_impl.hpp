// Template definitions for the fused sort + compress phase (see
// sort_compress.hpp).  Included by sort_compress.cpp, which explicitly
// instantiates pb_sort_compress<S> for the built-in semirings — include
// this header directly only to instantiate a custom semiring.
#pragma once

#include "pb/sort_compress.hpp"

#include <omp.h>

#include <algorithm>

#include "common/aligned_buffer.hpp"
#include "common/parallel.hpp"
#include "common/radix_sort.hpp"
#include "common/timer.hpp"
#include "pb/pb_spgemm.hpp"

namespace pbs::pb {

template <typename S>
SortCompressResult pb_sort_compress(Tuple* tuples,
                                    std::span<const nnz_t> offsets,
                                    std::span<const nnz_t> fill, int nbins,
                                    PbWorkspace* workspace) {
  SortCompressResult out;
  out.merged.assign(static_cast<std::size_t>(nbins), 0);

  const int nthreads = max_threads();
  std::vector<double> sort_busy(static_cast<std::size_t>(nthreads), 0.0);
  std::vector<double> compress_busy(static_cast<std::size_t>(nthreads), 0.0);

  // Per-thread scratch for the LSD sort, sized to the largest bin this
  // thread will touch.  Bins are capped at half of L2, so bin + scratch
  // stay cache-resident (see common/radix_sort.hpp).  A workspace serves
  // the scratch from its pool; without one each call allocates its own.
  nnz_t max_bin = 0;
  for (int bin = 0; bin < nbins; ++bin) {
    max_bin = std::max(max_bin, fill[static_cast<std::size_t>(bin)]);
  }
  if (workspace != nullptr) workspace->prepare_scratch(nthreads);

#pragma omp parallel num_threads(nthreads)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    AlignedBuffer<Tuple> local;
    Tuple* scratch_data;
    if (workspace != nullptr) {
      scratch_data =
          workspace->acquire_scratch(tid, static_cast<std::size_t>(max_bin));
    } else {
      local.allocate(static_cast<std::size_t>(max_bin));
      scratch_data = local.data();
    }
    Timer timer;
#pragma omp for schedule(dynamic, 1)
    for (int bin = 0; bin < nbins; ++bin) {
      Tuple* t = tuples + offsets[static_cast<std::size_t>(bin)];
      const auto len = static_cast<std::size_t>(fill[static_cast<std::size_t>(bin)]);
      if (len == 0) continue;

      timer.reset();
      radix_sort_lsd(t, len, scratch_data,
                     [](const Tuple& tp) { return tp.key; });
      sort_busy[tid] += timer.elapsed_s();

      // Two-pointer in-place merge (paper Sec. III-E): p1 scans, p2 marks
      // the last surviving tuple.  Duplicates combine with the semiring
      // add; survivors stay even when the combined value is S::zero().
      timer.reset();
      std::size_t p2 = 0;
      for (std::size_t p1 = 1; p1 < len; ++p1) {
        if (t[p1].key == t[p2].key) {
          t[p2].val = S::add(t[p2].val, t[p1].val);
        } else {
          t[++p2] = t[p1];
        }
      }
      out.merged[static_cast<std::size_t>(bin)] = static_cast<nnz_t>(p2 + 1);
      compress_busy[tid] += timer.elapsed_s();
    }
  }

  out.sort_seconds = *std::max_element(sort_busy.begin(), sort_busy.end());
  out.compress_seconds =
      *std::max_element(compress_busy.begin(), compress_busy.end());
  return out;
}

}  // namespace pbs::pb
