// Template definitions for the fused sort + compress phase (see
// sort_compress.hpp).  Included by sort_compress.cpp, which explicitly
// instantiates pb_sort_compress<S> for the built-in semirings — include
// this header directly only to instantiate a custom semiring.
#pragma once

#include "pb/sort_compress.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <exception>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/aligned_buffer.hpp"
#include "common/cancel.hpp"
#include "common/fault.hpp"
#include "common/parallel.hpp"
#include "common/radix_sort.hpp"
#include "common/timer.hpp"
#include "pb/pb_spgemm.hpp"

namespace pbs::pb {

namespace detail {

/// Shared skeleton of the two sort+compress formats: thread-over-bins with
/// per-thread scratch and per-sub-phase busy-time accounting.
/// `make_scratch(tid, max_bin)` builds one thread's scratch handle (owning
/// its fallback buffers when there is no workspace); per bin,
/// `sort_bin(off, len, scratch)` then `compress_bin(off, len) -> merged`
/// then `filter_bin(bin, off, merged) -> kept` (the fused mask; identity
/// when unmasked) then `post_bin(bin, off, kept) -> final` (the fused
/// elementwise post-op; identity when inactive) run back to back while the
/// bin is cache-hot.  Sort is timed into its own sub-phase; compress,
/// filter and post share the compress sub-phase.
template <typename MakeScratch, typename SortBin, typename CompressBin,
          typename FilterBin, typename PostBin>
SortCompressResult sort_compress_driver(std::span<const nnz_t> offsets,
                                        std::span<const nnz_t> fill,
                                        int nbins, PbWorkspace* workspace,
                                        MakeScratch make_scratch,
                                        SortBin sort_bin,
                                        CompressBin compress_bin,
                                        FilterBin filter_bin,
                                        PostBin post_bin,
                                        const CancelToken* cancel = nullptr) {
  SortCompressResult out;
  out.merged.assign(static_cast<std::size_t>(nbins), 0);

  const int nthreads = max_threads();
  std::vector<double> sort_busy(static_cast<std::size_t>(nthreads), 0.0);
  std::vector<double> compress_busy(static_cast<std::size_t>(nthreads), 0.0);
  std::vector<nnz_t> dropped(static_cast<std::size_t>(nthreads), 0);
  std::vector<nnz_t> pdropped(static_cast<std::size_t>(nthreads), 0);

  // Per-thread scratch for the LSD sort, sized to the largest bin this
  // thread will touch.  Bins are capped at half of L2, so bin + scratch
  // stay cache-resident (see common/radix_sort.hpp).  A workspace serves
  // the scratch from its pool; without one each thread allocates its own.
  nnz_t max_bin = 0;
  for (int bin = 0; bin < nbins; ++bin) {
    max_bin = std::max(max_bin, fill[static_cast<std::size_t>(bin)]);
  }
  if (workspace != nullptr) workspace->prepare_scratch(nthreads);

  // Exception safety inside the parallel region follows the ok-flag
  // pattern: every thread ALWAYS reaches the `omp for` (a thread that
  // skipped it would strand the team at the worksharing barrier), so
  // failures — scratch allocation (budget/fault/OOM) or per-bin work —
  // are caught per thread, the first one is captured, an internal abort
  // token turns the remaining iterations into no-ops, and the exception
  // rethrows after the join.  The abort token also links the caller's
  // cancel token, so one per-bin poll covers both.
  std::exception_ptr error;
  CancelToken abort;
  abort.link(cancel);

#pragma omp parallel num_threads(nthreads)
  {
    const auto tid = static_cast<std::size_t>(omp_get_thread_num());
    bool ok = true;
    using Scratch = std::invoke_result_t<MakeScratch, std::size_t, std::size_t>;
    std::optional<Scratch> scratch;
    try {
      scratch.emplace(make_scratch(tid, static_cast<std::size_t>(max_bin)));
    } catch (...) {
      ok = false;
#pragma omp critical(pbs_sc_driver_error)
      {
        if (error == nullptr) error = std::current_exception();
      }
      abort.request_cancel();
    }
    Timer timer;
#pragma omp for schedule(dynamic, 1)
    for (int bin = 0; bin < nbins; ++bin) {
      if (!ok || abort.stop_requested()) continue;
      const nnz_t off = offsets[static_cast<std::size_t>(bin)];
      const auto len =
          static_cast<std::size_t>(fill[static_cast<std::size_t>(bin)]);
      if (len == 0) continue;

      try {
        FaultInjector::on_bin();
        timer.reset();
        sort_bin(off, len, *scratch);
        sort_busy[tid] += timer.elapsed_s();

        timer.reset();
        const nnz_t merged = compress_bin(off, len);
        const nnz_t kept = filter_bin(bin, off, merged);
        const nnz_t final_kept = post_bin(bin, off, kept);
        out.merged[static_cast<std::size_t>(bin)] = final_kept;
        dropped[tid] += merged - kept;
        pdropped[tid] += kept - final_kept;
        compress_busy[tid] += timer.elapsed_s();
      } catch (...) {
        ok = false;
#pragma omp critical(pbs_sc_driver_error)
        {
          if (error == nullptr) error = std::current_exception();
        }
        abort.request_cancel();
      }
    }
  }

  if (error != nullptr) std::rethrow_exception(error);
  throw_if_stopped(cancel);

  out.sort_seconds = *std::max_element(sort_busy.begin(), sort_busy.end());
  out.compress_seconds =
      *std::max_element(compress_busy.begin(), compress_busy.end());
  for (const nnz_t d : dropped) out.mask_dropped += d;
  for (const nnz_t d : pdropped) out.post_dropped += d;
  return out;
}

/// Compacts a compressed bin in place, keeping the tuples whose (row, col)
/// membership in the mask's pattern matches the polarity; returns the
/// survivor count.  Tuples arrive (row, col)-sorted, so each row is one
/// merge-scan against that sorted mask row — O(merged + touched mask
/// entries), run while the bin is still cache-hot.
template <typename RowOf, typename ColOf, typename Move>
nnz_t mask_filter_bin(nnz_t merged, const mtx::CsrMatrix& mask,
                      bool complement, RowOf row_of, ColOf col_of,
                      Move move) {
  nnz_t kept = 0;
  index_t cur_row = -1;
  std::span<const index_t> mcols;
  std::size_t m = 0;
  for (nnz_t i = 0; i < merged; ++i) {
    const index_t r = row_of(i);
    if (r != cur_row) {
      cur_row = r;
      mcols = mask.row_cols(r);
      m = 0;
    }
    const index_t c = col_of(i);
    while (m < mcols.size() && mcols[m] < c) ++m;
    const bool in_mask = m < mcols.size() && mcols[m] == c;
    if (in_mask != complement) {
      if (kept != i) move(i, kept);
      ++kept;
    }
  }
  return kept;
}

/// Applies the fused elementwise post-op to a compressed (and mask-
/// filtered) bin in place.  Tuples are key-sorted, so each output row is
/// one contiguous, column-ascending segment: scale rewrites values, prune
/// drops |v| < threshold, and top-k keeps the row's k largest-|v| entries
/// (ties toward smaller columns — the same selection
/// mtx::keep_top_k_per_row makes) with survivors compacted in ascending
/// column order.  `row_of` only segments the scan, so bin-local row ids
/// serve as well as global ones.  Returns the survivor count.
template <typename RowOf, typename GetVal, typename SetVal, typename Move>
nnz_t post_op_bin(nnz_t kept, const PostOp& op, RowOf row_of, GetVal get_val,
                  SetVal set_val, Move move) {
  if (op.scale != 1.0) {
    for (nnz_t i = 0; i < kept; ++i) set_val(i, get_val(i) * op.scale);
  }
  if (!op.drops_entries()) return kept;

  std::vector<std::pair<double, nnz_t>> sel;  // top-k scratch: (|v|, index)
  const auto larger = [](const std::pair<double, nnz_t>& x,
                         const std::pair<double, nnz_t>& y) {
    return x.first > y.first || (x.first == y.first && x.second < y.second);
  };
  nnz_t out = 0;
  for (nnz_t i = 0; i < kept;) {
    const auto r = row_of(i);
    nnz_t j = i + 1;
    while (j < kept && row_of(j) == r) ++j;

    sel.clear();
    for (nnz_t t = i; t < j; ++t) {
      const double av = std::abs(get_val(t));
      if (op.prune_threshold > 0 && av < op.prune_threshold) continue;
      sel.emplace_back(av, t);
    }
    if (op.top_k > 0 && sel.size() > static_cast<std::size_t>(op.top_k)) {
      // The k-th entry under (|v| desc, col asc) is the cutoff; keeping
      // everything at or before it selects exactly k (indices are
      // distinct, so the order is total).
      const auto kth = sel.begin() + (op.top_k - 1);
      std::nth_element(sel.begin(), kth, sel.end(), larger);
      const auto cut = *kth;
      sel.erase(std::remove_if(sel.begin(), sel.end(),
                               [&](const std::pair<double, nnz_t>& e) {
                                 return larger(cut, e);
                               }),
                sel.end());
      std::sort(sel.begin(), sel.end(),
                [](const std::pair<double, nnz_t>& x,
                   const std::pair<double, nnz_t>& y) {
                  return x.second < y.second;
                });
    }
    for (const auto& e : sel) {
      if (e.second != out) move(e.second, out);
      ++out;
    }
    i = j;
  }
  return out;
}

}  // namespace detail

/// Per-bin wide-format operations — the unit of work both schedules run.
/// The barrier driver maps them over all bins behind an `omp for`; the
/// pipelined schedule (pipeline_impl.hpp) runs `process` on a single bin
/// the moment it becomes ready.  Holds only pointers: cheap to copy into
/// each thread.
template <typename S>
struct WideBinOps {
  Tuple* tuples = nullptr;
  const MaskSpec* mask = nullptr;
  const PostOp* post = nullptr;

  // The wide sort runs as SoA under the hood: the AoS bin is deinterleaved
  // into a u64 key + f64 value pair carved from the scratch, sorted with
  // radix_sort_lsd_kv (histogram and bit-scan passes read the 8 B keys
  // instead of streaming 16 B records) ping-ponging against the bin's own
  // storage, then reinterleaved back.  A scratch sized for max_bin tuples
  // (16 B each) is exactly one key array + one value array of max_bin, so
  // bin + scratch keep the same L2 footprint as the AoS sort they replace.
  void sort(nnz_t off, std::size_t len, Tuple* scratch,
            std::size_t max_bin) const {
    if (len < 2) return;
    auto* sbase = reinterpret_cast<std::byte*>(scratch);
    auto* ks = reinterpret_cast<std::uint64_t*>(sbase);
    auto* vs =
        reinterpret_cast<value_t*>(sbase + max_bin * sizeof(std::uint64_t));
    Tuple* t = tuples + off;
    for (std::size_t i = 0; i < len; ++i) {
      ks[i] = t[i].key;
      vs[i] = t[i].val;
    }
    // Ping-pong scratch carved from the bin's own storage (16 B/tuple
    // = one u64 + one f64); the sort's result always lands back in
    // (ks, vs), from where the bin is reinterleaved.
    auto* bbase = reinterpret_cast<std::byte*>(t);
    auto* kb = reinterpret_cast<std::uint64_t*>(bbase);
    auto* vb = reinterpret_cast<value_t*>(bbase + len * sizeof(std::uint64_t));
    radix_sort_lsd_kv(ks, vs, len, kb, vb);
    for (std::size_t i = 0; i < len; ++i) {
      t[i].key = ks[i];
      t[i].val = vs[i];
    }
  }

  // Two-pointer in-place merge (paper Sec. III-E): p1 scans, p2 marks
  // the last surviving tuple.  Duplicates combine with the semiring
  // add; survivors stay even when the combined value is S::zero().
  nnz_t compress(nnz_t off, std::size_t len) const {
    Tuple* t = tuples + off;
    std::size_t p2 = 0;
    for (std::size_t p1 = 1; p1 < len; ++p1) {
      if (t[p1].key == t[p2].key) {
        t[p2].val = S::add(t[p2].val, t[p1].val);
      } else {
        t[++p2] = t[p1];
      }
    }
    return static_cast<nnz_t>(p2 + 1);
  }

  // Fused mask: wide keys carry global (row, col) directly.
  nnz_t filter(int /*bin*/, nnz_t off, nnz_t merged) const {
    if (!mask->active()) return merged;
    Tuple* t = tuples + off;
    return detail::mask_filter_bin(
        merged, *mask->csr, mask->complement,
        [&](nnz_t i) { return key_row(t[i].key); },
        [&](nnz_t i) { return key_col(t[i].key); },
        [&](nnz_t src, nnz_t dst) { t[dst] = t[src]; });
  }

  // Fused elementwise post-op, applied after the mask filter.
  nnz_t post_apply(nnz_t off, nnz_t kept) const {
    if (post == nullptr || !post->active()) return kept;
    Tuple* t = tuples + off;
    return detail::post_op_bin(
        kept, *post, [&](nnz_t i) { return key_row(t[i].key); },
        [&](nnz_t i) { return t[i].val; },
        [&](nnz_t i, value_t v) { t[i].val = v; },
        [&](nnz_t src, nnz_t dst) { t[dst] = t[src]; });
  }
};

template <typename S>
SortCompressResult pb_sort_compress(Tuple* tuples,
                                    std::span<const nnz_t> offsets,
                                    std::span<const nnz_t> fill, int nbins,
                                    PbWorkspace* workspace,
                                    const MaskSpec& mask,
                                    const CancelToken* cancel,
                                    const PostOp& post) {
  const WideBinOps<S> ops{tuples, &mask, &post};
  struct Scratch {
    AlignedBuffer<Tuple> local;  // fallback when there is no workspace
    Tuple* data = nullptr;
    std::size_t max_bin = 0;
  };
  return detail::sort_compress_driver(
      offsets, fill, nbins, workspace,
      [&](std::size_t tid, std::size_t max_bin) {
        Scratch s;
        if (workspace != nullptr) {
          s.data = workspace->acquire_scratch(tid, max_bin);
        } else {
          s.local.allocate(max_bin);
          s.data = s.local.data();
        }
        s.max_bin = max_bin;
        return s;
      },
      [&](nnz_t off, std::size_t len, Scratch& scratch) {
        ops.sort(off, len, scratch.data, scratch.max_bin);
      },
      [&](nnz_t off, std::size_t len) { return ops.compress(off, len); },
      [&](int bin, nnz_t off, nnz_t merged) {
        return ops.filter(bin, off, merged);
      },
      [&](int /*bin*/, nnz_t off, nnz_t kept) {
        return ops.post_apply(off, kept);
      },
      cancel);
}

/// Key-only counterpart of WideBinOps; same contract.  There is no value
/// array and therefore no semiring anywhere in this struct: the sort is a
/// bare keys-only LSD radix sort (no payload lane in the scatter passes),
/// and compress degenerates to a pure duplicate drop — `S::add` is gone
/// because a value-free semiring's combine cannot change presence.  The
/// structural exact-cancellation convention holds trivially: compress
/// keeps every distinct key regardless of what the values would have
/// combined to, which is exactly what the valued formats do (they keep
/// tuples whose values combine to S::zero()), so the output pattern is
/// bit-identical to a wide run of the same value-free semiring.
struct KeyOnlyBinOps {
  wide_key_t* keys = nullptr;
  const MaskSpec* mask = nullptr;

  void sort(nnz_t off, std::size_t len, wide_key_t* scratch) const {
    radix_sort_lsd_keys(keys + off, len, scratch);
  }

  nnz_t compress(nnz_t off, std::size_t len) const {
    wide_key_t* k = keys + off;
    std::size_t p2 = 0;
    for (std::size_t p1 = 1; p1 < len; ++p1) {
      if (k[p1] != k[p2]) k[++p2] = k[p1];
    }
    return static_cast<nnz_t>(p2 + 1);
  }

  // Fused mask: key-only keys are the wide global (row, col) codec.
  nnz_t filter(int /*bin*/, nnz_t off, nnz_t merged) const {
    if (!mask->active()) return merged;
    wide_key_t* k = keys + off;
    return detail::mask_filter_bin(
        merged, *mask->csr, mask->complement,
        [&](nnz_t i) { return key_row(k[i]); },
        [&](nnz_t i) { return key_col(k[i]); },
        [&](nnz_t src, nnz_t dst) { k[dst] = k[src]; });
  }
};

/// Narrow-format counterpart of WideBinOps; same contract.
template <typename S>
struct NarrowBinOps {
  narrow_key_t* keys = nullptr;
  value_t* vals = nullptr;
  const MaskSpec* mask = nullptr;
  const PostOp* post = nullptr;
  const BinLayout* layout = nullptr;
  int col_bits = 0;

  void sort(nnz_t off, std::size_t len, const NarrowStream& scratch) const {
    radix_sort_lsd_kv(keys + off, vals + off, len, scratch.keys,
                      scratch.vals);
  }

  // Same merge as the wide path in SoA form: the scan runs over the key
  // array alone and each surviving tuple's value is compacted exactly once.
  nnz_t compress(nnz_t off, std::size_t len) const {
    narrow_key_t* k = keys + off;
    value_t* v = vals + off;
    std::size_t p2 = 0;
    for (std::size_t p1 = 1; p1 < len; ++p1) {
      if (k[p1] == k[p2]) {
        v[p2] = S::add(v[p2], v[p1]);
      } else {
        ++p2;
        k[p2] = k[p1];
        v[p2] = v[p1];
      }
    }
    return static_cast<nnz_t>(p2 + 1);
  }

  // Fused mask: narrow keys decode to global coordinates through the
  // stream's bin geometry.
  nnz_t filter(int bin, nnz_t off, nnz_t merged) const {
    if (!mask->active()) return merged;
    narrow_key_t* k = keys + off;
    value_t* v = vals + off;
    return detail::mask_filter_bin(
        merged, *mask->csr, mask->complement,
        [&](nnz_t i) {
          return layout->global_row(bin,
                                    narrow_key_local_row(k[i], col_bits));
        },
        [&](nnz_t i) { return narrow_key_col(k[i], col_bits); },
        [&](nnz_t src, nnz_t dst) {
          k[dst] = k[src];
          v[dst] = v[src];
        });
  }

  // Fused elementwise post-op: row segmentation needs only the key's
  // bin-local row bits, no layout decode.
  nnz_t post_apply(nnz_t off, nnz_t kept) const {
    if (post == nullptr || !post->active()) return kept;
    narrow_key_t* k = keys + off;
    value_t* v = vals + off;
    return detail::post_op_bin(
        kept, *post,
        [&](nnz_t i) { return narrow_key_local_row(k[i], col_bits); },
        [&](nnz_t i) { return v[i]; },
        [&](nnz_t i, value_t nv) { v[i] = nv; },
        [&](nnz_t src, nnz_t dst) {
          k[dst] = k[src];
          v[dst] = v[src];
        });
  }
};

template <typename S>
SortCompressResult pb_sort_compress_narrow(narrow_key_t* keys, value_t* vals,
                                           std::span<const nnz_t> offsets,
                                           std::span<const nnz_t> fill,
                                           int nbins, PbWorkspace* workspace,
                                           const MaskSpec& mask,
                                           const BinLayout* layout,
                                           int col_bits,
                                           const CancelToken* cancel,
                                           const PostOp& post) {
  const NarrowBinOps<S> ops{keys, vals, &mask, &post, layout, col_bits};
  struct Scratch {
    AlignedBuffer<narrow_key_t> local_keys;  // fallbacks without a workspace
    AlignedBuffer<value_t> local_vals;
    NarrowStream stream;
  };
  return detail::sort_compress_driver(
      offsets, fill, nbins, workspace,
      [&](std::size_t tid, std::size_t max_bin) {
        Scratch s;
        if (workspace != nullptr) {
          s.stream = workspace->acquire_scratch_narrow(tid, max_bin);
        } else {
          s.local_keys.allocate(max_bin);
          s.local_vals.allocate(max_bin);
          s.stream = {s.local_keys.data(), s.local_vals.data()};
        }
        return s;
      },
      [&](nnz_t off, std::size_t len, Scratch& scratch) {
        ops.sort(off, len, scratch.stream);
      },
      [&](nnz_t off, std::size_t len) { return ops.compress(off, len); },
      [&](int bin, nnz_t off, nnz_t merged) {
        return ops.filter(bin, off, merged);
      },
      [&](int /*bin*/, nnz_t off, nnz_t kept) {
        return ops.post_apply(off, kept);
      },
      cancel);
}

/// Narrow-f32 counterpart of NarrowBinOps; same contract.  The duplicate
/// merge widens to double for S::add and narrows the combined value back,
/// so the semiring's algebra is unchanged — only the stream width is.
template <typename S>
struct NarrowF32BinOps {
  narrow_key_t* keys = nullptr;
  f32_val_t* vals = nullptr;
  const MaskSpec* mask = nullptr;
  const PostOp* post = nullptr;
  const BinLayout* layout = nullptr;
  int col_bits = 0;

  void sort(nnz_t off, std::size_t len,
            const NarrowF32Stream& scratch) const {
    radix_sort_lsd_kv(keys + off, vals + off, len, scratch.keys,
                      scratch.vals);
  }

  nnz_t compress(nnz_t off, std::size_t len) const {
    narrow_key_t* k = keys + off;
    f32_val_t* v = vals + off;
    std::size_t p2 = 0;
    for (std::size_t p1 = 1; p1 < len; ++p1) {
      if (k[p1] == k[p2]) {
        v[p2] = static_cast<f32_val_t>(
            S::add(static_cast<value_t>(v[p2]), static_cast<value_t>(v[p1])));
      } else {
        ++p2;
        k[p2] = k[p1];
        v[p2] = v[p1];
      }
    }
    return static_cast<nnz_t>(p2 + 1);
  }

  nnz_t filter(int bin, nnz_t off, nnz_t merged) const {
    if (!mask->active()) return merged;
    narrow_key_t* k = keys + off;
    f32_val_t* v = vals + off;
    return detail::mask_filter_bin(
        merged, *mask->csr, mask->complement,
        [&](nnz_t i) {
          return layout->global_row(bin,
                                    narrow_key_local_row(k[i], col_bits));
        },
        [&](nnz_t i) { return narrow_key_col(k[i], col_bits); },
        [&](nnz_t src, nnz_t dst) {
          k[dst] = k[src];
          v[dst] = v[src];
        });
  }

  // Fused elementwise post-op; values widen to double around the knobs and
  // narrow back on store, matching the compress merge's convention.
  nnz_t post_apply(nnz_t off, nnz_t kept) const {
    if (post == nullptr || !post->active()) return kept;
    narrow_key_t* k = keys + off;
    f32_val_t* v = vals + off;
    return detail::post_op_bin(
        kept, *post,
        [&](nnz_t i) { return narrow_key_local_row(k[i], col_bits); },
        [&](nnz_t i) { return static_cast<value_t>(v[i]); },
        [&](nnz_t i, value_t nv) { v[i] = static_cast<f32_val_t>(nv); },
        [&](nnz_t src, nnz_t dst) {
          k[dst] = k[src];
          v[dst] = v[src];
        });
  }
};

template <typename S>
SortCompressResult pb_sort_compress_narrow_f32(
    narrow_key_t* keys, f32_val_t* vals, std::span<const nnz_t> offsets,
    std::span<const nnz_t> fill, int nbins, PbWorkspace* workspace,
    const MaskSpec& mask, const BinLayout* layout, int col_bits,
    const CancelToken* cancel, const PostOp& post) {
  const NarrowF32BinOps<S> ops{keys, vals, &mask, &post, layout, col_bits};
  struct Scratch {
    AlignedBuffer<narrow_key_t> local_keys;  // fallbacks without a workspace
    AlignedBuffer<f32_val_t> local_vals;
    NarrowF32Stream stream;
  };
  return detail::sort_compress_driver(
      offsets, fill, nbins, workspace,
      [&](std::size_t tid, std::size_t max_bin) {
        Scratch s;
        if (workspace != nullptr) {
          s.stream = workspace->acquire_scratch_narrow_f32(tid, max_bin);
        } else {
          s.local_keys.allocate(max_bin);
          s.local_vals.allocate(max_bin);
          s.stream = {s.local_keys.data(), s.local_vals.data()};
        }
        return s;
      },
      [&](nnz_t off, std::size_t len, Scratch& scratch) {
        ops.sort(off, len, scratch.stream);
      },
      [&](nnz_t off, std::size_t len) { return ops.compress(off, len); },
      [&](int bin, nnz_t off, nnz_t merged) {
        return ops.filter(bin, off, merged);
      },
      [&](int /*bin*/, nnz_t off, nnz_t kept) {
        return ops.post_apply(off, kept);
      },
      cancel);
}

}  // namespace pbs::pb
